// Tooling example: archive a scenario and export the paper's three ILP
// formulations in CPLEX LP format, so the exact baselines can be
// cross-checked with an external MILP solver (the paper used ILPs for
// Fig. 12). Also solves each instance with our exact branch-and-bound and
// prints the optima an external solver should reproduce.
//
// Run: ./export_ilp [--out=/tmp/wmcast] [--users=20] [--seed=7]

#include <cstdio>
#include <fstream>

#include "wmcast/exact/exact_bla.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/exact/lp_writer.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/cli.hpp"
#include "wmcast/wlan/scenario_generator.hpp"
#include "wmcast/wlan/serialization.hpp"

using namespace wmcast;

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  f << content;
  return static_cast<bool>(f);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"out", "users", "seed"});
  const std::string out = args.get("out", "/tmp/wmcast");
  const int users = args.get_int("users", 20);
  const uint64_t seed = args.get_u64("seed", 7);

  auto params = wlan::fig12_params(users);  // the paper's small-network setting
  util::Rng rng(seed);
  const auto sc = wlan::generate_scenario(params, rng);
  const auto sys = setcover::build_set_system(sc);

  std::printf("scenario: 30 APs, %d users, %d candidate sets (seed %llu)\n",
              users, sys.n_sets(), static_cast<unsigned long long>(seed));

  bool ok = wlan::save_scenario(sc, out + "_scenario.txt");
  ok = write_file(out + "_mla.lp", exact::write_mla_lp(sys)) && ok;
  ok = write_file(out + "_bla.lp", exact::write_bla_lp(sys)) && ok;
  const std::vector<double> budgets(static_cast<size_t>(sys.n_groups()), 0.042);
  ok = write_file(out + "_mnu.lp", exact::write_mnu_lp(sys, budgets)) && ok;
  if (!ok) return 1;

  std::printf("wrote %s_scenario.txt and %s_{mla,bla,mnu}.lp\n\n", out.c_str(),
              out.c_str());

  // Reference optima from our exact solvers (an external MILP solver fed the
  // .lp files must reproduce these objective values).
  const auto mla = exact::exact_min_cost_cover(sys);
  const auto bla = exact::exact_min_max_cover(sys);
  const auto mnu = exact::exact_max_coverage_uniform(sys, 0.042);
  std::printf("reference optima (exact B&B):\n");
  std::printf("  MLA  min total cost     = %.6f%s\n", mla.cost,
              mla.status == exact::BbStatus::kOptimal ? "" : "  (time-limited!)");
  std::printf("  BLA  min max group cost = %.6f%s\n", bla.max_group_cost,
              bla.status == exact::BbStatus::kOptimal ? "" : "  (time-limited!)");
  std::printf("  MNU  max covered users  = %d of %d%s (budget 0.042)\n", mnu.covered,
              sc.n_coverable_users(),
              mnu.status == exact::BbStatus::kOptimal ? "" : "  (time-limited!)");
  std::printf("\nreload the archived scenario with wlan::load_scenario() to rerun\n"
              "any algorithm on exactly this instance.\n");
  return 0;
}
