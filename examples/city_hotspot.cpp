// City-scale what-if: the paper motivates association control with
// deployments like Taipei's (2300 APs). This example runs the full pipeline
// on a city-scale instance — 2300 APs and 5000 users over ~12 km^2 with 8
// live streams (news, traffic, visitor info, radio) — and reports solution
// quality and wall-clock time for each algorithm, illustrating the paper's
// point that centralized algorithms remain feasible while distributed ones
// scale naturally.
//
// Run: ./city_hotspot [--seed=200] [--aps=2300] [--users=5000]

#include <cstdio>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/ext/interference.hpp"
#include "wmcast/util/cli.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/util/table.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

using namespace wmcast;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"aps", "users", "seed"});
  const uint64_t seed = args.get_u64("seed", 200);

  wlan::GeneratorParams city;
  city.n_aps = args.get_int("aps", 2300);
  city.n_users = args.get_int("users", 5000);
  city.n_sessions = 8;
  city.session_rate_mbps = 0.75;
  city.area_side_m = 3464.0;  // ~12 km^2

  std::printf("City hotspot: %d APs, %d users, %d streams @ %.2f Mbps, ~%.0f km^2\n",
              city.n_aps, city.n_users, city.n_sessions, city.session_rate_mbps,
              city.area_side_m * city.area_side_m / 1e6);
  std::printf("(seed %llu)\n\n", static_cast<unsigned long long>(seed));

  util::Rng rng(seed);
  const auto sc = wlan::generate_scenario(city, rng);
  std::printf("coverable users: %d / %d\n\n", sc.n_coverable_users(), sc.n_users());

  util::Table t({"policy", "served", "total_airtime", "worst_ap", "solve_s"});
  std::vector<assoc::Solution> sols;

  util::Rng ssa_rng(seed + 1);
  sols.push_back(assoc::ssa_associate(sc, ssa_rng));
  sols.push_back(assoc::centralized_mla(sc));
  sols.push_back(assoc::centralized_bla(sc));
  util::Rng d_rng(seed + 2);
  sols.push_back(assoc::distributed_mla(sc, d_rng));
  util::Rng b_rng(seed + 3);
  sols.push_back(assoc::distributed_bla(sc, b_rng));

  for (const auto& s : sols) {
    t.add_row({s.algorithm, std::to_string(s.loads.satisfied_users),
               util::fmt(s.loads.total_load, 1), util::fmt(s.loads.max_load, 3),
               util::fmt(s.solve_seconds, 2)});
  }
  t.print();

  // Channel planning sanity check: with 12 channels (802.11a), what does the
  // worst AP actually experience on the air?
  const auto adj = ext::build_conflict_graph(sc, 400.0);
  const auto ch = ext::assign_channels(adj, 12);
  const auto eff_ssa = ext::interference_report(sc, sols[0].loads, ch, adj);
  const auto eff_bla = ext::interference_report(sc, sols[2].loads, ch, adj);
  std::printf("\nwith 12 channels assigned greedily (%d residual conflict edges):\n",
              ch.conflict_edges);
  std::printf("  worst effective busy fraction: SSA %.3f -> BLA-C %.3f (-%.1f%%)\n",
              eff_ssa.max_effective_load, eff_bla.max_effective_load,
              util::percent_reduction(eff_bla.max_effective_load,
                                      eff_ssa.max_effective_load));
  std::printf("\nTakeaway: even at city scale the centralized algorithms run in\n"
              "seconds, and association control pays off before any MAC changes.\n");
  return 0;
}
