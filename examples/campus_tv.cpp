// Campus TV planning: the paper's motivating scenario — streaming TV
// channels over a campus WLAN with minimal impact on unicast service.
//
// A campus operator wants to light up 4 TV channels (1.5 Mbps each) on a
// 60-AP network serving 300 multicast subscribers, while reserving most of
// the airtime for unicast. This example sweeps the multicast airtime budget
// and shows, for each association policy:
//   * how many subscribers get their channel (pay-per-view revenue, MNU),
//   * how much airtime multicast actually consumes (unicast headroom, MLA),
//   * the worst-hit AP (unicast fairness, BLA).
//
// Run: ./campus_tv [--seed=100]

#include <cstdio>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/dual.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/ext/period_schedule.hpp"
#include "wmcast/util/cli.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/util/table.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

using namespace wmcast;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"seed"});
  const uint64_t seed = args.get_u64("seed", 100);

  wlan::GeneratorParams campus;
  campus.area_side_m = 500.0;   // a compact campus
  campus.n_aps = 60;
  campus.n_users = 300;
  campus.n_sessions = 4;        // four TV channels
  campus.session_rate_mbps = 1.5;

  std::printf("Campus TV: 60 APs / 500x500 m, 300 subscribers, 4 channels @ 1.5 Mbps\n");
  std::printf("(seed %llu)\n\n", static_cast<unsigned long long>(seed));

  util::Table t({"budget", "policy", "served", "served_pct", "total_airtime",
                 "worst_ap_load"});
  for (const double budget : {0.05, 0.10, 0.20, 0.40}) {
    campus.load_budget = budget;
    util::Rng rng(seed);
    const auto sc = wlan::generate_scenario(campus, rng);

    struct Run {
      const char* name;
      assoc::Solution sol;
    };
    util::Rng ssa_rng(seed + 1);
    util::Rng mnu_rng(seed + 2);
    const Run runs[] = {
        {"SSA (status quo)", assoc::ssa_associate(sc, ssa_rng)},
        {"MNU-C", assoc::centralized_mnu(sc)},
        {"MNU-D", assoc::distributed_mnu(sc, mnu_rng)},
    };
    for (const auto& r : runs) {
      t.add_row({util::fmt(budget, 2), r.name,
                 std::to_string(r.sol.loads.satisfied_users),
                 util::fmt(100.0 * r.sol.loads.satisfied_users / sc.n_users(), 1),
                 util::fmt(r.sol.loads.total_load, 2),
                 util::fmt(r.sol.loads.max_load, 3)});
    }
  }
  t.print();

  std::printf("\nOnce the budget is generous enough to serve everyone, the question\n"
              "becomes efficiency. At budget 0.40:\n\n");
  campus.load_budget = 0.40;
  util::Rng rng(seed);
  const auto sc = wlan::generate_scenario(campus, rng);
  util::Rng ssa_rng(seed + 1);
  const auto ssa = assoc::ssa_associate(sc, ssa_rng);
  const auto mla = assoc::centralized_mla(sc);
  const auto bla = assoc::centralized_bla(sc);
  util::Table t2({"policy", "total_airtime", "unicast_headroom_pct", "worst_ap_load"});
  for (const auto* sol : {&ssa, &mla, &bla}) {
    const double headroom =
        100.0 * (1.0 - sol->loads.total_load / sc.n_aps());
    t2.add_row({sol->algorithm, util::fmt(sol->loads.total_load, 2),
                util::fmt(headroom, 2), util::fmt(sol->loads.max_load, 3)});
  }
  t2.print();
  std::printf("\nMLA-C frees the most aggregate airtime for unicast (%.1f%% less\n"
              "multicast airtime than SSA); BLA-C protects the worst-hit AP\n"
              "(%.1f%% lower peak load than SSA).\n",
              util::percent_reduction(mla.loads.total_load, ssa.loads.total_load),
              util::percent_reduction(bla.loads.max_load, ssa.loads.max_load));

  // Dual association: students also browse (unicast) from their strongest-
  // signal AP while streaming TV from the BLA-chosen AP. Can every "split"
  // student get non-overlapping multicast windows (paper §3.1's time-
  // synchronized framework)?
  std::printf("\n== Dual association & multicast period scheduling (BLA-C) ==\n");
  assoc::DualParams dp;
  dp.unicast_demand_per_user = 0.02;  // light browsing per subscriber
  const auto dual = assoc::evaluate_dual(sc, bla.assoc, dp);
  const auto sched = ext::schedule_multicast_periods(sc, bla.assoc);
  std::printf("split users (stream AP != unicast anchor): %d of %d\n",
              dual.split_users, sc.n_users());
  std::printf("worst AP combined airtime (multicast + unicast demand): %.3f\n",
              dual.max_combined);
  std::printf("period scheduling: %d of %d split users conflict-free "
              "(total residual overlap %.4f)\n",
              sched.split_users - sched.conflicting_users, sched.split_users,
              sched.total_overlap);
  return 0;
}
