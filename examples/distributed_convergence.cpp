// Distributed convergence in action: the paper's Fig. 4 counterexample,
// played three ways through the discrete-event protocol simulator and the
// round engine:
//   1. jittered scan phases  -> decisions interleave, protocol converges
//                               (Lemma 1's regime);
//   2. synchronized phases   -> u2 and u3 decide on the same stale snapshot
//                               and swap APs forever (Fig. 4);
//   3. synchronized + locks  -> the paper's §8 fix; converges again.
//
// Run: ./distributed_convergence

#include <cstdio>

#include "wmcast/assoc/distributed.hpp"
#include "wmcast/ext/locks.hpp"
#include "wmcast/sim/network.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/wlan/scenario.hpp"

using namespace wmcast;

namespace {

wlan::Scenario fig4() {
  // a1 reaches u1,u2,u3 at 5,4,4 Mbps; a2 reaches u2,u3,u4 at 4,4,5.
  // Everyone wants the same 1 Mbps stream.
  const std::vector<std::vector<double>> link = {{5, 4, 4, 0}, {0, 4, 4, 5}};
  return wlan::Scenario::from_link_rates(link, {0, 0, 0, 0}, {1.0}, 1.0);
}

void show_trace(const sim::SimOutcome& out, int max_lines) {
  int shown = 0;
  for (const auto& t : out.trace) {
    if (shown++ >= max_lines) {
      std::printf("    ... (%zu more re-associations)\n", out.trace.size() - shown + 1);
      break;
    }
    const std::string from =
        t.from_ap == wlan::kNoAp ? "--" : "a" + std::to_string(t.from_ap + 1);
    std::printf("    t=%7.3fs  u%d: %s -> a%d\n", t.time_s, t.user + 1, from.c_str(),
                t.to_ap + 1);
  }
}

}  // namespace

int main() {
  const auto sc = fig4();
  const wlan::Association bad_start{{0, 0, 1, 1}};  // u1,u2 on a1; u3,u4 on a2

  std::printf("Fig. 4 network: a1 reaches {u1,u2,u3}, a2 reaches {u2,u3,u4};\n");
  std::printf("all users stream the same 1 Mbps session.\n");
  std::printf("start: u1,u2 -> a1; u3,u4 -> a2 (total load 1/2)\n\n");

  {
    std::printf("1) jittered scan phases (desynchronized decisions)\n");
    sim::SimConfig cfg;
    cfg.phase_jitter_s = 1.0;
    cfg.max_time_s = 60.0;
    sim::ProtocolSim psim(sc, cfg, util::Rng(7));
    psim.set_initial(bad_start);
    const auto out = psim.run();
    show_trace(out, 6);
    const auto rep = wlan::compute_loads(sc, out.assoc);
    std::printf("    converged: %s after %.3fs; total load %.3f (= 9/20, the fixed "
                "point)\n\n",
                out.converged ? "yes" : "NO", out.last_change_s, rep.total_load);
  }

  {
    std::printf("2) synchronized scan phases (the paper's Fig. 4 hazard)\n");
    sim::SimConfig cfg;
    cfg.phase_jitter_s = 0.0;
    cfg.max_time_s = 12.0;
    sim::ProtocolSim psim(sc, cfg, util::Rng(7));
    psim.set_initial(bad_start);
    const auto out = psim.run();
    show_trace(out, 8);
    std::printf("    converged: %s — u2 and u3 keep swapping on stale snapshots;\n"
                "    %lld re-associations in %.0fs of simulated time\n\n",
                out.converged ? "yes" : "NO",
                static_cast<long long>(out.counters.joins), out.end_time_s);
  }

  {
    std::printf("3) synchronized decisions with AP locks (the paper's §8 idea)\n");
    assoc::DistributedParams p;
    p.mode = assoc::UpdateMode::kSimultaneous;
    p.order = util::iota_permutation(4);
    p.initial = bad_start;
    util::Rng rng(7);
    ext::LockStats stats;
    const auto sol = ext::lock_coordinated_associate(sc, rng, p, &stats);
    std::printf("    converged: %s in %d rounds (%lld lock grants, %lld deferrals)\n",
                sol.converged ? "yes" : "NO", sol.rounds,
                static_cast<long long>(stats.lock_grants),
                static_cast<long long>(stats.deferrals));
    std::printf("    final total load %.3f — same fixed point as the sequential run\n",
                sol.loads.total_load);
  }

  std::printf("\nFor contrast, the deterministic round engine agrees:\n");
  {
    assoc::DistributedParams p;
    p.order = util::iota_permutation(4);
    p.initial = bad_start;
    p.mode = assoc::UpdateMode::kSimultaneous;
    util::Rng r1(1);
    const auto osc = assoc::distributed_associate(sc, r1, p);
    p.mode = assoc::UpdateMode::kSequential;
    util::Rng r2(1);
    const auto seq = assoc::distributed_associate(sc, r2, p);
    std::printf("  simultaneous rounds: converged=%s   sequential rounds: "
                "converged=%s (load %.3f)\n",
                osc.converged ? "yes" : "no", seq.converged ? "yes" : "no",
                seq.loads.total_load);
  }
  return 0;
}
