// Quickstart: builds the paper's Fig. 1 WLAN (2 APs, 5 users, 2 multicast
// sessions) and runs every association algorithm on it — the three
// centralized approximations, the three distributed protocols, the SSA
// baseline, and the exact solvers — printing who associates where and the
// resulting multicast loads.
//
// Run: ./quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/exact/exact_bla.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/setcover/materialize.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/util/table.hpp"

namespace {

wmcast::wlan::Scenario fig1(double stream_mbps) {
  // AP a1 reaches u1..u5 at 3, 6, 4, 4, 4 Mbps; a2 reaches u3, u4, u5 at
  // 5, 5, 3 Mbps. u1, u3 want session s1; u2, u4, u5 want s2. Budget 1.
  const std::vector<std::vector<double>> link = {{3, 6, 4, 4, 4}, {0, 0, 5, 5, 3}};
  return wmcast::wlan::Scenario::from_link_rates(link, {0, 1, 0, 1, 1},
                                                 {stream_mbps, stream_mbps}, 1.0);
}

std::string assoc_string(const wmcast::wlan::Association& a) {
  std::string s;
  for (int u = 0; u < a.n_users(); ++u) {
    if (u > 0) s += ' ';
    s += "u" + std::to_string(u + 1) + "->";
    s += a.ap_of(u) == wmcast::wlan::kNoAp ? "--" : "a" + std::to_string(a.ap_of(u) + 1);
  }
  return s;
}

void report(wmcast::util::Table& table, const wmcast::assoc::Solution& sol) {
  using wmcast::util::fmt;
  table.add_row({sol.algorithm, std::to_string(sol.loads.satisfied_users),
                 fmt(sol.loads.total_load), fmt(sol.loads.max_load),
                 assoc_string(sol.assoc)});
}

}  // namespace

int main() {
  using namespace wmcast;

  std::printf("wmcast quickstart: the paper's Fig. 1 WLAN\n\n");

  {
    std::printf("== MNU setting: 3 Mbps streams, budget 1.0 per AP ==\n");
    const auto sc = fig1(3.0);
    util::Table t({"algorithm", "served", "total", "max", "association"});
    util::Rng rng(1);
    report(t, assoc::ssa_associate(sc, rng));
    assoc::CentralizedParams verbatim;
    verbatim.mnu_augment = false;  // the paper's literal Fig. 3 greedy
    auto literal = assoc::centralized_mnu(sc, verbatim);
    literal.algorithm = "MNU-C(verbatim)";
    report(t, literal);
    report(t, assoc::centralized_mnu(sc));  // with the default augmentation
    report(t, assoc::distributed_mnu(sc, rng));
    // Exact optimum via branch and bound on the MCG instance.
    const auto sys = setcover::build_set_system(sc);
    const auto opt = exact::exact_max_coverage_uniform(sys, sc.load_budget());
    auto opt_sol = assoc::make_solution("MNU-OPT", sc, setcover::materialize(sc, sys, opt.chosen));
    report(t, opt_sol);
    t.print();
    std::printf("\n");
  }

  {
    std::printf("== BLA / MLA setting: 1 Mbps streams ==\n");
    const auto sc = fig1(1.0);
    util::Table t({"algorithm", "served", "total", "max", "association"});
    util::Rng rng(1);
    report(t, assoc::ssa_associate(sc, rng));
    report(t, assoc::centralized_mla(sc));
    report(t, assoc::distributed_mla(sc, rng));
    report(t, assoc::centralized_bla(sc));
    report(t, assoc::distributed_bla(sc, rng));
    const auto sys = setcover::build_set_system(sc);
    const auto opt_mla = exact::exact_min_cost_cover(sys);
    report(t, assoc::make_solution("MLA-OPT", sc, setcover::materialize(sc, sys, opt_mla.chosen)));
    const auto opt_bla = exact::exact_min_max_cover(sys);
    report(t, assoc::make_solution("BLA-OPT", sc, setcover::materialize(sc, sys, opt_bla.chosen)));
    t.print();
  }

  std::printf("\nExpected: the paper's verbatim centralized MNU greedy serves 3 users;\n"
              "our default augmentation (MNU-C) recovers the 4th, matching the\n"
              "optimum. MLA puts everyone on a1 for a total load of 7/12 (optimal);\n"
              "distributed BLA reaches the optimal max load of 1/2 while\n"
              "centralized BLA settles at 7/12.\n");
  return 0;
}
