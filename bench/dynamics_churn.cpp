// Dynamics experiment (paper §3.1 quasi-static users; §1's argument that
// distributed control suits large networks because "centralized solutions
// will lead to more frequent changes in associations causing increased
// signaling"): an epoch-based churn study. Each epoch a fraction of users
// relocates and/or zaps channels; we compare
//   * warm distributed resume (carry the association, let users re-decide),
//   * cold centralized re-solve (MLA-C from scratch each epoch),
// on solution quality AND on re-association signaling per epoch.
//
// Run: ./dynamics_churn [--epochs=20] [--seed=41] [--move=0.1] [--zap=0.05]

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/sim/handoff.hpp"
#include "wmcast/wlan/mobility.hpp"

using namespace wmcast;

namespace {

int reassociations(const wlan::Association& from, const wlan::Association& to) {
  int changed = 0;
  for (int u = 0; u < from.n_users(); ++u) {
    if (from.ap_of(u) != to.ap_of(u)) ++changed;
  }
  return changed;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int epochs = args.get_int("epochs", 20);
  const uint64_t seed = args.get_u64("seed", 41);

  wlan::ChurnParams churn;
  churn.move_fraction = args.get_double("move", 0.1);
  churn.zap_fraction = args.get_double("zap", 0.05);

  bench::print_header("Dynamics: association quality and signaling under churn",
                      args, epochs, seed, 1.0);
  std::printf("100 APs / 300 users / 5 sessions; per epoch: %.0f%% of users move,\n"
              "%.0f%% zap channels; %d epochs\n\n",
              100 * churn.move_fraction, 100 * churn.zap_fraction, epochs);

  wlan::GeneratorParams p;
  p.n_aps = 100;
  p.n_users = 300;
  util::Rng rng(seed);
  auto sc = wlan::generate_scenario(p, rng);

  // Initial associations.
  util::Rng warm_rng(seed + 1);
  auto warm = assoc::distributed_mla(sc, warm_rng);
  auto cold_assoc = assoc::centralized_mla(sc).assoc;

  util::RunningStat warm_load, cold_load, warm_gap;
  util::RunningStat warm_signal, cold_signal, warm_rounds;
  std::vector<wlan::Association> warm_snaps{warm.assoc};
  std::vector<wlan::Association> cold_snaps{cold_assoc};

  util::Table t({"epoch", "warm_total", "cold_total", "warm_reassoc", "cold_reassoc",
                 "warm_rounds"});
  for (int e = 0; e < epochs; ++e) {
    const auto next = wlan::churn_epoch(sc, churn, rng);

    // Warm: carry the previous association, resume the distributed engine.
    const auto carried = wlan::carry_over(next, sc, warm.assoc);
    assoc::DistributedParams dp;
    dp.initial = carried;
    util::Rng r1 = rng.fork();
    auto resumed = assoc::distributed_associate(next, r1, dp);
    resumed.algorithm = "MLA-D(warm)";
    const int warm_changes = reassociations(warm.assoc, resumed.assoc);

    // Cold: centralized re-solve from scratch.
    const auto fresh = assoc::centralized_mla(next);
    const int cold_changes = reassociations(cold_assoc, fresh.assoc);

    warm_load.add(resumed.loads.total_load);
    cold_load.add(fresh.loads.total_load);
    warm_gap.add(util::percent_gain(resumed.loads.total_load, fresh.loads.total_load));
    warm_signal.add(warm_changes);
    cold_signal.add(cold_changes);
    warm_rounds.add(resumed.rounds);

    t.add_row({std::to_string(e), util::fmt(resumed.loads.total_load, 2),
               util::fmt(fresh.loads.total_load, 2), std::to_string(warm_changes),
               std::to_string(cold_changes), std::to_string(resumed.rounds)});

    warm = std::move(resumed);
    cold_assoc = fresh.assoc;
    warm_snaps.push_back(warm.assoc);
    cold_snaps.push_back(cold_assoc);
    sc = next;
  }
  t.print();

  // Stream-disruption accounting (SyncScan-style handoff costs).
  const auto warm_disruption = sim::account_disruptions(warm_snaps);
  const auto cold_disruption = sim::account_disruptions(cold_snaps);
  std::printf("\nstream disruption (0.3 s per handoff, 1 s per rejoin):\n");
  std::printf("  warm distributed: %.1f s total, worst user %.1f s\n",
              warm_disruption.total_disruption_s,
              warm_disruption.worst_user_disruption_s);
  std::printf("  cold centralized: %.1f s total, worst user %.1f s\n",
              cold_disruption.total_disruption_s,
              cold_disruption.worst_user_disruption_s);

  std::printf("\naverages over %d epochs:\n", epochs);
  std::printf("  total load: warm distributed %.2f vs cold centralized %.2f "
              "(+%.1f%%)\n", warm_load.mean(), cold_load.mean(), warm_gap.mean());
  std::printf("  re-associations per epoch: warm %.1f vs cold %.1f (%.1fx less "
              "signaling)\n", warm_signal.mean(), cold_signal.mean(),
              cold_signal.mean() / std::max(warm_signal.mean(), 1.0));
  std::printf("  warm convergence: %.1f rounds per epoch\n", warm_rounds.mean());
  std::printf("\nThe distributed resume stays within a few percent of the cold\n"
              "centralized optimum while re-associating far fewer users — the\n"
              "paper's case for distributed control in large WLANs, quantified.\n");
  return 0;
}
