// Dynamics experiment (paper §3.1 quasi-static users; §1's argument that
// distributed control suits large networks because "centralized solutions
// will lead to more frequent changes in associations causing increased
// signaling"): an epoch-based churn study. Each epoch a batch of events from
// the shared controller trace generator (ctrl/trace — the same module that
// drives bench/ctrl_replay) lands, and we compare
//   * warm distributed resume (carry the association, let users re-decide),
//   * cold centralized re-solve (MLA-C from scratch each epoch),
// on solution quality AND on re-association signaling per epoch.
//
// Run: ./dynamics_churn [--epochs=20] [--seed=41] [--move=0.1] [--zap=0.05]
//                       [--walk=0] [--leave=0] [--join=0] [--rate-prob=0]
//                       [--json=out.json]

#include <fstream>

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/core/engine.hpp"
#include "wmcast/ctrl/engine_source.hpp"
#include "wmcast/ctrl/state.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/sim/handoff.hpp"
#include "wmcast/util/json.hpp"

using namespace wmcast;

namespace {

struct SlotDelta {
  int changes = 0;   // any slot whose AP differs (incl. joins and drops)
  int handoffs = 0;  // AP -> different-AP moves (802.11 Reassociation frames)
};

SlotDelta slot_delta(const std::vector<int>& from, const std::vector<int>& to) {
  SlotDelta d;
  const size_t n = std::max(from.size(), to.size());
  for (size_t s = 0; s < n; ++s) {
    const int a = s < from.size() ? from[s] : wlan::kNoAp;
    const int b = s < to.size() ? to[s] : wlan::kNoAp;
    if (a == b) continue;
    ++d.changes;
    if (a != wlan::kNoAp && b != wlan::kNoAp) ++d.handoffs;
  }
  return d;
}

/// Advances a slot-space coverage engine from `prev` to `cur` with the same
/// dirty-group protocol the online controller uses: only APs whose candidate
/// sets could differ (old sets via the inverted index, new in-range APs by
/// position) are re-projected. The engine's lifetime stats quantify how much
/// of the system each epoch actually rebuilds.
void advance_engine(core::CoverageEngine& eng, const ctrl::NetworkState& prev,
                    const ctrl::NetworkState& cur) {
  std::vector<int> dirty;
  std::vector<char> mark(static_cast<size_t>(cur.n_aps()), 0);
  const auto add = [&](int a) {
    if (mark[static_cast<size_t>(a)] == 0) {
      mark[static_cast<size_t>(a)] = 1;
      dirty.push_back(a);
    }
  };
  bool rate_changed = false;
  for (int t = 0; t < cur.n_sessions() && !rate_changed; ++t) {
    rate_changed = cur.session_rate(t) != prev.session_rate(t);
  }
  if (rate_changed) {
    for (int a = 0; a < cur.n_aps(); ++a) add(a);
  } else {
    for (int s = 0; s < cur.n_slots(); ++s) {
      if (s < prev.n_slots() && prev.slot(s) == cur.slot(s)) continue;
      if (s < eng.n_elements()) {
        eng.for_each_set_of(s, [&](int j) { add(eng.ap(j)); });
      }
      if (cur.slot(s).wants_service()) {
        for (int a = 0; a < cur.n_aps(); ++a) {
          if (cur.link_rate(a, s) > 0.0) add(a);
        }
      }
    }
  }
  if (dirty.empty() && cur.n_slots() <= eng.n_elements()) return;
  eng.update_groups(ctrl::StateSource(cur), dirty, true);
}

/// Pads slot-space snapshots to a common width so sim::account_disruptions
/// (which requires equal user counts) accepts traces with arrivals.
std::vector<wlan::Association> pad_snapshots(
    const std::vector<std::vector<int>>& snaps) {
  size_t width = 0;
  for (const auto& s : snaps) width = std::max(width, s.size());
  std::vector<wlan::Association> out;
  out.reserve(snaps.size());
  for (const auto& s : snaps) {
    wlan::Association a = wlan::Association::none(static_cast<int>(width));
    std::copy(s.begin(), s.end(), a.user_ap.begin());
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"seed", "threads", "epochs", "join", "leave",
                       "move", "walk", "zap", "rate-prob", "json"});
  const uint64_t seed = args.get_u64("seed", 41);

  ctrl::TraceParams tp;
  tp.epochs = args.get_int("epochs", 20);
  tp.move_fraction = args.get_double("move", 0.1);
  tp.walk_sigma_m = args.get_double("walk", 0.0);
  tp.zap_fraction = args.get_double("zap", 0.05);
  tp.leave_fraction = args.get_double("leave", 0.0);
  tp.join_fraction = args.get_double("join", 0.0);
  tp.rate_change_prob = args.get_double("rate-prob", 0.0);

  bench::print_header("Dynamics: association quality and signaling under churn",
                      args, tp.epochs, seed, 1.0);
  std::printf("100 APs / 300 users / 5 sessions; per epoch: %.0f%% of users move,\n"
              "%.0f%% zap channels; %d epochs (trace: ctrl/trace generator)\n\n",
              100 * tp.move_fraction, 100 * tp.zap_fraction, tp.epochs);

  wlan::GeneratorParams p;
  p.n_aps = 100;
  p.n_users = 300;
  util::Rng rng(seed);
  const auto sc0 = wlan::generate_scenario(p, rng);

  // The shared churn trace both this bench and ctrl_replay consume.
  auto state = ctrl::NetworkState::from_scenario(sc0);
  util::Rng trace_rng(seed + 3);
  const auto trace = ctrl::generate_churn_trace(state, tp, trace_rng);

  // Initial associations (slot space; row == slot while nobody has churned).
  util::Rng warm_rng(seed + 1);
  auto warm = assoc::distributed_mla(sc0, warm_rng);
  auto cold = assoc::centralized_mla(sc0);
  std::vector<int> warm_slot = warm.assoc.user_ap;
  std::vector<int> cold_slot = cold.assoc.user_ap;

  util::RunningStat warm_load, cold_load, warm_gap;
  util::RunningStat warm_signal, cold_signal, warm_hand, cold_hand, warm_rounds;
  std::vector<std::vector<int>> warm_snaps{warm_slot};
  std::vector<std::vector<int>> cold_snaps{cold_slot};

  // Slot-space engine kept current across the trace via the dirty-group
  // protocol; its stats report the rebuild-vs-repair split at the end.
  core::CoverageEngine eng;
  eng.build_full(ctrl::StateSource(state), true);

  util::Table t({"epoch", "warm_total", "cold_total", "warm_reassoc", "cold_reassoc",
                 "warm_rounds"});
  for (int e = 0; e < trace.n_epochs(); ++e) {
    const ctrl::NetworkState prev = state;
    for (const auto& ev : trace.epochs[static_cast<size_t>(e)]) state.apply(ev);
    advance_engine(eng, prev, state);
    std::vector<int> row_slot;
    const auto sc = state.to_scenario(&row_slot);

    // Warm: carry every still-valid association, resume the distributed engine.
    wlan::Association carried = wlan::Association::none(sc.n_users());
    for (int r = 0; r < sc.n_users(); ++r) {
      const int s = row_slot[static_cast<size_t>(r)];
      const int old = s < static_cast<int>(warm_slot.size()) ? warm_slot[static_cast<size_t>(s)]
                                                             : wlan::kNoAp;
      if (old != wlan::kNoAp && state.link_rate(old, s) > 0.0) {
        carried.user_ap[static_cast<size_t>(r)] = old;
      }
    }
    assoc::DistributedParams dp;
    dp.initial = carried;
    util::Rng r1 = rng.fork();
    auto resumed = assoc::distributed_associate(sc, r1, dp);
    resumed.algorithm = "MLA-D(warm)";
    const auto new_warm = ctrl::slot_association(resumed.assoc, row_slot, state.n_slots());
    const auto wd = slot_delta(warm_slot, new_warm);

    // Cold: centralized re-solve from scratch.
    const auto fresh = assoc::centralized_mla(sc);
    const auto new_cold = ctrl::slot_association(fresh.assoc, row_slot, state.n_slots());
    const auto cd = slot_delta(cold_slot, new_cold);

    warm_load.add(resumed.loads.total_load);
    cold_load.add(fresh.loads.total_load);
    warm_gap.add(util::percent_gain(resumed.loads.total_load, fresh.loads.total_load));
    warm_signal.add(wd.changes);
    cold_signal.add(cd.changes);
    warm_hand.add(wd.handoffs);
    cold_hand.add(cd.handoffs);
    warm_rounds.add(resumed.rounds);

    t.add_row({std::to_string(e), util::fmt(resumed.loads.total_load, 2),
               util::fmt(fresh.loads.total_load, 2), std::to_string(wd.changes),
               std::to_string(cd.changes), std::to_string(resumed.rounds)});

    warm_slot = new_warm;
    cold_slot = new_cold;
    warm_snaps.push_back(warm_slot);
    cold_snaps.push_back(cold_slot);
  }
  t.print();

  // Stream-disruption accounting (SyncScan-style handoff costs).
  const auto warm_disruption = sim::account_disruptions(pad_snapshots(warm_snaps));
  const auto cold_disruption = sim::account_disruptions(pad_snapshots(cold_snaps));
  std::printf("\nstream disruption (0.3 s per handoff, 1 s per rejoin):\n");
  std::printf("  warm distributed: %.1f s total, worst user %.1f s\n",
              warm_disruption.total_disruption_s,
              warm_disruption.worst_user_disruption_s);
  std::printf("  cold centralized: %.1f s total, worst user %.1f s\n",
              cold_disruption.total_disruption_s,
              cold_disruption.worst_user_disruption_s);

  const double ratio = cold_signal.mean() / std::max(warm_signal.mean(), 1.0);
  std::printf("\naverages over %d epochs:\n", tp.epochs);
  std::printf("  total load: warm distributed %.2f vs cold centralized %.2f "
              "(+%.1f%%)\n", warm_load.mean(), cold_load.mean(), warm_gap.mean());
  std::printf("  re-associations per epoch: warm %.1f vs cold %.1f (%.1fx less "
              "signaling)\n", warm_signal.mean(), cold_signal.mean(), ratio);
  std::printf("  warm convergence: %.1f rounds per epoch\n", warm_rounds.mean());
  const auto& es = eng.stats();
  std::printf("  engine: %llu incremental updates rebuilt %llu AP candidate sets "
              "(of %d per-epoch full rebuilds the cold path implies); %llu sets "
              "rebuilt, %llu retired, %llu compactions\n",
              static_cast<unsigned long long>(es.incremental_updates),
              static_cast<unsigned long long>(es.groups_rebuilt),
              state.n_aps() * trace.n_epochs(),
              static_cast<unsigned long long>(es.sets_rebuilt),
              static_cast<unsigned long long>(es.sets_retired),
              static_cast<unsigned long long>(es.compactions));
  std::printf("\nThe distributed resume stays within a few percent of the cold\n"
              "centralized optimum while re-associating far fewer users — the\n"
              "paper's case for distributed control in large WLANs, quantified.\n");

  const std::string json_out = args.get("json", "");
  if (!json_out.empty()) {
    util::Json j = util::Json::object();
    j.set("bench", std::string("dynamics_churn"));
    j.set("epochs", static_cast<int64_t>(tp.epochs));
    j.set("seed", static_cast<int64_t>(seed));
    j.set("move_fraction", tp.move_fraction);
    j.set("walk_sigma_m", tp.walk_sigma_m);
    j.set("zap_fraction", tp.zap_fraction);
    j.set("leave_fraction", tp.leave_fraction);
    j.set("join_fraction", tp.join_fraction);
    j.set("warm_total_load", warm_load.mean());
    j.set("cold_total_load", cold_load.mean());
    j.set("load_gap_pct", warm_gap.mean());
    j.set("warm_reassoc_per_epoch", warm_signal.mean());
    j.set("cold_reassoc_per_epoch", cold_signal.mean());
    j.set("warm_handoffs_per_epoch", warm_hand.mean());
    j.set("cold_handoffs_per_epoch", cold_hand.mean());
    j.set("signaling_ratio", ratio);
    j.set("warm_rounds_per_epoch", warm_rounds.mean());
    j.set("warm_disruption_s", warm_disruption.total_disruption_s);
    j.set("cold_disruption_s", cold_disruption.total_disruption_s);
    util::Json ej = util::Json::object();
    ej.set("full_builds", static_cast<int64_t>(es.full_builds));
    ej.set("incremental_updates", static_cast<int64_t>(es.incremental_updates));
    ej.set("groups_rebuilt", static_cast<int64_t>(es.groups_rebuilt));
    ej.set("sets_rebuilt", static_cast<int64_t>(es.sets_rebuilt));
    ej.set("sets_retired", static_cast<int64_t>(es.sets_retired));
    ej.set("compactions", static_cast<int64_t>(es.compactions));
    ej.set("group_rebuild_fraction",
           static_cast<double>(es.groups_rebuilt) /
               std::max(1, state.n_aps() * trace.n_epochs()));
    j.set("engine", std::move(ej));
    std::ofstream f(json_out);
    f << j.dump(2) << "\n";
    std::printf("  json written to %s\n", json_out.c_str());
  }
  return 0;
}
