// Motivation experiment (paper §1/§3.2, not a numbered figure): multicast
// services "must minimally impact the existing unicast services". Using the
// frame-level channel simulator we measure, end to end, the unicast goodput
// a fixed population of saturated clients gets under each multicast
// association policy — the airtime freed by MLA/BLA turns into bytes.
//
// Run: ./motivation_unicast_impact [--scenarios=10] [--seed=31] [--rate=1.0]
//                                  [--clients=150]

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/sim/unicast_impact.hpp"

using namespace wmcast;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"scenarios", "rate", "clients", "seed", "threads"});
  const int scenarios = args.get_int("scenarios", 10);
  const uint64_t seed = args.get_u64("seed", 31);
  const double rate = args.get_double("rate", 1.0);
  const int clients = args.get_int("clients", 150);

  bench::print_header(
      "Motivation: unicast goodput under multicast association policies\n"
      "(frame-level channel simulation; saturated downlink clients)",
      args, scenarios, seed, rate);

  wlan::GeneratorParams p;
  p.n_aps = 60;
  p.n_users = 240;
  p.n_sessions = 6;
  p.area_side_m = 600.0;
  p.session_rate_mbps = rate;

  std::printf("60 APs / 600x600 m, 240 multicast users, 6 sessions, %d unicast "
              "clients\n\n", clients);

  struct PolicyStat {
    const char* name;
    util::RunningStat goodput, worst, busy;
  };
  PolicyStat stats[] = {{"no-multicast", {}, {}, {}},
                        {"SSA", {}, {}, {}},
                        {"MLA-C", {}, {}, {}},
                        {"BLA-C", {}, {}, {}},
                        {"MLA-D", {}, {}, {}}};

  util::Rng master(seed);
  for (int s = 0; s < scenarios; ++s) {
    util::Rng srng = master.fork();
    const auto sc = wlan::generate_scenario(p, srng);
    const uint64_t placement_seed = master.fork().next_u64();

    util::Rng ssa_rng = master.fork();
    util::Rng mlad_rng = master.fork();
    const wlan::Association assocs[] = {
        wlan::Association::none(sc.n_users()),
        assoc::ssa_associate(sc, ssa_rng).assoc,
        assoc::centralized_mla(sc).assoc,
        assoc::centralized_bla(sc).assoc,
        assoc::distributed_mla(sc, mlad_rng).assoc,
    };
    for (size_t k = 0; k < std::size(assocs); ++k) {
      sim::UnicastImpactConfig cfg;
      cfg.n_unicast_clients = clients;
      cfg.channel.horizon_s = 2.0;
      util::Rng place_rng(placement_seed);  // identical placement per policy
      const auto r = sim::measure_unicast_impact(sc, assocs[k], cfg, place_rng);
      stats[k].goodput.add(r.total_goodput_mbps);
      stats[k].worst.add(r.worst_client_goodput_mbps);
      stats[k].busy.add(r.max_multicast_busy);
    }
  }

  util::Table t({"policy", "unicast_goodput_Mbps", "vs_no_multicast_pct",
                 "worst_client_Mbps", "max_mc_busy"});
  const double baseline = stats[0].goodput.mean();
  for (const auto& s : stats) {
    t.add_row({s.name, util::fmt(s.goodput.mean(), 1),
               util::fmt(util::percent_reduction(s.goodput.mean(), baseline), 1),
               util::fmt(s.worst.mean(), 2), util::fmt(s.busy.mean(), 3)});
  }
  t.print();

  std::printf("\nunicast goodput recovered by association control vs SSA:\n");
  std::printf("  MLA-C +%.1f%%   BLA-C +%.1f%%   MLA-D +%.1f%%\n",
              util::percent_gain(stats[2].goodput.mean(), stats[1].goodput.mean()),
              util::percent_gain(stats[3].goodput.mean(), stats[1].goodput.mean()),
              util::percent_gain(stats[4].goodput.mean(), stats[1].goodput.mean()));
  std::printf("(the 'vs_no_multicast' column is the total cost of offering the\n"
              " streams at all — the paper's 'minimal impact' criterion)\n");
  return 0;
}
