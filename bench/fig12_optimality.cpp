// Figure 12 reproduction: optimality evaluation on small networks (30 APs,
// 600 m x 600 m, 10..50 users). The paper solved ILPs; we use exact
// branch-and-bound solvers (see DESIGN.md substitution table).
//   (a) total AP load:        MLA-C / MLA-D / SSA vs OPT
//   (b) maximum AP load:      BLA-C / BLA-D / SSA vs OPT
//   (c) unsatisfied users:    MNU-C / MNU-D / SSA vs OPT, budget 0.042
//
// Paper's reference points: MLA-C/MLA-D 25%/22.2% above OPT at 30 users;
// BLA-C/BLA-D 12%/22.6% above OPT at 40 users; max unsatisfied for MNU-C/
// MNU-D 5/8 at 50 users vs 1 for OPT.
//
// Run: ./fig12_optimality [--scenarios=40] [--seed=12] [--rate=1.0]
//                         [--budget_c=0.042] [--time_limit=5.0] [--csv=prefix]

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/exact/exact_bla.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/setcover/reduction.hpp"

using namespace wmcast;

namespace {

int g_truncated = 0;  // exact runs that hit a limit (reported at the end)

exact::BbLimits g_limits;

double exact_mla_total(const wlan::Scenario& sc) {
  const auto sys = setcover::build_set_system(sc);
  const auto res = exact::exact_min_cost_cover(sys, g_limits);
  if (res.status != exact::BbStatus::kOptimal) ++g_truncated;
  return res.cost;
}

double exact_bla_max(const wlan::Scenario& sc) {
  const auto sys = setcover::build_set_system(sc);
  const auto res = exact::exact_min_max_cover(sys, g_limits);
  if (res.status != exact::BbStatus::kOptimal) ++g_truncated;
  return res.max_group_cost;
}

double exact_mnu_unsatisfied(const wlan::Scenario& sc) {
  const auto sys = setcover::build_set_system(sc);
  const auto res = exact::exact_max_coverage_uniform(sys, sc.load_budget(), g_limits);
  if (res.status != exact::BbStatus::kOptimal) ++g_truncated;
  return sc.n_users() - res.covered;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"scenarios", "rate", "csv", "seed", "threads", "budget_c", "time_limit"});
  util::ThreadPool pool(bench::thread_count(args));
  const int scenarios = args.get_int("scenarios", 40);
  const uint64_t seed = args.get_u64("seed", 12);
  const double rate = args.get_double("rate", 1.0);
  const double budget_c = args.get_double("budget_c", 0.042);
  g_limits.time_limit_s = args.get_double("time_limit", 5.0);

  bench::print_header(
      "Figure 12: optimality of MLA/BLA/MNU on small networks\n"
      "30 APs, 600 m x 600 m, 5 sessions; exact B&B in place of the paper's ILP",
      args, scenarios, seed, rate);

  const std::vector<int> user_counts = {10, 20, 30, 40, 50};

  // (a) total AP load vs OPT.
  {
    const std::vector<bench::Algo> algos = {
        {"SSA",
         [](const wlan::Scenario& sc, util::Rng& rng) {
           return assoc::ssa_associate(sc, rng).loads.total_load;
         }},
        {"MLA-C",
         [](const wlan::Scenario& sc, util::Rng&) {
           return assoc::centralized_mla(sc).loads.total_load;
         }},
        {"MLA-D",
         [](const wlan::Scenario& sc, util::Rng& rng) {
           return assoc::distributed_mla(sc, rng).loads.total_load;
         }},
        {"OPT", [](const wlan::Scenario& sc, util::Rng&) { return exact_mla_total(sc); }},
    };
    util::Table t(bench::summary_headers("users", algos));
    std::vector<util::Summary> at30;
    for (const int users : user_counts) {
      auto p = wlan::fig12_params(users);
      p.session_rate_mbps = rate;
      const auto sums = bench::sweep_point(p, scenarios, seed, algos, &pool);
      t.add_row(bench::summary_row(std::to_string(users), sums));
      if (users == 30) at30 = sums;
    }
    std::printf("(a) total AP load vs OPT\n");
    t.print();
    if (!at30.empty() && at30[3].avg > 0) {
      std::printf("at 30 users: MLA-C %.1f%% above OPT (paper: 25%%), "
                  "MLA-D %.1f%% above OPT (paper: 22.2%%)\n\n",
                  util::percent_gain(at30[1].avg, at30[3].avg),
                  util::percent_gain(at30[2].avg, at30[3].avg));
    }
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_a.csv");
  }

  // (b) maximum AP load vs OPT.
  {
    const std::vector<bench::Algo> algos = {
        {"SSA",
         [](const wlan::Scenario& sc, util::Rng& rng) {
           return assoc::ssa_associate(sc, rng).loads.max_load;
         }},
        {"BLA-C",
         [](const wlan::Scenario& sc, util::Rng&) {
           return assoc::centralized_bla(sc).loads.max_load;
         }},
        {"BLA-D",
         [](const wlan::Scenario& sc, util::Rng& rng) {
           return assoc::distributed_bla(sc, rng).loads.max_load;
         }},
        {"OPT", [](const wlan::Scenario& sc, util::Rng&) { return exact_bla_max(sc); }},
    };
    util::Table t(bench::summary_headers("users", algos));
    std::vector<util::Summary> at40;
    for (const int users : user_counts) {
      auto p = wlan::fig12_params(users);
      p.session_rate_mbps = rate;
      const auto sums = bench::sweep_point(p, scenarios, seed, algos, &pool);
      t.add_row(bench::summary_row(std::to_string(users), sums));
      if (users == 40) at40 = sums;
    }
    std::printf("(b) maximum AP load vs OPT\n");
    t.print();
    if (!at40.empty() && at40[3].avg > 0) {
      std::printf("at 40 users: BLA-C %.1f%% above OPT (paper: 12%%), "
                  "BLA-D %.1f%% above OPT (paper: 22.6%%)\n\n",
                  util::percent_gain(at40[1].avg, at40[3].avg),
                  util::percent_gain(at40[2].avg, at40[3].avg));
    }
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_b.csv");
  }

  // (c) unsatisfied users at a tight budget vs OPT.
  {
    const std::vector<bench::Algo> algos = {
        {"SSA",
         [](const wlan::Scenario& sc, util::Rng& rng) {
           return static_cast<double>(sc.n_users() -
                                      assoc::ssa_associate(sc, rng).loads.satisfied_users);
         }},
        {"MNU-C",
         [](const wlan::Scenario& sc, util::Rng&) {
           return static_cast<double>(sc.n_users() -
                                      assoc::centralized_mnu(sc).loads.satisfied_users);
         }},
        {"MNU-D",
         [](const wlan::Scenario& sc, util::Rng& rng) {
           return static_cast<double>(sc.n_users() -
                                      assoc::distributed_mnu(sc, rng).loads.satisfied_users);
         }},
        {"OPT",
         [](const wlan::Scenario& sc, util::Rng&) { return exact_mnu_unsatisfied(sc); }},
    };
    util::Table t(bench::summary_headers("users", algos));
    for (const int users : user_counts) {
      auto p = wlan::fig12_params(users);
      p.session_rate_mbps = rate;
      p.load_budget = budget_c;
      t.add_row(bench::summary_row(std::to_string(users),
                                   bench::sweep_point(p, scenarios, seed, algos, &pool), 1));
    }
    std::printf("(c) unsatisfied users (budget %.3f) vs OPT\n", budget_c);
    t.print();
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_c.csv");
  }

  if (g_truncated > 0) {
    std::printf("\nWARNING: %d exact runs hit the %.1fs time limit; their rows are\n"
                "upper bounds (incumbents), not proven optima.\n",
                g_truncated, g_limits.time_limit_s);
  } else {
    std::printf("\nall exact runs proved optimality within the time limit.\n");
  }
  return 0;
}
