// Figure 11 reproduction: number of satisfied users vs per-AP multicast load
// budget; MNU-C / MNU-D vs SSA; 400 users, 100 APs, 18 sessions.
//
// Paper's headline at budget 0.04: MNU-C 36.9% and MNU-D 20.2% more
// satisfied users than SSA.
//
// Run: ./fig11_satisfied_users [--scenarios=40] [--seed=11] [--rate=1.0]
//                              [--csv=path]

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"

using namespace wmcast;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"scenarios", "rate", "csv", "seed", "threads", "simd"});
  util::resolve_simd(args);
  util::ThreadPool pool(bench::thread_count(args));
  const int scenarios = args.get_int("scenarios", 40);
  const uint64_t seed = args.get_u64("seed", 11);
  const double rate = args.get_double("rate", 1.0);

  const std::vector<bench::Algo> algos = {
      {"SSA",
       [](const wlan::Scenario& sc, util::Rng& rng) {
         return static_cast<double>(assoc::ssa_associate(sc, rng).loads.satisfied_users);
       }},
      {"MNU-C",
       [](const wlan::Scenario& sc, util::Rng&) {
         return static_cast<double>(assoc::centralized_mnu(sc).loads.satisfied_users);
       }},
      {"MNU-D",
       [](const wlan::Scenario& sc, util::Rng& rng) {
         return static_cast<double>(assoc::distributed_mnu(sc, rng).loads.satisfied_users);
       }},
  };

  bench::print_header(
      "Figure 11: satisfied users vs multicast load budget (MNU vs SSA)\n"
      "400 users, 100 APs, 18 sessions",
      args, scenarios, seed, rate);

  util::Table t(bench::summary_headers("budget", algos));
  std::vector<util::Summary> at004;
  for (const double budget : {0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10, 0.15, 0.20}) {
    wlan::GeneratorParams p;
    p.n_aps = 100;
    p.n_users = 400;
    p.n_sessions = 18;
    p.session_rate_mbps = rate;
    p.load_budget = budget;
    const auto sums = bench::sweep_point(p, scenarios, seed, algos, &pool);
    t.add_row(bench::summary_row(util::fmt(budget, 2), sums, 1));
    if (budget == 0.04) at004 = sums;
  }
  t.print();
  if (!at004.empty()) {
    std::printf("\nat budget 0.04: MNU-C %.1f%% more users than SSA (paper: 36.9%%), "
                "MNU-D %.1f%% more (paper: 20.2%%)\n",
                util::percent_gain(at004[1].avg, at004[0].avg),
                util::percent_gain(at004[2].avg, at004[0].avg));
  }
  if (args.has("csv")) t.write_csv(args.get("csv", ""));
  return 0;
}
