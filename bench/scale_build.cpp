// Scale bench for the sparse scenario pipeline (DESIGN.md §11): measures
// grid-indexed CSR construction time and memory against the pre-sparse dense
// [ap][user] build at large user counts, up to million-user instances.
//
// The area side is derived from the AP count so the mean candidate degree
// (APs in range per user) stays fixed as the instance grows — the regime the
// sparse pipeline targets: n_links grows linearly in users, while the dense
// matrix grows as users x APs.
//
// Run: ./scale_build [--users=100000] [--aps=2000] [--sessions=8]
//                    [--degree=20] [--seed=71] [--threads=N] [--dense]
//                    [--solve] [--k=1] [--require-speedup=0] [--json=out.json]
//                    [--simd=auto|scalar|avx2]
//
//  --dense             also run the dense reference build (same instance) and
//                      verify the two scenarios are identical
//  --solve             run centralized MLA end-to-end on the built scenario
//  --k=K               with --solve and K >= 2, add an mla_solve_k2 arm: the
//                      same MLA solve plus the k-connectivity augmentation
//                      (DESIGN.md §15), so the overlay's incremental cost is
//                      guarded separately from the base solve
//  --require-speedup=K exit 1 unless sparse beats dense by >= K in BOTH build
//                      time and model bytes (implies --dense); CI pins K=10
//                      at 100k users / 2k APs
//  --json              wmcast-microbench/v1 document for tools/bench_guard;
//                      entries carry "bytes" (deterministic memory_bytes()
//                      accounting) and informational "peak_rss_bytes"
//
// Order matters for RSS: the sparse arm runs before the dense arm because
// Linux ru_maxrss is a high-water mark — once the dense matrix has been
// resident, every later reading would report it.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/util/cli.hpp"
#include "wmcast/util/json.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/util/table.hpp"
#include "wmcast/util/thread_pool.hpp"
#include "wmcast/wlan/scenario.hpp"

using namespace wmcast;

using wmcast::bench::now_seconds;
using wmcast::bench::peak_rss_bytes;

namespace {

struct Arm {
  std::string name;
  double seconds = 0.0;
  size_t model_bytes = 0;   // deterministic: what the representation stores
  size_t peak_rss = 0;      // informational: process high-water mark after it
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"users", "aps", "sessions", "degree", "seed", "threads",
                       "dense", "solve", "k", "require-speedup", "json", "simd"});
  util::resolve_simd(args);
  const int n_users = args.get_int("users", 100000);
  const int n_aps = args.get_int("aps", 2000);
  const int n_sessions = args.get_int("sessions", 8);
  const double degree = args.get_double("degree", 20.0);
  const uint64_t seed = args.get_u64("seed", 71);
  const double require_speedup = args.get_double("require-speedup", 0.0);
  const bool run_solve = args.get_bool("solve", false);
  const int k = args.get_int("k", 1);
  const bool run_dense = args.get_bool("dense", false) || require_speedup > 0.0;
  util::ThreadPool pool(util::resolve_threads(args));

  const wlan::RateTable table = wlan::RateTable::ieee80211a();
  const double r = table.range_m();
  // degree = (n_aps / side^2) * pi * r^2  =>  side fixing the mean AP degree.
  const double side =
      std::sqrt(static_cast<double>(n_aps) * 3.14159265358979323846 * r * r / degree);

  std::printf("scale_build: %d users, %d APs, side %.0f m (target degree %.0f), "
              "threads %d\n\n", n_users, n_aps, side, degree, pool.size());

  // Draw the instance once; both arms consume identical inputs.
  util::Rng rng(seed);
  std::vector<wlan::Point> ap_pos(static_cast<size_t>(n_aps));
  for (auto& p : ap_pos) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  std::vector<wlan::Point> user_pos(static_cast<size_t>(n_users));
  for (auto& p : user_pos) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  std::vector<int> user_session(static_cast<size_t>(n_users));
  for (auto& s : user_session) s = rng.next_int(n_sessions);
  const std::vector<double> session_rates(static_cast<size_t>(n_sessions), 1.0);

  std::vector<Arm> arms;

  double t0 = now_seconds();
  const wlan::Scenario sparse = wlan::Scenario::from_geometry(
      ap_pos, user_pos, user_session, session_rates, table, 0.9, &pool);
  arms.push_back({"sparse_build", now_seconds() - t0, sparse.memory_bytes(),
                  peak_rss_bytes()});
  std::printf("sparse: %lld links (%.1f per user), basic rate %.0f Mbps\n",
              static_cast<long long>(sparse.n_links()),
              sparse.n_users() > 0
                  ? static_cast<double>(sparse.n_links()) / sparse.n_users()
                  : 0.0,
              sparse.basic_rate());

  double solve_seconds = 0.0;
  if (run_solve) {
    t0 = now_seconds();
    const auto sol = assoc::centralized_mla(sparse);
    solve_seconds = now_seconds() - t0;
    arms.push_back({"mla_solve", solve_seconds, sparse.memory_bytes(),
                    peak_rss_bytes()});
    std::printf("MLA: total load %.3f, %.2fs\n", sol.loads.total_load, solve_seconds);

    if (k >= 2) {
      assoc::CentralizedParams kp;
      kp.k = k;
      t0 = now_seconds();
      const auto ksol = assoc::centralized_mla(sparse, kp);
      const double k_seconds = now_seconds() - t0;
      arms.push_back({"mla_solve_k2", k_seconds, sparse.memory_bytes(),
                      peak_rss_bytes()});
      std::printf("MLA k=%d: %d multi-served users, mean effective rate %.2f Mbps, "
                  "%.2fs (+%.0f%% over k=1)\n",
                  k, ksol.multi_loads.multi_served_users,
                  ksol.multi_loads.mean_effective_rate, k_seconds,
                  solve_seconds > 0.0 ? (k_seconds / solve_seconds - 1.0) * 100.0 : 0.0);
    }
  }

  if (run_dense) {
    t0 = now_seconds();
    const wlan::Scenario dense = wlan::Scenario::from_geometry_dense(
        ap_pos, user_pos, user_session, session_rates, table, 0.9);
    const double dense_seconds = now_seconds() - t0;
    // The dense model's storage is the full matrix the old representation
    // held; the sparse pipeline's win is never having materialized it.
    const size_t dense_bytes = static_cast<size_t>(n_aps) *
                               static_cast<size_t>(n_users) * sizeof(double);
    arms.push_back({"dense_build", dense_seconds, dense_bytes, peak_rss_bytes()});

    if (sparse.n_links() != dense.n_links() ||
        sparse.basic_rate() != dense.basic_rate()) {
      std::fprintf(stderr, "scale_build: sparse/dense builds disagree "
                           "(%lld vs %lld links)\n",
                   static_cast<long long>(sparse.n_links()),
                   static_cast<long long>(dense.n_links()));
      return 1;
    }
  }

  util::Table t({"arm", "seconds", "model_MB", "peak_rss_MB"});
  for (const Arm& a : arms) {
    t.add_row({a.name, util::fmt(a.seconds, 3),
               util::fmt(static_cast<double>(a.model_bytes) / (1024.0 * 1024.0), 1),
               util::fmt(static_cast<double>(a.peak_rss) / (1024.0 * 1024.0), 1)});
  }
  t.print();

  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    const std::string size_tag =
        "u" + std::to_string(n_users) + "_a" + std::to_string(n_aps);
    util::Json doc = util::Json::object();
    doc.set("schema", "wmcast-microbench/v1");
    doc.set("threads", pool.size());
    util::Json benches = util::Json::array();
    for (const Arm& a : arms) {
      util::Json b = util::Json::object();
      b.set("name", "scale_build/" + a.name + "/" + size_tag);
      b.set("real_time_ns", a.seconds * 1e9);
      b.set("iterations", 1);
      b.set("bytes", static_cast<int64_t>(a.model_bytes));
      b.set("peak_rss_bytes", static_cast<int64_t>(a.peak_rss));
      benches.push(std::move(b));
    }
    doc.set("benchmarks", std::move(benches));
    std::ofstream f(json_path);
    if (!f) {
      std::fprintf(stderr, "scale_build: cannot write %s\n", json_path.c_str());
      return 1;
    }
    f << doc.dump(2) << "\n";
    std::printf("\njson written to %s\n", json_path.c_str());
  }

  if (require_speedup > 0.0) {
    const Arm& s = arms.front();
    const Arm& d = arms.back();  // dense ran last
    const double time_ratio = s.seconds > 0.0 ? d.seconds / s.seconds : 0.0;
    const double bytes_ratio =
        s.model_bytes > 0 ? static_cast<double>(d.model_bytes) / s.model_bytes : 0.0;
    std::printf("\nsparse vs dense: %.1fx build time, %.1fx model bytes "
                "(required >= %.1fx)\n", time_ratio, bytes_ratio, require_speedup);
    if (time_ratio < require_speedup || bytes_ratio < require_speedup) {
      std::fprintf(stderr, "scale_build: speedup requirement not met\n");
      return 1;
    }
  }
  return 0;
}
