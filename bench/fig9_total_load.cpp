// Figure 9 reproduction: total multicast AP load, MLA-C / MLA-D vs SSA.
//   (a) vs number of users     (200 APs, 5 sessions)
//   (b) vs number of APs       (100 users, 5 sessions)
//   (c) vs number of sessions  (200 APs, 200 users)
//
// Paper's headline at 400 users: MLA-C 31.1% and MLA-D 30.1% below SSA.
//
// Run: ./fig9_total_load [--scenarios=40] [--seed=9] [--rate=1.0] [--csv=prefix]

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"

using namespace wmcast;

namespace {

std::vector<bench::Algo> mla_algos() {
  return {
      {"SSA",
       [](const wlan::Scenario& sc, util::Rng& rng) {
         return assoc::ssa_associate(sc, rng).loads.total_load;
       }},
      {"MLA-C",
       [](const wlan::Scenario& sc, util::Rng&) {
         return assoc::centralized_mla(sc).loads.total_load;
       }},
      {"MLA-D",
       [](const wlan::Scenario& sc, util::Rng& rng) {
         return assoc::distributed_mla(sc, rng).loads.total_load;
       }},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"scenarios", "rate", "csv", "seed", "threads", "simd"});
  util::resolve_simd(args);
  util::ThreadPool pool(bench::thread_count(args));
  const int scenarios = args.get_int("scenarios", 40);
  const uint64_t seed = args.get_u64("seed", 9);
  const double rate = args.get_double("rate", 1.0);
  const auto algos = mla_algos();

  bench::print_header("Figure 9: total AP load for multicast (MLA vs SSA)", args,
                      scenarios, seed, rate);

  // (a) total load vs number of users, 200 APs.
  {
    util::Table t(bench::summary_headers("users", algos));
    std::vector<util::Summary> at400;
    for (const int users : {50, 100, 150, 200, 250, 300, 350, 400}) {
      wlan::GeneratorParams p;
      p.n_aps = 200;
      p.n_users = users;
      p.session_rate_mbps = rate;
      const auto sums = bench::sweep_point(p, scenarios, seed, algos, &pool);
      t.add_row(bench::summary_row(std::to_string(users), sums));
      if (users == 400) at400 = sums;
    }
    std::printf("(a) total load vs users (200 APs, 5 sessions)\n");
    t.print();
    if (!at400.empty()) {
      std::printf("at 400 users: MLA-C %.1f%% below SSA (paper: 31.1%%), "
                  "MLA-D %.1f%% below SSA (paper: 30.1%%)\n\n",
                  util::percent_reduction(at400[1].avg, at400[0].avg),
                  util::percent_reduction(at400[2].avg, at400[0].avg));
    }
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_a.csv");
  }

  // (b) total load vs number of APs, 100 users.
  {
    util::Table t(bench::summary_headers("aps", algos));
    for (const int aps : {50, 75, 100, 125, 150, 175, 200}) {
      wlan::GeneratorParams p;
      p.n_aps = aps;
      p.n_users = 100;
      p.session_rate_mbps = rate;
      t.add_row(bench::summary_row(std::to_string(aps),
                                   bench::sweep_point(p, scenarios, seed, algos, &pool)));
    }
    std::printf("(b) total load vs APs (100 users, 5 sessions)\n");
    t.print();
    std::printf("\n");
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_b.csv");
  }

  // (c) total load vs number of sessions, 200 APs / 200 users.
  {
    util::Table t(bench::summary_headers("sessions", algos));
    for (const int sessions : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
      wlan::GeneratorParams p;
      p.n_aps = 200;
      p.n_users = 200;
      p.n_sessions = sessions;
      p.session_rate_mbps = rate;
      t.add_row(bench::summary_row(std::to_string(sessions),
                                   bench::sweep_point(p, scenarios, seed, algos, &pool)));
    }
    std::printf("(c) total load vs sessions (200 APs, 200 users)\n");
    t.print();
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_c.csv");
  }
  return 0;
}
