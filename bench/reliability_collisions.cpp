// Reliability experiment (paper §2's MAC-multicast context): 802.11
// broadcast is unreliable, and collision losses grow with channel
// contention. Using the slotted CSMA/CA simulator we measure, per
// association policy, the network-wide multicast delivery ratio and what a
// reliable MAC multicast scheme (leader-ACK / BMW / BMMM, first-order
// models) would cost in airtime on top — showing that association control
// and MAC reliability compose: better association = fewer collisions =
// cheaper reliability.
//
// Run: ./reliability_collisions [--scenarios=8] [--seed=71] [--channels=3]

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/ext/interference.hpp"
#include "wmcast/mac/reliable.hpp"
#include "wmcast/sim/csma.hpp"

using namespace wmcast;

namespace {

/// Builds per-AP CSMA workloads from an association's transmissions.
std::vector<sim::ApWorkload> workloads_from(const wlan::Scenario& sc,
                                            const wlan::LoadReport& loads) {
  std::vector<sim::ApWorkload> aps(static_cast<size_t>(sc.n_aps()));
  for (int a = 0; a < sc.n_aps(); ++a) {
    for (int s = 0; s < sc.n_sessions(); ++s) {
      const double tx = loads.tx_rate[static_cast<size_t>(a)][static_cast<size_t>(s)];
      if (tx > 0.0) {
        aps[static_cast<size_t>(a)].multicast.push_back(
            sim::MulticastFlow{sc.session_rate(s), tx});
      }
    }
  }
  return aps;
}

/// Mean receivers per transmitting (AP, session).
double mean_group_size(const wlan::Scenario& sc, const wlan::Association& assoc) {
  std::vector<std::vector<int>> members(
      static_cast<size_t>(sc.n_aps()),
      std::vector<int>(static_cast<size_t>(sc.n_sessions()), 0));
  for (int u = 0; u < sc.n_users(); ++u) {
    const int a = assoc.ap_of(u);
    if (a != wlan::kNoAp) ++members[static_cast<size_t>(a)][static_cast<size_t>(sc.user_session(u))];
  }
  double total = 0.0;
  int groups = 0;
  for (const auto& row : members) {
    for (const int m : row) {
      if (m > 0) {
        total += m;
        ++groups;
      }
    }
  }
  return groups > 0 ? total / groups : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"scenarios", "channels", "seed", "threads"});
  const int scenarios = args.get_int("scenarios", 8);
  const uint64_t seed = args.get_u64("seed", 71);
  const int channels = args.get_int("channels", 3);

  bench::print_header(
      "Reliability: multicast collision loss and reliable-MAC overhead\n"
      "per association policy (slotted CSMA/CA, " +
          std::to_string(channels) + " channels)",
      args, scenarios, seed, 1.0);

  wlan::GeneratorParams p;
  p.n_aps = 40;
  p.n_users = 200;
  p.n_sessions = 6;
  p.area_side_m = 500.0;
  p.session_rate_mbps = 1.0;

  struct PolicyStat {
    const char* name;
    util::RunningStat delivery, collisions, group, leader_mult, bmw_mult, batch_mult;
  };
  PolicyStat stats[] = {{"SSA", {}, {}, {}, {}, {}, {}},
                        {"MLA-C", {}, {}, {}, {}, {}, {}},
                        {"BLA-C", {}, {}, {}, {}, {}, {}}};

  util::Rng master(seed);
  for (int s = 0; s < scenarios; ++s) {
    util::Rng srng = master.fork();
    const auto sc = wlan::generate_scenario(p, srng);
    const auto graph = ext::build_conflict_graph(sc, 400.0);
    const auto ch = ext::assign_channels(graph, channels);
    const auto conflicts = sim::same_channel_conflicts(graph, ch.channel_of_ap);

    util::Rng arng = master.fork();
    const assoc::Solution sols[] = {assoc::ssa_associate(sc, arng),
                                    assoc::centralized_mla(sc),
                                    assoc::centralized_bla(sc)};
    for (size_t k = 0; k < std::size(sols); ++k) {
      sim::CsmaConfig cfg;
      cfg.horizon_s = 1.0;
      cfg.seed = seed + s;
      const auto r = sim::simulate_csma(workloads_from(sc, sols[k].loads), conflicts, cfg);
      stats[k].delivery.add(r.overall_mc_delivery);
      stats[k].collisions.add(static_cast<double>(r.collisions));
      const double loss = 1.0 - r.overall_mc_delivery;
      const double group = mean_group_size(sc, sols[k].assoc);
      stats[k].group.add(group);
      const int n = std::max(1, static_cast<int>(group + 0.5));
      stats[k].leader_mult.add(
          mac::reliable_airtime_multiplier(mac::ReliableScheme::kLeaderAck, n, loss));
      stats[k].bmw_mult.add(mac::reliable_airtime_multiplier(
          mac::ReliableScheme::kBmwUnicastChain, n, loss));
      stats[k].batch_mult.add(
          mac::reliable_airtime_multiplier(mac::ReliableScheme::kBatchAck, n, loss));
    }
  }

  util::Table t({"policy", "mc_delivery", "collisions", "group_size", "leaderACK_x",
                 "BMW_x", "BMMM_x"});
  for (const auto& st : stats) {
    t.add_row({st.name, util::fmt(st.delivery.mean(), 4), util::fmt(st.collisions.mean(), 0),
               util::fmt(st.group.mean(), 1), util::fmt(st.leader_mult.mean(), 2),
               util::fmt(st.bmw_mult.mean(), 2), util::fmt(st.batch_mult.mean(), 2)});
  }
  t.print();

  std::printf("\nmc_delivery: fraction of broadcast frames surviving collisions\n"
              "(plain 802.11 multicast). *_x columns: expected airtime multiplier\n"
              "if that reliable-MAC scheme ran on top, at the measured loss rate\n"
              "and group size. Association control raises raw delivery and cuts\n"
              "collision events roughly in half; with it, leader-ACK reliability\n"
              "also gets cheaper per frame, while the per-receiver schemes (BMW,\n"
              "BMMM) pay a higher multiplier on larger consolidated groups but\n"
              "amortize it over fewer transmissions. The layers compose (§2).\n");
  return 0;
}
