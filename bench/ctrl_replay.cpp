// Online controller replay: the incremental re-optimization engine versus a
// cold centralized re-solve, on the same ≥20-epoch churn trace.
//
// The paper's §1 argument against naive centralized control in dynamic WLANs
// is signaling: re-solving from scratch each epoch reshuffles users whose
// situation never changed. The controller's dirty-region repair touches only
// users whose candidate-AP set, rate, or multicast group moved. This bench
// quantifies both sides:
//   * re-associations per epoch (incremental vs cold), and their ratio;
//   * solution quality: repaired total load relative to the cold optimum,
//     which must stay within the controller's degradation threshold;
//   * wall-clock per epoch for both paths.
// It finishes by validating the dumped telemetry JSON against the documented
// schema (wmcast-ctrl-telemetry/v1).
//
// Run: ./ctrl_replay [--epochs=24] [--seed=41] [--move=0.12] [--walk=40]
//                    [--zap=0.04] [--leave=0.02] [--join=0.02]
//                    [--solver=mla-c] [--threshold=0.1] [--refresh=8]
//                    [--json=out.json] [--telemetry=tele.json] [--threads=N]

#include <chrono>
#include <cmath>
#include <fstream>

#include "bench_common.hpp"
#include "wmcast/assoc/registry.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/util/json.hpp"

using namespace wmcast;

namespace {

struct SlotDelta {
  int changes = 0;   // any slot AP change, including joins and drops
  int handoffs = 0;  // AP -> different-AP moves (802.11 Reassociation frames)
};

SlotDelta slot_delta(const std::vector<int>& from, const std::vector<int>& to) {
  SlotDelta d;
  const size_t n = std::max(from.size(), to.size());
  for (size_t i = 0; i < n; ++i) {
    const int a = i < from.size() ? from[i] : wlan::kNoAp;
    const int b = i < to.size() ? to[i] : wlan::kNoAp;
    if (a == b) continue;
    ++d.changes;
    if (a != wlan::kNoAp && b != wlan::kNoAp) ++d.handoffs;
  }
  return d;
}

/// Checks the dumped telemetry against the documented schema; returns an
/// empty string on success, the first problem otherwise.
std::string validate_telemetry(const util::Json& j) {
  const auto* schema = j.find("schema");
  if (schema == nullptr || schema->as_string() != ctrl::kTelemetrySchema) {
    return "schema tag missing or wrong";
  }
  const auto* counters = j.find("counters");
  if (counters == nullptr) return "missing counters";
  for (const char* key : {"events_ingested", "events_applied", "events_coalesced",
                          "events_invalid", "drains", "epochs", "incremental_repairs",
                          "full_solves", "baseline_refreshes", "rollbacks",
                          "joins_admitted", "joins_rejected", "reassociations",
                          "forced_reassociations"}) {
    if (counters->find(key) == nullptr) return std::string("missing counter ") + key;
  }
  const auto* engine = counters->find("engine");
  if (engine == nullptr || engine->find("incremental_updates") == nullptr ||
      engine->find("groups_rebuilt") == nullptr) {
    return "missing engine rebuild-vs-repair counters";
  }
  const auto* parallel = engine->find("parallel");
  if (parallel == nullptr || parallel->find("solves") == nullptr ||
      parallel->find("tasks") == nullptr || parallel->find("workers") == nullptr ||
      parallel->find("imbalance") == nullptr) {
    return "missing engine.parallel sharded-solve counters";
  }
  const auto* by_type = counters->find("events_by_type");
  if (by_type == nullptr || by_type->find("join") == nullptr ||
      by_type->find("move") == nullptr) {
    return "missing events_by_type breakdown";
  }
  const auto* gauges = j.find("gauges");
  if (gauges == nullptr) return "missing gauges";
  for (const char* key : {"users_present", "users_subscribed", "users_served",
                          "total_load", "max_load", "baseline_load"}) {
    if (gauges->find(key) == nullptr) return std::string("missing gauge ") + key;
  }
  const auto* hists = j.find("histograms");
  if (hists == nullptr) return "missing histograms";
  for (const char* key : {"dirty_region_size", "reassoc_per_epoch", "drain_seconds"}) {
    const auto* h = hists->find(key);
    if (h == nullptr) return std::string("missing histogram ") + key;
    const auto* bounds = h->find("upper_bounds");
    const auto* counts = h->find("counts");
    if (bounds == nullptr || counts == nullptr ||
        counts->size() != bounds->size() + 1) {  // + overflow bucket
      return std::string("histogram ") + key + " bounds/counts mismatch";
    }
  }
  return "";
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"seed", "threads", "epochs", "join", "leave", "move", "walk",
                       "zap", "json", "telemetry", "solver", "threshold", "min-gain", "max-reassoc", "refresh"});
  const int epochs = args.get_int("epochs", 24);
  const uint64_t seed = args.get_u64("seed", 41);

  ctrl::TraceParams tp;
  tp.epochs = epochs;
  // Pedestrian mobility: ~1.5 m/s over a tens-of-seconds epoch ≈ a 20 m
  // random-walk step for the users that move at all.
  tp.move_fraction = args.get_double("move", 0.12);
  tp.walk_sigma_m = args.get_double("walk", 20.0);
  tp.zap_fraction = args.get_double("zap", 0.03);
  tp.leave_fraction = args.get_double("leave", 0.015);
  tp.join_fraction = args.get_double("join", 0.015);

  ctrl::ControllerConfig cfg;
  cfg.full_solver = args.get("solver", "mla-c");
  cfg.degradation_threshold = args.get_double("threshold", 0.10);
  cfg.full_refresh_epochs = args.get_int("refresh", 8);
  cfg.max_reassoc_per_epoch = args.get_int("max-reassoc", -1);
  cfg.polish_min_gain = args.get_double("min-gain", cfg.polish_min_gain);
  cfg.seed = seed + 2;
  cfg.threads = bench::thread_count(args);

  bench::print_header("Online controller: incremental repair vs cold re-solve", args,
                      epochs, seed, 1.0);
  std::printf("100 APs / 300 users / 5 sessions; per epoch: %.0f%% random-walk "
              "(sigma %.0f m),\n%.0f%% zap, %.0f%% leave, %.0f%% join; solver %s, "
              "threshold %.0f%%, refresh %d\n\n",
              100 * tp.move_fraction, tp.walk_sigma_m, 100 * tp.zap_fraction,
              100 * tp.leave_fraction, 100 * tp.join_fraction, cfg.full_solver.c_str(),
              100 * cfg.degradation_threshold, cfg.full_refresh_epochs);

  wlan::GeneratorParams p;
  p.n_aps = 100;
  p.n_users = 300;
  util::Rng rng(seed);
  const auto sc = wlan::generate_scenario(p, rng);

  ctrl::AssociationController controller(sc, cfg);
  util::Rng trace_rng = rng.fork();
  const auto trace = ctrl::generate_churn_trace(controller.state(), tp, trace_rng);

  // The cold path evolves an identical state and re-solves from scratch every
  // epoch with the same centralized algorithm.
  auto cold_state = ctrl::NetworkState::from_scenario(sc, cfg.rate_table);
  std::vector<int> cold_row_slot;
  util::Rng cold_rng(seed + 3);
  assoc::SolveOptions cold_opt;
  cold_opt.multi_rate = cfg.multi_rate;
  auto cold_sc = cold_state.to_scenario(&cold_row_slot);
  auto cold_sol = assoc::solve_by_name(cfg.full_solver, cold_sc, cold_rng, cold_opt);
  auto cold_slot_ap =
      ctrl::slot_association(cold_sol.assoc, cold_row_slot, cold_state.n_slots());

  util::RunningStat inc_signal, cold_signal, inc_total, cold_total;
  util::RunningStat inc_load, cold_load, load_gap_pct, inc_time, cold_time;
  util::Table t({"epoch", "events", "dirty", "inc_handoff", "cold_handoff",
                 "inc_load", "cold_load", "gap"});
  for (int e = 0; e < trace.n_epochs(); ++e) {
    const auto& evs = trace.epochs[static_cast<size_t>(e)];

    controller.submit(evs);
    const auto rep = controller.drain();

    const auto c0 = std::chrono::steady_clock::now();
    for (const auto& ev : evs) cold_state.apply(ev);
    cold_sc = cold_state.to_scenario(&cold_row_slot);
    cold_sol = assoc::solve_by_name(cfg.full_solver, cold_sc, cold_rng, cold_opt);
    auto next_cold =
        ctrl::slot_association(cold_sol.assoc, cold_row_slot, cold_state.n_slots());
    const SlotDelta cold_d = slot_delta(cold_slot_ap, next_cold);
    cold_slot_ap = std::move(next_cold);
    const double cold_secs = seconds_since(c0);

    inc_signal.add(rep.handoffs);
    cold_signal.add(cold_d.handoffs);
    inc_total.add(rep.reassociations);
    cold_total.add(cold_d.changes);
    inc_load.add(rep.total_load);
    cold_load.add(cold_sol.loads.total_load);
    load_gap_pct.add(util::percent_gain(rep.total_load, cold_sol.loads.total_load));
    inc_time.add(rep.drain_seconds);
    cold_time.add(cold_secs);

    t.add_row({std::to_string(e), std::to_string(rep.events),
               std::to_string(rep.dirty_users), std::to_string(rep.handoffs),
               std::to_string(cold_d.handoffs), util::fmt(rep.total_load, 2),
               util::fmt(cold_sol.loads.total_load, 2),
               util::fmt(util::percent_gain(rep.total_load, cold_sol.loads.total_load),
                         1) + "%"});
  }
  t.print();

  const double ratio = cold_signal.mean() / std::max(inc_signal.mean(), 1e-9);
  const double gap = load_gap_pct.mean();
  const bool signal_ok = ratio >= 5.0;
  const bool quality_ok = gap <= 100.0 * cfg.degradation_threshold;

  std::printf("\naverages over %d epochs:\n", trace.n_epochs());
  std::printf("  re-associations (handoffs) per epoch: incremental %.1f vs cold %.1f "
              "(%.1fx fewer)\n", inc_signal.mean(), cold_signal.mean(), ratio);
  std::printf("  all association changes per epoch (incl. joins/leaves): "
              "incremental %.1f vs cold %.1f\n", inc_total.mean(), cold_total.mean());
  std::printf("  total load: incremental %.2f vs cold %.2f (gap %+.1f%%, "
              "threshold %.0f%%)\n", inc_load.mean(), cold_load.mean(), gap,
              100.0 * cfg.degradation_threshold);
  std::printf("  epoch wall-clock: incremental %.1f ms vs cold %.1f ms\n",
              1e3 * inc_time.mean(), 1e3 * cold_time.mean());
  std::printf("  signaling target (>=5x fewer): %s; quality target (within "
              "threshold): %s\n", signal_ok ? "MET" : "NOT MET",
              quality_ok ? "MET" : "NOT MET");

  // Engine rebuild-vs-repair accounting: how much of the set system the
  // incremental path actually re-projected across the whole trace.
  const auto& es = controller.engine().stats();
  std::printf("  engine: %llu full build(s), %llu incremental updates touching "
              "%llu/%d AP candidate-set rebuilds (%llu sets rebuilt, %llu retired, "
              "%llu compactions)\n",
              static_cast<unsigned long long>(es.full_builds),
              static_cast<unsigned long long>(es.incremental_updates),
              static_cast<unsigned long long>(es.groups_rebuilt),
              controller.engine().n_groups() * trace.n_epochs(),
              static_cast<unsigned long long>(es.sets_rebuilt),
              static_cast<unsigned long long>(es.sets_retired),
              static_cast<unsigned long long>(es.compactions));

  // Telemetry dump + schema validation.
  const auto tele = controller.telemetry().to_json();
  const auto reparsed = util::Json::parse(tele.dump(2));
  const std::string problem = validate_telemetry(reparsed);
  std::printf("  telemetry schema %s: %s\n", ctrl::kTelemetrySchema,
              problem.empty() ? "valid" : problem.c_str());
  const std::string tele_out = args.get("telemetry", "");
  if (!tele_out.empty()) {
    std::ofstream f(tele_out);
    f << tele.dump(2) << "\n";
    std::printf("  telemetry written to %s\n", tele_out.c_str());
  }

  const std::string json_out = args.get("json", "");
  if (!json_out.empty()) {
    auto j = util::Json::object();
    j.set("bench", util::Json("ctrl_replay"));
    j.set("epochs", util::Json(trace.n_epochs()));
    j.set("events", util::Json(static_cast<int64_t>(trace.n_events())));
    j.set("solver", util::Json(cfg.full_solver));
    j.set("incremental_handoffs_per_epoch", util::Json(inc_signal.mean()));
    j.set("cold_handoffs_per_epoch", util::Json(cold_signal.mean()));
    j.set("incremental_changes_per_epoch", util::Json(inc_total.mean()));
    j.set("cold_changes_per_epoch", util::Json(cold_total.mean()));
    j.set("signaling_ratio", util::Json(ratio));
    j.set("incremental_mean_load", util::Json(inc_load.mean()));
    j.set("cold_mean_load", util::Json(cold_load.mean()));
    j.set("load_gap_pct", util::Json(gap));
    j.set("degradation_threshold_pct", util::Json(100.0 * cfg.degradation_threshold));
    j.set("incremental_epoch_seconds", util::Json(inc_time.mean()));
    j.set("cold_epoch_seconds", util::Json(cold_time.mean()));
    j.set("signaling_target_met", util::Json(signal_ok));
    j.set("quality_target_met", util::Json(quality_ok));
    j.set("telemetry_valid", util::Json(problem.empty()));
    auto eng = util::Json::object();
    eng.set("full_builds", util::Json(static_cast<int64_t>(es.full_builds)));
    eng.set("incremental_updates",
            util::Json(static_cast<int64_t>(es.incremental_updates)));
    eng.set("groups_rebuilt", util::Json(static_cast<int64_t>(es.groups_rebuilt)));
    eng.set("sets_rebuilt", util::Json(static_cast<int64_t>(es.sets_rebuilt)));
    eng.set("sets_retired", util::Json(static_cast<int64_t>(es.sets_retired)));
    eng.set("compactions", util::Json(static_cast<int64_t>(es.compactions)));
    eng.set("group_rebuild_fraction",
            util::Json(static_cast<double>(es.groups_rebuilt) /
                       std::max(1, controller.engine().n_groups() * trace.n_epochs())));
    j.set("engine", std::move(eng));
    std::ofstream f(json_out);
    f << j.dump(2) << "\n";
    std::printf("  json written to %s\n", json_out.c_str());
  }

  return (signal_ok && quality_ok && problem.empty()) ? 0 : 1;
}
