// Serve-loop load bench (DESIGN.md §12): sustains a synthetic workload
// (serve/workload) against the full serve stack — bounded queue, adaptive
// batching, bounded-staleness coalescing, controller repair — and reports
// events/sec plus p50/p99/p999 ingest→decision latency, the subsystem's SLO
// surface. A burst-profile comparison arm re-runs the same flash-crowd
// workload with --batch-max=1 to measure how much batching + coalescing buy
// on correlated bursts (the regime the serve loop exists for).
//
// Run: ./serve_load [--users=100000] [--aps=2000] [--sessions=8] [--degree=20]
//                   [--seed=71] [--threads=N] [--profile=mixed] [--rate=2000]
//                   [--duration=5] [--batch-max=256] [--staleness-ms=50]
//                   [--queue-cap=0] [--policy=reject] [--refresh=0]
//                   [--threshold=0.5] [--burst-events=1500] [--no-burst]
//                   [--require-batching-gain=0] [--pipeline] [--k=1]
//                   [--kconn-events=4000] [--require-kconn-speedup=0]
//                   [--json=out.json] [--simd=auto|scalar|avx2]
//
//  --require-batching-gain=K  exit 1 unless the batched burst arm beats
//                             --batch-max=1 by >= K in wall events/sec;
//                             CI pins K on the committed BENCH_serve.json run
//  --k=K                      serve with the k-connectivity overlay
//                             (DESIGN.md §15/§16); with K >= 2 two extra churn
//                             arms replay the same truncated stream with the
//                             incremental kconn engine on (kconn_incremental)
//                             and off (kconn_cold: full overlay rebuild every
//                             non-quiescent epoch)
//  --kconn-events=N           truncate the kconn comparison stream to N events
//                             so the cold leg (a full rebuild per batch) stays
//                             tractable at 100k users
//  --require-kconn-speedup=K  exit 1 unless the incremental leg beats the cold
//                             leg by >= K in wall events/sec; the dirty-region
//                             repair claim of DESIGN.md §16, pinned by CI
//  --json                     wmcast-microbench/v1 document for
//                             tools/bench_guard (per-event wall ns per arm,
//                             plus the main arm's p99 latency in ns)

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/serve/loop.hpp"
#include "wmcast/serve/workload.hpp"
#include "wmcast/util/cli.hpp"
#include "wmcast/util/json.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/util/table.hpp"
#include "wmcast/util/thread_pool.hpp"
#include "wmcast/wlan/scenario.hpp"

using namespace wmcast;

using wmcast::bench::now_seconds;
using wmcast::bench::peak_rss_bytes;

namespace {

struct ArmResult {
  std::string name;
  size_t events = 0;
  uint64_t batches = 0;
  double wall_s = 0.0;     // serve loop + controller only (workload pre-built)
  double events_per_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double p999_s = 0.0;
  double p99_decision_s = 0.0;  // batch start -> decision committed
  uint64_t coalesced = 0;
  double kconn_s = 0.0;  // wall spent in refresh_multi (overlay repair only)
  uint64_t kconn_repaired = 0;  // engine.kconn.repaired_users over the run
  uint64_t kconn_rebuilds = 0;  // engine.kconn.engine_rebuilds over the run
};

ArmResult run_arm(const std::string& name, const wlan::Scenario& sc,
                  const ctrl::ControllerConfig& cfg, const serve::ServeConfig& scfg,
                  const std::vector<serve::TimedEvent>& events, double duration_s) {
  ctrl::AssociationController controller(sc, cfg);
  serve::ServeLoop loop(&controller, scfg);
  // Exclude the constructor's cold overlay build: the arm measures steady-state
  // epoch repair, and both kconn legs pay the identical initial build.
  const double kconn0 = controller.kconn_seconds();
  const double t0 = now_seconds();
  for (const auto& te : events) loop.offer(te.t_s, te.ev);
  const serve::ServeTelemetry& tele = loop.finish(duration_s);
  ArmResult r;
  r.name = name;
  r.events = events.size();
  r.batches = tele.batches.value();
  r.wall_s = now_seconds() - t0;
  r.events_per_s = r.wall_s > 0.0 ? static_cast<double>(events.size()) / r.wall_s : 0.0;
  r.p50_s = tele.latency_s.quantile(0.5);
  r.p99_s = tele.latency_s.quantile(0.99);
  r.p999_s = tele.latency_s.quantile(0.999);
  r.p99_decision_s = tele.decision_s.quantile(0.99);
  r.coalesced = tele.coalesced.value();
  r.kconn_s = controller.kconn_seconds() - kconn0;
  r.kconn_repaired = controller.telemetry().engine_kconn_repaired_users.value();
  r.kconn_rebuilds = controller.telemetry().engine_kconn_rebuilds.value();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"users", "aps", "sessions", "degree", "seed", "threads",
                       "profile", "rate", "duration", "batch-max", "staleness-ms",
                       "queue-cap", "policy", "refresh", "threshold",
                       "burst-events", "no-burst", "require-batching-gain",
                       "pipeline", "k", "kconn-events", "require-kconn-speedup",
                       "json", "simd"});
  util::resolve_simd(args);
  const int n_users = args.get_int("users", 100000);
  const int n_aps = args.get_int("aps", 2000);
  const int n_sessions = args.get_int("sessions", 8);
  const double degree = args.get_double("degree", 20.0);
  const uint64_t seed = args.get_u64("seed", 71);
  const std::string profile_name = args.get("profile", "mixed");
  const double rate = args.get_double("rate", 2000.0);
  const double duration_s = args.get_double("duration", 5.0);
  const int burst_events = args.get_int("burst-events", 1500);
  const bool run_burst = !args.get_bool("no-burst", false);
  const double require_gain = args.get_double("require-batching-gain", 0.0);
  const int k = args.get_int("k", 1);
  const int kconn_events = args.get_int("kconn-events", 4000);
  const double require_kconn = args.get_double("require-kconn-speedup", 0.0);
  util::ThreadPool pool(util::resolve_threads(args));

  // Degree-held geometry, as in scale_build: event cost stays local as the
  // instance grows.
  const wlan::RateTable table = wlan::RateTable::ieee80211a();
  const double r = table.range_m();
  const double side =
      std::sqrt(static_cast<double>(n_aps) * 3.14159265358979323846 * r * r / degree);

  util::Rng rng(seed);
  std::vector<wlan::Point> ap_pos(static_cast<size_t>(n_aps));
  for (auto& p : ap_pos) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  std::vector<wlan::Point> user_pos(static_cast<size_t>(n_users));
  for (auto& p : user_pos) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  std::vector<int> user_session(static_cast<size_t>(n_users));
  for (auto& s : user_session) s = rng.next_int(n_sessions);
  const std::vector<double> session_rates(static_cast<size_t>(n_sessions), 1.0);
  const wlan::Scenario sc = wlan::Scenario::from_geometry(
      ap_pos, user_pos, user_session, session_rates, table, 0.9, &pool);

  ctrl::ControllerConfig cfg;
  cfg.seed = seed;
  cfg.threads = static_cast<int>(pool.size());
  cfg.max_batch = 0;  // the serve loop owns batching
  // Refresh the baseline only when the degradation fallback demands it, and
  // loosen that fallback: serve epochs are tiny (one batch each), so periodic
  // or hair-trigger full re-solves would have the bench measuring the
  // offline solver instead of the serving fast path. A production loop at
  // this scale schedules re-solves out of band for the same reason.
  cfg.full_refresh_epochs = args.get_int("refresh", 0);
  cfg.degradation_threshold = args.get_double("threshold", 0.5);
  cfg.k = k;  // every arm serves the overlay when --k >= 2

  serve::ServeConfig scfg;
  scfg.batch_max = args.get_int("batch-max", scfg.batch_max);
  scfg.staleness_s = args.get_double("staleness-ms", scfg.staleness_s * 1000.0) / 1000.0;
  const int queue_cap = args.get_int("queue-cap", 0);
  scfg.queue_cap = queue_cap <= 0 ? 0 : static_cast<size_t>(queue_cap);
  scfg.policy = serve::overflow_policy_from_name(args.get("policy", "reject"));
  scfg.pipeline = args.get_bool("pipeline", false);

  std::printf("serve_load: %d users, %d APs, profile %s, %.0f events/s x %.1fs, "
              "batch-max %d, staleness %.0f ms, threads %d\n\n",
              n_users, n_aps, profile_name.c_str(), rate, duration_s, scfg.batch_max,
              scfg.staleness_s * 1000.0, static_cast<int>(pool.size()));

  // Workloads are pre-generated so arms measure the serve stack, not the
  // generator, and comparison arms consume byte-identical streams.
  const ctrl::NetworkState initial = ctrl::NetworkState::from_scenario(sc, table);
  serve::WorkloadParams wp;
  wp.duration_s = duration_s;
  wp.events_per_s = rate;
  wp.seed = seed;
  const std::vector<serve::TimedEvent> workload =
      serve::generate_workload(initial, serve::WorkloadProfile::named(profile_name), wp);

  std::vector<ArmResult> arms;
  const std::string size_tag = "u" + std::to_string(n_users);
  arms.push_back(run_arm("serve/" + profile_name, sc, cfg, scfg, workload, duration_s));

  double gain = 0.0;
  if (run_burst) {
    // Flash-crowd stream, truncated so the unbatched arm stays tractable
    // (every event is a full controller epoch there).
    serve::WorkloadParams bp = wp;
    bp.duration_s = std::max(1.0, duration_s);
    std::vector<serve::TimedEvent> burst = serve::generate_workload(
        initial, serve::WorkloadProfile::named("flash"), bp);
    if (static_cast<int>(burst.size()) > burst_events) {
      burst.resize(static_cast<size_t>(burst_events));
    }
    const double burst_end = burst.empty() ? 0.0 : burst.back().t_s;

    arms.push_back(run_arm("burst_batched", sc, cfg, scfg, burst, burst_end));
    serve::ServeConfig one = scfg;
    one.batch_max = 1;
    one.coalesce = false;
    arms.push_back(run_arm("burst_batch1", sc, cfg, one, burst, burst_end));
    const ArmResult& batched = arms[arms.size() - 2];
    const ArmResult& single = arms.back();
    gain = single.events_per_s > 0.0 ? batched.events_per_s / single.events_per_s : 0.0;
  }

  double kconn_speedup = 0.0;
  double kconn_inc_s = 0.0;
  double kconn_cold_s = 0.0;
  if (k >= 2) {
    // Incremental-vs-cold overlay repair on a pure churn stream (moves /
    // joins / leaves / zaps). Rate changes are filtered out: a stream-rate
    // change legitimately forces a cold rebuild on BOTH legs (DESIGN.md §16),
    // so leaving them in would only measure how often the profile emits them.
    // The gate compares wall time spent in refresh_multi itself — base repair
    // is identical on both legs and would otherwise swamp the overlay cost.
    std::vector<serve::TimedEvent> churn;
    churn.reserve(workload.size());
    for (const auto& te : workload) {
      if (te.ev.type == ctrl::EventType::kRateChange) continue;
      if (kconn_events > 0 && static_cast<int>(churn.size()) >= kconn_events) break;
      churn.push_back(te);
    }
    const double churn_end = churn.empty() ? 0.0 : churn.back().t_s;

    arms.push_back(run_arm("kconn_incremental", sc, cfg, scfg, churn, churn_end));
    ctrl::ControllerConfig cold = cfg;
    cold.kconn_incremental = false;
    arms.push_back(run_arm("kconn_cold", sc, cold, scfg, churn, churn_end));
    const ArmResult& inc = arms[arms.size() - 2];
    const ArmResult& full = arms.back();
    kconn_inc_s = inc.kconn_s;
    kconn_cold_s = full.kconn_s;
    kconn_speedup = inc.kconn_s > 0.0 ? full.kconn_s / inc.kconn_s : 0.0;
  }

  util::Table t({"arm", "events", "batches", "wall_s", "events/s", "p50_ms",
                 "p99_ms", "p999_ms", "p99_dec_ms", "coalesced"});
  for (const ArmResult& a : arms) {
    t.add_row({a.name, std::to_string(a.events), std::to_string(a.batches),
               util::fmt(a.wall_s, 3), util::fmt(a.events_per_s, 0),
               util::fmt(a.p50_s * 1000.0, 2), util::fmt(a.p99_s * 1000.0, 2),
               util::fmt(a.p999_s * 1000.0, 2),
               util::fmt(a.p99_decision_s * 1000.0, 2), std::to_string(a.coalesced)});
  }
  t.print();
  if (run_burst) {
    std::printf("\nbatching+coalescing gain on flash bursts: %.1fx events/s over "
                "--batch-max=1\n", gain);
  }
  if (k >= 2) {
    const ArmResult& inc_arm = arms[arms.size() - 2];
    std::printf("\nincremental kconn repair: %.3fs vs %.3fs cold in refresh_multi "
                "(%.1fx faster, k=%d; %llu users re-derived, %llu rebuilds)\n",
                kconn_inc_s, kconn_cold_s, kconn_speedup, k,
                static_cast<unsigned long long>(inc_arm.kconn_repaired),
                static_cast<unsigned long long>(inc_arm.kconn_rebuilds));
  }

  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    util::Json doc = util::Json::object();
    doc.set("schema", "wmcast-microbench/v1");
    doc.set("threads", static_cast<int>(pool.size()));
    util::Json benches = util::Json::array();
    for (const ArmResult& a : arms) {
      util::Json b = util::Json::object();
      b.set("name", "serve_load/" + a.name + "/" + size_tag);
      b.set("real_time_ns",
            a.events > 0 ? a.wall_s * 1e9 / static_cast<double>(a.events) : 0.0);
      b.set("iterations", static_cast<int64_t>(a.events));
      b.set("peak_rss_bytes", static_cast<int64_t>(peak_rss_bytes()));
      benches.push(std::move(b));
    }
    {
      // The SLO itself, gated alongside throughput: main-arm p99 decision
      // latency (open-loop — measured service time against the workload's
      // virtual arrival clock, so it degrades when serving can't keep up).
      util::Json b = util::Json::object();
      b.set("name", "serve_load/p99_latency/" + profile_name + "/" + size_tag);
      b.set("real_time_ns", arms.front().p99_s * 1e9);
      b.set("iterations", static_cast<int64_t>(arms.front().events));
      benches.push(std::move(b));
    }
    if (k >= 2) {
      // Overlay-repair-only entries for the incremental-kconn speedup gate:
      // the committed cold baseline (bench/BENCH_kconn_cold_baseline.json)
      // carries the kconn_cold leg's number under the kconn_repair name, so
      // bench_guard --only=serve_load/kconn_repair/<tag> --require-speedup=K
      // pins the incremental engine's win against a full rebuild.
      const size_t churn_events = arms[arms.size() - 2].events;
      util::Json b = util::Json::object();
      b.set("name", "serve_load/kconn_repair/" + size_tag);
      b.set("real_time_ns",
            churn_events > 0 ? kconn_inc_s * 1e9 / static_cast<double>(churn_events)
                             : 0.0);
      b.set("iterations", static_cast<int64_t>(churn_events));
      benches.push(std::move(b));
      util::Json bc = util::Json::object();
      bc.set("name", "serve_load/kconn_repair_cold/" + size_tag);
      bc.set("real_time_ns",
             churn_events > 0 ? kconn_cold_s * 1e9 / static_cast<double>(churn_events)
                              : 0.0);
      bc.set("iterations", static_cast<int64_t>(churn_events));
      benches.push(std::move(bc));
    }
    // Decision-only p99 per arm: the batch start -> decision-committed slice
    // of the split latency histogram, without the queue wait.
    for (const ArmResult& a : arms) {
      util::Json b = util::Json::object();
      b.set("name", "serve_load/p99_decision/" + a.name + "/" + size_tag);
      b.set("real_time_ns", a.p99_decision_s * 1e9);
      b.set("iterations", static_cast<int64_t>(a.events));
      benches.push(std::move(b));
    }
    doc.set("benchmarks", std::move(benches));
    std::ofstream f(json_path);
    if (!f) {
      std::fprintf(stderr, "serve_load: cannot write %s\n", json_path.c_str());
      return 1;
    }
    f << doc.dump(2) << "\n";
    std::printf("\njson written to %s\n", json_path.c_str());
  }

  if (require_gain > 0.0) {
    if (!run_burst) {
      std::fprintf(stderr, "serve_load: --require-batching-gain needs the burst arms\n");
      return 1;
    }
    if (gain < require_gain) {
      std::fprintf(stderr, "serve_load: batching gain %.2fx below required %.2fx\n",
                   gain, require_gain);
      return 1;
    }
  }
  if (require_kconn > 0.0) {
    if (k < 2) {
      std::fprintf(stderr, "serve_load: --require-kconn-speedup needs --k >= 2\n");
      return 1;
    }
    if (kconn_speedup < require_kconn) {
      std::fprintf(stderr, "serve_load: kconn speedup %.2fx below required %.2fx\n",
                   kconn_speedup, require_kconn);
      return 1;
    }
  }
  return 0;
}
