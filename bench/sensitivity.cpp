// Sensitivity study: the paper omits the multicast stream rate and uses
// uniform user placement / uniform session popularity. This bench sweeps the
// assumptions and reports how the three headline comparisons move:
//   (a) stream rate sweep     -> MLA/BLA reductions and MNU gain vs SSA,
//   (b) Zipf session popularity,
//   (c) hotspot user clustering.
// EXPERIMENTS.md cites these when comparing our magnitudes to the paper's.
//
// Run: ./sensitivity [--scenarios=15] [--seed=51]

#include <array>
#include <optional>

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"

using namespace wmcast;

namespace {

struct HeadlineRow {
  double mla_reduction_pct;
  double bla_reduction_pct;
  double mnu_gain_pct;
};

/// The sweep's instances, generated once: per scenario the big (fig9/fig10)
/// and MNU (fig11) pair plus the four pre-forked streams in the historical
/// serial fork order (big scenario, big algos, mnu scenario, mnu algos) so
/// the results are identical at any thread count — see bench_common.hpp's
/// sweep_point.
struct ScenarioSet {
  // optional<> because Scenario has no public default constructor; every slot
  // is filled by generate_set before use.
  std::vector<std::optional<wlan::Scenario>> big, mnu;
  std::vector<std::array<util::Rng, 4>> streams;
};

ScenarioSet generate_set(const wlan::GeneratorParams& big,
                         const wlan::GeneratorParams& mnu_p, int scenarios,
                         uint64_t seed, util::ThreadPool* pool) {
  ScenarioSet set;
  util::Rng master(seed);
  set.streams.reserve(static_cast<size_t>(scenarios));
  for (int s = 0; s < scenarios; ++s) {
    set.streams.push_back(
        {master.fork(), master.fork(), master.fork(), master.fork()});
  }
  set.big.resize(static_cast<size_t>(scenarios));
  set.mnu.resize(static_cast<size_t>(scenarios));
  const auto build = [&](int s) {
    util::Rng big_rng = set.streams[static_cast<size_t>(s)][0];
    set.big[static_cast<size_t>(s)] = wlan::generate_scenario(big, big_rng);
    util::Rng mnu_rng = set.streams[static_cast<size_t>(s)][2];
    set.mnu[static_cast<size_t>(s)] = wlan::generate_scenario(mnu_p, mnu_rng);
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, scenarios, [&](int64_t b, int64_t e, int) {
      for (int64_t s = b; s < e; ++s) build(static_cast<int>(s));
    });
  } else {
    for (int s = 0; s < scenarios; ++s) build(s);
  }
  return set;
}

/// Runs the headline algorithms over the set. `stream_rate` (optional)
/// re-rates every session of both instances and rescales the MNU budget to
/// 0.04 * rate — the stream rate never enters scenario *generation* (no RNG
/// draws depend on it), so sweep (a) reuses one generated set across all its
/// rate points instead of regenerating identical geometry per point.
HeadlineRow measure_set(const ScenarioSet& set, const double* stream_rate,
                        util::ThreadPool* pool) {
  const int scenarios = static_cast<int>(set.big.size());
  struct Row {
    double ssa_total, mla_total, ssa_max, bla_max, ssa_served, mnu_served;
  };
  std::vector<Row> rows(static_cast<size_t>(scenarios));
  const auto run_scenario = [&](int s) {
    const auto& st = set.streams[static_cast<size_t>(s)];
    Row& r = rows[static_cast<size_t>(s)];
    const auto rerated = [&](const wlan::Scenario& base) {
      return base.with_session_rates(std::vector<double>(
          static_cast<size_t>(base.n_sessions()), *stream_rate));
    };
    {
      const wlan::Scenario& base = *set.big[static_cast<size_t>(s)];
      const wlan::Scenario sc = stream_rate != nullptr ? rerated(base) : base;
      util::Rng arng = st[1];
      const auto ssa = assoc::ssa_associate(sc, arng);
      r.ssa_total = ssa.loads.total_load;
      r.ssa_max = ssa.loads.max_load;
      r.mla_total = assoc::centralized_mla(sc).loads.total_load;
      r.bla_max = assoc::centralized_bla(sc).loads.max_load;
    }
    {
      const wlan::Scenario& base = *set.mnu[static_cast<size_t>(s)];
      const wlan::Scenario sc = stream_rate != nullptr
                                    ? rerated(base).with_budget(0.04 * *stream_rate)
                                    : base;
      util::Rng arng = st[3];
      r.ssa_served = assoc::ssa_associate(sc, arng).loads.satisfied_users;
      r.mnu_served = assoc::centralized_mnu(sc).loads.satisfied_users;
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, scenarios, [&](int64_t b, int64_t e, int) {
      for (int64_t s = b; s < e; ++s) run_scenario(static_cast<int>(s));
    });
  } else {
    for (int s = 0; s < scenarios; ++s) run_scenario(s);
  }

  util::RunningStat ssa_total, mla_total, ssa_max, bla_max, ssa_served, mnu_served;
  for (const Row& r : rows) {
    ssa_total.add(r.ssa_total);
    mla_total.add(r.mla_total);
    ssa_max.add(r.ssa_max);
    bla_max.add(r.bla_max);
    ssa_served.add(r.ssa_served);
    mnu_served.add(r.mnu_served);
  }
  return {util::percent_reduction(mla_total.mean(), ssa_total.mean()),
          util::percent_reduction(bla_max.mean(), ssa_max.mean()),
          util::percent_gain(mnu_served.mean(), ssa_served.mean())};
}

HeadlineRow measure(const wlan::GeneratorParams& big, const wlan::GeneratorParams& mnu_p,
                    int scenarios, uint64_t seed, util::ThreadPool* pool) {
  const ScenarioSet set = generate_set(big, mnu_p, scenarios, seed, pool);
  return measure_set(set, nullptr, pool);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"scenarios", "seed", "threads"});
  util::ThreadPool pool(bench::thread_count(args));
  const int scenarios = args.get_int("scenarios", 15);
  const uint64_t seed = args.get_u64("seed", 51);

  bench::print_header(
      "Sensitivity of the headline comparisons to unstated assumptions\n"
      "(paper headlines: MLA -31.1%, BLA -52.9%, MNU +36.9% vs SSA)",
      args, scenarios, seed, 1.0);

  wlan::GeneratorParams big;  // fig9/fig10 point: 200 APs, 400 users
  big.n_aps = 200;
  big.n_users = 400;
  wlan::GeneratorParams mnu_p;  // fig11 point: 100 APs, 400 users, 18 sessions
  mnu_p.n_aps = 100;
  mnu_p.n_users = 400;
  mnu_p.n_sessions = 18;
  mnu_p.load_budget = 0.04;

  {
    std::printf("(a) stream rate (budget for the MNU column scales with it)\n");
    util::Table t({"stream_Mbps", "MLA_reduction_pct", "BLA_reduction_pct",
                   "MNU_gain_pct"});
    // The stream rate changes no geometry and no RNG draw, so the instances
    // are generated once and re-rated per point (budget:cost ratio kept fixed
    // by measure_set's 0.04 * rate MNU budget).
    const auto set = generate_set(big, mnu_p, scenarios, seed, &pool);
    for (const double rate : {0.25, 0.5, 1.0, 2.0}) {
      const auto r = measure_set(set, &rate, &pool);
      t.add_row({util::fmt(rate, 2), util::fmt(r.mla_reduction_pct, 1),
                 util::fmt(r.bla_reduction_pct, 1), util::fmt(r.mnu_gain_pct, 1)});
    }
    t.print();
    std::printf("\n");
  }

  {
    std::printf("(b) session popularity (Zipf exponent; 0 = paper's uniform)\n");
    util::Table t({"zipf", "MLA_reduction_pct", "BLA_reduction_pct", "MNU_gain_pct"});
    for (const double z : {0.0, 0.8, 1.5}) {
      auto b = big;
      auto m = mnu_p;
      b.zipf_exponent = z;
      m.zipf_exponent = z;
      const auto r = measure(b, m, scenarios, seed, &pool);
      t.add_row({util::fmt(z, 1), util::fmt(r.mla_reduction_pct, 1),
                 util::fmt(r.bla_reduction_pct, 1), util::fmt(r.mnu_gain_pct, 1)});
    }
    t.print();
    std::printf("\n");
  }

  {
    std::printf("(c) user clustering (fraction of users in hotspots)\n");
    util::Table t({"hotspot_frac", "MLA_reduction_pct", "BLA_reduction_pct",
                   "MNU_gain_pct"});
    for (const double h : {0.0, 0.5, 0.9}) {
      auto b = big;
      auto m = mnu_p;
      b.hotspot_fraction = h;
      m.hotspot_fraction = h;
      const auto r = measure(b, m, scenarios, seed, &pool);
      t.add_row({util::fmt(h, 1), util::fmt(r.mla_reduction_pct, 1),
                 util::fmt(r.bla_reduction_pct, 1), util::fmt(r.mnu_gain_pct, 1)});
    }
    t.print();
  }

  std::printf("\nTakeaway: the association-control advantage is robust in sign\n"
              "everywhere; its magnitude grows with contention (clustered users,\n"
              "skewed popularity, mid-range stream rates), which plausibly\n"
              "accounts for the paper's larger headline percentages.\n");
  return 0;
}
