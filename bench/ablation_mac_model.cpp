// Ablation 1 (ours): how much do the paper's modeling idealizations matter?
//   (a) Load model: the paper's ideal stream/tx-rate ratio vs our 802.11a
//       frame-level airtime accounting (preamble, DIFS, symbol padding).
//   (b) Multi-rate multicast (the paper's assumption, footnote 3) vs the
//       802.11-standard basic-rate broadcast, for every algorithm.
//
// Run: ./ablation_mac_model [--scenarios=20] [--seed=21] [--rate=1.0]
//                           [--pkt=1500] [--csv=prefix]

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/mac/airtime.hpp"

using namespace wmcast;

namespace {

/// Re-evaluates an association's total load under the frame-level model.
double airtime_total_load(const wlan::Scenario& sc, const wlan::LoadReport& rep,
                          int pkt_bytes) {
  double total = 0.0;
  for (int a = 0; a < sc.n_aps(); ++a) {
    for (int s = 0; s < sc.n_sessions(); ++s) {
      const double tx = rep.tx_rate[static_cast<size_t>(a)][static_cast<size_t>(s)];
      if (tx > 0.0) total += mac::airtime_load(sc.session_rate(s), tx, pkt_bytes);
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"scenarios", "rate", "pkt", "csv", "seed", "threads"});
  util::ThreadPool pool(bench::thread_count(args));
  const int scenarios = args.get_int("scenarios", 20);
  const uint64_t seed = args.get_u64("seed", 21);
  const double rate = args.get_double("rate", 1.0);
  const int pkt = args.get_int("pkt", 1500);

  bench::print_header("Ablation: load-model and rate-model idealizations", args,
                      scenarios, seed, rate);

  // (a) ideal vs airtime load of the MLA-C association, sweeping users.
  {
    std::printf("(a) MLA-C total load: ideal rate-ratio model vs 802.11a airtime "
                "model (%d-byte frames)\n", pkt);
    util::Table t({"users", "ideal_avg", "airtime_avg", "overhead_pct"});
    for (const int users : {100, 200, 300, 400}) {
      wlan::GeneratorParams p;
      p.n_aps = 200;
      p.n_users = users;
      p.session_rate_mbps = rate;
      util::RunningStat ideal;
      util::RunningStat airtime;
      util::Rng master(seed);
      for (int s = 0; s < scenarios; ++s) {
        util::Rng srng = master.fork();
        const auto sc = wlan::generate_scenario(p, srng);
        const auto sol = assoc::centralized_mla(sc);
        ideal.add(sol.loads.total_load);
        airtime.add(airtime_total_load(sc, sol.loads, pkt));
      }
      t.add_row({std::to_string(users), util::fmt(ideal.mean()), util::fmt(airtime.mean()),
                 util::fmt(util::percent_gain(airtime.mean(), ideal.mean()), 1)});
    }
    t.print();
    std::printf("takeaway: the frame-level overhead inflates loads by a roughly\n"
                "constant factor, so the paper's rate-ratio idealization preserves\n"
                "every algorithm comparison.\n\n");
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_a.csv");
  }

  // (b) multi-rate multicast vs basic-rate-only broadcast.
  {
    std::printf("(b) multi-rate multicast (paper's assumption) vs basic-rate "
                "broadcast (802.11 standard), 200 APs / 200 users\n");
    const std::vector<bench::Algo> algos = {
        {"SSA-multi",
         [](const wlan::Scenario& sc, util::Rng& rng) {
           return assoc::ssa_associate(sc, rng).loads.total_load;
         }},
        {"SSA-basic",
         [](const wlan::Scenario& sc, util::Rng& rng) {
           assoc::SsaParams sp;
           sp.multi_rate = false;
           return assoc::ssa_associate(sc, rng, sp).loads.total_load;
         }},
        {"MLA-C-multi",
         [](const wlan::Scenario& sc, util::Rng&) {
           return assoc::centralized_mla(sc).loads.total_load;
         }},
        {"MLA-C-basic",
         [](const wlan::Scenario& sc, util::Rng&) {
           assoc::CentralizedParams cp;
           cp.multi_rate = false;
           return assoc::centralized_mla(sc, cp).loads.total_load;
         }},
    };
    util::Table t(bench::summary_headers("sessions", algos));
    for (const int sessions : {2, 5, 8}) {
      wlan::GeneratorParams p;
      p.n_aps = 200;
      p.n_users = 200;
      p.n_sessions = sessions;
      p.session_rate_mbps = rate;
      t.add_row(bench::summary_row(std::to_string(sessions),
                                   bench::sweep_point(p, scenarios, seed, algos, &pool)));
    }
    t.print();
    std::printf("takeaway: association control helps in BOTH rate models (the\n"
                "paper's NP-hardness and algorithms do not require multi-rate),\n"
                "but multi-rate multicast is the bigger lever.\n");
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_b.csv");
  }
  return 0;
}
