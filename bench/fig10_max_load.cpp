// Figure 10 reproduction: maximum multicast load among APs, BLA-C / BLA-D
// vs SSA.
//   (a) vs number of users     (200 APs, 5 sessions)
//   (b) vs number of APs       (100 users, 5 sessions)
//   (c) vs number of sessions  (200 APs, 200 users)
//
// Paper's headline at 400 users: BLA-C 52.9% and BLA-D 50.5% below SSA;
// unlike SSA, the BLA curves grow slowly with users/sessions.
//
// Run: ./fig10_max_load [--scenarios=40] [--seed=10] [--rate=1.0] [--csv=prefix]

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"

using namespace wmcast;

namespace {

std::vector<bench::Algo> bla_algos() {
  return {
      {"SSA",
       [](const wlan::Scenario& sc, util::Rng& rng) {
         return assoc::ssa_associate(sc, rng).loads.max_load;
       }},
      {"BLA-C",
       [](const wlan::Scenario& sc, util::Rng&) {
         return assoc::centralized_bla(sc).loads.max_load;
       }},
      {"BLA-D",
       [](const wlan::Scenario& sc, util::Rng& rng) {
         return assoc::distributed_bla(sc, rng).loads.max_load;
       }},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"scenarios", "rate", "csv", "seed", "threads"});
  util::ThreadPool pool(bench::thread_count(args));
  const int scenarios = args.get_int("scenarios", 40);
  const uint64_t seed = args.get_u64("seed", 10);
  const double rate = args.get_double("rate", 1.0);
  const auto algos = bla_algos();

  bench::print_header("Figure 10: maximum AP load for multicast (BLA vs SSA)", args,
                      scenarios, seed, rate);

  {
    util::Table t(bench::summary_headers("users", algos));
    std::vector<util::Summary> at400;
    for (const int users : {50, 100, 150, 200, 250, 300, 350, 400}) {
      wlan::GeneratorParams p;
      p.n_aps = 200;
      p.n_users = users;
      p.session_rate_mbps = rate;
      const auto sums = bench::sweep_point(p, scenarios, seed, algos, &pool);
      t.add_row(bench::summary_row(std::to_string(users), sums));
      if (users == 400) at400 = sums;
    }
    std::printf("(a) max load vs users (200 APs, 5 sessions)\n");
    t.print();
    if (!at400.empty()) {
      std::printf("at 400 users: BLA-C %.1f%% below SSA (paper: 52.9%%), "
                  "BLA-D %.1f%% below SSA (paper: 50.5%%)\n\n",
                  util::percent_reduction(at400[1].avg, at400[0].avg),
                  util::percent_reduction(at400[2].avg, at400[0].avg));
    }
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_a.csv");
  }

  {
    util::Table t(bench::summary_headers("aps", algos));
    for (const int aps : {50, 75, 100, 125, 150, 175, 200}) {
      wlan::GeneratorParams p;
      p.n_aps = aps;
      p.n_users = 100;
      p.session_rate_mbps = rate;
      t.add_row(bench::summary_row(std::to_string(aps),
                                   bench::sweep_point(p, scenarios, seed, algos, &pool)));
    }
    std::printf("(b) max load vs APs (100 users, 5 sessions)\n");
    t.print();
    std::printf("\n");
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_b.csv");
  }

  {
    util::Table t(bench::summary_headers("sessions", algos));
    for (const int sessions : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
      wlan::GeneratorParams p;
      p.n_aps = 200;
      p.n_users = 200;
      p.n_sessions = sessions;
      p.session_rate_mbps = rate;
      t.add_row(bench::summary_row(std::to_string(sessions),
                                   bench::sweep_point(p, scenarios, seed, algos, &pool)));
    }
    std::printf("(c) max load vs sessions (200 APs, 200 users)\n");
    t.print();
    if (args.has("csv")) t.write_csv(args.get("csv", "") + "_c.csv");
  }
  return 0;
}
