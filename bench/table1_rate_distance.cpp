// Table 1 reproduction: transmission rate vs. distance threshold for the
// 802.11a PHY model, verified against the RateTable implementation by
// sweeping distance and reporting the step boundaries the sweep discovers.
//
// Run: ./table1_rate_distance [--csv=path]

#include <cstdio>
#include <string>

#include "wmcast/mac/airtime.hpp"
#include "wmcast/util/cli.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/util/table.hpp"
#include "wmcast/wlan/rate_table.hpp"

int main(int argc, char** argv) {
  using namespace wmcast;
  const util::Args args(argc, argv);
  args.reject_unknown({"csv"});

  std::printf("Table 1: transmission rate vs distance threshold (802.11a)\n");
  std::printf("paper source: Manshaei & Turletti, simulation-based 802.11a analysis\n\n");

  const auto table = wlan::RateTable::ieee80211a();

  // Discover the step boundaries by sweeping distance at 1 cm resolution --
  // this exercises rate_for_distance rather than just echoing the table.
  util::Table out({"rate_mbps", "max_distance_m", "sweep_verified",
                   "frame_1500B_us", "airtime_load_1Mbps"});
  for (const auto& step : table.steps()) {
    const double r_inside = table.rate_for_distance(step.max_distance_m - 0.01);
    const double r_at = table.rate_for_distance(step.max_distance_m);
    const double r_beyond = table.rate_for_distance(step.max_distance_m + 0.01);
    const bool verified = r_at == step.rate_mbps && r_inside >= step.rate_mbps &&
                          r_beyond < step.rate_mbps;
    out.add_row({util::fmt(step.rate_mbps, 0), util::fmt(step.max_distance_m, 0),
                 verified ? "yes" : "NO",
                 util::fmt(mac::frame_duration_us(1500, step.rate_mbps), 0),
                 util::fmt(mac::airtime_load(1.0, step.rate_mbps, 1500), 4)});
  }
  out.print();

  std::printf("\npaper Table 1:    54/35  48/40  36/60  24/85  18/105  12/145  6/200\n");
  std::printf("(frame duration and per-Mbps airtime-load columns are from our MAC\n"
              " substrate; the paper's load model is the ideal rate ratio.)\n");

  if (args.has("csv")) out.write_csv(args.get("csv", ""));
  return 0;
}
