// Shared sweep harness for the figure-reproduction benches. Each data point
// follows the paper's §7 methodology: N random scenarios (default 40), the
// same scenarios fed to every algorithm, reporting min/avg/max.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "wmcast/util/cli.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/util/table.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::bench {

/// One algorithm under test: name + metric extractor. The metric receives the
/// scenario and a per-(scenario, algorithm) rng stream.
struct Algo {
  std::string name;
  std::function<double(const wlan::Scenario&, util::Rng&)> metric;
};

/// Runs every algorithm on `n_scenarios` scenarios drawn from `params` and
/// returns one Summary per algorithm (paper's error-bar triple).
inline std::vector<util::Summary> sweep_point(const wlan::GeneratorParams& params,
                                              int n_scenarios, uint64_t seed,
                                              const std::vector<Algo>& algos) {
  std::vector<util::RunningStat> stats(algos.size());
  util::Rng master(seed);
  for (int s = 0; s < n_scenarios; ++s) {
    util::Rng scenario_rng = master.fork();
    const auto sc = wlan::generate_scenario(params, scenario_rng);
    for (size_t a = 0; a < algos.size(); ++a) {
      util::Rng algo_rng = master.fork();
      stats[a].add(algos[a].metric(sc, algo_rng));
    }
  }
  std::vector<util::Summary> out;
  out.reserve(algos.size());
  for (const auto& st : stats) out.push_back(util::summarize(st));
  return out;
}

/// Standard bench header: prints the sweep configuration so runs are
/// reproducible from the log alone.
inline void print_header(const std::string& title, const util::Args& args,
                         int n_scenarios, uint64_t seed, double session_rate) {
  std::printf("%s\n", title.c_str());
  std::printf("methodology: %d random scenarios per point (paper: 40), seed %llu,\n",
              n_scenarios, static_cast<unsigned long long>(seed));
  std::printf("  802.11a rates (Table 1), stream rate %.2f Mbps per session\n\n",
              session_rate);
  (void)args;
}

/// Columns "<name>_min <name>_avg <name>_max" for each algorithm.
inline std::vector<std::string> summary_headers(const std::string& x_name,
                                                const std::vector<Algo>& algos) {
  std::vector<std::string> h{x_name};
  for (const auto& a : algos) {
    h.push_back(a.name + "_min");
    h.push_back(a.name + "_avg");
    h.push_back(a.name + "_max");
  }
  return h;
}

inline std::vector<std::string> summary_row(const std::string& x,
                                            const std::vector<util::Summary>& sums,
                                            int precision = 3) {
  std::vector<std::string> row{x};
  for (const auto& s : sums) {
    row.push_back(util::fmt(s.min, precision));
    row.push_back(util::fmt(s.avg, precision));
    row.push_back(util::fmt(s.max, precision));
  }
  return row;
}

}  // namespace wmcast::bench
