// Shared sweep harness for the figure-reproduction benches. Each data point
// follows the paper's §7 methodology: N random scenarios (default 40), the
// same scenarios fed to every algorithm, reporting min/avg/max.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "wmcast/util/cli.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/util/table.hpp"
#include "wmcast/util/thread_pool.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::bench {

/// Monotonic wall clock in seconds, shared by every bench's timing arms.
inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process peak RSS. A high-water mark: once a large arm has been resident,
/// every later reading reports it — benches must sample after each arm, in
/// ascending footprint order, for the per-arm numbers to mean anything.
/// Reported as the informational "peak_rss_bytes" field of the
/// wmcast-microbench/v1 schema (tools/bench_guard ignores it for gating).
inline size_t peak_rss_bytes() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<size_t>(ru.ru_maxrss) * 1024;  // Linux reports KB
}

/// One algorithm under test: name + metric extractor. The metric receives the
/// scenario and a per-(scenario, algorithm) rng stream.
struct Algo {
  std::string name;
  std::function<double(const wlan::Scenario&, util::Rng&)> metric;
};

/// Runs every algorithm on `n_scenarios` scenarios drawn from `params` and
/// returns one Summary per algorithm (paper's error-bar triple).
///
/// Each scenario is generated ONCE per sweep point and shared by every
/// algorithm — generation (grid build + CSR rows) dominates at large n_users,
/// so benches must never regenerate identical geometry per algorithm or per
/// derived sweep value (sensitivity's stream-rate sweep re-rates copies via
/// Scenario::with_session_rates instead).
///
/// Every per-(scenario, algorithm) rng stream is forked from the master
/// up front, in the exact order the historical serial loop forked them
/// (scenario s's generator stream, then one stream per algorithm) — so the
/// streams, and hence every published figure number, are independent of how
/// the scenarios are later scheduled. With a pool the scenarios run across
/// its lanes; per-scenario values land in slots indexed by (scenario,
/// algorithm) and are reduced in that order, making the summaries bitwise
/// identical at any thread count.
inline std::vector<util::Summary> sweep_point(const wlan::GeneratorParams& params,
                                              int n_scenarios, uint64_t seed,
                                              const std::vector<Algo>& algos,
                                              util::ThreadPool* pool = nullptr) {
  const size_t n_algos = algos.size();
  util::Rng master(seed);
  std::vector<util::Rng> streams;
  streams.reserve(static_cast<size_t>(n_scenarios) * (n_algos + 1));
  for (int s = 0; s < n_scenarios; ++s) {
    streams.push_back(master.fork());  // scenario generator stream
    for (size_t a = 0; a < n_algos; ++a) streams.push_back(master.fork());
  }

  std::vector<double> value(static_cast<size_t>(n_scenarios) * n_algos, 0.0);
  const auto run_scenario = [&](int s) {
    const size_t base = static_cast<size_t>(s) * (n_algos + 1);
    util::Rng scenario_rng = streams[base];
    const auto sc = wlan::generate_scenario(params, scenario_rng);
    for (size_t a = 0; a < n_algos; ++a) {
      util::Rng algo_rng = streams[base + 1 + a];
      value[static_cast<size_t>(s) * n_algos + a] = algos[a].metric(sc, algo_rng);
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, n_scenarios, [&](int64_t b, int64_t e, int) {
      for (int64_t s = b; s < e; ++s) run_scenario(static_cast<int>(s));
    });
  } else {
    for (int s = 0; s < n_scenarios; ++s) run_scenario(s);
  }

  std::vector<util::RunningStat> stats(n_algos);
  for (int s = 0; s < n_scenarios; ++s) {
    for (size_t a = 0; a < n_algos; ++a) {
      stats[a].add(value[static_cast<size_t>(s) * n_algos + a]);
    }
  }
  std::vector<util::Summary> out;
  out.reserve(n_algos);
  for (const auto& st : stats) out.push_back(util::summarize(st));
  return out;
}

/// The sweep's worker-thread count: `--threads=N`, else WMCAST_THREADS, else 1.
inline int thread_count(const util::Args& args) { return util::resolve_threads(args); }

/// Standard bench header: prints the sweep configuration so runs are
/// reproducible from the log alone.
inline void print_header(const std::string& title, const util::Args& args,
                         int n_scenarios, uint64_t seed, double session_rate) {
  std::printf("%s\n", title.c_str());
  std::printf("methodology: %d random scenarios per point (paper: 40), seed %llu,\n",
              n_scenarios, static_cast<unsigned long long>(seed));
  std::printf("  802.11a rates (Table 1), stream rate %.2f Mbps per session\n",
              session_rate);
  std::printf("  threads: %d\n\n", thread_count(args));
}

/// Columns "<name>_min <name>_avg <name>_max" for each algorithm.
inline std::vector<std::string> summary_headers(const std::string& x_name,
                                                const std::vector<Algo>& algos) {
  std::vector<std::string> h{x_name};
  for (const auto& a : algos) {
    h.push_back(a.name + "_min");
    h.push_back(a.name + "_avg");
    h.push_back(a.name + "_max");
  }
  return h;
}

inline std::vector<std::string> summary_row(const std::string& x,
                                            const std::vector<util::Summary>& sums,
                                            int precision = 3) {
  std::vector<std::string> row{x};
  for (const auto& s : sums) {
    row.push_back(util::fmt(s.min, precision));
    row.push_back(util::fmt(s.avg, precision));
    row.push_back(util::fmt(s.max, precision));
  }
  return row;
}

}  // namespace wmcast::bench
