// Ablation 2 (ours): the paper's §8 future-work directions, quantified.
//   (a) Distributed convergence: sequential vs synchronized-simultaneous vs
//       lock-coordinated rounds (convergence rate and rounds to converge).
//   (b) Explicit interference: effective busy fraction under 3 channels
//       (802.11b/g) vs 12 channels (802.11a), SSA vs BLA-C.
//   (c) Adaptive power control: interference-footprint shrink at equal load
//       (keep-rate) and the extra shrink allowed by the load budget.
//   (d) SCG budget policy: carried-over budgets (our default) vs the paper's
//       fresh-per-pass budgets, on the BLA objective.
//
// Run: ./ablation_extensions [--scenarios=20] [--seed=22] [--rate=1.0]

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/ext/interference.hpp"
#include "wmcast/ext/interference_aware.hpp"
#include "wmcast/ext/locks.hpp"
#include "wmcast/ext/power_control.hpp"

using namespace wmcast;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"scenarios", "rate", "seed", "threads"});
  util::ThreadPool pool(bench::thread_count(args));
  const int scenarios = args.get_int("scenarios", 20);
  const uint64_t seed = args.get_u64("seed", 22);
  const double rate = args.get_double("rate", 1.0);

  bench::print_header("Ablation: §8 extensions (convergence, interference, power)",
                      args, scenarios, seed, rate);

  wlan::GeneratorParams base;
  base.n_aps = 100;
  base.n_users = 200;
  base.session_rate_mbps = rate;

  // (a) convergence modes.
  {
    std::printf("(a) distributed update modes (100 APs, 200 users, MLA objective)\n");
    util::Table t({"mode", "converged_pct", "rounds_avg", "total_load_avg"});
    struct Row {
      std::string name;
      int converged = 0;
      util::RunningStat rounds, load;
    };
    std::vector<Row> rows(3);
    rows[0].name = "sequential";
    rows[1].name = "simultaneous";
    rows[2].name = "lock-coordinated";
    util::Rng master(seed);
    for (int s = 0; s < scenarios; ++s) {
      util::Rng srng = master.fork();
      const auto sc = wlan::generate_scenario(base, srng);
      const auto order = util::iota_permutation(sc.n_users());

      assoc::DistributedParams p;
      p.order = order;
      util::Rng r1 = master.fork();
      const auto seq = assoc::distributed_associate(sc, r1, p);
      rows[0].converged += seq.converged;
      rows[0].rounds.add(seq.rounds);
      rows[0].load.add(seq.loads.total_load);

      p.mode = assoc::UpdateMode::kSimultaneous;
      util::Rng r2 = master.fork();
      const auto sim = assoc::distributed_associate(sc, r2, p);
      rows[1].converged += sim.converged;
      rows[1].rounds.add(sim.rounds);
      rows[1].load.add(sim.loads.total_load);

      p.mode = assoc::UpdateMode::kSequential;  // ignored by the lock engine
      util::Rng r3 = master.fork();
      const auto lock = ext::lock_coordinated_associate(sc, r3, p);
      rows[2].converged += lock.converged;
      rows[2].rounds.add(lock.rounds);
      rows[2].load.add(lock.loads.total_load);
    }
    for (const auto& r : rows) {
      t.add_row({r.name, util::fmt(100.0 * r.converged / scenarios, 0),
                 util::fmt(r.rounds.mean(), 1), util::fmt(r.load.mean())});
    }
    t.print();
    std::printf("takeaway: locks make synchronized decisions safe (the paper's\n"
                "proposed fix) and match sequential quality, but serialize dense\n"
                "neighborhoods — one winner per contended AP group per round, so\n"
                "round counts grow accordingly.\n\n");
  }

  // (b) interference channels.
  {
    std::printf("(b) effective busy fraction (own + same-channel neighbor load),\n"
                "    interference range 400 m\n");
    util::Table t({"channels", "SSA_max_eff", "BLA-C_max_eff", "reduction_pct"});
    for (const int channels : {1, 3, 6, 12}) {
      util::RunningStat ssa_eff, bla_eff;
      util::Rng master(seed);
      for (int s = 0; s < scenarios; ++s) {
        util::Rng srng = master.fork();
        const auto sc = wlan::generate_scenario(base, srng);
        const auto adj = ext::build_conflict_graph(sc, 400.0);
        const auto ch = ext::assign_channels(adj, channels);
        util::Rng arng = master.fork();
        const auto ssa = assoc::ssa_associate(sc, arng);
        const auto bla = assoc::centralized_bla(sc);
        ssa_eff.add(ext::interference_report(sc, ssa.loads, ch, adj).max_effective_load);
        bla_eff.add(ext::interference_report(sc, bla.loads, ch, adj).max_effective_load);
      }
      t.add_row({std::to_string(channels), util::fmt(ssa_eff.mean()),
                 util::fmt(bla_eff.mean()),
                 util::fmt(util::percent_reduction(bla_eff.mean(), ssa_eff.mean()), 1)});
    }
    t.print();
    std::printf("takeaway: BLA's balancing implicitly reduces interference (the\n"
                "paper's §3.2 note), and the advantage persists even with the 3\n"
                "channels of 802.11b/g.\n\n");
  }

  // (c) power control.
  {
    std::printf("(c) adaptive power control on the BLA-C association,\n"
                "    power scales {0.5, 0.65, 0.8, 1.0}\n");
    util::Table t({"mode", "footprint_km2_before", "footprint_km2_after", "shrink_pct",
                   "load_increase_pct"});
    const std::vector<double> scales = {0.5, 0.65, 0.8, 1.0};
    for (const bool keep_rate : {true, false}) {
      util::RunningStat before, after, load_up;
      util::Rng master(seed);
      for (int s = 0; s < scenarios; ++s) {
        util::Rng srng = master.fork();
        const auto sc = wlan::generate_scenario(base, srng);
        const auto sol = assoc::centralized_bla(sc);
        const auto rep = ext::shrink_powers(sc, sol.assoc, wlan::RateTable::ieee80211a(),
                                            scales, keep_rate);
        before.add(rep.footprint_before_m2 / 1e6);
        after.add(rep.footprint_after_m2 / 1e6);
        load_up.add(util::percent_gain(rep.loads_after.total_load, sol.loads.total_load));
      }
      t.add_row({keep_rate ? "keep-rate" : "allow-rate-drop", util::fmt(before.mean(), 2),
                 util::fmt(after.mean(), 2),
                 util::fmt(util::percent_reduction(after.mean(), before.mean()), 1),
                 util::fmt(load_up.mean(), 1)});
    }
    t.print();
    std::printf("takeaway: discrete power levels shrink the interference footprint\n"
                "substantially — for free when the rate is pinned, and further if\n"
                "the budget absorbs a rate drop (the paper's §8 direction).\n\n");
  }

  // (d) SCG budget policy.
  {
    std::printf("(d) SCG budget policy: carry-over (default) vs the paper's\n"
                "    fresh-per-pass budgets, max AP load (200 APs)\n");
    const std::vector<bench::Algo> algos = {
        {"carry",
         [](const wlan::Scenario& sc, util::Rng&) {
           return assoc::centralized_bla(sc).loads.max_load;
         }},
        {"fresh",
         [](const wlan::Scenario& sc, util::Rng&) {
           setcover::ScgParams sp;
           sp.carry_budgets = false;
           return assoc::centralized_bla(sc, {}, sp).loads.max_load;
         }},
    };
    util::Table t(bench::summary_headers("users", algos));
    for (const int users : {100, 200, 400}) {
      wlan::GeneratorParams p;
      p.n_aps = 200;
      p.n_users = users;
      p.session_rate_mbps = rate;
      t.add_row(bench::summary_row(std::to_string(users),
                                   bench::sweep_point(p, scenarios, seed, algos, &pool)));
    }
    t.print();
    std::printf("takeaway: carrying group budgets across the SCG passes lets the\n"
                "B* search bound the final max load directly and dominates the\n"
                "literal fresh-per-pass scheme.\n\n");
  }

  // (e) interference-aware distributed association: scoring effective loads
  // (own + same-channel neighbors) instead of raw loads.
  {
    std::printf("(e) interference-aware distributed BLA vs interference-blind,\n"
                "    max effective busy fraction (single shared channel)\n");
    util::Table t({"users", "blind_max_eff", "aware_max_eff", "reduction_pct"});
    for (const int users : {100, 200}) {
      util::RunningStat blind_eff, aware_eff;
      util::Rng master(seed);
      for (int s = 0; s < scenarios; ++s) {
        wlan::GeneratorParams p;
        p.n_aps = 60;
        p.n_users = users;
        p.area_side_m = 600.0;
        p.session_rate_mbps = rate;
        util::Rng srng = master.fork();
        const auto sc = wlan::generate_scenario(p, srng);
        const auto adj = ext::build_conflict_graph(sc, 400.0);
        ext::ChannelAssignment one_channel;
        one_channel.channel_of_ap.assign(static_cast<size_t>(sc.n_aps()), 0);

        util::Rng r1 = master.fork();
        const auto blind = assoc::distributed_bla(sc, r1);
        ext::InterferenceAwareParams ip;
        ip.objective = assoc::Objective::kLoadVector;
        util::Rng r2 = master.fork();
        const auto aware = ext::interference_aware_associate(sc, adj, r2, ip);

        blind_eff.add(
            ext::interference_report(sc, blind.loads, one_channel, adj).max_effective_load);
        aware_eff.add(
            ext::interference_report(sc, aware.loads, one_channel, adj).max_effective_load);
      }
      t.add_row({std::to_string(users), util::fmt(blind_eff.mean()),
                 util::fmt(aware_eff.mean()),
                 util::fmt(util::percent_reduction(aware_eff.mean(), blind_eff.mean()), 1)});
    }
    t.print();
    std::printf("takeaway: making the distributed rule score effective loads (the\n"
                "§8 'explicit interference modeling' direction) cuts the worst\n"
                "on-air busy fraction beyond what load balancing alone achieves.\n");
  }
  return 0;
}
