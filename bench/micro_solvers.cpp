// Micro-benchmarks (google-benchmark): runtime scaling of every solver on
// paper-scale inputs. The paper argues centralized algorithms "are still
// feasible to execute" up to ~100 APs — these numbers quantify that claim
// for our implementation.
//
// Run: ./micro_solvers [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/ext/locks.hpp"
#include "wmcast/setcover/greedy.hpp"
#include "wmcast/setcover/mcg.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/setcover/scg.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace {

using namespace wmcast;

wlan::Scenario scenario_for(int n_aps, int n_users, uint64_t seed = 77) {
  wlan::GeneratorParams p;
  p.n_aps = n_aps;
  p.n_users = n_users;
  util::Rng rng(seed);
  return wlan::generate_scenario(p, rng);
}

void BM_BuildSetSystem(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(setcover::build_set_system(sc));
  }
}
BENCHMARK(BM_BuildSetSystem)->Args({50, 100})->Args({100, 200})->Args({200, 400});

void BM_CentralizedMla(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(assoc::centralized_mla(sc).loads.total_load);
  }
}
BENCHMARK(BM_CentralizedMla)->Args({50, 100})->Args({100, 200})->Args({200, 400});

void BM_CentralizedBla(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(assoc::centralized_bla(sc).loads.max_load);
  }
}
BENCHMARK(BM_CentralizedBla)->Args({50, 100})->Args({100, 200})->Args({200, 400});

void BM_CentralizedMnu(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)))
                      .with_budget(0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assoc::centralized_mnu(sc).loads.satisfied_users);
  }
}
BENCHMARK(BM_CentralizedMnu)->Args({50, 100})->Args({100, 200})->Args({200, 400});

void BM_DistributedRound(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    util::Rng rng(1);
    benchmark::DoNotOptimize(assoc::distributed_mla(sc, rng).loads.total_load);
  }
}
BENCHMARK(BM_DistributedRound)->Args({50, 100})->Args({100, 200})->Args({200, 400});

void BM_Ssa(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    util::Rng rng(1);
    benchmark::DoNotOptimize(assoc::ssa_associate(sc, rng).loads.total_load);
  }
}
BENCHMARK(BM_Ssa)->Args({100, 200})->Args({200, 400});

void BM_LockCoordinated(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    util::Rng rng(1);
    benchmark::DoNotOptimize(
        ext::lock_coordinated_associate(sc, rng, {}).loads.total_load);
  }
}
BENCHMARK(BM_LockCoordinated)->Args({100, 200});

void BM_ExactMlaSmall(benchmark::State& state) {
  const auto sc = scenario_for(30, static_cast<int>(state.range(0)), 78);
  const auto sys = setcover::build_set_system(sc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::exact_min_cost_cover(sys).cost);
  }
}
BENCHMARK(BM_ExactMlaSmall)->Arg(20)->Arg(40);

void BM_GreedySetCoverKernel(benchmark::State& state) {
  const auto sc = scenario_for(200, 400);
  const auto sys = setcover::build_set_system(sc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setcover::greedy_set_cover(sys).total_cost);
  }
}
BENCHMARK(BM_GreedySetCoverKernel);

void BM_McgGreedyKernel(benchmark::State& state) {
  const auto sc = scenario_for(200, 400);
  const auto sys = setcover::build_set_system(sc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setcover::mcg_greedy_uniform(sys, 0.9).chosen.size());
  }
}
BENCHMARK(BM_McgGreedyKernel);

}  // namespace

BENCHMARK_MAIN();
