// Micro-benchmarks (google-benchmark): runtime scaling of every solver on
// paper-scale inputs, plus the shared coverage engine's warm-vs-cold story on
// a large instance (400 APs / 20k users). The paper argues centralized
// algorithms "are still feasible to execute" up to ~100 APs — these numbers
// quantify that claim for our implementation, and the Warm* benches quantify
// what the reusable engine buys for repeated solves (the online controller's
// steady state).
//
// Run: ./micro_solvers [--benchmark_filter=...] [--json=out.json]
//                      [--simd=auto|scalar|avx2]
//
// --json writes {"schema": "wmcast-microbench/v1", "threads": <hw threads>,
// "benchmarks": [{name, real_time_ns, iterations}, ...]} for tools/bench_guard
// to diff against the committed baseline (bench/BENCH_micro_solvers.json).

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/kconn.hpp"
#include "wmcast/core/parallel.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/core/solve.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/ext/locks.hpp"
#include "wmcast/setcover/greedy.hpp"
#include "wmcast/setcover/mcg.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/setcover/scg.hpp"
#include "wmcast/util/json.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/simd.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace {

using namespace wmcast;

wlan::Scenario scenario_for(int n_aps, int n_users, uint64_t seed = 77) {
  wlan::GeneratorParams p;
  p.n_aps = n_aps;
  p.n_users = n_users;
  util::Rng rng(seed);
  return wlan::generate_scenario(p, rng);
}

/// The large instance for the warm-engine benches: scaled so the reduction
/// (not the solve) dominates a cold run.
wlan::Scenario large_scenario() {
  static const wlan::Scenario sc = [] {
    wlan::GeneratorParams p;
    p.n_aps = 400;
    p.n_users = 20000;
    p.area_side_m = 2000.0;
    util::Rng rng(79);
    return wlan::generate_scenario(p, rng);
  }();
  return sc;
}

void BM_BuildSetSystem(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(setcover::build_set_system(sc));
  }
}
BENCHMARK(BM_BuildSetSystem)->Args({50, 100})->Args({100, 200})->Args({200, 400});

void BM_CentralizedMla(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(assoc::centralized_mla(sc).loads.total_load);
  }
}
BENCHMARK(BM_CentralizedMla)->Args({50, 100})->Args({100, 200})->Args({200, 400});

void BM_CentralizedBla(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(assoc::centralized_bla(sc).loads.max_load);
  }
}
BENCHMARK(BM_CentralizedBla)->Args({50, 100})->Args({100, 200})->Args({200, 400});

void BM_CentralizedMnu(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)))
                      .with_budget(0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assoc::centralized_mnu(sc).loads.satisfied_users);
  }
}
BENCHMARK(BM_CentralizedMnu)->Args({50, 100})->Args({100, 200})->Args({200, 400});

void BM_DistributedRound(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    util::Rng rng(1);
    benchmark::DoNotOptimize(assoc::distributed_mla(sc, rng).loads.total_load);
  }
}
BENCHMARK(BM_DistributedRound)->Args({50, 100})->Args({100, 200})->Args({200, 400});

void BM_Ssa(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    util::Rng rng(1);
    benchmark::DoNotOptimize(assoc::ssa_associate(sc, rng).loads.total_load);
  }
}
BENCHMARK(BM_Ssa)->Args({100, 200})->Args({200, 400});

void BM_LockCoordinated(benchmark::State& state) {
  const auto sc = scenario_for(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    util::Rng rng(1);
    benchmark::DoNotOptimize(
        ext::lock_coordinated_associate(sc, rng, {}).loads.total_load);
  }
}
BENCHMARK(BM_LockCoordinated)->Args({100, 200});

void BM_ExactMlaSmall(benchmark::State& state) {
  const auto sc = scenario_for(30, static_cast<int>(state.range(0)), 78);
  const auto sys = setcover::build_set_system(sc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::exact_min_cost_cover(sys).cost);
  }
}
BENCHMARK(BM_ExactMlaSmall)->Arg(20)->Arg(40);

void BM_GreedySetCoverKernel(benchmark::State& state) {
  const auto sc = scenario_for(200, 400);
  const auto sys = setcover::build_set_system(sc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setcover::greedy_set_cover(sys).total_cost);
  }
}
BENCHMARK(BM_GreedySetCoverKernel);

void BM_McgGreedyKernel(benchmark::State& state) {
  const auto sc = scenario_for(200, 400);
  const auto sys = setcover::build_set_system(sc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setcover::mcg_greedy_uniform(sys, 0.9).chosen.size());
  }
}
BENCHMARK(BM_McgGreedyKernel);

// --- Engine warm-vs-cold on the large instance -------------------------------

/// Cold repeated solve: what every epoch costs without the engine — project
/// the scenario into a fresh set system, then run greedy over it.
void BM_LargeColdGreedy(benchmark::State& state) {
  const auto sc = large_scenario();
  for (auto _ : state) {
    const auto sys = setcover::build_set_system(sc);
    benchmark::DoNotOptimize(setcover::greedy_set_cover(sys).total_cost);
  }
}
BENCHMARK(BM_LargeColdGreedy);

/// One-time engine projection of the large instance (the warm path's setup).
void BM_LargeEngineBuild(benchmark::State& state) {
  const auto sc = large_scenario();
  core::CoverageEngine eng;
  for (auto _ : state) {
    eng.build_full(setcover::ScenarioSource(sc), true);
    benchmark::DoNotOptimize(eng.n_live_sets());
  }
}
BENCHMARK(BM_LargeEngineBuild);

/// Warm repeated solve: greedy on the prebuilt engine with a reused
/// workspace — zero allocations and no reduction in steady state. The
/// headline number: must be >= 3x faster than BM_LargeColdGreedy.
void BM_LargeWarmGreedy(benchmark::State& state) {
  const auto sc = large_scenario();
  core::CoverageEngine eng;
  eng.build_full(setcover::ScenarioSource(sc), true);
  core::SolveWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_cover(eng, ws).total_cost);
  }
}
BENCHMARK(BM_LargeWarmGreedy);

/// Warm epoch: rebuild the candidate sets of 4 dirty APs via the dirty-group
/// protocol, then re-solve — the online controller's steady-state work.
void BM_LargeWarmDirtySolve(benchmark::State& state) {
  const auto sc = large_scenario();
  core::CoverageEngine eng;
  eng.build_full(setcover::ScenarioSource(sc), true);
  core::SolveWorkspace ws;
  const std::vector<int> dirty = {11, 97, 203, 389};
  for (auto _ : state) {
    eng.update_groups(setcover::ScenarioSource(sc), dirty, true);
    benchmark::DoNotOptimize(core::greedy_cover(eng, ws).total_cost);
  }
}
BENCHMARK(BM_LargeWarmDirtySolve);

void BM_LargeWarmScg(benchmark::State& state) {
  const auto sc = large_scenario();
  core::CoverageEngine eng;
  eng.build_full(setcover::ScenarioSource(sc), true);
  core::SolveWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::scg_cover(eng, ws).max_group_cost);
  }
}
BENCHMARK(BM_LargeWarmScg);

// --- Parallel execution layer (DESIGN.md §9) ---------------------------------

/// Sharded per-session greedy on the large warm engine across N threads; the
/// /1 run is the serial reference the speedup is measured against (the result
/// is bitwise identical at every N).
void BM_ParallelSolveSessions(benchmark::State& state) {
  const auto sc = large_scenario();
  core::CoverageEngine eng;
  eng.build_full(setcover::ScenarioSource(sc), true);
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  core::SessionShards shards;
  shards.build(eng);
  core::ShardWorkspaces wss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::parallel_greedy_cover(eng, pool, wss, shards).total_cost);
  }
}
BENCHMARK(BM_ParallelSolveSessions)->Arg(1)->Arg(8);

/// One full figure-bench sweep point (40 scenarios x MLA-C) across N threads;
/// streams are pre-drawn so summaries match the serial sweep exactly.
void BM_ParallelSweep(benchmark::State& state) {
  wlan::GeneratorParams p;
  p.n_aps = 200;
  p.n_users = 400;
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  const std::vector<bench::Algo> algos = {
      {"MLA-C", [](const wlan::Scenario& sc, util::Rng&) {
         return assoc::centralized_mla(sc).loads.total_load;
       }}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::sweep_point(p, 40, 9, algos, &pool)[0].avg);
  }
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(8);

// --- Hot-path kernels (DESIGN.md §13) ----------------------------------------
//
// The solver's inner loops, benched in isolation under dotted kernel.* names
// so tools/bench_guard can gate each one independently (--gate-prefix=kernel.). All
// run whichever dispatch --simd selected (auto by default); the scalar path
// is byte-compared against AVX2 by the tests, so these entries only track
// speed. Sized to clear bench_guard's 50 µs noise floor per iteration.

constexpr size_t kKernelWords = size_t{1} << 17;  // 1 MiB per operand

std::vector<uint64_t> random_words(uint64_t seed) {
  std::vector<uint64_t> w(kKernelWords);
  util::Rng rng(seed);
  for (auto& x : w) x = rng.next_u64();
  return w;
}

void BM_KernelPopcount(benchmark::State& state) {
  const auto a = random_words(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::popcount_words(a.data(), a.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * kKernelWords * 8));
}

void BM_KernelPopcountAnd(benchmark::State& state) {
  const auto a = random_words(11);
  const auto b = random_words(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::popcount_and_words(a.data(), b.data(), a.size()));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * kKernelWords * 16));
}

void BM_KernelPopcountAndnot(benchmark::State& state) {
  const auto a = random_words(11);
  const auto b = random_words(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::popcount_andnot_words(a.data(), b.data(), a.size()));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * kKernelWords * 16));
}

/// Pure CSR member-arena streaming: every live set's row, in set order — the
/// memory-bandwidth floor under the gain rescan.
void BM_KernelCsrWalk(benchmark::State& state) {
  const auto sc = large_scenario();
  core::CoverageEngine eng;
  eng.build_full(setcover::ScenarioSource(sc), true);
  for (auto _ : state) {
    int64_t sum = 0;
    for (int j = 0; j < eng.n_set_slots(); ++j) {
      if (!eng.alive(j)) continue;
      for (const int32_t e : eng.members(j)) sum += e;
    }
    benchmark::DoNotOptimize(sum);
  }
}

/// The eager gain recomputation: per live set, count members still uncovered
/// (CSR row walk + bitset probes) — what the maintained-gain design avoids
/// per pick but the dirty-group path still pays per rebuilt set.
void BM_KernelGainRescan(benchmark::State& state) {
  const auto sc = large_scenario();
  core::CoverageEngine eng;
  eng.build_full(setcover::ScenarioSource(sc), true);
  const util::DynBitset& remaining = eng.coverable();
  for (auto _ : state) {
    int64_t total = 0;
    for (int j = 0; j < eng.n_set_slots(); ++j) {
      if (!eng.alive(j)) continue;
      int gain = 0;
      for (const int32_t e : eng.members(j)) gain += remaining.test(e) ? 1 : 0;
      total += gain;
    }
    benchmark::DoNotOptimize(total);
  }
}

/// Warm engine solve end-to-end — the composite the kernels above feed.
void BM_KernelWarmGreedySolve(benchmark::State& state) {
  const auto sc = large_scenario();
  core::CoverageEngine eng;
  eng.build_full(setcover::ScenarioSource(sc), true);
  core::SolveWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_cover(eng, ws).total_cost);
  }
}

// --- k-connectivity overlay (DESIGN.md §15-16) -------------------------------
//
// Dotted kconn.* names so tools/bench_guard can gate the overlay's cost
// independently (--gate-prefix=kconn.).

/// The cold augmentation alone: the base MLA solve is prebuilt, so this
/// isolates the full plan + derive sweep the k=2 paths add on top of a legacy
/// solve.
void BM_KconnAugmentK2(benchmark::State& state) {
  const auto sc = scenario_for(200, 400);
  const auto base = assoc::centralized_mla(sc);
  assoc::KconnParams kp;
  kp.k = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        assoc::augment_to_k(sc, base.assoc, base.loads, kp).n_users());
  }
}

/// One controller epoch of k=2 overlay maintenance under light churn (20
/// moves against 4k users): the persistent kconn engine re-plans only the
/// dirty APs and re-derives only the dirty rows. Contrast with
/// kconn.augment_k2, which pays the full sweep every call.
void BM_KconnRepairEpoch(benchmark::State& state) {
  const auto sc = scenario_for(200, 4000);
  ctrl::ControllerConfig cfg;
  cfg.k = 2;
  cfg.full_refresh_epochs = 0;  // keep every iteration on the repair path
  ctrl::AssociationController ctl(sc, cfg);
  util::Rng rng(123);
  std::vector<ctrl::Event> batch;
  for (auto _ : state) {
    batch.clear();
    for (int i = 0; i < 20; ++i) {
      const int s = rng.next_int(ctl.state().n_slots());
      wlan::Point pos = ctl.state().slot(s).pos;
      pos.x += rng.uniform(-20.0, 20.0);
      pos.y += rng.uniform(-20.0, 20.0);
      batch.push_back(ctrl::Event::move(s, pos));
    }
    ctl.submit(batch);
    benchmark::DoNotOptimize(ctl.drain().kconn_repaired_users);
  }
}

/// End-to-end MLA at k=2: cold reduction + base solve + augmentation +
/// multi-load accounting — what a --k=2 CLI solve pays per call.
void BM_KconnMlaK2EndToEnd(benchmark::State& state) {
  const auto sc = scenario_for(200, 400);
  assoc::CentralizedParams params;
  params.k = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        assoc::centralized_mla(sc, params).multi_loads.mean_effective_rate);
  }
}

void register_kernel_benches() {
  benchmark::RegisterBenchmark("kconn.augment_k2", BM_KconnAugmentK2);
  benchmark::RegisterBenchmark("kconn.repair_epoch", BM_KconnRepairEpoch);
  benchmark::RegisterBenchmark("kconn.mla_k2_end_to_end", BM_KconnMlaK2EndToEnd);
  benchmark::RegisterBenchmark("kernel.popcount", BM_KernelPopcount);
  benchmark::RegisterBenchmark("kernel.popcount_and", BM_KernelPopcountAnd);
  benchmark::RegisterBenchmark("kernel.popcount_andnot", BM_KernelPopcountAndnot);
  benchmark::RegisterBenchmark("kernel.csr_walk", BM_KernelCsrWalk);
  benchmark::RegisterBenchmark("kernel.gain_rescan", BM_KernelGainRescan);
  benchmark::RegisterBenchmark("kernel.warm_greedy_solve", BM_KernelWarmGreedySolve);
}

// --- JSON reporter -----------------------------------------------------------

/// Console output as usual, plus a flat (name, real_time, iterations) record
/// per run for the regression guard.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double real_time_ns = 0.0;
    int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& r : runs) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      entries_.push_back({r.benchmark_name(), r.GetAdjustedRealTime(), r.iterations});
    }
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else if (a.rfind("--simd=", 0) == 0) {
      wmcast::simd::set_mode(wmcast::simd::mode_from_name(a.substr(7)));
    } else {
      rest.push_back(argv[i]);
    }
  }
  register_kernel_benches();
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    auto benches = util::Json::array();
    for (const auto& e : reporter.entries()) {
      auto b = util::Json::object();
      b.set("name", util::Json(e.name));
      b.set("real_time_ns", util::Json(e.real_time_ns));
      b.set("iterations", util::Json(e.iterations));
      b.set("peak_rss_bytes",
            static_cast<int64_t>(wmcast::bench::peak_rss_bytes()));
      benches.push(std::move(b));
    }
    auto j = util::Json::object();
    j.set("schema", util::Json("wmcast-microbench/v1"));
    j.set("threads", util::Json(util::ThreadPool::hardware_threads()));
    j.set("benchmarks", std::move(benches));
    std::ofstream f(json_path);
    f << j.dump(2) << "\n";
  }
  return 0;
}
