// Revenue-model experiment (paper §1/§3.2): each objective is motivated by a
// revenue model — MNU by pay-per-view, BLA by concave ("convex" in the
// paper's wording) unicast revenue, MLA by flat per-byte pricing. This bench
// evaluates every algorithm under all three models and shows each algorithm
// winning (or tying) under the model that motivates it. Also compares the
// CostSC greedy against the layering algorithm the paper's §6.1 points to.
//
// Run: ./revenue_models [--scenarios=20] [--seed=61] [--rate=1.0]

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/revenue.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/setcover/greedy.hpp"
#include "wmcast/setcover/layering.hpp"
#include "wmcast/setcover/materialize.hpp"
#include "wmcast/setcover/reduction.hpp"

using namespace wmcast;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown({"scenarios", "rate", "seed", "threads"});
  const int scenarios = args.get_int("scenarios", 20);
  const uint64_t seed = args.get_u64("seed", 61);
  const double rate = args.get_double("rate", 1.0);

  bench::print_header("Revenue models: each objective wins under its motivation",
                      args, scenarios, seed, rate);

  // Contended setting so MNU matters: modest budget, dense users.
  wlan::GeneratorParams p;
  p.n_aps = 60;
  p.n_users = 240;
  p.n_sessions = 6;
  p.area_side_m = 600.0;
  p.session_rate_mbps = rate;
  p.load_budget = 0.10;

  // --- Pay-per-view: the contended regime, budget enforced. Only the
  // budget-respecting algorithms compete (BLA/MLA assume demand fits and
  // would "win" here only by violating the budget).
  {
    std::printf("(1) pay-per-view revenue, budget %.2f enforced\n", p.load_budget);
    struct Algo {
      const char* name;
      util::RunningStat ppv;
      int infeasible = 0;
    };
    Algo algos[] = {{"SSA", {}, 0}, {"MNU-C", {}, 0}, {"MNU-D", {}, 0}};
    util::Rng master(seed);
    for (int s = 0; s < scenarios; ++s) {
      util::Rng srng = master.fork();
      const auto sc = wlan::generate_scenario(p, srng);
      util::Rng r1 = master.fork();
      util::Rng r2 = master.fork();
      const assoc::Solution sols[] = {assoc::ssa_associate(sc, r1),
                                      assoc::centralized_mnu(sc),
                                      assoc::distributed_mnu(sc, r2)};
      for (size_t k = 0; k < std::size(sols); ++k) {
        algos[k].ppv.add(assoc::compute_revenue(sc, sols[k].loads).pay_per_view);
        if (!sols[k].loads.within_budget()) ++algos[k].infeasible;
      }
    }
    util::Table t({"algorithm", "pay_per_view", "budget_violations"});
    for (const auto& a : algos) {
      t.add_row({a.name, util::fmt(a.ppv.mean(), 1), std::to_string(a.infeasible)});
    }
    t.print();
    std::printf("\n");
  }

  // --- Unicast revenue models: a loaded network (budget 0.9, everyone
  // served). The winner between BLA and MLA depends on how concave the
  // unicast revenue curve is: near-linear curves reward total-load
  // minimization (MLA), strongly concave ones reward balance (BLA) — the
  // dependence §3.2's revenue discussion predicts.
  {
    std::printf("(2) unicast revenue models, budget 0.90, heavier streams "
                "(2x rate, 8 sessions)\n");
    struct Algo {
      const char* name;
      util::RunningStat convex_mild, convex_strong, per_byte;
    };
    Algo algos[] = {{"SSA", {}, {}, {}},
                    {"BLA-C", {}, {}, {}},
                    {"MLA-C", {}, {}, {}},
                    {"BLA-D", {}, {}, {}},
                    {"MLA-D", {}, {}, {}}};
    auto loose = p;
    loose.load_budget = 0.9;
    loose.n_aps = 40;
    loose.n_sessions = 8;
    loose.session_rate_mbps = 2.0 * rate;
    assoc::RevenueModel mild;
    mild.unicast_concavity = 8.0;
    assoc::RevenueModel strong;
    strong.unicast_concavity = 400.0;
    util::Rng master(seed);
    for (int s = 0; s < scenarios; ++s) {
      util::Rng srng = master.fork();
      const auto sc = wlan::generate_scenario(loose, srng);
      util::Rng r1 = master.fork();
      util::Rng r2 = master.fork();
      util::Rng r3 = master.fork();
      const assoc::Solution sols[] = {
          assoc::ssa_associate(sc, r1), assoc::centralized_bla(sc),
          assoc::centralized_mla(sc),   assoc::distributed_bla(sc, r2),
          assoc::distributed_mla(sc, r3)};
      for (size_t k = 0; k < std::size(sols); ++k) {
        algos[k].convex_mild.add(
            assoc::compute_revenue(sc, sols[k].loads, mild).convex_unicast);
        algos[k].convex_strong.add(
            assoc::compute_revenue(sc, sols[k].loads, strong).convex_unicast);
        algos[k].per_byte.add(
            assoc::compute_revenue(sc, sols[k].loads, mild).per_byte);
      }
    }
    util::Table t({"algorithm", "convex_k8", "convex_k400", "per_byte"});
    for (const auto& a : algos) {
      t.add_row({a.name, util::fmt(a.convex_mild.mean(), 3),
                 util::fmt(a.convex_strong.mean(), 3), util::fmt(a.per_byte.mean(), 3)});
    }
    t.print();
    std::printf("(§3.2's pairing: MNU wins table 1; MLA tops per_byte and the\n"
                " near-linear k=8 curve; under strong diminishing returns\n"
                " (k=400) the balanced BLA loads take the lead)\n\n");
  }

  // CostSC greedy vs the §6.1 layering algorithm on the MLA objective.
  std::printf("CostSC greedy vs layering algorithm (MLA objective, budget 0.9)\n");
  util::Table t2({"metric", "CostSC", "layering"});
  util::RunningStat g_cost, l_cost, freq;
  util::Rng master2(seed);
  for (int s = 0; s < scenarios; ++s) {
    util::Rng srng = master2.fork();
    auto sc = wlan::generate_scenario(p, srng).with_budget(0.9);
    const auto sys = setcover::build_set_system(sc);
    const auto greedy = setcover::greedy_set_cover(sys);
    const auto layered = setcover::layered_set_cover(sys);
    const auto g_assoc = setcover::materialize(sc, sys, greedy.chosen);
    const auto l_assoc = setcover::materialize(sc, sys, layered.chosen);
    g_cost.add(wlan::compute_loads(sc, g_assoc).total_load);
    l_cost.add(wlan::compute_loads(sc, l_assoc).total_load);
    freq.add(setcover::max_element_frequency(sys));
  }
  t2.add_row({"total load (avg)", util::fmt(g_cost.mean(), 2), util::fmt(l_cost.mean(), 2)});
  t2.add_row({"guarantee factor", "ln n + 1", "f = " + util::fmt(freq.mean(), 1)});
  t2.print();
  std::printf("(the greedy usually wins in practice; layering's f-factor bound\n"
              " is the better *guarantee* when users hear few APs — §6.1)\n");
  return 0;
}
