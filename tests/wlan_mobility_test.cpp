#include "wmcast/wlan/mobility.hpp"

#include <gtest/gtest.h>

#include "wmcast/assoc/distributed.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::wlan {
namespace {

Scenario base_scenario(uint64_t seed) {
  GeneratorParams p;
  p.n_aps = 25;
  p.n_users = 80;
  p.n_sessions = 4;
  p.area_side_m = 500.0;
  util::Rng rng(seed);
  return generate_scenario(p, rng);
}

TEST(Churn, ZeroChurnIsIdentity) {
  const auto sc = base_scenario(1);
  ChurnParams cp;
  cp.move_fraction = 0.0;
  cp.zap_fraction = 0.0;
  util::Rng rng(2);
  const auto next = churn_epoch(sc, cp, rng);
  for (int u = 0; u < sc.n_users(); ++u) {
    EXPECT_EQ(next.user_session(u), sc.user_session(u));
    EXPECT_EQ(next.user_positions()[static_cast<size_t>(u)],
              sc.user_positions()[static_cast<size_t>(u)]);
  }
}

TEST(Churn, MoveFractionRelocatesRoughlyThatMany) {
  const auto sc = base_scenario(2);
  ChurnParams cp;
  cp.move_fraction = 0.5;
  cp.zap_fraction = 0.0;
  util::Rng rng(3);
  const auto next = churn_epoch(sc, cp, rng);
  int moved = 0;
  for (int u = 0; u < sc.n_users(); ++u) {
    if (!(next.user_positions()[static_cast<size_t>(u)] ==
          sc.user_positions()[static_cast<size_t>(u)])) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 20);
  EXPECT_LT(moved, 60);
}

TEST(Churn, ZapAlwaysChangesTheSession) {
  const auto sc = base_scenario(3);
  ChurnParams cp;
  cp.move_fraction = 0.0;
  cp.zap_fraction = 1.0;
  util::Rng rng(4);
  const auto next = churn_epoch(sc, cp, rng);
  for (int u = 0; u < sc.n_users(); ++u) {
    EXPECT_NE(next.user_session(u), sc.user_session(u)) << "user " << u;
    EXPECT_GE(next.user_session(u), 0);
    EXPECT_LT(next.user_session(u), sc.n_sessions());
  }
}

TEST(CarryOver, KeepsValidAssociationsOnly) {
  const auto sc = base_scenario(4);
  util::Rng arng(5);
  const auto sol = assoc::distributed_mla(sc, arng);
  ASSERT_GT(sol.loads.satisfied_users, 0);

  ChurnParams cp;
  cp.move_fraction = 0.3;
  cp.zap_fraction = 0.2;
  util::Rng rng(6);
  const auto next = churn_epoch(sc, cp, rng);
  const auto carried = carry_over(next, sc, sol.assoc);

  for (int u = 0; u < next.n_users(); ++u) {
    const int a = carried.ap_of(u);
    if (a == kNoAp) continue;
    EXPECT_EQ(a, sol.assoc.ap_of(u));              // never reassigned
    EXPECT_TRUE(next.in_range(a, u));              // still reachable
    EXPECT_EQ(next.user_session(u), sc.user_session(u));  // didn't zap
  }
  EXPECT_LE(surviving_members(carried), sol.loads.satisfied_users);
}

TEST(CarryOver, FullChurnDropsEveryZapper) {
  const auto sc = base_scenario(7);
  util::Rng arng(8);
  const auto sol = assoc::distributed_mla(sc, arng);
  ChurnParams cp;
  cp.move_fraction = 0.0;
  cp.zap_fraction = 1.0;
  util::Rng rng(9);
  const auto next = churn_epoch(sc, cp, rng);
  const auto carried = carry_over(next, sc, sol.assoc);
  EXPECT_EQ(surviving_members(carried), 0);
}

TEST(CarryOver, ResumedEngineConvergesFasterThanColdStart) {
  // The incremental regime the paper argues for: after mild churn, resuming
  // from the carried association touches far fewer users than starting over.
  const auto sc = base_scenario(10);
  util::Rng arng(11);
  const auto sol = assoc::distributed_mla(sc, arng);

  ChurnParams cp;
  cp.move_fraction = 0.05;
  cp.zap_fraction = 0.05;
  util::Rng rng(12);
  const auto next = churn_epoch(sc, cp, rng);
  const auto carried = carry_over(next, sc, sol.assoc);

  assoc::DistributedParams warm;
  warm.initial = carried;
  warm.order = util::iota_permutation(next.n_users());
  util::Rng r1(13);
  const auto resumed = assoc::distributed_associate(next, r1, warm);
  EXPECT_TRUE(resumed.converged);
  EXPECT_EQ(resumed.loads.satisfied_users, next.n_coverable_users());

  // Count how many users hold a different AP than in the carried state —
  // the "signaling traffic" a warm start saves.
  int changed = 0;
  for (int u = 0; u < next.n_users(); ++u) {
    if (resumed.assoc.ap_of(u) != carried.ap_of(u)) ++changed;
  }
  EXPECT_LT(changed, next.n_users() / 2);
}

TEST(Churn, RejectsBadParams) {
  const auto sc = base_scenario(14);
  util::Rng rng(15);
  ChurnParams bad;
  bad.move_fraction = 1.5;
  EXPECT_THROW(churn_epoch(sc, bad, rng), std::invalid_argument);
  const auto flat = Scenario::from_link_rates({{1.0}}, {0}, {1.0}, 0.9);
  EXPECT_THROW(churn_epoch(flat, ChurnParams{}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::wlan
