#include "wmcast/setcover/mcg.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"

namespace wmcast::setcover {
namespace {

TEST(McgGreedy, PapersMnuWalkthrough) {
  // §4.1 example: on Fig. 1 with 3 Mbps streams and budget 1, the greedy
  // first selects S4 = (a1, s2, rate 4) [ratio 4], then S2 = (a1, s1, rate 3)
  // [ratio 2], which violates a1's budget. H1 = {S4} covers 3 users,
  // H2 = {S2} covers 2, so the output is H1: u2, u4, u5 on a1.
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = build_set_system(sc);
  const McgResult res = mcg_greedy_uniform(sys, 1.0);

  ASSERT_EQ(res.h.size(), 2u);
  EXPECT_EQ(sys.set(res.h[0]).ap, 0);
  EXPECT_EQ(sys.set(res.h[0]).session, 1);
  EXPECT_DOUBLE_EQ(sys.set(res.h[0]).tx_rate, 4.0);
  EXPECT_FALSE(res.violator[0]);
  EXPECT_EQ(sys.set(res.h[1]).ap, 0);
  EXPECT_EQ(sys.set(res.h[1]).session, 0);
  EXPECT_DOUBLE_EQ(sys.set(res.h[1]).tx_rate, 3.0);
  EXPECT_TRUE(res.violator[1]);

  EXPECT_EQ(res.h1.size(), 1u);
  EXPECT_EQ(res.h2.size(), 1u);
  EXPECT_EQ(res.chosen, res.h1);
  EXPECT_EQ(res.covered.to_indices(), (std::vector<int>{1, 3, 4}));  // u2, u4, u5
  EXPECT_EQ(res.covered_h.count(), 5);  // the full H covered everyone
}

TEST(McgGreedy, RespectsBudgetsAfterSplit) {
  util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto sc = test::fig1_scenario(0.5 + rng.next_double() * 3.0);
    const SetSystem sys = build_set_system(sc);
    const double budget = 0.3 + rng.next_double() * 0.7;
    const McgResult res = mcg_greedy_uniform(sys, budget);
    std::vector<double> group_cost(static_cast<size_t>(sys.n_groups()), 0.0);
    for (const int j : res.chosen) {
      group_cost[static_cast<size_t>(sys.set(j).group)] += sys.set(j).cost;
    }
    for (const double c : group_cost) EXPECT_LE(c, budget + 1e-9);
  }
}

TEST(McgGreedy, ChoosesBetterHalf) {
  // Construct a system where the violator set covers more than the rest:
  // group 0 budget 1; set A {0} cost 0.9 (picked first: ratio 1.11 vs 1.0 of
  // B), then set B {1,2,3,4} cost 4.0 would violate. Make B's ratio higher so
  // it is picked first instead; then A violates.
  std::vector<CandidateSet> sets;
  {
    CandidateSet a;
    a.members = util::DynBitset(5);
    a.members.set(0);
    a.cost = 0.9;
    a.group = a.ap = 0;
    CandidateSet b;
    b.members = util::DynBitset(5);
    for (int e = 1; e < 5; ++e) b.members.set(e);
    b.cost = 1.0;
    b.group = b.ap = 0;
    sets = {a, b};
  }
  const SetSystem sys(5, 1, std::move(sets));
  const McgResult res = mcg_greedy_uniform(sys, 1.0);
  // B (ratio 4) first, fits exactly; A then violates (1.9 > 1). H1 = {B}
  // covers 4 > H2 = {A} covers 1.
  EXPECT_EQ(res.covered.count(), 4);
  ASSERT_EQ(res.chosen.size(), 1u);
  EXPECT_EQ(sys.set(res.chosen[0]).members.count(), 4);
}

TEST(McgGreedy, SkipsSetsLargerThanTheirGroupBudget) {
  std::vector<CandidateSet> sets;
  CandidateSet big;
  big.members = util::DynBitset(3);
  big.members.set(0);
  big.members.set(1);
  big.members.set(2);
  big.cost = 2.0;  // exceeds the budget on its own
  big.group = big.ap = 0;
  CandidateSet small;
  small.members = util::DynBitset(3);
  small.members.set(0);
  small.cost = 0.5;
  small.group = small.ap = 0;
  sets = {big, small};
  const SetSystem sys(3, 1, std::move(sets));
  const McgResult res = mcg_greedy_uniform(sys, 1.0);
  ASSERT_EQ(res.chosen.size(), 1u);
  EXPECT_DOUBLE_EQ(sys.set(res.chosen[0]).cost, 0.5);
  EXPECT_EQ(res.covered.count(), 1);
}

TEST(McgGreedy, RestrictToNarrowsTargets) {
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = build_set_system(sc);
  util::DynBitset only_u1(5);
  only_u1.set(0);
  const McgResult res = mcg_greedy_uniform(sys, 1.0, &only_u1);
  // Only (a1, s1, rate 3) covers u1; it fits the budget of 1 exactly.
  ASSERT_EQ(res.chosen.size(), 1u);
  EXPECT_DOUBLE_EQ(sys.set(res.chosen[0]).tx_rate, 3.0);
  EXPECT_EQ(res.covered.to_indices(), (std::vector<int>{0}));
}

TEST(McgGreedy, BudgetCountMismatchThrows) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  const std::vector<double> wrong(1, 1.0);
  EXPECT_THROW(mcg_greedy(sys, wrong), std::invalid_argument);
}

TEST(McgGreedy, ZeroBudgetSelectsNothing) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  const McgResult res = mcg_greedy_uniform(sys, 1e-15);
  EXPECT_TRUE(res.chosen.empty());
  EXPECT_EQ(res.covered.count(), 0);
}

}  // namespace
}  // namespace wmcast::setcover
