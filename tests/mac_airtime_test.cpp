#include "wmcast/mac/airtime.hpp"

#include <gtest/gtest.h>

namespace wmcast::mac {
namespace {

TEST(Airtime, FrameDurationKnownValue) {
  // 1500 B payload + 28 B MAC header at 54 Mbps:
  // bits = 16 + 8*1528 + 6 = 12246; bits/symbol = 216; symbols = ceil(56.69)
  // = 57; duration = 20 + 57*4 = 248 us.
  EXPECT_DOUBLE_EQ(frame_duration_us(1500, 54.0), 248.0);
  // Same frame at 6 Mbps: bits/symbol = 24; symbols = ceil(510.25) = 511;
  // duration = 20 + 511*4 = 2064 us.
  EXPECT_DOUBLE_EQ(frame_duration_us(1500, 6.0), 2064.0);
}

TEST(Airtime, LowerRateTakesLonger) {
  double prev = 0.0;
  for (const double rate : {54.0, 48.0, 36.0, 24.0, 18.0, 12.0, 6.0}) {
    const double d = frame_duration_us(1500, rate);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Airtime, BroadcastAddsDifsAndBackoff) {
  const double frame = frame_duration_us(1000, 24.0);
  EXPECT_DOUBLE_EQ(broadcast_airtime_us(1000, 24.0, 0), 34.0 + frame);
  EXPECT_DOUBLE_EQ(broadcast_airtime_us(1000, 24.0, 7), 34.0 + 7 * 9.0 + frame);
}

TEST(Airtime, AirtimeLoadExceedsIdealLoad) {
  // Per-frame overheads (preamble, DIFS, symbol padding) make the true busy
  // fraction strictly larger than the paper's stream/tx ratio.
  for (const double tx : {6.0, 12.0, 24.0, 54.0}) {
    const double ideal = ideal_load(1.0, tx);
    const double real = airtime_load(1.0, tx, 1500);
    EXPECT_GT(real, ideal);
    // ... but within a modest factor for big frames.
    EXPECT_LT(real, ideal * 2.0);
  }
}

TEST(Airtime, SmallerPacketsWasteMoreAirtime) {
  EXPECT_GT(airtime_load(1.0, 54.0, 200), airtime_load(1.0, 54.0, 1500));
}

TEST(Airtime, IdealLoadIsTheRateRatio) {
  EXPECT_DOUBLE_EQ(ideal_load(3.0, 6.0), 0.5);
  EXPECT_DOUBLE_EQ(ideal_load(1.0, 54.0), 1.0 / 54.0);
}

TEST(Airtime, InvalidInputsThrow) {
  EXPECT_THROW(frame_duration_us(0, 6.0), std::invalid_argument);
  EXPECT_THROW(frame_duration_us(100, 0.0), std::invalid_argument);
  EXPECT_THROW(airtime_load(0.0, 6.0), std::invalid_argument);
  EXPECT_THROW(ideal_load(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(broadcast_airtime_us(100, 6.0, -1), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::mac
