#include "wmcast/ext/power_control.hpp"

#include <gtest/gtest.h>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::ext {
namespace {

TEST(ScenarioAtPower, HigherPowerExtendsCoverage) {
  // User at 250 m: unreachable at base power, reachable (6 Mbps) at 1.5x.
  const auto sc = wlan::Scenario::from_geometry(
      {{0, 0}}, {{250, 0}}, {0}, {1.0}, wlan::RateTable::ieee80211a(), 0.9);
  EXPECT_EQ(sc.n_coverable_users(), 0);
  const auto boosted = scenario_at_power(sc, wlan::RateTable::ieee80211a(), 1.5);
  EXPECT_EQ(boosted.n_coverable_users(), 1);
  EXPECT_DOUBLE_EQ(boosted.link_rate(0, 0), 6.0);
}

TEST(ScenarioAtPower, LowerPowerShrinksRates) {
  const auto sc = wlan::Scenario::from_geometry(
      {{0, 0}}, {{30, 0}}, {0}, {1.0}, wlan::RateTable::ieee80211a(), 0.9);
  EXPECT_DOUBLE_EQ(sc.link_rate(0, 0), 54.0);
  const auto low = scenario_at_power(sc, wlan::RateTable::ieee80211a(), 0.5);
  // Thresholds halve: 30 m now falls in the 36 Mbps band (0.5*60 = 30).
  EXPECT_DOUBLE_EQ(low.link_rate(0, 0), 36.0);
}

TEST(ScenarioAtPower, RequiresGeometry) {
  const auto sc = wlan::Scenario::from_link_rates({{1.0}}, {0}, {1.0}, 0.9);
  EXPECT_THROW(scenario_at_power(sc, wlan::RateTable::ieee80211a(), 1.2),
               std::invalid_argument);
}

TEST(ShrinkPowers, KeepRateShrinksFootprintWithoutLoadChange) {
  // Users close to the AP: the 54 Mbps transmission reaches 35 m at base
  // power; at 0.5x it still covers members at <= 17.5 m.
  const auto sc = wlan::Scenario::from_geometry(
      {{0, 0}}, {{10, 0}, {12, 0}}, {0, 0}, {1.0}, wlan::RateTable::ieee80211a(), 0.9);
  const auto sol = assoc::centralized_mla(sc);
  const std::vector<double> scales = {0.5, 0.75, 1.0};
  const auto rep = shrink_powers(sc, sol.assoc, wlan::RateTable::ieee80211a(), scales,
                                 /*keep_rate=*/true);
  EXPECT_DOUBLE_EQ(rep.scale[0][0], 0.5);
  EXPECT_LT(rep.footprint_after_m2, rep.footprint_before_m2);
  EXPECT_NEAR(rep.loads_after.total_load, sol.loads.total_load, 1e-12);
  EXPECT_EQ(rep.loads_after.budget_violations, 0);
}

TEST(ShrinkPowers, KeepRateRefusesWhenRateWouldDrop) {
  // Member at 30 m: 54 Mbps at base; at 0.75x the 54-band ends at 26.25 m so
  // the rate would drop -> keep_rate must stay at 1.0.
  const auto sc = wlan::Scenario::from_geometry(
      {{0, 0}}, {{30, 0}}, {0}, {1.0}, wlan::RateTable::ieee80211a(), 0.9);
  const auto sol = assoc::centralized_mla(sc);
  const std::vector<double> scales = {0.75, 1.0};
  const auto rep = shrink_powers(sc, sol.assoc, wlan::RateTable::ieee80211a(), scales, true);
  EXPECT_DOUBLE_EQ(rep.scale[0][0], 1.0);
  EXPECT_NEAR(rep.footprint_after_m2, rep.footprint_before_m2, 1e-9);
}

TEST(ShrinkPowers, RateDropModeTradesLoadForFootprint) {
  const auto sc = wlan::Scenario::from_geometry(
      {{0, 0}}, {{30, 0}}, {0}, {1.0}, wlan::RateTable::ieee80211a(), 0.9);
  const auto sol = assoc::centralized_mla(sc);
  const std::vector<double> scales = {0.75, 1.0};
  const auto rep = shrink_powers(sc, sol.assoc, wlan::RateTable::ieee80211a(), scales,
                                 /*keep_rate=*/false);
  // At 0.75x the member (30 m) falls into the 48-band (0.75*40 = 30):
  // load rises 1/54 -> 1/48, footprint shrinks (pi*30^2 < pi*35^2).
  EXPECT_DOUBLE_EQ(rep.scale[0][0], 0.75);
  EXPECT_GT(rep.loads_after.total_load, sol.loads.total_load);
  EXPECT_LT(rep.footprint_after_m2, rep.footprint_before_m2);
  EXPECT_EQ(rep.loads_after.budget_violations, 0);
}

TEST(ShrinkPowers, BudgetGuardWalksPowerBackUp) {
  // Budget so tight that the rate drop from shrinking would violate it:
  // the walk-back must restore base power.
  const auto sc = wlan::Scenario::from_geometry(
      {{0, 0}}, {{30, 0}}, {0}, {1.0}, wlan::RateTable::ieee80211a(),
      /*budget=*/1.0 / 50.0);  // 1/54 fits, 1/48 does not
  const auto sol = assoc::centralized_mla(sc);
  ASSERT_EQ(sol.loads.satisfied_users, 1);
  const std::vector<double> scales = {0.75, 1.0};
  const auto rep = shrink_powers(sc, sol.assoc, wlan::RateTable::ieee80211a(), scales,
                                 /*keep_rate=*/false);
  EXPECT_DOUBLE_EQ(rep.scale[0][0], 1.0);
  EXPECT_EQ(rep.loads_after.budget_violations, 0);
}

TEST(ShrinkPowers, ScalesMustIncludeBasePower) {
  const auto sc = wlan::Scenario::from_geometry(
      {{0, 0}}, {{30, 0}}, {0}, {1.0}, wlan::RateTable::ieee80211a(), 0.9);
  const auto sol = assoc::centralized_mla(sc);
  const std::vector<double> scales = {0.5, 0.75};
  EXPECT_THROW(
      shrink_powers(sc, sol.assoc, wlan::RateTable::ieee80211a(), scales, true),
      std::invalid_argument);
}

TEST(ShrinkPowers, RandomScenarioInvariants) {
  util::Rng rng(103);
  wlan::GeneratorParams p;
  p.n_aps = 15;
  p.n_users = 40;
  const auto sc = wlan::generate_scenario(p, rng);
  const auto sol = assoc::centralized_bla(sc);
  const std::vector<double> scales = {0.5, 0.7, 0.85, 1.0};
  const auto rep = shrink_powers(sc, sol.assoc, wlan::RateTable::ieee80211a(), scales, true);
  // keep_rate: loads identical, footprint never grows, satisfied unchanged.
  EXPECT_NEAR(rep.loads_after.total_load, sol.loads.total_load, 1e-9);
  EXPECT_LE(rep.footprint_after_m2, rep.footprint_before_m2 + 1e-9);
  EXPECT_EQ(rep.loads_after.satisfied_users, sol.loads.satisfied_users);
}

}  // namespace
}  // namespace wmcast::ext
