#include "wmcast/ext/locks.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::ext {
namespace {

TEST(Locks, Fig4ConvergesWhereSimultaneousOscillates) {
  const auto sc = test::fig4_scenario();
  assoc::DistributedParams p;
  p.objective = assoc::Objective::kTotalLoad;
  p.order = util::iota_permutation(4);
  p.initial = wlan::Association{{0, 0, 1, 1}};

  // Plain simultaneous: oscillates (paper Fig. 4).
  {
    assoc::DistributedParams sim_p = p;
    sim_p.mode = assoc::UpdateMode::kSimultaneous;
    util::Rng rng(1);
    EXPECT_FALSE(assoc::distributed_associate(sc, rng, sim_p).converged);
  }
  // Lock-coordinated: converges, reaching the 9/20 fixed point.
  {
    util::Rng rng(1);
    LockStats stats;
    const auto sol = lock_coordinated_associate(sc, rng, p, &stats);
    EXPECT_TRUE(sol.converged);
    EXPECT_NEAR(sol.loads.total_load, 9.0 / 20.0, 1e-12);
    // u2 and u3 contend for the shared APs: someone must have deferred.
    EXPECT_GT(stats.deferrals, 0);
    EXPECT_GT(stats.lock_grants, 0);
  }
}

TEST(Locks, ConvergesOnRandomScenarios) {
  util::Rng rng(107);
  for (int trial = 0; trial < 5; ++trial) {
    wlan::GeneratorParams gp;
    gp.n_aps = 15;
    gp.n_users = 50;
    gp.n_sessions = 3;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(gp, sub);
    assoc::DistributedParams p;
    util::Rng run_rng = rng.fork();
    LockStats stats;
    const auto sol = lock_coordinated_associate(sc, run_rng, p, &stats);
    EXPECT_TRUE(sol.converged);
    EXPECT_TRUE(sol.loads.within_budget());
    EXPECT_EQ(sol.loads.satisfied_users, sc.n_coverable_users());
  }
}

TEST(Locks, QualityComparableToSequentialEngine) {
  util::Rng gen(109);
  wlan::GeneratorParams gp;
  gp.n_aps = 20;
  gp.n_users = 60;
  const auto sc = wlan::generate_scenario(gp, gen);
  assoc::DistributedParams p;
  p.order = util::iota_permutation(sc.n_users());
  util::Rng r1(1);
  util::Rng r2(1);
  const auto locked = lock_coordinated_associate(sc, r1, p);
  const auto sequential = assoc::distributed_associate(sc, r2, p);
  ASSERT_TRUE(locked.converged);
  ASSERT_TRUE(sequential.converged);
  EXPECT_EQ(locked.loads.satisfied_users, sequential.loads.satisfied_users);
  EXPECT_NEAR(locked.loads.total_load, sequential.loads.total_load,
              0.3 * sequential.loads.total_load + 1e-9);
}

TEST(Locks, LoadVectorObjectiveSupported) {
  const auto sc = test::fig1_scenario(1.0);
  assoc::DistributedParams p;
  p.objective = assoc::Objective::kLoadVector;
  p.order = util::iota_permutation(5);
  util::Rng rng(1);
  const auto sol = lock_coordinated_associate(sc, rng, p);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.algorithm, "BLA-D-lock");
  EXPECT_EQ(sol.loads.satisfied_users, 5);
}

TEST(Locks, RejectsBadOrder) {
  const auto sc = test::fig1_scenario(1.0);
  assoc::DistributedParams p;
  p.order = {0};
  util::Rng rng(1);
  EXPECT_THROW(lock_coordinated_associate(sc, rng, p), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::ext
