// FaultInjector determinism and accounting (chaos/fault.hpp): the whole
// harness rests on perturb() being a pure function of (seed, profile, input),
// so these tests pin that down alongside the per-fault bookkeeping the
// campaign aggregates.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "wmcast/chaos/fault.hpp"
#include "wmcast/ctrl/state.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"
#include "wmcast/wlan/serialization.hpp"

namespace wmcast::chaos {
namespace {

wlan::Scenario small_scenario() {
  wlan::GeneratorParams gp;
  gp.n_aps = 6;
  gp.n_users = 20;
  gp.n_sessions = 2;
  gp.area_side_m = 250.0;
  util::Rng rng(11);
  return wlan::generate_scenario(gp, rng);
}

ctrl::EventTrace churn_trace(const ctrl::NetworkState& initial) {
  ctrl::TraceParams tp;
  tp.epochs = 8;
  tp.move_fraction = 0.3;
  tp.walk_sigma_m = 25.0;
  tp.zap_fraction = 0.1;
  tp.leave_fraction = 0.05;
  tp.join_fraction = 0.1;
  tp.rate_change_prob = 0.3;
  util::Rng rng(7);
  return ctrl::generate_churn_trace(initial, tp, rng);
}

TEST(FaultProfileTest, NamedProfilesRoundTripAndUnknownThrows) {
  const auto& names = FaultProfile::names();
  ASSERT_EQ(names.size(), 7u);
  for (const auto& n : names) {
    const FaultProfile p = FaultProfile::named(n);
    EXPECT_EQ(p.name, n);
  }
  EXPECT_EQ(FaultProfile::named("none").drop_prob, 0.0);
  EXPECT_GT(FaultProfile::named("heavy").flap_prob, 0.0);
  EXPECT_GT(FaultProfile::named("malformed").corrupt_prob, 0.0);
  EXPECT_GT(FaultProfile::named("storm").burst_prob, 0.0);
  EXPECT_THROW(FaultProfile::named("bogus"), std::invalid_argument);
  EXPECT_THROW(FaultProfile::named(""), std::invalid_argument);
}

TEST(FaultInjectorTest, NoneProfileIsTheIdentity) {
  const auto sc = small_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial);

  FaultInjector inj(123, FaultProfile::named("none"));
  const auto out = inj.perturb(trace, initial);
  EXPECT_EQ(ctrl::trace_to_text(out), ctrl::trace_to_text(trace));

  const std::string text = ctrl::trace_to_text(trace);
  EXPECT_EQ(inj.corrupt_text(text), text);

  const FaultLog& log = inj.log();
  EXPECT_EQ(log.events_dropped, 0u);
  EXPECT_EQ(log.events_duplicated, 0u);
  EXPECT_EQ(log.events_skewed, 0u);
  EXPECT_EQ(log.windows_reordered, 0u);
  EXPECT_EQ(log.ap_flaps, 0u);
  EXPECT_EQ(log.churn_bursts, 0u);
  EXPECT_EQ(log.lines_corrupted, 0u);
}

TEST(FaultInjectorTest, SameSeedAndProfileReproduceExactly) {
  const auto sc = small_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial);

  FaultInjector a(42, FaultProfile::named("heavy"));
  FaultInjector b(42, FaultProfile::named("heavy"));
  EXPECT_EQ(ctrl::trace_to_text(a.perturb(trace, initial)),
            ctrl::trace_to_text(b.perturb(trace, initial)));
  EXPECT_EQ(a.log().events_dropped, b.log().events_dropped);
  EXPECT_EQ(a.log().events_duplicated, b.log().events_duplicated);
  EXPECT_EQ(a.log().events_skewed, b.log().events_skewed);
  EXPECT_EQ(a.log().ap_flaps, b.log().ap_flaps);
  EXPECT_EQ(a.log().churn_bursts, b.log().churn_bursts);

  FaultInjector c(42, FaultProfile::named("malformed"));
  FaultInjector d(42, FaultProfile::named("malformed"));
  const std::string text = ctrl::trace_to_text(trace);
  EXPECT_EQ(c.corrupt_text(text), d.corrupt_text(text));
}

TEST(FaultInjectorTest, DifferentSeedsPerturbDifferently) {
  const auto sc = small_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial);

  FaultInjector a(1, FaultProfile::named("heavy"));
  FaultInjector b(2, FaultProfile::named("heavy"));
  EXPECT_NE(ctrl::trace_to_text(a.perturb(trace, initial)),
            ctrl::trace_to_text(b.perturb(trace, initial)));
}

TEST(FaultInjectorTest, DropAndDuplicateAccountingBalances) {
  const auto sc = small_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial);

  FaultProfile p;
  p.name = "drop-dup";
  p.drop_prob = 0.3;
  p.duplicate_prob = 0.3;
  FaultInjector inj(5, p);
  const auto out = inj.perturb(trace, initial);

  const FaultLog& log = inj.log();
  EXPECT_GT(log.events_dropped, 0u);
  EXPECT_GT(log.events_duplicated, 0u);
  EXPECT_EQ(out.n_events(),
            trace.n_events() - log.events_dropped + log.events_duplicated);
  EXPECT_EQ(out.n_epochs(), trace.n_epochs());
}

TEST(FaultInjectorTest, SkewPreservesTotalEventCount) {
  const auto sc = small_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial);

  FaultProfile p;
  p.name = "skew";
  p.skew_prob = 0.5;
  FaultInjector inj(9, p);
  const auto out = inj.perturb(trace, initial);

  EXPECT_GT(inj.log().events_skewed, 0u);
  EXPECT_EQ(out.n_events(), trace.n_events());
  EXPECT_EQ(out.n_epochs(), trace.n_epochs());
}

TEST(FaultInjectorTest, ReorderPreservesPerEpochMultisets) {
  const auto sc = small_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial);

  FaultProfile p;
  p.name = "reorder";
  p.reorder_prob = 1.0;
  p.reorder_window = 4;
  FaultInjector inj(13, p);
  const auto out = inj.perturb(trace, initial);

  EXPECT_GT(inj.log().windows_reordered, 0u);
  ASSERT_EQ(out.n_epochs(), trace.n_epochs());
  for (size_t ep = 0; ep < trace.epochs.size(); ++ep) {
    // Same events, multiplicity included, possibly in a different order.
    std::vector<ctrl::Event> remaining = trace.epochs[ep];
    ASSERT_EQ(out.epochs[ep].size(), remaining.size()) << "epoch " << ep;
    for (const auto& e : out.epochs[ep]) {
      const auto it = std::find(remaining.begin(), remaining.end(), e);
      ASSERT_NE(it, remaining.end()) << "epoch " << ep << ": event not in original";
      remaining.erase(it);
    }
  }
}

TEST(FaultInjectorTest, FlapsAndBurstsAddExactlyTheLoggedEvents) {
  const auto sc = small_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial);

  FaultProfile p;
  p.name = "flap-burst";
  p.flap_prob = 1.0;
  p.flap_leaves = 6;
  p.burst_prob = 1.0;
  p.burst_size = 8;
  FaultInjector inj(17, p);
  const auto out = inj.perturb(trace, initial);

  const FaultLog& log = inj.log();
  EXPECT_EQ(log.ap_flaps, static_cast<uint64_t>(trace.n_epochs()));
  EXPECT_EQ(log.churn_bursts, static_cast<uint64_t>(trace.n_epochs()));
  // Each flap emits flap_leaves leave/rejoin pairs; each burst burst_size events.
  EXPECT_EQ(out.n_events(),
            trace.n_events() +
                log.ap_flaps * 2 * static_cast<uint64_t>(p.flap_leaves) +
                log.churn_bursts * static_cast<uint64_t>(p.burst_size));
}

// The corrupt-text corpus must cover both branches of the v2 scenario format:
// geometric (positions + rate table) and explicit (sparse_links rows). Every
// corrupted variant must either parse or throw std::invalid_argument — any
// crash or other exception type fails the test.
TEST(FaultInjectorTest, CorruptedV2ScenarioTextParsesOrThrows) {
  const auto sc = small_scenario();
  const std::string geometric = wlan::to_text(sc);
  ASSERT_NE(geometric.find("wmcast-scenario v2"), std::string::npos);

  // The same instance as an explicit scenario exercises the sparse_links rows.
  std::vector<std::vector<double>> dense(
      static_cast<size_t>(sc.n_aps()),
      std::vector<double>(static_cast<size_t>(sc.n_users()), 0.0));
  for (int a = 0; a < sc.n_aps(); ++a) {
    for (int u = 0; u < sc.n_users(); ++u) {
      dense[static_cast<size_t>(a)][static_cast<size_t>(u)] = sc.link_rate(a, u);
    }
  }
  std::vector<int> sessions(static_cast<size_t>(sc.n_users()));
  for (int u = 0; u < sc.n_users(); ++u) sessions[static_cast<size_t>(u)] = sc.user_session(u);
  const wlan::Scenario explicit_sc = wlan::Scenario::from_link_rates(
      std::move(dense), std::move(sessions), {1.0, 1.0}, sc.load_budget());
  const std::string sparse = wlan::to_text(explicit_sc);
  ASSERT_NE(sparse.find("sparse_links"), std::string::npos);

  FaultProfile p;
  p.name = "corrupt";
  p.corrupt_prob = 0.3;
  int parsed = 0;
  int rejected = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    for (const std::string* text : {&geometric, &sparse}) {
      FaultInjector inj(seed, p);
      try {
        (void)wlan::from_text(inj.corrupt_text(*text));
        ++parsed;
      } catch (const std::invalid_argument&) {
        ++rejected;
      }
    }
  }
  EXPECT_EQ(parsed + rejected, 80);
  EXPECT_GT(rejected, 0);  // corpus actually hit the parsers
}

TEST(FaultInjectorTest, CorruptTextIsDeterministicAndCounted) {
  const auto sc = small_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const std::string text = ctrl::trace_to_text(churn_trace(initial));

  FaultProfile p;
  p.name = "corrupt";
  p.corrupt_prob = 0.5;
  FaultInjector a(21, p);
  FaultInjector b(21, p);
  const std::string ca = a.corrupt_text(text);
  EXPECT_EQ(ca, b.corrupt_text(text));
  EXPECT_NE(ca, text);
  EXPECT_GT(a.log().lines_corrupted, 0u);
}

}  // namespace
}  // namespace wmcast::chaos
