#include "wmcast/wlan/association.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace wmcast::wlan {
namespace {

TEST(ComputeLoads, Fig1BlaOptimalLoads) {
  // Paper §3.2: with 1 Mbps streams, u1,u2,u3 -> a1 and u4,u5 -> a2 yields
  // loads (1/2, 1/3): a1 sends s1 at min(3,4)=3 and s2 at 6; a2 sends s2 at
  // min(5,3)=3.
  const Scenario sc = test::fig1_scenario(1.0);
  const Association assoc{{0, 0, 0, 1, 1}};
  const LoadReport rep = compute_loads(sc, assoc);
  EXPECT_NEAR(rep.ap_load[0], 0.5, 1e-12);
  EXPECT_NEAR(rep.ap_load[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(rep.max_load, 0.5, 1e-12);
  EXPECT_NEAR(rep.total_load, 0.5 + 1.0 / 3.0, 1e-12);
  EXPECT_EQ(rep.satisfied_users, 5);
  EXPECT_TRUE(rep.within_budget());
  EXPECT_DOUBLE_EQ(rep.tx_rate[0][0], 3.0);
  EXPECT_DOUBLE_EQ(rep.tx_rate[0][1], 6.0);
  EXPECT_DOUBLE_EQ(rep.tx_rate[1][1], 3.0);
  EXPECT_DOUBLE_EQ(rep.tx_rate[1][0], 0.0);  // a2 does not transmit s1
}

TEST(ComputeLoads, Fig1MlaOptimalAllOnA1) {
  // Paper §3.2: all users on a1 gives total load 1/3 + 1/4 = 7/12.
  const Scenario sc = test::fig1_scenario(1.0);
  const Association assoc{{0, 0, 0, 0, 0}};
  const LoadReport rep = compute_loads(sc, assoc);
  EXPECT_NEAR(rep.total_load, 7.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(rep.tx_rate[0][1], 4.0);  // s2 at min(6,4,4)
}

TEST(ComputeLoads, Fig1MnuInfeasibleAllUsers) {
  // With 3 Mbps streams, a1 serving u1 and u2 needs 3/3 + 3/6 = 1.5 > 1.
  const Scenario sc = test::fig1_scenario(3.0);
  const Association assoc{{0, 0, kNoAp, kNoAp, kNoAp}};
  const LoadReport rep = compute_loads(sc, assoc);
  EXPECT_NEAR(rep.ap_load[0], 1.5, 1e-12);
  EXPECT_EQ(rep.budget_violations, 1);
  EXPECT_FALSE(rep.within_budget());
  EXPECT_EQ(rep.satisfied_users, 2);
}

TEST(ComputeLoads, UnassociatedUsersContributeNothing) {
  const Scenario sc = test::fig1_scenario(1.0);
  const Association assoc = Association::none(5);
  const LoadReport rep = compute_loads(sc, assoc);
  EXPECT_DOUBLE_EQ(rep.total_load, 0.0);
  EXPECT_EQ(rep.satisfied_users, 0);
  EXPECT_TRUE(rep.within_budget());
}

TEST(ComputeLoads, RejectsOutOfRangeAssignment) {
  const Scenario sc = test::fig1_scenario(1.0);
  // u1 cannot reach a2 (rate 0).
  const Association bad{{1, 0, 0, 0, 0}};
  EXPECT_THROW(compute_loads(sc, bad), std::invalid_argument);
  const Association bad_ap{{7, 0, 0, 0, 0}};
  EXPECT_THROW(compute_loads(sc, bad_ap), std::invalid_argument);
  const Association wrong_size{{0, 0}};
  EXPECT_THROW(compute_loads(sc, wrong_size), std::invalid_argument);
}

TEST(ComputeLoads, BasicRateModeUsesLowestRateEverywhere) {
  const Scenario sc = test::fig1_scenario(1.0);
  const Association assoc{{0, 0, 0, 1, 1}};
  // Basic rate of the Fig. 1 instance is 3 Mbps (lowest positive link rate).
  const LoadReport rep = compute_loads(sc, assoc, /*multi_rate=*/false);
  EXPECT_DOUBLE_EQ(rep.tx_rate[0][0], 3.0);
  EXPECT_DOUBLE_EQ(rep.tx_rate[0][1], 3.0);  // not 6 (u2's rate)
  EXPECT_NEAR(rep.ap_load[0], 1.0 / 3.0 + 1.0 / 3.0, 1e-12);
  // Multi-rate strictly better on a1: 1/3 + 1/6 < 2/3.
  const LoadReport multi = compute_loads(sc, assoc, /*multi_rate=*/true);
  EXPECT_LT(multi.ap_load[0], rep.ap_load[0]);
}

TEST(ApLoadForMembers, MatchesComputeLoads) {
  const Scenario sc = test::fig1_scenario(1.0);
  const Association assoc{{0, 0, 0, 1, 1}};
  const LoadReport rep = compute_loads(sc, assoc);
  EXPECT_NEAR(ap_load_for_members(sc, 0, {0, 1, 2}), rep.ap_load[0], 1e-12);
  EXPECT_NEAR(ap_load_for_members(sc, 1, {3, 4}), rep.ap_load[1], 1e-12);
  EXPECT_DOUBLE_EQ(ap_load_for_members(sc, 0, {}), 0.0);
}

TEST(Association, NoneFactory) {
  const Association a = Association::none(3);
  EXPECT_EQ(a.n_users(), 3);
  EXPECT_EQ(a.ap_of(0), kNoAp);
  EXPECT_EQ(a.ap_of(2), kNoAp);
}

}  // namespace
}  // namespace wmcast::wlan
