#include "wmcast/ext/interference.hpp"

#include <gtest/gtest.h>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::ext {
namespace {

wlan::Scenario line_scenario() {
  // Three APs in a line, 100 m apart; users near each AP.
  return wlan::Scenario::from_geometry(
      {{0, 0}, {100, 0}, {200, 0}},
      {{0, 10}, {100, 10}, {200, 10}}, {0, 0, 0}, {1.0},
      wlan::RateTable::ieee80211a(), 0.9);
}

TEST(ConflictGraph, EdgesWithinRangeOnly) {
  const auto sc = line_scenario();
  const auto adj = build_conflict_graph(sc, 150.0);
  // 0-1 and 1-2 conflict (100 m); 0-2 do not (200 m).
  EXPECT_EQ(adj[0], (std::vector<int>{1}));
  EXPECT_EQ(adj[1], (std::vector<int>{0, 2}));
  EXPECT_EQ(adj[2], (std::vector<int>{1}));
}

TEST(ConflictGraph, RequiresGeometry) {
  const auto sc = wlan::Scenario::from_link_rates({{1.0}}, {0}, {1.0}, 0.9);
  EXPECT_THROW(build_conflict_graph(sc, 100.0), std::invalid_argument);
}

TEST(AssignChannels, TwoChannelsSufficeOnAPath) {
  const auto sc = line_scenario();
  const auto adj = build_conflict_graph(sc, 150.0);
  const auto ch = assign_channels(adj, 2);
  EXPECT_EQ(ch.conflict_edges, 0);
  EXPECT_NE(ch.channel_of_ap[0], ch.channel_of_ap[1]);
  EXPECT_NE(ch.channel_of_ap[1], ch.channel_of_ap[2]);
}

TEST(AssignChannels, OneChannelConflictsEverywhere) {
  const auto sc = line_scenario();
  const auto adj = build_conflict_graph(sc, 150.0);
  const auto ch = assign_channels(adj, 1);
  EXPECT_EQ(ch.conflict_edges, 2);
}

TEST(AssignChannels, MoreChannelsNeverMoreConflicts) {
  util::Rng rng(97);
  wlan::GeneratorParams p;
  p.n_aps = 40;
  p.n_users = 10;
  const auto sc = wlan::generate_scenario(p, rng);
  const auto adj = build_conflict_graph(sc, 400.0);
  int prev = std::numeric_limits<int>::max();
  for (const int k : {1, 3, 6, 12}) {
    const int conflicts = assign_channels(adj, k).conflict_edges;
    EXPECT_LE(conflicts, prev);
    prev = conflicts;
  }
}

TEST(InterferenceReport, EffectiveLoadAddsSameChannelNeighbors) {
  const auto sc = line_scenario();
  const auto adj = build_conflict_graph(sc, 150.0);
  // Force all APs onto one channel.
  ChannelAssignment ch;
  ch.channel_of_ap = {0, 0, 0};
  const auto sol = assoc::centralized_mla(sc);
  const auto rep = interference_report(sc, sol.loads, ch, adj);
  // AP1 hears AP0 and AP2.
  EXPECT_NEAR(rep.effective_load[1],
              sol.loads.ap_load[0] + sol.loads.ap_load[1] + sol.loads.ap_load[2], 1e-9);
  EXPECT_GE(rep.max_effective_load, sol.loads.max_load);
}

TEST(InterferenceReport, DisjointChannelsMatchRawLoads) {
  const auto sc = line_scenario();
  const auto adj = build_conflict_graph(sc, 150.0);
  const auto ch = assign_channels(adj, 3);
  const auto sol = assoc::centralized_mla(sc);
  const auto rep = interference_report(sc, sol.loads, ch, adj);
  for (int a = 0; a < 3; ++a) {
    EXPECT_NEAR(rep.effective_load[static_cast<size_t>(a)],
                sol.loads.ap_load[static_cast<size_t>(a)], 1e-12);
  }
}

TEST(InterferenceReport, MlaLowersInterferenceVsSsa) {
  // The paper's claim (§3.2 note): minimizing total load implicitly reduces
  // total interference. Compare mean effective load of MLA vs SSA on a dense
  // single-channel network.
  util::Rng rng(101);
  util::RunningStat improvement;
  for (int trial = 0; trial < 5; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 30;
    p.n_users = 80;
    p.area_side_m = 500.0;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    const auto adj = build_conflict_graph(sc, 400.0);
    const auto ch = assign_channels(adj, 1);
    util::Rng ssa_rng = rng.fork();
    const auto ssa = assoc::ssa_associate(sc, ssa_rng);
    const auto mla = assoc::centralized_mla(sc);
    const auto rep_ssa = interference_report(sc, ssa.loads, ch, adj);
    const auto rep_mla = interference_report(sc, mla.loads, ch, adj);
    improvement.add(rep_ssa.mean_effective_load - rep_mla.mean_effective_load);
  }
  EXPECT_GT(improvement.mean(), 0.0);
}

}  // namespace
}  // namespace wmcast::ext
