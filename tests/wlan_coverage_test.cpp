#include "wmcast/wlan/coverage.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::wlan {
namespace {

TEST(Coverage, Fig1Analytics) {
  const auto sc = test::fig1_scenario(1.0);
  const auto rep = analyze_coverage(sc);
  EXPECT_EQ(rep.coverable_users, 5);
  EXPECT_EQ(rep.uncoverable_users, 0);
  // u1, u2 hear 1 AP; u3, u4, u5 hear 2.
  EXPECT_EQ(rep.aps_per_user_histogram[1], 2);
  EXPECT_EQ(rep.aps_per_user_histogram[2], 3);
  EXPECT_EQ(rep.max_aps_per_user, 2);
  EXPECT_NEAR(rep.mean_aps_per_user, 8.0 / 5.0, 1e-12);
  // Best rates: u1 -> 3, u2 -> 6, u3 -> 5, u4 -> 5, u5 -> 4.
  ASSERT_EQ(rep.best_rate_values.size(), 4u);
  EXPECT_EQ(rep.best_rate_values, (std::vector<double>{3, 4, 5, 6}));
  EXPECT_EQ(rep.best_rate_counts, (std::vector<int>{1, 1, 2, 1}));
  // Users per AP: a1 hears all 5, a2 hears 3.
  EXPECT_NEAR(rep.mean_users_per_ap, 4.0, 1e-12);
  EXPECT_EQ(rep.max_users_per_ap, 5);
  EXPECT_EQ(rep.idle_aps, 0);
}

TEST(Coverage, DetectsUncoverableUsersAndIdleAps) {
  const std::vector<std::vector<double>> link = {{6, 0}, {0, 0}};
  const auto sc = Scenario::from_link_rates(link, {0, 0}, {1.0}, 0.9);
  const auto rep = analyze_coverage(sc);
  EXPECT_EQ(rep.coverable_users, 1);
  EXPECT_EQ(rep.uncoverable_users, 1);
  EXPECT_EQ(rep.idle_aps, 1);
  EXPECT_EQ(rep.aps_per_user_histogram[0], 1);
}

TEST(Coverage, HistogramClampsAtLastBucket) {
  // One user hearing 5 APs, histogram of 4 buckets: lands in bucket 3.
  const std::vector<std::vector<double>> link = {{6}, {6}, {6}, {6}, {6}};
  const auto sc = Scenario::from_link_rates(link, {0}, {1.0}, 0.9);
  const auto rep = analyze_coverage(sc, 4);
  EXPECT_EQ(rep.aps_per_user_histogram[3], 1);
  EXPECT_EQ(rep.max_aps_per_user, 5);
}

TEST(Coverage, DensityScalesWithApCount) {
  util::Rng r1(223);
  util::Rng r2(223);
  GeneratorParams sparse;
  sparse.n_aps = 50;
  sparse.n_users = 100;
  GeneratorParams dense = sparse;
  dense.n_aps = 200;
  const auto rep_sparse = analyze_coverage(generate_scenario(sparse, r1));
  const auto rep_dense = analyze_coverage(generate_scenario(dense, r2));
  EXPECT_GT(rep_dense.mean_aps_per_user, 2.0 * rep_sparse.mean_aps_per_user);
}

TEST(Coverage, RejectsBadBuckets) {
  const auto sc = test::fig1_scenario(1.0);
  EXPECT_THROW(analyze_coverage(sc, 1), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::wlan
