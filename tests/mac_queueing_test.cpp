#include "wmcast/mac/queueing.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::mac {
namespace {

TEST(Md1, KnownValues) {
  EXPECT_DOUBLE_EQ(md1_waiting_time(0.0), 0.0);
  EXPECT_DOUBLE_EQ(md1_waiting_time(0.5), 0.5);   // rho/(2(1-rho))
  EXPECT_DOUBLE_EQ(md1_waiting_time(0.8), 2.0);
  EXPECT_THROW(md1_waiting_time(1.0), std::invalid_argument);
  EXPECT_THROW(md1_waiting_time(-0.1), std::invalid_argument);
}

TEST(Md1, MonotoneAndConvexInLoad) {
  double prev = -1.0;
  double prev_delta = 0.0;
  for (double rho = 0.0; rho < 0.95; rho += 0.05) {
    const double w = md1_waiting_time(rho);
    EXPECT_GT(w, prev);
    if (prev >= 0.0) {
      const double delta = w - prev;
      EXPECT_GE(delta, prev_delta - 1e-12);  // convex: increments grow
      prev_delta = delta;
    }
    prev = w;
  }
}

TEST(StreamDelay, IdleApsHaveZeroDelay) {
  const auto sc = test::fig1_scenario(1.0);
  const wlan::Association all_a1{{0, 0, 0, 0, 0}};
  const auto loads = wlan::compute_loads(sc, all_a1);
  const auto rep = stream_delay_report(sc, loads);
  EXPECT_GT(rep.ap_sojourn_ms[0], 0.0);
  EXPECT_DOUBLE_EQ(rep.ap_sojourn_ms[1], 0.0);
  EXPECT_EQ(rep.saturated_aps, 0);
  EXPECT_DOUBLE_EQ(rep.max_sojourn_ms, rep.ap_sojourn_ms[0]);
}

TEST(StreamDelay, HigherLoadMeansMoreDelayAtEqualRates) {
  // Same AP serving one vs two sessions at the same tx rate: higher rho,
  // higher sojourn.
  const std::vector<std::vector<double>> link = {{4, 4}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 1}, {1.0, 1.0}, 1.0);
  const auto one = wlan::compute_loads(sc, wlan::Association{{0, wlan::kNoAp}});
  const auto two = wlan::compute_loads(sc, wlan::Association{{0, 0}});
  const auto rep1 = stream_delay_report(sc, one);
  const auto rep2 = stream_delay_report(sc, two);
  EXPECT_GT(rep2.ap_sojourn_ms[0], rep1.ap_sojourn_ms[0]);
}

TEST(StreamDelay, SaturatedApsAreCountedNotAveraged) {
  const std::vector<std::vector<double>> link = {{2.0}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0}, {2.0}, 1.0);
  const auto loads = wlan::compute_loads(sc, wlan::Association{{0}});
  ASSERT_GE(loads.ap_load[0], 1.0);
  const auto rep = stream_delay_report(sc, loads);
  EXPECT_EQ(rep.saturated_aps, 1);
  EXPECT_DOUBLE_EQ(rep.ap_sojourn_ms[0], 0.0);
}

TEST(StreamDelay, BlaLowersWorstNormalizedWaitVsSsa) {
  // The latency interpretation of the BLA objective: the worst AP's M/D/1
  // *normalized* wait (in service-time units) is a monotone image of its
  // load, so minimizing the max load minimizes it. (Absolute sojourn in ms
  // is NOT monotone — a lightly loaded AP transmitting at 6 Mbps has slower
  // frames than a busy one at 54 Mbps — which the report documents.)
  util::Rng rng(227);
  util::RunningStat edge;
  for (int trial = 0; trial < 5; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 40;
    p.n_users = 160;
    p.area_side_m = 500.0;
    p.session_rate_mbps = 2.0;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    util::Rng srng = rng.fork();
    const auto ssa = assoc::ssa_associate(sc, srng);
    const auto bla = assoc::centralized_bla(sc);
    const auto d_ssa = stream_delay_report(sc, ssa.loads);
    const auto d_bla = stream_delay_report(sc, bla.loads);
    edge.add(d_ssa.max_normalized_wait - d_bla.max_normalized_wait);
    // Consistency: normalized wait matches the max-load transform.
    EXPECT_NEAR(d_bla.max_normalized_wait, md1_waiting_time(bla.loads.max_load), 1e-9);
  }
  EXPECT_GT(edge.mean(), 0.0);
}

TEST(StreamDelay, RejectsBadInput) {
  const auto sc = test::fig1_scenario(1.0);
  wlan::LoadReport wrong;
  wrong.ap_load = {0.1};
  EXPECT_THROW(stream_delay_report(sc, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::mac
