#include "wmcast/wlan/rate_table.hpp"

#include <gtest/gtest.h>

namespace wmcast::wlan {
namespace {

TEST(RateTable, Ieee80211aMatchesPaperTable1) {
  const RateTable t = RateTable::ieee80211a();
  ASSERT_EQ(t.steps().size(), 7u);
  // (rate, max distance) exactly as in Table 1.
  const std::vector<RateStep> expected = {{54, 35}, {48, 40}, {36, 60}, {24, 85},
                                          {18, 105}, {12, 145}, {6, 200}};
  EXPECT_EQ(t.steps(), expected);
  EXPECT_DOUBLE_EQ(t.basic_rate(), 6.0);
  EXPECT_DOUBLE_EQ(t.range_m(), 200.0);
}

TEST(RateTable, RateForDistanceStaircase) {
  const RateTable t = RateTable::ieee80211a();
  EXPECT_DOUBLE_EQ(t.rate_for_distance(0.0), 54.0);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(35.0), 54.0);   // inclusive threshold
  EXPECT_DOUBLE_EQ(t.rate_for_distance(35.01), 48.0);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(40.0), 48.0);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(60.0), 36.0);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(85.0), 24.0);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(105.0), 18.0);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(145.0), 12.0);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(200.0), 6.0);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(200.01), 0.0);  // out of range
}

TEST(RateTable, SortsStepsGivenInAnyOrder) {
  const RateTable t({{6, 100}, {54, 10}, {24, 50}});
  EXPECT_DOUBLE_EQ(t.steps().front().rate_mbps, 54.0);
  EXPECT_DOUBLE_EQ(t.steps().back().rate_mbps, 6.0);
}

TEST(RateTable, RejectsNonMonotoneTables) {
  // Higher rate reaching farther than a lower rate is physically inconsistent.
  EXPECT_THROW(RateTable({{54, 100}, {6, 50}}), std::invalid_argument);
  EXPECT_THROW(RateTable({{54, 35}, {54, 40}}), std::invalid_argument);  // dup rate
  EXPECT_THROW(RateTable({}), std::invalid_argument);
  EXPECT_THROW(RateTable({{-1, 10}}), std::invalid_argument);
  EXPECT_THROW(RateTable({{10, 0}}), std::invalid_argument);
}

TEST(RateTable, ScaledRangeScalesThresholdsOnly) {
  const RateTable t = RateTable::ieee80211a().scaled_range(1.5);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(52.5), 54.0);  // 35 * 1.5
  EXPECT_DOUBLE_EQ(t.rate_for_distance(300.0), 6.0);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(300.5), 0.0);
  EXPECT_DOUBLE_EQ(t.basic_rate(), 6.0);  // rates unchanged
  EXPECT_THROW(RateTable::ieee80211a().scaled_range(0.0), std::invalid_argument);
}

TEST(RateTable, SingleStepTable) {
  const RateTable t({{2, 100}});
  EXPECT_DOUBLE_EQ(t.rate_for_distance(99.0), 2.0);
  EXPECT_DOUBLE_EQ(t.rate_for_distance(101.0), 0.0);
  EXPECT_DOUBLE_EQ(t.basic_rate(), 2.0);
}

}  // namespace
}  // namespace wmcast::wlan
