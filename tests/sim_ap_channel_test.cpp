#include "wmcast/sim/ap_channel.hpp"

#include <gtest/gtest.h>

#include "wmcast/mac/airtime.hpp"

namespace wmcast::sim {
namespace {

TEST(ApChannel, EmptyChannelIsIdle) {
  const auto r = simulate_ap_channel({}, {});
  EXPECT_EQ(r.multicast_frames_sent, 0);
  EXPECT_EQ(r.unicast_frames_sent, 0);
  EXPECT_DOUBLE_EQ(r.multicast_busy_fraction, 0.0);
}

TEST(ApChannel, MulticastBusyFractionMatchesAnalyticLoad) {
  // The empirical busy fraction must agree with mac::airtime_load — the
  // simulator is the ground truth the analytic model abstracts.
  ApChannelConfig cfg;
  cfg.horizon_s = 10.0;
  for (const double tx : {6.0, 24.0, 54.0}) {
    const auto r = simulate_ap_channel({{1.0, tx}}, {}, cfg);
    const double analytic = mac::airtime_load(1.0, tx, cfg.payload_bytes);
    EXPECT_NEAR(r.multicast_busy_fraction, analytic, 0.02 * analytic)
        << "tx rate " << tx;
    EXPECT_LT(r.multicast_backlog_fraction, 0.01);
  }
}

TEST(ApChannel, SaturatedUnicastFillsResidualAirtime) {
  ApChannelConfig cfg;
  cfg.horizon_s = 5.0;
  // One fast unicast client, no multicast: goodput near the efficiency-
  // limited maximum for 54 Mbps (1500 B frames: ~26-30 Mbps with overheads).
  const auto idle = simulate_ap_channel({}, {UnicastClient{54.0}}, cfg);
  EXPECT_GT(idle.total_unicast_goodput_mbps, 20.0);
  EXPECT_LT(idle.total_unicast_goodput_mbps, 54.0);

  // Adding multicast strictly reduces unicast goodput.
  const auto busy = simulate_ap_channel({{2.0, 6.0}}, {UnicastClient{54.0}}, cfg);
  EXPECT_LT(busy.total_unicast_goodput_mbps, idle.total_unicast_goodput_mbps);
  // ... by roughly the multicast busy fraction.
  const double expected =
      idle.total_unicast_goodput_mbps * (1.0 - busy.multicast_busy_fraction);
  EXPECT_NEAR(busy.total_unicast_goodput_mbps, expected, 0.1 * expected);
}

TEST(ApChannel, LowerMulticastTxRateHurtsUnicastMore) {
  // The whole point of association control: the same 1 Mbps stream sent at
  // 6 Mbps steals far more airtime than at 54 Mbps.
  ApChannelConfig cfg;
  cfg.horizon_s = 5.0;
  const auto slow = simulate_ap_channel({{1.0, 6.0}}, {UnicastClient{54.0}}, cfg);
  const auto fast = simulate_ap_channel({{1.0, 54.0}}, {UnicastClient{54.0}}, cfg);
  EXPECT_GT(slow.multicast_busy_fraction, 4.0 * fast.multicast_busy_fraction);
  EXPECT_LT(slow.total_unicast_goodput_mbps, fast.total_unicast_goodput_mbps);
}

TEST(ApChannel, RoundRobinSharesAirtimeEqually) {
  // Two clients at different rates get equal airtime, not equal throughput
  // (the classic 802.11 rate anomaly under round-robin airtime sharing...
  // actually equal frames: the slow client drags total throughput down).
  ApChannelConfig cfg;
  cfg.horizon_s = 5.0;
  const auto r = simulate_ap_channel({}, {UnicastClient{54.0}, UnicastClient{6.0}}, cfg);
  ASSERT_EQ(r.unicast_goodput_mbps.size(), 2u);
  // Round-robin frames: both deliver the same number of frames -> equal
  // goodput in bits despite different rates.
  EXPECT_NEAR(r.unicast_goodput_mbps[0], r.unicast_goodput_mbps[1],
              0.05 * r.unicast_goodput_mbps[0]);
  // Total is dominated by the slow client's airtime.
  EXPECT_LT(r.total_unicast_goodput_mbps, 12.0);
}

TEST(ApChannel, OverloadedMulticastBacklogs) {
  // 8 Mbps of streams at 6 Mbps PHY cannot fit: backlog accumulates and the
  // channel saturates near 100% multicast.
  ApChannelConfig cfg;
  cfg.horizon_s = 2.0;
  const auto r = simulate_ap_channel({{8.0, 6.0}}, {UnicastClient{54.0}}, cfg);
  EXPECT_GT(r.multicast_backlog_fraction, 0.1);
  EXPECT_GT(r.multicast_busy_fraction, 0.95);
  EXPECT_LT(r.total_unicast_goodput_mbps, 0.5);
}

TEST(ApChannel, MultipleSessionsShareTheChannel) {
  ApChannelConfig cfg;
  cfg.horizon_s = 5.0;
  const auto r =
      simulate_ap_channel({{1.0, 24.0}, {1.0, 12.0}, {0.5, 54.0}}, {}, cfg);
  const double analytic = mac::airtime_load(1.0, 24.0, cfg.payload_bytes) +
                          mac::airtime_load(1.0, 12.0, cfg.payload_bytes) +
                          mac::airtime_load(0.5, 54.0, cfg.payload_bytes);
  EXPECT_NEAR(r.multicast_busy_fraction, analytic, 0.03 * analytic);
}

TEST(ApChannel, RejectsBadInput) {
  EXPECT_THROW(simulate_ap_channel({{0.0, 6.0}}, {}), std::invalid_argument);
  EXPECT_THROW(simulate_ap_channel({{1.0, 0.0}}, {}), std::invalid_argument);
  EXPECT_THROW(simulate_ap_channel({}, {UnicastClient{0.0}}), std::invalid_argument);
  ApChannelConfig bad;
  bad.horizon_s = 0.0;
  EXPECT_THROW(simulate_ap_channel({}, {}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::sim
