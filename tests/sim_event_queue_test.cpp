#include "wmcast/sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace wmcast::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(3.0, [&] { order.push_back(3); });
  sim.schedule_in(1.0, [&] { order.push_back(1); });
  sim.schedule_in(2.0, [&] { order.push_back(2); });
  while (sim.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.processed(), 3);
}

TEST(Simulator, EqualTimesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_in(1.0, [&order, i] { order.push_back(i); });
  }
  while (sim.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 4) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  while (sim.step()) {
  }
  EXPECT_EQ(fired, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(2.0, [&] { ++fired; });
  sim.schedule_in(5.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(2.0), 2);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_FALSE(sim.empty());
  EXPECT_EQ(sim.run_until(10.0), 1);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(7.0), 0);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
}

TEST(Simulator, StepOnEmptyReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(4.5, [&] { seen = sim.now(); });
  while (sim.step()) {
  }
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

}  // namespace
}  // namespace wmcast::sim
