#include "wmcast/ext/interference_aware.hpp"

#include <gtest/gtest.h>

#include "wmcast/assoc/distributed.hpp"
#include "wmcast/sim/csma.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::ext {
namespace {

wlan::Scenario dense(uint64_t seed) {
  wlan::GeneratorParams p;
  p.n_aps = 30;
  p.n_users = 100;
  p.n_sessions = 4;
  p.area_side_m = 450.0;
  util::Rng rng(seed);
  return wlan::generate_scenario(p, rng);
}

std::vector<std::vector<int>> one_channel_conflicts(const wlan::Scenario& sc) {
  return build_conflict_graph(sc, 400.0);  // all APs share one channel
}

TEST(InterferenceAware, ConvergesAndServesEveryone) {
  const auto sc = dense(1);
  const auto conflicts = one_channel_conflicts(sc);
  util::Rng rng(2);
  const auto sol = interference_aware_associate(sc, conflicts, rng);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.loads.satisfied_users, sc.n_coverable_users());
  EXPECT_TRUE(sol.loads.within_budget());
}

TEST(InterferenceAware, NoConflictsEquivalentObjectiveToPlainEngine) {
  // With an empty conflict graph, effective == raw, so the engine solves the
  // same problem as the plain distributed engine; quality should match.
  const auto sc = dense(3);
  const std::vector<std::vector<int>> no_conflicts(static_cast<size_t>(sc.n_aps()));
  InterferenceAwareParams p;
  p.order = util::iota_permutation(sc.n_users());
  util::Rng r1(4);
  const auto aware = interference_aware_associate(sc, no_conflicts, r1, p);

  assoc::DistributedParams dp;
  dp.order = p.order;
  util::Rng r2(4);
  const auto plain = assoc::distributed_associate(sc, r2, dp);
  EXPECT_NEAR(aware.loads.total_load, plain.loads.total_load, 1e-9);
}

TEST(InterferenceAware, LowersEffectiveLoadVsPlainEngine) {
  // On a single shared channel, the aware engine must do at least as well on
  // the max effective busy fraction as the interference-blind BLA-D.
  util::RunningStat edge;
  for (uint64_t seed = 10; seed < 15; ++seed) {
    const auto sc = dense(seed);
    const auto conflicts = one_channel_conflicts(sc);
    const auto graph_channels = std::vector<int>(static_cast<size_t>(sc.n_aps()), 0);

    InterferenceAwareParams p;
    p.objective = assoc::Objective::kLoadVector;
    util::Rng r1(seed);
    const auto aware = interference_aware_associate(sc, conflicts, r1, p);

    util::Rng r2(seed);
    const auto blind = assoc::distributed_bla(sc, r2);

    ChannelAssignment ch;
    ch.channel_of_ap = graph_channels;
    const auto eff_aware = interference_report(sc, aware.loads, ch, conflicts);
    const auto eff_blind = interference_report(sc, blind.loads, ch, conflicts);
    edge.add(eff_blind.max_effective_load - eff_aware.max_effective_load);
  }
  EXPECT_GT(edge.mean(), -1e-9);  // at least as good on average, usually better
  EXPECT_GT(edge.max(), 0.0);    // strictly better somewhere
}

TEST(InterferenceAware, BudgetsRespectedUnderTightBudget) {
  auto sc = dense(20).with_budget(0.08);
  const auto conflicts = one_channel_conflicts(sc);
  util::Rng rng(21);
  const auto sol = interference_aware_associate(sc, conflicts, rng);
  EXPECT_TRUE(sol.loads.within_budget());
}

TEST(InterferenceAware, RejectsBadInput) {
  const auto sc = dense(30);
  util::Rng rng(31);
  EXPECT_THROW(interference_aware_associate(sc, {}, rng), std::invalid_argument);
  InterferenceAwareParams p;
  p.order = {1, 2};
  EXPECT_THROW(
      interference_aware_associate(
          sc, std::vector<std::vector<int>>(static_cast<size_t>(sc.n_aps())), rng, p),
      std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::ext
