#include "wmcast/ctrl/state.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace wmcast::ctrl {
namespace {

// One AP at the origin, one at (300, 0) — far enough that users near the
// origin are out of its 200 m radio range. 802.11a staircase (Table 1):
// 54 Mbps within 35 m, ..., 6 Mbps within 200 m.
NetworkState two_ap_state(std::vector<wlan::Point> users, std::vector<int> sessions,
                          std::vector<double> rates = {1.0, 1.0}) {
  const std::vector<wlan::Point> aps = {{0, 0}, {300, 0}};
  const auto sc = wlan::Scenario::from_geometry(aps, std::move(users),
                                                std::move(sessions), std::move(rates),
                                                wlan::RateTable::ieee80211a());
  return NetworkState::from_scenario(sc);
}

TEST(NetworkState, SeedsFromScenarioAllPresentSubscribed) {
  const auto st = two_ap_state({{10, 0}, {40, 0}}, {0, 1});
  EXPECT_EQ(st.n_aps(), 2);
  EXPECT_EQ(st.n_slots(), 2);
  EXPECT_EQ(st.n_active(), 2);
  EXPECT_TRUE(st.slot(0).wants_service());
  EXPECT_DOUBLE_EQ(st.link_rate(0, 0), 54.0);  // 10 m
  EXPECT_DOUBLE_EQ(st.link_rate(0, 1), 48.0);  // 40 m
  EXPECT_DOUBLE_EQ(st.link_rate(1, 0), 0.0);   // 290 m: out of range
}

TEST(NetworkState, ApplyJoinExtendsSlotSpaceAndValidates) {
  auto st = two_ap_state({{10, 0}}, {0});
  st.apply(Event::join(1, {20, 0}, 1));
  EXPECT_EQ(st.n_slots(), 2);
  EXPECT_TRUE(st.slot(1).wants_service());
  EXPECT_EQ(st.slot(1).session, 1);

  EXPECT_THROW(st.apply(Event::join(3, {0, 0}, 0)), std::invalid_argument)
      << "slot id gaps are rejected";
  EXPECT_THROW(st.apply(Event::join(0, {0, 0}, 0)), std::invalid_argument)
      << "double join";
  EXPECT_THROW(st.apply(Event::join(2, {0, 0}, 9)), std::invalid_argument)
      << "unknown session";
}

TEST(NetworkState, ApplyRejectsNonFinitePositionsAndRates) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  auto st = two_ap_state({{10, 0}}, {0});
  EXPECT_THROW(st.apply(Event::join(1, {nan, 0}, 0)), std::invalid_argument);
  EXPECT_THROW(st.apply(Event::join(1, {0, inf}, 0)), std::invalid_argument);
  EXPECT_THROW(st.apply(Event::move(0, {nan, nan})), std::invalid_argument);
  EXPECT_THROW(st.apply(Event::move(0, {-inf, 0})), std::invalid_argument);
  EXPECT_THROW(st.apply(Event::rate_change(0, inf)), std::invalid_argument);
  EXPECT_THROW(st.apply(Event::rate_change(0, nan)), std::invalid_argument);
  // Nothing above may have mutated the state.
  EXPECT_EQ(st.n_slots(), 1);
  EXPECT_DOUBLE_EQ(st.slot(0).pos.x, 10.0);
  EXPECT_DOUBLE_EQ(st.session_rate(0), 1.0);
}

TEST(NetworkState, ApplyLifecycleAndErrors) {
  auto st = two_ap_state({{10, 0}, {40, 0}}, {0, 1});
  st.apply(Event::unsubscribe(0));
  EXPECT_TRUE(st.slot(0).present);
  EXPECT_FALSE(st.slot(0).wants_service());
  st.apply(Event::subscribe(0, 1));  // re-subscribe zaps to session 1
  EXPECT_EQ(st.slot(0).session, 1);
  st.apply(Event::leave(0));
  EXPECT_FALSE(st.slot(0).present);
  EXPECT_THROW(st.apply(Event::move(0, {1, 1})), std::invalid_argument);
  EXPECT_THROW(st.apply(Event::subscribe(0, 0)), std::invalid_argument);
  EXPECT_THROW(st.apply(Event::leave(0)), std::invalid_argument);
  EXPECT_THROW(st.apply(Event::rate_change(0, -1.0)), std::invalid_argument);
  st.apply(Event::rate_change(0, 2.5));
  EXPECT_DOUBLE_EQ(st.session_rate(0), 2.5);
}

TEST(NetworkState, ToScenarioProjectsOnlyServiceWantingSlots) {
  auto st = two_ap_state({{10, 0}, {40, 0}, {60, 0}}, {0, 1, 0});
  st.apply(Event::leave(1));
  std::vector<int> row_slot;
  const auto sc = st.to_scenario(&row_slot);
  EXPECT_EQ(sc.n_users(), 2);
  EXPECT_EQ(row_slot, (std::vector<int>{0, 2}));
  EXPECT_EQ(sc.user_session(1), 0);
}

TEST(SlotAssociation, RoundTripsThroughCompactRows) {
  const std::vector<int> row_slot = {0, 2, 5};
  wlan::Association compact{{3, wlan::kNoAp, 1}};
  const auto slots = slot_association(compact, row_slot, 6);
  EXPECT_EQ(slots, (std::vector<int>{3, wlan::kNoAp, wlan::kNoAp, wlan::kNoAp,
                                     wlan::kNoAp, 1}));
  EXPECT_EQ(compact_association(slots, row_slot), compact);
}

TEST(DirtyRegion, MoveAcrossRateStepIsDirty) {
  auto before = two_ap_state({{10, 0}, {40, 0}}, {0, 1});
  auto after = before;
  after.apply(Event::move(0, {100, 0}));  // 54 -> 18 Mbps on AP 0
  const auto dirty = compute_dirty_slots(before, after, {0, 0});
  EXPECT_EQ(dirty, (std::vector<int>{0}));
}

TEST(DirtyRegion, PureMoveInsideRateStepIsClean) {
  auto before = two_ap_state({{10, 0}, {40, 0}}, {0, 1});
  auto after = before;
  after.apply(Event::move(0, {12, 0}));  // still 54 Mbps to AP 0, 0 to AP 1
  EXPECT_TRUE(compute_dirty_slots(before, after, {0, 0}).empty())
      << "a walk that changes no link rate must not manufacture signaling";
}

TEST(DirtyRegion, UnassociatedServiceWantingSlotIsDirty) {
  const auto st = two_ap_state({{10, 0}, {40, 0}}, {0, 1});
  const auto dirty = compute_dirty_slots(st, st, {0, wlan::kNoAp});
  EXPECT_EQ(dirty, (std::vector<int>{1}));
}

TEST(DirtyRegion, RateChangeDirtiesAllSubscribersOfTheSession) {
  auto before = two_ap_state({{10, 0}, {40, 0}, {60, 0}}, {0, 1, 0});
  auto after = before;
  after.apply(Event::rate_change(0, 3.0));
  const auto dirty = compute_dirty_slots(before, after, {0, 0, 0});
  EXPECT_EQ(dirty, (std::vector<int>{0, 2}));
}

TEST(DirtyRegion, BottleneckDepartureDirtiesGroupSurvivors) {
  // u0 (30 m, 54 Mbps) and u1 (100 m, 18 Mbps) share AP 0 / session 0; u2
  // watches session 1 on the same AP. When the bottleneck u1 leaves, the
  // group's tx rate jumps 18 -> 54, so u0 must re-decide; u2's group is
  // untouched.
  auto before = two_ap_state({{30, 0}, {100, 0}, {30, 50}}, {0, 0, 1});
  auto after = before;
  after.apply(Event::leave(1));
  const auto dirty = compute_dirty_slots(before, after, {0, 0, 0});
  EXPECT_EQ(dirty, (std::vector<int>{0}));
}

TEST(DirtyRegion, NonBottleneckDepartureLeavesGroupClean) {
  auto before = two_ap_state({{30, 0}, {100, 0}, {30, 50}}, {0, 0, 1});
  auto after = before;
  after.apply(Event::leave(0));  // u0 was not the group bottleneck
  EXPECT_TRUE(compute_dirty_slots(before, after, {0, 0, 0}).empty());
}

}  // namespace
}  // namespace wmcast::ctrl
