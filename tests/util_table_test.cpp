#include "wmcast/util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace wmcast::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  // Header, separator, two rows.
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"h"});
  t.add_row({"v"});
  const std::string path = testing::TempDir() + "/wmcast_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "h");
  std::getline(f, line);
  EXPECT_EQ(line, "v");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFailsGracefully) {
  Table t({"h"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir/foo.csv"));
}

TEST(Table, RowsCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0);
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1);
}

}  // namespace
}  // namespace wmcast::util
