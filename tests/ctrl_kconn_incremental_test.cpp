// Incremental k-connectivity overlay (DESIGN.md §16): the persistent kconn
// engine's dirty-region repair must be bitwise-indistinguishable from a cold
// augment_to_k + compute_multi_loads re-derivation after every epoch, at any
// thread count — and quiescent-equivalent epochs (rejected admissions, no-op
// rate changes, join+leave coalescing) must keep the cached overlay untouched.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "wmcast/assoc/kconn.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::ctrl {
namespace {

wlan::Scenario churn_scenario(uint64_t seed) {
  wlan::GeneratorParams gp;
  gp.n_aps = 30;
  gp.n_users = 220;
  gp.n_sessions = 4;
  gp.area_side_m = 700.0;
  util::Rng rng(seed);
  return wlan::generate_scenario(gp, rng);
}

EventTrace churn_trace(const NetworkState& initial, int epochs, uint64_t seed) {
  TraceParams tp;
  tp.epochs = epochs;
  tp.move_fraction = 0.15;
  tp.walk_sigma_m = 30.0;
  tp.zap_fraction = 0.05;
  tp.leave_fraction = 0.03;
  tp.join_fraction = 0.05;
  tp.rate_change_prob = 0.1;
  util::Rng rng(seed);
  return generate_churn_trace(initial, tp, rng);
}

// Bitwise cold reference: re-derive the overlay and its load report from the
// controller's own committed base association (mirrors chaos/oracles.cpp).
void expect_matches_cold(const AssociationController& c,
                         const ControllerConfig& cfg, int epoch) {
  const wlan::Scenario& sc = c.scenario();
  assoc::KconnParams kp;
  kp.k = cfg.k;
  kp.multi_rate = cfg.multi_rate;
  kp.enforce_budget = cfg.enforce_budget;
  wlan::Association base = wlan::Association::none(sc.n_users());
  for (int r = 0; r < sc.n_users(); ++r) {
    base.user_ap[static_cast<size_t>(r)] =
        c.slot_ap()[static_cast<size_t>(c.row_slot()[static_cast<size_t>(r)])];
  }
  const auto cold = assoc::augment_to_k(sc, base, c.loads(), kp);
  ASSERT_TRUE(cold == c.multi_assoc())
      << "epoch " << epoch << ": incremental served-sets diverge from cold";
  const auto loads = wlan::compute_multi_loads(sc, cold, kp.multi_rate);
  const auto& m = c.multi_loads();
  ASSERT_EQ(loads.tx_rate, m.tx_rate) << "epoch " << epoch;
  ASSERT_EQ(loads.ap_load, m.ap_load) << "epoch " << epoch;
  ASSERT_EQ(loads.effective_rate, m.effective_rate) << "epoch " << epoch;
  ASSERT_EQ(loads.total_load, m.total_load) << "epoch " << epoch;
  ASSERT_EQ(loads.max_load, m.max_load) << "epoch " << epoch;
  ASSERT_EQ(loads.mean_effective_rate, m.mean_effective_rate) << "epoch " << epoch;
  ASSERT_EQ(loads.satisfied_users, m.satisfied_users) << "epoch " << epoch;
  ASSERT_EQ(loads.multi_served_users, m.multi_served_users) << "epoch " << epoch;
  ASSERT_EQ(loads.budget_violations, m.budget_violations) << "epoch " << epoch;
}

void run_sweep(int k, int threads) {
  const auto sc = churn_scenario(401);
  const auto initial = NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial, 50, 402);

  ControllerConfig cfg;
  cfg.k = k;
  cfg.threads = threads;
  cfg.full_refresh_epochs = 1;  // fresh base every epoch: maximal overlay churn
  AssociationController c(sc, cfg);
  expect_matches_cold(c, cfg, 0);
  int repaired = 0;
  for (size_t ep = 0; ep < trace.epochs.size(); ++ep) {
    c.submit(trace.epochs[ep]);
    const auto rep = c.drain();
    repaired += rep.kconn_repaired_users;
    expect_matches_cold(c, cfg, static_cast<int>(ep) + 1);
  }
  // The sweep must actually exercise the incremental path, not degrade into
  // 50 cold rebuilds that trivially match the reference.
  EXPECT_GT(repaired, 0) << "no epoch took the dirty-region repair path";
}

TEST(KconnIncremental, ChurnSweepMatchesColdK2Serial) { run_sweep(2, 1); }
TEST(KconnIncremental, ChurnSweepMatchesColdK2Threads4) { run_sweep(2, 4); }
TEST(KconnIncremental, ChurnSweepMatchesColdK3Serial) { run_sweep(3, 1); }
TEST(KconnIncremental, ChurnSweepMatchesColdK3Threads4) { run_sweep(3, 4); }

TEST(KconnIncremental, SerialAndParallelOverlaysAreBitwiseEqual) {
  const auto sc = churn_scenario(77);
  const auto initial = NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial, 50, 78);

  ControllerConfig cfg;
  cfg.k = 2;
  cfg.threads = 1;
  ControllerConfig cfg4 = cfg;
  cfg4.threads = 4;
  AssociationController c1(sc, cfg);
  AssociationController c4(sc, cfg4);
  for (const auto& epoch : trace.epochs) {
    c1.submit(epoch);
    c4.submit(epoch);
    const auto r1 = c1.drain();
    const auto r4 = c4.drain();
    ASSERT_TRUE(c1.multi_assoc() == c4.multi_assoc());
    ASSERT_EQ(c1.multi_loads().effective_rate, c4.multi_loads().effective_rate);
    // The dirty-region accounting is a pure function of the deltas, so the
    // per-epoch counters must not depend on the pool schedule either.
    ASSERT_EQ(r1.kconn_repaired_users, r4.kconn_repaired_users);
    ASSERT_EQ(r1.kconn_carried_users, r4.kconn_carried_users);
    ASSERT_EQ(r1.kconn_rebuild, r4.kconn_rebuild);
  }
}

// --- Quiescent-equivalent epochs keep the cached overlay -------------------

wlan::Scenario two_ap_scenario() {
  const std::vector<wlan::Point> aps = {{0, 0}, {150, 0}};
  return wlan::Scenario::from_geometry(aps, {{10, 0}, {120, 0}, {80, 0}},
                                       {0, 1, 0}, {1.0, 1.0},
                                       wlan::RateTable::ieee80211a(), 0.9);
}

TEST(KconnIncremental, RejectedAdmissionKeepsCachedOverlay) {
  ControllerConfig cfg;
  cfg.k = 2;
  cfg.admission_hook = [](const JoinRequest&, const std::vector<double>&,
                          const NetworkState&) { return false; };
  AssociationController c(two_ap_scenario(), cfg);
  const uint64_t repairs = c.telemetry().engine_kconn_repairs.value();
  const uint64_t rebuilds = c.telemetry().engine_kconn_rebuilds.value();
  const auto overlay = c.multi_assoc();

  c.submit({Event::join(3, {60, 0}, 0)});
  const auto rep = c.drain();
  EXPECT_EQ(rep.rejected_joins, 1);
  EXPECT_EQ(rep.kconn_repaired_users, 0);
  EXPECT_FALSE(rep.kconn_rebuild);
  EXPECT_EQ(c.telemetry().engine_kconn_repairs.value(), repairs);
  EXPECT_EQ(c.telemetry().engine_kconn_rebuilds.value(), rebuilds);
  EXPECT_TRUE(c.multi_assoc() == overlay);
}

TEST(KconnIncremental, NoOpRateChangeKeepsCachedOverlay) {
  ControllerConfig cfg;
  cfg.k = 2;
  AssociationController c(two_ap_scenario(), cfg);
  const uint64_t repairs = c.telemetry().engine_kconn_repairs.value();
  const uint64_t rebuilds = c.telemetry().engine_kconn_rebuilds.value();

  c.submit({Event::rate_change(0, c.state().session_rate(0))});
  const auto rep = c.drain();
  EXPECT_EQ(rep.events_applied, 1);
  EXPECT_EQ(rep.kconn_repaired_users, 0);
  EXPECT_FALSE(rep.kconn_rebuild);
  EXPECT_EQ(c.telemetry().engine_kconn_repairs.value(), repairs);
  EXPECT_EQ(c.telemetry().engine_kconn_rebuilds.value(), rebuilds);
}

TEST(KconnIncremental, JoinPlusLeaveCoalescedKeepsCachedOverlay) {
  ControllerConfig cfg;
  cfg.k = 2;
  AssociationController c(two_ap_scenario(), cfg);
  const uint64_t repairs = c.telemetry().engine_kconn_repairs.value();
  const uint64_t rebuilds = c.telemetry().engine_kconn_rebuilds.value();
  const auto overlay = c.multi_assoc();

  c.submit({Event::join(3, {60, 0}, 0), Event::leave(3)});
  const auto rep = c.drain();
  EXPECT_EQ(rep.kconn_repaired_users, 0);
  EXPECT_FALSE(rep.kconn_rebuild);
  EXPECT_EQ(c.telemetry().engine_kconn_repairs.value(), repairs);
  EXPECT_EQ(c.telemetry().engine_kconn_rebuilds.value(), rebuilds);
  EXPECT_TRUE(c.multi_assoc() == overlay);
}

// A genuinely dirty epoch must NOT be treated as quiescent: the narrow
// predicate is "no dirt", not "no events".
TEST(KconnIncremental, RealChurnStillRepairs) {
  ControllerConfig cfg;
  cfg.k = 2;
  AssociationController c(two_ap_scenario(), cfg);
  c.submit({Event::move(2, {130, 0})});
  const auto rep = c.drain();
  EXPECT_GT(rep.kconn_repaired_users + (rep.kconn_rebuild ? 1 : 0), 0)
      << "a visible move must re-derive at least the moved user's served-set";
  expect_matches_cold(c, cfg, 1);
}

}  // namespace
}  // namespace wmcast::ctrl
