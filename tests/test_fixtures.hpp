// Shared fixtures: the paper's worked-example WLANs.
#pragma once

#include "wmcast/wlan/scenario.hpp"

namespace wmcast::test {

/// The Fig. 1 WLAN: APs a1, a2; users u1..u5.
///   a1 reaches u1..u5 at rates 3, 6, 4, 4, 4 Mbps;
///   a2 reaches u3, u4, u5 at rates 5, 5, 3 Mbps.
/// u1 and u3 request session s1; u2, u4, u5 request session s2.
/// Per-AP multicast budget: 1 unit.
/// `session_rate` is the stream rate of both sessions (3 Mbps for the MNU
/// walkthrough, 1 Mbps for the BLA/MLA walkthroughs).
inline wlan::Scenario fig1_scenario(double session_rate) {
  const std::vector<std::vector<double>> link = {
      {3, 6, 4, 4, 4},  // a1
      {0, 0, 5, 5, 3},  // a2
  };
  const std::vector<int> user_session = {0, 1, 0, 1, 1};
  const std::vector<double> session_rates = {session_rate, session_rate};
  return wlan::Scenario::from_link_rates(link, user_session, session_rates,
                                         /*load_budget=*/1.0);
}

/// The Fig. 4 WLAN (non-convergence example): APs a1, a2; users u1..u4.
///   a1 reaches u1, u2, u3 at rates 5, 4, 4;
///   a2 reaches u2, u3, u4 at rates 4, 4, 5.
/// All users request the single session s1 at 1 Mbps.
/// The oscillating starting point is u1,u2 -> a1 and u3,u4 -> a2.
inline wlan::Scenario fig4_scenario() {
  const std::vector<std::vector<double>> link = {
      {5, 4, 4, 0},  // a1
      {0, 4, 4, 5},  // a2
  };
  const std::vector<int> user_session = {0, 0, 0, 0};
  const std::vector<double> session_rates = {1.0};
  return wlan::Scenario::from_link_rates(link, user_session, session_rates,
                                         /*load_budget=*/1.0);
}

}  // namespace wmcast::test
