#include "wmcast/assoc/policy.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace wmcast::assoc {
namespace {

using Members = std::vector<std::vector<int>>;

TEST(Policy, UnassociatedUserJoinsBestTotalLoadAp) {
  // Fig. 1, 1 Mbps, distributed MLA walkthrough step for u3: with u1, u2 on
  // a1, u3 joining a1 gives neighbor loads (1/2, 0) sum 1/2; joining a2 gives
  // (1/2, 1/5) sum 7/10 -> picks a1.
  const auto sc = test::fig1_scenario(1.0);
  const Members members = {{0, 1}, {}};
  PolicyParams p;
  p.objective = Objective::kTotalLoad;
  EXPECT_EQ(choose_best_ap(sc, 2, members, wlan::kNoAp, p), 0);
}

TEST(Policy, LoadVectorPrefersBalancedOutcome) {
  // Fig. 1, 1 Mbps, distributed BLA walkthrough step for u4: joining a1 gives
  // sorted vector (7/12, 0); joining a2 gives (1/2, 1/5) -> picks a2.
  const auto sc = test::fig1_scenario(1.0);
  const Members members = {{0, 1, 2}, {}};
  PolicyParams p;
  p.objective = Objective::kLoadVector;
  EXPECT_EQ(choose_best_ap(sc, 3, members, wlan::kNoAp, p), 1);
}

TEST(Policy, TotalLoadPrefersJoiningExistingMulticast) {
  // u3 with u1 already on a1 (s1 at rate 3): joining a1 adds nothing
  // (min(3,4)=3 unchanged); joining a2 adds 1/5. Total-load picks a1.
  const auto sc = test::fig1_scenario(1.0);
  const Members members = {{0}, {}};
  PolicyParams p;
  p.objective = Objective::kTotalLoad;
  EXPECT_EQ(choose_best_ap(sc, 2, members, wlan::kNoAp, p), 0);
}

TEST(Policy, BudgetExcludesInfeasibleAps) {
  // MNU walkthrough: u1 on a1 (s1 at 3 Mbps stream/3 Mbps rate -> load 1);
  // u2 joining a1 would need +0.5 -> 1.5 > budget 1 -> no feasible AP.
  const auto sc = test::fig1_scenario(3.0);
  const Members members = {{0}, {}};
  PolicyParams p;
  p.objective = Objective::kTotalLoad;
  EXPECT_EQ(choose_best_ap(sc, 1, members, wlan::kNoAp, p), wlan::kNoAp);
}

TEST(Policy, BudgetIgnoredWhenDisabled) {
  const auto sc = test::fig1_scenario(3.0);
  const Members members = {{0}, {}};
  PolicyParams p;
  p.objective = Objective::kTotalLoad;
  p.enforce_budget = false;
  EXPECT_EQ(choose_best_ap(sc, 1, members, wlan::kNoAp, p), 0);
}

TEST(Policy, AssociatedUserOnlyMovesOnStrictImprovement) {
  // Fig. 4 sequential step: after u2 moved to a2, u3 sees stay-score == move
  // score is worse, so it stays (see Fig. 4 analysis in the paper).
  const auto sc = test::fig4_scenario();
  // u1 on a1; u2, u3, u4 on a2.
  const Members members = {{0}, {1, 2, 3}};
  PolicyParams p;
  p.objective = Objective::kTotalLoad;
  // u3 (index 2): stay total = 1/5 + 1/4 = 0.45; move to a1: 1/4 + 1/4 = 0.5.
  EXPECT_EQ(choose_best_ap(sc, 2, members, 1, p), 1);
}

TEST(Policy, SimultaneousStyleImprovementDetected) {
  // Fig. 4 from the oscillating start: u2 sees moving to a2 improves
  // 1/2 -> 9/20, so it wants to move (and symmetric u3).
  const auto sc = test::fig4_scenario();
  const Members members = {{0, 1}, {2, 3}};
  PolicyParams p;
  p.objective = Objective::kTotalLoad;
  EXPECT_EQ(choose_best_ap(sc, 1, members, 0, p), 1);
  EXPECT_EQ(choose_best_ap(sc, 2, members, 1, p), 0);
}

TEST(Policy, TieBreaksByStrongestSignal) {
  // Two APs with identical situations; u0 hears a1 at 5 and a2 at 4 -> the
  // stronger-signal a1 wins the tie.
  const std::vector<std::vector<double>> link = {{5}, {4}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0}, {1.0}, 1.0);
  const Members members = {{}, {}};
  PolicyParams p;
  p.objective = Objective::kTotalLoad;
  // Joining a1 costs 1/5, joining a2 costs 1/4: a1 also wins on load; make
  // them symmetric instead.
  const std::vector<std::vector<double>> link_eq = {{4}, {4}};
  const auto sc_eq = wlan::Scenario::from_link_rates(link_eq, {0}, {1.0}, 1.0);
  EXPECT_EQ(choose_best_ap(sc_eq, 0, members, wlan::kNoAp, p), 0);
  (void)sc;
}

TEST(Policy, UserWithNoNeighborsStaysOut) {
  const std::vector<std::vector<double>> link = {{0.0}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0}, {1.0}, 1.0);
  const Members members = {{}};
  PolicyParams p;
  EXPECT_EQ(choose_best_ap(sc, 0, members, wlan::kNoAp, p), wlan::kNoAp);
}

TEST(Policy, LoadVectorConsolidatesSharedSessions) {
  // BLA with one shared session: u0 on a1, u1 on a2, identical rates. Moving
  // u0 to a2 empties a1 while a2's multicast already runs: the sorted vector
  // drops from (1/4, 1/4) to (1/4, 0) -> the move is a strict improvement.
  const std::vector<std::vector<double>> link = {{4, 4}, {4, 4}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 0}, {1.0}, 1.0);
  const Members members = {{0}, {1}};
  PolicyParams p;
  p.objective = Objective::kLoadVector;
  EXPECT_EQ(choose_best_ap(sc, 0, members, 0, p), 1);
}

TEST(Policy, LoadVectorStrictImprovementOnly) {
  // BLA with distinct sessions: consolidating would stack both sessions on
  // one AP, raising the max from 1/4 to 1/2 -> the user stays put.
  const std::vector<std::vector<double>> link = {{4, 4}, {4, 4}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 1}, {1.0, 1.0}, 1.0);
  const Members members = {{0}, {1}};
  PolicyParams p;
  p.objective = Objective::kLoadVector;
  EXPECT_EQ(choose_best_ap(sc, 0, members, 0, p), 0);
  EXPECT_EQ(choose_best_ap(sc, 1, members, 1, p), 1);
}

}  // namespace
}  // namespace wmcast::assoc
