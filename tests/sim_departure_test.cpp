// User departures in the protocol simulator (viewers switching off).
#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/sim/network.hpp"

namespace wmcast::sim {
namespace {

SimConfig cfg() {
  SimConfig c;
  c.latency_s = 0.002;
  c.scan_period_s = 1.0;
  c.phase_jitter_s = 1.0;
  c.quiet_period_s = 4.0;
  c.max_time_s = 60.0;
  return c;
}

TEST(Departure, UserLeavesAndStaysOut) {
  const auto sc = test::fig1_scenario(1.0);
  ProtocolSim sim(sc, cfg(), util::Rng(1));
  sim.deactivate_user_at(2, 10.0);  // u3 switches off at t=10
  const auto out = sim.run();
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.assoc.ap_of(2), wlan::kNoAp);
  // Everyone else stays served.
  for (const int u : {0, 1, 3, 4}) {
    EXPECT_NE(out.assoc.ap_of(u), wlan::kNoAp) << "user " << u;
  }
  // The departure shows in the trace as a leave to kNoAp after t=10.
  bool saw_departure = false;
  for (const auto& t : out.trace) {
    if (t.user == 2 && t.to_ap == wlan::kNoAp) {
      saw_departure = true;
      EXPECT_GE(t.time_s, 10.0);
    }
  }
  EXPECT_TRUE(saw_departure);
}

TEST(Departure, FreedCapacityGetsReusedFeasibly) {
  // Tight budget (3 Mbps streams): after u1 departs, the remaining users
  // re-settle into a feasible configuration serving at least 3 of them
  // (the offline optimum without u1 serves all 4).
  const auto sc = test::fig1_scenario(3.0);
  ProtocolSim sim(sc, cfg(), util::Rng(2));
  sim.deactivate_user_at(0, 15.0);  // u1 leaves mid-run
  const auto out = sim.run();
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.assoc.ap_of(0), wlan::kNoAp);
  const auto rep = wlan::compute_loads(sc, out.assoc);
  EXPECT_TRUE(rep.within_budget());
  EXPECT_GE(rep.satisfied_users, 3);
}

TEST(Departure, DepartureBeforeActivationIsHarmless) {
  const auto sc = test::fig1_scenario(1.0);
  ProtocolSim sim(sc, cfg(), util::Rng(3));
  sim.activate_user_at(4, 20.0);
  sim.deactivate_user_at(4, 5.0);  // leaves before it would ever join
  const auto out = sim.run();
  EXPECT_EQ(out.assoc.ap_of(4), wlan::kNoAp);
  EXPECT_TRUE(out.converged);
}

TEST(Departure, GuardsMisuse) {
  const auto sc = test::fig1_scenario(1.0);
  ProtocolSim sim(sc, cfg(), util::Rng(4));
  EXPECT_THROW(sim.deactivate_user_at(99, 1.0), std::invalid_argument);
  EXPECT_THROW(sim.deactivate_user_at(0, -1.0), std::invalid_argument);
  sim.run();
  EXPECT_THROW(sim.deactivate_user_at(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::sim
