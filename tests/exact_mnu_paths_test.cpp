// The exact MNU solver has two internal search strategies (groupwise
// configuration enumeration, and a set-wise include/exclude fallback for
// groups too rich to enumerate). Both must agree with brute force and with
// each other.
#include <gtest/gtest.h>

#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::exact {
namespace {

using setcover::CandidateSet;
using setcover::SetSystem;

/// A single group with `n` disjoint unit-cost singleton sets: 2^n feasible
/// configurations, which blows past the enumeration cap for n >= ~16 and
/// forces the set-wise fallback.
SetSystem many_disjoint_sets(int n, double cost) {
  std::vector<CandidateSet> sets;
  for (int j = 0; j < n; ++j) {
    CandidateSet s;
    s.members = util::DynBitset(n);
    s.members.set(j);
    s.cost = cost;
    s.group = s.ap = 0;
    s.session = 0;
    s.tx_rate = 1.0;
    sets.push_back(std::move(s));
  }
  return SetSystem(n, 1, std::move(sets));
}

TEST(ExactMnuPaths, FallbackPathSolvesTheKnapsackCase) {
  // 30 singleton sets of cost 1, budget 7.5: optimal coverage = 7.
  const auto sys = many_disjoint_sets(30, 1.0);
  const auto res = exact_max_coverage_uniform(sys, 7.5);
  EXPECT_EQ(res.status, BbStatus::kOptimal);
  EXPECT_EQ(res.covered, 7);
}

TEST(ExactMnuPaths, GroupwisePathSolvesTheSameShapeWhenSmall) {
  // 8 singleton sets: 2^8 configs, comfortably enumerable.
  const auto sys = many_disjoint_sets(8, 1.0);
  const auto res = exact_max_coverage_uniform(sys, 2.5);
  EXPECT_EQ(res.status, BbStatus::kOptimal);
  EXPECT_EQ(res.covered, 2);
}

TEST(ExactMnuPaths, DistinctPerGroupBudgets) {
  // Two groups: group 0 can afford its big set, group 1 cannot.
  std::vector<CandidateSet> sets;
  {
    CandidateSet a;
    a.members = util::DynBitset(4);
    a.members.set(0);
    a.members.set(1);
    a.cost = 0.5;
    a.group = a.ap = 0;
    CandidateSet b;
    b.members = util::DynBitset(4);
    b.members.set(2);
    b.members.set(3);
    b.cost = 0.5;
    b.group = b.ap = 1;
    sets = {a, b};
  }
  const SetSystem sys(4, 2, std::move(sets));
  const std::vector<double> budgets = {0.6, 0.4};
  const auto res = exact_max_coverage(sys, budgets);
  EXPECT_EQ(res.status, BbStatus::kOptimal);
  EXPECT_EQ(res.covered, 2);  // only group 0's set fits
  for (const int j : res.chosen) EXPECT_EQ(sys.set(j).group, 0);
}

TEST(ExactMnuPaths, PathsAgreeOnWlanInstances) {
  // On WLAN instances both the generous budget (rich groups, possibly
  // fallback) and the tight budget (groupwise) must be internally optimal;
  // the tight answer can never exceed the generous one.
  util::Rng rng(197);
  for (int trial = 0; trial < 4; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 6;
    p.n_users = 18;
    p.n_sessions = 3;
    p.area_side_m = 350.0;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    const auto sys = setcover::build_set_system(sc);
    const auto tight = exact_max_coverage_uniform(sys, 0.05);
    const auto generous = exact_max_coverage_uniform(sys, 0.9);
    ASSERT_EQ(tight.status, BbStatus::kOptimal);
    ASSERT_EQ(generous.status, BbStatus::kOptimal);
    EXPECT_LE(tight.covered, generous.covered);
    EXPECT_EQ(generous.covered, sys.coverable().count());  // 0.9 serves all
  }
}

TEST(ExactMnuPaths, ChosenSetsReproduceTheCoverCount) {
  const auto sys = many_disjoint_sets(12, 1.0);
  const auto res = exact_max_coverage_uniform(sys, 4.0);
  ASSERT_EQ(res.status, BbStatus::kOptimal);
  util::DynBitset covered(sys.n_elements());
  double cost = 0.0;
  for (const int j : res.chosen) {
    covered.or_assign(sys.set(j).members);
    cost += sys.set(j).cost;
  }
  EXPECT_EQ(covered.count(), res.covered);
  EXPECT_LE(cost, 4.0 + 1e-9);
}

TEST(ExactMnuPaths, ZeroBudgetCoversNothing) {
  const auto sys = many_disjoint_sets(5, 1.0);
  const auto res = exact_max_coverage_uniform(sys, 1e-6);
  EXPECT_EQ(res.covered, 0);
  EXPECT_TRUE(res.chosen.empty());
}

}  // namespace
}  // namespace wmcast::exact
