// Tests for the generator extensions (Zipf session popularity, hotspot
// clustering) added beyond the paper's uniform setting.
#include <gtest/gtest.h>

#include <algorithm>

#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::wlan {
namespace {

TEST(GeneratorExt, ZipfSkewsSessionPopularity) {
  GeneratorParams p;
  p.n_aps = 10;
  p.n_users = 2000;
  p.n_sessions = 8;
  p.zipf_exponent = 1.2;
  util::Rng rng(51);
  const auto sc = generate_scenario(p, rng);

  std::vector<int> counts(8, 0);
  for (int u = 0; u < sc.n_users(); ++u) ++counts[static_cast<size_t>(sc.user_session(u))];
  // Session 0 clearly dominates; counts roughly non-increasing overall.
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], 2 * counts[7]);
  // Zipf(1.2) over 8 sessions puts ~37% on session 0.
  EXPECT_NEAR(counts[0] / 2000.0, 0.37, 0.08);
}

TEST(GeneratorExt, ZipfZeroIsUniform) {
  GeneratorParams p;
  p.n_aps = 10;
  p.n_users = 4000;
  p.n_sessions = 4;
  util::Rng rng(52);
  const auto sc = generate_scenario(p, rng);
  std::vector<int> counts(4, 0);
  for (int u = 0; u < sc.n_users(); ++u) ++counts[static_cast<size_t>(sc.user_session(u))];
  for (const int c : counts) EXPECT_NEAR(c, 1000, 120);
}

TEST(GeneratorExt, HotspotsClusterUsers) {
  GeneratorParams base;
  base.n_aps = 10;
  base.n_users = 1000;
  base.area_side_m = 1000.0;

  auto clustered = base;
  clustered.hotspot_fraction = 1.0;
  clustered.n_hotspots = 2;
  clustered.hotspot_sigma_m = 30.0;

  util::Rng r1(53);
  util::Rng r2(53);
  const auto uniform_sc = generate_scenario(base, r1);
  const auto clustered_sc = generate_scenario(clustered, r2);

  // Mean nearest-neighbor distance between users drops sharply when all of
  // them pack into two sigma-30 blobs.
  auto mean_nn = [](const Scenario& sc) {
    double total = 0.0;
    const auto& pos = sc.user_positions();
    const int n = std::min<int>(sc.n_users(), 200);  // sample for speed
    for (int i = 0; i < n; ++i) {
      double best = 1e18;
      for (int j = 0; j < sc.n_users(); ++j) {
        if (i == j) continue;
        best = std::min(best, distance(pos[static_cast<size_t>(i)], pos[static_cast<size_t>(j)]));
      }
      total += best;
    }
    return total / n;
  };
  EXPECT_LT(mean_nn(clustered_sc), 0.5 * mean_nn(uniform_sc));
}

TEST(GeneratorExt, HotspotPositionsStayInArea) {
  GeneratorParams p;
  p.n_aps = 5;
  p.n_users = 500;
  p.area_side_m = 200.0;
  p.hotspot_fraction = 1.0;
  p.hotspot_sigma_m = 150.0;  // big sigma: clamping must kick in
  util::Rng rng(54);
  const auto sc = generate_scenario(p, rng);
  for (const auto& pos : sc.user_positions()) {
    EXPECT_GE(pos.x, 0.0);
    EXPECT_LE(pos.x, 200.0);
    EXPECT_GE(pos.y, 0.0);
    EXPECT_LE(pos.y, 200.0);
  }
}

TEST(GeneratorExt, SessionRateSpreadDrawsDistinctRates) {
  GeneratorParams p;
  p.n_aps = 5;
  p.n_users = 10;
  p.n_sessions = 6;
  p.session_rate_mbps = 1.0;
  p.session_rate_spread = 4.0;
  util::Rng rng(56);
  const auto sc = generate_scenario(p, rng);
  double mn = 1e18;
  double mx = 0.0;
  for (int s = 0; s < sc.n_sessions(); ++s) {
    mn = std::min(mn, sc.session_rate(s));
    mx = std::max(mx, sc.session_rate(s));
    EXPECT_GE(sc.session_rate(s), 0.25 - 1e-12);
    EXPECT_LE(sc.session_rate(s), 4.0 + 1e-12);
  }
  EXPECT_GT(mx, mn);  // rates actually vary
}

TEST(GeneratorExt, SpreadOneIsHomogeneous) {
  GeneratorParams p;
  p.n_aps = 5;
  p.n_users = 10;
  p.n_sessions = 4;
  util::Rng rng(57);
  const auto sc = generate_scenario(p, rng);
  for (int s = 0; s < sc.n_sessions(); ++s) {
    EXPECT_DOUBLE_EQ(sc.session_rate(s), 1.0);
  }
}

TEST(GeneratorExt, InvalidParamsRejected) {
  util::Rng rng(55);
  GeneratorParams p;
  p.zipf_exponent = -1.0;
  EXPECT_THROW(generate_scenario(p, rng), std::invalid_argument);
  p = GeneratorParams{};
  p.hotspot_fraction = 1.5;
  EXPECT_THROW(generate_scenario(p, rng), std::invalid_argument);
  p = GeneratorParams{};
  p.n_hotspots = 0;
  p.hotspot_fraction = 0.5;
  EXPECT_THROW(generate_scenario(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::wlan
