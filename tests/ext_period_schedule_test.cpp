#include "wmcast/ext/period_schedule.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::ext {
namespace {

TEST(WrappedOverlap, LinearCases) {
  EXPECT_DOUBLE_EQ(wrapped_overlap(0.0, 0.3, 0.3, 0.3), 0.0);   // adjacent
  EXPECT_DOUBLE_EQ(wrapped_overlap(0.0, 0.5, 0.25, 0.5), 0.25); // partial
  EXPECT_DOUBLE_EQ(wrapped_overlap(0.1, 0.2, 0.1, 0.2), 0.2);   // identical
  EXPECT_DOUBLE_EQ(wrapped_overlap(0.0, 0.2, 0.5, 0.2), 0.0);   // disjoint
}

TEST(WrappedOverlap, WrapAroundCases) {
  // [0.9, 1.1) wraps to [0.9,1)+[0,0.1); overlaps [0, 0.2) by 0.1.
  EXPECT_NEAR(wrapped_overlap(0.9, 0.2, 0.0, 0.2), 0.1, 1e-12);
  // Both wrap.
  EXPECT_NEAR(wrapped_overlap(0.9, 0.3, 0.95, 0.3), 0.25, 1e-12);
  // Full-period window overlaps everything by the other's length.
  EXPECT_NEAR(wrapped_overlap(0.0, 1.0, 0.4, 0.25), 0.25, 1e-12);
}

TEST(WrappedOverlap, RejectsBadLengths) {
  EXPECT_THROW(wrapped_overlap(0.0, 1.5, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(wrapped_overlap(0.0, 0.5, 0.0, -0.1), std::invalid_argument);
}

TEST(PeriodSchedule, Fig1MlaSplitUsersGetDisjointWindows) {
  // MLA on Fig. 1 puts everyone on a1 while u3, u4 anchor unicast at a2.
  // a1's window is 7/12 and a2's is 0 — trivially no conflicts.
  const auto sc = test::fig1_scenario(1.0);
  const wlan::Association all_a1{{0, 0, 0, 0, 0}};
  const auto sched = schedule_multicast_periods(sc, all_a1);
  EXPECT_EQ(sched.split_users, 2);  // u3, u4 (u5's anchor is a1)
  EXPECT_EQ(sched.conflicting_users, 0);
  EXPECT_NEAR(sched.window_length[0], 7.0 / 12.0, 1e-9);
  EXPECT_DOUBLE_EQ(sched.window_length[1], 0.0);
}

TEST(PeriodSchedule, ConflictingWindowsSeparatedWhenTheyFit) {
  // Both APs transmit (loads ~1/3 each) and share split users: the greedy
  // must stagger the windows.
  const auto sc = test::fig1_scenario(1.0);
  // u3 -> a1 (anchor a2), u4 -> a2 (anchor a2... need a split for a2 too):
  // u5 -> a2 while anchoring at a1.
  const wlan::Association assoc{{0, 0, 0, 1, 1}};
  const auto sched = schedule_multicast_periods(sc, assoc);
  ASSERT_GT(sched.split_users, 0);
  EXPECT_EQ(sched.conflicting_users, 0);
  EXPECT_NEAR(wrapped_overlap(sched.window_start[0], sched.window_length[0],
                              sched.window_start[1], sched.window_length[1]),
              0.0, 1e-12);
}

TEST(PeriodSchedule, OverloadedPairReportsResidualOverlap) {
  // Two APs, each with window length 0.7, sharing a split user: 1.4 > 1, so
  // at least 0.4 of overlap is unavoidable and must be reported.
  const std::vector<std::vector<double>> link = {{10, 10, 1}, {10, 10, 1}};
  // u0 anchors at a0 (equal rates -> lower index) but streams from a1 (we
  // force that); sessions sized to give each AP load 0.7.
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 1, 0}, {7.0, 7.0, 7.0}, 1.0);
  const wlan::Association assoc{{1, 0, wlan::kNoAp}};  // u0->a1 (split), u1->a0
  const auto sched = schedule_multicast_periods(sc, assoc);
  EXPECT_EQ(sched.split_users, 1);
  EXPECT_EQ(sched.conflicting_users, 1);
  EXPECT_NEAR(sched.total_overlap, 0.4, 1e-9);
}

TEST(PeriodSchedule, RandomScenariosMostSplitUsersSchedulable) {
  // With the paper's light per-AP loads, nearly every split user can be
  // given disjoint windows.
  util::Rng rng(163);
  wlan::GeneratorParams p;
  p.n_aps = 30;
  p.n_users = 120;
  p.area_side_m = 500.0;
  const auto sc = wlan::generate_scenario(p, rng);
  const auto sol = assoc::centralized_mla(sc);
  const auto sched = schedule_multicast_periods(sc, sol.assoc);
  EXPECT_GT(sched.split_users, 0);
  EXPECT_LE(sched.conflicting_users, sched.split_users / 4);
}

TEST(PeriodSchedule, WindowLengthsAreTheApLoads) {
  const auto sc = test::fig1_scenario(1.0);
  const wlan::Association assoc{{0, 0, 0, 1, 1}};
  const auto rep = wlan::compute_loads(sc, assoc);
  const auto sched = schedule_multicast_periods(sc, assoc);
  for (int a = 0; a < sc.n_aps(); ++a) {
    EXPECT_DOUBLE_EQ(sched.window_length[static_cast<size_t>(a)],
                     rep.ap_load[static_cast<size_t>(a)]);
  }
}

TEST(PeriodSchedule, RejectsSizeMismatch) {
  const auto sc = test::fig1_scenario(1.0);
  EXPECT_THROW(schedule_multicast_periods(sc, wlan::Association::none(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::ext
