#include "wmcast/assoc/distributed.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

std::vector<int> natural_order(int n) { return util::iota_permutation(n); }

TEST(DistributedMnu, PapersWalkthroughServesFour) {
  // §4.2 example: order u1..u5 -> u1 on a1, u2 rejected, u3 joins a1,
  // u4 and u5 join a2: 4 of 5 users served.
  const auto sc = test::fig1_scenario(3.0);
  util::Rng rng(1);
  DistributedParams p;
  p.objective = Objective::kTotalLoad;
  p.order = natural_order(5);
  const Solution sol = distributed_associate(sc, rng, p);
  EXPECT_EQ(sol.assoc.ap_of(0), 0);
  EXPECT_EQ(sol.assoc.ap_of(1), wlan::kNoAp);
  EXPECT_EQ(sol.assoc.ap_of(2), 0);
  EXPECT_EQ(sol.assoc.ap_of(3), 1);
  EXPECT_EQ(sol.assoc.ap_of(4), 1);
  EXPECT_EQ(sol.loads.satisfied_users, 4);
  EXPECT_TRUE(sol.converged);
  EXPECT_TRUE(sol.loads.within_budget());
}

TEST(DistributedBla, PapersWalkthroughReachesOptimum) {
  // §5.2 example: order u1..u5 -> u1,u2,u3 on a1; u4,u5 on a2; loads
  // (1/2, 1/3) — the optimal BLA solution.
  const auto sc = test::fig1_scenario(1.0);
  util::Rng rng(1);
  DistributedParams p;
  p.objective = Objective::kLoadVector;
  p.order = natural_order(5);
  const Solution sol = distributed_associate(sc, rng, p);
  EXPECT_EQ(sol.assoc.ap_of(0), 0);
  EXPECT_EQ(sol.assoc.ap_of(1), 0);
  EXPECT_EQ(sol.assoc.ap_of(2), 0);
  EXPECT_EQ(sol.assoc.ap_of(3), 1);
  EXPECT_EQ(sol.assoc.ap_of(4), 1);
  EXPECT_NEAR(sol.loads.max_load, 0.5, 1e-12);
  EXPECT_NEAR(sol.loads.ap_load[1], 1.0 / 3.0, 1e-12);
  EXPECT_TRUE(sol.converged);
}

TEST(DistributedMla, PapersWalkthroughAllOnA1) {
  // §6.2 example: all users end on a1, total load 7/12 (optimal).
  const auto sc = test::fig1_scenario(1.0);
  util::Rng rng(1);
  DistributedParams p;
  p.objective = Objective::kTotalLoad;
  p.order = natural_order(5);
  const Solution sol = distributed_associate(sc, rng, p);
  for (int u = 0; u < 5; ++u) EXPECT_EQ(sol.assoc.ap_of(u), 0);
  EXPECT_NEAR(sol.loads.total_load, 7.0 / 12.0, 1e-12);
}

TEST(DistributedFig4, SequentialConverges) {
  // Lemma 1: one-at-a-time decisions converge. From the paper's starting
  // point (u1,u2 on a1; u3,u4 on a2), u2 moves to a2 and then nobody
  // improves: total load drops from 1/2 to 9/20 and stays there.
  const auto sc = test::fig4_scenario();
  util::Rng rng(1);
  DistributedParams p;
  p.objective = Objective::kTotalLoad;
  p.mode = UpdateMode::kSequential;
  p.order = natural_order(4);
  p.initial = wlan::Association{{0, 0, 1, 1}};
  const Solution sol = distributed_associate(sc, rng, p);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.loads.satisfied_users, 4);
  EXPECT_NEAR(sol.loads.total_load, 9.0 / 20.0, 1e-12);
}

TEST(DistributedFig4, SimultaneousOscillates) {
  // The paper's negative example: from u1,u2 -> a1 and u3,u4 -> a2, the
  // synchronized decisions of u2 and u3 swap them forever. Our engine
  // detects the 2-cycle and reports non-convergence.
  const auto sc = test::fig4_scenario();
  util::Rng rng(1);
  DistributedParams p;
  p.objective = Objective::kTotalLoad;
  p.mode = UpdateMode::kSimultaneous;
  p.order = natural_order(4);
  p.initial = wlan::Association{{0, 0, 1, 1}};
  const Solution sol = distributed_associate(sc, rng, p);
  EXPECT_FALSE(sol.converged);
  // The oscillation keeps the total load pinned at 1/2, never reaching the
  // 9/20 a single move would give.
  EXPECT_NEAR(sol.loads.total_load, 0.5, 1e-12);
}

TEST(DistributedFig4, SimultaneousFromEmptyStartHappensToConverge) {
  // Non-convergence is start-state dependent: from all-unassociated the same
  // synchronized protocol settles (everyone piles onto a1 in round one and
  // nobody can improve).
  const auto sc = test::fig4_scenario();
  util::Rng rng(1);
  DistributedParams p;
  p.objective = Objective::kTotalLoad;
  p.mode = UpdateMode::kSimultaneous;
  p.order = natural_order(4);
  const Solution sol = distributed_associate(sc, rng, p);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.loads.satisfied_users, 4);
}

TEST(Distributed, SequentialAlwaysConvergesOnRandomScenarios) {
  // Lemma 1/2 as a property test across both objectives.
  util::Rng rng(53);
  for (const auto objective : {Objective::kTotalLoad, Objective::kLoadVector}) {
    for (int trial = 0; trial < 6; ++trial) {
      wlan::GeneratorParams gp;
      gp.n_aps = 20;
      gp.n_users = 60;
      gp.n_sessions = 4;
      util::Rng sub = rng.fork();
      const auto sc = wlan::generate_scenario(gp, sub);
      DistributedParams p;
      p.objective = objective;
      util::Rng run_rng = rng.fork();
      const Solution sol = distributed_associate(sc, run_rng, p);
      EXPECT_TRUE(sol.converged);
      EXPECT_TRUE(sol.loads.within_budget());
      EXPECT_EQ(sol.loads.satisfied_users, sc.n_coverable_users());
      EXPECT_LT(sol.rounds, 200);
    }
  }
}

TEST(Distributed, WrapperNamesAndObjectives) {
  const auto sc = test::fig1_scenario(1.0);
  util::Rng rng(1);
  EXPECT_EQ(distributed_mnu(sc, rng).algorithm, "MNU-D");
  EXPECT_EQ(distributed_mla(sc, rng).algorithm, "MLA-D");
  EXPECT_EQ(distributed_bla(sc, rng).algorithm, "BLA-D");
}

TEST(Distributed, RejectsBadOrder) {
  const auto sc = test::fig1_scenario(1.0);
  util::Rng rng(1);
  DistributedParams p;
  p.order = {0, 1};  // wrong size
  EXPECT_THROW(distributed_associate(sc, rng, p), std::invalid_argument);
}

TEST(Distributed, TotalLoadNeverIncreasesAcrossRounds) {
  // The convergence argument: each sequential move strictly decreases the
  // total network load (after the initial joins). Check the endpoint is no
  // worse than the state after round 1 by rerunning with max_rounds = 1.
  util::Rng gen(59);
  wlan::GeneratorParams gp;
  gp.n_aps = 15;
  gp.n_users = 50;
  const auto sc = wlan::generate_scenario(gp, gen);
  DistributedParams one;
  one.max_rounds = 1;
  one.order = natural_order(sc.n_users());
  DistributedParams full;
  full.order = natural_order(sc.n_users());
  util::Rng r1(1);
  util::Rng r2(1);
  const Solution after1 = distributed_associate(sc, r1, one);
  const Solution fixed = distributed_associate(sc, r2, full);
  EXPECT_LE(fixed.loads.total_load, after1.loads.total_load + 1e-9);
}

}  // namespace
}  // namespace wmcast::assoc
