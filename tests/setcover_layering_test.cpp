#include "wmcast/setcover/layering.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/setcover/greedy.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::setcover {
namespace {

TEST(Layering, CoversTheFig1Instance) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  const auto res = layered_set_cover(sys);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.covered.count(), 5);
  EXPECT_GT(res.layers, 0);
  // Never worse than f times the optimum (7/12 on this instance).
  const int f = max_element_frequency(sys);
  EXPECT_LE(res.total_cost, f * (7.0 / 12.0) + 1e-9);
}

TEST(Layering, MaxElementFrequencyFig1) {
  // u3 appears in (a1,s1,4), (a1,s1,3) and (a2,s1,5): frequency 3; u4 in
  // (a1,s2,4), (a2,s2,5), (a2,s2,3): frequency 3.
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  EXPECT_EQ(max_element_frequency(sys), 3);
}

TEST(Layering, WithinFTimesOptimalOnRandomInstances) {
  // The paper's §6.1 remark: when every user hears a bounded number of APs,
  // the layering algorithm is a constant-factor approximation.
  util::Rng rng(149);
  int tested = 0;
  while (tested < 8) {
    wlan::GeneratorParams p;
    p.n_aps = 6;
    p.n_users = 12 + rng.next_int(8);
    p.n_sessions = 2;
    p.area_side_m = 350.0;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    const SetSystem sys = build_set_system(sc);
    exact::BbLimits limits;
    limits.time_limit_s = 3.0;
    const auto opt = exact::exact_min_cost_cover(sys, limits);
    if (opt.status != exact::BbStatus::kOptimal) continue;
    ++tested;

    const auto layered = layered_set_cover(sys);
    EXPECT_TRUE(layered.complete);
    const int f = max_element_frequency(sys);
    EXPECT_LE(layered.total_cost, f * opt.cost + 1e-9) << "f=" << f;
    EXPECT_GE(layered.total_cost, opt.cost - 1e-9);
  }
}

TEST(Layering, SingleSetInstanceIsExact) {
  // One set covering everything: layering picks exactly it.
  util::DynBitset members(3);
  members.set(0);
  members.set(1);
  members.set(2);
  CandidateSet s{members, 2.5, 0, 0, 0, 1.0};
  const SetSystem sys(3, 1, {s});
  const auto res = layered_set_cover(sys);
  EXPECT_TRUE(res.complete);
  ASSERT_EQ(res.chosen.size(), 1u);
  EXPECT_NEAR(res.total_cost, 2.5, 1e-12);
  EXPECT_EQ(res.layers, 1);
}

TEST(Layering, TightFrequencyTwoExample) {
  // Vertex-cover-style instance (every element in exactly 2 sets): layering
  // can pay up to 2x OPT but no more. Elements {0,1}; sets A={0}, B={1},
  // C={0,1}. Costs: A=1, B=1, C=1.1. OPT = C (1.1). Layering: eps =
  // min(1/1, 1/1, 1.1/2)=0.55 -> C exhausted? 1.1-2*0.55 = 0 -> picks C.
  util::DynBitset a(2), b(2), c(2);
  a.set(0);
  b.set(1);
  c.set(0);
  c.set(1);
  const SetSystem sys(2, 1,
                      {CandidateSet{a, 1.0, 0, 0, 0, 1.0},
                       CandidateSet{b, 1.0, 0, 0, 0, 1.0},
                       CandidateSet{c, 1.1, 0, 0, 0, 1.0}});
  const auto res = layered_set_cover(sys);
  EXPECT_TRUE(res.complete);
  EXPECT_NEAR(res.total_cost, 1.1, 1e-9);
  EXPECT_EQ(max_element_frequency(sys), 2);
}

TEST(Layering, ComparableToGreedyOnWlanInstances) {
  // Neither dominates in theory (ln n vs f); on WLAN instances both cover
  // everything and land in the same ballpark.
  util::Rng rng(151);
  wlan::GeneratorParams p;
  p.n_aps = 30;
  p.n_users = 80;
  const auto sc = wlan::generate_scenario(p, rng);
  const SetSystem sys = build_set_system(sc);
  const auto layered = layered_set_cover(sys);
  const auto greedy = greedy_set_cover(sys);
  EXPECT_TRUE(layered.complete);
  EXPECT_TRUE(greedy.complete);
  EXPECT_LT(layered.total_cost, 5.0 * greedy.total_cost);
  EXPECT_LT(greedy.total_cost, 5.0 * layered.total_cost);
}

}  // namespace
}  // namespace wmcast::setcover
