// Randomized invariant sweep ("fuzz light"): many random scenarios of varied
// shape, every algorithm, a fixed battery of invariants that must hold on
// each. Catches cross-module regressions the targeted tests miss.
#include <gtest/gtest.h>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/local_search.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/ext/locks.hpp"
#include "wmcast/setcover/greedy.hpp"
#include "wmcast/setcover/layering.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"
#include "wmcast/wlan/serialization.hpp"

namespace wmcast {
namespace {

struct FuzzCase {
  uint64_t seed;
  wlan::GeneratorParams params;
};

std::vector<FuzzCase> make_cases() {
  std::vector<FuzzCase> cases;
  util::Rng meta(20260706);
  for (int i = 0; i < 12; ++i) {
    FuzzCase c;
    c.seed = meta.next_u64();
    c.params.n_aps = 2 + meta.next_int(30);
    c.params.n_users = 1 + meta.next_int(80);
    c.params.n_sessions = 1 + meta.next_int(8);
    c.params.area_side_m = 150.0 + meta.uniform(0.0, 800.0);
    c.params.session_rate_mbps = 0.25 + meta.uniform(0.0, 2.0);
    c.params.load_budget = 0.05 + meta.uniform(0.0, 0.85);
    c.params.zipf_exponent = meta.next_bool(0.3) ? meta.uniform(0.5, 2.0) : 0.0;
    c.params.hotspot_fraction = meta.next_bool(0.3) ? meta.uniform(0.2, 1.0) : 0.0;
    cases.push_back(c);
  }
  return cases;
}

class FuzzInvariants : public testing::TestWithParam<int> {};

void check_solution(const wlan::Scenario& sc, const assoc::Solution& sol,
                    bool must_respect_budget) {
  // 1. Every served user is in range of its AP (compute_loads would throw
  //    otherwise; make_solution already ran it — recompute defensively).
  const auto rep = wlan::compute_loads(sc, sol.assoc);
  // 2. The stored report matches a recomputation (no stale caching).
  EXPECT_NEAR(rep.total_load, sol.loads.total_load, 1e-9);
  EXPECT_EQ(rep.satisfied_users, sol.loads.satisfied_users);
  // 3. Budget feasibility when the algorithm promises it.
  if (must_respect_budget) EXPECT_TRUE(rep.within_budget());
  // 4. Served count never exceeds the coverable population.
  EXPECT_LE(rep.satisfied_users, sc.n_coverable_users());
  // 5. Loads are non-negative and max <= total.
  EXPECT_GE(rep.total_load, -1e-12);
  EXPECT_LE(rep.max_load, rep.total_load + 1e-9);
}

TEST_P(FuzzInvariants, AllAlgorithmsAllInvariants) {
  const auto cases = make_cases();
  const auto& c = cases[static_cast<size_t>(GetParam())];
  util::Rng rng(c.seed);
  const auto sc = wlan::generate_scenario(c.params, rng);

  util::Rng r1(c.seed + 1);
  check_solution(sc, assoc::ssa_associate(sc, r1), true);
  check_solution(sc, assoc::centralized_mnu(sc), true);

  // MLA/BLA serve everyone coverable but may exceed tight budgets by design
  // (the paper's BLA/MLA setting assumes demand fits; with a random tight
  // budget feasibility is not guaranteed).
  const auto mla = assoc::centralized_mla(sc);
  check_solution(sc, mla, false);
  EXPECT_EQ(mla.loads.satisfied_users, sc.n_coverable_users());
  const auto bla = assoc::centralized_bla(sc);
  check_solution(sc, bla, false);
  EXPECT_EQ(bla.loads.satisfied_users, sc.n_coverable_users());

  util::Rng r2(c.seed + 2);
  const auto dmla = assoc::distributed_mla(sc, r2);
  check_solution(sc, dmla, true);
  EXPECT_TRUE(dmla.converged);
  util::Rng r3(c.seed + 3);
  const auto dbla = assoc::distributed_bla(sc, r3);
  check_solution(sc, dbla, true);
  EXPECT_TRUE(dbla.converged);

  util::Rng r4(c.seed + 4);
  const auto locked = ext::lock_coordinated_associate(sc, r4, {});
  check_solution(sc, locked, true);
  EXPECT_TRUE(locked.converged);

  // Local search from SSA: lexicographically never worse — it serves at
  // least as many users, and with equal service the total load cannot rise.
  util::Rng r5(c.seed + 5);
  const auto ssa2 = assoc::ssa_associate(sc, r5);
  const auto polished = assoc::local_search(sc, ssa2.assoc, {});
  check_solution(sc, polished, true);
  EXPECT_GE(polished.loads.satisfied_users, ssa2.loads.satisfied_users);
  if (polished.loads.satisfied_users == ssa2.loads.satisfied_users) {
    EXPECT_LE(polished.loads.total_load, ssa2.loads.total_load + 1e-9);
  }

  // Set-cover layer: greedy and layering both produce complete covers.
  const auto sys = setcover::build_set_system(sc);
  EXPECT_EQ(sys.coverable().count(), sc.n_coverable_users());
  const auto greedy = setcover::greedy_set_cover(sys);
  EXPECT_TRUE(greedy.complete);
  const auto layered = setcover::layered_set_cover(sys);
  EXPECT_TRUE(layered.complete);

  // Serialization round trip preserves algorithm behavior exactly.
  const auto restored = wlan::from_text(wlan::to_text(sc));
  EXPECT_EQ(assoc::centralized_mla(restored).assoc, mla.assoc);

  // Determinism: same seed, same answer.
  util::Rng r6a(c.seed + 6);
  util::Rng r6b(c.seed + 6);
  EXPECT_EQ(assoc::distributed_mla(sc, r6a).assoc, assoc::distributed_mla(sc, r6b).assoc);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, FuzzInvariants, testing::Range(0, 12));

}  // namespace
}  // namespace wmcast
