// Randomized invariant sweep ("fuzz light"): many random scenarios of varied
// shape, every algorithm, a fixed battery of invariants that must hold on
// each. Catches cross-module regressions the targeted tests miss.
#include <gtest/gtest.h>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/local_search.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/ext/locks.hpp"
#include "wmcast/setcover/greedy.hpp"
#include "wmcast/setcover/layering.hpp"
#include "wmcast/setcover/mcg.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/setcover/reference.hpp"
#include "wmcast/setcover/scg.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"
#include "wmcast/wlan/serialization.hpp"

namespace wmcast {
namespace {

struct FuzzCase {
  uint64_t seed;
  wlan::GeneratorParams params;
};

std::vector<FuzzCase> make_cases() {
  std::vector<FuzzCase> cases;
  util::Rng meta(20260706);
  for (int i = 0; i < 12; ++i) {
    FuzzCase c;
    c.seed = meta.next_u64();
    c.params.n_aps = 2 + meta.next_int(30);
    c.params.n_users = 1 + meta.next_int(80);
    c.params.n_sessions = 1 + meta.next_int(8);
    c.params.area_side_m = 150.0 + meta.uniform(0.0, 800.0);
    c.params.session_rate_mbps = 0.25 + meta.uniform(0.0, 2.0);
    c.params.load_budget = 0.05 + meta.uniform(0.0, 0.85);
    c.params.zipf_exponent = meta.next_bool(0.3) ? meta.uniform(0.5, 2.0) : 0.0;
    c.params.hotspot_fraction = meta.next_bool(0.3) ? meta.uniform(0.2, 1.0) : 0.0;
    cases.push_back(c);
  }
  return cases;
}

class FuzzInvariants : public testing::TestWithParam<int> {};

void check_solution(const wlan::Scenario& sc, const assoc::Solution& sol,
                    bool must_respect_budget) {
  // 1. Every served user is in range of its AP (compute_loads would throw
  //    otherwise; make_solution already ran it — recompute defensively).
  const auto rep = wlan::compute_loads(sc, sol.assoc);
  // 2. The stored report matches a recomputation (no stale caching).
  EXPECT_NEAR(rep.total_load, sol.loads.total_load, 1e-9);
  EXPECT_EQ(rep.satisfied_users, sol.loads.satisfied_users);
  // 3. Budget feasibility when the algorithm promises it.
  if (must_respect_budget) EXPECT_TRUE(rep.within_budget());
  // 4. Served count never exceeds the coverable population.
  EXPECT_LE(rep.satisfied_users, sc.n_coverable_users());
  // 5. Loads are non-negative and max <= total.
  EXPECT_GE(rep.total_load, -1e-12);
  EXPECT_LE(rep.max_load, rep.total_load + 1e-9);
}

TEST_P(FuzzInvariants, AllAlgorithmsAllInvariants) {
  const auto cases = make_cases();
  const auto& c = cases[static_cast<size_t>(GetParam())];
  util::Rng rng(c.seed);
  const auto sc = wlan::generate_scenario(c.params, rng);

  util::Rng r1(c.seed + 1);
  check_solution(sc, assoc::ssa_associate(sc, r1), true);
  check_solution(sc, assoc::centralized_mnu(sc), true);

  // MLA/BLA serve everyone coverable but may exceed tight budgets by design
  // (the paper's BLA/MLA setting assumes demand fits; with a random tight
  // budget feasibility is not guaranteed).
  const auto mla = assoc::centralized_mla(sc);
  check_solution(sc, mla, false);
  EXPECT_EQ(mla.loads.satisfied_users, sc.n_coverable_users());
  const auto bla = assoc::centralized_bla(sc);
  check_solution(sc, bla, false);
  EXPECT_EQ(bla.loads.satisfied_users, sc.n_coverable_users());

  util::Rng r2(c.seed + 2);
  const auto dmla = assoc::distributed_mla(sc, r2);
  check_solution(sc, dmla, true);
  EXPECT_TRUE(dmla.converged);
  util::Rng r3(c.seed + 3);
  const auto dbla = assoc::distributed_bla(sc, r3);
  check_solution(sc, dbla, true);
  EXPECT_TRUE(dbla.converged);

  util::Rng r4(c.seed + 4);
  const auto locked = ext::lock_coordinated_associate(sc, r4, {});
  check_solution(sc, locked, true);
  EXPECT_TRUE(locked.converged);

  // Local search from SSA: lexicographically never worse — it serves at
  // least as many users, and with equal service the total load cannot rise.
  util::Rng r5(c.seed + 5);
  const auto ssa2 = assoc::ssa_associate(sc, r5);
  const auto polished = assoc::local_search(sc, ssa2.assoc, {});
  check_solution(sc, polished, true);
  EXPECT_GE(polished.loads.satisfied_users, ssa2.loads.satisfied_users);
  if (polished.loads.satisfied_users == ssa2.loads.satisfied_users) {
    EXPECT_LE(polished.loads.total_load, ssa2.loads.total_load + 1e-9);
  }

  // Set-cover layer: greedy and layering both produce complete covers.
  const auto sys = setcover::build_set_system(sc);
  EXPECT_EQ(sys.coverable().count(), sc.n_coverable_users());
  const auto greedy = setcover::greedy_set_cover(sys);
  EXPECT_TRUE(greedy.complete);
  const auto layered = setcover::layered_set_cover(sys);
  EXPECT_TRUE(layered.complete);

  // Serialization round trip preserves algorithm behavior exactly.
  const auto restored = wlan::from_text(wlan::to_text(sc));
  EXPECT_EQ(assoc::centralized_mla(restored).assoc, mla.assoc);

  // Determinism: same seed, same answer.
  util::Rng r6a(c.seed + 6);
  util::Rng r6b(c.seed + 6);
  EXPECT_EQ(assoc::distributed_mla(sc, r6a).assoc, assoc::distributed_mla(sc, r6b).assoc);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, FuzzInvariants, testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Engine-vs-reference equivalence suite: the engine-backed solvers (which the
// setcover wrappers now run on) must match the retained naive eager
// references *exactly* — identical chosen sequences and bitwise-identical
// objective values — across hundreds of seeded instances. Any drift in gain
// maintenance, heap staleness handling, or tie-breaking shows up here.

/// A random weighted grouped set system; half synthetic (arbitrary costs and
/// overlaps), half projected from a random scenario (the shape the paper's
/// reduction produces).
setcover::SetSystem random_system(util::Rng& rng) {
  if (rng.next_bool(0.5)) {
    wlan::GeneratorParams p;
    p.n_aps = 2 + rng.next_int(10);
    p.n_users = 1 + rng.next_int(40);
    p.n_sessions = 1 + rng.next_int(5);
    p.area_side_m = 150.0 + rng.uniform(0.0, 600.0);
    p.session_rate_mbps = 0.25 + rng.uniform(0.0, 2.0);
    return setcover::build_set_system(wlan::generate_scenario(p, rng));
  }
  const int n_elements = 1 + rng.next_int(50);
  const int n_groups = 1 + rng.next_int(8);
  const int n_sets = 1 + rng.next_int(90);
  std::vector<setcover::CandidateSet> sets;
  for (int j = 0; j < n_sets; ++j) {
    setcover::CandidateSet s;
    s.members = util::DynBitset(n_elements);
    const int degree = 1 + rng.next_int(std::min(n_elements, 12));
    for (int k = 0; k < degree; ++k) s.members.set(rng.next_int(n_elements));
    s.group = rng.next_int(n_groups);
    s.ap = s.group;
    s.session = rng.next_int(3);
    s.tx_rate = 6.0 * (1 + rng.next_int(9));
    // Coarse cost grid so cross-product ratio ties actually occur and the
    // deterministic lower-index tie-break gets exercised.
    s.cost = 0.125 * (1 + rng.next_int(16));
    sets.push_back(std::move(s));
  }
  return setcover::SetSystem(n_elements, n_groups, std::move(sets));
}

class EngineEquivalence : public testing::TestWithParam<int> {};

TEST_P(EngineEquivalence, MatchesNaiveReferenceExactly) {
  // 8 shards x 28 instances = 224 seeded instances.
  util::Rng rng(0x9e3779b9u + static_cast<uint64_t>(GetParam()) * 1000003u);
  for (int i = 0; i < 28; ++i) {
    const auto sys = random_system(rng);

    // Optional restriction target (exercises SCG-style partial covers).
    util::DynBitset target(sys.n_elements());
    for (int e = 0; e < sys.n_elements(); ++e) {
      if (rng.next_bool(0.7)) target.set(e);
    }
    const util::DynBitset* restrict_to = rng.next_bool(0.5) ? &target : nullptr;

    // Greedy (CostSC).
    const auto g_eng = setcover::greedy_set_cover(sys, restrict_to);
    const auto g_ref = setcover::greedy_set_cover_reference(sys, restrict_to);
    ASSERT_EQ(g_eng.chosen, g_ref.chosen);
    EXPECT_EQ(g_eng.total_cost, g_ref.total_cost);
    EXPECT_EQ(g_eng.covered, g_ref.covered);
    EXPECT_EQ(g_eng.complete, g_ref.complete);

    // MCG with random per-group budgets.
    std::vector<double> budgets(static_cast<size_t>(sys.n_groups()));
    for (auto& b : budgets) b = rng.uniform(0.05, 2.5);
    const auto m_eng = setcover::mcg_greedy(sys, budgets, restrict_to);
    const auto m_ref = setcover::mcg_greedy_reference(sys, budgets, restrict_to);
    ASSERT_EQ(m_eng.h, m_ref.h);
    EXPECT_EQ(m_eng.violator, m_ref.violator);
    EXPECT_EQ(m_eng.h1, m_ref.h1);
    EXPECT_EQ(m_eng.h2, m_ref.h2);
    ASSERT_EQ(m_eng.chosen, m_ref.chosen);
    EXPECT_EQ(m_eng.covered, m_ref.covered);
    EXPECT_EQ(m_eng.covered_h, m_ref.covered_h);

    // SCG (full budget search: grid + bisection over repeated MCG passes).
    setcover::ScgParams sp;
    sp.carry_budgets = rng.next_bool(0.7);
    const auto s_eng = setcover::scg_solve(sys, sp);
    const auto s_ref = setcover::scg_solve_reference(sys, sp);
    ASSERT_EQ(s_eng.chosen, s_ref.chosen);
    EXPECT_EQ(s_eng.feasible, s_ref.feasible);
    EXPECT_EQ(s_eng.bstar, s_ref.bstar);
    EXPECT_EQ(s_eng.max_group_cost, s_ref.max_group_cost);
    EXPECT_EQ(s_eng.group_cost, s_ref.group_cost);
    EXPECT_EQ(s_eng.passes, s_ref.passes);
  }
}

INSTANTIATE_TEST_SUITE_P(SeededInstances, EngineEquivalence, testing::Range(0, 8));

}  // namespace
}  // namespace wmcast
