#include "wmcast/exact/dual_bound.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/setcover/greedy.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::exact {
namespace {

TEST(DualAscent, SandwichesTheOptimumOnFig1) {
  const auto sc = test::fig1_scenario(1.0);
  const auto sys = setcover::build_set_system(sc);
  const auto dual = set_cover_dual_ascent(sys);
  const auto opt = exact_min_cost_cover(sys);
  ASSERT_EQ(opt.status, BbStatus::kOptimal);  // 7/12
  EXPECT_LE(dual.lower_bound, opt.cost + 1e-9);
  EXPECT_GT(dual.lower_bound, 0.0);
}

TEST(DualAscent, PricesAreDualFeasible) {
  util::Rng rng(173);
  wlan::GeneratorParams p;
  p.n_aps = 15;
  p.n_users = 50;
  const auto sc = wlan::generate_scenario(p, rng);
  const auto sys = setcover::build_set_system(sc);
  const auto dual = set_cover_dual_ascent(sys);
  // Every set's constraint holds: sum of member prices <= cost.
  for (int j = 0; j < sys.n_sets(); ++j) {
    double total = 0.0;
    sys.set(j).members.for_each(
        [&](int e) { total += dual.price[static_cast<size_t>(e)]; });
    EXPECT_LE(total, sys.set(j).cost + 1e-9) << "set " << j;
  }
  // The bound equals the price sum over coverable elements.
  double sum = 0.0;
  sys.coverable().for_each([&](int e) { sum += dual.price[static_cast<size_t>(e)]; });
  EXPECT_NEAR(sum, dual.lower_bound, 1e-9);
}

TEST(DualAscent, LowerBoundsEveryExactOptimum) {
  util::Rng rng(179);
  for (int trial = 0; trial < 6; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 8;
    p.n_users = 25;
    p.area_side_m = 400.0;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    const auto sys = setcover::build_set_system(sc);
    const auto opt = exact_min_cost_cover(sys);
    if (opt.status != BbStatus::kOptimal) continue;
    const auto dual = set_cover_dual_ascent(sys);
    EXPECT_LE(dual.lower_bound, opt.cost + 1e-9) << "trial " << trial;
    // Dual ascent is typically within a small factor on these instances.
    EXPECT_GE(dual.lower_bound, 0.2 * opt.cost);
  }
}

TEST(DualAscent, TightSetsFormACover) {
  util::Rng rng(181);
  wlan::GeneratorParams p;
  p.n_aps = 12;
  p.n_users = 40;
  const auto sc = wlan::generate_scenario(p, rng);
  const auto sys = setcover::build_set_system(sc);
  const auto dual = set_cover_dual_ascent(sys);
  util::DynBitset covered(sys.n_elements());
  for (const int j : dual.tight_sets) covered.or_assign(sys.set(j).members);
  EXPECT_TRUE(sys.coverable().is_subset_of(covered));
}

TEST(DualAscent, ExactOnSingleSetInstances) {
  // One set covering one element at cost c: the bound is exactly c.
  util::DynBitset m(1);
  m.set(0);
  const setcover::SetSystem sys(1, 1, {setcover::CandidateSet{m, 2.5, 0, 0, 0, 1.0}});
  const auto dual = set_cover_dual_ascent(sys);
  EXPECT_NEAR(dual.lower_bound, 2.5, 1e-12);
  EXPECT_EQ(dual.tight_sets.size(), 1u);
}

TEST(DualAscent, FrequencyBoundHolds) {
  // Standard guarantee: OPT <= f * dual bound (the tight sets overcount each
  // element's price at most f times). Check against the greedy upper bound.
  const auto sc = test::fig1_scenario(1.0);
  const auto sys = setcover::build_set_system(sc);
  const auto dual = set_cover_dual_ascent(sys);
  const auto greedy = setcover::greedy_set_cover(sys);
  ASSERT_TRUE(greedy.complete);
  // f = 3 on this instance (see layering tests).
  EXPECT_LE(greedy.total_cost, 3.0 * dual.lower_bound + 1e-9);
}

}  // namespace
}  // namespace wmcast::exact
