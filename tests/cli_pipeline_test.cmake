# End-to-end CLI pipeline test: generate -> info -> solve -> eval -> exact ->
# export-lp -> render, failing on any non-zero exit.
file(MAKE_DIRECTORY ${WORK})

function(run)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "wmcast_cli ${ARGN} failed (${rc}): ${out} ${err}")
  endif()
endfunction()

run(generate --out=${WORK}/sc.txt --aps=20 --users=40 --sessions=3 --seed=9)
run(info --scenario=${WORK}/sc.txt)
run(solve --scenario=${WORK}/sc.txt --algorithm=mla-c --assoc-out=${WORK}/a.txt)
run(solve --scenario=${WORK}/sc.txt --algorithm=mnu-d --seed=2)
run(eval --scenario=${WORK}/sc.txt --assoc=${WORK}/a.txt)
run(exact --scenario=${WORK}/sc.txt --problem=mla --time-limit=3)
run(export-lp --scenario=${WORK}/sc.txt --problem=bla --out=${WORK}/b.lp)
run(render --scenario=${WORK}/sc.txt --assoc=${WORK}/a.txt --out=${WORK}/m.svg)

# Negative case: unknown algorithm must fail with a non-zero exit.
execute_process(COMMAND ${CLI} solve --scenario=${WORK}/sc.txt --algorithm=bogus
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "wmcast_cli accepted a bogus algorithm")
endif()
