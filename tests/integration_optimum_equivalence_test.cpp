// DESIGN.md §5.7: the set-level optima computed by the exact B&B solvers
// equal the association-level optima — materializing an optimal cover yields
// an association achieving exactly the set-level objective value. This suite
// pins that equivalence for all three problems on random instances.
#include <gtest/gtest.h>

#include "wmcast/exact/exact_bla.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/setcover/materialize.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast {
namespace {

wlan::Scenario instance(uint64_t seed) {
  wlan::GeneratorParams p;
  p.n_aps = 7;
  p.n_users = 20;
  p.n_sessions = 3;
  p.area_side_m = 400.0;
  util::Rng rng(seed);
  return wlan::generate_scenario(p, rng);
}

TEST(OptimumEquivalence, MlaMaterializedTotalEqualsSetLevelCost) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const auto sc = instance(seed);
    const auto sys = setcover::build_set_system(sc);
    const auto opt = exact::exact_min_cost_cover(sys);
    if (opt.status != exact::BbStatus::kOptimal) continue;
    const auto assoc = setcover::materialize(sc, sys, opt.chosen);
    const auto rep = wlan::compute_loads(sc, assoc);
    // Materialized load <= set-level cost always; equality at the optimum
    // (otherwise the materialized association would map back to a cheaper
    // cover, contradicting optimality).
    EXPECT_NEAR(rep.total_load, opt.cost, 1e-9) << "seed " << seed;
    EXPECT_EQ(rep.satisfied_users, sc.n_coverable_users());
  }
}

TEST(OptimumEquivalence, BlaMaterializedMaxEqualsSetLevelMax) {
  for (uint64_t seed = 11; seed <= 15; ++seed) {
    const auto sc = instance(seed);
    const auto sys = setcover::build_set_system(sc);
    const auto opt = exact::exact_min_max_cover(sys);
    if (opt.status != exact::BbStatus::kOptimal) continue;
    const auto assoc = setcover::materialize(sc, sys, opt.chosen);
    const auto rep = wlan::compute_loads(sc, assoc);
    EXPECT_NEAR(rep.max_load, opt.max_group_cost, 1e-9) << "seed " << seed;
  }
}

TEST(OptimumEquivalence, MnuMaterializedServesExactlyTheCoveredCount) {
  for (uint64_t seed = 21; seed <= 25; ++seed) {
    const auto sc = instance(seed).with_budget(0.08);
    const auto sys = setcover::build_set_system(sc);
    const auto opt = exact::exact_max_coverage_uniform(sys, sc.load_budget());
    if (opt.status != exact::BbStatus::kOptimal) continue;
    const auto assoc = setcover::materialize(sc, sys, opt.chosen);
    const auto rep = wlan::compute_loads(sc, assoc);
    EXPECT_EQ(rep.satisfied_users, opt.covered) << "seed " << seed;
    EXPECT_TRUE(rep.within_budget()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wmcast
