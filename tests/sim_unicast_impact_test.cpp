#include "wmcast/sim/unicast_impact.hpp"

#include <gtest/gtest.h>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::sim {
namespace {

wlan::Scenario dense_scenario(uint64_t seed) {
  wlan::GeneratorParams p;
  p.n_aps = 30;
  p.n_users = 120;
  p.n_sessions = 5;
  p.area_side_m = 400.0;
  p.session_rate_mbps = 1.0;
  util::Rng rng(seed);
  return wlan::generate_scenario(p, rng);
}

TEST(UnicastImpact, MeasuredBusyTracksAnalyticLoads) {
  const auto sc = dense_scenario(3);
  const auto sol = assoc::centralized_mla(sc);
  UnicastImpactConfig cfg;
  cfg.n_unicast_clients = 0;  // isolate the multicast side
  cfg.channel.horizon_s = 5.0;
  util::Rng rng(1);
  const auto r = measure_unicast_impact(sc, sol.assoc, cfg, rng);
  // The frame-level busy fraction exceeds the ideal rate-ratio load (per-
  // frame overheads) but by less than 2x for 1500-byte frames.
  EXPECT_GT(r.total_multicast_busy, sol.loads.total_load);
  EXPECT_LT(r.total_multicast_busy, 2.0 * sol.loads.total_load);
  EXPECT_GE(r.max_multicast_busy, sol.loads.max_load);
}

TEST(UnicastImpact, MlaDeliversMoreUnicastThanSsa) {
  // The paper's core motivation, measured end to end: the same unicast
  // population gets more goodput when multicast association minimizes load.
  util::RunningStat delta;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const auto sc = dense_scenario(seed);
    util::Rng ssa_rng(seed);
    const auto ssa = assoc::ssa_associate(sc, ssa_rng);
    const auto mla = assoc::centralized_mla(sc);
    UnicastImpactConfig cfg;
    cfg.n_unicast_clients = 60;
    cfg.channel.horizon_s = 2.0;
    util::Rng r1(99);
    util::Rng r2(99);  // identical unicast placement for both policies
    const auto impact_ssa = measure_unicast_impact(sc, ssa.assoc, cfg, r1);
    const auto impact_mla = measure_unicast_impact(sc, mla.assoc, cfg, r2);
    delta.add(impact_mla.total_goodput_mbps - impact_ssa.total_goodput_mbps);
  }
  EXPECT_GT(delta.mean(), 0.0);
}

TEST(UnicastImpact, NoMulticastMeansNoImpact) {
  const auto sc = dense_scenario(7);
  const auto none = wlan::Association::none(sc.n_users());
  UnicastImpactConfig cfg;
  cfg.n_unicast_clients = 40;
  cfg.channel.horizon_s = 2.0;
  util::Rng rng(5);
  const auto r = measure_unicast_impact(sc, none, cfg, rng);
  EXPECT_DOUBLE_EQ(r.total_multicast_busy, 0.0);
  EXPECT_GT(r.total_goodput_mbps, 0.0);
  EXPECT_DOUBLE_EQ(r.worst_client_goodput_mbps, 0.0);  // no multicast-hit APs
}

TEST(UnicastImpact, RequiresGeometry) {
  const auto sc = wlan::Scenario::from_link_rates({{1.0}}, {0}, {1.0}, 0.9);
  UnicastImpactConfig cfg;
  util::Rng rng(1);
  EXPECT_THROW(measure_unicast_impact(sc, wlan::Association::none(1), cfg, rng),
               std::invalid_argument);
}

TEST(UnicastImpact, ClientsArePlaced) {
  const auto sc = dense_scenario(9);
  const auto sol = assoc::centralized_mla(sc);
  UnicastImpactConfig cfg;
  cfg.n_unicast_clients = 50;
  cfg.channel.horizon_s = 1.0;
  util::Rng rng(3);
  const auto r = measure_unicast_impact(sc, sol.assoc, cfg, rng);
  // Dense 400 m area: everyone lands in someone's range.
  EXPECT_EQ(r.clients_placed, 50);
  EXPECT_GT(r.mean_client_goodput_mbps, 0.0);
}

}  // namespace
}  // namespace wmcast::sim
