#include "wmcast/mac/reliable.hpp"

#include <gtest/gtest.h>

namespace wmcast::mac {
namespace {

TEST(Reliable, PlainBroadcastIsTheBaseline) {
  EXPECT_DOUBLE_EQ(reliable_airtime_multiplier(ReliableScheme::kPlainBroadcast, 10, 0.2),
                   1.0);
  EXPECT_DOUBLE_EQ(expected_delivery(ReliableScheme::kPlainBroadcast, 0.2), 0.8);
}

TEST(Reliable, FeedbackSchemesDeliverEverything) {
  for (const auto s : {ReliableScheme::kLeaderAck, ReliableScheme::kBmwUnicastChain,
                       ReliableScheme::kBatchAck}) {
    EXPECT_DOUBLE_EQ(expected_delivery(s, 0.3), 1.0);
  }
}

TEST(Reliable, LeaderAckIndependentOfGroupSize) {
  const double m5 = reliable_airtime_multiplier(ReliableScheme::kLeaderAck, 5, 0.1);
  const double m50 = reliable_airtime_multiplier(ReliableScheme::kLeaderAck, 50, 0.1);
  EXPECT_DOUBLE_EQ(m5, m50);
  EXPECT_GT(m5, 1.0);  // ACK overhead plus retries
}

TEST(Reliable, BmwScalesLinearlyWithReceivers) {
  const double m1 = reliable_airtime_multiplier(ReliableScheme::kBmwUnicastChain, 1, 0.0);
  const double m8 = reliable_airtime_multiplier(ReliableScheme::kBmwUnicastChain, 8, 0.0);
  EXPECT_NEAR(m8, 8.0 * m1, 1e-9);
}

TEST(Reliable, BatchAckGrowsSlowlyWithReceivers) {
  // BMMM pays per-receiver ACK slots but shares the data frame: far cheaper
  // than BMW for big groups, costlier than leader-ACK.
  const double bmw = reliable_airtime_multiplier(ReliableScheme::kBmwUnicastChain, 20, 0.1);
  const double batch = reliable_airtime_multiplier(ReliableScheme::kBatchAck, 20, 0.1);
  const double leader = reliable_airtime_multiplier(ReliableScheme::kLeaderAck, 20, 0.1);
  EXPECT_LT(batch, bmw);
  EXPECT_GT(batch, leader);
}

TEST(Reliable, LossRaisesEveryFeedbackScheme) {
  for (const auto s : {ReliableScheme::kLeaderAck, ReliableScheme::kBmwUnicastChain,
                       ReliableScheme::kBatchAck}) {
    const double clean = reliable_airtime_multiplier(s, 10, 0.0);
    const double lossy = reliable_airtime_multiplier(s, 10, 0.3);
    EXPECT_GT(lossy, clean);
  }
}

TEST(Reliable, ExpectedRoundsFormula) {
  EXPECT_DOUBLE_EQ(expected_rounds_until_all(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(expected_rounds_until_all(5, 0.0), 1.0);
  // One receiver: geometric mean 1/(1-p).
  EXPECT_NEAR(expected_rounds_until_all(1, 0.5), 2.0, 1e-9);
  // Monotone in n and p.
  EXPECT_GT(expected_rounds_until_all(10, 0.5), expected_rounds_until_all(2, 0.5));
  EXPECT_GT(expected_rounds_until_all(5, 0.6), expected_rounds_until_all(5, 0.3));
}

TEST(Reliable, InvalidInputsThrow) {
  EXPECT_THROW(reliable_airtime_multiplier(ReliableScheme::kLeaderAck, -1, 0.1),
               std::invalid_argument);
  EXPECT_THROW(reliable_airtime_multiplier(ReliableScheme::kLeaderAck, 1, 1.0),
               std::invalid_argument);
  EXPECT_THROW(expected_rounds_until_all(3, -0.1), std::invalid_argument);
  EXPECT_THROW(expected_delivery(ReliableScheme::kPlainBroadcast, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::mac
