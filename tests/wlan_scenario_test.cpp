#include "wmcast/wlan/scenario.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::wlan {
namespace {

TEST(Scenario, Fig1LinkRates) {
  const Scenario sc = test::fig1_scenario(3.0);
  EXPECT_EQ(sc.n_aps(), 2);
  EXPECT_EQ(sc.n_users(), 5);
  EXPECT_EQ(sc.n_sessions(), 2);
  EXPECT_DOUBLE_EQ(sc.link_rate(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sc.link_rate(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(sc.link_rate(1, 0), 0.0);
  EXPECT_FALSE(sc.in_range(1, 0));
  EXPECT_TRUE(sc.in_range(1, 2));
  EXPECT_EQ(sc.user_session(0), 0);
  EXPECT_EQ(sc.user_session(4), 1);
  EXPECT_EQ(sc.n_coverable_users(), 5);
  EXPECT_DOUBLE_EQ(sc.basic_rate(), 3.0);  // lowest positive link rate
}

TEST(Scenario, Fig1NeighborsAndStrongestSignal) {
  const Scenario sc = test::fig1_scenario(3.0);
  EXPECT_EQ(sc.aps_of_user(0), (std::vector<int>{0}));
  // u3 (index 2): a2 at 5 Mbps beats a1 at 4 Mbps.
  EXPECT_EQ(sc.aps_of_user(2), (std::vector<int>{1, 0}));
  EXPECT_EQ(sc.strongest_ap(2), 1);
  // u5 (index 4): a1 at 4 beats a2 at 3.
  EXPECT_EQ(sc.strongest_ap(4), 0);
  EXPECT_EQ(sc.users_of_ap(1), (std::vector<int>{2, 3, 4}));
}

TEST(Scenario, GeometricConstructionUsesRateTable) {
  // One AP at the origin; users at increasing distance.
  const Scenario sc = Scenario::from_geometry(
      {{0, 0}}, {{10, 0}, {0, 100}, {150, 0}, {300, 0}}, {0, 0, 0, 0}, {1.0},
      RateTable::ieee80211a(), 0.9);
  EXPECT_DOUBLE_EQ(sc.link_rate(0, 0), 54.0);
  EXPECT_DOUBLE_EQ(sc.link_rate(0, 1), 18.0);
  EXPECT_DOUBLE_EQ(sc.link_rate(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(sc.link_rate(0, 3), 0.0);  // beyond 200 m
  EXPECT_EQ(sc.n_coverable_users(), 3);
  EXPECT_EQ(sc.strongest_ap(3), kNoAp);
  EXPECT_TRUE(sc.has_geometry());
}

TEST(Scenario, GeometricStrongestIsNearestEvenAtEqualRate) {
  // Both APs serve the user at 6 Mbps, but ap1 is nearer.
  const Scenario sc = Scenario::from_geometry(
      {{0, 0}, {40, 0}}, {{190, 0}}, {0}, {1.0}, RateTable::ieee80211a(), 0.9);
  EXPECT_DOUBLE_EQ(sc.link_rate(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(sc.link_rate(1, 0), 6.0);
  EXPECT_EQ(sc.strongest_ap(0), 1);  // 150 m beats 190 m
}

TEST(Scenario, ValidationRejectsBadInput) {
  const std::vector<std::vector<double>> link = {{1.0}};
  EXPECT_THROW(Scenario::from_link_rates(link, {5}, {1.0}, 0.9),
               std::invalid_argument);  // invalid session id
  EXPECT_THROW(Scenario::from_link_rates(link, {0}, {-1.0}, 0.9),
               std::invalid_argument);  // negative session rate
  EXPECT_THROW(Scenario::from_link_rates(link, {0}, {1.0}, 0.0),
               std::invalid_argument);  // zero budget
  EXPECT_THROW(Scenario::from_link_rates(link, {0}, {1.0}, 1.5),
               std::invalid_argument);  // budget above 1
  EXPECT_THROW(Scenario::from_link_rates({{-2.0}}, {0}, {1.0}, 0.9),
               std::invalid_argument);  // negative link rate
  EXPECT_THROW(Scenario::from_link_rates({{1.0, 1.0}, {1.0}}, {0, 0}, {1.0}, 0.9),
               std::invalid_argument);  // ragged matrix
}

TEST(Scenario, WithBudgetAndWithSessionRates) {
  const Scenario sc = test::fig1_scenario(3.0);
  const Scenario sc2 = sc.with_budget(0.5);
  EXPECT_DOUBLE_EQ(sc2.load_budget(), 0.5);
  EXPECT_DOUBLE_EQ(sc.load_budget(), 1.0);  // original untouched

  const Scenario sc3 = sc.with_session_rates({1.0, 2.0});
  EXPECT_DOUBLE_EQ(sc3.session_rate(0), 1.0);
  EXPECT_DOUBLE_EQ(sc3.session_rate(1), 2.0);
  EXPECT_THROW(sc.with_session_rates({1.0}), std::invalid_argument);
  EXPECT_THROW(sc.with_budget(0.0), std::invalid_argument);
}

TEST(ScenarioGenerator, ProducesPaperScaleScenarios) {
  util::Rng rng(123);
  GeneratorParams p;
  p.n_aps = 50;
  p.n_users = 100;
  p.n_sessions = 5;
  const Scenario sc = generate_scenario(p, rng);
  EXPECT_EQ(sc.n_aps(), 50);
  EXPECT_EQ(sc.n_users(), 100);
  EXPECT_EQ(sc.n_sessions(), 5);
  EXPECT_DOUBLE_EQ(sc.load_budget(), 0.9);
  // All positions inside the square.
  for (const auto& pos : sc.ap_positions()) {
    EXPECT_GE(pos.x, 0.0);
    EXPECT_LE(pos.x, p.area_side_m);
    EXPECT_GE(pos.y, 0.0);
    EXPECT_LE(pos.y, p.area_side_m);
  }
  // Session requests all valid.
  for (int u = 0; u < sc.n_users(); ++u) {
    EXPECT_GE(sc.user_session(u), 0);
    EXPECT_LT(sc.user_session(u), 5);
  }
  // With 50 APs in 1.2 km^2 nearly everyone is coverable.
  EXPECT_GT(sc.n_coverable_users(), 90);
}

TEST(ScenarioGenerator, DeterministicPerSeed) {
  GeneratorParams p;
  p.n_aps = 10;
  p.n_users = 20;
  util::Rng r1(7);
  util::Rng r2(7);
  const Scenario a = generate_scenario(p, r1);
  const Scenario b = generate_scenario(p, r2);
  for (int i = 0; i < a.n_aps(); ++i) {
    for (int u = 0; u < a.n_users(); ++u) {
      EXPECT_DOUBLE_EQ(a.link_rate(i, u), b.link_rate(i, u));
    }
  }
}

TEST(ScenarioGenerator, Fig12ParamsMatchPaper) {
  const GeneratorParams p = fig12_params(40);
  EXPECT_EQ(p.n_aps, 30);
  EXPECT_EQ(p.n_users, 40);
  EXPECT_DOUBLE_EQ(p.area_side_m, 600.0);
}

}  // namespace
}  // namespace wmcast::wlan
