#include "wmcast/util/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace wmcast::util {
namespace {

Args make_args(std::vector<std::string> argv) {
  std::vector<char*> ptrs;
  static std::vector<std::string> storage;  // keep strings alive
  storage = std::move(argv);
  ptrs.push_back(nullptr);  // argv[0] is skipped by the parser
  for (auto& s : storage) ptrs.push_back(s.data());
  return Args(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(Args, ParsesKeyValue) {
  const Args a = make_args({"--users=400", "--rate=1.5", "--name=fig9"});
  EXPECT_EQ(a.get_int("users", 0), 400);
  EXPECT_DOUBLE_EQ(a.get_double("rate", 0.0), 1.5);
  EXPECT_EQ(a.get("name", ""), "fig9");
}

TEST(Args, FlagsAreBooleanTrue) {
  const Args a = make_args({"--verbose"});
  EXPECT_TRUE(a.get_bool("verbose", false));
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("quiet"));
}

TEST(Args, DefaultsWhenMissing) {
  const Args a = make_args({});
  EXPECT_EQ(a.get_int("users", 42), 42);
  EXPECT_DOUBLE_EQ(a.get_double("rate", 2.5), 2.5);
  EXPECT_EQ(a.get("name", "def"), "def");
  EXPECT_FALSE(a.get_bool("flag", false));
  EXPECT_EQ(a.get_u64("seed", 99ull), 99ull);
}

TEST(Args, BoolParsesCommonSpellings) {
  EXPECT_TRUE(make_args({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make_args({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make_args({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(make_args({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make_args({"--x=0"}).get_bool("x", true));
}

TEST(Args, RejectsPositionalArguments) {
  EXPECT_THROW(make_args({"positional"}), std::invalid_argument);
  EXPECT_THROW(make_args({"-k=v"}), std::invalid_argument);
}

TEST(Args, U64RoundTrip) {
  const Args a = make_args({"--seed=18446744073709551615"});
  EXPECT_EQ(a.get_u64("seed", 0), 18446744073709551615ull);
}

}  // namespace
}  // namespace wmcast::util
