#include "wmcast/util/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace wmcast::util {
namespace {

Args make_args(std::vector<std::string> argv) {
  std::vector<char*> ptrs;
  static std::vector<std::string> storage;  // keep strings alive
  storage = std::move(argv);
  ptrs.push_back(nullptr);  // argv[0] is skipped by the parser
  for (auto& s : storage) ptrs.push_back(s.data());
  return Args(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(Args, ParsesKeyValue) {
  const Args a = make_args({"--users=400", "--rate=1.5", "--name=fig9"});
  EXPECT_EQ(a.get_int("users", 0), 400);
  EXPECT_DOUBLE_EQ(a.get_double("rate", 0.0), 1.5);
  EXPECT_EQ(a.get("name", ""), "fig9");
}

TEST(Args, FlagsAreBooleanTrue) {
  const Args a = make_args({"--verbose"});
  EXPECT_TRUE(a.get_bool("verbose", false));
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("quiet"));
}

TEST(Args, DefaultsWhenMissing) {
  const Args a = make_args({});
  EXPECT_EQ(a.get_int("users", 42), 42);
  EXPECT_DOUBLE_EQ(a.get_double("rate", 2.5), 2.5);
  EXPECT_EQ(a.get("name", "def"), "def");
  EXPECT_FALSE(a.get_bool("flag", false));
  EXPECT_EQ(a.get_u64("seed", 99ull), 99ull);
}

TEST(Args, BoolParsesCommonSpellings) {
  EXPECT_TRUE(make_args({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make_args({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make_args({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(make_args({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make_args({"--x=0"}).get_bool("x", true));
}

TEST(Args, RejectsPositionalArguments) {
  EXPECT_THROW(make_args({"positional"}), std::invalid_argument);
  EXPECT_THROW(make_args({"-k=v"}), std::invalid_argument);
}

TEST(Args, U64RoundTrip) {
  const Args a = make_args({"--seed=18446744073709551615"});
  EXPECT_EQ(a.get_u64("seed", 0), 18446744073709551615ull);
}

TEST(Args, RejectsEmptyFlagName) {
  EXPECT_THROW(make_args({"--"}), std::invalid_argument);
  EXPECT_THROW(make_args({"--=value"}), std::invalid_argument);
}

// Numeric values must parse in full and errors must name the offending flag.
TEST(Args, NumericErrorsNameTheFlag) {
  const auto expect_message_mentions = [](const auto& fn, const std::string& needle) {
    try {
      fn();
      FAIL() << "expected std::invalid_argument mentioning " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  expect_message_mentions(
      [] { make_args({"--users=12x"}).get_int("users", 0); }, "--users=12x");
  expect_message_mentions(
      [] { make_args({"--rate="}).get_double("rate", 0.0); }, "--rate=");
  expect_message_mentions(
      [] { make_args({"--seed=abc"}).get_u64("seed", 0); }, "--seed=abc");
}

TEST(Args, NumericRejectsPartialParses) {
  EXPECT_THROW(make_args({"--n=1.5"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make_args({"--n=7 "}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make_args({"--r=1.5e"}).get_double("r", 0.0), std::invalid_argument);
  EXPECT_THROW(make_args({"--n=99999999999999999999"}).get_int("n", 0),
               std::invalid_argument);
  // A flag used as a number ("--epochs" alone stores "true") must throw too.
  EXPECT_THROW(make_args({"--epochs"}).get_int("epochs", 0), std::invalid_argument);
}

TEST(Args, U64RejectsSigns) {
  EXPECT_THROW(make_args({"--seed=-1"}).get_u64("seed", 0), std::invalid_argument);
  EXPECT_THROW(make_args({"--seed=+3"}).get_u64("seed", 0), std::invalid_argument);
}

TEST(Args, RejectUnknownFlagsByList) {
  const Args a = make_args({"--users=10", "--theads=8"});
  EXPECT_NO_THROW(a.reject_unknown({"users", "theads"}));
  try {
    a.reject_unknown({"users", "threads"});
    FAIL() << "expected the typo to be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--theads"), std::string::npos)
        << "message was: " << e.what();
  }
  EXPECT_NO_THROW(make_args({}).reject_unknown({}));
}

}  // namespace
}  // namespace wmcast::util
