// Parameterized sweep over the distributed engine's configuration space:
// objective x update mode x budget regime x rate model. Invariants checked
// on every combination (TEST_P).
#include <gtest/gtest.h>

#include "wmcast/assoc/distributed.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

struct Combo {
  Objective objective;
  UpdateMode mode;
  double budget;
  bool multi_rate;
};

std::string combo_name(const testing::TestParamInfo<Combo>& info) {
  const auto& c = info.param;
  std::string s;
  s += c.objective == Objective::kTotalLoad ? "total" : "vector";
  s += c.mode == UpdateMode::kSequential ? "_seq" : "_sim";
  s += "_b" + std::to_string(static_cast<int>(c.budget * 100));
  s += c.multi_rate ? "_multi" : "_basic";
  return s;
}

class DistributedSweep : public testing::TestWithParam<Combo> {};

TEST_P(DistributedSweep, InvariantsHoldOnRandomScenarios) {
  const auto& c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    wlan::GeneratorParams gp;
    gp.n_aps = 15;
    gp.n_users = 45;
    gp.n_sessions = 3;
    gp.area_side_m = 450.0;
    gp.load_budget = c.budget;
    util::Rng gen(seed);
    const auto sc = wlan::generate_scenario(gp, gen);

    DistributedParams p;
    p.objective = c.objective;
    p.mode = c.mode;
    p.multi_rate = c.multi_rate;
    util::Rng rng(seed * 31);
    const auto sol = distributed_associate(sc, rng, p);

    // Sequential mode always converges (Lemmas 1-2) and stays feasible.
    if (c.mode == UpdateMode::kSequential) {
      EXPECT_TRUE(sol.converged);
      const auto rep = wlan::compute_loads(sc, sol.assoc, c.multi_rate);
      EXPECT_TRUE(rep.budget_violations == 0);
    }
    // Either way the association only uses reachable APs (compute_loads
    // would throw) and the rounds counter is sane.
    EXPECT_NO_THROW(wlan::compute_loads(sc, sol.assoc, c.multi_rate));
    EXPECT_GE(sol.rounds, 1);
    EXPECT_LE(sol.rounds, p.max_rounds);
    // Served count never exceeds the coverable population.
    EXPECT_LE(sol.loads.satisfied_users, sc.n_coverable_users());
    // With a generous budget everyone coverable is served in sequential mode.
    if (c.mode == UpdateMode::kSequential && c.budget >= 0.9 && c.multi_rate) {
      EXPECT_EQ(sol.loads.satisfied_users, sc.n_coverable_users());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, DistributedSweep,
    testing::Values(
        Combo{Objective::kTotalLoad, UpdateMode::kSequential, 0.9, true},
        Combo{Objective::kTotalLoad, UpdateMode::kSequential, 0.9, false},
        Combo{Objective::kTotalLoad, UpdateMode::kSequential, 0.1, true},
        Combo{Objective::kTotalLoad, UpdateMode::kSimultaneous, 0.9, true},
        Combo{Objective::kTotalLoad, UpdateMode::kSimultaneous, 0.1, true},
        Combo{Objective::kLoadVector, UpdateMode::kSequential, 0.9, true},
        Combo{Objective::kLoadVector, UpdateMode::kSequential, 0.9, false},
        Combo{Objective::kLoadVector, UpdateMode::kSequential, 0.1, true},
        Combo{Objective::kLoadVector, UpdateMode::kSimultaneous, 0.9, true},
        Combo{Objective::kLoadVector, UpdateMode::kSequential, 0.05, true}),
    combo_name);

}  // namespace
}  // namespace wmcast::assoc
