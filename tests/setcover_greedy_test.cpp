#include "wmcast/setcover/greedy.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"

namespace wmcast::setcover {
namespace {

SetSystem make_system(int n_elements, int n_groups,
                      const std::vector<std::tuple<std::vector<int>, double, int>>& defs) {
  std::vector<CandidateSet> sets;
  for (const auto& [members, cost, group] : defs) {
    CandidateSet s;
    s.members = util::DynBitset(n_elements);
    for (const int e : members) s.members.set(e);
    s.cost = cost;
    s.group = group;
    s.ap = group;
    sets.push_back(std::move(s));
  }
  return SetSystem(n_elements, n_groups, std::move(sets));
}

TEST(GreedySetCover, PapersMlaWalkthrough) {
  // §6.1 example: on the Fig. 1 WLAN with 1 Mbps streams, CostSC first picks
  // (a1, s2, rate 4) with ratio 3/(1/4)=12, then (a1, s1, rate 3) with ratio
  // 2/(1/3)=6, for a total cost of 7/12 — the optimal solution.
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  const GreedyCoverResult res = greedy_set_cover(sys);
  ASSERT_TRUE(res.complete);
  ASSERT_EQ(res.chosen.size(), 2u);
  EXPECT_EQ(sys.set(res.chosen[0]).ap, 0);
  EXPECT_EQ(sys.set(res.chosen[0]).session, 1);
  EXPECT_DOUBLE_EQ(sys.set(res.chosen[0]).tx_rate, 4.0);
  EXPECT_EQ(sys.set(res.chosen[1]).ap, 0);
  EXPECT_EQ(sys.set(res.chosen[1]).session, 0);
  EXPECT_DOUBLE_EQ(sys.set(res.chosen[1]).tx_rate, 3.0);
  EXPECT_NEAR(res.total_cost, 7.0 / 12.0, 1e-12);
  EXPECT_EQ(res.covered.count(), 5);
}

TEST(GreedySetCover, CoversEverythingCoverable) {
  const auto sys = make_system(4, 1,
                               {
                                   {{0, 1}, 1.0, 0},
                                   {{2}, 1.0, 0},
                               });
  const auto res = greedy_set_cover(sys);
  // Element 3 is uncoverable; the greedy covers the rest and reports complete
  // (complete == covered every *coverable* element).
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.covered.count(), 3);
}

TEST(GreedySetCover, PrefersCostEffectiveSets) {
  // One big expensive set vs two cheap ones covering the same ground.
  const auto sys = make_system(4, 1,
                               {
                                   {{0, 1, 2, 3}, 10.0, 0},
                                   {{0, 1}, 1.0, 0},
                                   {{2, 3}, 1.0, 0},
                               });
  const auto res = greedy_set_cover(sys);
  EXPECT_TRUE(res.complete);
  EXPECT_NEAR(res.total_cost, 2.0, 1e-12);
  EXPECT_EQ(res.chosen.size(), 2u);
}

TEST(GreedySetCover, ClassicLogFactorTrap) {
  // The classic tight example: greedy picks the large "diagonal" set first
  // and pays more than OPT, but stays within (ln n + 1) * OPT.
  const auto sys = make_system(6, 1,
                               {
                                   {{0, 1, 2, 3, 4, 5}, 1.0 + 1e-9, 0},  // OPT alone
                                   {{0, 1, 2}, 0.5, 0},
                                   {{3, 4}, 0.34, 0},
                                   {{5}, 0.17, 0},
                               });
  const auto res = greedy_set_cover(sys);
  EXPECT_TRUE(res.complete);
  const double opt = 1.0 + 1e-9;
  EXPECT_LE(res.total_cost, (std::log(6.0) + 1.0) * opt);
}

TEST(GreedySetCover, RestrictToLimitsTheTarget) {
  const auto sys = make_system(4, 1,
                               {
                                   {{0, 1}, 1.0, 0},
                                   {{2, 3}, 5.0, 0},
                               });
  util::DynBitset only01(4);
  only01.set(0);
  only01.set(1);
  const auto res = greedy_set_cover(sys, &only01);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.chosen.size(), 1u);
  EXPECT_NEAR(res.total_cost, 1.0, 1e-12);
}

TEST(GreedySetCover, EmptyTargetChoosesNothing) {
  const auto sys = make_system(2, 1, {{{0, 1}, 1.0, 0}});
  util::DynBitset empty(2);
  const auto res = greedy_set_cover(sys, &empty);
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.chosen.empty());
  EXPECT_DOUBLE_EQ(res.total_cost, 0.0);
}

TEST(GreedySetCover, LazyEvaluationMatchesEagerGreedy) {
  // Cross-check the CELF implementation against a naive eager greedy on
  // random instances.
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 30;
    std::vector<std::tuple<std::vector<int>, double, int>> defs;
    const int m = 12 + rng.next_int(10);
    for (int j = 0; j < m; ++j) {
      std::vector<int> members;
      for (int e = 0; e < n; ++e) {
        if (rng.next_bool(0.2)) members.push_back(e);
      }
      if (members.empty()) members.push_back(rng.next_int(n));
      defs.emplace_back(members, 0.1 + rng.next_double(), 0);
    }
    const auto sys = make_system(n, 1, defs);

    // Naive eager greedy.
    util::DynBitset remaining = sys.coverable();
    double eager_cost = 0.0;
    while (remaining.any()) {
      int best = -1;
      double best_ratio = 0.0;
      for (int j = 0; j < sys.n_sets(); ++j) {
        const int gain = sys.set(j).members.and_count(remaining);
        if (gain <= 0) continue;
        const double ratio = gain / sys.set(j).cost;
        if (best == -1 || ratio > best_ratio) {
          best = j;
          best_ratio = ratio;
        }
      }
      if (best == -1) break;
      eager_cost += sys.set(best).cost;
      remaining.andnot_assign(sys.set(best).members);
    }

    const auto lazy = greedy_set_cover(sys);
    EXPECT_NEAR(lazy.total_cost, eager_cost, 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace wmcast::setcover
