// Contract-checking behavior: util::require throws, WMCAST_ASSERT aborts.
#include "wmcast/util/assert.hpp"

#include <gtest/gtest.h>

namespace wmcast::util {
namespace {

TEST(Require, ThrowsInvalidArgumentWithMessage) {
  EXPECT_NO_THROW(require(true, "fine"));
  try {
    require(false, "the water is lava");
    FAIL() << "require(false) did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("the water is lava"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("wmcast"), std::string::npos);
  }
}

TEST(AssertDeathTest, AbortsWithLocationInfo) {
  EXPECT_DEATH(WMCAST_ASSERT(1 == 2, "impossible arithmetic"),
               "impossible arithmetic");
}

TEST(AssertDeathTest, PassingAssertIsSilent) {
  WMCAST_ASSERT(2 + 2 == 4, "sanity");
  SUCCEED();
}

}  // namespace
}  // namespace wmcast::util
