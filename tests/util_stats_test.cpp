#include "wmcast/util/stats.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace wmcast::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, HandlesNegativeValues) {
  RunningStat s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Summarize, FromVector) {
  const Summary s = summarize(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.avg, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_EQ(s.count, 3);
}

TEST(PercentHelpers, ReductionAndGain) {
  EXPECT_DOUBLE_EQ(percent_reduction(0.5, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_reduction(1.0, 1.0), 0.0);
  EXPECT_NEAR(percent_gain(1.369, 1.0), 36.9, 1e-9);
  EXPECT_DOUBLE_EQ(percent_gain(1.0, 0.0), 0.0);  // guarded division
  EXPECT_DOUBLE_EQ(percent_reduction(1.0, 0.0), 0.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  for (const double p : {0.0, 37.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile({7.5}, p), 7.5) << "p=" << p;
  }
}

// Documented contract: empty input and out-of-range p throw — never NaN,
// never an out-of-bounds read.
TEST(Percentile, EmptyAndBadPThrow) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 100.1), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(percentile({1.0}, nan), std::invalid_argument);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace wmcast::util
