// Shrinker and repro-file tests (chaos/shrink.hpp): greedy minimization must
// preserve the failure, the "wmcast-repro v1" format must round-trip exactly
// (repro files are the harness's only durable artifact), and the shrunk
// repros committed under tests/repros/ must stay fixed — each one encodes a
// bug this repo actually had, so a regression makes run_repro fail again.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "wmcast/chaos/oracles.hpp"
#include "wmcast/chaos/shrink.hpp"
#include "wmcast/ctrl/events.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"
#include "wmcast/wlan/serialization.hpp"

namespace wmcast::chaos {
namespace {

// A synthetic 5-epoch trace: the "failure" event leave(3) sits in epoch 2
// surrounded by padding the shrinker should strip.
ctrl::EventTrace synthetic_trace() {
  ctrl::EventTrace t;
  t.epochs.resize(5);
  for (size_t ep = 0; ep < t.epochs.size(); ++ep) {
    for (int k = 0; k < 4; ++k) {
      t.epochs[ep].push_back(ctrl::Event::move(static_cast<int>(ep) * 4 + k,
                                               {10.0 * k, 5.0 * static_cast<double>(ep)}));
    }
  }
  t.epochs[2].push_back(ctrl::Event::leave(3));
  return t;
}

bool contains_leave3(const ctrl::EventTrace& t) {
  for (const auto& epoch : t.epochs) {
    for (const auto& e : epoch) {
      if (e.type == ctrl::EventType::kUserLeave && e.user == 3) return true;
    }
  }
  return false;
}

TEST(ShrinkTest, MinimizesToTheSingleFailingEvent) {
  const auto trace = synthetic_trace();
  const auto res = shrink_trace(trace, contains_leave3);

  EXPECT_EQ(res.events_before, trace.n_events());
  EXPECT_EQ(res.events_after, 1u);
  EXPECT_EQ(res.trace.n_events(), 1u);
  EXPECT_TRUE(contains_leave3(res.trace));
  // Trailing epochs are truncated; earlier epochs are emptied but kept so the
  // failing event's epoch index stays meaningful.
  EXPECT_EQ(res.epochs_before, 5);
  EXPECT_EQ(res.epochs_after, 3);
  EXPECT_TRUE(res.trace.epochs[0].empty());
  EXPECT_TRUE(res.trace.epochs[1].empty());
  EXPECT_GT(res.predicate_runs, 0);
}

TEST(ShrinkTest, ThrowsWhenTheInputAlreadyPasses) {
  ctrl::EventTrace passing;
  passing.epochs.resize(2);
  passing.epochs[0].push_back(ctrl::Event::leave(7));
  EXPECT_THROW(shrink_trace(passing, contains_leave3), std::invalid_argument);
}

TEST(ShrinkTest, IsDeterministic) {
  const auto trace = synthetic_trace();
  const auto a = shrink_trace(trace, contains_leave3);
  const auto b = shrink_trace(trace, contains_leave3);
  EXPECT_EQ(ctrl::trace_to_text(a.trace), ctrl::trace_to_text(b.trace));
  EXPECT_EQ(a.predicate_runs, b.predicate_runs);
}

Repro sample_repro() {
  Repro r;
  r.check = "replay.thread_determinism";
  r.detail = "epoch 5: committed association differs between threads=1 and threads=4";
  r.seed = 16946530294876730622ull;  // > INT64_MAX: exercises the u64 parse path
  r.profile = "mixed";
  r.solver = "mla-c";
  r.threads = 4;
  wlan::GeneratorParams gp;
  gp.n_aps = 4;
  gp.n_users = 8;
  gp.n_sessions = 2;
  gp.area_side_m = 200.0;
  util::Rng rng(2);
  r.scenario = wlan::generate_scenario(gp, rng);
  r.trace = synthetic_trace();
  return r;
}

TEST(ReproFormatTest, RoundTripsExactly) {
  const Repro r = sample_repro();
  const std::string text = repro_to_text(r);
  const Repro back = repro_from_text(text);

  EXPECT_EQ(back.check, r.check);
  EXPECT_EQ(back.detail, r.detail);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.profile, r.profile);
  EXPECT_EQ(back.solver, r.solver);
  EXPECT_EQ(back.threads, r.threads);
  EXPECT_EQ(wlan::to_text(back.scenario), wlan::to_text(r.scenario));
  EXPECT_EQ(ctrl::trace_to_text(back.trace), ctrl::trace_to_text(r.trace));
  // Fixpoint: serialize(parse(text)) == text.
  EXPECT_EQ(repro_to_text(back), text);
}

// Shrink -> serialize -> parse -> serialize must be a fixpoint: the whole
// point of shrinking is committing the minimized repro, so the shrunk trace
// (with its emptied-but-kept leading epochs) must survive the v2 scenario +
// trace formats byte-for-byte.
TEST(ReproFormatTest, ShrunkReproRoundTripsExactly) {
  Repro r = sample_repro();
  const auto res = shrink_trace(r.trace, contains_leave3);
  r.trace = res.trace;
  r.detail = "shrunk to " + std::to_string(res.events_after) + " events";

  const std::string text = repro_to_text(r);
  const Repro back = repro_from_text(text);
  EXPECT_EQ(repro_to_text(back), text);
  EXPECT_EQ(ctrl::trace_to_text(back.trace), ctrl::trace_to_text(res.trace));
  EXPECT_TRUE(contains_leave3(back.trace));
}

TEST(ReproFormatTest, MalformedInputThrows) {
  const std::string good = repro_to_text(sample_repro());

  EXPECT_THROW(repro_from_text(""), std::invalid_argument);
  EXPECT_THROW(repro_from_text("not-a-repro v1\n"), std::invalid_argument);
  // Truncated: drop the trailing "end" and everything after the header.
  EXPECT_THROW(repro_from_text(good.substr(0, good.size() / 3)),
               std::invalid_argument);
  EXPECT_THROW(repro_from_text(good.substr(0, good.rfind("end"))),
               std::invalid_argument);

  // Corrupted metadata fields.
  auto replace_line = [&](const std::string& prefix, const std::string& repl) {
    const auto at = good.find(prefix);
    EXPECT_NE(at, std::string::npos);
    const auto eol = good.find('\n', at);
    return good.substr(0, at) + repl + good.substr(eol);
  };
  EXPECT_THROW(repro_from_text(replace_line("seed ", "seed -1")),
               std::invalid_argument);
  EXPECT_THROW(repro_from_text(replace_line("seed ", "seed 12x")),
               std::invalid_argument);
  EXPECT_THROW(repro_from_text(replace_line("threads ", "threads 0")),
               std::invalid_argument);
  EXPECT_THROW(repro_from_text(replace_line("scenario_lines ", "scenario_lines -4")),
               std::invalid_argument);
}

TEST(ReproFormatTest, SaveAndLoadRoundTripThroughDisk) {
  const Repro r = sample_repro();
  const std::string path =
      (std::filesystem::temp_directory_path() / "wmcast_repro_roundtrip.repro").string();
  ASSERT_TRUE(save_repro(r, path));
  const Repro back = load_repro(path);
  EXPECT_EQ(repro_to_text(back), repro_to_text(r));
  std::filesystem::remove(path);
  EXPECT_THROW(load_repro(path), std::invalid_argument);
}

// Every committed repro encodes a bug the differential replayer once caught
// (e.g. repro_thread_determinism.repro: the better_pick non-SWO comparator
// that made the committed association depend on thread count). run_repro
// replays each through the full oracle set; a failure here means the original
// bug — or a new one on the same path — is back.
TEST(CommittedReprosTest, AllReprosStayFixed) {
  const std::filesystem::path dir =
      std::filesystem::path(WMCAST_TEST_DATA_DIR) / "repros";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;

  int n_repros = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".repro") continue;
    ++n_repros;
    SCOPED_TRACE(entry.path().filename().string());
    const Repro r = load_repro(entry.path().string());
    const auto res = run_repro(r);
    EXPECT_FALSE(res.diverged) << "diverged at epoch " << res.divergence_epoch;
    EXPECT_EQ(failures_to_text(res.results), "");
    EXPECT_EQ(res.epochs_run, r.trace.n_epochs());
  }
  EXPECT_GE(n_repros, 3) << "committed repro corpus went missing";
}

}  // namespace
}  // namespace wmcast::chaos
