#include "wmcast/assoc/dual.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

TEST(DualAssociation, Fig1AccountsUnicastAtStrongestAp) {
  const auto sc = test::fig1_scenario(1.0);
  // All multicast on a1 (the MLA optimum).
  const wlan::Association mc{{0, 0, 0, 0, 0}};
  DualParams p;
  p.unicast_demand_per_user = 0.1;
  const auto rep = evaluate_dual(sc, mc, p);

  // Strongest APs: u1->a1, u2->a1, u3->a2, u4->a2, u5->a1.
  EXPECT_NEAR(rep.unicast_demand[0], 0.3, 1e-12);
  EXPECT_NEAR(rep.unicast_demand[1], 0.2, 1e-12);
  EXPECT_NEAR(rep.multicast_load[0], 7.0 / 12.0, 1e-12);
  EXPECT_NEAR(rep.combined[0], 7.0 / 12.0 + 0.3, 1e-12);
  // u3 and u4 stream from a1 but anchor unicast at a2: split users.
  EXPECT_EQ(rep.split_users, 2);
  EXPECT_EQ(rep.overloaded_aps, 0);
}

TEST(DualAssociation, UnservedUsersAreNotSplit) {
  const auto sc = test::fig1_scenario(3.0);
  const wlan::Association mc{{wlan::kNoAp, 0, wlan::kNoAp, 0, 0}};
  const auto rep = evaluate_dual(sc, mc);
  // u2: anchor a1, multicast a1 -> not split. u4: anchor a2, multicast a1 ->
  // split. u5: anchor a1, multicast a1 -> not split.
  EXPECT_EQ(rep.split_users, 1);
}

TEST(DualAssociation, MlaLowersMaxCombinedVsSsaMulticast) {
  // Multicast-side optimization still pays off when unicast anchoring is
  // fixed: the combined worst-AP airtime drops.
  util::Rng rng(211);
  util::RunningStat delta;
  for (int trial = 0; trial < 5; ++trial) {
    wlan::GeneratorParams gp;
    gp.n_aps = 40;
    gp.n_users = 160;
    gp.area_side_m = 500.0;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(gp, sub);
    util::Rng srng = rng.fork();
    const auto ssa = ssa_associate(sc, srng);
    const auto bla = centralized_bla(sc);
    const auto rep_ssa = evaluate_dual(sc, ssa.assoc);
    const auto rep_bla = evaluate_dual(sc, bla.assoc);
    delta.add(rep_ssa.max_combined - rep_bla.max_combined);
  }
  EXPECT_GT(delta.mean(), 0.0);
}

TEST(DualAssociation, OverloadDetection) {
  const auto sc = test::fig1_scenario(1.0);
  const wlan::Association mc{{0, 0, 0, 0, 0}};
  DualParams p;
  p.unicast_demand_per_user = 0.5;  // 3 anchors x 0.5 = 1.5 on a1
  const auto rep = evaluate_dual(sc, mc, p);
  EXPECT_EQ(rep.overloaded_aps, 1);
  EXPECT_GT(rep.max_combined, 1.0);
}

TEST(DualAssociation, RejectsBadInput) {
  const auto sc = test::fig1_scenario(1.0);
  EXPECT_THROW(evaluate_dual(sc, wlan::Association::none(3)), std::invalid_argument);
  DualParams p;
  p.unicast_demand_per_user = -1.0;
  EXPECT_THROW(evaluate_dual(sc, wlan::Association::none(5), p), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::assoc
