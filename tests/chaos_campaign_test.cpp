// Campaign-driver tests (chaos/campaign.hpp): the campaign must be a pure
// function of its config — the acceptance bar for `wmcast_cli chaos` is
// bit-reproducible findings at any thread count — and a healthy build must
// come back clean across every fault profile.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "wmcast/chaos/campaign.hpp"

namespace wmcast::chaos {
namespace {

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.seed = 77;
  cfg.scenarios = 6;  // one full cycle of the named profiles under "all"
  cfg.profile = "all";
  cfg.threads = 2;
  cfg.n_aps = 10;
  cfg.n_users = 30;
  cfg.n_sessions = 3;
  cfg.area_side_m = 300.0;
  cfg.trace_epochs = 5;
  return cfg;
}

TEST(CampaignTest, CleanAcrossAllProfilesOnAHealthyBuild) {
  const auto cfg = small_config();
  const auto res = run_campaign(cfg);

  EXPECT_TRUE(res.clean()) << campaign_to_json(cfg, res).dump(2);
  EXPECT_EQ(res.scenarios_run, cfg.scenarios);
  EXPECT_GT(res.checks_run, 0);
  EXPECT_EQ(res.checks_failed, 0);
  EXPECT_TRUE(res.findings.empty());
  // The malformed/mixed profiles probe the parsers: every corrupted document
  // must have been either parsed or cleanly rejected (probe_parser lets any
  // other outcome escape and fail the campaign).
  EXPECT_GT(res.parse_attempts, 0);
  EXPECT_LE(res.parse_rejected, res.parse_attempts);
  // The aggregate fault log proves faults were actually injected.
  EXPECT_GT(res.faults.events_dropped + res.faults.events_duplicated +
                res.faults.windows_reordered + res.faults.ap_flaps +
                res.faults.churn_bursts + res.faults.lines_corrupted,
            0u);
}

TEST(CampaignTest, IsAPureFunctionOfItsConfig) {
  const auto cfg = small_config();
  const auto a = run_campaign(cfg);
  const auto b = run_campaign(cfg);
  EXPECT_EQ(campaign_to_json(cfg, a).dump(2), campaign_to_json(cfg, b).dump(2));

  // The differential replay thread count is part of the *checks*, not the
  // fault schedule: campaigns at different --threads see identical faults.
  auto cfg8 = cfg;
  cfg8.threads = 8;
  const auto c = run_campaign(cfg8);
  EXPECT_EQ(c.faults.events_dropped, a.faults.events_dropped);
  EXPECT_EQ(c.faults.windows_reordered, a.faults.windows_reordered);
  EXPECT_EQ(c.checks_failed, a.checks_failed);
}

TEST(CampaignTest, ProgressStreamGetsOneLinePerScenario) {
  auto cfg = small_config();
  cfg.scenarios = 3;
  std::ostringstream progress;
  run_campaign(cfg, &progress);
  int lines = 0;
  for (const char ch : progress.str()) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, cfg.scenarios);
}

TEST(CampaignTest, RejectsInvalidConfig) {
  auto cfg = small_config();
  cfg.profile = "bogus";
  EXPECT_THROW(run_campaign(cfg), std::invalid_argument);

  cfg = small_config();
  cfg.scenarios = -1;
  EXPECT_THROW(run_campaign(cfg), std::invalid_argument);

  cfg = small_config();
  cfg.threads = 0;
  EXPECT_THROW(run_campaign(cfg), std::invalid_argument);
}

TEST(CampaignTest, JsonSummaryCarriesConfigAndCounts) {
  const auto cfg = small_config();
  const auto res = run_campaign(cfg);
  const auto j = campaign_to_json(cfg, res);
  const std::string text = j.dump(2);
  EXPECT_NE(text.find("\"scenarios_run\""), std::string::npos);
  EXPECT_NE(text.find("\"checks_run\""), std::string::npos);
  EXPECT_NE(text.find("\"faults\""), std::string::npos);
  EXPECT_NE(text.find("\"clean\": true"), std::string::npos);
}

}  // namespace
}  // namespace wmcast::chaos
