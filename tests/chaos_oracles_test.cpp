// Differential-oracle checks (chaos/oracles.hpp) on healthy inputs — every
// oracle pair must agree when nothing is wrong — plus the strict-weak-ordering
// regression for core::better_pick that the chaos harness originally flushed
// out (a rounded FP cross-product made the lazy-greedy heap comparator
// intransitive at exact gain/cost ratio ties, so solve order — and therefore
// the committed association — depended on heap layout and thread count).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "wmcast/chaos/fault.hpp"
#include "wmcast/chaos/oracles.hpp"
#include "wmcast/chaos/shrink.hpp"
#include "wmcast/core/solve.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/state.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::chaos {
namespace {

wlan::Scenario test_scenario(uint64_t seed = 3) {
  wlan::GeneratorParams gp;
  gp.n_aps = 12;
  gp.n_users = 40;
  gp.n_sessions = 3;
  gp.area_side_m = 350.0;
  util::Rng rng(seed);
  return wlan::generate_scenario(gp, rng);
}

ctrl::EventTrace churn_trace(const ctrl::NetworkState& initial, uint64_t seed) {
  ctrl::TraceParams tp;
  tp.epochs = 6;
  tp.move_fraction = 0.2;
  tp.walk_sigma_m = 30.0;
  tp.zap_fraction = 0.05;
  tp.leave_fraction = 0.05;
  tp.join_fraction = 0.05;
  tp.rate_change_prob = 0.2;
  util::Rng rng(seed);
  return ctrl::generate_churn_trace(initial, tp, rng);
}

ctrl::ControllerConfig oracle_config(uint64_t seed) {
  ctrl::ControllerConfig cfg;
  cfg.full_solver = "mla-c";
  cfg.seed = seed;
  // The bounded-degradation oracle compares against a cold solve of the
  // current state, which is only sound against a never-stale baseline.
  cfg.full_refresh_epochs = 1;
  return cfg;
}

std::string all_failures(const std::vector<OracleResult>& results) {
  return failures_to_text(results);
}

TEST(SolverEquivalenceTest, EngineAgreesWithReferencesOnGeneratedScenario) {
  const auto results = check_solver_equivalence(test_scenario());
  EXPECT_FALSE(results.empty());
  EXPECT_EQ(all_failures(results), "") << "solver oracles disagree";
}

TEST(ControllerInvariantsTest, HoldAfterEveryEpochOfACleanReplay) {
  const auto sc = test_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial, 19);

  ctrl::AssociationController c(sc, oracle_config(19));
  for (int ep = 0; ep < trace.n_epochs(); ++ep) {
    c.submit(trace.epochs[static_cast<size_t>(ep)]);
    c.drain();
    const auto inv = check_controller_invariants(c, ep + 1);
    EXPECT_EQ(all_failures(inv), "") << "epoch " << ep;
  }
  const auto tele = check_telemetry_conservation(c);
  EXPECT_EQ(all_failures(tele), "");
}

TEST(DifferentialReplayTest, CleanOnUnperturbedTrace) {
  const auto sc = test_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial, 23);

  const auto r = check_differential_replay(sc, trace, oracle_config(23), 4);
  EXPECT_FALSE(r.diverged);
  EXPECT_EQ(r.epochs_run, trace.n_epochs());
  EXPECT_EQ(all_failures(r.results), "");
}

TEST(DifferentialReplayTest, CleanUnderHeavyFaultInjection) {
  const auto sc = test_scenario(31);
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial, 31);

  FaultInjector inj(31, FaultProfile::named("heavy"));
  const auto perturbed = inj.perturb(trace, initial);

  const auto r = check_differential_replay(sc, perturbed, oracle_config(31), 4);
  EXPECT_FALSE(r.diverged);
  EXPECT_EQ(all_failures(r.results), "");
}

// k-connectivity oracles (DESIGN.md §15): the k=1 identity sweep must be
// clean on a healthy scenario, and the k=2 parallel differentials must agree
// even over a fault-perturbed trace.
TEST(KconnOracleTest, K1IdentitySweepCleanOnGeneratedScenario) {
  const auto results = check_kconn_k1_identity(test_scenario());
  EXPECT_EQ(results.size(), 5u) << "one verdict per k-capable solver";
  EXPECT_EQ(all_failures(results), "");
}

TEST(KconnOracleTest, ParallelDifferentialsCleanUnderFaultInjection) {
  const auto sc = test_scenario(37);
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto trace = churn_trace(initial, 37);
  FaultInjector inj(37, FaultProfile::named("heavy"));
  const auto perturbed = inj.perturb(trace, initial);

  const auto results = check_kconn_parallel(sc, perturbed, oracle_config(37), 4);
  EXPECT_EQ(all_failures(results), "");
  bool sharded = false, threads = false;
  for (const auto& r : results) {
    if (r.check == "kconn.sharded_vs_joint") sharded = true;
    if (r.check == "kconn.threads_equivalence") threads = true;
  }
  EXPECT_TRUE(sharded);
  EXPECT_TRUE(threads);
}

// The committed k-connectivity repro must keep replaying clean through the
// run_repro kconn.* dispatch — exactly how CI replays the corpus.
TEST(KconnOracleTest, CommittedThreadsReproStaysFixed) {
  const std::filesystem::path path = std::filesystem::path(WMCAST_TEST_DATA_DIR) /
                                     "repros" / "repro_kconn_threads.repro";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  const Repro r = load_repro(path.string());
  EXPECT_EQ(r.check, "kconn.threads_equivalence");
  EXPECT_EQ(r.threads, 4);
  const auto res = run_repro(r);
  EXPECT_EQ(failures_to_text(res.results), "");
  EXPECT_EQ(res.epochs_run, r.trace.n_epochs());
  bool saw_threads_check = false;
  for (const auto& o : res.results) {
    if (o.check == "kconn.threads_equivalence") saw_threads_check = true;
  }
  EXPECT_TRUE(saw_threads_check);
}

TEST(FailuresToTextTest, FormatsOnlyFailures) {
  std::vector<OracleResult> results;
  results.push_back({"a.pass", true, ""});
  EXPECT_EQ(failures_to_text(results), "");
  results.push_back({"b.fail", false, "left != right"});
  const std::string text = failures_to_text(results);
  EXPECT_NE(text.find("b.fail"), std::string::npos);
  EXPECT_NE(text.find("left != right"), std::string::npos);
  EXPECT_EQ(text.find("a.pass"), std::string::npos);
}

// --- core::better_pick strict-weak-ordering regression -------------------
//
// The failing family found by the chaos campaign: three candidate sets whose
// gain/cost ratios are *exactly* equal as rationals (gain k, cost k*c), but
// whose rounded double cross-products gain_a*cost_b disagree at different k.
// Pre-fix, better_pick reported strict preferences among them that formed a
// cycle — undefined behavior for std::make_heap/pop_heap, and the root cause
// of a threads=1 vs threads=4 association divergence (the committed repro in
// tests/repros/repro_thread_determinism.repro). Post-fix the comparison is an
// exact integer cross-product, so exact ties fall through to the set-id
// tie-break for every magnitude.

TEST(BetterPickTest, ExactRatioTiesBreakByIdAtEveryMagnitude) {
  const double c = 0x1.79f2f25bcc489p-7;  // the cost unit from the repro
  struct Item {
    int32_t gain;
    double cost;
    int id;
  };
  // Power-of-two multiples keep gain*c exact in FP, so these ratios are
  // *exactly* equal and must all fall through to the set-id tie-break.
  const std::vector<Item> tied = {{4, 4 * c, 0}, {2, 2 * c, 1}, {1, c, 2}};
  for (const auto& a : tied) {
    for (const auto& b : tied) {
      EXPECT_EQ(core::better_pick(a.gain, a.cost, a.id, b.gain, b.cost, b.id),
                a.id < b.id)
          << "gain " << a.gain << " vs " << b.gain
          << " must be an exact tie resolved by id";
    }
  }
  // Exact ties survive large magnitude spreads (2^20 * c is exact in FP).
  const double big = c * 1048576.0;
  EXPECT_TRUE(core::better_pick(1 << 20, big, 0, 1, c, 1));
  EXPECT_FALSE(core::better_pick(1, c, 1, 1 << 20, big, 0));

  // A non-power-of-two multiple rounds (3*c != exactly 3·c), so the pair is
  // NOT a tie — the exact comparator must order it strictly and
  // asymmetrically, whichever way the rounding went.
  const bool ab = core::better_pick(3, 3 * c, 0, 1, c, 1);
  const bool ba = core::better_pick(1, c, 1, 3, 3 * c, 0);
  EXPECT_NE(ab, ba);
}

TEST(BetterPickTest, IsAStrictWeakOrderingOnTheReproFamily) {
  // Candidates (g, g·c) for g = 1..12 are near-ties whose rounded costs
  // differ from the exact product by less than half an ulp each way. The
  // pre-fix rounded cross-product comparator reported 48 transitivity
  // violations over this family (e.g. (3)<(4)<(5) but not (3)<(5)); the
  // exact comparator must report none.
  const double c = 0x1.79f2f25bcc489p-7;
  struct Item {
    int32_t gain;
    double cost;
    int id;
  };
  std::vector<Item> items;
  int id = 0;
  for (int32_t g = 1; g <= 12; ++g) {
    items.push_back({g, g * c, id++});
  }
  const auto less = [](const Item& a, const Item& b) {
    return core::better_pick(a.gain, a.cost, a.id, b.gain, b.cost, b.id);
  };
  for (const auto& a : items) {
    EXPECT_FALSE(less(a, a)) << "irreflexivity";
    for (const auto& b : items) {
      if (less(a, b)) {
        EXPECT_FALSE(less(b, a)) << "asymmetry";
      }
      for (const auto& x : items) {
        if (less(a, b) && less(b, x)) {
          EXPECT_TRUE(less(a, x)) << "transitivity: " << a.id << " < " << b.id
                                  << " < " << x.id;
        }
      }
    }
  }
}

TEST(BetterPickTest, PositiveGainAlwaysBeatsNonPositive) {
  EXPECT_TRUE(core::better_pick(1, 5.0, 9, 0, 1.0, 0));
  EXPECT_FALSE(core::better_pick(0, 1.0, 0, 1, 5.0, 9));
  // Both non-positive: pure id tie-break.
  EXPECT_TRUE(core::better_pick(0, 1.0, 0, 0, 2.0, 1));
  EXPECT_FALSE(core::better_pick(0, 1.0, 1, 0, 2.0, 0));
}

}  // namespace
}  // namespace wmcast::chaos
