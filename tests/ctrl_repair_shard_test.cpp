// Sharded incremental repair (ctrl/repair_shard.hpp) and the wlan::LoadModel
// it runs on: partition edge cases (empty dirty set, all-dirty, one
// mega-component), the bitwise thread-invariance contract, the model's
// exactness against ap_load_for_members, and the signaling-cap rollback on a
// sharded merged result.
#include "wmcast/ctrl/repair_shard.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "wmcast/assoc/registry.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/thread_pool.hpp"
#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/load_model.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::ctrl {
namespace {

wlan::Scenario random_scenario(uint64_t seed, int n_aps = 12, int n_users = 48,
                               double area = 400.0) {
  util::Rng rng(seed);
  wlan::GeneratorParams gp;
  gp.n_aps = n_aps;
  gp.n_users = n_users;
  gp.n_sessions = 3;
  gp.area_side_m = area;
  return wlan::generate_scenario(gp, rng);
}

/// A feasible starting association plus its members-by-AP mirror.
struct Carried {
  std::vector<int> user_ap;
  std::vector<std::vector<int>> members;
};

Carried carried_from_solve(const wlan::Scenario& sc, uint64_t seed) {
  util::Rng rng(seed);
  const auto sol = assoc::solve_by_name("mla-c", sc, rng, {});
  Carried c;
  c.user_ap = sol.assoc.user_ap;
  c.members.resize(static_cast<size_t>(sc.n_aps()));
  for (int u = 0; u < sc.n_users(); ++u) {
    const int a = c.user_ap[static_cast<size_t>(u)];
    if (a != wlan::kNoAp) c.members[static_cast<size_t>(a)].push_back(u);
  }
  return c;
}

void expect_consistent(const wlan::Scenario& sc, const Carried& c) {
  std::vector<int> from_members(c.user_ap.size(), wlan::kNoAp);
  for (int a = 0; a < sc.n_aps(); ++a) {
    for (const int u : c.members[static_cast<size_t>(a)]) {
      EXPECT_EQ(from_members[static_cast<size_t>(u)], wlan::kNoAp)
          << "user " << u << " listed under two APs";
      from_members[static_cast<size_t>(u)] = a;
    }
  }
  EXPECT_EQ(from_members, c.user_ap);
}

TEST(LoadModel, MatchesApLoadForMembersExactly) {
  const auto sc = random_scenario(11);
  const auto c = carried_from_solve(sc, 12);
  for (const bool multi_rate : {true, false}) {
    wlan::LoadModel model;
    model.reset(sc, multi_rate);
    model.begin_scope();
    for (int a = 0; a < sc.n_aps(); ++a) {
      for (const int u : c.members[static_cast<size_t>(a)]) {
        model.add(a, sc.user_session(u), sc.link_rate(a, u));
      }
    }
    for (int a = 0; a < sc.n_aps(); ++a) {
      const double expected = wlan::ap_load_for_members(
          sc, a, c.members[static_cast<size_t>(a)], multi_rate);
      EXPECT_EQ(model.load(a), expected) << "ap " << a << " multi_rate " << multi_rate;
    }
  }
}

TEST(LoadModel, ProbesMatchPhysicalAddRemove) {
  const auto sc = random_scenario(21);
  const auto c = carried_from_solve(sc, 22);
  wlan::LoadModel model;
  model.reset(sc, /*multi_rate=*/true);
  model.begin_scope();
  for (int a = 0; a < sc.n_aps(); ++a) {
    for (const int u : c.members[static_cast<size_t>(a)])
      model.add(a, sc.user_session(u), sc.link_rate(a, u));
  }
  for (int u = 0; u < sc.n_users(); ++u) {
    const int cur = c.user_ap[static_cast<size_t>(u)];
    const int s = sc.user_session(u);
    const wlan::IndexSpan heard = sc.aps_of_user(u);
    const double* rates = sc.rates_of_user(u);
    for (size_t i = 0; i < heard.size(); ++i) {
      const int a = heard[i];
      if (a == cur) {
        const double probe = model.load_without(a, s, rates[i]);
        const double physical = model.remove(a, s, rates[i]);
        EXPECT_EQ(probe, physical);
        model.add(a, s, rates[i]);
      } else {
        const double probe = model.load_with(a, s, rates[i]);
        const double physical = model.add(a, s, rates[i]);
        EXPECT_EQ(probe, physical);
        model.remove(a, s, rates[i]);
      }
    }
  }
}

TEST(RepairShard, EmptyDirtySetIsNoOp) {
  const auto sc = random_scenario(31);
  auto c = carried_from_solve(sc, 32);
  const auto before = c;

  util::ThreadPool pool(2);
  std::vector<RepairLaneWorkspace> lanes;
  RepairShardStats stats;
  repair_sharded(sc, c.user_ap, c.members, /*movable_rows=*/{}, RepairShardParams{},
                 pool, lanes, &stats);

  EXPECT_EQ(c.user_ap, before.user_ap);
  EXPECT_EQ(c.members, before.members);
  EXPECT_EQ(stats.shards, 0);
  EXPECT_EQ(stats.movers, 0);
}

TEST(RepairShard, AllDirtyIsThreadInvariant) {
  // Every user movable degenerates the repair into a full greedy re-place;
  // the result must still be bitwise identical at any pool size, and the
  // stats (partition fixed before dispatch) must not change either.
  const auto sc = random_scenario(41, /*n_aps=*/16, /*n_users=*/80);
  const auto base = carried_from_solve(sc, 42);
  std::vector<int> all;
  for (int u = 0; u < sc.n_users(); ++u) all.push_back(u);

  std::vector<Carried> results;
  std::vector<RepairShardStats> stats;
  for (const int threads : {1, 4}) {
    auto c = base;
    util::ThreadPool pool(threads);
    std::vector<RepairLaneWorkspace> lanes;
    RepairShardStats st;
    repair_sharded(sc, c.user_ap, c.members, all, RepairShardParams{}, pool, lanes, &st);
    expect_consistent(sc, c);
    results.push_back(std::move(c));
    stats.push_back(st);
  }
  EXPECT_EQ(results[0].user_ap, results[1].user_ap);
  EXPECT_EQ(results[0].members, results[1].members);
  EXPECT_EQ(stats[0].shards, stats[1].shards);
  EXPECT_EQ(stats[0].movers, stats[1].movers);
  EXPECT_EQ(stats[0].imbalance, stats[1].imbalance);
  EXPECT_EQ(stats[0].movers, sc.n_users());

  // Every placed user must be on an AP it actually hears.
  for (int u = 0; u < sc.n_users(); ++u) {
    const int a = results[0].user_ap[static_cast<size_t>(u)];
    if (a == wlan::kNoAp) continue;
    EXPECT_GT(sc.link_rate(a, u), 0.0) << "user " << u << " placed out of range";
  }
}

TEST(RepairShard, DenseScenarioCollapsesToOneMegaComponent) {
  // A tiny area makes every user hear every AP: the union-find closure must
  // fuse the whole network into a single repair task spanning all APs.
  const auto sc = random_scenario(51, /*n_aps=*/8, /*n_users=*/32, /*area=*/60.0);
  for (int u = 0; u < sc.n_users(); ++u) {
    ASSERT_EQ(sc.aps_of_user(u).size(), static_cast<size_t>(sc.n_aps()))
        << "scenario not dense enough for the test premise";
  }
  auto c = carried_from_solve(sc, 52);
  std::vector<int> all;
  for (int u = 0; u < sc.n_users(); ++u) all.push_back(u);

  util::ThreadPool pool(4);
  std::vector<RepairLaneWorkspace> lanes;
  RepairShardStats stats;
  repair_sharded(sc, c.user_ap, c.members, all, RepairShardParams{}, pool, lanes, &stats);
  expect_consistent(sc, c);
  EXPECT_EQ(stats.shards, 1);
  EXPECT_EQ(stats.movers, sc.n_users());
  EXPECT_EQ(stats.imbalance, 1.0);
}

TEST(RepairShard, ControllerThreadInvarianceOverChurn) {
  // End-to-end: the controller's sharded repair must commit identical
  // associations at threads=1 and threads=4 across a churn trace, and the
  // repair telemetry (thread-invariant by contract) must match too.
  const auto sc = random_scenario(61, /*n_aps=*/16, /*n_users=*/80);
  const auto initial = NetworkState::from_scenario(sc);
  util::Rng rng(62);
  TraceParams tp;
  tp.epochs = 6;
  tp.move_fraction = 0.2;
  tp.walk_sigma_m = 40.0;
  const auto trace = generate_churn_trace(initial, tp, rng);

  ControllerConfig cfg1;
  cfg1.threads = 1;
  ControllerConfig cfg4;
  cfg4.threads = 4;
  AssociationController a(sc, cfg1);
  AssociationController b(sc, cfg4);
  for (const auto& epoch : trace.epochs) {
    a.submit(epoch);
    b.submit(epoch);
    a.drain();
    b.drain();
    ASSERT_EQ(a.slot_ap(), b.slot_ap());
  }
  EXPECT_EQ(a.telemetry().engine_parallel_repair_calls.value(),
            b.telemetry().engine_parallel_repair_calls.value());
  EXPECT_EQ(a.telemetry().engine_parallel_repair_shards.value(),
            b.telemetry().engine_parallel_repair_shards.value());
  EXPECT_EQ(a.telemetry().engine_parallel_repair_imbalance.value(),
            b.telemetry().engine_parallel_repair_imbalance.value());
  EXPECT_GT(a.telemetry().engine_parallel_repair_calls.value(), 0u);
}

TEST(RepairShard, SignalingCapRollsBackMergedResult) {
  // The rollback decision is evaluated on the merged sharded result: with the
  // cap at zero a mobility burst that would trigger voluntary handoffs must
  // roll back to the carried association, identically at any thread count.
  const auto sc = random_scenario(71, /*n_aps=*/16, /*n_users=*/80);
  TraceParams tp;
  tp.epochs = 4;
  tp.move_fraction = 0.5;
  tp.walk_sigma_m = 80.0;
  util::Rng rng(72);
  const auto trace = generate_churn_trace(NetworkState::from_scenario(sc), tp, rng);

  uint64_t rollbacks = 0;
  std::vector<std::vector<int>> committed;
  for (const int threads : {1, 4}) {
    ControllerConfig cfg;
    cfg.threads = threads;
    cfg.shard_repair = true;
    cfg.max_reassoc_per_epoch = 0;
    AssociationController c(sc, cfg);
    for (const auto& epoch : trace.epochs) {
      c.submit(epoch);
      c.drain();
    }
    if (threads == 1) rollbacks = c.telemetry().rollbacks.value();
    EXPECT_EQ(c.telemetry().rollbacks.value(), rollbacks);
    committed.push_back(c.slot_ap());
  }
  EXPECT_EQ(committed[0], committed[1]);
  EXPECT_GT(rollbacks, 0u) << "trace never tripped the cap; the test premise failed";
}

}  // namespace
}  // namespace wmcast::ctrl
