// The paper's polynomial special cases (one multicast session) must be
// exactly optimal — cross-checked against the exact B&B solvers.
#include "wmcast/assoc/single_session.hpp"

#include <gtest/gtest.h>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/exact/exact_bla.hpp"
#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

wlan::Scenario one_session_scenario(uint64_t seed, double budget, double rate = 1.0) {
  wlan::GeneratorParams p;
  p.n_aps = 8;
  p.n_users = 25;
  p.n_sessions = 1;
  p.area_side_m = 450.0;
  p.load_budget = budget;
  p.session_rate_mbps = rate;
  util::Rng rng(seed);
  return wlan::generate_scenario(p, rng);
}

TEST(SingleSessionMnu, MatchesExactOptimum) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const auto sc = one_session_scenario(seed, /*budget=*/0.05);
    const auto poly = single_session_mnu(sc);
    const auto sys = setcover::build_set_system(sc);
    const auto opt = exact::exact_max_coverage_uniform(sys, sc.load_budget());
    ASSERT_EQ(opt.status, exact::BbStatus::kOptimal);
    EXPECT_EQ(poly.loads.satisfied_users, opt.covered) << "seed " << seed;
    EXPECT_TRUE(poly.loads.within_budget());
  }
}

TEST(SingleSessionMnu, ServesEveryUserAboveTheRateFloor) {
  const auto sc = one_session_scenario(9, 0.08);
  const auto poly = single_session_mnu(sc);
  const double floor_rate = sc.session_rate(0) / sc.load_budget();  // 12.5 Mbps
  for (int u = 0; u < sc.n_users(); ++u) {
    bool reachable = false;
    for (const int a : sc.aps_of_user(u)) {
      if (sc.link_rate(a, u) >= floor_rate) reachable = true;
    }
    EXPECT_EQ(poly.assoc.ap_of(u) != wlan::kNoAp, reachable) << "user " << u;
  }
}

TEST(SingleSessionBla, MatchesExactOptimum) {
  for (uint64_t seed = 11; seed <= 16; ++seed) {
    const auto sc = one_session_scenario(seed, 0.9);
    const auto poly = single_session_bla(sc);
    const auto sys = setcover::build_set_system(sc);
    const auto opt = exact::exact_min_max_cover(sys);
    ASSERT_EQ(opt.status, exact::BbStatus::kOptimal);
    EXPECT_NEAR(poly.loads.max_load, opt.max_group_cost, 1e-9) << "seed " << seed;
    EXPECT_EQ(poly.loads.satisfied_users, sc.n_coverable_users());
    EXPECT_TRUE(poly.converged);
  }
}

TEST(SingleSessionBla, BottleneckUserDeterminesTheOptimum) {
  // Hand-built: u0 hears a0 at 6 (bottleneck), u1 hears both APs at 54.
  const std::vector<std::vector<double>> link = {{6, 54}, {0, 54}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 0}, {1.0}, 0.9);
  const auto poly = single_session_bla(sc);
  EXPECT_NEAR(poly.loads.max_load, 1.0 / 6.0, 1e-12);
  EXPECT_EQ(poly.assoc.ap_of(0), 0);
}

TEST(SingleSessionBla, InfeasibleWhenBottleneckExceedsOnePeriod) {
  // Stream faster than the only available rate: load > 1.
  const std::vector<std::vector<double>> link = {{2.0}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0}, {3.0}, 1.0);
  const auto poly = single_session_bla(sc);
  EXPECT_FALSE(poly.converged);
  EXPECT_GT(poly.loads.max_load, 1.0);
}

TEST(SingleSession, PolynomialBeatsOrMatchesGreedyHeuristics) {
  // Sanity: on single-session instances the exact special case is at least
  // as good as the general-purpose greedy machinery.
  const auto sc = one_session_scenario(21, 0.06);
  const auto poly = single_session_mnu(sc);
  const auto greedy = centralized_mnu(sc);
  EXPECT_GE(poly.loads.satisfied_users, greedy.loads.satisfied_users);

  const auto sc2 = one_session_scenario(22, 0.9);
  const auto poly_bla = single_session_bla(sc2);
  const auto greedy_bla = centralized_bla(sc2);
  EXPECT_LE(poly_bla.loads.max_load, greedy_bla.loads.max_load + 1e-9);
}

TEST(SingleSession, RejectsMultiSessionScenarios) {
  wlan::GeneratorParams p;
  p.n_aps = 4;
  p.n_users = 8;
  p.n_sessions = 2;
  util::Rng rng(23);
  const auto sc = wlan::generate_scenario(p, rng);
  EXPECT_THROW(single_session_mnu(sc), std::invalid_argument);
  EXPECT_THROW(single_session_bla(sc), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::assoc
