#include "wmcast/ctrl/controller.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "wmcast/assoc/registry.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::ctrl {
namespace {

wlan::Scenario two_ap_scenario(std::vector<wlan::Point> users, std::vector<int> sessions,
                               std::vector<double> rates = {1.0, 1.0},
                               double budget = 0.9) {
  const std::vector<wlan::Point> aps = {{0, 0}, {150, 0}};
  return wlan::Scenario::from_geometry(aps, std::move(users), std::move(sessions),
                                       std::move(rates),
                                       wlan::RateTable::ieee80211a(), budget);
}

TEST(Controller, QuiescentEpochChangesNothing) {
  AssociationController c(two_ap_scenario({{10, 0}, {120, 0}}, {0, 1}));
  const auto before = c.slot_ap();
  const auto rep = c.drain();
  EXPECT_EQ(rep.events, 0);
  EXPECT_EQ(rep.dirty_users, 0);
  EXPECT_EQ(rep.reassociations, 0);
  EXPECT_EQ(c.slot_ap(), before);
}

TEST(Controller, JoinPlusLeaveCoalescesToNoOp) {
  AssociationController c(two_ap_scenario({{10, 0}, {120, 0}}, {0, 1}));
  const auto before = c.slot_ap();
  c.submit({Event::join(2, {20, 0}, 0), Event::leave(2)});
  const auto rep = c.drain();
  EXPECT_EQ(rep.events_applied, 2);
  EXPECT_EQ(rep.events_coalesced, 2) << "join+leave of the same user in one batch";
  EXPECT_EQ(rep.dirty_users, 0);
  EXPECT_EQ(rep.reassociations, 0);
  EXPECT_EQ(c.telemetry().events_coalesced.value(), 2u);
  // The slot space grew but the newcomer is invisible to the optimizer.
  EXPECT_EQ(c.state().n_slots(), 3);
  EXPECT_FALSE(c.state().slot(2).present);
  ASSERT_EQ(c.slot_ap().size(), 3u);
  EXPECT_EQ(c.slot_ap()[0], before[0]);
  EXPECT_EQ(c.slot_ap()[1], before[1]);
  EXPECT_EQ(c.slot_ap()[2], wlan::kNoAp);
}

TEST(Controller, InvalidEventsAreCountedNotFatal) {
  AssociationController c(two_ap_scenario({{10, 0}, {120, 0}}, {0, 1}));
  c.submit({Event::leave(99), Event::move(0, {11, 0})});
  const auto rep = c.drain();
  EXPECT_EQ(rep.events_invalid, 1);
  EXPECT_EQ(rep.events_applied, 1);
}

TEST(Controller, NonFiniteEventsAreCountedNotFatal) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  AssociationController c(two_ap_scenario({{10, 0}, {120, 0}}, {0, 1}));
  c.submit({Event::join(2, {nan, 0}, 0), Event::move(0, {0, inf}),
            Event::rate_change(0, nan), Event::move(0, {11, 0})});
  const auto rep = c.drain();
  EXPECT_EQ(rep.events_invalid, 3);
  EXPECT_EQ(rep.events_applied, 1);
  EXPECT_EQ(c.state().n_slots(), 2) << "the corrupted join must not take a slot";
}

TEST(Controller, BatchHookSeesAndMutatesEachDrain) {
  ControllerConfig cfg;
  std::vector<int> hook_epochs;
  cfg.batch_hook = [&](int epoch, std::vector<Event>& batch) {
    hook_epochs.push_back(epoch);
    batch.clear();  // drop everything: the epoch must be quiescent
  };
  AssociationController c(two_ap_scenario({{10, 0}, {120, 0}}, {0, 1}), cfg);
  c.submit({Event::join(2, {20, 0}, 0)});
  const auto rep = c.drain();
  EXPECT_EQ(rep.events, 0) << "hook dropped the batch before accounting";
  EXPECT_EQ(rep.events_applied, 0);
  EXPECT_EQ(c.state().n_slots(), 2);
  c.drain();
  EXPECT_EQ(hook_epochs, (std::vector<int>{0, 1}));
}

TEST(Controller, SignalingCapRollsBackVoluntaryMoves) {
  // u0 starts on AP 0 (10 m, 54 Mbps), then walks to 140 m from AP 0 /
  // 10 m from AP 1. AP 0 still reaches it (12 Mbps), so moving to AP 1 is
  // a *voluntary* improvement — exactly what max_reassoc_per_epoch = 0
  // forbids.
  ControllerConfig capped;
  capped.max_reassoc_per_epoch = 0;
  AssociationController c(two_ap_scenario({{10, 0}}, {0}, {1.0}), capped);
  ASSERT_EQ(c.slot_ap()[0], 0);

  c.submit(Event::move(0, {140, 0}));
  const auto rep = c.drain();
  EXPECT_TRUE(rep.rolled_back);
  EXPECT_EQ(rep.voluntary_reassociations, 0);
  EXPECT_EQ(c.slot_ap()[0], 0) << "rollback keeps the still-valid association";
  EXPECT_EQ(c.telemetry().rollbacks.value(), 1u);

  // Without the cap the same epoch hands off to the closer AP.
  AssociationController free(two_ap_scenario({{10, 0}}, {0}, {1.0}));
  free.submit(Event::move(0, {140, 0}));
  const auto rep2 = free.drain();
  EXPECT_FALSE(rep2.rolled_back);
  EXPECT_EQ(free.slot_ap()[0], 1);
  EXPECT_EQ(rep2.handoffs, 1);
  EXPECT_EQ(rep2.voluntary_reassociations, 1);
}

TEST(Controller, ForcedRepairSurvivesTheCap) {
  // The cap limits *voluntary* churn only: a user whose AP went out of range
  // must still be re-placed.
  ControllerConfig capped;
  capped.max_reassoc_per_epoch = 0;
  AssociationController c(two_ap_scenario({{10, 0}}, {0}, {1.0}), capped);
  c.submit(Event::move(0, {260, 0}));  // 260 m from AP 0: forced off it
  const auto rep = c.drain();
  EXPECT_EQ(rep.forced_reassociations, 1);
  EXPECT_EQ(c.slot_ap()[0], 1);
}

TEST(Controller, AdmissionControlRejectsOverBudgetJoins) {
  // One AP. Session 0 streams 10 Mbps; u0 at 100 m anchors the group at
  // 18 Mbps (load 0.56 of a 0.6 budget). A newcomer at 190 m would drag the
  // group to 6 Mbps (load 1.67) — no AP can absorb it, so the join is refused.
  const auto sc = wlan::Scenario::from_geometry(
      {{0, 0}}, {{100, 0}}, {0}, {10.0}, wlan::RateTable::ieee80211a(),
      /*load_budget=*/0.6);
  AssociationController c(sc);
  c.submit(Event::join(1, {190, 0}, 0));
  const auto rep = c.drain();
  EXPECT_EQ(rep.rejected_joins, 1);
  EXPECT_EQ(c.telemetry().joins_rejected.value(), 1u);
  EXPECT_TRUE(c.state().slot(1).present);
  EXPECT_FALSE(c.state().slot(1).subscribed) << "refused users stay unsubscribed";

  // A newcomer inside the current bottleneck's rate step adds zero marginal
  // load and is admitted.
  c.submit(Event::join(2, {50, 0}, 0));
  const auto rep2 = c.drain();
  EXPECT_EQ(rep2.rejected_joins, 0);
  EXPECT_EQ(c.telemetry().joins_admitted.value(), 1u);
  EXPECT_TRUE(c.state().slot(2).wants_service());
}

TEST(Controller, AdmissionHookOverridesBuiltInGate) {
  ControllerConfig cfg;
  cfg.admission_hook = [](const JoinRequest& req, const std::vector<double>&,
                          const NetworkState&) { return req.session == 0; };
  AssociationController c(two_ap_scenario({{10, 0}, {120, 0}}, {0, 1}), cfg);
  c.submit({Event::join(2, {20, 0}, 0), Event::join(3, {30, 0}, 1)});
  const auto rep = c.drain();
  EXPECT_EQ(rep.rejected_joins, 1);
  EXPECT_TRUE(c.state().slot(2).subscribed);
  EXPECT_FALSE(c.state().slot(3).subscribed);
}

// Property: replaying a full churn trace with a per-epoch baseline refresh
// keeps the controller within the degradation threshold of a cold full
// re-solve at every epoch — the invariant the fallback ladder exists to
// enforce.
TEST(Controller, ReplayStaysWithinDegradationThresholdOfColdSolve) {
  wlan::GeneratorParams p;
  p.n_aps = 25;
  p.n_users = 80;
  p.n_sessions = 4;
  p.area_side_m = 500.0;
  util::Rng rng(11);
  const auto sc = wlan::generate_scenario(p, rng);

  ControllerConfig cfg;
  cfg.full_refresh_epochs = 1;  // fresh baseline every epoch
  cfg.seed = 12;
  AssociationController c(sc, cfg);

  TraceParams tp;
  tp.epochs = 8;
  tp.move_fraction = 0.15;
  tp.walk_sigma_m = 25.0;
  tp.zap_fraction = 0.05;
  tp.leave_fraction = 0.02;
  tp.join_fraction = 0.02;
  util::Rng trace_rng(13);
  const auto trace = generate_churn_trace(c.state(), tp, trace_rng);

  for (const auto& batch : trace.epochs) {
    c.submit(batch);
    const auto rep = c.drain();
    ASSERT_GT(rep.baseline_load, 0.0);
    EXPECT_LE(rep.total_load,
              rep.baseline_load * (1.0 + cfg.degradation_threshold) + 1e-9)
        << "epoch " << rep.epoch << " drifted past the degradation threshold";
  }
  EXPECT_EQ(c.epochs(), tp.epochs);
}

}  // namespace
}  // namespace wmcast::ctrl
