#include "wmcast/assoc/registry.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

TEST(Registry, KnowsElevenAlgorithms) {
  EXPECT_EQ(algorithm_names().size(), 11u);
  for (const auto& name : algorithm_names()) {
    EXPECT_TRUE(is_algorithm(name)) << name;
  }
  EXPECT_FALSE(is_algorithm("bogus"));
  EXPECT_FALSE(is_algorithm(""));
  EXPECT_FALSE(is_algorithm("MLA-C"));  // names are lowercase
}

TEST(Registry, EveryAlgorithmRunsOnAMultiSessionScenario) {
  util::Rng gen(233);
  wlan::GeneratorParams p;
  p.n_aps = 10;
  p.n_users = 30;
  p.n_sessions = 3;
  p.area_side_m = 400.0;
  const auto sc = wlan::generate_scenario(p, gen);
  for (const auto& name : algorithm_names()) {
    if (name == "mnu-1session" || name == "bla-1session") {
      util::Rng rng(1);
      EXPECT_THROW(solve_by_name(name, sc, rng), std::invalid_argument) << name;
      continue;
    }
    util::Rng rng(1);
    const auto sol = solve_by_name(name, sc, rng);
    EXPECT_FALSE(sol.algorithm.empty()) << name;
    EXPECT_NO_THROW(wlan::compute_loads(sc, sol.assoc)) << name;
  }
}

TEST(Registry, SingleSessionSpecializationsRun) {
  util::Rng gen(239);
  wlan::GeneratorParams p;
  p.n_aps = 8;
  p.n_users = 20;
  p.n_sessions = 1;
  p.area_side_m = 350.0;
  const auto sc = wlan::generate_scenario(p, gen);
  util::Rng rng(1);
  EXPECT_EQ(solve_by_name("mnu-1session", sc, rng).algorithm, "MNU-1session");
  EXPECT_EQ(solve_by_name("bla-1session", sc, rng).algorithm, "BLA-1session");
}

TEST(Registry, MatchesDirectCalls) {
  const auto sc = test::fig1_scenario(1.0);
  util::Rng r1(7);
  const auto via_registry = solve_by_name("mla-c", sc, r1);
  EXPECT_NEAR(via_registry.loads.total_load, 7.0 / 12.0, 1e-9);
  EXPECT_EQ(via_registry.algorithm, "MLA-C");
}

TEST(Registry, UnknownNameThrows) {
  const auto sc = test::fig1_scenario(1.0);
  util::Rng rng(1);
  EXPECT_THROW(solve_by_name("nope", sc, rng), std::invalid_argument);
}

TEST(Registry, BasicRateOptionPropagates) {
  const auto sc = test::fig1_scenario(1.0);
  util::Rng rng(1);
  SolveOptions basic;
  basic.multi_rate = false;
  const auto sol = solve_by_name("mla-c", sc, rng, basic);
  // Basic-rate MLA on Fig. 1 costs 2/3 (see centralized tests).
  EXPECT_NEAR(sol.loads.total_load, 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace wmcast::assoc
