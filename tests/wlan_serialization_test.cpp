#include "wmcast/wlan/serialization.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "test_fixtures.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::wlan {
namespace {

void expect_equivalent(const Scenario& a, const Scenario& b) {
  ASSERT_EQ(a.n_aps(), b.n_aps());
  ASSERT_EQ(a.n_users(), b.n_users());
  ASSERT_EQ(a.n_sessions(), b.n_sessions());
  EXPECT_DOUBLE_EQ(a.load_budget(), b.load_budget());
  for (int s = 0; s < a.n_sessions(); ++s) {
    EXPECT_DOUBLE_EQ(a.session_rate(s), b.session_rate(s));
  }
  for (int u = 0; u < a.n_users(); ++u) {
    EXPECT_EQ(a.user_session(u), b.user_session(u));
  }
  for (int ap = 0; ap < a.n_aps(); ++ap) {
    for (int u = 0; u < a.n_users(); ++u) {
      EXPECT_DOUBLE_EQ(a.link_rate(ap, u), b.link_rate(ap, u)) << ap << "," << u;
    }
  }
}

TEST(Serialization, ExplicitScenarioRoundTrips) {
  const auto sc = test::fig1_scenario(3.0);
  const auto restored = from_text(to_text(sc));
  expect_equivalent(sc, restored);
  EXPECT_FALSE(restored.has_geometry());
}

TEST(Serialization, GeometricScenarioRoundTrips) {
  util::Rng rng(41);
  GeneratorParams p;
  p.n_aps = 12;
  p.n_users = 30;
  p.n_sessions = 3;
  const auto sc = generate_scenario(p, rng);
  const auto restored = from_text(to_text(sc));
  expect_equivalent(sc, restored);
  EXPECT_TRUE(restored.has_geometry());
  // Positions restored exactly (printed at full precision).
  for (int u = 0; u < sc.n_users(); ++u) {
    EXPECT_EQ(sc.user_positions()[static_cast<size_t>(u)],
              restored.user_positions()[static_cast<size_t>(u)]);
  }
}

TEST(Serialization, WritesV2WithSparseExplicitRows) {
  const auto sc = test::fig1_scenario(3.0);
  const std::string text = to_text(sc);
  EXPECT_NE(text.find("wmcast-scenario v2"), std::string::npos);
  EXPECT_NE(text.find("sparse_links"), std::string::npos);
  EXPECT_EQ(text.find("link_rates"), std::string::npos);
}

TEST(Serialization, V1DenseExplicitStillLoads) {
  // Read-compat: scenarios saved before the sparse format (dense [ap][user]
  // matrix under "link_rates") must keep loading to the same instance.
  const auto sc = test::fig1_scenario(3.0);
  std::ostringstream v1;
  v1.precision(17);
  v1 << "wmcast-scenario v1\n";
  v1 << "budget " << sc.load_budget() << "\n";
  v1 << "sessions " << sc.n_sessions() << "\n";
  v1 << "session_rates";
  for (int s = 0; s < sc.n_sessions(); ++s) v1 << ' ' << sc.session_rate(s);
  v1 << "\nusers " << sc.n_users() << "\n";
  v1 << "user_sessions";
  for (int u = 0; u < sc.n_users(); ++u) v1 << ' ' << sc.user_session(u);
  v1 << "\ngeometry 0\n";
  v1 << "aps " << sc.n_aps() << "\n";
  v1 << "link_rates\n";
  for (int a = 0; a < sc.n_aps(); ++a) {
    for (int u = 0; u < sc.n_users(); ++u) {
      v1 << (u > 0 ? " " : "") << sc.link_rate(a, u);
    }
    v1 << "\n";
  }
  const auto restored = from_text(v1.str());
  expect_equivalent(sc, restored);
  // And it re-saves in the current format.
  EXPECT_NE(to_text(restored).find("wmcast-scenario v2"), std::string::npos);
}

TEST(Serialization, MalformedSparseRowsThrow) {
  const std::string head =
      "wmcast-scenario v2\nbudget 0.9\nsessions 1\nsession_rates 1\n"
      "users 2\nuser_sessions 0 0\ngeometry 0\naps 2\nsparse_links\n";
  EXPECT_THROW(from_text(head + "3 0 6 1 6 0 6\n0\n"),
               std::invalid_argument);  // row size > n_aps
  EXPECT_THROW(from_text(head + "1 5 6\n0\n"),
               std::invalid_argument);  // AP id out of range
  EXPECT_THROW(from_text(head + "1 0 -6\n0\n"),
               std::invalid_argument);  // non-positive rate
  EXPECT_THROW(from_text(head + "2 0 6 0 12\n0\n"),
               std::invalid_argument);  // duplicate (ap, user) link
  EXPECT_THROW(from_text(head + "1 0 6\n"),
               std::invalid_argument);  // truncated: second row missing
}

TEST(Serialization, AlgorithmsAgreeOnRestoredScenario) {
  util::Rng rng(43);
  GeneratorParams p;
  p.n_aps = 15;
  p.n_users = 40;
  const auto sc = generate_scenario(p, rng);
  const auto restored = from_text(to_text(sc));
  const auto a = assoc::centralized_mla(sc);
  const auto b = assoc::centralized_mla(restored);
  EXPECT_EQ(a.assoc, b.assoc);
  EXPECT_DOUBLE_EQ(a.loads.total_load, b.loads.total_load);
}

TEST(Serialization, FileRoundTrip) {
  const auto sc = test::fig1_scenario(1.0);
  const std::string path = testing::TempDir() + "/wmcast_scenario_test.txt";
  ASSERT_TRUE(save_scenario(sc, path));
  const auto restored = load_scenario(path);
  expect_equivalent(sc, restored);
  std::remove(path.c_str());
}

TEST(Serialization, SaveFailsGracefully) {
  const auto sc = test::fig1_scenario(1.0);
  EXPECT_FALSE(save_scenario(sc, "/nonexistent-dir/x.txt"));
  EXPECT_THROW(load_scenario("/nonexistent-dir/x.txt"), std::invalid_argument);
}

TEST(Serialization, MalformedInputThrowsNotAborts) {
  EXPECT_THROW(from_text(""), std::invalid_argument);
  EXPECT_THROW(from_text("wmcast-scenario v2"), std::invalid_argument);
  EXPECT_THROW(from_text("wmcast-scenario v1\nbudget oops"), std::invalid_argument);
  EXPECT_THROW(from_text("wmcast-scenario v1\nbudget 0.9\nsessions -3"),
               std::invalid_argument);
  // Truncated in the middle of the link matrix.
  const auto sc = test::fig1_scenario(1.0);
  std::string text = to_text(sc);
  text.resize(text.size() / 2);
  EXPECT_THROW(from_text(text), std::invalid_argument);
  // A scenario that parses structurally but violates model invariants
  // (negative link rate) is rejected by Scenario validation.
  EXPECT_THROW(from_text("wmcast-scenario v1\nbudget 0.9\nsessions 1\n"
                         "session_rates 1\nusers 1\nuser_sessions 0\ngeometry 0\n"
                         "aps 1\nlink_rates\n-5\n"),
               std::invalid_argument);
}

TEST(Serialization, HugeCountsRejected) {
  EXPECT_THROW(from_text("wmcast-scenario v1\nbudget 0.9\nsessions 99999999"),
               std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::wlan

// -- association serialization (appended suite) ------------------------------

#include "wmcast/assoc/centralized.hpp"

namespace wmcast::wlan {
namespace {

TEST(AssociationSerialization, RoundTrips) {
  const Association a{{0, kNoAp, 3, 1, kNoAp}};
  const Association restored = association_from_text(association_to_text(a));
  EXPECT_EQ(restored, a);
}

TEST(AssociationSerialization, EmptyAssociation) {
  const Association a = Association::none(0);
  EXPECT_EQ(association_from_text(association_to_text(a)).n_users(), 0);
}

TEST(AssociationSerialization, SolverOutputRoundTripsThroughFiles) {
  const auto sc = test::fig1_scenario(1.0);
  const auto sol = assoc::centralized_mla(sc);
  const std::string path = testing::TempDir() + "/wmcast_assoc_test.txt";
  ASSERT_TRUE(save_association(sol.assoc, path));
  const auto restored = load_association(path);
  EXPECT_EQ(restored, sol.assoc);
  // Still evaluates identically.
  const auto rep = compute_loads(sc, restored);
  EXPECT_NEAR(rep.total_load, sol.loads.total_load, 1e-12);
  std::remove(path.c_str());
}

TEST(AssociationSerialization, MalformedInputThrows) {
  EXPECT_THROW(association_from_text(""), std::invalid_argument);
  EXPECT_THROW(association_from_text("wmcast-association v2"), std::invalid_argument);
  EXPECT_THROW(association_from_text("wmcast-association v1\nusers 2\n0"),
               std::invalid_argument);  // truncated
  EXPECT_THROW(association_from_text("wmcast-association v1\nusers 1\n-5"),
               std::invalid_argument);  // AP id below kNoAp
  EXPECT_THROW(load_association("/nonexistent/a.txt"), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::wlan
