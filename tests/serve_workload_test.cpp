// Workload generator contracts (serve/workload.hpp): determinism in
// (initial state, profile, params), stream validity against a live
// controller, and lossless round-trip of generated streams through the
// wmcast-trace text format.
#include "wmcast/serve/workload.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/state.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::serve {
namespace {

wlan::Scenario test_scenario(uint64_t seed = 3) {
  wlan::GeneratorParams gp;
  gp.n_aps = 10;
  gp.n_users = 30;
  gp.n_sessions = 3;
  gp.area_side_m = 300.0;
  util::Rng rng(seed);
  return wlan::generate_scenario(gp, rng);
}

WorkloadParams short_params(uint64_t seed = 7) {
  WorkloadParams wp;
  wp.duration_s = 2.0;
  wp.events_per_s = 200.0;
  wp.seed = seed;
  return wp;
}

TEST(WorkloadProfile, NamedProfilesRoundTripAndUnknownThrows) {
  for (const std::string& name : WorkloadProfile::names()) {
    EXPECT_EQ(WorkloadProfile::named(name).name, name);
  }
  EXPECT_THROW(WorkloadProfile::named("no-such-profile"), std::invalid_argument);
}

TEST(WorkloadGenerator, SameSeedSameStream) {
  const auto sc = test_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  for (const std::string& name : WorkloadProfile::names()) {
    const auto a =
        generate_workload(initial, WorkloadProfile::named(name), short_params());
    const auto b =
        generate_workload(initial, WorkloadProfile::named(name), short_params());
    ASSERT_EQ(a.size(), b.size()) << "profile " << name;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].t_s, b[i].t_s) << "profile " << name << " event " << i;
      EXPECT_EQ(a[i].ev, b[i].ev) << "profile " << name << " event " << i;
    }
    EXPECT_GT(a.size(), 0u) << "profile " << name;
  }
}

TEST(WorkloadGenerator, DifferentSeedsDiverge) {
  const auto sc = test_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto profile = WorkloadProfile::named("mixed");
  const auto a = generate_workload(initial, profile, short_params(7));
  const auto b = generate_workload(initial, profile, short_params(8));
  bool any_diff = a.size() != b.size();
  for (size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = !(a[i].ev == b[i].ev);
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadGenerator, StampsAreNonDecreasingWithinDuration) {
  const auto sc = test_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto params = short_params();
  const auto events =
      generate_workload(initial, WorkloadProfile::named("flash"), params);
  double prev = 0.0;
  for (const auto& te : events) {
    EXPECT_GE(te.t_s, prev);
    EXPECT_GE(te.t_s, 0.0);
    EXPECT_LE(te.t_s, params.duration_s + params.tick_s);
    prev = te.t_s;
  }
}

TEST(WorkloadGenerator, PullMatchesBatchAndStateEvolves) {
  const auto sc = test_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto profile = WorkloadProfile::named("mixed");
  const auto batch = generate_workload(initial, profile, short_params());

  WorkloadGenerator gen(initial, profile, short_params());
  size_t i = 0;
  TimedEvent te;
  while (gen.next(&te)) {
    ASSERT_LT(i, batch.size());
    EXPECT_EQ(te.ev, batch[i].ev);
    ++i;
  }
  EXPECT_EQ(i, batch.size());

  // The generator's internal state is the fold of everything it emitted;
  // apply() throws on invalid events, so this doubles as a validity sweep.
  ctrl::NetworkState replay = initial;
  for (const auto& e : batch) ASSERT_NO_THROW(replay.apply(e.ev));
  EXPECT_EQ(replay, gen.state());
}

TEST(WorkloadGenerator, EveryEventValidAgainstController) {
  const auto sc = test_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  for (const std::string& name : WorkloadProfile::names()) {
    ctrl::ControllerConfig cfg;
    cfg.seed = 5;
    ctrl::AssociationController c(sc, cfg);
    const auto events =
        generate_workload(initial, WorkloadProfile::named(name), short_params());
    for (const auto& te : events) c.submit(te.ev);
    do {
      c.drain();
    } while (c.pending_events() > 0);
    EXPECT_EQ(c.telemetry().events_invalid.value(), 0u)
        << "profile " << name << " emitted invalid events";
    EXPECT_EQ(c.telemetry().events_ingested.value(), events.size());
  }
}

TEST(WorkloadTrace, RoundTripsThroughTraceText) {
  const auto sc = test_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto events =
      generate_workload(initial, WorkloadProfile::named("mixed"), short_params());

  const ctrl::EventTrace trace = workload_to_trace(events, 2.0, 0.25);
  EXPECT_EQ(trace.n_epochs(), 8);
  EXPECT_EQ(trace.n_events(), static_cast<int>(events.size()));

  const std::string text = ctrl::trace_to_text(trace);
  const ctrl::EventTrace back = ctrl::trace_from_text(text);
  ASSERT_EQ(back.n_epochs(), trace.n_epochs());
  for (size_t e = 0; e < trace.epochs.size(); ++e) {
    ASSERT_EQ(back.epochs[e].size(), trace.epochs[e].size()) << "epoch " << e;
    for (size_t i = 0; i < trace.epochs[e].size(); ++i) {
      EXPECT_EQ(back.epochs[e][i], trace.epochs[e][i]) << "epoch " << e;
    }
  }
  // Text re-serialization is byte-stable (what CLI pipelines diff).
  EXPECT_EQ(ctrl::trace_to_text(back), text);
}

TEST(WorkloadTrace, EmptyTailEpochsPreserveDuration) {
  // All events in the first quarter; binning must still emit 4 epochs.
  std::vector<TimedEvent> events;
  events.push_back({0.1, ctrl::Event::unsubscribe(0)});
  const ctrl::EventTrace trace = workload_to_trace(events, 4.0, 1.0);
  EXPECT_EQ(trace.n_epochs(), 4);
  EXPECT_EQ(static_cast<int>(trace.epochs[0].size()), 1);
}

TEST(WorkloadTrace, StreamingReaderConsumesExportedTrace) {
  const auto sc = test_scenario();
  const auto initial = ctrl::NetworkState::from_scenario(sc);
  const auto events =
      generate_workload(initial, WorkloadProfile::named("steady"), short_params());
  const ctrl::EventTrace trace = workload_to_trace(events, 2.0, 0.5);

  std::istringstream in(ctrl::trace_to_text(trace));
  ctrl::TraceReader reader(in);
  EXPECT_EQ(reader.n_epochs(), trace.n_epochs());
  int epochs = 0, n_events = 0;
  std::vector<ctrl::Event> epoch;
  while (reader.next_epoch(&epoch)) {
    n_events += static_cast<int>(epoch.size());
    ++epochs;
  }
  EXPECT_EQ(epochs, trace.n_epochs());
  EXPECT_EQ(n_events, trace.n_events());
}

}  // namespace
}  // namespace wmcast::serve
