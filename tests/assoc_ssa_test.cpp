#include "wmcast/assoc/ssa.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

TEST(Ssa, EveryUserOnStrongestApWhenBudgetAllows) {
  const auto sc = test::fig1_scenario(1.0);
  util::Rng rng(2);
  const Solution sol = ssa_associate(sc, rng);
  // Strongest APs: u1->a1 (only), u2->a1 (only), u3->a2 (5>4), u4->a2 (5>4),
  // u5->a1 (4>3). Loads stay within budget 1, so everyone is admitted.
  EXPECT_EQ(sol.assoc.ap_of(0), 0);
  EXPECT_EQ(sol.assoc.ap_of(1), 0);
  EXPECT_EQ(sol.assoc.ap_of(2), 1);
  EXPECT_EQ(sol.assoc.ap_of(3), 1);
  EXPECT_EQ(sol.assoc.ap_of(4), 0);
  EXPECT_EQ(sol.loads.satisfied_users, 5);
  EXPECT_EQ(sol.algorithm, "SSA");
}

TEST(Ssa, BudgetRejectsLateArrivals) {
  // 3 Mbps streams: a1 cannot carry both sessions (1 + 0.5 > 1), so whichever
  // of {u1} / {u2,u5} side arrives later at a1 is cut; u3, u4 always fit a2.
  const auto sc = test::fig1_scenario(3.0);
  int total_satisfied_min = 5;
  int total_satisfied_max = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const Solution sol = ssa_associate(sc, rng);
    EXPECT_TRUE(sol.loads.within_budget());
    total_satisfied_min = std::min(total_satisfied_min, sol.loads.satisfied_users);
    total_satisfied_max = std::max(total_satisfied_max, sol.loads.satisfied_users);
    // u3 and u4 are always served (a2 carries both sessions: 3/5+3/5 < 1...
    // actually a2 serves s1@5 and s2@5: 0.6+0.6=1.2 > 1! So one of them can
    // be rejected too depending on order; just check budget feasibility and
    // that someone is served.
    EXPECT_GE(sol.loads.satisfied_users, 2);
  }
  // Some arrival order must reject at least one user.
  EXPECT_LT(total_satisfied_min, 5);
}

TEST(Ssa, WithoutBudgetEnforcementEveryoneIsServed) {
  const auto sc = test::fig1_scenario(3.0);
  util::Rng rng(3);
  SsaParams p;
  p.enforce_budget = false;
  const Solution sol = ssa_associate(sc, rng, p);
  EXPECT_EQ(sol.loads.satisfied_users, 5);
  // ... at the price of violating a budget somewhere.
  EXPECT_FALSE(sol.loads.within_budget());
}

TEST(Ssa, UncoverableUsersAreSkipped) {
  const std::vector<std::vector<double>> link = {{5, 0}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 0}, {1.0}, 0.9);
  util::Rng rng(4);
  const Solution sol = ssa_associate(sc, rng);
  EXPECT_EQ(sol.assoc.ap_of(0), 0);
  EXPECT_EQ(sol.assoc.ap_of(1), wlan::kNoAp);
}

TEST(Ssa, DeterministicGivenSeed) {
  util::Rng gen(5);
  wlan::GeneratorParams p;
  p.n_aps = 30;
  p.n_users = 80;
  const auto sc = wlan::generate_scenario(p, gen);
  util::Rng r1(9);
  util::Rng r2(9);
  EXPECT_EQ(ssa_associate(sc, r1).assoc, ssa_associate(sc, r2).assoc);
}

TEST(Ssa, BasicRateModeIsFeasibleButHeavier) {
  util::Rng gen(6);
  wlan::GeneratorParams p;
  p.n_aps = 20;
  p.n_users = 50;
  const auto sc = wlan::generate_scenario(p, gen);
  util::Rng r1(1);
  util::Rng r2(1);
  SsaParams basic;
  basic.multi_rate = false;
  const Solution multi = ssa_associate(sc, r1);
  const Solution slow = ssa_associate(sc, r2, basic);
  EXPECT_TRUE(slow.loads.within_budget());
  // Same arrival order; basic-rate transmissions can only cost more airtime
  // per (ap, session), so with everyone admitted the total load is higher.
  if (slow.loads.satisfied_users == multi.loads.satisfied_users) {
    EXPECT_GE(slow.loads.total_load, multi.loads.total_load - 1e-9);
  }
}

}  // namespace
}  // namespace wmcast::assoc
