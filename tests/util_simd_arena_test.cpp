// Kernel-dispatch and arena tests (DESIGN.md §13).
//
// The SIMD contract is bit-identity: scalar and dispatched (possibly AVX2)
// kernels compute exact integer popcounts, so every result is compared with
// EXPECT_EQ, never a tolerance. The bitset sizes 0/1/63/64/65/127 pin the
// trailing-word edge cases: empty, single word, full word, one-past-a-word,
// and a partial second word — where a masking bug would double-count or drop
// the bits above n_bits.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "wmcast/util/arena.hpp"
#include "wmcast/util/bitset.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/simd.hpp"

namespace wmcast {
namespace {

constexpr int kEdgeSizes[] = {0, 1, 63, 64, 65, 127};

// Deterministic ~half-density bit pattern with all trailing-word shapes.
util::DynBitset patterned(int n_bits, uint64_t seed) {
  util::DynBitset b(n_bits);
  util::Rng rng(seed);
  for (int i = 0; i < n_bits; ++i) {
    if (rng.next_u64() & 1) b.set(i);
  }
  return b;
}

int count_reference(const util::DynBitset& b, int n_bits) {
  int n = 0;
  for (int i = 0; i < n_bits; ++i) n += b.test(i) ? 1 : 0;
  return n;
}

TEST(SimdKernelsTest, ScalarMatchesDispatchedOnWordArrays) {
  util::Rng rng(2024);
  // Sizes straddle the n >= 8 AVX2 dispatch threshold and the 4x unroll.
  for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                         size_t{8}, size_t{9}, size_t{31}, size_t{256},
                         size_t{1000}}) {
    std::vector<uint64_t> a(n), b(n);
    for (auto& w : a) w = rng.next_u64();
    for (auto& w : b) w = rng.next_u64();
    EXPECT_EQ(simd::popcount_words(a.data(), n),
              simd::popcount_words_scalar(a.data(), n))
        << "n=" << n;
    EXPECT_EQ(simd::popcount_and_words(a.data(), b.data(), n),
              simd::popcount_and_words_scalar(a.data(), b.data(), n))
        << "n=" << n;
    EXPECT_EQ(simd::popcount_andnot_words(a.data(), b.data(), n),
              simd::popcount_andnot_words_scalar(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(SimdKernelsTest, ModeNamesRoundTrip) {
  EXPECT_EQ(simd::mode_from_name("auto"), simd::Mode::kAuto);
  EXPECT_EQ(simd::mode_from_name("scalar"), simd::Mode::kScalar);
  EXPECT_THROW(simd::mode_from_name("sse9"), std::invalid_argument);
  EXPECT_STREQ(simd::mode_name(simd::Mode::kScalar), "scalar");
  EXPECT_STREQ(simd::mode_name(simd::Mode::kAuto), "auto");
  EXPECT_STREQ(simd::mode_name(simd::Mode::kAvx2), "avx2");
  if (!simd::caps().avx2) {
    EXPECT_THROW(simd::set_mode(simd::Mode::kAvx2), std::invalid_argument);
  }
}

TEST(SimdKernelsTest, ScopedModeRestores) {
  const simd::Mode before = simd::mode();
  {
    simd::ScopedMode force(simd::Mode::kScalar);
    EXPECT_EQ(simd::mode(), simd::Mode::kScalar);
    EXPECT_FALSE(simd::active_avx2());
  }
  EXPECT_EQ(simd::mode(), before);
}

TEST(BitsetEdgeTest, CountAtEveryTrailingWordShape) {
  for (const int n : kEdgeSizes) {
    const util::DynBitset b = patterned(n, 7 + static_cast<uint64_t>(n));
    const int expected = count_reference(b, n);
    EXPECT_EQ(b.count(), expected) << "n=" << n;
    simd::ScopedMode force(simd::Mode::kScalar);
    EXPECT_EQ(b.count(), expected) << "scalar n=" << n;
  }
}

TEST(BitsetEdgeTest, AndAndnotCountsMatchScalarAtEdgeSizes) {
  for (const int n : kEdgeSizes) {
    const util::DynBitset a = patterned(n, 11 + static_cast<uint64_t>(n));
    const util::DynBitset b = patterned(n, 13 + static_cast<uint64_t>(n));
    int and_ref = 0;
    int andnot_ref = 0;
    for (int i = 0; i < n; ++i) {
      and_ref += (a.test(i) && b.test(i)) ? 1 : 0;
      andnot_ref += (a.test(i) && !b.test(i)) ? 1 : 0;
    }
    EXPECT_EQ(a.and_count(b), and_ref) << "n=" << n;
    EXPECT_EQ(a.andnot_count(b), andnot_ref) << "n=" << n;
    simd::ScopedMode force(simd::Mode::kScalar);
    EXPECT_EQ(a.and_count(b), and_ref) << "scalar n=" << n;
    EXPECT_EQ(a.andnot_count(b), andnot_ref) << "scalar n=" << n;
  }
}

TEST(BitsetEdgeTest, VisitorsMatchTestLoopAtEdgeSizes) {
  for (const int n : kEdgeSizes) {
    const util::DynBitset a = patterned(n, 17 + static_cast<uint64_t>(n));
    const util::DynBitset b = patterned(n, 19 + static_cast<uint64_t>(n));
    std::vector<int> plain_ref, and_ref, andnot_ref;
    for (int i = 0; i < n; ++i) {
      if (a.test(i)) plain_ref.push_back(i);
      if (a.test(i) && b.test(i)) and_ref.push_back(i);
      if (a.test(i) && !b.test(i)) andnot_ref.push_back(i);
    }
    std::vector<int> plain, both, anot;
    a.for_each([&](int i) { plain.push_back(i); });
    a.for_each_and(b, [&](int i) { both.push_back(i); });
    a.for_each_andnot(b, [&](int i) { anot.push_back(i); });
    EXPECT_EQ(plain, plain_ref) << "n=" << n;
    EXPECT_EQ(both, and_ref) << "n=" << n;
    EXPECT_EQ(anot, andnot_ref) << "n=" << n;
  }
}

TEST(BitsetEdgeTest, TestAndReset) {
  util::DynBitset b(65);
  b.set(0);
  b.set(64);
  EXPECT_TRUE(b.test_and_reset(64));
  EXPECT_FALSE(b.test(64));
  EXPECT_FALSE(b.test_and_reset(64));
  EXPECT_TRUE(b.test_and_reset(0));
  EXPECT_EQ(b.count(), 0);
}

TEST(ArenaTest, BumpAllocationAndStats) {
  util::Arena arena(1024);
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  void* p = arena.allocate(100, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  EXPECT_GE(arena.allocated_bytes(), 100u);
  // Oversized requests get their own block instead of failing.
  void* big = arena.allocate(10000, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big) % 64, 0u);
  EXPECT_GE(arena.reserved_bytes(), arena.allocated_bytes());
  EXPECT_GE(arena.high_water_bytes(), arena.allocated_bytes());
}

TEST(ArenaTest, HighWaterTracksAllocatedMonotonically) {
  util::Arena arena(4096);
  arena.allocate(200, 8);
  const size_t peak = arena.high_water_bytes();
  EXPECT_GE(peak, 200u);
  arena.allocate(300, 8);
  EXPECT_GE(arena.high_water_bytes(), peak + 300);
  EXPECT_EQ(arena.high_water_bytes(), arena.allocated_bytes());
}

TEST(ArenaTest, ArenaVectorAllocatesFromArenaAndEscapesToHeap) {
  util::Arena arena;
  util::ArenaVector<int> v{util::ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_GE(arena.allocated_bytes(), 1000 * sizeof(int));
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 999 * 1000 / 2);

  // An escaping copy must NOT be seated on the arena: copy construction
  // selects a null-arena (heap) allocator, so results outlive the scratch.
  util::ArenaVector<int> escaped = v;
  EXPECT_EQ(escaped.get_allocator(), util::ArenaAllocator<int>(nullptr));
  EXPECT_EQ(escaped.size(), v.size());

  // Copy-assign into an arena-seated vector keeps the destination allocator
  // (POCCA = false): workspaces absorb heap-backed data without rebinding.
  util::ArenaVector<int> dst{util::ArenaAllocator<int>(&arena)};
  dst = escaped;
  EXPECT_EQ(dst.get_allocator(), util::ArenaAllocator<int>(&arena));
  EXPECT_EQ(dst.size(), escaped.size());
}

TEST(ArenaTest, BitsetOnArena) {
  util::Arena arena;
  util::DynBitset b(1000, util::ArenaAllocator<uint64_t>(&arena));
  EXPECT_GE(arena.allocated_bytes(), (1000 / 64) * sizeof(uint64_t));
  b.set_all();
  EXPECT_EQ(b.count(), 1000);
  // Escaping copy is heap-backed, same contents.
  util::DynBitset heap_copy = b;
  EXPECT_TRUE(heap_copy == b);
  const size_t before = arena.allocated_bytes();
  heap_copy.reset(999);
  EXPECT_EQ(arena.allocated_bytes(), before);
  EXPECT_EQ(heap_copy.count(), 999);
}

TEST(ArenaTest, NullArenaAllocatorUsesHeap) {
  util::ArenaVector<double> v{util::ArenaAllocator<double>(nullptr)};
  v.assign(100, 1.5);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 1.5);
}

}  // namespace
}  // namespace wmcast
