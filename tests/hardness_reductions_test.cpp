// Cross-validation of the paper's NP-hardness reductions (Appendix A/B/C):
// solving the reduced WLAN instance exactly must recover the classic
// problem's optimum.
#include "wmcast/hardness/reductions.hpp"

#include <gtest/gtest.h>

#include "wmcast/exact/exact_bla.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"

namespace wmcast::hardness {
namespace {

TEST(SubsetSumToMnu, YesInstanceReachesTarget) {
  // {3, 5, 8, 9} has a subset summing to 14 (5 + 9).
  const SubsetSumInstance in{{3, 5, 8, 9}, 14};
  EXPECT_EQ(subset_sum_best(in), 14);
  const auto sc = subset_sum_to_mnu(in);
  EXPECT_EQ(sc.n_aps(), 1);
  EXPECT_EQ(sc.n_users(), 25);  // 3+5+8+9 users
  const auto sys = setcover::build_set_system(sc);
  const auto res = exact::exact_max_coverage_uniform(sys, sc.load_budget());
  ASSERT_EQ(res.status, exact::BbStatus::kOptimal);
  EXPECT_EQ(res.covered, 14);
}

TEST(SubsetSumToMnu, NoInstanceFallsShort) {
  // {4, 6, 10} cannot sum to 13 (all even); best below is 10.
  const SubsetSumInstance in{{4, 6, 10}, 13};
  EXPECT_EQ(subset_sum_best(in), 10);
  const auto sc = subset_sum_to_mnu(in);
  const auto sys = setcover::build_set_system(sc);
  const auto res = exact::exact_max_coverage_uniform(sys, sc.load_budget());
  ASSERT_EQ(res.status, exact::BbStatus::kOptimal);
  EXPECT_EQ(res.covered, 10);
}

TEST(SubsetSumToMnu, RandomInstancesAgreeWithDp) {
  util::Rng rng(79);
  for (int trial = 0; trial < 6; ++trial) {
    SubsetSumInstance in;
    const int k = 3 + rng.next_int(3);
    for (int i = 0; i < k; ++i) in.values.push_back(1 + rng.next_int(7));
    in.target = 1 + rng.next_int(12);
    const auto sc = subset_sum_to_mnu(in);
    const auto sys = setcover::build_set_system(sc);
    const auto res = exact::exact_max_coverage_uniform(sys, sc.load_budget());
    ASSERT_EQ(res.status, exact::BbStatus::kOptimal);
    EXPECT_EQ(res.covered, subset_sum_best(in)) << "trial " << trial;
  }
}

TEST(MakespanToBla, TwoMachinesKnownOptimum) {
  // Jobs {3,3,2,2,2} on 2 machines: makespan 6 (3+3 / 2+2+2).
  const MakespanInstance in{{3, 3, 2, 2, 2}, 2};
  EXPECT_DOUBLE_EQ(makespan_optimal(in), 6.0);
  const auto sc = makespan_to_bla(in);
  const auto sys = setcover::build_set_system(sc);
  const auto res = exact::exact_min_max_cover(sys);
  ASSERT_EQ(res.status, exact::BbStatus::kOptimal);
  const double d = 2.0 * (3 + 3 + 2 + 2 + 2);
  EXPECT_NEAR(res.max_group_cost * d, 6.0, 1e-9);
}

TEST(MakespanToBla, RandomInstancesAgreeWithExhaustive) {
  util::Rng rng(83);
  for (int trial = 0; trial < 6; ++trial) {
    MakespanInstance in;
    const int n = 4 + rng.next_int(4);
    for (int i = 0; i < n; ++i) in.processing.push_back(1.0 + rng.next_int(9));
    in.machines = 2 + rng.next_int(2);
    double total = 0.0;
    for (const double p : in.processing) total += p;
    const auto sc = makespan_to_bla(in);
    const auto sys = setcover::build_set_system(sc);
    const auto res = exact::exact_min_max_cover(sys);
    ASSERT_EQ(res.status, exact::BbStatus::kOptimal);
    EXPECT_NEAR(res.max_group_cost * 2.0 * total, makespan_optimal(in), 1e-9)
        << "trial " << trial;
  }
}

TEST(SetCoverToMla, KnownInstance) {
  // Universe {0..4}; sets {0,1,2}, {2,3}, {3,4}, {0,4}: optimal cover size 2
  // ({0,1,2} + {3,4}).
  const SetCoverInstance in{5, {{0, 1, 2}, {2, 3}, {3, 4}, {0, 4}}};
  EXPECT_EQ(set_cover_optimal(in), 2);
  const auto sc = set_cover_to_mla(in);
  const auto sys = setcover::build_set_system(sc);
  const auto res = exact::exact_min_cost_cover(sys);
  ASSERT_EQ(res.status, exact::BbStatus::kOptimal);
  EXPECT_NEAR(res.cost / set_cover_unit_load(in), 2.0, 1e-9);
}

TEST(SetCoverToMla, RandomInstancesAgreeWithEnumeration) {
  util::Rng rng(89);
  for (int trial = 0; trial < 6; ++trial) {
    SetCoverInstance in;
    in.n_elements = 6 + rng.next_int(5);
    const int m = 4 + rng.next_int(5);
    for (int j = 0; j < m; ++j) {
      std::vector<int> s;
      for (int e = 0; e < in.n_elements; ++e) {
        if (rng.next_bool(0.4)) s.push_back(e);
      }
      if (s.empty()) s.push_back(rng.next_int(in.n_elements));
      in.sets.push_back(std::move(s));
    }
    // Ensure coverability.
    std::vector<int> all(static_cast<size_t>(in.n_elements));
    for (int e = 0; e < in.n_elements; ++e) all[static_cast<size_t>(e)] = e;
    in.sets.push_back(all);

    const int opt = set_cover_optimal(in);
    ASSERT_GE(opt, 1);
    const auto sc = set_cover_to_mla(in);
    const auto sys = setcover::build_set_system(sc);
    const auto res = exact::exact_min_cost_cover(sys);
    ASSERT_EQ(res.status, exact::BbStatus::kOptimal);
    EXPECT_NEAR(res.cost / set_cover_unit_load(in), opt, 1e-9) << "trial " << trial;
  }
}

TEST(Reductions, RejectInvalidInstances) {
  EXPECT_THROW(subset_sum_to_mnu({{}, 5}), std::invalid_argument);
  EXPECT_THROW(subset_sum_to_mnu({{1, 2}, 0}), std::invalid_argument);
  EXPECT_THROW(subset_sum_to_mnu({{0}, 1}), std::invalid_argument);
  EXPECT_THROW(makespan_to_bla({{}, 2}), std::invalid_argument);
  EXPECT_THROW(makespan_to_bla({{1.0}, 0}), std::invalid_argument);
  EXPECT_THROW(set_cover_to_mla({0, {{0}}}), std::invalid_argument);
  EXPECT_THROW(set_cover_to_mla({2, {{5}}}), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::hardness
