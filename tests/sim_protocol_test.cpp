#include "wmcast/sim/network.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::sim {
namespace {

SimConfig jittered_config() {
  SimConfig c;
  c.latency_s = 0.002;
  c.scan_period_s = 1.0;
  c.phase_jitter_s = 1.0;
  c.quiet_period_s = 4.0;
  c.max_time_s = 120.0;
  return c;
}

SimConfig synchronized_config() {
  SimConfig c = jittered_config();
  c.phase_jitter_s = 0.0;  // everyone scans at the same instants
  return c;
}

TEST(ProtocolSim, JitteredFig1ConvergesToServedUsers) {
  const auto sc = test::fig1_scenario(3.0);
  ProtocolSim sim(sc, jittered_config(), util::Rng(1));
  const SimOutcome out = sim.run();
  EXPECT_TRUE(out.converged);
  const auto rep = wlan::compute_loads(sc, out.assoc);
  // With 3 Mbps streams at most 4 users fit (see §3.2); the protocol should
  // reach a maximal configuration of 3 or 4 served users.
  EXPECT_GE(rep.satisfied_users, 3);
  EXPECT_TRUE(rep.within_budget());
  EXPECT_GT(out.counters.queries, 0);
  EXPECT_EQ(out.counters.queries, out.counters.responses);
}

TEST(ProtocolSim, Fig4SynchronizedOscillates) {
  // The paper's Fig. 4: synchronized scans from the bad starting state make
  // u2 and u3 swap forever; the run hits max_time without quiescing.
  const auto sc = test::fig4_scenario();
  SimConfig cfg = synchronized_config();
  cfg.max_time_s = 60.0;
  ProtocolSim sim(sc, cfg, util::Rng(1));
  sim.set_initial(wlan::Association{{0, 0, 1, 1}});
  const SimOutcome out = sim.run();
  EXPECT_FALSE(out.converged);
  // Oscillation means re-associations keep happening late into the run.
  EXPECT_GT(out.last_change_s, cfg.max_time_s - 2 * cfg.scan_period_s - 1.0);
  EXPECT_GT(out.counters.leaves, 10);
}

TEST(ProtocolSim, Fig4JitteredConverges) {
  // Lemma 1's regime: desynchronized decisions interleave and settle.
  const auto sc = test::fig4_scenario();
  ProtocolSim sim(sc, jittered_config(), util::Rng(7));
  sim.set_initial(wlan::Association{{0, 0, 1, 1}});
  const SimOutcome out = sim.run();
  EXPECT_TRUE(out.converged);
  const auto rep = wlan::compute_loads(sc, out.assoc);
  // The fixed point found by any improving sequence has total load 9/20.
  EXPECT_NEAR(rep.total_load, 9.0 / 20.0, 1e-9);
}

TEST(ProtocolSim, TraceRecordsEveryMove) {
  const auto sc = test::fig1_scenario(1.0);
  ProtocolSim sim(sc, jittered_config(), util::Rng(3));
  const SimOutcome out = sim.run();
  // Replaying the trace from all-unassociated must yield the final state.
  auto replay = wlan::Association::none(sc.n_users());
  for (const auto& t : out.trace) {
    EXPECT_EQ(replay.ap_of(t.user), t.from_ap);
    replay.user_ap[static_cast<size_t>(t.user)] = t.to_ap;
  }
  EXPECT_EQ(replay, out.assoc);
  EXPECT_EQ(static_cast<int64_t>(out.trace.size()),
            out.counters.joins + out.counters.leaves -
                [&] {
                  // moves between APs count one join and one leave but one
                  // trace entry; initial joins have no leave. Compute directly:
                  int64_t moves = 0;
                  for (const auto& t : out.trace) {
                    if (t.from_ap != wlan::kNoAp && t.to_ap != wlan::kNoAp) ++moves;
                  }
                  return moves;
                }() -
                out.counters.rejections);
}

TEST(ProtocolSim, LateJoinersGetServed) {
  const auto sc = test::fig1_scenario(1.0);
  SimConfig cfg = jittered_config();
  ProtocolSim sim(sc, cfg, util::Rng(5));
  sim.activate_user_at(4, 20.0);  // u5 appears 20 s into the run
  const SimOutcome out = sim.run();
  EXPECT_TRUE(out.converged);
  EXPECT_NE(out.assoc.ap_of(4), wlan::kNoAp);
  EXPECT_GT(out.end_time_s, 20.0);
}

TEST(ProtocolSim, AdmissionControlRejectsStaleJoins) {
  // Tight budget and synchronized users racing for the same AP: the AP-side
  // re-check must keep every AP within budget at all times.
  util::Rng gen(11);
  wlan::GeneratorParams p;
  p.n_aps = 5;
  p.n_users = 30;
  p.n_sessions = 5;
  p.area_side_m = 300.0;
  p.load_budget = 0.1;
  const auto sc = wlan::generate_scenario(p, gen);
  SimConfig cfg = synchronized_config();
  cfg.max_time_s = 40.0;
  ProtocolSim sim(sc, cfg, util::Rng(2));
  const SimOutcome out = sim.run();
  const auto rep = wlan::compute_loads(sc, out.assoc);
  EXPECT_TRUE(rep.within_budget());
}

TEST(ProtocolSim, GuardsAgainstMisuse) {
  const auto sc = test::fig1_scenario(1.0);
  ProtocolSim sim(sc, jittered_config(), util::Rng(1));
  EXPECT_THROW(sim.activate_user_at(99, 1.0), std::invalid_argument);
  EXPECT_THROW(sim.activate_user_at(0, -1.0), std::invalid_argument);
  sim.run();
  EXPECT_THROW(sim.run(), std::invalid_argument);          // single-shot
  EXPECT_THROW(sim.set_initial(wlan::Association::none(5)), std::invalid_argument);
}

TEST(ProtocolSim, MatchesRoundEngineOutcomeQuality) {
  // The DES and the round engine implement the same policy; on a random
  // scenario their converged total loads should be in the same ballpark
  // (not identical: decision orders differ).
  util::Rng gen(13);
  wlan::GeneratorParams p;
  p.n_aps = 10;
  p.n_users = 30;
  p.n_sessions = 3;
  p.area_side_m = 400.0;
  const auto sc = wlan::generate_scenario(p, gen);

  ProtocolSim sim(sc, jittered_config(), util::Rng(3));
  const SimOutcome out = sim.run();
  ASSERT_TRUE(out.converged);
  const auto des_rep = wlan::compute_loads(sc, out.assoc);

  util::Rng rng(3);
  const auto round = assoc::distributed_associate(sc, rng, {});
  ASSERT_TRUE(round.converged);
  EXPECT_EQ(des_rep.satisfied_users, round.loads.satisfied_users);
  EXPECT_NEAR(des_rep.total_load, round.loads.total_load,
              0.5 * round.loads.total_load + 1e-9);
}

}  // namespace
}  // namespace wmcast::sim
