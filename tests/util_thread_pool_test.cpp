// ThreadPool unit tests: exact range coverage under static chunking,
// inline reference semantics at size 1, queue drain on destruction, and
// deterministic exception propagation — the contracts the deterministic
// parallel layer (DESIGN.md §9) is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "wmcast/util/thread_pool.hpp"

namespace wmcast::util {
namespace {

/// Marks every index of [b, e) once; duplicates or gaps fail the test.
void check_exact_coverage(int threads, int64_t begin, int64_t end) {
  ThreadPool pool(threads);
  std::vector<std::atomic<int>> hits(static_cast<size_t>(end - begin));
  for (auto& h : hits) h.store(0);
  pool.parallel_for(begin, end, [&](int64_t b, int64_t e, int lane) {
    EXPECT_GE(lane, 0);
    EXPECT_LT(lane, pool.size());
    for (int64_t i = b; i < e; ++i) {
      hits[static_cast<size_t>(i - begin)].fetch_add(1);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << (begin + static_cast<int64_t>(i));
  }
}

TEST(ThreadPool, ParallelForCoversExactRange) {
  for (const int threads : {1, 2, 3, 8}) {
    check_exact_coverage(threads, 0, 100);   // not divisible by 3 or 8
    check_exact_coverage(threads, 7, 7);     // empty range is a no-op
    check_exact_coverage(threads, 5, 8);     // fewer items than threads
    check_exact_coverage(threads, -10, 13);  // negative begin
  }
}

TEST(ThreadPool, StaticChunkBoundariesAreDeterministic) {
  // Same (len, size) must produce the same chunks on every call: record the
  // boundaries twice and compare.
  ThreadPool pool(4);
  const auto record = [&] {
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> chunks(static_cast<size_t>(pool.size()),
                                                    {-1, -1});
    pool.parallel_for(0, 1003, [&](int64_t b, int64_t e, int lane) {
      std::lock_guard<std::mutex> lk(mu);
      chunks[static_cast<size_t>(lane)] = {b, e};
    });
    return chunks;
  };
  EXPECT_EQ(record(), record());
}

TEST(ThreadPool, SizeOneRunsInlineOnCallingThread) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  pool.parallel_for(0, 10, [&](int64_t b, int64_t e, int lane) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(lane, 0);
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 10);
    ran = true;
  });
  EXPECT_TRUE(ran);

  bool submitted = false;
  auto fut = pool.submit([&] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    submitted = true;
  });
  EXPECT_TRUE(submitted);  // ran before submit returned
  fut.get();
}

TEST(ThreadPool, SubmitRunsTasksAndFuturesComplete) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 32; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 32 * 33 / 2);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    // Destructor must wait for all 64, not drop the queue.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, SubmitExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesLowestLaneException) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    try {
      pool.parallel_for(0, 100, [&](int64_t b, int64_t, int lane) {
        // Every lane throws; the caller must see lane 0's (its chunk starts
        // at 0), regardless of completion order.
        throw std::runtime_error("lane " + std::to_string(lane) + " at " +
                                 std::to_string(b));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "lane 0 at 0");
    }
  }
}

TEST(ThreadPool, ParallelForSurvivesSingleLaneFailure) {
  ThreadPool pool(4);
  std::atomic<int> covered{0};
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](int64_t b, int64_t e, int lane) {
                                   if (lane == 2) throw std::runtime_error("x");
                                   covered.fetch_add(static_cast<int>(e - b));
                                 }),
               std::runtime_error);
  // The other lanes' work completed before the rethrow.
  EXPECT_EQ(covered.load(), 75);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // A parallel_for issued from inside a pool *task* must degrade to one
  // inline chunk — a worker blocking on its own queue would deadlock. (The
  // outer call's lane 0 runs on the calling thread, which is not a worker
  // and may dispatch normally, so issue the nested calls via submit.)
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  std::vector<std::future<void>> futs;
  for (int t = 0; t < 8; ++t) {
    futs.push_back(pool.submit([&] {
      pool.parallel_for(0, 10, [&](int64_t ib, int64_t ie, int lane) {
        EXPECT_EQ(lane, 0);  // nested call degrades to one inline chunk
        inner_total.fetch_add(static_cast<int>(ie - ib));
      });
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadPool, ResolveThreadsPrecedence) {
  // Explicit request wins.
  ::setenv("WMCAST_THREADS", "6", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  // Env applies when the request is unset (<= 0).
  EXPECT_EQ(ThreadPool::resolve_threads(0), 6);
  EXPECT_EQ(ThreadPool::resolve_threads(-1), 6);
  // Invalid env values fall back to 1.
  ::setenv("WMCAST_THREADS", "zero", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 1);
  ::setenv("WMCAST_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 1);
  ::setenv("WMCAST_THREADS", "-4", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 1);
  ::unsetenv("WMCAST_THREADS");
  EXPECT_EQ(ThreadPool::resolve_threads(0), 1);
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, DefaultConstructionResolvesEnv) {
  ::setenv("WMCAST_THREADS", "3", 1);
  ThreadPool pool;
  EXPECT_EQ(pool.size(), 3);
  ::unsetenv("WMCAST_THREADS");
  ThreadPool serial;
  EXPECT_EQ(serial.size(), 1);
}

}  // namespace
}  // namespace wmcast::util
