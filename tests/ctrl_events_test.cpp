#include "wmcast/ctrl/events.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

namespace wmcast::ctrl {
namespace {

TEST(EventFactories, FillTheRightFields) {
  const auto j = Event::join(3, {10.0, 20.0}, 1);
  EXPECT_EQ(j.type, EventType::kUserJoin);
  EXPECT_EQ(j.user, 3);
  EXPECT_EQ(j.session, 1);
  EXPECT_DOUBLE_EQ(j.pos.x, 10.0);
  EXPECT_DOUBLE_EQ(j.pos.y, 20.0);

  const auto r = Event::rate_change(2, 1.5);
  EXPECT_EQ(r.type, EventType::kRateChange);
  EXPECT_EQ(r.session, 2);
  EXPECT_DOUBLE_EQ(r.rate_mbps, 1.5);

  EXPECT_EQ(Event::leave(7).user, 7);
  EXPECT_EQ(Event::move(5, {1, 2}).type, EventType::kUserMove);
  EXPECT_EQ(Event::subscribe(4, 0).session, 0);
  EXPECT_EQ(Event::unsubscribe(9).type, EventType::kUnsubscribe);
}

TEST(EventTypeNames, RoundTrip) {
  const EventType all[] = {EventType::kUserJoin,   EventType::kUserLeave,
                           EventType::kUserMove,   EventType::kRateChange,
                           EventType::kSubscribe,  EventType::kUnsubscribe};
  for (const EventType t : all) {
    EXPECT_EQ(event_type_from_name(event_type_name(t)), t);
  }
  EXPECT_THROW(event_type_from_name("bogus"), std::invalid_argument);
}

TEST(EventQueue, DrainsInFifoOrder) {
  EventQueue q;
  q.push(Event::leave(0));
  q.push(Event::leave(1));
  q.push_all({Event::leave(2), Event::leave(3)});
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.total_pushed(), 4u);

  const auto batch = q.drain();
  ASSERT_EQ(batch.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)].user, i);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_pushed(), 4u) << "total_pushed survives drains";
}

TEST(EventQueue, MaxBatchLimitsTheDrain) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.push(Event::leave(i));
  const auto first = q.drain(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].user, 0);
  EXPECT_EQ(first[1].user, 1);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.drain(0).size(), 3u) << "max_batch <= 0 drains everything";
}

TEST(EventQueue, ConcurrentProducersLoseNothing) {
  EventQueue q;
  constexpr int kPerThread = 500;
  std::thread a([&] {
    for (int i = 0; i < kPerThread; ++i) q.push(Event::leave(i));
  });
  std::thread b([&] {
    for (int i = 0; i < kPerThread; ++i) q.push(Event::leave(kPerThread + i));
  });
  a.join();
  b.join();
  EXPECT_EQ(q.total_pushed(), 2u * kPerThread);
  EXPECT_EQ(q.drain().size(), 2u * kPerThread);
}

}  // namespace
}  // namespace wmcast::ctrl
