#include "wmcast/util/bitset.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "wmcast/util/rng.hpp"

namespace wmcast::util {
namespace {

TEST(DynBitset, StartsEmpty) {
  DynBitset b(100);
  EXPECT_EQ(b.size(), 100);
  EXPECT_EQ(b.count(), 0);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(DynBitset, SetResetTest) {
  DynBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3);
}

TEST(DynBitset, SetAllRespectsSize) {
  DynBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70);
  b.reset_all();
  EXPECT_EQ(b.count(), 0);
}

TEST(DynBitset, SetAllOnWordBoundary) {
  DynBitset b(128);
  b.set_all();
  EXPECT_EQ(b.count(), 128);
}

TEST(DynBitset, AndCountMatchesMaterializedIntersection) {
  Rng rng(7);
  DynBitset a(200);
  DynBitset b(200);
  std::vector<bool> va(200, false);
  std::vector<bool> vb(200, false);
  for (int i = 0; i < 80; ++i) {
    const int x = rng.next_int(200);
    a.set(x);
    va[static_cast<size_t>(x)] = true;
    const int y = rng.next_int(200);
    b.set(y);
    vb[static_cast<size_t>(y)] = true;
  }
  int expected = 0;
  for (int i = 0; i < 200; ++i) {
    if (va[static_cast<size_t>(i)] && vb[static_cast<size_t>(i)]) ++expected;
  }
  EXPECT_EQ(a.and_count(b), expected);
  EXPECT_EQ(a.intersects(b), expected > 0);
}

TEST(DynBitset, OrAndAndnotAssign) {
  DynBitset a(10);
  DynBitset b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);

  DynBitset u = a;
  u.or_assign(b);
  EXPECT_EQ(u.to_indices(), (std::vector<int>{1, 2, 3}));

  DynBitset i = a;
  i.and_assign(b);
  EXPECT_EQ(i.to_indices(), (std::vector<int>{2}));

  DynBitset d = a;
  d.andnot_assign(b);
  EXPECT_EQ(d.to_indices(), (std::vector<int>{1}));
}

TEST(DynBitset, SubsetRelation) {
  DynBitset a(65);
  DynBitset b(65);
  a.set(5);
  a.set(64);
  b.set(5);
  b.set(64);
  b.set(30);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(DynBitset, ForEachVisitsInOrder) {
  DynBitset a(130);
  a.set(0);
  a.set(64);
  a.set(129);
  std::vector<int> seen;
  a.for_each([&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{0, 64, 129}));
  EXPECT_EQ(a.to_indices(), seen);
}

TEST(DynBitset, EqualityIsValueBased) {
  DynBitset a(40);
  DynBitset b(40);
  a.set(7);
  EXPECT_NE(a, b);
  b.set(7);
  EXPECT_EQ(a, b);
}

TEST(DynBitset, EmptyUniverse) {
  DynBitset b(0);
  EXPECT_EQ(b.count(), 0);
  EXPECT_TRUE(b.none());
  b.set_all();
  EXPECT_EQ(b.count(), 0);
}

TEST(DynBitset, AndnotCountMatchesMaterializedDifference) {
  DynBitset a(130);
  DynBitset b(130);
  a.set(0);
  a.set(63);
  a.set(64);
  a.set(129);
  b.set(63);
  b.set(129);
  EXPECT_EQ(a.andnot_count(b), 2);  // {0, 64}
  EXPECT_EQ(b.andnot_count(a), 0);  // b is a subset of a
  DynBitset diff = a;
  diff.andnot_assign(b);
  EXPECT_EQ(diff.count(), a.andnot_count(b));
}

TEST(DynBitset, ResizePreservesLowBitsAndClearsTail) {
  DynBitset b(70);
  b.set(0);
  b.set(69);
  b.resize(200);
  EXPECT_EQ(b.size(), 200);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(69));
  EXPECT_EQ(b.count(), 2);
  b.set(199);
  b.resize(70);  // shrink drops the high bits
  EXPECT_EQ(b.size(), 70);
  EXPECT_EQ(b.count(), 2);
  b.resize(200);  // grow again: dropped bits stay dropped
  EXPECT_EQ(b.count(), 2);
  b.set_all();
  EXPECT_EQ(b.count(), 200);
}

TEST(DynBitset, ForEachAndVisitsIntersection) {
  DynBitset a(130);
  DynBitset b(130);
  for (const int i : {1, 64, 65, 128}) a.set(i);
  for (const int i : {1, 65, 100, 129}) b.set(i);
  std::vector<int> seen;
  a.for_each_and(b, [&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{1, 65}));
}

TEST(DynBitset, ForEachAndnotVisitsDifference) {
  DynBitset a(130);
  DynBitset b(130);
  for (const int i : {1, 64, 65, 128}) a.set(i);
  for (const int i : {1, 65, 100, 129}) b.set(i);
  std::vector<int> seen;
  a.for_each_andnot(b, [&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{64, 128}));
}

}  // namespace
}  // namespace wmcast::util
