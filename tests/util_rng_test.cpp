#include "wmcast/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace wmcast::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 9.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 9.0);
  }
}

TEST(Rng, NextIntCoversFullRangeWithoutEscaping) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int x = rng.next_int(7);
    ASSERT_GE(x, 0);
    ASSERT_LT(x, 7);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit in 2000 draws
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(6);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(3, 5));
  EXPECT_EQ(seen, (std::set<int>{3, 4, 5}));
}

TEST(Rng, NextIntRoughlyUniform) {
  Rng rng(7);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_int(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(8);
  std::vector<int> v = iota_permutation(50);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.fork();
  // The fork consumed one draw from a; child should not mirror a afterwards.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(IotaPermutation, IsIdentity) {
  EXPECT_EQ(iota_permutation(4), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(iota_permutation(0).empty());
}

}  // namespace
}  // namespace wmcast::util
