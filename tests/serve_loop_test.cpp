// Serve-loop contracts (serve/loop.hpp): modeled-service determinism across
// thread counts (byte-identical telemetry), backpressure accounting under
// both overflow policies, coalescing safety and counting, and the committed
// serve repro staying fixed.
#include "wmcast/serve/loop.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "wmcast/chaos/oracles.hpp"
#include "wmcast/chaos/shrink.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/state.hpp"
#include "wmcast/serve/workload.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::serve {
namespace {

wlan::Scenario test_scenario(uint64_t seed = 11) {
  wlan::GeneratorParams gp;
  gp.n_aps = 10;
  gp.n_users = 30;
  gp.n_sessions = 3;
  gp.area_side_m = 300.0;
  util::Rng rng(seed);
  return wlan::generate_scenario(gp, rng);
}

ctrl::ControllerConfig controller_config(int threads) {
  ctrl::ControllerConfig cfg;
  cfg.seed = 11;
  cfg.threads = threads;
  cfg.max_batch = 0;  // the serve loop owns batching
  return cfg;
}

ServeConfig modeled_config() {
  ServeConfig scfg;
  scfg.batch_max = 32;
  scfg.staleness_s = 0.02;
  scfg.queue_cap = 0;
  scfg.modeled_service = true;
  return scfg;
}

std::vector<TimedEvent> test_workload(const wlan::Scenario& sc,
                                      const std::string& profile = "mixed",
                                      uint64_t seed = 17) {
  WorkloadParams wp;
  wp.duration_s = 2.0;
  wp.events_per_s = 300.0;
  wp.seed = seed;
  return generate_workload(ctrl::NetworkState::from_scenario(sc),
                           WorkloadProfile::named(profile), wp);
}

// The tentpole determinism property: with the deterministic service model,
// the full telemetry document (minus wall-clock fields) is a pure function
// of (workload, config) — byte-identical at --threads=1 vs N.
TEST(ServeLoop, ModeledTelemetryByteIdenticalAcrossThreadCounts) {
  const auto sc = test_scenario();
  const auto events = test_workload(sc);

  std::vector<std::string> dumps;
  for (const int threads : {1, 4}) {
    ctrl::AssociationController c(sc, controller_config(threads));
    ServeLoop loop(&c, modeled_config());
    for (const auto& te : events) loop.offer(te.t_s, te.ev);
    const ServeTelemetry& tele = loop.finish(2.0);
    dumps.push_back(tele.to_json(/*include_wall=*/false).dump(2));
    EXPECT_GT(tele.batches.value(), 1u);
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(ServeLoop, RejectNewestAccountsEveryArrival) {
  const auto sc = test_scenario();
  ctrl::AssociationController c(sc, controller_config(1));
  ServeConfig scfg = modeled_config();
  scfg.queue_cap = 8;
  scfg.batch_max = 8;
  scfg.staleness_s = 10.0;  // nothing drains on staleness during the burst
  scfg.policy = OverflowPolicy::kRejectNewest;
  ServeLoop loop(&c, scfg);

  // 40 same-stamp moves: nothing is due mid-burst (the server is free but
  // batches trigger at full/stale), so the queue caps and the rest reject.
  for (int i = 0; i < 40; ++i) {
    loop.offer(0.0, ctrl::Event::move(i % sc.n_users(), {1.0, 1.0}));
  }
  const ServeTelemetry& tele = loop.finish();
  EXPECT_EQ(tele.offered.value(), 40u);
  EXPECT_GT(tele.rejected.value(), 0u);
  EXPECT_EQ(tele.shed.value(), 0u);
  EXPECT_EQ(tele.offered.value(), tele.accepted.value() + tele.rejected.value());
  EXPECT_EQ(tele.accepted.value(),
            tele.submitted.value() + tele.coalesced.value() + tele.shed.value());
}

TEST(ServeLoop, ShedOldestEvictsInsteadOfRejecting) {
  const auto sc = test_scenario();
  ctrl::AssociationController c(sc, controller_config(1));
  ServeConfig scfg = modeled_config();
  scfg.queue_cap = 8;
  scfg.batch_max = 8;
  scfg.staleness_s = 10.0;
  scfg.policy = OverflowPolicy::kShedOldest;
  scfg.coalesce = false;
  ServeLoop loop(&c, scfg);

  for (int i = 0; i < 40; ++i) {
    loop.offer(0.0, ctrl::Event::move(i % sc.n_users(), {1.0, 1.0}));
  }
  const ServeTelemetry& tele = loop.finish();
  EXPECT_EQ(tele.offered.value(), 40u);
  EXPECT_EQ(tele.rejected.value(), 0u);
  EXPECT_GT(tele.shed.value(), 0u);
  EXPECT_EQ(tele.offered.value(), tele.accepted.value());
  EXPECT_EQ(tele.accepted.value(),
            tele.submitted.value() + tele.coalesced.value() + tele.shed.value());
}

TEST(ServeLoop, CoalescesRedundantMovesToTheLastOne) {
  const auto sc = test_scenario();
  ServeConfig scfg = modeled_config();
  scfg.batch_max = 16;

  // Two identical stacks, one with coalescing off; 10 moves of one user in a
  // single batch must fold to the final position either way.
  ctrl::AssociationController a(sc, controller_config(1));
  ctrl::AssociationController b(sc, controller_config(1));
  ServeLoop with(&a, scfg);
  scfg.coalesce = false;
  ServeLoop without(&b, scfg);
  for (int i = 0; i < 10; ++i) {
    const ctrl::Event e = ctrl::Event::move(0, {10.0 + i, 20.0});
    with.offer(0.0, e);
    without.offer(0.0, e);
  }
  with.finish();
  without.finish();
  EXPECT_EQ(with.telemetry().coalesced.value(), 9u);
  EXPECT_EQ(with.telemetry().submitted.value(), 1u);
  EXPECT_EQ(without.telemetry().coalesced.value(), 0u);
  EXPECT_EQ(a.state(), b.state());
  EXPECT_DOUBLE_EQ(a.state().slot(0).pos.x, 19.0);
}

TEST(ServeLoop, DoesNotCoalesceAcrossPresenceChanges) {
  const auto sc = test_scenario();
  ctrl::AssociationController c(sc, controller_config(1));
  ServeConfig scfg = modeled_config();
  scfg.batch_max = 16;
  ServeLoop loop(&c, scfg);

  // move, leave, rejoin, move in one batch: the first move may not fold into
  // the last (a leave sits between them), so nothing per-user coalesces.
  loop.offer(0.0, ctrl::Event::move(0, {10.0, 10.0}));
  loop.offer(0.0, ctrl::Event::leave(0));
  loop.offer(0.0, ctrl::Event::join(0, {30.0, 30.0}, 1));
  loop.offer(0.0, ctrl::Event::move(0, {40.0, 40.0}));
  loop.finish();
  EXPECT_EQ(loop.telemetry().coalesced.value(), 0u);
  EXPECT_EQ(loop.telemetry().submitted.value(), 4u);
  EXPECT_TRUE(c.state().slot(0).present);
  EXPECT_DOUBLE_EQ(c.state().slot(0).pos.x, 40.0);
}

TEST(ServeLoop, LastRateChangePerSessionWins) {
  const auto sc = test_scenario();
  ctrl::AssociationController c(sc, controller_config(1));
  ServeLoop loop(&c, modeled_config());
  for (int i = 1; i <= 5; ++i) {
    loop.offer(0.0, ctrl::Event::rate_change(0, static_cast<double>(i)));
  }
  loop.finish();
  EXPECT_EQ(loop.telemetry().coalesced.value(), 4u);
  EXPECT_DOUBLE_EQ(c.state().session_rate(0), 5.0);
}

TEST(ServeLoop, StalenessBoundsBatchWait) {
  const auto sc = test_scenario();
  ctrl::AssociationController c(sc, controller_config(1));
  ServeConfig scfg = modeled_config();
  scfg.batch_max = 1000;     // never fills
  scfg.staleness_s = 0.01;
  ServeLoop loop(&c, scfg);

  loop.offer(0.0, ctrl::Event::move(0, {5.0, 5.0}));
  loop.advance_to(0.5);  // far past the staleness deadline
  EXPECT_EQ(loop.telemetry().batches.value(), 1u);
  // Modeled latency = staleness wait + modeled service; well under 0.02 + eps.
  const ServeTelemetry& tele = loop.finish(0.5);
  EXPECT_GT(tele.latency_s.quantile(1.0), 0.0);
  EXPECT_LE(tele.latency_s.quantile(1.0), 0.011 + 1e-3);
}

// staleness_s == 0 edge: an event is stale the moment it arrives, so every
// offer on an idle server dispatches its own batch immediately — no event
// ever waits for a second one, and the only modeled latency is service time.
TEST(ServeLoop, ZeroStalenessDispatchesEveryEventImmediately) {
  const auto sc = test_scenario();
  ctrl::AssociationController c(sc, controller_config(1));
  ServeConfig scfg = modeled_config();
  scfg.batch_max = 1000;  // never fills: staleness alone must trigger
  scfg.staleness_s = 0.0;
  ServeLoop loop(&c, scfg);

  for (int i = 0; i < 10; ++i) {
    // Spaced far beyond the modeled service time, so the server is idle at
    // every arrival. offer() advances the clock before pushing, so event i
    // dispatches at the next call — every earlier event already has its own
    // batch, none ever waited for a companion.
    loop.offer(0.1 * i, ctrl::Event::move(i % sc.n_users(), {5.0 + i, 5.0}));
    EXPECT_EQ(loop.telemetry().batches.value(), static_cast<uint64_t>(i));
  }
  const ServeTelemetry& tele = loop.finish(1.0);
  EXPECT_EQ(tele.batches.value(), 10u);
  EXPECT_EQ(tele.submitted.value() + tele.coalesced.value(), 10u);
  // No staleness wait component: latency is pure modeled service.
  EXPECT_LE(tele.queue_wait_s.quantile(1.0), 1e-9);
}

// finish() racing an in-flight pipelined batch: with staleness 0 every batch
// dispatches eagerly, so the final offer's batch is typically still in flight
// when finish() force-drains. The force-flush must join it, harvest its
// telemetry, and still be byte-identical to the unpipelined run.
TEST(ServePipeline, ForceFlushJoinsTheRacingBatchAtFinish) {
  const auto sc = test_scenario();
  const auto events = test_workload(sc);

  std::vector<std::string> dumps;
  for (const bool pipeline : {false, true}) {
    ctrl::AssociationController c(sc, controller_config(pipeline ? 4 : 1));
    ServeConfig scfg = modeled_config();
    scfg.staleness_s = 0.0;
    scfg.pipeline = pipeline;
    ServeLoop loop(&c, scfg);
    for (const auto& te : events) loop.offer(te.t_s, te.ev);
    // Finish right at the last stamp: no advance_to grace, so any in-flight
    // batch is joined by the force-drain itself.
    const ServeTelemetry& tele = loop.finish(events.back().t_s);
    EXPECT_EQ(tele.offered.value(), tele.accepted.value() + tele.rejected.value());
    EXPECT_EQ(tele.accepted.value(),
              tele.submitted.value() + tele.coalesced.value() + tele.shed.value());
    dumps.push_back(tele.to_json(/*include_wall=*/false).dump(2));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(ServeLoop, OfferRequiresMonotoneStamps) {
  const auto sc = test_scenario();
  ctrl::AssociationController c(sc, controller_config(1));
  ServeLoop loop(&c, modeled_config());
  loop.offer(1.0, ctrl::Event::move(0, {5.0, 5.0}));
  EXPECT_THROW(loop.offer(0.5, ctrl::Event::move(1, {6.0, 6.0})),
               std::invalid_argument);
}

// Oracle-level regression: the committed storm repro must keep passing the
// serve coalescing differential (chaos/oracles.hpp) through the run_repro
// serve.* dispatch — exactly how a shrunk serve failure would be replayed.
TEST(ServeRepro, CommittedStormReproStaysFixed) {
  const std::filesystem::path path = std::filesystem::path(WMCAST_TEST_DATA_DIR) /
                                     "repros" / "repro_serve_coalescing.repro";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  const chaos::Repro r = chaos::load_repro(path.string());
  EXPECT_EQ(r.check, "serve.coalesce_equivalence");
  EXPECT_EQ(r.profile, "storm");
  const auto res = chaos::run_repro(r);
  EXPECT_EQ(chaos::failures_to_text(res.results), "");
  EXPECT_EQ(res.epochs_run, r.trace.n_epochs());
  bool saw_equivalence = false;
  for (const auto& o : res.results) {
    if (o.check == "serve.coalesce_equivalence") saw_equivalence = true;
  }
  EXPECT_TRUE(saw_equivalence);
}

// Pipelined dispatch must not change a single byte of the modeled run: the
// decision sequence, the committed association, and the full deterministic
// telemetry document are identical with the pipeline on or off.
TEST(ServePipeline, ModeledRunByteIdenticalPipelineOnVsOff) {
  const auto sc = test_scenario();
  const auto events = test_workload(sc);

  std::vector<std::string> dumps;
  std::vector<std::vector<int>> committed;
  for (const bool pipeline : {false, true}) {
    ctrl::AssociationController c(sc, controller_config(pipeline ? 4 : 1));
    ServeConfig scfg = modeled_config();
    scfg.pipeline = pipeline;
    ServeLoop loop(&c, scfg);
    for (const auto& te : events) loop.offer(te.t_s, te.ev);
    const ServeTelemetry& tele = loop.finish(2.0);
    dumps.push_back(tele.to_json(/*include_wall=*/false).dump(2));
    committed.push_back(c.slot_ap());
    EXPECT_GT(tele.batches.value(), 1u);
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(committed[0], committed[1]);
}

// Measured-service pipelining takes the deferred-harvest path; the
// conservation laws and the per-event histogram counts must still close.
TEST(ServePipeline, WallModePipelineConserves) {
  const auto sc = test_scenario();
  const auto events = test_workload(sc);
  ctrl::AssociationController c(sc, controller_config(1));
  ServeConfig scfg = modeled_config();
  scfg.modeled_service = false;
  scfg.pipeline = true;
  ServeLoop loop(&c, scfg);
  for (const auto& te : events) loop.offer(te.t_s, te.ev);
  const ServeTelemetry& tele = loop.finish(2.0);
  EXPECT_EQ(tele.offered.value(), tele.accepted.value() + tele.rejected.value());
  EXPECT_EQ(tele.accepted.value(),
            tele.submitted.value() + tele.coalesced.value() + tele.shed.value());
  EXPECT_EQ(tele.latency_s.count(), tele.queue_wait_s.count());
  EXPECT_EQ(tele.latency_s.count(), tele.decision_s.count());
  EXPECT_EQ(tele.latency_s.count(), tele.accepted.value());
}

// The latency split is exact: every ingested event lands once in each of
// latency_s / queue_wait_s / decision_s, and queue_wait + decision == latency
// per event (checked here through the quantile endpoints of a one-batch run).
TEST(ServeTelemetrySplit, HistogramCountsConserve) {
  const auto sc = test_scenario();
  const auto events = test_workload(sc);
  ctrl::AssociationController c(sc, controller_config(1));
  ServeLoop loop(&c, modeled_config());
  for (const auto& te : events) loop.offer(te.t_s, te.ev);
  const ServeTelemetry& tele = loop.finish(2.0);
  EXPECT_EQ(tele.latency_s.count(), tele.accepted.value());
  EXPECT_EQ(tele.queue_wait_s.count(), tele.accepted.value());
  EXPECT_EQ(tele.decision_s.count(), tele.accepted.value());
  // decision is bounded by the modeled service ceiling; queue_wait by the
  // staleness deadline plus server busy time — both must be present in JSON.
  const std::string js = tele.to_json(false).dump();
  EXPECT_NE(js.find("queue_wait_s"), std::string::npos);
  EXPECT_NE(js.find("decision_s"), std::string::npos);
  EXPECT_NE(js.find("\"pipeline\""), std::string::npos);
}

// The occupancy instrument is stamp-defined: a one-batch idle run reports no
// overlap; a saturating burst (service model slower than arrivals) reports
// overlapped batches, identically with the pipeline on or off.
TEST(ServeTelemetrySplit, OverlappedCounterTracksBusyArrivals) {
  const auto sc = test_scenario();
  ServeConfig scfg = modeled_config();
  scfg.batch_max = 4;
  scfg.staleness_s = 0.0005;
  scfg.model_batch_s = 0.05;  // each batch far outlasts the arrival gap

  std::vector<uint64_t> overlapped;
  for (const bool pipeline : {false, true}) {
    ctrl::AssociationController c(sc, controller_config(1));
    ServeConfig pcfg = scfg;
    pcfg.pipeline = pipeline;
    ServeLoop loop(&c, pcfg);
    for (int i = 0; i < 64; ++i) {
      loop.offer(0.001 * i, ctrl::Event::move(i % sc.n_users(), {1.0 + i, 1.0}));
    }
    const ServeTelemetry& tele = loop.finish();
    EXPECT_GT(tele.pipeline_overlapped.value(), 0u);
    EXPECT_LE(tele.pipeline_overlapped.value(), tele.batches.value());
    overlapped.push_back(tele.pipeline_overlapped.value());
  }
  EXPECT_EQ(overlapped[0], overlapped[1]);

  // Idle stream: one batch, server never busy when its head arrived.
  ctrl::AssociationController c(sc, controller_config(1));
  ServeLoop idle(&c, modeled_config());
  idle.offer(0.5, ctrl::Event::move(0, {2.0, 2.0}));
  const ServeTelemetry& tele = idle.finish(1.0);
  EXPECT_EQ(tele.batches.value(), 1u);
  EXPECT_EQ(tele.pipeline_overlapped.value(), 0u);
}

// Oracle-level regression for the sharded-repair/pipelined-serve
// differential: the committed repro must keep passing through the run_repro
// serve.repair_parallel dispatch.
TEST(ServeRepro, CommittedRepairParallelReproStaysFixed) {
  const std::filesystem::path path = std::filesystem::path(WMCAST_TEST_DATA_DIR) /
                                     "repros" / "repro_repair_parallel.repro";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  const chaos::Repro r = chaos::load_repro(path.string());
  EXPECT_EQ(r.check, "serve.repair_parallel_equivalence");
  EXPECT_EQ(r.threads, 4);
  const auto res = chaos::run_repro(r);
  EXPECT_EQ(chaos::failures_to_text(res.results), "");
  EXPECT_EQ(res.epochs_run, r.trace.n_epochs());
  bool saw_equivalence = false;
  bool saw_telemetry = false;
  for (const auto& o : res.results) {
    if (o.check == "serve.repair_parallel_equivalence") saw_equivalence = true;
    if (o.check == "serve.repair_parallel_telemetry") saw_telemetry = true;
  }
  EXPECT_TRUE(saw_equivalence);
  EXPECT_TRUE(saw_telemetry);
}

}  // namespace
}  // namespace wmcast::serve
