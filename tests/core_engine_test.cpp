// CoverageEngine unit tests: the flat engine must represent exactly the same
// set system the paper's reduction builds, and its dirty-group update
// protocol must be indistinguishable from rebuilding from scratch — across
// retires, universe growth, and compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "wmcast/core/engine.hpp"
#include "wmcast/core/solve.hpp"
#include "wmcast/ctrl/engine_source.hpp"
#include "wmcast/ctrl/events.hpp"
#include "wmcast/ctrl/state.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/setcover/set_system.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast {
namespace {

wlan::Scenario small_scenario(uint64_t seed, int n_aps = 8, int n_users = 30) {
  wlan::GeneratorParams p;
  p.n_aps = n_aps;
  p.n_users = n_users;
  p.n_sessions = 3;
  p.area_side_m = 400.0;
  util::Rng rng(seed);
  return wlan::generate_scenario(p, rng);
}

/// Canonical order-free snapshot of the live sets: ids and member order are
/// representation details, the multiset of (group, session, tx_rate, cost,
/// sorted members) is the semantics.
using CanonicalSet = std::tuple<int, int, double, double, std::vector<int>>;

std::vector<CanonicalSet> canonical(const core::CoverageEngine& eng) {
  std::vector<CanonicalSet> out;
  for (int j = 0; j < eng.n_set_slots(); ++j) {
    if (!eng.alive(j)) continue;
    std::vector<int> members(eng.members(j).begin(), eng.members(j).end());
    std::sort(members.begin(), members.end());
    out.emplace_back(eng.group(j), eng.session(j), eng.tx_rate(j), eng.cost(j),
                     std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(CoverageEngine, ToEngineMirrorsSetSystem) {
  const auto sc = small_scenario(11);
  const auto sys = setcover::build_set_system(sc);
  const auto eng = setcover::to_engine(sys);

  ASSERT_EQ(eng.n_set_slots(), sys.n_sets());
  ASSERT_EQ(eng.n_live_sets(), sys.n_sets());
  ASSERT_EQ(eng.n_elements(), sys.n_elements());
  ASSERT_EQ(eng.n_groups(), sys.n_groups());
  for (int j = 0; j < sys.n_sets(); ++j) {
    const auto& s = sys.set(j);
    EXPECT_TRUE(eng.alive(j));
    EXPECT_EQ(eng.group(j), s.group);
    EXPECT_EQ(eng.session(j), s.session);
    EXPECT_EQ(eng.tx_rate(j), s.tx_rate);
    EXPECT_EQ(eng.cost(j), s.cost);
    std::vector<int> members(eng.members(j).begin(), eng.members(j).end());
    std::sort(members.begin(), members.end());
    EXPECT_EQ(members, s.members.to_indices());
  }
  EXPECT_EQ(eng.coverable(), sys.coverable());
  EXPECT_EQ(eng.max_set_cost(), sys.max_set_cost());
  EXPECT_EQ(eng.min_feasible_budget(), sys.min_feasible_budget());
}

TEST(CoverageEngine, BuildFullMatchesReductionThroughSetSystem) {
  for (uint64_t seed : {3u, 7u, 19u}) {
    const auto sc = small_scenario(seed);
    const auto via_sys = setcover::to_engine(setcover::build_set_system(sc));
    const auto direct = setcover::build_engine(sc);
    EXPECT_EQ(canonical(direct), canonical(via_sys)) << "seed " << seed;
    EXPECT_EQ(direct.coverable(), via_sys.coverable());
  }
}

TEST(CoverageEngine, InvertedIndexListsExactlyContainingSets) {
  const auto sc = small_scenario(23);
  const auto eng = setcover::build_engine(sc);
  for (int e = 0; e < eng.n_elements(); ++e) {
    std::vector<int> via_index;
    eng.for_each_set_of(e, [&](int j) { via_index.push_back(j); });
    std::sort(via_index.begin(), via_index.end());
    std::vector<int> via_scan;
    for (int j = 0; j < eng.n_set_slots(); ++j) {
      if (!eng.alive(j)) continue;
      const auto m = eng.members(j);
      if (std::find(m.begin(), m.end(), e) != m.end()) via_scan.push_back(j);
    }
    EXPECT_EQ(via_index, via_scan) << "element " << e;
  }
}

TEST(CoverageEngine, UpdateGroupsEqualsFreshRebuild) {
  const auto sc = small_scenario(31, 10, 40);
  auto state = ctrl::NetworkState::from_scenario(sc);
  util::Rng rng(5);

  core::CoverageEngine incremental;
  incremental.build_full(ctrl::StateSource(state), true);

  for (int round = 0; round < 6; ++round) {
    const ctrl::NetworkState before = state;
    // A burst of churn: moves, zaps, a leave — whatever the rng picks.
    for (int k = 0; k < 5; ++k) {
      const int u = rng.next_int(state.n_slots());
      if (!state.slot(u).present) continue;
      switch (rng.next_int(3)) {
        case 0:
          state.apply(ctrl::Event::move(
              u, {rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)}));
          break;
        case 1:
          state.apply(ctrl::Event::subscribe(u, rng.next_int(state.n_sessions())));
          break;
        default:
          state.apply(ctrl::Event::unsubscribe(u));
          break;
      }
    }
    // Dirty groups: any AP in range of a changed slot, before or after.
    std::vector<int> dirty;
    for (int a = 0; a < state.n_aps(); ++a) {
      for (int s = 0; s < state.n_slots(); ++s) {
        if (before.slot(s) == state.slot(s)) continue;
        if (before.link_rate(a, s) > 0.0 || state.link_rate(a, s) > 0.0) {
          dirty.push_back(a);
          break;
        }
      }
    }
    incremental.update_groups(ctrl::StateSource(state), dirty, true);

    core::CoverageEngine fresh;
    fresh.build_full(ctrl::StateSource(state), true);
    ASSERT_EQ(canonical(incremental), canonical(fresh)) << "round " << round;
    ASSERT_EQ(incremental.coverable(), fresh.coverable()) << "round " << round;
    EXPECT_EQ(incremental.max_set_cost(), fresh.max_set_cost());
    EXPECT_EQ(incremental.min_feasible_budget(), fresh.min_feasible_budget());
  }
  EXPECT_EQ(incremental.stats().full_builds, 1u);
  EXPECT_EQ(incremental.stats().incremental_updates, 6u);
  EXPECT_GT(incremental.stats().groups_rebuilt, 0u);
}

TEST(CoverageEngine, UpdateGrowsUniverseOnJoins) {
  const auto sc = small_scenario(41);
  auto state = ctrl::NetworkState::from_scenario(sc);
  core::CoverageEngine eng;
  eng.build_full(ctrl::StateSource(state), true);
  const int old_n = eng.n_elements();

  // New user joins in the middle of the area: slot space extends.
  state.apply(ctrl::Event::join(state.n_slots(), {200.0, 200.0}, 0));
  std::vector<int> dirty;
  const int slot = state.n_slots() - 1;
  for (int a = 0; a < state.n_aps(); ++a) {
    if (state.link_rate(a, slot) > 0.0) dirty.push_back(a);
  }
  ASSERT_FALSE(dirty.empty());
  eng.update_groups(ctrl::StateSource(state), dirty, true);

  EXPECT_EQ(eng.n_elements(), old_n + 1);
  EXPECT_TRUE(eng.coverable().test(slot));
  core::CoverageEngine fresh;
  fresh.build_full(ctrl::StateSource(state), true);
  EXPECT_EQ(canonical(eng), canonical(fresh));

  // The overflow inverted index covers the new element too.
  int containing = 0;
  eng.for_each_set_of(slot, [&](int) { ++containing; });
  EXPECT_GT(containing, 0);
}

TEST(CoverageEngine, CompactionPreservesSemantics) {
  const auto sc = small_scenario(53, 6, 24);
  auto state = ctrl::NetworkState::from_scenario(sc);
  core::CoverageEngine eng;
  eng.build_full(ctrl::StateSource(state), true);

  // Rebuild every group many times: tombstones pile up until compaction.
  std::vector<int> all_groups;
  for (int a = 0; a < state.n_aps(); ++a) all_groups.push_back(a);
  for (int i = 0; i < 8; ++i) {
    eng.update_groups(ctrl::StateSource(state), all_groups, true);
  }
  EXPECT_GT(eng.stats().compactions, 0u);

  core::CoverageEngine fresh;
  fresh.build_full(ctrl::StateSource(state), true);
  EXPECT_EQ(canonical(eng), canonical(fresh));

  // Explicit compaction is idempotent on a clean engine.
  eng.compact();
  EXPECT_EQ(canonical(eng), canonical(fresh));
  EXPECT_EQ(eng.n_set_slots(), eng.n_live_sets());
}

TEST(CoverageEngine, WarmWorkspaceSolvesAreIdentical) {
  const auto sc = small_scenario(61, 12, 50);
  auto eng = setcover::build_engine(sc);
  core::SolveWorkspace ws;
  const auto first = core::greedy_cover(eng, ws);
  const auto second = core::greedy_cover(eng, ws);
  EXPECT_EQ(first.chosen, second.chosen);
  EXPECT_EQ(first.total_cost, second.total_cost);
  EXPECT_EQ(first.covered, second.covered);

  const auto scg1 = core::scg_cover(eng, ws);
  const auto scg2 = core::scg_cover(eng, ws);
  EXPECT_EQ(scg1.chosen, scg2.chosen);
  EXPECT_EQ(scg1.bstar, scg2.bstar);
}

}  // namespace
}  // namespace wmcast
