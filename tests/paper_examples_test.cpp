// End-to-end integration tests pinning every number in the paper's worked
// examples (§3.2, §4, §5, §6) through the public assoc:: API.
#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/exact/exact_bla.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/setcover/materialize.hpp"
#include "wmcast/setcover/reduction.hpp"

namespace wmcast {
namespace {

// §3.2, MNU paragraph: with 3 Mbps streams the WLAN cannot serve everyone;
// one optimum serves u2,u4,u5 from a1 (load 3/4) and u3 from a2 (load 3/5),
// 4 users total.
TEST(PaperSection3, MnuOptimumServesFourUsers) {
  const auto sc = test::fig1_scenario(3.0);
  const auto sys = setcover::build_set_system(sc);
  const auto opt = exact::exact_max_coverage_uniform(sys, 1.0);
  ASSERT_EQ(opt.status, exact::BbStatus::kOptimal);
  EXPECT_EQ(opt.covered, 4);

  // Verify the specific optimal association the paper describes is feasible
  // with exactly the loads it states.
  const wlan::Association paper_opt{{wlan::kNoAp, 0, 1, 0, 0}};
  const auto rep = wlan::compute_loads(sc, paper_opt);
  EXPECT_NEAR(rep.ap_load[0], 0.75, 1e-12);
  EXPECT_NEAR(rep.ap_load[1], 0.6, 1e-12);
  EXPECT_TRUE(rep.within_budget());
  EXPECT_EQ(rep.satisfied_users, 4);
}

// §3.2, BLA paragraph: with 1 Mbps streams the optimal max load is 1/2
// (u1,u2,u3 on a1; u4,u5 on a2; loads 1/2 and 1/3).
TEST(PaperSection3, BlaOptimumIsOneHalf) {
  const auto sc = test::fig1_scenario(1.0);
  const auto sys = setcover::build_set_system(sc);
  const auto opt = exact::exact_min_max_cover(sys);
  ASSERT_EQ(opt.status, exact::BbStatus::kOptimal);
  EXPECT_NEAR(opt.max_group_cost, 0.5, 1e-9);
}

// §3.2, MLA paragraph: the optimal total load is 7/12 (everyone on a1).
TEST(PaperSection3, MlaOptimumIsSevenTwelfths) {
  const auto sc = test::fig1_scenario(1.0);
  const auto sys = setcover::build_set_system(sc);
  const auto opt = exact::exact_min_cost_cover(sys);
  ASSERT_EQ(opt.status, exact::BbStatus::kOptimal);
  EXPECT_NEAR(opt.cost, 7.0 / 12.0, 1e-9);
}

// §4.1 example: Centralized MNU serves 3 users (u2,u4,u5 on a1) while the
// strongest-signal approach serves only 2 when u1 and u3 grab the APs first.
TEST(PaperSection4, CentralizedMnuVersusSsaWalkthrough) {
  const auto sc = test::fig1_scenario(3.0);
  assoc::CentralizedParams literal;
  literal.mnu_augment = false;  // the paper's verbatim greedy
  const auto mnu = assoc::centralized_mnu(sc, literal);
  EXPECT_EQ(mnu.loads.satisfied_users, 3);

  // The paper's SSA story: if u1, u3 associate first, u2, u4, u5 are blocked.
  // Strongest signals: u1->a1, u3->a2. After that a1 has load 1 (s1 at rate
  // 3) and a2 has 0.6 (s1 at rate 5). u2 needs 0.5 on a1 -> rejected; u4
  // needs 0.6 on a2 -> 1.2 > 1 rejected; u5 needs 0.75 on a1 -> rejected.
  const wlan::Association partial{{0, wlan::kNoAp, 1, wlan::kNoAp, wlan::kNoAp}};
  const auto rep = wlan::compute_loads(sc, partial);
  EXPECT_NEAR(rep.ap_load[0], 1.0, 1e-12);
  EXPECT_NEAR(rep.ap_load[1], 0.6, 1e-12);
  // Adding any further user violates some budget:
  for (const auto& [user, ap] : std::vector<std::pair<int, int>>{{1, 0}, {3, 1}, {4, 0}}) {
    wlan::Association extended = partial;
    extended.user_ap[static_cast<size_t>(user)] = ap;
    EXPECT_FALSE(wlan::compute_loads(sc, extended).within_budget());
  }
}

// §4.2 example: Distributed MNU with order u1..u5 serves 4 of 5 users.
TEST(PaperSection4, DistributedMnuWalkthrough) {
  const auto sc = test::fig1_scenario(3.0);
  util::Rng rng(1);
  assoc::DistributedParams p;
  p.objective = assoc::Objective::kTotalLoad;
  p.order = util::iota_permutation(5);
  const auto sol = assoc::distributed_associate(sc, rng, p);
  EXPECT_EQ(sol.loads.satisfied_users, 4);
  // u1, u3 on a1; u4, u5 on a2 (u2 cannot be served).
  EXPECT_EQ(sol.assoc.ap_of(0), 0);
  EXPECT_EQ(sol.assoc.ap_of(2), 0);
  EXPECT_EQ(sol.assoc.ap_of(3), 1);
  EXPECT_EQ(sol.assoc.ap_of(4), 1);
}

// §5.1 example: Centralized BLA with B* = 1/2 puts everyone on a1.
TEST(PaperSection5, CentralizedBlaWalkthrough) {
  const auto sc = test::fig1_scenario(1.0);
  const auto sol = assoc::centralized_bla(sc);
  for (int u = 0; u < 5; ++u) EXPECT_EQ(sol.assoc.ap_of(u), 0);
  EXPECT_NEAR(sol.loads.max_load, 7.0 / 12.0, 1e-9);
}

// §5.2 example: Distributed BLA reaches loads (1/2, 1/3) — optimal.
TEST(PaperSection5, DistributedBlaWalkthrough) {
  const auto sc = test::fig1_scenario(1.0);
  util::Rng rng(1);
  assoc::DistributedParams p;
  p.objective = assoc::Objective::kLoadVector;
  p.order = util::iota_permutation(5);
  const auto sol = assoc::distributed_associate(sc, rng, p);
  EXPECT_NEAR(sol.loads.ap_load[0], 0.5, 1e-12);
  EXPECT_NEAR(sol.loads.ap_load[1], 1.0 / 3.0, 1e-12);
}

// §6.1/§6.2 examples: both MLA algorithms put everyone on a1 (total 7/12).
TEST(PaperSection6, MlaWalkthroughs) {
  const auto sc = test::fig1_scenario(1.0);
  const auto central = assoc::centralized_mla(sc);
  EXPECT_NEAR(central.loads.total_load, 7.0 / 12.0, 1e-9);

  util::Rng rng(1);
  assoc::DistributedParams p;
  p.objective = assoc::Objective::kTotalLoad;
  p.order = util::iota_permutation(5);
  const auto dist = assoc::distributed_associate(sc, rng, p);
  EXPECT_NEAR(dist.loads.total_load, 7.0 / 12.0, 1e-12);
  for (int u = 0; u < 5; ++u) {
    EXPECT_EQ(central.assoc.ap_of(u), 0);
    EXPECT_EQ(dist.assoc.ap_of(u), 0);
  }
}

// Footnote 3 / §3.1: with basic-rate-only broadcast the problems remain
// meaningful and our algorithms still beat SSA — check on the Fig. 1 MNU
// setting that MNU-C serves at least as many users as SSA.
TEST(PaperSection3, BasicRateModeStillBeatsOrMatchesSsa) {
  const auto sc = test::fig1_scenario(3.0);
  assoc::CentralizedParams cp;
  cp.multi_rate = false;
  const auto mnu = assoc::centralized_mnu(sc, cp);
  int worst_ssa = 5;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    assoc::SsaParams sp;
    sp.multi_rate = false;
    worst_ssa = std::min(worst_ssa, assoc::ssa_associate(sc, rng, sp).loads.satisfied_users);
  }
  EXPECT_GE(mnu.loads.satisfied_users, worst_ssa);
  EXPECT_TRUE(mnu.loads.within_budget());
}

}  // namespace
}  // namespace wmcast
