#include "wmcast/ctrl/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace wmcast::ctrl {
namespace {

TEST(BucketHistogram, ValidatesBounds) {
  EXPECT_THROW(BucketHistogram({}), std::invalid_argument);
  EXPECT_THROW(BucketHistogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(BucketHistogram::exponential(0.0, 2.0, 4), std::invalid_argument);
}

TEST(BucketHistogram, RecordsIntoTheRightBuckets) {
  BucketHistogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // <= 1
  h.record(1.0);    // <= 1 (bound is inclusive)
  h.record(5.0);    // <= 10
  h.record(500.0);  // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 506.5);
  EXPECT_DOUBLE_EQ(h.min_value(), 0.5);
  EXPECT_DOUBLE_EQ(h.max_value(), 500.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5) << "q=0 reports the exact min";
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 500.0) << "overflow reports the exact max";
}

// Documented contract: an empty histogram has no quantiles (NaN), a single
// sample is every quantile of itself, and serialization stays numeric.
TEST(BucketHistogram, EmptyAndSingleSampleQuantiles) {
  BucketHistogram h(std::vector<double>{10.0, 100.0});
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_DOUBLE_EQ(h.to_json().find("p50")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(h.to_json().find("p99")->as_double(), 0.0);

  h.record(42.0);  // lands in the 100.0 bucket; the sample itself is 42
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 42.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.to_json().find("p50")->as_double(), 42.0);
}

TEST(BucketHistogram, ExponentialLadder) {
  const auto h = BucketHistogram::exponential(1.0, 2.0, 4);
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
}

TEST(BucketHistogram, JsonCarriesTheFullDistribution) {
  BucketHistogram h({1.0, 2.0});
  h.record(0.5);
  h.record(1.5);
  const auto j = h.to_json();
  ASSERT_NE(j.find("upper_bounds"), nullptr);
  EXPECT_EQ(j.find("upper_bounds")->size(), 2u);
  EXPECT_EQ(j.find("counts")->size(), 3u);
  EXPECT_EQ(j.find("count")->as_int(), 2);
  EXPECT_DOUBLE_EQ(j.find("mean")->as_double(), 1.0);
}

TEST(Telemetry, JsonMatchesTheDocumentedSchema) {
  Telemetry t;
  t.events_ingested.inc(5);
  t.handoffs.inc(2);
  t.total_load.set(6.5);
  t.dirty_region_size.record(12.0);

  const auto j = t.to_json();
  ASSERT_NE(j.find("schema"), nullptr);
  EXPECT_EQ(j.find("schema")->as_string(), kTelemetrySchema);

  const auto* counters = j.find("counters");
  ASSERT_NE(counters, nullptr);
  for (const char* key :
       {"events_ingested", "events_applied", "events_coalesced", "events_invalid",
        "events_by_type", "drains", "epochs", "incremental_repairs",
        "warm_escalations", "full_solves", "baseline_refreshes", "rollbacks",
        "full_solve_rejections", "joins_admitted", "joins_rejected",
        "reassociations", "handoffs", "forced_reassociations"}) {
    EXPECT_NE(counters->find(key), nullptr) << "missing counter " << key;
  }
  EXPECT_EQ(counters->find("events_ingested")->as_int(), 5);
  EXPECT_EQ(counters->find("handoffs")->as_int(), 2);
  EXPECT_EQ(counters->find("events_by_type")->size(), 6u);

  const auto* gauges = j.find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const char* key : {"users_present", "users_subscribed", "users_served",
                          "total_load", "max_load", "baseline_load",
                          "degradation_pct", "queue_depth"}) {
    EXPECT_NE(gauges->find(key), nullptr) << "missing gauge " << key;
  }
  EXPECT_DOUBLE_EQ(gauges->find("total_load")->as_double(), 6.5);

  const auto* histograms = j.find("histograms");
  ASSERT_NE(histograms, nullptr);
  for (const char* key : {"dirty_region_size", "reassoc_per_epoch", "drain_seconds"}) {
    EXPECT_NE(histograms->find(key), nullptr) << "missing histogram " << key;
  }
  EXPECT_EQ(histograms->find("dirty_region_size")->find("count")->as_int(), 1);

  // The dump must survive a strict re-parse (what benches validate).
  const auto reparsed = util::Json::parse(j.dump(2));
  EXPECT_EQ(reparsed.find("schema")->as_string(), kTelemetrySchema);
}

TEST(Telemetry, TextRenderingMentionsEveryInstrument) {
  Telemetry t;
  t.epochs.inc(3);
  const auto text = t.to_text();
  EXPECT_NE(text.find("epochs"), std::string::npos);
  EXPECT_NE(text.find("handoffs"), std::string::npos);
  EXPECT_NE(text.find("dirty_region_size"), std::string::npos);
}

}  // namespace
}  // namespace wmcast::ctrl
