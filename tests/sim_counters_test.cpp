// Accounting invariants of the protocol simulator's counters and traces.
#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/sim/network.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::sim {
namespace {

SimConfig base_config() {
  SimConfig c;
  c.latency_s = 0.002;
  c.scan_period_s = 1.0;
  c.phase_jitter_s = 1.0;
  c.quiet_period_s = 4.0;
  c.max_time_s = 60.0;
  return c;
}

TEST(SimCounters, QueriesEqualResponsesWithoutLoss) {
  const auto sc = test::fig1_scenario(1.0);
  ProtocolSim sim(sc, base_config(), util::Rng(1));
  const auto out = sim.run();
  EXPECT_EQ(out.counters.queries, out.counters.responses);
  EXPECT_EQ(out.counters.lost_messages, 0);
}

TEST(SimCounters, JoinsMinusRejectionsMatchTraceJoins) {
  util::Rng gen(199);
  wlan::GeneratorParams p;
  p.n_aps = 8;
  p.n_users = 30;
  p.area_side_m = 350.0;
  p.load_budget = 0.2;
  const auto sc = wlan::generate_scenario(p, gen);
  SimConfig cfg = base_config();
  cfg.phase_jitter_s = 0.0;  // synchronized: provoke races and rejections
  ProtocolSim sim(sc, cfg, util::Rng(2));
  const auto out = sim.run();
  int64_t trace_joins = 0;
  for (const auto& t : out.trace) {
    if (t.to_ap != wlan::kNoAp) ++trace_joins;
  }
  EXPECT_EQ(out.counters.joins - out.counters.rejections, trace_joins);
}

TEST(SimCounters, LeavesNeverExceedJoins) {
  util::Rng gen(211);
  wlan::GeneratorParams p;
  p.n_aps = 10;
  p.n_users = 40;
  p.area_side_m = 400.0;
  const auto sc = wlan::generate_scenario(p, gen);
  ProtocolSim sim(sc, base_config(), util::Rng(3));
  const auto out = sim.run();
  EXPECT_LE(out.counters.leaves, out.counters.joins);
  EXPECT_GT(out.counters.decisions, 0);
}

TEST(SimCounters, TraceTimesAreMonotone) {
  const auto sc = test::fig1_scenario(3.0);
  ProtocolSim sim(sc, base_config(), util::Rng(4));
  const auto out = sim.run();
  for (size_t i = 1; i < out.trace.size(); ++i) {
    EXPECT_LE(out.trace[i - 1].time_s, out.trace[i].time_s);
  }
  if (!out.trace.empty()) {
    EXPECT_NEAR(out.trace.back().time_s, out.last_change_s, 1e-12);
  }
}

TEST(SimCounters, NoNeighborsNoDecisions) {
  // Users out of everyone's range never produce decide events.
  const std::vector<std::vector<double>> link = {{0.0, 0.0}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 0}, {1.0}, 0.9);
  SimConfig cfg = base_config();
  cfg.max_time_s = 10.0;
  ProtocolSim sim(sc, cfg, util::Rng(5));
  const auto out = sim.run();
  EXPECT_EQ(out.counters.decisions, 0);
  EXPECT_EQ(out.counters.queries, 0);
  EXPECT_TRUE(out.converged);  // nothing ever changes
}

TEST(SimCounters, EndTimeNeverExceedsHorizonPlusOneEvent) {
  const auto sc = test::fig4_scenario();
  SimConfig cfg = base_config();
  cfg.phase_jitter_s = 0.0;
  cfg.max_time_s = 15.0;
  ProtocolSim sim(sc, cfg, util::Rng(6));
  sim.set_initial(wlan::Association{{0, 0, 1, 1}});
  const auto out = sim.run();
  EXPECT_LE(out.end_time_s, cfg.max_time_s + 1.0);
  EXPECT_FALSE(out.converged);
}

}  // namespace
}  // namespace wmcast::sim
