#include "wmcast/exact/lp_writer.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/setcover/reduction.hpp"

namespace wmcast::exact {
namespace {

TEST(LpWriter, MlaHasObjectiveAndCoverConstraints) {
  const auto sc = test::fig1_scenario(1.0);
  const auto sys = setcover::build_set_system(sc);
  const std::string lp = write_mla_lp(sys);
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
  // One cover constraint per user.
  for (int u = 0; u < 5; ++u) {
    EXPECT_NE(lp.find("cover_u" + std::to_string(u) + ":"), std::string::npos);
  }
  // One binary per set.
  for (int j = 0; j < sys.n_sets(); ++j) {
    EXPECT_NE(lp.find("x" + std::to_string(j)), std::string::npos);
  }
}

TEST(LpWriter, BlaBoundsEveryGroupByZ) {
  const auto sc = test::fig1_scenario(1.0);
  const auto sys = setcover::build_set_system(sc);
  const std::string lp = write_bla_lp(sys);
  EXPECT_NE(lp.find("obj: z"), std::string::npos);
  EXPECT_NE(lp.find("load_a0:"), std::string::npos);
  EXPECT_NE(lp.find("load_a1:"), std::string::npos);
  EXPECT_NE(lp.find("- z <= 0"), std::string::npos);
}

TEST(LpWriter, MnuHasBudgetsAndIndicators) {
  const auto sc = test::fig1_scenario(3.0);
  const auto sys = setcover::build_set_system(sc);
  const std::vector<double> budgets(2, 1.0);
  const std::string lp = write_mnu_lp(sys, budgets);
  EXPECT_NE(lp.find("Maximize"), std::string::npos);
  EXPECT_NE(lp.find("budget_a0:"), std::string::npos);
  EXPECT_NE(lp.find("budget_a1:"), std::string::npos);
  for (int u = 0; u < 5; ++u) {
    EXPECT_NE(lp.find("served_u" + std::to_string(u) + ":"), std::string::npos);
    EXPECT_NE(lp.find("y" + std::to_string(u)), std::string::npos);
  }
}

TEST(LpWriter, MnuRejectsWrongBudgetCount) {
  const auto sc = test::fig1_scenario(3.0);
  const auto sys = setcover::build_set_system(sc);
  const std::vector<double> wrong(1, 1.0);
  EXPECT_THROW(write_mnu_lp(sys, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::exact
