// Determinism contract of the parallel execution layer (DESIGN.md §9): every
// parallel entry point must produce bitwise-identical results at any thread
// count, the serial sweep must match the historical fork-inside-the-loop
// harness stream for stream, and the sharded greedy must commit the same
// association as the joint serial solve.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/core/engine.hpp"
#include "wmcast/core/parallel.hpp"
#include "wmcast/core/solve.hpp"
#include "wmcast/core/workspace.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/setcover/materialize.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/thread_pool.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast {
namespace {

wlan::Scenario test_scenario(uint64_t seed, int n_aps = 40, int n_users = 120,
                             int n_sessions = 5) {
  wlan::GeneratorParams p;
  p.n_aps = n_aps;
  p.n_users = n_users;
  p.n_sessions = n_sessions;
  p.area_side_m = 600.0;
  util::Rng rng(seed);
  return wlan::generate_scenario(p, rng);
}

std::vector<bench::Algo> sweep_algos() {
  return {
      {"MLA-C",
       [](const wlan::Scenario& sc, util::Rng&) {
         return assoc::centralized_mla(sc).loads.total_load;
       }},
      {"noise",  // consumes its rng stream, so stream assignment matters
       [](const wlan::Scenario& sc, util::Rng& rng) {
         return rng.next_double() + sc.n_users();
       }},
  };
}

// --- Sweep harness ----------------------------------------------------------

TEST(ParallelDeterminism, SweepPointIdenticalAtAnyThreadCount) {
  wlan::GeneratorParams p;
  p.n_aps = 30;
  p.n_users = 90;
  const auto algos = sweep_algos();
  const auto serial = bench::sweep_point(p, 12, 42, algos);
  for (const int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    const auto par = bench::sweep_point(p, 12, 42, algos, &pool);
    ASSERT_EQ(par.size(), serial.size()) << threads << " threads";
    for (size_t a = 0; a < serial.size(); ++a) {
      // Bitwise equality: same streams, same scenarios, same reduction order.
      EXPECT_EQ(par[a].min, serial[a].min) << threads << " threads, algo " << a;
      EXPECT_EQ(par[a].avg, serial[a].avg) << threads << " threads, algo " << a;
      EXPECT_EQ(par[a].max, serial[a].max) << threads << " threads, algo " << a;
    }
  }
}

TEST(ParallelDeterminism, SweepPointMatchesHistoricalForkOrder) {
  // The pre-drawn-streams sweep must reproduce the original serial harness,
  // which forked the master *inside* the loop: scenario fork, then one fork
  // per algorithm. A regression here silently changes every figure bench.
  wlan::GeneratorParams p;
  p.n_aps = 30;
  p.n_users = 90;
  const auto algos = sweep_algos();
  const uint64_t seed = 1234;
  const int n_scenarios = 10;

  std::vector<util::RunningStat> stats(algos.size());
  util::Rng master(seed);
  for (int s = 0; s < n_scenarios; ++s) {
    util::Rng scenario_rng = master.fork();
    const auto sc = wlan::generate_scenario(p, scenario_rng);
    for (size_t a = 0; a < algos.size(); ++a) {
      util::Rng algo_rng = master.fork();
      stats[a].add(algos[a].metric(sc, algo_rng));
    }
  }

  const auto sums = bench::sweep_point(p, n_scenarios, seed, algos);
  ASSERT_EQ(sums.size(), stats.size());
  for (size_t a = 0; a < stats.size(); ++a) {
    const auto legacy = util::summarize(stats[a]);
    EXPECT_EQ(sums[a].min, legacy.min) << "algo " << a;
    EXPECT_EQ(sums[a].avg, legacy.avg) << "algo " << a;
    EXPECT_EQ(sums[a].max, legacy.max) << "algo " << a;
  }
}

// --- Sharded solver entry points --------------------------------------------

class ShardedSolvers : public ::testing::Test {
 protected:
  void SetUp() override {
    sc_ = test_scenario(7);
    eng_.build_full(setcover::ScenarioSource(sc_), true);
    shards_.build(eng_);
  }

  wlan::Scenario sc_ = test_scenario(7);
  core::CoverageEngine eng_;
  core::SessionShards shards_;
};

TEST_F(ShardedSolvers, ShardsPartitionTheCoverableUniverse) {
  util::DynBitset seen(eng_.n_elements());
  int total_weight = 0;
  for (int k = 0; k < shards_.n_shards(); ++k) {
    EXPECT_EQ(shards_.target(k).count(), shards_.weight(k));
    total_weight += shards_.weight(k);
    // Disjoint: no element may appear in two shards.
    EXPECT_EQ(seen.and_count(shards_.target(k)), 0) << "shard " << k;
    seen.or_assign(shards_.target(k));
  }
  EXPECT_EQ(seen, eng_.coverable());
  EXPECT_EQ(total_weight, eng_.coverable().count());
}

TEST_F(ShardedSolvers, GreedyThreadInvariant) {
  util::ThreadPool ref_pool(1);
  core::ShardWorkspaces ref_ws;
  const auto ref = core::parallel_greedy_cover(eng_, ref_pool, ref_ws, shards_);
  for (const int threads : {2, 8}) {
    util::ThreadPool pool(threads);
    core::ShardWorkspaces wss;
    const auto got = core::parallel_greedy_cover(eng_, pool, wss, shards_);
    EXPECT_EQ(got.chosen, ref.chosen) << threads << " threads";
    EXPECT_EQ(got.covered, ref.covered) << threads << " threads";
    EXPECT_EQ(got.total_cost, ref.total_cost) << threads << " threads";
    EXPECT_EQ(got.complete, ref.complete) << threads << " threads";
  }
}

TEST_F(ShardedSolvers, McgThreadInvariant) {
  const std::vector<double> budgets(static_cast<size_t>(eng_.n_groups()),
                                    sc_.load_budget());
  for (const bool augment : {false, true}) {
    util::ThreadPool ref_pool(1);
    core::ShardWorkspaces ref_ws;
    const auto ref =
        core::parallel_mcg_cover(eng_, ref_pool, ref_ws, shards_, budgets, augment);
    for (const int threads : {2, 8}) {
      util::ThreadPool pool(threads);
      core::ShardWorkspaces wss;
      const auto got =
          core::parallel_mcg_cover(eng_, pool, wss, shards_, budgets, augment);
      EXPECT_EQ(got.h, ref.h) << threads << " threads, augment " << augment;
      EXPECT_EQ(got.chosen, ref.chosen) << threads << " threads, augment " << augment;
      EXPECT_EQ(got.covered, ref.covered) << threads << " threads";
      EXPECT_EQ(got.covered_h, ref.covered_h) << threads << " threads";
    }
  }
}

TEST_F(ShardedSolvers, ScgThreadInvariant) {
  util::ThreadPool ref_pool(1);
  core::ShardWorkspaces ref_ws;
  const auto ref = core::parallel_scg_cover(eng_, ref_pool, ref_ws, shards_);
  for (const int threads : {2, 8}) {
    util::ThreadPool pool(threads);
    core::ShardWorkspaces wss;
    const auto got = core::parallel_scg_cover(eng_, pool, wss, shards_);
    EXPECT_EQ(got.chosen, ref.chosen) << threads << " threads";
    EXPECT_EQ(got.covered, ref.covered) << threads << " threads";
    EXPECT_EQ(got.feasible, ref.feasible) << threads << " threads";
    EXPECT_EQ(got.bstar, ref.bstar) << threads << " threads";
    EXPECT_EQ(got.group_cost, ref.group_cost) << threads << " threads";
  }
}

TEST_F(ShardedSolvers, ShardedGreedyMatchesJointAssociation) {
  // The joint greedy and the sharded greedy pick the same *set* of sets (a
  // session's sets never cover another session's users), so the materialized
  // association — first chosen set wins, per user — must be identical.
  core::SolveWorkspace ws;
  const auto joint = core::greedy_cover(eng_, ws);

  util::ThreadPool pool(8);
  core::ShardWorkspaces wss;
  const auto sharded = core::parallel_greedy_cover(eng_, pool, wss, shards_);

  EXPECT_EQ(sharded.covered, joint.covered);
  EXPECT_EQ(sharded.complete, joint.complete);
  auto joint_sorted = joint.chosen;
  auto sharded_sorted = sharded.chosen;
  std::sort(joint_sorted.begin(), joint_sorted.end());
  std::sort(sharded_sorted.begin(), sharded_sorted.end());
  EXPECT_EQ(sharded_sorted, joint_sorted);

  const auto a_joint = setcover::materialize(sc_, eng_, joint.chosen);
  const auto a_sharded = setcover::materialize(sc_, eng_, sharded.chosen);
  EXPECT_EQ(a_sharded.user_ap, a_joint.user_ap);
}

TEST_F(ShardedSolvers, ComponentGroupedBuild) {
  // Group sessions {0, 2} and {1, 3} onto shared channels; session 4 rides
  // alone. Shards are ordered by ascending label and still partition the
  // universe.
  const std::vector<int> component = {0, 1, 0, 1, 2};
  core::SessionShards grouped;
  grouped.build(eng_, component);
  ASSERT_EQ(grouped.n_shards(), 3);
  EXPECT_EQ(grouped.sessions(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(grouped.sessions(1), (std::vector<int>{1, 3}));
  EXPECT_EQ(grouped.sessions(2), (std::vector<int>{4}));

  util::DynBitset seen(eng_.n_elements());
  for (int k = 0; k < grouped.n_shards(); ++k) {
    EXPECT_EQ(seen.and_count(grouped.target(k)), 0);
    seen.or_assign(grouped.target(k));
  }
  EXPECT_EQ(seen, eng_.coverable());

  // Shard 0's target must be the union of the per-session targets of 0 and 2.
  util::DynBitset expect(eng_.n_elements());
  expect.or_assign(shards_.target(0));
  expect.or_assign(shards_.target(2));
  EXPECT_EQ(grouped.target(0), expect);
}

TEST_F(ShardedSolvers, ParallelStatsSanity) {
  util::ThreadPool pool(4);
  core::ShardWorkspaces wss;
  core::ParallelStats stats;
  core::parallel_greedy_cover(eng_, pool, wss, shards_, &stats);
  EXPECT_EQ(stats.tasks, shards_.n_shards());
  EXPECT_EQ(stats.workers, std::min(4, shards_.n_shards()));
  EXPECT_GE(stats.imbalance, 1.0);  // max >= mean whenever any shard has weight
  EXPECT_TRUE(std::isfinite(stats.imbalance));
}

// --- Centralized solver wiring ----------------------------------------------

TEST(ParallelDeterminism, CentralizedSolversPoolInvariant) {
  const auto sc = test_scenario(21).with_budget(0.2);
  for (const auto* algo : {"mla", "bla", "mnu"}) {
    std::vector<std::vector<int>> per_threads;
    for (const int threads : {1, 2, 8}) {
      util::ThreadPool pool(threads);
      assoc::CentralizedParams params;
      params.pool = &pool;
      assoc::EngineContext ctx;
      ctx.build(sc, params.multi_rate);
      assoc::Solution sol;
      if (std::string(algo) == "mla") {
        sol = assoc::centralized_mla(sc, params, ctx);
      } else if (std::string(algo) == "bla") {
        sol = assoc::centralized_bla(sc, params, {}, ctx);
      } else {
        sol = assoc::centralized_mnu(sc, params, ctx);
      }
      per_threads.push_back(sol.assoc.user_ap);
    }
    EXPECT_EQ(per_threads[1], per_threads[0]) << algo << ": 2 vs 1 threads";
    EXPECT_EQ(per_threads[2], per_threads[0]) << algo << ": 8 vs 1 threads";
  }
}

TEST(ParallelDeterminism, CentralizedMlaShardedMatchesSerialDefault) {
  // For MLA the sharded path must also agree with the pool-less default (the
  // joint greedy): same associations, since per-session gains are separable.
  const auto sc = test_scenario(33);
  const auto serial = assoc::centralized_mla(sc);
  util::ThreadPool pool(8);
  assoc::CentralizedParams params;
  params.pool = &pool;
  assoc::EngineContext ctx;
  ctx.build(sc, params.multi_rate);
  const auto sharded = assoc::centralized_mla(sc, params, ctx);
  EXPECT_EQ(sharded.assoc.user_ap, serial.assoc.user_ap);
  EXPECT_EQ(sharded.loads.total_load, serial.loads.total_load);
}

// --- Controller wiring ------------------------------------------------------

TEST(ParallelDeterminism, ControllerCommitsSameAssociationAtAnyThreadCount) {
  const auto sc = test_scenario(11, 25, 80, 4);

  const auto run = [&](int threads) {
    ctrl::ControllerConfig cfg;
    cfg.seed = 5;
    cfg.threads = threads;
    cfg.full_refresh_epochs = 2;  // exercise the full-solve path repeatedly
    ctrl::AssociationController c(sc, cfg);

    ctrl::TraceParams tp;
    tp.epochs = 6;
    tp.move_fraction = 0.15;
    tp.walk_sigma_m = 25.0;
    tp.zap_fraction = 0.05;
    tp.leave_fraction = 0.02;
    tp.join_fraction = 0.02;
    util::Rng trace_rng(6);
    const auto trace = ctrl::generate_churn_trace(c.state(), tp, trace_rng);

    std::vector<std::vector<int>> per_epoch;
    per_epoch.push_back(c.slot_ap());
    for (const auto& batch : trace.epochs) {
      c.submit(batch);
      c.drain();
      per_epoch.push_back(c.slot_ap());
    }
    const bool parallel_counted =
        c.telemetry().engine_parallel_solves.value() > 0;
    return std::make_pair(per_epoch, parallel_counted);
  };

  const auto [serial, serial_counted] = run(1);
  const auto [parallel, parallel_counted] = run(8);
  EXPECT_FALSE(serial_counted);  // threads = 1 keeps the joint reference path
  EXPECT_TRUE(parallel_counted);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(parallel[e], serial[e]) << "epoch " << e;
  }
}

}  // namespace
}  // namespace wmcast
