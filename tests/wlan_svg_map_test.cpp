#include "wmcast/wlan/svg_map.hpp"

#include <gtest/gtest.h>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::wlan {
namespace {

Scenario small_map(uint64_t seed = 5) {
  GeneratorParams p;
  p.n_aps = 6;
  p.n_users = 15;
  p.n_sessions = 3;
  p.area_side_m = 400.0;
  util::Rng rng(seed);
  return generate_scenario(p, rng);
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(SvgMap, TopologyOnlyRendersAllNodes) {
  const auto sc = small_map();
  const std::string svg = render_svg(sc);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(count_occurrences(svg, "class=\"ap\""), 6);
  EXPECT_EQ(count_occurrences(svg, "class=\"user\""), 15);
  EXPECT_EQ(count_occurrences(svg, "<line"), 0);  // no association, no edges
}

TEST(SvgMap, AssociationDrawsEdgesForServedUsersOnly) {
  const auto sc = small_map();
  const auto sol = assoc::centralized_mla(sc);
  const std::string svg = render_svg(sc, &sol.assoc);
  EXPECT_EQ(count_occurrences(svg, "<line"), sol.loads.satisfied_users);
}

TEST(SvgMap, RangesOptionAddsCircles) {
  const auto sc = small_map();
  SvgOptions opt;
  opt.draw_ranges = true;
  const std::string with = render_svg(sc, nullptr, opt);
  const std::string without = render_svg(sc);
  EXPECT_GT(count_occurrences(with, "<circle"), count_occurrences(without, "<circle"));
}

TEST(SvgMap, LoadedApsGetRedder) {
  // An idle AP renders white (#ffffff); any load turns the green/blue
  // channels down.
  const auto sc = small_map();
  const std::string idle = render_svg(sc);
  EXPECT_NE(idle.find("#ffffff"), std::string::npos);
  const auto sol = assoc::centralized_mla(sc);
  const std::string loaded = render_svg(sc, &sol.assoc);
  // At least one AP must be shaded non-white now.
  int white_aps = 0;
  int shaded = 0;
  size_t pos = 0;
  while ((pos = loaded.find("class=\"ap\"", pos)) != std::string::npos) {
    const size_t fill = loaded.find("fill=\"#", pos);
    if (loaded.compare(fill + 6, 7, "#ffffff") == 0) {
      ++white_aps;
    } else {
      ++shaded;
    }
    pos += 10;
  }
  EXPECT_GT(shaded, 0);
}

TEST(SvgMap, RejectsBadInput) {
  const auto flat = Scenario::from_link_rates({{1.0}}, {0}, {1.0}, 0.9);
  EXPECT_THROW(render_svg(flat), std::invalid_argument);
  const auto sc = small_map();
  const Association wrong = Association::none(3);
  EXPECT_THROW(render_svg(sc, &wrong), std::invalid_argument);
  SvgOptions bad;
  bad.canvas_px = 0.0;
  EXPECT_THROW(render_svg(sc, nullptr, bad), std::invalid_argument);
}

TEST(SvgMap, SaveWritesFile) {
  const auto sc = small_map();
  const std::string path = testing::TempDir() + "/wmcast_map_test.svg";
  EXPECT_TRUE(save_svg(sc, nullptr, path));
  std::remove(path.c_str());
  EXPECT_FALSE(save_svg(sc, nullptr, "/nonexistent-dir/x.svg"));
}

}  // namespace
}  // namespace wmcast::wlan
