#include "wmcast/sim/handoff.hpp"

#include <gtest/gtest.h>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/mobility.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::sim {
namespace {

using wlan::Association;
using wlan::kNoAp;

TEST(Handoff, CountsTransitionsByKind) {
  const std::vector<Association> snaps = {
      Association{{kNoAp, 0, 1}},  // start
      Association{{0, 1, 1}},      // u0 joins, u1 hands off, u2 stays
      Association{{0, kNoAp, 0}},  // u1 drops, u2 hands off
  };
  HandoffModel m;
  m.handoff_interruption_s = 0.3;
  m.rejoin_interruption_s = 1.0;
  const auto rep = account_disruptions(snaps, m);
  EXPECT_EQ(rep.joins, 1);
  EXPECT_EQ(rep.handoffs, 2);
  EXPECT_EQ(rep.drops, 1);
  EXPECT_NEAR(rep.total_disruption_s, 1.0 + 0.3 + 1.0 + 0.3, 1e-12);
  // u1: one handoff + one drop = 1.3 s, the worst-hit user.
  EXPECT_NEAR(rep.worst_user_disruption_s, 1.3, 1e-12);
  EXPECT_NEAR(rep.per_user_s[1], 1.3, 1e-12);
}

TEST(Handoff, StableSequencesCostNothing) {
  const Association a{{0, 1, kNoAp}};
  const auto rep = account_disruptions({a, a, a});
  EXPECT_EQ(rep.handoffs + rep.joins + rep.drops, 0);
  EXPECT_DOUBLE_EQ(rep.total_disruption_s, 0.0);
}

TEST(Handoff, FewerThanTwoSnapshotsIsEmpty) {
  EXPECT_DOUBLE_EQ(account_disruptions({}).total_disruption_s, 0.0);
  EXPECT_DOUBLE_EQ(account_disruptions({Association{{0}}}).total_disruption_s, 0.0);
}

TEST(Handoff, MismatchedSnapshotsThrow) {
  EXPECT_THROW(account_disruptions({Association{{0}}, Association{{0, 1}}}),
               std::invalid_argument);
  HandoffModel bad;
  bad.handoff_interruption_s = -1.0;
  EXPECT_THROW(account_disruptions({Association{{0}}, Association{{0}}}, bad),
               std::invalid_argument);
}

TEST(Handoff, WarmDistributedDisruptsLessThanColdCentralized) {
  // The §1 signaling argument as a user-experience number: across churn
  // epochs, warm distributed resumes disrupt streams less than cold
  // centralized re-solves.
  util::Rng rng(229);
  wlan::GeneratorParams p;
  p.n_aps = 40;
  p.n_users = 120;
  auto sc = wlan::generate_scenario(p, rng);

  wlan::ChurnParams churn;
  churn.move_fraction = 0.08;
  churn.zap_fraction = 0.04;

  std::vector<Association> warm_snaps;
  std::vector<Association> cold_snaps;
  util::Rng wrng(1);
  auto warm = assoc::distributed_mla(sc, wrng);
  warm_snaps.push_back(warm.assoc);
  cold_snaps.push_back(assoc::centralized_mla(sc).assoc);

  for (int epoch = 0; epoch < 6; ++epoch) {
    const auto next = wlan::churn_epoch(sc, churn, rng);
    assoc::DistributedParams dp;
    dp.initial = wlan::carry_over(next, sc, warm.assoc);
    util::Rng r = rng.fork();
    warm = assoc::distributed_associate(next, r, dp);
    warm_snaps.push_back(warm.assoc);
    cold_snaps.push_back(assoc::centralized_mla(next).assoc);
    sc = next;
  }
  const auto warm_rep = account_disruptions(warm_snaps);
  const auto cold_rep = account_disruptions(cold_snaps);
  EXPECT_LT(warm_rep.total_disruption_s, cold_rep.total_disruption_s);
}

}  // namespace
}  // namespace wmcast::sim
