#include "wmcast/sim/csma.hpp"

#include <gtest/gtest.h>

#include "wmcast/mac/airtime.hpp"

namespace wmcast::sim {
namespace {

CsmaConfig fast_config() {
  CsmaConfig c;
  c.horizon_s = 1.0;
  c.seed = 3;
  return c;
}

TEST(Csma, IsolatedApDeliversEverything) {
  // One AP, no conflicts: no collisions possible.
  std::vector<ApWorkload> aps(1);
  aps[0].multicast = {{1.0, 24.0}};
  const std::vector<std::vector<int>> conflicts = {{}};
  const auto r = simulate_csma(aps, conflicts, fast_config());
  EXPECT_GT(r.mc_frames_sent, 50);
  EXPECT_EQ(r.mc_frames_collided, 0);
  EXPECT_DOUBLE_EQ(r.overall_mc_delivery, 1.0);
  EXPECT_EQ(r.collisions, 0);
  // Airtime roughly matches the analytic load (backoff adds a little).
  EXPECT_NEAR(r.airtime_fraction[0], mac::airtime_load(1.0, 24.0, 1500), 0.02);
}

TEST(Csma, DisjointChannelsNeverCollide) {
  std::vector<ApWorkload> aps(3);
  for (auto& a : aps) a.multicast = {{2.0, 12.0}};
  const std::vector<std::vector<int>> conflicts = {{}, {}, {}};
  const auto r = simulate_csma(aps, conflicts, fast_config());
  EXPECT_EQ(r.collisions, 0);
  EXPECT_DOUBLE_EQ(r.overall_mc_delivery, 1.0);
}

TEST(Csma, SharedChannelCausesBroadcastLoss) {
  // Two heavily loaded APs on one channel: collisions must occur and
  // broadcast frames are lost (no retransmission).
  std::vector<ApWorkload> aps(2);
  for (auto& a : aps) a.multicast = {{4.0, 12.0}, {4.0, 12.0}};
  const std::vector<std::vector<int>> conflicts = {{1}, {0}};
  const auto r = simulate_csma(aps, conflicts, fast_config());
  EXPECT_GT(r.collisions, 0);
  EXPECT_GT(r.mc_frames_collided, 0);
  EXPECT_LT(r.overall_mc_delivery, 1.0);
  EXPECT_GT(r.overall_mc_delivery, 0.3);  // CSMA still mostly works
}

TEST(Csma, UnicastRetriesWhereBroadcastLoses) {
  // Same contention, but unicast traffic: retries recover collided frames,
  // so goodput stays positive and drops stay rare relative to deliveries.
  std::vector<ApWorkload> aps(2);
  for (auto& a : aps) {
    a.multicast = {{2.0, 12.0}};
    a.unicast = {UnicastClient{54.0}};
  }
  const std::vector<std::vector<int>> conflicts = {{1}, {0}};
  const auto r = simulate_csma(aps, conflicts, fast_config());
  EXPECT_GT(r.total_unicast_goodput_mbps, 1.0);
  EXPECT_GT(r.collisions, 0);
}

TEST(Csma, MoreContendersLowerDelivery) {
  auto run = [&](int n_aps) {
    std::vector<ApWorkload> aps(static_cast<size_t>(n_aps));
    for (auto& a : aps) a.multicast = {{2.0, 12.0}};
    // Full mesh conflicts (all on one channel, all in range).
    std::vector<std::vector<int>> conflicts(static_cast<size_t>(n_aps));
    for (int a = 0; a < n_aps; ++a) {
      for (int b = 0; b < n_aps; ++b) {
        if (a != b) conflicts[static_cast<size_t>(a)].push_back(b);
      }
    }
    return simulate_csma(aps, conflicts, fast_config()).overall_mc_delivery;
  };
  const double d2 = run(2);
  const double d6 = run(6);
  EXPECT_GT(d2, d6);
}

TEST(Csma, AirtimeConservation) {
  // On a fully conflicting channel the summed transmit airtime cannot
  // exceed 1 (one medium), and idle+busy accounting must be sane.
  std::vector<ApWorkload> aps(4);
  for (auto& a : aps) {
    a.multicast = {{3.0, 6.0}};  // heavy offered load: saturates the channel
  }
  std::vector<std::vector<int>> conflicts(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) conflicts[static_cast<size_t>(a)].push_back(b);
    }
  }
  const auto r = simulate_csma(aps, conflicts, fast_config());
  double total_airtime = 0.0;
  for (const double f : r.airtime_fraction) total_airtime += f;
  // Collided transmissions overlap pairwise, so the sum can exceed 1
  // slightly, but never 2x the medium.
  EXPECT_GT(total_airtime, 0.8);
  EXPECT_LT(total_airtime, 2.0);
}

TEST(Csma, SameChannelConflictReduction) {
  const std::vector<std::vector<int>> graph = {{1, 2}, {0, 2}, {0, 1}};
  const std::vector<int> channels = {0, 1, 0};
  const auto reduced = same_channel_conflicts(graph, channels);
  EXPECT_EQ(reduced[0], (std::vector<int>{2}));
  EXPECT_TRUE(reduced[1].empty());
  EXPECT_EQ(reduced[2], (std::vector<int>{0}));
}

TEST(Csma, DeterministicPerSeed) {
  std::vector<ApWorkload> aps(2);
  for (auto& a : aps) a.multicast = {{2.0, 12.0}};
  const std::vector<std::vector<int>> conflicts = {{1}, {0}};
  const auto r1 = simulate_csma(aps, conflicts, fast_config());
  const auto r2 = simulate_csma(aps, conflicts, fast_config());
  EXPECT_EQ(r1.mc_frames_sent, r2.mc_frames_sent);
  EXPECT_EQ(r1.mc_frames_collided, r2.mc_frames_collided);
  EXPECT_EQ(r1.collisions, r2.collisions);
}

TEST(Csma, RejectsBadInput) {
  std::vector<ApWorkload> aps(1);
  EXPECT_THROW(simulate_csma(aps, {}, fast_config()), std::invalid_argument);
  aps[0].multicast = {{0.0, 12.0}};
  EXPECT_THROW(simulate_csma(aps, {{}}, fast_config()), std::invalid_argument);
  aps[0].multicast.clear();
  CsmaConfig bad = fast_config();
  bad.cw_min = 0;
  EXPECT_THROW(simulate_csma(aps, {{}}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::sim
