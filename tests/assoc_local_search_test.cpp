#include "wmcast/assoc/local_search.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

TEST(LocalSearch, NeverWorsensTheObjective) {
  util::Rng rng(131);
  for (int trial = 0; trial < 6; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 15;
    p.n_users = 50;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    util::Rng srng = rng.fork();
    const auto start = ssa_associate(sc, srng);

    LocalSearchParams lp;
    lp.objective = SearchObjective::kTotalLoad;
    const auto polished = local_search(sc, start.assoc, lp);
    EXPECT_LE(polished.loads.total_load, start.loads.total_load + 1e-9);
    EXPECT_GE(polished.loads.satisfied_users, start.loads.satisfied_users);
    EXPECT_TRUE(polished.converged);

    lp.objective = SearchObjective::kMaxLoad;
    const auto balanced = local_search(sc, start.assoc, lp);
    EXPECT_LE(balanced.loads.max_load, start.loads.max_load + 1e-9);
  }
}

TEST(LocalSearch, FindsTheFig1MlaOptimumFromSsa) {
  const auto sc = test::fig1_scenario(1.0);
  util::Rng rng(1);
  const auto ssa = ssa_associate(sc, rng);
  ASSERT_GT(ssa.loads.total_load, 7.0 / 12.0 + 1e-9);  // SSA is suboptimal here
  LocalSearchParams lp;
  lp.objective = SearchObjective::kTotalLoad;
  const auto polished = local_search(sc, ssa.assoc, lp);
  EXPECT_NEAR(polished.loads.total_load, 7.0 / 12.0, 1e-9);
}

TEST(LocalSearch, BlaOptimumIsAFixedPoint) {
  // The optimal BLA association (max load 1/2) is a local optimum: every
  // single-user move raises the max, so polish leaves it untouched.
  const auto sc = test::fig1_scenario(1.0);
  const wlan::Association opt{{0, 0, 0, 1, 1}};
  LocalSearchParams lp;
  lp.objective = SearchObjective::kMaxLoad;
  LocalSearchStats stats;
  const auto polished = local_search(sc, opt, lp, &stats);
  EXPECT_EQ(stats.moves, 0);
  EXPECT_NEAR(polished.loads.max_load, 0.5, 1e-12);
}

TEST(LocalSearch, MaxLoadPlateausAreRealLocalOptima) {
  // From the all-on-a1 state (max 7/12), no single move lowers the max —
  // reaching the 1/2 optimum needs a coordinated two-user move. Hill
  // climbing must terminate at 7/12 and never worsen it. (This is exactly
  // why the paper needs the SCG machinery rather than naive descent.)
  const auto sc = test::fig1_scenario(1.0);
  const auto bla = centralized_bla(sc);
  ASSERT_NEAR(bla.loads.max_load, 7.0 / 12.0, 1e-9);
  LocalSearchParams lp;
  lp.objective = SearchObjective::kMaxLoad;
  const auto polished = local_search(sc, bla.assoc, lp);
  EXPECT_LE(polished.loads.max_load, 7.0 / 12.0 + 1e-9);
  EXPECT_TRUE(polished.converged);
}

TEST(LocalSearch, ServesMoreUsersUnderTightBudget) {
  const auto sc = test::fig1_scenario(3.0);
  // Start from the paper's bad SSA outcome: u1 on a1, u3 on a2, rest unserved.
  const wlan::Association bad{{0, wlan::kNoAp, 1, wlan::kNoAp, wlan::kNoAp}};
  LocalSearchParams lp;
  lp.objective = SearchObjective::kServedUsers;
  const auto polished = local_search(sc, bad, lp);
  // The optimum serves 4; local search must at least improve on 2.
  EXPECT_GE(polished.loads.satisfied_users, 3);
  EXPECT_TRUE(polished.loads.within_budget());
}

TEST(LocalSearch, RepairsInfeasibleStart) {
  const auto sc = test::fig1_scenario(3.0);
  // u1 and u2 both on a1: load 1.5 > budget 1.
  const wlan::Association bad{{0, 0, wlan::kNoAp, wlan::kNoAp, wlan::kNoAp}};
  ASSERT_FALSE(wlan::compute_loads(sc, bad).within_budget());
  const auto polished = local_search(sc, bad, {});
  EXPECT_TRUE(polished.loads.within_budget());
}

TEST(LocalSearch, MatchesExactOnSmallInstances) {
  // Polishing the greedy MLA association gets within a few percent of the
  // exact optimum on small instances (and never below it).
  util::Rng rng(137);
  for (int trial = 0; trial < 4; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 8;
    p.n_users = 20;
    p.area_side_m = 350.0;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    const auto sys = setcover::build_set_system(sc);
    const auto opt = exact::exact_min_cost_cover(sys);
    if (opt.status != exact::BbStatus::kOptimal) continue;

    const auto greedy = centralized_mla(sc);
    LocalSearchParams lp;
    lp.objective = SearchObjective::kTotalLoad;
    const auto polished = local_search(sc, greedy.assoc, lp);
    EXPECT_GE(polished.loads.total_load, opt.cost - 1e-9);
    EXPECT_LE(polished.loads.total_load, greedy.loads.total_load + 1e-9);
  }
}

TEST(LocalSearch, RespectsMoveBudget) {
  util::Rng gen(139);
  wlan::GeneratorParams p;
  p.n_aps = 15;
  p.n_users = 60;
  const auto sc = wlan::generate_scenario(p, gen);
  LocalSearchParams lp;
  lp.max_moves = 1;
  LocalSearchStats stats;
  util::Rng srng(1);
  const auto start = ssa_associate(sc, srng);
  local_search(sc, start.assoc, lp, &stats);
  EXPECT_LE(stats.moves, 1);
}

TEST(LocalSearch, InvalidStartThrows) {
  const auto sc = test::fig1_scenario(1.0);
  const wlan::Association out_of_range{{1, 0, 0, 0, 0}};  // u1 can't reach a2
  EXPECT_THROW(local_search(sc, out_of_range, {}), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::assoc
