// Regression tests for the shared budget comparator (util/fp.hpp): a budget
// exactly equal to a sum of set costs must be feasible on every platform,
// even when floating-point accumulation makes the sum land a hair above the
// budget literal. Before the comparator was unified, core/solve and
// setcover/reference used an absolute 1e-12 tolerance, which misclassified
// ties at large cost magnitudes (sum - budget ~ 1e-10 at magnitude 6e5).
#include <gtest/gtest.h>

#include <vector>

#include "wmcast/core/engine.hpp"
#include "wmcast/core/solve.hpp"
#include "wmcast/core/workspace.hpp"
#include "wmcast/setcover/reference.hpp"
#include "wmcast/setcover/set_system.hpp"
#include "wmcast/util/fp.hpp"

namespace wmcast {
namespace {

// Three disjoint sets in one group whose decimal costs sum to exactly the
// budget, but whose FP sum exceeds the budget literal by ~1.16e-10.
constexpr double kC1 = 100000.1;
constexpr double kC2 = 200000.2;
constexpr double kC3 = 300000.3;
constexpr double kBudget = 600000.6;

core::CoverageEngine tie_engine() {
  core::CoverageEngine eng;
  eng.reset(6, 1);
  const std::vector<int32_t> m1{0, 1}, m2{2, 3}, m3{4, 5};
  eng.add_set(0, 0, 1.0, kC1, m1);
  eng.add_set(0, 0, 1.0, kC2, m2);
  eng.add_set(0, 0, 1.0, kC3, m3);
  return eng;
}

setcover::SetSystem tie_system() {
  std::vector<setcover::CandidateSet> sets(3);
  const double costs[3] = {kC1, kC2, kC3};
  for (int j = 0; j < 3; ++j) {
    sets[static_cast<size_t>(j)].members = util::DynBitset(6);
    sets[static_cast<size_t>(j)].members.set(2 * j);
    sets[static_cast<size_t>(j)].members.set(2 * j + 1);
    sets[static_cast<size_t>(j)].cost = costs[j];
    sets[static_cast<size_t>(j)].group = 0;
    sets[static_cast<size_t>(j)].ap = 0;
  }
  return setcover::SetSystem(6, 1, std::move(sets));
}

TEST(BudgetTie, ComparatorAcceptsExactSumsAtAnyMagnitude) {
  // Exact equality is always feasible.
  EXPECT_TRUE(util::fits_budget(0.9, 0.9));
  EXPECT_TRUE(util::fits_budget(kBudget, kBudget));
  // The accumulated FP sum sits ~1.16e-10 above the budget literal: beyond an
  // absolute 1e-12, inside the relative tolerance.
  const double sum = kC1 + kC2 + kC3;
  ASSERT_GT(sum, kBudget + 1e-12);
  EXPECT_TRUE(util::fits_budget(sum, kBudget));
  // Genuine violations still register, at small and large magnitudes.
  EXPECT_TRUE(util::exceeds_budget(0.9 + 1e-6, 0.9));
  EXPECT_TRUE(util::exceeds_budget(kBudget * (1.0 + 1e-6), kBudget));
  // Exhaustion is the mirror image: at the budget means exhausted.
  EXPECT_TRUE(util::budget_exhausted(kBudget, kBudget));
  EXPECT_FALSE(util::budget_exhausted(kBudget / 2, kBudget));
}

TEST(BudgetTie, McgBudgetEqualToLoadSumIsFeasible) {
  const auto eng = tie_engine();
  core::SolveWorkspace ws;
  const std::vector<double> budgets{kBudget};
  const auto res = core::mcg_cover(eng, ws, budgets);
  ASSERT_EQ(res.h.size(), 3u);
  for (const char v : res.violator) {
    EXPECT_EQ(v, 0) << "a budget exactly equal to the load sum must not flag a violator";
  }
  EXPECT_EQ(res.chosen.size(), 3u);  // all of H1; nothing split into H2
  EXPECT_EQ(res.covered.count(), 6);
}

TEST(BudgetTie, ReferenceMcgAgreesAtTheTiePoint) {
  const auto sys = tie_system();
  const std::vector<double> budgets{kBudget};
  const auto ref = setcover::mcg_greedy_reference(sys, budgets);
  ASSERT_EQ(ref.h.size(), 3u);
  for (const bool v : ref.violator) EXPECT_FALSE(v);
  EXPECT_EQ(ref.covered.count(), 6);

  // Engine and reference must agree pick-for-pick at the tie.
  const auto eng = setcover::to_engine(sys);
  core::SolveWorkspace ws;
  const auto res = core::mcg_cover(eng, ws, budgets);
  EXPECT_EQ(res.h, ref.h);
  EXPECT_EQ(res.chosen, ref.chosen);
}

TEST(BudgetTie, ScgFeasibleAtBudgetCapEqualToTightSum) {
  const auto eng = tie_engine();
  core::SolveWorkspace ws;
  core::ScgParams params;
  params.budget_cap = kBudget;
  const auto res = core::scg_cover(eng, ws, params);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.covered.count(), 6);
  EXPECT_TRUE(util::fits_budget(res.max_group_cost, kBudget));
}

TEST(BudgetTie, MinFeasibleBudgetIsItselfFeasible) {
  // An element whose only set costs exactly C: SCG capped at C (the value
  // min_feasible_budget_for returns) must cover it.
  core::CoverageEngine eng;
  eng.reset(1, 1);
  const std::vector<int32_t> m{0};
  eng.add_set(0, 0, 1.0, kC3, m);
  util::DynBitset target(1);
  target.set(0);
  EXPECT_DOUBLE_EQ(core::min_feasible_budget_for(eng, target), kC3);

  core::SolveWorkspace ws;
  core::ScgParams params;
  params.budget_cap = core::min_feasible_budget_for(eng, target);
  const auto res = core::scg_cover(eng, ws, params, &target);
  EXPECT_TRUE(res.feasible);
}

}  // namespace
}  // namespace wmcast
