#include <gtest/gtest.h>

#include <limits>

#include "test_fixtures.hpp"
#include "wmcast/exact/exact_bla.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::exact {
namespace {

using setcover::SetSystem;

// --- brute-force references over all 2^m set choices (m <= ~16) -------------

double brute_min_cost_cover(const SetSystem& sys) {
  const int m = sys.n_sets();
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t pick = 0; pick < (1u << m); ++pick) {
    util::DynBitset covered(sys.n_elements());
    double cost = 0.0;
    for (int j = 0; j < m; ++j) {
      if (pick & (1u << j)) {
        covered.or_assign(sys.set(j).members);
        cost += sys.set(j).cost;
      }
    }
    if (sys.coverable().is_subset_of(covered)) best = std::min(best, cost);
  }
  return best;
}

double brute_min_max_cover(const SetSystem& sys) {
  const int m = sys.n_sets();
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t pick = 0; pick < (1u << m); ++pick) {
    util::DynBitset covered(sys.n_elements());
    std::vector<double> group(static_cast<size_t>(sys.n_groups()), 0.0);
    for (int j = 0; j < m; ++j) {
      if (pick & (1u << j)) {
        covered.or_assign(sys.set(j).members);
        group[static_cast<size_t>(sys.set(j).group)] += sys.set(j).cost;
      }
    }
    if (!sys.coverable().is_subset_of(covered)) continue;
    const double mx = group.empty() ? 0.0 : *std::max_element(group.begin(), group.end());
    best = std::min(best, mx);
  }
  return best;
}

int brute_max_coverage(const SetSystem& sys, double budget) {
  const int m = sys.n_sets();
  int best = 0;
  for (uint32_t pick = 0; pick < (1u << m); ++pick) {
    util::DynBitset covered(sys.n_elements());
    std::vector<double> group(static_cast<size_t>(sys.n_groups()), 0.0);
    bool ok = true;
    for (int j = 0; j < m && ok; ++j) {
      if (pick & (1u << j)) {
        covered.or_assign(sys.set(j).members);
        group[static_cast<size_t>(sys.set(j).group)] += sys.set(j).cost;
        if (group[static_cast<size_t>(sys.set(j).group)] > budget + 1e-9) ok = false;
      }
    }
    if (ok) best = std::max(best, covered.count());
  }
  return best;
}

// A small random scenario whose set system stays under ~16 sets.
wlan::Scenario small_random_scenario(util::Rng& rng) {
  wlan::GeneratorParams p;
  p.n_aps = 3;
  p.n_users = 4 + rng.next_int(5);
  p.n_sessions = 2;
  p.area_side_m = 250.0;
  return wlan::generate_scenario(p, rng);
}

TEST(ExactMla, MatchesBruteForceOnFig1) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = setcover::build_set_system(sc);
  const auto res = exact_min_cost_cover(sys);
  EXPECT_EQ(res.status, BbStatus::kOptimal);
  EXPECT_NEAR(res.cost, brute_min_cost_cover(sys), 1e-9);
  EXPECT_NEAR(res.cost, 7.0 / 12.0, 1e-9);  // the paper's MLA optimum
}

TEST(ExactBla, MatchesBruteForceOnFig1) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = setcover::build_set_system(sc);
  const auto res = exact_min_max_cover(sys);
  EXPECT_EQ(res.status, BbStatus::kOptimal);
  EXPECT_NEAR(res.max_group_cost, brute_min_max_cover(sys), 1e-9);
  EXPECT_NEAR(res.max_group_cost, 0.5, 1e-9);  // the paper's BLA optimum
}

TEST(ExactMnu, MatchesBruteForceOnFig1) {
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = setcover::build_set_system(sc);
  const auto res = exact_max_coverage_uniform(sys, 1.0);
  EXPECT_EQ(res.status, BbStatus::kOptimal);
  EXPECT_EQ(res.covered, brute_max_coverage(sys, 1.0));
  EXPECT_EQ(res.covered, 4);  // the paper's MNU optimum (u1 or u2 unserved)
}

TEST(ExactMla, MatchesBruteForceOnRandomInstances) {
  util::Rng rng(61);
  int tested = 0;
  while (tested < 8) {
    util::Rng sub = rng.fork();
    const auto sc = small_random_scenario(sub);
    const SetSystem sys = setcover::build_set_system(sc);
    if (sys.n_sets() > 16 || sys.n_sets() == 0) continue;
    ++tested;
    const auto res = exact_min_cost_cover(sys);
    ASSERT_EQ(res.status, BbStatus::kOptimal);
    EXPECT_NEAR(res.cost, brute_min_cost_cover(sys), 1e-9) << "instance " << tested;
  }
}

TEST(ExactBla, MatchesBruteForceOnRandomInstances) {
  util::Rng rng(67);
  int tested = 0;
  while (tested < 8) {
    util::Rng sub = rng.fork();
    const auto sc = small_random_scenario(sub);
    const SetSystem sys = setcover::build_set_system(sc);
    if (sys.n_sets() > 16 || sys.n_sets() == 0) continue;
    ++tested;
    const auto res = exact_min_max_cover(sys);
    ASSERT_EQ(res.status, BbStatus::kOptimal);
    EXPECT_NEAR(res.max_group_cost, brute_min_max_cover(sys), 1e-9);
  }
}

TEST(ExactMnu, MatchesBruteForceOnRandomInstances) {
  util::Rng rng(71);
  int tested = 0;
  while (tested < 8) {
    util::Rng sub = rng.fork();
    const auto sc = small_random_scenario(sub);
    const SetSystem sys = setcover::build_set_system(sc);
    if (sys.n_sets() > 16 || sys.n_sets() == 0) continue;
    ++tested;
    const double budget = 0.05 + 0.1 * sub.next_double();
    const auto res = exact_max_coverage_uniform(sys, budget);
    ASSERT_EQ(res.status, BbStatus::kOptimal);
    EXPECT_EQ(res.covered, brute_max_coverage(sys, budget));
  }
}

TEST(ExactMnu, ChosenSetsRespectBudgets) {
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = setcover::build_set_system(sc);
  const auto res = exact_max_coverage_uniform(sys, 1.0);
  std::vector<double> group(static_cast<size_t>(sys.n_groups()), 0.0);
  for (const int j : res.chosen) {
    group[static_cast<size_t>(sys.set(j).group)] += sys.set(j).cost;
  }
  for (const double g : group) EXPECT_LE(g, 1.0 + 1e-9);
}

TEST(ExactSolvers, NodeLimitReportsTruncation) {
  util::Rng rng(73);
  wlan::GeneratorParams p;
  p.n_aps = 15;
  p.n_users = 40;
  const auto sc = wlan::generate_scenario(p, rng);
  const SetSystem sys = setcover::build_set_system(sc);
  BbLimits limits;
  limits.max_nodes = 5;  // absurdly tight
  const auto res = exact_min_cost_cover(sys, limits);
  EXPECT_EQ(res.status, BbStatus::kNodeLimit);
  // The greedy warm start still gives a valid cover.
  util::DynBitset covered(sys.n_elements());
  for (const int j : res.chosen) covered.or_assign(sys.set(j).members);
  EXPECT_TRUE(sys.coverable().is_subset_of(covered));
}

TEST(ExactSolvers, OptimaAreConsistentWithEachOther) {
  // On any instance: max coverage at a budget >= every group's BLA-optimal
  // cost must cover everything; and MLA total >= BLA max (sum >= max).
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = setcover::build_set_system(sc);
  const auto mla = exact_min_cost_cover(sys);
  const auto bla = exact_min_max_cover(sys);
  EXPECT_GE(mla.cost + 1e-12, bla.max_group_cost);
  const auto mnu = exact_max_coverage_uniform(sys, bla.max_group_cost + 1e-9);
  EXPECT_EQ(mnu.covered, sys.coverable().count());
}

}  // namespace
}  // namespace wmcast::exact
