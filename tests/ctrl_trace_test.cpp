#include "wmcast/ctrl/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::ctrl {
namespace {

NetworkState seed_state(uint64_t seed) {
  wlan::GeneratorParams p;
  p.n_aps = 16;
  p.n_users = 50;
  p.n_sessions = 3;
  p.area_side_m = 400.0;
  util::Rng rng(seed);
  return NetworkState::from_scenario(wlan::generate_scenario(p, rng));
}

TraceParams busy_params() {
  TraceParams tp;
  tp.epochs = 6;
  tp.move_fraction = 0.2;
  tp.walk_sigma_m = 30.0;
  tp.zap_fraction = 0.1;
  tp.leave_fraction = 0.05;
  tp.join_fraction = 0.05;
  tp.rate_change_prob = 0.5;
  return tp;
}

TEST(Trace, GenerationIsDeterministicInTheRng) {
  const auto st = seed_state(5);
  util::Rng r1(7), r2(7), r3(8);
  const auto a = generate_churn_trace(st, busy_params(), r1);
  const auto b = generate_churn_trace(st, busy_params(), r2);
  const auto c = generate_churn_trace(st, busy_params(), r3);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_NE(a.epochs, c.epochs);
  EXPECT_EQ(a.n_epochs(), 6);
  EXPECT_GT(a.n_events(), 0u);
}

TEST(Trace, EventsReplayCleanlyOntoTheGeneratingState) {
  auto st = seed_state(6);
  util::Rng rng(9);
  const auto trace = generate_churn_trace(st, busy_params(), rng);
  for (const auto& batch : trace.epochs) {
    for (const auto& e : batch) {
      EXPECT_NO_THROW(st.apply(e)) << "trace event invalid against its own state";
    }
  }
}

TEST(Trace, TextRoundTripPreservesEveryEvent) {
  const auto st = seed_state(7);
  util::Rng rng(10);
  const auto trace = generate_churn_trace(st, busy_params(), rng);
  const auto text = trace_to_text(trace);
  EXPECT_NE(text.find("wmcast-trace v1"), std::string::npos);
  const auto back = trace_from_text(text);
  EXPECT_EQ(back.epochs, trace.epochs);
}

TEST(Trace, FileRoundTrip) {
  const auto st = seed_state(8);
  util::Rng rng(11);
  const auto trace = generate_churn_trace(st, busy_params(), rng);
  const std::string path = ::testing::TempDir() + "/wmcast_trace_test.trace";
  ASSERT_TRUE(save_trace(trace, path));
  const auto back = load_trace(path);
  EXPECT_EQ(back.epochs, trace.epochs);
}

TEST(Trace, MalformedTextThrows) {
  EXPECT_THROW(trace_from_text(""), std::invalid_argument);
  EXPECT_THROW(trace_from_text("not-a-trace v1\nepochs 0\n"), std::invalid_argument);
  EXPECT_THROW(trace_from_text("wmcast-trace v1\nepochs 1\nepoch 0 1\nwarp 3\n"),
               std::invalid_argument);
  EXPECT_THROW(
      trace_from_text("wmcast-trace v1\nepochs 1\nepoch 0 2\nleave 1\n"),
      std::invalid_argument)
      << "declared event count must match";
}

}  // namespace
}  // namespace wmcast::ctrl
