// Direct unit tests for mcg_augment (the budget-respecting re-addition pass
// behind Centralized MNU's default refinement).
#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/setcover/mcg.hpp"
#include "wmcast/setcover/reduction.hpp"

namespace wmcast::setcover {
namespace {

TEST(McgAugment, RecoversCoverageAfterTheSplit) {
  // Fig. 1 MNU walkthrough: after H1 = {(a1,s2,4)}, the augmentation can
  // still afford (a2,s1,5) and cover u3.
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = build_set_system(sc);
  const auto mcg = mcg_greedy_uniform(sys, 1.0);
  ASSERT_EQ(mcg.covered.count(), 3);

  std::vector<double> budgets(2, 1.0);
  std::vector<double> group_cost(2, 0.0);
  for (const int j : mcg.chosen) {
    group_cost[static_cast<size_t>(sys.set(j).group)] += sys.set(j).cost;
  }
  util::DynBitset covered = mcg.covered;
  const auto added = mcg_augment(sys, budgets, group_cost, covered);
  ASSERT_EQ(added.size(), 1u);
  EXPECT_EQ(sys.set(added[0]).ap, 1);
  EXPECT_EQ(sys.set(added[0]).session, 0);
  EXPECT_EQ(covered.count(), 4);
  // Budgets still respected.
  EXPECT_LE(group_cost[0], 1.0 + 1e-9);
  EXPECT_LE(group_cost[1], 1.0 + 1e-9);
}

TEST(McgAugment, NoBudgetNoAdditions) {
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = build_set_system(sc);
  std::vector<double> budgets(2, 1.0);
  std::vector<double> group_cost = {1.0, 1.0};  // both groups exhausted
  util::DynBitset covered(sys.n_elements());
  const auto added = mcg_augment(sys, budgets, group_cost, covered);
  EXPECT_TRUE(added.empty());
  EXPECT_EQ(covered.count(), 0);
}

TEST(McgAugment, FromScratchActsLikeBudgetedGreedy) {
  // With empty prior state, augmentation is a pure budget-respecting greedy;
  // on Fig. 1 at budget 1 it covers 4 users (never violating a budget).
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = build_set_system(sc);
  std::vector<double> budgets(2, 1.0);
  std::vector<double> group_cost(2, 0.0);
  util::DynBitset covered(sys.n_elements());
  const auto added = mcg_augment(sys, budgets, group_cost, covered);
  EXPECT_GE(covered.count(), 3);
  EXPECT_LE(group_cost[0], 1.0 + 1e-9);
  EXPECT_LE(group_cost[1], 1.0 + 1e-9);
  EXPECT_FALSE(added.empty());
}

TEST(McgAugment, RestrictToLimitsTargets) {
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = build_set_system(sc);
  std::vector<double> budgets(2, 1.0);
  std::vector<double> group_cost(2, 0.0);
  util::DynBitset covered(sys.n_elements());
  util::DynBitset only_u3(5);
  only_u3.set(2);
  const auto added = mcg_augment(sys, budgets, group_cost, covered, &only_u3);
  // Covers u3 via the cheapest covering set: (a2,s1,5) cost 0.6.
  ASSERT_EQ(added.size(), 1u);
  EXPECT_TRUE(covered.test(2));
}

TEST(McgAugment, RejectsMismatchedVectors) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  std::vector<double> budgets(1, 1.0);  // wrong size
  std::vector<double> group_cost(2, 0.0);
  util::DynBitset covered(sys.n_elements());
  EXPECT_THROW(mcg_augment(sys, budgets, group_cost, covered), std::invalid_argument);
  budgets.assign(2, 1.0);
  group_cost.assign(1, 0.0);  // wrong size
  EXPECT_THROW(mcg_augment(sys, budgets, group_cost, covered), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::setcover
