#include "wmcast/assoc/centralized.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

TEST(CentralizedMla, PapersWalkthroughAllUsersOnA1) {
  const auto sc = test::fig1_scenario(1.0);
  const Solution sol = centralized_mla(sc);
  for (int u = 0; u < 5; ++u) EXPECT_EQ(sol.assoc.ap_of(u), 0);
  EXPECT_NEAR(sol.loads.total_load, 7.0 / 12.0, 1e-9);
  EXPECT_EQ(sol.algorithm, "MLA-C");
  EXPECT_EQ(sol.loads.satisfied_users, 5);
}

TEST(CentralizedBla, PapersWalkthroughSettlesAtSevenTwelfths) {
  const auto sc = test::fig1_scenario(1.0);
  const Solution sol = centralized_bla(sc);
  EXPECT_NEAR(sol.loads.max_load, 7.0 / 12.0, 1e-9);
  EXPECT_EQ(sol.loads.satisfied_users, 5);
  EXPECT_TRUE(sol.converged);  // SCG found a full cover
}

TEST(CentralizedMnu, PapersLiteralWalkthroughServesThree) {
  // The paper's verbatim algorithm (no augmentation): H1 = {(a1,s2,4)}
  // serves u2, u4, u5 only.
  const auto sc = test::fig1_scenario(3.0);
  CentralizedParams p;
  p.mnu_augment = false;
  const Solution sol = centralized_mnu(sc, p);
  EXPECT_EQ(sol.loads.satisfied_users, 3);
  EXPECT_EQ(sol.assoc.ap_of(1), 0);
  EXPECT_EQ(sol.assoc.ap_of(3), 0);
  EXPECT_EQ(sol.assoc.ap_of(4), 0);
  EXPECT_TRUE(sol.loads.within_budget());
}

TEST(CentralizedMnu, AugmentationRecoversTheFourthUser) {
  // Our default refinement re-adds (a2,s1,5), serving u3 as well — matching
  // the optimum of 4 on this instance, still within every budget.
  const auto sc = test::fig1_scenario(3.0);
  const Solution sol = centralized_mnu(sc);
  EXPECT_EQ(sol.loads.satisfied_users, 4);
  EXPECT_EQ(sol.assoc.ap_of(2), 1);
  EXPECT_TRUE(sol.loads.within_budget());
}

TEST(CentralizedMnu, AugmentationNeverServesFewer) {
  util::Rng rng(37);
  for (int trial = 0; trial < 6; ++trial) {
    wlan::GeneratorParams gp;
    gp.n_aps = 20;
    gp.n_users = 60;
    gp.n_sessions = 6;
    gp.load_budget = 0.06;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(gp, sub);
    CentralizedParams literal;
    literal.mnu_augment = false;
    const int with = centralized_mnu(sc).loads.satisfied_users;
    const int without = centralized_mnu(sc, literal).loads.satisfied_users;
    EXPECT_GE(with, without);
  }
}

TEST(CentralizedMnu, AlwaysWithinBudgetOnRandomScenarios) {
  util::Rng rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 20;
    p.n_users = 60;
    p.n_sessions = 6;
    p.load_budget = 0.05;  // tight: forces rejections
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    const Solution sol = centralized_mnu(sc);
    EXPECT_TRUE(sol.loads.within_budget())
        << "budget violated on trial " << trial;
  }
}

TEST(CentralizedMlaAndBla, ServeEveryCoverableUser) {
  util::Rng rng(43);
  for (int trial = 0; trial < 5; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 25;
    p.n_users = 70;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    EXPECT_EQ(centralized_mla(sc).loads.satisfied_users, sc.n_coverable_users());
    EXPECT_EQ(centralized_bla(sc).loads.satisfied_users, sc.n_coverable_users());
  }
}

TEST(Centralized, BasicRateModeMatchesSingleRateSemantics) {
  const auto sc = test::fig1_scenario(1.0);
  CentralizedParams p;
  p.multi_rate = false;
  const Solution sol = centralized_mla(sc, p);
  EXPECT_EQ(sol.loads.satisfied_users, 5);
  // In basic-rate mode every transmission goes at 3 Mbps; serving both
  // sessions anywhere costs 2/3 total at minimum (one AP, two sessions).
  EXPECT_NEAR(sol.loads.total_load, 2.0 / 3.0, 1e-9);
}

TEST(Centralized, MultiRateNeverWorseThanBasicRate) {
  util::Rng rng(47);
  for (int trial = 0; trial < 5; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 15;
    p.n_users = 40;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    CentralizedParams basic;
    basic.multi_rate = false;
    const double multi = centralized_mla(sc).loads.total_load;
    const double single = centralized_mla(sc, basic).loads.total_load;
    // The multi-rate greedy has strictly more candidate sets available, and
    // greedy set cover on a superset of sets can in principle do worse, but
    // the final materialized load uses true min-rates; allow equality.
    EXPECT_LE(multi, single + 1e-9);
  }
}

TEST(Centralized, SolveTimeIsRecorded) {
  const auto sc = test::fig1_scenario(1.0);
  EXPECT_GE(centralized_mla(sc).solve_seconds, 0.0);
}

TEST(Centralized, K2OverlayRidesOnTheLegacySolve) {
  // The k-connectivity overlay (assoc_kconn_test.cpp has the full suite):
  // fig1's five users all hear both APs, so at k = 2 every served user can
  // take a second stream, and each effective rate is at least its primary
  // stream's rate.
  const auto sc = test::fig1_scenario(1.0);
  CentralizedParams p;
  p.k = 2;
  const Solution sol = centralized_mla(sc, p);
  EXPECT_EQ(sol.k, 2);
  EXPECT_EQ(sol.multi_loads.satisfied_users, sol.loads.satisfied_users);
  for (int u = 0; u < 5; ++u) {
    EXPECT_TRUE(sol.multi.serves(u, sol.assoc.ap_of(u)));
  }
  EXPECT_GT(sol.multi_loads.multi_served_users, 0);
}

}  // namespace
}  // namespace wmcast::assoc
