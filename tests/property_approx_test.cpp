// Approximation-factor property tests (parameterized sweeps): on random
// small instances where the exact solvers finish, each approximation
// algorithm must stay within its proven factor:
//   Centralized MNU >= OPT / 8                     (Theorem 2)
//   Centralized BLA <= (log_{8/7} n + 1) * OPT     (Theorem 4)
//   Centralized MLA <= (ln n + 1) * OPT            (Theorem 6)
// plus structural invariants that must hold on every instance.
#include <gtest/gtest.h>

#include <cmath>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/exact/exact_bla.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/setcover/materialize.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast {
namespace {

struct Params {
  uint64_t seed;
  int n_aps;
  int n_users;
  int n_sessions;
  double area_side;
  double budget;
};

std::string param_name(const testing::TestParamInfo<Params>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_a" + std::to_string(p.n_aps) + "_u" +
         std::to_string(p.n_users) + "_s" + std::to_string(p.n_sessions);
}

class ApproxFactor : public testing::TestWithParam<Params> {
 protected:
  wlan::Scenario make_scenario() const {
    const auto& p = GetParam();
    wlan::GeneratorParams gp;
    gp.n_aps = p.n_aps;
    gp.n_users = p.n_users;
    gp.n_sessions = p.n_sessions;
    gp.area_side_m = p.area_side;
    gp.load_budget = p.budget;
    util::Rng rng(p.seed);
    return wlan::generate_scenario(gp, rng);
  }
};

TEST_P(ApproxFactor, MlaWithinLnNPlusOneOfOptimal) {
  const auto sc = make_scenario();
  const auto sys = setcover::build_set_system(sc);
  exact::BbLimits limits;
  limits.time_limit_s = 5.0;
  const auto opt = exact::exact_min_cost_cover(sys, limits);
  if (opt.status != exact::BbStatus::kOptimal) GTEST_SKIP() << "exact truncated";

  const auto greedy = assoc::centralized_mla(sc);
  const int n = std::max(2, sc.n_coverable_users());
  const double factor = std::log(n) + 1.0;
  EXPECT_LE(greedy.loads.total_load, factor * opt.cost + 1e-9);
  // Exact solution materializes to the same objective value (the set-level
  // and association-level optima coincide; see DESIGN.md).
  const auto opt_assoc = setcover::materialize(sc, sys, opt.chosen);
  const auto opt_rep = wlan::compute_loads(sc, opt_assoc);
  EXPECT_NEAR(opt_rep.total_load, opt.cost, 1e-9);
  EXPECT_LE(opt_rep.total_load, greedy.loads.total_load + 1e-9);
}

TEST_P(ApproxFactor, BlaWithinLogFactorOfOptimal) {
  const auto sc = make_scenario();
  const auto sys = setcover::build_set_system(sc);
  exact::BbLimits limits;
  limits.time_limit_s = 5.0;
  const auto opt = exact::exact_min_max_cover(sys, limits);
  if (opt.status != exact::BbStatus::kOptimal) GTEST_SKIP() << "exact truncated";

  const auto greedy = assoc::centralized_bla(sc);
  ASSERT_TRUE(greedy.converged);
  const int n = std::max(2, sc.n_coverable_users());
  const double factor = std::log(n) / std::log(8.0 / 7.0) + 1.0;
  EXPECT_LE(greedy.loads.max_load, factor * opt.max_group_cost + 1e-9);
  EXPECT_LE(opt.max_group_cost, greedy.loads.max_load + 1e-9);
}

TEST_P(ApproxFactor, MnuWithinFactorEightOfOptimal) {
  const auto sc = make_scenario();
  const auto sys = setcover::build_set_system(sc);
  exact::BbLimits limits;
  limits.time_limit_s = 5.0;
  const auto opt = exact::exact_max_coverage_uniform(sys, sc.load_budget(), limits);
  if (opt.status != exact::BbStatus::kOptimal) GTEST_SKIP() << "exact truncated";

  const auto greedy = assoc::centralized_mnu(sc);
  EXPECT_GE(8 * greedy.loads.satisfied_users, opt.covered);
  EXPECT_LE(greedy.loads.satisfied_users, opt.covered);
  EXPECT_TRUE(greedy.loads.within_budget());
}

TEST_P(ApproxFactor, AlgorithmsDominateOrMatchSsaOnTheirObjective) {
  // The qualitative claim of the whole paper, as an invariant on small
  // instances: the exact optimum is at least as good as SSA on each
  // objective (the greedy algorithms may occasionally lose to SSA, the
  // optimum never can — SSA is a feasible solution... except that SSA may
  // serve fewer users under tight budgets, so compare like for like).
  const auto sc = make_scenario();
  util::Rng rng(GetParam().seed ^ 0xabcdef);
  const auto ssa = assoc::ssa_associate(sc, rng);
  const auto sys = setcover::build_set_system(sc);
  exact::BbLimits limits;
  limits.time_limit_s = 5.0;

  const auto opt_mnu = exact::exact_max_coverage_uniform(sys, sc.load_budget(), limits);
  if (opt_mnu.status == exact::BbStatus::kOptimal) {
    EXPECT_GE(opt_mnu.covered, ssa.loads.satisfied_users);
  }
  if (ssa.loads.satisfied_users == sc.n_coverable_users()) {
    const auto opt_mla = exact::exact_min_cost_cover(sys, limits);
    if (opt_mla.status == exact::BbStatus::kOptimal) {
      EXPECT_LE(opt_mla.cost, ssa.loads.total_load + 1e-9);
    }
    const auto opt_bla = exact::exact_min_max_cover(sys, limits);
    if (opt_bla.status == exact::BbStatus::kOptimal) {
      EXPECT_LE(opt_bla.max_group_cost, ssa.loads.max_load + 1e-9);
    }
  }
}

TEST_P(ApproxFactor, DistributedConvergesWithinBudgetAndCoverage) {
  const auto sc = make_scenario();
  for (const auto obj : {assoc::Objective::kTotalLoad, assoc::Objective::kLoadVector}) {
    assoc::DistributedParams p;
    p.objective = obj;
    util::Rng rng(GetParam().seed ^ 0x5555);
    const auto sol = assoc::distributed_associate(sc, rng, p);
    EXPECT_TRUE(sol.converged);
    EXPECT_TRUE(sol.loads.within_budget());
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSmallInstances, ApproxFactor,
    testing::Values(Params{1, 5, 10, 2, 300.0, 0.9}, Params{2, 5, 12, 3, 300.0, 0.9},
                    Params{3, 6, 14, 2, 400.0, 0.9}, Params{4, 4, 10, 2, 250.0, 0.5},
                    Params{5, 6, 12, 4, 350.0, 0.9}, Params{6, 8, 10, 2, 400.0, 0.2},
                    Params{7, 5, 16, 3, 300.0, 0.9}, Params{8, 6, 12, 2, 350.0, 0.1},
                    Params{9, 7, 14, 3, 450.0, 0.9}, Params{10, 5, 10, 5, 300.0, 0.9}),
    param_name);

}  // namespace
}  // namespace wmcast
