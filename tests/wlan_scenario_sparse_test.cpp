// Differential tests for the sparse scenario pipeline (DESIGN.md §11): the
// grid-indexed CSR build (Scenario::from_geometry) must be indistinguishable
// from the dense-matrix reference build (from_geometry_dense) on random
// geometric instances, at any thread count, and across incremental rebuilds
// (apply_delta). Plus the grid's geometric edge cases: users on cell
// boundaries, APs at exactly the maximum coverage range, users out of range
// of everything.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/thread_pool.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::wlan {
namespace {

// Full observable-state comparison: per-user rows (order included), rates,
// strongest AP, transpose rows, level histogram, scalars.
void expect_identical(const Scenario& a, const Scenario& b) {
  ASSERT_EQ(a.n_aps(), b.n_aps());
  ASSERT_EQ(a.n_users(), b.n_users());
  ASSERT_EQ(a.n_sessions(), b.n_sessions());
  ASSERT_EQ(a.n_links(), b.n_links());
  EXPECT_EQ(a.n_coverable_users(), b.n_coverable_users());
  EXPECT_EQ(a.basic_rate(), b.basic_rate());
  EXPECT_EQ(a.rate_levels(), b.rate_levels());
  EXPECT_EQ(a.rate_level_counts(), b.rate_level_counts());
  for (int u = 0; u < a.n_users(); ++u) {
    ASSERT_EQ(a.aps_of_user(u), b.aps_of_user(u)) << "user " << u;
    EXPECT_EQ(a.strongest_ap(u), b.strongest_ap(u)) << "user " << u;
    const size_t k = a.aps_of_user(u).size();
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(a.rates_of_user(u)[i], b.rates_of_user(u)[i]) << "user " << u;
    }
  }
  for (int ap = 0; ap < a.n_aps(); ++ap) {
    ASSERT_EQ(a.users_of_ap(ap), b.users_of_ap(ap)) << "ap " << ap;
    const size_t k = a.users_of_ap(ap).size();
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(a.rates_of_ap(ap)[i], b.rates_of_ap(ap)[i]) << "ap " << ap;
    }
  }
}

struct RandomInstance {
  std::vector<Point> ap_pos;
  std::vector<Point> user_pos;
  std::vector<int> user_session;
  std::vector<double> session_rates;
};

// Sized so coverage is mixed: dense clusters, isolated users, and (at the
// larger sides) users out of range of every AP.
RandomInstance draw(util::Rng& rng) {
  RandomInstance in;
  const int n_aps = 1 + rng.next_int(30);
  const int n_users = 1 + rng.next_int(80);
  const int n_sessions = 1 + rng.next_int(5);
  const double side = 100.0 + rng.uniform(0.0, 2400.0);
  in.ap_pos.resize(static_cast<size_t>(n_aps));
  for (auto& p : in.ap_pos) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  in.user_pos.resize(static_cast<size_t>(n_users));
  for (auto& p : in.user_pos) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  in.user_session.resize(static_cast<size_t>(n_users));
  for (auto& s : in.user_session) s = rng.next_int(n_sessions);
  in.session_rates.assign(static_cast<size_t>(n_sessions), 1.0);
  return in;
}

TEST(SparseScenarioTest, MatchesDenseReferenceOnRandomInstances) {
  const RateTable table = RateTable::ieee80211a();
  util::Rng rng(907);
  for (int trial = 0; trial < 60; ++trial) {
    SCOPED_TRACE(trial);
    const RandomInstance in = draw(rng);
    const auto sparse = Scenario::from_geometry(in.ap_pos, in.user_pos,
                                                in.user_session, in.session_rates,
                                                table);
    const auto dense = Scenario::from_geometry_dense(
        in.ap_pos, in.user_pos, in.user_session, in.session_rates, table);
    expect_identical(sparse, dense);
    // link_rate's binary search against the dense pairwise answer.
    for (int a = 0; a < sparse.n_aps(); ++a) {
      for (int u = 0; u < sparse.n_users(); ++u) {
        EXPECT_EQ(sparse.link_rate(a, u),
                  table.rate_for_distance(distance(
                      in.ap_pos[static_cast<size_t>(a)],
                      in.user_pos[static_cast<size_t>(u)])))
            << a << "," << u;
      }
    }
  }
}

TEST(SparseScenarioTest, SolverOutputsAgreeWithDenseReference) {
  const RateTable table = RateTable::ieee80211a();
  util::Rng rng(911);
  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE(trial);
    const RandomInstance in = draw(rng);
    const auto sparse = Scenario::from_geometry(in.ap_pos, in.user_pos,
                                                in.user_session, in.session_rates,
                                                table);
    const auto dense = Scenario::from_geometry_dense(
        in.ap_pos, in.user_pos, in.user_session, in.session_rates, table);
    const auto a = assoc::centralized_mla(sparse);
    const auto b = assoc::centralized_mla(dense);
    EXPECT_EQ(a.assoc, b.assoc);
    EXPECT_EQ(a.loads.total_load, b.loads.total_load);
  }
}

TEST(SparseScenarioTest, ParallelBuildIsBitIdenticalToSerial) {
  const RateTable table = RateTable::ieee80211a();
  util::Rng rng(919);
  util::ThreadPool pool3(3);
  util::ThreadPool pool7(7);
  for (int trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE(trial);
    const RandomInstance in = draw(rng);
    const auto serial = Scenario::from_geometry(in.ap_pos, in.user_pos,
                                                in.user_session, in.session_rates,
                                                table);
    for (util::ThreadPool* pool : {&pool3, &pool7}) {
      const auto parallel =
          Scenario::from_geometry(in.ap_pos, in.user_pos, in.user_session,
                                  in.session_rates, table, 0.9, pool);
      expect_identical(serial, parallel);
    }
  }
}

TEST(SparseScenarioTest, ApExactlyAtMaxRangeIsInRange) {
  const RateTable table = RateTable::ieee80211a();
  const double r = table.range_m();
  // AP 0 exactly at the coverage radius, AP 1 just beyond, AP 2 at a cell
  // corner distance away (same cell-boundary geometry the grid must cover).
  const std::vector<Point> aps = {{r, 0.0}, {r + 1e-9, 100.0}, {r, r}};
  const std::vector<Point> users = {{0.0, 0.0}};
  const auto sc = Scenario::from_geometry(aps, users, {0}, {1.0}, table);
  EXPECT_EQ(sc.link_rate(0, 0), table.basic_rate());  // d == r: in range (<=)
  EXPECT_EQ(sc.link_rate(1, 0), 0.0);
  EXPECT_EQ(sc.link_rate(2, 0), 0.0);  // d = r*sqrt(2) > r
  const auto dense = Scenario::from_geometry_dense(aps, users, {0}, {1.0}, table);
  expect_identical(sc, dense);
}

TEST(SparseScenarioTest, UserOnCellBoundariesSeesAllInRangeAps) {
  const RateTable table = RateTable::ieee80211a();
  const double cell = table.range_m();  // grid cell size == coverage radius
  // APs spread around the (cell, cell) grid corner, one per quadrant plus the
  // corner itself; the user sits exactly on the corner, the worst case for a
  // floor()-based cell assignment.
  const std::vector<Point> aps = {{cell, cell},
                                  {cell - 50.0, cell - 50.0},
                                  {cell + 50.0, cell - 50.0},
                                  {cell - 50.0, cell + 50.0},
                                  {cell + 50.0, cell + 50.0},
                                  {0.0, 0.0}};
  for (const Point user : {Point{cell, cell}, Point{2.0 * cell, cell},
                           Point{cell, 0.0}, Point{0.0, 0.0}}) {
    SCOPED_TRACE(user.x);
    SCOPED_TRACE(user.y);
    const auto sparse =
        Scenario::from_geometry(aps, {user}, {0}, {1.0}, table);
    const auto dense =
        Scenario::from_geometry_dense(aps, {user}, {0}, {1.0}, table);
    expect_identical(sparse, dense);
  }
}

TEST(SparseScenarioTest, UserOutOfRangeOfEverythingHasEmptyRow) {
  const RateTable table = RateTable::ieee80211a();
  const double r = table.range_m();
  const std::vector<Point> aps = {{0.0, 0.0}, {100.0, 0.0}};
  const std::vector<Point> users = {{50.0, 0.0}, {50.0 + 20.0 * r, 0.0}};
  const auto sc = Scenario::from_geometry(aps, users, {0, 0}, {1.0}, table);
  EXPECT_EQ(sc.aps_of_user(0).size(), 2u);
  EXPECT_TRUE(sc.aps_of_user(1).empty());
  EXPECT_EQ(sc.strongest_ap(1), kNoAp);
  EXPECT_EQ(sc.n_coverable_users(), 1);
  expect_identical(sc, Scenario::from_geometry_dense(aps, users, {0, 0}, {1.0}, table));
}

TEST(SparseScenarioTest, ApplyDeltaMatchesFullRebuild) {
  const RateTable table = RateTable::ieee80211a();
  util::Rng rng(929);
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE(trial);
    RandomInstance in = draw(rng);
    const int n_users = static_cast<int>(in.user_pos.size());
    const int n_sessions = static_cast<int>(in.session_rates.size());
    const auto base = Scenario::from_geometry(in.ap_pos, in.user_pos,
                                              in.user_session, in.session_rates,
                                              table);

    ScenarioDelta delta;
    for (int u = 0; u < n_users; ++u) {
      if (rng.next_bool(0.25)) {
        const Point p{rng.uniform(0.0, 2500.0), rng.uniform(0.0, 2500.0)};
        delta.moved.push_back({u, p});
        in.user_pos[static_cast<size_t>(u)] = p;
      }
      if (n_sessions > 1 && rng.next_bool(0.15)) {
        const int s = rng.next_int(n_sessions);
        delta.rezapped.push_back({u, s});
        in.user_session[static_cast<size_t>(u)] = s;
      }
    }

    std::vector<int> dirty;
    const auto patched = base.apply_delta(delta, &dirty);
    const auto rebuilt = Scenario::from_geometry(in.ap_pos, in.user_pos,
                                                 in.user_session, in.session_rates,
                                                 table);
    expect_identical(patched, rebuilt);

    EXPECT_TRUE(std::is_sorted(dirty.begin(), dirty.end()));
    EXPECT_TRUE(std::adjacent_find(dirty.begin(), dirty.end()) == dirty.end());
    // Soundness: every AP whose member row differs between base and rebuilt
    // must be in the dirty set (the set may legitimately be larger — e.g. a
    // rezap marks its APs even when the membership multiset ends up equal).
    std::vector<char> is_dirty(static_cast<size_t>(base.n_aps()), 0);
    for (const int a : dirty) {
      ASSERT_GE(a, 0);
      ASSERT_LT(a, base.n_aps());
      is_dirty[static_cast<size_t>(a)] = 1;
    }
    for (int a = 0; a < base.n_aps(); ++a) {
      if (base.users_of_ap(a) == rebuilt.users_of_ap(a)) continue;
      EXPECT_TRUE(is_dirty[static_cast<size_t>(a)]) << "ap " << a;
    }
  }
}

TEST(SparseScenarioTest, MemoryBytesScalesWithLinksNotAps) {
  const RateTable table = RateTable::ieee80211a();
  util::Rng rng(937);
  // Same users and link structure, 10x the APs (all the extra ones far away):
  // CSR memory must grow only by the per-AP offsets, not by users x APs.
  const double side = 500.0;
  std::vector<Point> aps(4);
  for (auto& p : aps) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  std::vector<Point> users(200);
  for (auto& p : users) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  const std::vector<int> sessions(users.size(), 0);

  const auto small = Scenario::from_geometry(aps, users, sessions, {1.0}, table);
  std::vector<Point> many_aps = aps;
  for (int k = 0; k < 36; ++k) {
    many_aps.push_back({side + 50.0 * table.range_m() + 1000.0 * k, 0.0});
  }
  const auto large = Scenario::from_geometry(many_aps, users, sessions, {1.0}, table);
  ASSERT_EQ(small.n_links(), large.n_links());
  // 36 extra empty APs cost one transpose offset each (8 bytes) plus grid
  // cells — far below the dense matrix's 200 users * 36 APs * 8 bytes.
  EXPECT_LT(large.memory_bytes() - small.memory_bytes(),
            static_cast<size_t>(200) * 36 * 8 / 2);
}

}  // namespace
}  // namespace wmcast::wlan
