// Failure injection: the distributed protocol under lossy control messages.
#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/sim/network.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::sim {
namespace {

SimConfig lossy_config(double loss) {
  SimConfig c;
  c.latency_s = 0.002;
  c.scan_period_s = 1.0;
  c.phase_jitter_s = 1.0;
  c.quiet_period_s = 6.0;
  c.max_time_s = 200.0;
  c.message_loss_prob = loss;
  return c;
}

TEST(MessageLoss, ProtocolStillConvergesToFullService) {
  // 30% loss: scans get deferred and joins retried, but the fixed point is
  // eventually reached (the scan period is a built-in retry loop).
  const auto sc = test::fig1_scenario(1.0);
  ProtocolSim sim(sc, lossy_config(0.3), util::Rng(3));
  const auto out = sim.run();
  EXPECT_TRUE(out.converged);
  const auto rep = wlan::compute_loads(sc, out.assoc);
  EXPECT_EQ(rep.satisfied_users, 5);
  EXPECT_GT(out.counters.lost_messages, 0);
  EXPECT_GT(out.counters.deferred_scans, 0);
}

TEST(MessageLoss, ZeroLossInjectsNothing) {
  const auto sc = test::fig1_scenario(1.0);
  ProtocolSim sim(sc, lossy_config(0.0), util::Rng(3));
  const auto out = sim.run();
  EXPECT_EQ(out.counters.lost_messages, 0);
  EXPECT_EQ(out.counters.deferred_scans, 0);
}

TEST(MessageLoss, LossSlowsConvergence) {
  // Same seed, same network: the lossy run takes at least as long to quiesce.
  util::Rng gen(17);
  wlan::GeneratorParams p;
  p.n_aps = 10;
  p.n_users = 40;
  p.n_sessions = 3;
  p.area_side_m = 400.0;
  const auto sc = wlan::generate_scenario(p, gen);

  ProtocolSim clean(sc, lossy_config(0.0), util::Rng(5));
  const auto clean_out = clean.run();
  ProtocolSim lossy(sc, lossy_config(0.4), util::Rng(5));
  const auto lossy_out = lossy.run();

  ASSERT_TRUE(clean_out.converged);
  ASSERT_TRUE(lossy_out.converged);
  EXPECT_GE(lossy_out.last_change_s, clean_out.last_change_s - 1e-9);
  // Both reach a fully served state; quality stays comparable.
  const auto clean_rep = wlan::compute_loads(sc, clean_out.assoc);
  const auto lossy_rep = wlan::compute_loads(sc, lossy_out.assoc);
  EXPECT_EQ(clean_rep.satisfied_users, sc.n_coverable_users());
  EXPECT_EQ(lossy_rep.satisfied_users, sc.n_coverable_users());
}

TEST(MessageLoss, ExtremeLossNeverCrashesOrViolatesBudgets) {
  const auto sc = test::fig1_scenario(3.0);  // tight budgets
  SimConfig cfg = lossy_config(0.9);
  cfg.max_time_s = 60.0;
  ProtocolSim sim(sc, cfg, util::Rng(7));
  const auto out = sim.run();
  const auto rep = wlan::compute_loads(sc, out.assoc);
  EXPECT_TRUE(rep.within_budget());
  // With 90% loss most scans die; some messages must have been dropped.
  EXPECT_GT(out.counters.lost_messages, 10);
}

}  // namespace
}  // namespace wmcast::sim
