#include "wmcast/setcover/reduction.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_fixtures.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::setcover {
namespace {

// Finds the set for (ap, session, tx_rate); -1 if absent.
int find_set(const SetSystem& sys, int ap, int session, double rate) {
  for (int j = 0; j < sys.n_sets(); ++j) {
    const auto& s = sys.set(j);
    if (s.ap == ap && s.session == session && s.tx_rate == rate) return j;
  }
  return -1;
}

TEST(Reduction, Fig1ProducesThePapersSevenSets) {
  // Fig. 2 of the paper: the MNU reduction of the Fig. 1 WLAN at 3 Mbps
  // streams has exactly 7 sets (S1..S7).
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = build_set_system(sc);
  EXPECT_EQ(sys.n_sets(), 7);
  EXPECT_EQ(sys.n_elements(), 5);
  EXPECT_EQ(sys.n_groups(), 2);

  // (a1, s1): {u3} at rate 4 (cost 3/4) and {u1,u3} at rate 3 (cost 1).
  int j = find_set(sys, 0, 0, 4.0);
  ASSERT_GE(j, 0);
  EXPECT_EQ(sys.set(j).members.to_indices(), (std::vector<int>{2}));
  EXPECT_NEAR(sys.set(j).cost, 0.75, 1e-12);

  j = find_set(sys, 0, 0, 3.0);
  ASSERT_GE(j, 0);
  EXPECT_EQ(sys.set(j).members.to_indices(), (std::vector<int>{0, 2}));
  EXPECT_NEAR(sys.set(j).cost, 1.0, 1e-12);

  // (a1, s2): {u2} at 6 (cost 1/2) and {u2,u4,u5} at 4 (cost 3/4).
  j = find_set(sys, 0, 1, 6.0);
  ASSERT_GE(j, 0);
  EXPECT_EQ(sys.set(j).members.to_indices(), (std::vector<int>{1}));
  EXPECT_NEAR(sys.set(j).cost, 0.5, 1e-12);

  j = find_set(sys, 0, 1, 4.0);
  ASSERT_GE(j, 0);
  EXPECT_EQ(sys.set(j).members.to_indices(), (std::vector<int>{1, 3, 4}));
  EXPECT_NEAR(sys.set(j).cost, 0.75, 1e-12);

  // (a2, s1): {u3} at 5 (cost 3/5).
  j = find_set(sys, 1, 0, 5.0);
  ASSERT_GE(j, 0);
  EXPECT_EQ(sys.set(j).members.to_indices(), (std::vector<int>{2}));
  EXPECT_NEAR(sys.set(j).cost, 0.6, 1e-12);

  // (a2, s2): {u4} at 5 (cost 3/5) and {u4,u5} at 3 (cost 1).
  j = find_set(sys, 1, 1, 5.0);
  ASSERT_GE(j, 0);
  EXPECT_EQ(sys.set(j).members.to_indices(), (std::vector<int>{3}));

  j = find_set(sys, 1, 1, 3.0);
  ASSERT_GE(j, 0);
  EXPECT_EQ(sys.set(j).members.to_indices(), (std::vector<int>{3, 4}));
  EXPECT_NEAR(sys.set(j).cost, 1.0, 1e-12);
}

TEST(Reduction, GroupsPartitionTheSetsByAp) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  int total = 0;
  for (int g = 0; g < sys.n_groups(); ++g) {
    for (const int j : sys.group_sets(g)) {
      EXPECT_EQ(sys.set(j).group, g);
      EXPECT_EQ(sys.set(j).ap, g);
      ++total;
    }
  }
  EXPECT_EQ(total, sys.n_sets());
}

TEST(Reduction, NestedSetsAtLowerRatesCostMore) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  for (int i = 0; i < sys.n_sets(); ++i) {
    for (int j = 0; j < sys.n_sets(); ++j) {
      const auto& a = sys.set(i);
      const auto& b = sys.set(j);
      if (a.ap != b.ap || a.session != b.session || a.tx_rate <= b.tx_rate) continue;
      // a has the higher rate: fewer members, lower cost.
      EXPECT_TRUE(a.members.is_subset_of(b.members));
      EXPECT_LT(a.cost, b.cost);
    }
  }
}

TEST(Reduction, BasicRateModeYieldsOneSetPerApSession) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc, /*multi_rate=*/false);
  // (a1,s1), (a1,s2), (a2,s1), (a2,s2) -> 4 sets, all at basic rate 3.
  EXPECT_EQ(sys.n_sets(), 4);
  for (int j = 0; j < sys.n_sets(); ++j) {
    EXPECT_DOUBLE_EQ(sys.set(j).tx_rate, 3.0);
    EXPECT_NEAR(sys.set(j).cost, 1.0 / 3.0, 1e-12);
    // Every requester in range belongs to the basic-rate set.
  }
}

TEST(Reduction, CoverableMatchesScenario) {
  util::Rng rng(11);
  wlan::GeneratorParams p;
  p.n_aps = 20;
  p.n_users = 60;
  const auto sc = wlan::generate_scenario(p, rng);
  const SetSystem sys = build_set_system(sc);
  EXPECT_EQ(sys.coverable().count(), sc.n_coverable_users());
  // Every member of every set is a requester of the set's session in range.
  for (int j = 0; j < sys.n_sets(); ++j) {
    const auto& s = sys.set(j);
    s.members.for_each([&](int u) {
      EXPECT_EQ(sc.user_session(u), s.session);
      EXPECT_GE(sc.link_rate(s.ap, u), s.tx_rate);
    });
    EXPECT_NEAR(s.cost, sc.session_rate(s.session) / s.tx_rate, 1e-12);
  }
}

TEST(Reduction, DuplicateRatesCollapseIntoOneSet) {
  // Two users at the same rate on the same (ap, session) yield one set.
  const std::vector<std::vector<double>> link = {{4, 4}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 0}, {1.0}, 0.9);
  const SetSystem sys = build_set_system(sc);
  ASSERT_EQ(sys.n_sets(), 1);
  EXPECT_EQ(sys.set(0).members.count(), 2);
}

TEST(SetSystem, MaxCostAndMinFeasibleBudget) {
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = build_set_system(sc);
  EXPECT_NEAR(sys.max_set_cost(), 1.0, 1e-12);
  // u1 is only coverable by (a1,s1,3) at cost 1 -> any feasible per-group
  // budget must be at least 1.
  EXPECT_NEAR(sys.min_feasible_budget(), 1.0, 1e-12);
}

TEST(SetSystem, RejectsInvalidConstruction) {
  util::DynBitset members(3);
  members.set(0);
  CandidateSet s{members, /*cost=*/0.5, /*group=*/5, /*ap=*/5, /*session=*/0, 1.0};
  EXPECT_THROW(SetSystem(3, 2, {s}), std::invalid_argument);  // group out of range
  s.group = 0;
  s.cost = 0.0;
  EXPECT_THROW(SetSystem(3, 2, {s}), std::invalid_argument);  // non-positive cost
  CandidateSet wrong{util::DynBitset(4), 0.5, 0, 0, 0, 1.0};
  wrong.members.set(1);
  EXPECT_THROW(SetSystem(3, 2, {wrong}), std::invalid_argument);  // universe mismatch
}

}  // namespace
}  // namespace wmcast::setcover
