#include "wmcast/assoc/revenue.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

TEST(Revenue, PayPerViewCountsServedUsers) {
  const auto sc = test::fig1_scenario(3.0);
  const wlan::Association partial{{0, wlan::kNoAp, 1, wlan::kNoAp, wlan::kNoAp}};
  const auto loads = wlan::compute_loads(sc, partial);
  RevenueModel m;
  m.ppv_fee = 2.5;
  const auto rep = compute_revenue(sc, loads, m);
  EXPECT_DOUBLE_EQ(rep.pay_per_view, 5.0);  // 2 users x 2.5
}

TEST(Revenue, PerByteIsLinearInResidualAirtime) {
  const auto sc = test::fig1_scenario(1.0);
  const wlan::Association all_a1{{0, 0, 0, 0, 0}};
  const auto loads = wlan::compute_loads(sc, all_a1);
  const auto rep = compute_revenue(sc, loads);
  // Two APs, total load 7/12 -> residual airtime 2 - 7/12.
  EXPECT_NEAR(rep.per_byte, 2.0 - 7.0 / 12.0, 1e-12);
}

TEST(Revenue, ConvexModelPrefersBalancedLoads) {
  // Same total load, balanced vs concentrated: the concave unicast curve
  // must strictly prefer balance (the paper's BLA motivation).
  const auto sc = test::fig1_scenario(1.0);
  // Balanced: loads (1/2, 1/3). Concentrated: (7/12, 0). Totals differ
  // slightly, so build synthetic reports with equal totals instead.
  wlan::LoadReport balanced;
  balanced.ap_load = {0.3, 0.3};
  balanced.satisfied_users = 5;
  wlan::LoadReport skewed;
  skewed.ap_load = {0.6, 0.0};
  skewed.satisfied_users = 5;
  const auto rb = compute_revenue(sc, balanced);
  const auto rs = compute_revenue(sc, skewed);
  EXPECT_GT(rb.convex_unicast, rs.convex_unicast);
  EXPECT_NEAR(rb.per_byte, rs.per_byte, 1e-12);  // linear model is indifferent
}

TEST(Revenue, GEndpointsNormalized) {
  // g(0) = 0 and g(1) = 1: an idle AP contributes exactly 1 to the convex
  // model, a fully loaded one contributes 0.
  const auto sc = test::fig1_scenario(1.0);
  wlan::LoadReport idle;
  idle.ap_load = {0.0, 0.0};
  wlan::LoadReport full;
  full.ap_load = {1.0, 1.0};
  EXPECT_NEAR(compute_revenue(sc, idle).convex_unicast, 2.0, 1e-12);
  EXPECT_NEAR(compute_revenue(sc, full).convex_unicast, 0.0, 1e-12);
}

TEST(Revenue, EachAlgorithmWinsItsOwnModel) {
  // The punchline of §3.2: on contended scenarios, MNU maximizes pay-per-
  // view, BLA the concave unicast model, MLA the per-byte model (among our
  // algorithms; compared pairwise against SSA).
  util::Rng rng(157);
  util::RunningStat ppv_edge, convex_edge, byte_edge;
  for (int trial = 0; trial < 5; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 40;
    p.n_users = 160;
    p.area_side_m = 500.0;
    p.load_budget = 0.08;  // contended: MNU matters
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);

    util::Rng srng = rng.fork();
    const auto ssa = compute_revenue(sc, ssa_associate(sc, srng).loads);
    const auto mnu = compute_revenue(sc, centralized_mnu(sc).loads);
    ppv_edge.add(mnu.pay_per_view - ssa.pay_per_view);

    const auto sc_loose = sc.with_budget(0.9);
    util::Rng srng2 = rng.fork();
    const auto ssa2 = compute_revenue(sc_loose, ssa_associate(sc_loose, srng2).loads);
    const auto bla = compute_revenue(sc_loose, centralized_bla(sc_loose).loads);
    const auto mla = compute_revenue(sc_loose, centralized_mla(sc_loose).loads);
    convex_edge.add(bla.convex_unicast - ssa2.convex_unicast);
    byte_edge.add(mla.per_byte - ssa2.per_byte);
  }
  EXPECT_GT(ppv_edge.mean(), 0.0);
  EXPECT_GT(convex_edge.mean(), 0.0);
  EXPECT_GT(byte_edge.mean(), 0.0);
}

TEST(Revenue, RejectsMismatchedReport) {
  const auto sc = test::fig1_scenario(1.0);
  wlan::LoadReport wrong;
  wrong.ap_load = {0.1};  // one AP, scenario has two
  EXPECT_THROW(compute_revenue(sc, wrong), std::invalid_argument);
  wlan::LoadReport ok;
  ok.ap_load = {0.1, 0.1};
  RevenueModel bad;
  bad.unicast_concavity = 0.0;
  EXPECT_THROW(compute_revenue(sc, ok, bad), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::assoc
