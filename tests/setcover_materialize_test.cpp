#include "wmcast/setcover/materialize.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/setcover/greedy.hpp"
#include "wmcast/setcover/mcg.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::setcover {
namespace {

TEST(Materialize, AssignsUsersToFirstCoveringSet) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  const auto greedy = greedy_set_cover(sys);
  const wlan::Association assoc = materialize(sc, sys, greedy.chosen);
  // The MLA walkthrough: everyone lands on a1.
  for (int u = 0; u < 5; ++u) EXPECT_EQ(assoc.ap_of(u), 0);
}

TEST(Materialize, UncoveredUsersStayUnassociated) {
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = build_set_system(sc);
  const McgResult mcg = mcg_greedy_uniform(sys, 1.0);
  const wlan::Association assoc = materialize(sc, sys, mcg.chosen);
  // The §4.1 outcome: u2, u4, u5 on a1; u1, u3 unserved.
  EXPECT_EQ(assoc.ap_of(0), wlan::kNoAp);
  EXPECT_EQ(assoc.ap_of(1), 0);
  EXPECT_EQ(assoc.ap_of(2), wlan::kNoAp);
  EXPECT_EQ(assoc.ap_of(3), 0);
  EXPECT_EQ(assoc.ap_of(4), 0);
}

TEST(Materialize, LoadNeverExceedsSummedSetCosts) {
  // The documented invariant: per-AP materialized load <= the summed cost of
  // that AP's chosen sets (merging nested sets only helps).
  util::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 15;
    p.n_users = 40;
    p.n_sessions = 4;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    const SetSystem sys = build_set_system(sc);
    const auto greedy = greedy_set_cover(sys);
    const auto assoc = materialize(sc, sys, greedy.chosen);
    const auto rep = wlan::compute_loads(sc, assoc);

    std::vector<double> cost_sum(static_cast<size_t>(sc.n_aps()), 0.0);
    for (const int j : greedy.chosen) {
      cost_sum[static_cast<size_t>(sys.set(j).ap)] += sys.set(j).cost;
    }
    for (int a = 0; a < sc.n_aps(); ++a) {
      EXPECT_LE(rep.ap_load[static_cast<size_t>(a)],
                cost_sum[static_cast<size_t>(a)] + 1e-9);
    }
    // Every coverable user is served (greedy covers, materialize assigns).
    EXPECT_EQ(rep.satisfied_users, sc.n_coverable_users());
  }
}

TEST(Materialize, SatisfiedUsersEqualsCoveredCount) {
  const auto sc = test::fig1_scenario(3.0);
  const SetSystem sys = build_set_system(sc);
  const McgResult mcg = mcg_greedy_uniform(sys, 1.0);
  const auto assoc = materialize(sc, sys, mcg.chosen);
  const auto rep = wlan::compute_loads(sc, assoc);
  EXPECT_EQ(rep.satisfied_users, mcg.covered.count());
}

TEST(Materialize, EmptyChoiceGivesEmptyAssociation) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  const auto assoc = materialize(sc, sys, {});
  for (int u = 0; u < sc.n_users(); ++u) EXPECT_EQ(assoc.ap_of(u), wlan::kNoAp);
}

TEST(Materialize, InvalidSetIndexThrows) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  const std::vector<int> bad = {sys.n_sets()};
  EXPECT_THROW(materialize(sc, sys, bad), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::setcover
