// k-connectivity association tests (DESIGN.md §15): the k >= 2 overlay's
// structural invariants, the additive combine rule, and the contract that
// k == 1 reproduces every legacy solver bit for bit.

#include "wmcast/assoc/kconn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "test_fixtures.hpp"
#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/registry.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

wlan::Scenario random_scenario(util::Rng& rng, int n_aps = 20, int n_users = 60) {
  wlan::GeneratorParams gp;
  gp.n_aps = n_aps;
  gp.n_users = n_users;
  gp.n_sessions = 5;
  util::Rng sub = rng.fork();
  return wlan::generate_scenario(gp, sub);
}

/// Structural invariants every overlay must satisfy (mirrors the chaos
/// oracle's checks): base-unserved users stay unserved, the primary AP is in
/// the served-set, served-sets are sorted/duplicate-free, every serving AP is
/// in radio range, and |served-set| <= min(k, |heard-set|).
void expect_overlay_valid(const wlan::Scenario& sc, const Solution& sol, int k) {
  for (int u = 0; u < sc.n_users(); ++u) {
    const auto& sv = sol.multi.aps_of(u);
    const int primary = sol.assoc.ap_of(u);
    if (primary == wlan::kNoAp) {
      EXPECT_TRUE(sv.empty()) << "user " << u << " base-unserved yet in overlay";
      continue;
    }
    EXPECT_TRUE(std::binary_search(sv.begin(), sv.end(), primary))
        << "user " << u << " served-set misses its primary";
    for (size_t i = 0; i < sv.size(); ++i) {
      if (i > 0) {
        EXPECT_GT(sv[i], sv[i - 1]) << "user " << u;
      }
      EXPECT_GT(sc.link_rate(sv[i], u), 0.0)
          << "user " << u << " served by out-of-range AP " << sv[i];
    }
    const int cap = std::min(k, static_cast<int>(sc.aps_of_user(u).size()));
    EXPECT_LE(static_cast<int>(sv.size()), cap) << "user " << u;
  }
}

// Every k-capable solver at k == 1 must leave the legacy Solution untouched:
// same association and load report as the direct legacy call, k == 1, and an
// empty overlay. Differential over 50+ random instances (10 instances x 5
// solvers, then the 5-solver identity re-checked per instance counts 50
// solver-instance pairs).
TEST(KconnIdentity, K1ReproducesEveryLegacySolver) {
  static const char* kSolvers[] = {"ssa", "mla-c", "bla-c", "mnu-c",
                                   "local-search"};
  util::Rng rng(911);
  for (int trial = 0; trial < 10; ++trial) {
    const auto sc = random_scenario(rng);
    for (const char* name : kSolvers) {
      SolveOptions k1;
      k1.k = 1;
      util::Rng ra(7);
      util::Rng rb(7);
      const Solution with_k = solve_by_name(name, sc, ra, k1);
      const Solution legacy = solve_by_name(name, sc, rb);
      EXPECT_EQ(with_k.assoc, legacy.assoc) << name << " trial " << trial;
      EXPECT_EQ(with_k.loads.ap_load, legacy.loads.ap_load) << name;
      EXPECT_EQ(with_k.loads.satisfied_users, legacy.loads.satisfied_users) << name;
      EXPECT_EQ(with_k.k, 1) << name;
      EXPECT_EQ(with_k.multi.n_users(), 0)
          << name << ": overlay must stay empty at k=1";
    }
  }
}

// The augmentation never touches the primary view: at k == 2 the embedded
// single-AP association and its load report are bit-identical to the k == 1
// solve, for every supporting solver.
TEST(KconnIdentity, AugmentationPreservesThePrimaryView) {
  static const char* kSolvers[] = {"ssa", "mla-c", "bla-c", "mnu-c",
                                   "local-search"};
  util::Rng rng(913);
  for (int trial = 0; trial < 4; ++trial) {
    const auto sc = random_scenario(rng);
    for (const char* name : kSolvers) {
      SolveOptions k1, k2;
      k1.k = 1;
      k2.k = 2;
      util::Rng ra(7);
      util::Rng rb(7);
      const Solution base = solve_by_name(name, sc, ra, k1);
      const Solution multi = solve_by_name(name, sc, rb, k2);
      EXPECT_EQ(multi.assoc, base.assoc) << name << " trial " << trial;
      EXPECT_EQ(multi.loads.ap_load, base.loads.ap_load) << name;
      EXPECT_EQ(multi.loads.total_load, base.loads.total_load) << name;
      EXPECT_EQ(multi.k, 2) << name;
      EXPECT_EQ(multi.multi_loads.satisfied_users, base.loads.satisfied_users)
          << name << ": overlay changed the served-user count";
      expect_overlay_valid(sc, multi, 2);
    }
  }
}

// k far beyond any heard-set: served-sets are capped at the heard-set size,
// never padded or out of range. fig1 has 2 APs, so k = 5 caps everyone at 2.
TEST(KconnEdge, KLargerThanHeardSetIsCapped) {
  const auto sc = test::fig1_scenario(1.0);
  CentralizedParams p;
  p.k = 5;
  const Solution sol = centralized_mla(sc, p);
  expect_overlay_valid(sc, sol, 5);
  for (int u = 0; u < sc.n_users(); ++u) {
    if (sol.assoc.ap_of(u) == wlan::kNoAp) continue;
    EXPECT_LE(sol.multi.aps_of(u).size(),
              std::min<size_t>(5, sc.aps_of_user(u).size()));
  }
  // On fig1 both APs cover overlapping users, so at least one user should
  // actually pick up a second stream.
  EXPECT_GT(sol.multi_loads.multi_served_users, 0);
}

// The combine rule is additive: each user's effective rate is exactly the sum
// of its serving APs' per-session tx rates, and the report's aggregates are
// consistent with their per-entity vectors.
TEST(KconnLoads, EffectiveRateIsTheSumOfServingStreams) {
  util::Rng rng(917);
  const auto sc = random_scenario(rng, 25, 80);
  CentralizedParams p;
  p.k = 3;
  const Solution sol = centralized_mla(sc, p);
  double total = 0.0;
  double max_load = 0.0;
  for (int a = 0; a < sc.n_aps(); ++a) {
    total += sol.multi_loads.ap_load[static_cast<size_t>(a)];
    max_load = std::max(max_load, sol.multi_loads.ap_load[static_cast<size_t>(a)]);
  }
  EXPECT_NEAR(sol.multi_loads.total_load, total, 1e-9);
  EXPECT_NEAR(sol.multi_loads.max_load, max_load, 1e-9);
  for (int u = 0; u < sc.n_users(); ++u) {
    double sum = 0.0;
    for (const int a : sol.multi.aps_of(u)) {
      const double tx = sol.multi_loads
                            .tx_rate[static_cast<size_t>(a)]
                                    [static_cast<size_t>(sc.user_session(u))];
      EXPECT_GT(tx, 0.0) << "serving AP transmits at rate 0";
      EXPECT_LE(tx, sc.link_rate(a, u) + 1e-12)
          << "user " << u << " cannot decode AP " << a << "'s stream";
      sum += tx;
    }
    EXPECT_NEAR(sol.multi_loads.effective_rate[static_cast<size_t>(u)], sum, 1e-9)
        << "user " << u;
  }
}

// Overlapping served-sets across a scenario delta: after moving users and
// rezapping sessions via apply_delta, a fresh k = 2 solve on the new scenario
// still produces a structurally valid overlay (in range in the NEW geometry),
// and compute_multi_loads round-trips it.
TEST(KconnEdge, OverlappingServedSetsSurviveApplyDelta) {
  util::Rng rng(919);
  const auto sc = random_scenario(rng, 20, 60);
  wlan::ScenarioDelta delta;
  for (int u = 0; u < 12; ++u) {
    delta.moved.push_back({u, {rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)}});
  }
  delta.rezapped.push_back({3, 0});
  delta.rezapped.push_back({7, 1});
  std::vector<int> dirty;
  const auto sc2 = sc.apply_delta(delta, &dirty);

  CentralizedParams p;
  p.k = 2;
  const Solution sol = centralized_mla(sc2, p);
  expect_overlay_valid(sc2, sol, 2);
  const auto fresh = wlan::compute_multi_loads(sc2, sol.multi, true);
  EXPECT_EQ(fresh.ap_load, sol.multi_loads.ap_load);
  EXPECT_EQ(fresh.effective_rate, sol.multi_loads.effective_rate);
}

// Determinism: the same instance solved twice yields the same overlay, and
// the budgeted variant (MNU) never adds budget violations over its base.
TEST(KconnEdge, DeterministicAndBudgetSafe) {
  util::Rng rng(923);
  for (int trial = 0; trial < 4; ++trial) {
    const auto sc = random_scenario(rng);
    CentralizedParams p;
    p.k = 2;
    const Solution a = centralized_mnu(sc, p);
    const Solution b = centralized_mnu(sc, p);
    EXPECT_EQ(a.multi, b.multi) << "trial " << trial;
    EXPECT_LE(a.multi_loads.budget_violations, a.loads.budget_violations)
        << "budgeted augmentation added violations on trial " << trial;
  }
}

TEST(KconnRegistry, SingleApSolversRejectK2) {
  const auto sc = test::fig1_scenario(1.0);
  util::Rng rng(1);
  SolveOptions k2;
  k2.k = 2;
  for (const char* name : {"mla-d", "bla-d", "mnu-d", "lock-d"}) {
    EXPECT_THROW(solve_by_name(name, sc, rng, k2), std::invalid_argument) << name;
  }
  SolveOptions k0;
  k0.k = 0;
  EXPECT_THROW(solve_by_name("mla-c", sc, rng, k0), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::assoc
