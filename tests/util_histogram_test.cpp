#include "wmcast/util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wmcast::util {
namespace {

// Contract (histogram.hpp): empty -> NaN, single sample -> itself for every q,
// q<=0 -> exact min, q>=1 -> exact max, interior q interpolated on the
// continuous rank r = q*(count-1) within the containing bucket's span clamped
// to [min, max].
TEST(BucketedQuantiles, EmptyIsNaNAndSerializesToZero) {
  Histogram h({1.0, 2.0});
  for (const double q : {0.0, 0.5, 0.999, 1.0}) {
    EXPECT_TRUE(std::isnan(h.quantile(q))) << "q=" << q;
  }
  const auto j = h.to_json();
  EXPECT_DOUBLE_EQ(j.find("p50")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(j.find("p99")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(j.find("p999")->as_double(), 0.0);
}

TEST(BucketedQuantiles, SingleSampleIsEveryQuantile) {
  Histogram h({1.0, 10.0});
  h.record(3.5);
  for (const double q : {0.0, 0.25, 0.5, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.5) << "q=" << q;
  }
}

TEST(BucketedQuantiles, ExtremesReportExactMinAndMax) {
  Histogram h = Histogram::exponential(1.0, 2.0, 8);
  h.record(0.7);
  h.record(3.0);
  h.record(77.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.7);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 0.7);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 77.0) << "even though 77 overflows no bound";
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 77.0);
}

TEST(BucketedQuantiles, InterpolatesWithinABucket) {
  // Three samples in one [0, 10] bucket at ranks 0, 1, 2; min=2, max=8.
  // Rank spread is linear over the clamped span [2, 8], so the median
  // (rank 1 of 0..2) sits exactly halfway.
  Histogram h({10.0});
  h.record(2.0);
  h.record(5.0);
  h.record(8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 3.5);
}

TEST(BucketedQuantiles, CrossesBucketBoundaries) {
  // 2 samples in (0,1], 2 in (1,2]: ranks 0..3. q=0.5 -> rank 1.5, still in
  // the first bucket's span [0.25, 1]; q=0.9 -> rank 2.7 in the second
  // bucket's span (1, 1.75].
  Histogram h({1.0, 2.0});
  h.record(0.25);
  h.record(0.75);
  h.record(1.25);
  h.record(1.75);
  const double q50 = h.quantile(0.5);
  EXPECT_GE(q50, 0.25);
  EXPECT_LE(q50, 1.0);
  const double q90 = h.quantile(0.9);
  EXPECT_GT(q90, 1.0);
  EXPECT_LE(q90, 1.75);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9)) << "quantiles are monotone in q";
}

TEST(BucketedQuantiles, P999TracksTheTail) {
  // 900 fast samples and 100 slow ones: p50 stays in the fast bucket while
  // p99 and p999 land in the slow (10, 100] bucket, p999 deeper into it.
  Histogram h = Histogram::exponential(1e-3, 10.0, 6);
  for (int i = 0; i < 900; ++i) h.record(1e-3);
  for (int i = 0; i < 100; ++i) h.record(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1e-3);
  EXPECT_GT(h.quantile(0.99), 10.0);
  EXPECT_GT(h.quantile(0.999), h.quantile(0.99));
  EXPECT_LE(h.quantile(0.999), 50.0);
  const auto j = h.to_json();
  EXPECT_GT(j.find("p999")->as_double(), j.find("p50")->as_double());
}

TEST(BucketedQuantiles, MonotoneAcrossManyQs) {
  Histogram h = Histogram::exponential(1.0, 2.0, 12);
  for (int i = 1; i <= 500; ++i) h.record(static_cast<double>(i % 97) + 0.5);
  double prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0 + 1e-9; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

// Regression: record(NaN) used to slip past every unordered comparison and
// poison min_/max_/sum_ (every later quantile and mean came back NaN). It
// must be rejected up front, leaving the recorded state untouched.
TEST(BucketedQuantiles, RecordRejectsNaNWithoutPoisoningState) {
  Histogram h({1.0, 10.0});
  h.record(3.5);
  EXPECT_THROW(h.record(std::nan("")), std::invalid_argument);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.5) << "count must not include the NaN";
}

// Regression: the bar scaling computed counts[i] * width in int, which
// overflows (UB, typically a negative bar) once a count passes
// INT_MAX / width. The math is 64-bit now; the largest count still gets the
// full bar and tiny counts still round up to one '#'.
TEST(Histogram, HugeCountsDoNotOverflowBarScaling) {
  const int kMax = std::numeric_limits<int>::max();
  const std::string out = render_histogram({"big", "tiny"}, {kMax, 1}, 100);
  EXPECT_NE(out.find(std::string(100, '#') + " " + std::to_string(kMax)),
            std::string::npos);
  EXPECT_EQ(out.find(std::string(101, '#')), std::string::npos);
  EXPECT_NE(out.find("# 1"), std::string::npos);
}

TEST(Histogram, RendersBarsProportionally) {
  const std::string out = render_histogram({"a", "bb"}, {2, 4}, 10);
  // Largest count gets the full width; half count gets half the bar.
  EXPECT_NE(out.find("bb | ########## 4"), std::string::npos);
  EXPECT_NE(out.find("a  | ##### 2"), std::string::npos);
}

TEST(Histogram, ZeroCountsGetNoBar) {
  const std::string out = render_histogram({"x", "y"}, {0, 3}, 8);
  EXPECT_NE(out.find("x | 0"), std::string::npos);
  EXPECT_NE(out.find("y | ######## 3"), std::string::npos);
}

TEST(Histogram, AllZeroIsStable) {
  const std::string out = render_histogram({"x"}, {0}, 8);
  EXPECT_NE(out.find("x | 0"), std::string::npos);
}

TEST(Histogram, TinyCountsStillVisible) {
  // 1 out of 1000 must render at least one '#'.
  const std::string out = render_histogram({"big", "tiny"}, {1000, 1}, 20);
  EXPECT_NE(out.find("tiny | # 1"), std::string::npos);
}

TEST(Histogram, IndexedLabelsWithClampMarker) {
  const std::string out = render_indexed_histogram({1, 2, 3}, 6);
  EXPECT_NE(out.find("0 "), std::string::npos);
  EXPECT_NE(out.find("1 "), std::string::npos);
  EXPECT_NE(out.find(">=2"), std::string::npos);
}

TEST(Histogram, RejectsBadInput) {
  EXPECT_THROW(render_histogram({"a"}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(render_histogram({"a"}, {-1}), std::invalid_argument);
  EXPECT_THROW(render_histogram({"a"}, {1}, 0), std::invalid_argument);
}

TEST(Histogram, EmptyInputRendersEmpty) {
  EXPECT_EQ(render_histogram({}, {}), "");
  EXPECT_EQ(render_indexed_histogram({}), "");
}

TEST(Histogram, SingleBucket) {
  EXPECT_EQ(render_indexed_histogram({3}, 4), "0 | #### 3\n");
}

}  // namespace
}  // namespace wmcast::util
