#include "wmcast/util/histogram.hpp"

#include <gtest/gtest.h>

namespace wmcast::util {
namespace {

TEST(Histogram, RendersBarsProportionally) {
  const std::string out = render_histogram({"a", "bb"}, {2, 4}, 10);
  // Largest count gets the full width; half count gets half the bar.
  EXPECT_NE(out.find("bb | ########## 4"), std::string::npos);
  EXPECT_NE(out.find("a  | ##### 2"), std::string::npos);
}

TEST(Histogram, ZeroCountsGetNoBar) {
  const std::string out = render_histogram({"x", "y"}, {0, 3}, 8);
  EXPECT_NE(out.find("x | 0"), std::string::npos);
  EXPECT_NE(out.find("y | ######## 3"), std::string::npos);
}

TEST(Histogram, AllZeroIsStable) {
  const std::string out = render_histogram({"x"}, {0}, 8);
  EXPECT_NE(out.find("x | 0"), std::string::npos);
}

TEST(Histogram, TinyCountsStillVisible) {
  // 1 out of 1000 must render at least one '#'.
  const std::string out = render_histogram({"big", "tiny"}, {1000, 1}, 20);
  EXPECT_NE(out.find("tiny | # 1"), std::string::npos);
}

TEST(Histogram, IndexedLabelsWithClampMarker) {
  const std::string out = render_indexed_histogram({1, 2, 3}, 6);
  EXPECT_NE(out.find("0 "), std::string::npos);
  EXPECT_NE(out.find("1 "), std::string::npos);
  EXPECT_NE(out.find(">=2"), std::string::npos);
}

TEST(Histogram, RejectsBadInput) {
  EXPECT_THROW(render_histogram({"a"}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(render_histogram({"a"}, {-1}), std::invalid_argument);
  EXPECT_THROW(render_histogram({"a"}, {1}, 0), std::invalid_argument);
}

TEST(Histogram, EmptyInputRendersEmpty) {
  EXPECT_EQ(render_histogram({}, {}), "");
  EXPECT_EQ(render_indexed_histogram({}), "");
}

TEST(Histogram, SingleBucket) {
  EXPECT_EQ(render_indexed_histogram({3}, 4), "0 | #### 3\n");
}

}  // namespace
}  // namespace wmcast::util
