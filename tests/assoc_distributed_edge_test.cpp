// Edge-case coverage for the distributed round engine beyond the paper
// walkthroughs: warm starts, round caps, budget races, determinism.
#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::assoc {
namespace {

TEST(DistributedEdge, WarmStartFromFixedPointDoesNothing) {
  // Converge once, then resume from the result: round 1 must make no moves.
  util::Rng gen(191);
  wlan::GeneratorParams gp;
  gp.n_aps = 15;
  gp.n_users = 40;
  const auto sc = wlan::generate_scenario(gp, gen);
  DistributedParams p;
  p.order = util::iota_permutation(sc.n_users());
  util::Rng r1(1);
  const auto first = distributed_associate(sc, r1, p);
  ASSERT_TRUE(first.converged);

  p.initial = first.assoc;
  util::Rng r2(2);
  const auto resumed = distributed_associate(sc, r2, p);
  EXPECT_TRUE(resumed.converged);
  EXPECT_EQ(resumed.rounds, 1);  // one quiet round proves the fixed point
  EXPECT_EQ(resumed.assoc, first.assoc);
}

TEST(DistributedEdge, MaxRoundsCapReportsNonConvergence) {
  const auto sc = test::fig4_scenario();
  DistributedParams p;
  p.mode = UpdateMode::kSimultaneous;
  p.order = util::iota_permutation(4);
  p.initial = wlan::Association{{0, 0, 1, 1}};
  p.max_rounds = 3;  // cycle detection needs 2 rounds; cap at 3 regardless
  util::Rng rng(1);
  const auto sol = distributed_associate(sc, rng, p);
  EXPECT_FALSE(sol.converged);
  EXPECT_LE(sol.rounds, 3);
}

TEST(DistributedEdge, ZeroMaxRoundsReturnsInitialState) {
  const auto sc = test::fig1_scenario(1.0);
  DistributedParams p;
  p.max_rounds = 0;
  p.order = util::iota_permutation(5);
  util::Rng rng(1);
  const auto sol = distributed_associate(sc, rng, p);
  EXPECT_EQ(sol.loads.satisfied_users, 0);
  EXPECT_FALSE(sol.converged);
  EXPECT_EQ(sol.rounds, 0);
}

TEST(DistributedEdge, InvalidInitialAssociationThrows) {
  const auto sc = test::fig1_scenario(1.0);
  DistributedParams p;
  p.initial = wlan::Association{{1, 0, 0, 0, 0}};  // u1 cannot reach a2
  util::Rng rng(1);
  EXPECT_THROW(distributed_associate(sc, rng, p), std::invalid_argument);
  p.initial = wlan::Association{{9, 0, 0, 0, 0}};  // AP id out of range
  EXPECT_THROW(distributed_associate(sc, rng, p), std::invalid_argument);
  p.initial = wlan::Association::none(3);  // wrong size
  EXPECT_THROW(distributed_associate(sc, rng, p), std::invalid_argument);
}

TEST(DistributedEdge, SimultaneousModeCanOvershootBudgetsTransiently) {
  // Two users race for the same AP in one simultaneous round; each saw the
  // budget as free. The engine applies both (the real protocol would too —
  // the DES adds AP-side admission control, the round engine does not).
  const std::vector<std::vector<double>> link = {{6, 6}, {3, 3}};
  const auto sc =
      wlan::Scenario::from_link_rates(link, {0, 1}, {2.0, 2.0}, /*budget=*/0.5);
  // Each stream on a1 costs 2/6 = 1/3 <= 0.5, both together 2/3 > 0.5.
  DistributedParams p;
  p.mode = UpdateMode::kSimultaneous;
  p.order = {0, 1};
  p.max_rounds = 1;
  util::Rng rng(1);
  const auto sol = distributed_associate(sc, rng, p);
  EXPECT_EQ(sol.loads.satisfied_users, 2);
  EXPECT_FALSE(sol.loads.within_budget());  // documented transient behavior
}

TEST(DistributedEdge, SequentialModeNeverViolatesBudgets) {
  const std::vector<std::vector<double>> link = {{6, 6}, {3, 3}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 1}, {2.0, 2.0}, 0.5);
  DistributedParams p;
  p.order = {0, 1};
  util::Rng rng(1);
  const auto sol = distributed_associate(sc, rng, p);
  EXPECT_TRUE(sol.loads.within_budget());
  // One lands on a1 (1/3), the other must settle for a2 (2/3 > 0.5 at a2's
  // rate 3... 2/3 > 0.5, infeasible there too) -> exactly one served.
  EXPECT_EQ(sol.loads.satisfied_users, 1);
}

TEST(DistributedEdge, ShuffledOrderStillConverges) {
  util::Rng gen(193);
  wlan::GeneratorParams gp;
  gp.n_aps = 12;
  gp.n_users = 36;
  const auto sc = wlan::generate_scenario(gp, gen);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng(seed);
    const auto sol = distributed_associate(sc, rng, {});  // random order
    EXPECT_TRUE(sol.converged);
    EXPECT_EQ(sol.loads.satisfied_users, sc.n_coverable_users());
  }
}

TEST(DistributedEdge, UsersWithSingleApJustJoinIt) {
  // Degenerate single-AP network: everyone piles on, no oscillation possible.
  const std::vector<std::vector<double>> link = {{6, 12, 24}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 0, 0}, {1.0}, 1.0);
  util::Rng rng(1);
  const auto sol = distributed_associate(sc, rng, {});
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.loads.satisfied_users, 3);
  EXPECT_NEAR(sol.loads.total_load, 1.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace wmcast::assoc
