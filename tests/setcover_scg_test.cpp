#include "wmcast/setcover/scg.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"

namespace wmcast::setcover {
namespace {

TEST(ScgSolve, PapersBlaWalkthroughOutcome) {
  // §5.1 example: on Fig. 1 with 1 Mbps streams, Centralized BLA selects
  // (a1, s2, rate 4) and (a1, s1, rate 3): all users on a1, max group cost
  // 1/4 + 1/3 = 7/12. (The true optimum is 1/2; the greedy cannot see it.)
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  const ScgResult res = scg_solve(sys);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.covered.count(), 5);
  EXPECT_NEAR(res.max_group_cost, 7.0 / 12.0, 1e-9);
  // Both chosen transmissions are from a1.
  for (const int j : res.chosen) EXPECT_EQ(sys.set(j).ap, 0);
}

TEST(ScgSolve, CoversEverythingOnRandomScenarios) {
  util::Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    wlan::GeneratorParams p;
    p.n_aps = 25;
    p.n_users = 60;
    p.n_sessions = 3;
    util::Rng sub = rng.fork();
    const auto sc = wlan::generate_scenario(p, sub);
    const SetSystem sys = build_set_system(sc);
    const ScgResult res = scg_solve(sys);
    EXPECT_TRUE(res.feasible);
    EXPECT_EQ(res.covered.count(), sc.n_coverable_users());
    // The reported per-group costs match the chosen sets.
    std::vector<double> group_cost(static_cast<size_t>(sys.n_groups()), 0.0);
    for (const int j : res.chosen) {
      group_cost[static_cast<size_t>(sys.set(j).group)] += sys.set(j).cost;
    }
    double max_cost = 0.0;
    for (int g = 0; g < sys.n_groups(); ++g) {
      EXPECT_NEAR(group_cost[static_cast<size_t>(g)], res.group_cost[static_cast<size_t>(g)], 1e-9);
      max_cost = std::max(max_cost, group_cost[static_cast<size_t>(g)]);
    }
    EXPECT_NEAR(res.max_group_cost, max_cost, 1e-9);
  }
}

TEST(ScgSolve, TheoremFourPassBound) {
  // The winning run must finish within log_{8/7}(n)+1 passes (plus our
  // documented slack of 8).
  util::Rng rng(23);
  wlan::GeneratorParams p;
  p.n_aps = 30;
  p.n_users = 80;
  const auto sc = wlan::generate_scenario(p, rng);
  const SetSystem sys = build_set_system(sc);
  const ScgResult res = scg_solve(sys);
  ASSERT_TRUE(res.feasible);
  const int bound =
      static_cast<int>(std::ceil(std::log(80.0) / std::log(8.0 / 7.0))) + 8;
  EXPECT_LE(res.passes, bound);
}

TEST(ScgSolve, SingleApInstance) {
  // Everything must go through the one AP; the max group cost equals the
  // total cost of a cover.
  const std::vector<std::vector<double>> link = {{2, 4}};
  const auto sc = wlan::Scenario::from_link_rates(link, {0, 0}, {1.0}, 1.0);
  const SetSystem sys = build_set_system(sc);
  const ScgResult res = scg_solve(sys);
  ASSERT_TRUE(res.feasible);
  // One transmission of the session at rate 2 covers both users: cost 1/2.
  EXPECT_NEAR(res.max_group_cost, 0.5, 1e-9);
}

TEST(ScgSolve, BetterBudgetGuessesNeverHurtTheMax) {
  // scg_solve returns the best over its B* candidates, so the result can only
  // be at most the single-shot greedy at B* = 1.
  const auto sc = test::fig1_scenario(2.0);
  const SetSystem sys = build_set_system(sc);
  const ScgResult best = scg_solve(sys);
  ScgParams one_shot;
  one_shot.grid_points = 2;  // just the bounds
  one_shot.refine_steps = 0;
  const ScgResult coarse = scg_solve(sys, one_shot);
  if (best.feasible && coarse.feasible) {
    EXPECT_LE(best.max_group_cost, coarse.max_group_cost + 1e-9);
  }
}

TEST(ScgSolve, RejectsBadParams) {
  const auto sc = test::fig1_scenario(1.0);
  const SetSystem sys = build_set_system(sc);
  ScgParams p;
  p.budget_cap = 0.0;
  EXPECT_THROW(scg_solve(sys, p), std::invalid_argument);
  p = ScgParams{};
  p.grid_points = 1;
  EXPECT_THROW(scg_solve(sys, p), std::invalid_argument);
}

}  // namespace
}  // namespace wmcast::setcover
