#include "wmcast/util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace wmcast::util {
namespace {

TEST(Json, BuildsAndDumpsCompact) {
  Json j = Json::object();
  j.set("name", "wmcast");
  j.set("n", 3);
  j.set("x", 1.5);
  j.set("ok", true);
  j.set("nothing", Json());
  Json arr = Json::array();
  arr.push(1);
  arr.push(2);
  j.set("list", std::move(arr));
  EXPECT_EQ(j.dump(),
            R"({"name":"wmcast","n":3,"x":1.5,"ok":true,"nothing":null,"list":[1,2]})");
}

TEST(Json, ObjectsKeepInsertionOrderAndOverwrite) {
  Json j = Json::object();
  j.set("b", 1);
  j.set("a", 2);
  j.set("b", 3);  // overwrite keeps the original position
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.members()[0].first, "b");
  EXPECT_EQ(j.find("b")->as_int(), 3);
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  Json j("line1\nline2");
  EXPECT_EQ(j.dump(), "\"line1\\nline2\"");
}

TEST(Json, ParseRoundTripsTypes) {
  const auto j = Json::parse(
      R"({"i": -42, "d": 2.5e-1, "s": "hiA", "b": false, "n": null,
          "a": [1, {"k": "v"}]})");
  EXPECT_EQ(j.find("i")->as_int(), -42);
  EXPECT_DOUBLE_EQ(j.find("d")->as_double(), 0.25);
  EXPECT_EQ(j.find("s")->as_string(), "hiA");
  EXPECT_FALSE(j.find("b")->as_bool());
  EXPECT_EQ(j.find("n")->kind(), Json::Kind::kNull);
  ASSERT_EQ(j.find("a")->size(), 2u);
  EXPECT_EQ(j.find("a")->items()[1].find("k")->as_string(), "v");
}

TEST(Json, DumpParseIdentityOnNestedDocument) {
  Json j = Json::object();
  Json inner = Json::object();
  inner.set("pi", 3.14159);
  inner.set("tag", "a/b \"c\"");
  j.set("inner", std::move(inner));
  Json arr = Json::array();
  for (int i = 0; i < 3; ++i) arr.push(i * 10);
  j.set("arr", std::move(arr));

  for (const int indent : {0, 2}) {
    const auto back = Json::parse(j.dump(indent));
    EXPECT_EQ(back.find("inner")->find("tag")->as_string(), "a/b \"c\"");
    EXPECT_EQ(back.find("arr")->items()[2].as_int(), 20);
  }
}

TEST(Json, StrictParserRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "{'a':1}", "tru",
                          "{\"a\":1} trailing", "\"unterminated", "[1 2]",
                          "{\"a\" 1}"}) {
    EXPECT_THROW(Json::parse(bad), std::invalid_argument) << "input: " << bad;
  }
}

TEST(Json, AccessorsReturnZeroValuesOnKindMismatch) {
  const Json s("text");
  EXPECT_EQ(s.as_int(), 0);
  EXPECT_DOUBLE_EQ(s.as_double(), 0.0);
  EXPECT_FALSE(s.as_bool());
  EXPECT_EQ(s.find("k"), nullptr);
  const Json i(7);
  EXPECT_DOUBLE_EQ(i.as_double(), 7.0) << "ints read as doubles";
}

TEST(Json, SetAndPushEnforceContainerKind) {
  Json notObj(1);
  EXPECT_THROW(notObj.set("k", 1), std::invalid_argument);
  EXPECT_THROW(notObj.push(1), std::invalid_argument);
}

TEST(Json, ParseErrorsCarryTheOffset) {
  try {
    Json::parse("{\"a\": 1, \"b\": }");
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("offset 14"), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(Json, TruncatedInputFailsCleanlyAtEveryPrefix) {
  const std::string doc =
      R"({"schema": "wmcast-ctrl-telemetry/v1", "vals": [1, 2.5, null, "x\n"]})";
  ASSERT_NO_THROW(Json::parse(doc));
  for (size_t cut = 0; cut < doc.size(); ++cut) {
    EXPECT_THROW(Json::parse(doc.substr(0, cut)), std::invalid_argument)
        << "prefix length " << cut;
  }
}

TEST(Json, DeepNestingIsCappedNotAStackOverflow) {
  // Within the cap: parses fine.
  std::string ok(200, '[');
  ok += std::string(200, ']');
  EXPECT_NO_THROW(Json::parse(ok));
  // A pathological all-bracket document must raise, not smash the stack.
  const std::string bomb(100000, '[');
  try {
    Json::parse(bomb);
    FAIL() << "expected depth failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nesting too deep"), std::string::npos);
  }
  std::string mixed;
  for (int i = 0; i < 50000; ++i) mixed += "{\"k\":[";
  EXPECT_THROW(Json::parse(mixed), std::invalid_argument);
}

TEST(Json, UnicodeEscapes) {
  // BMP escape decodes to UTF-8.
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");
  EXPECT_EQ(Json::parse("\"\\u20AC\"").as_string(), "\xE2\x82\xAC");
  // A surrogate pair recombines to the astral code point (U+1F600).
  EXPECT_EQ(Json::parse("\"\\uD83D\\uDE00\"").as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsLoneAndMalformedSurrogates) {
  for (const char* bad : {
           "\"\\uD83D\"",            // lone high surrogate
           "\"\\uDE00\"",            // lone low surrogate
           "\"\\uD83D\\uD83D\"",     // high followed by high
           "\"\\uD83Dx\"",           // high followed by a raw char
           "\"\\uD83D\\n\"",         // high followed by a non-\u escape
           "\"\\u12G4\"",            // bad hex digit
           "\"\\u12\"",              // truncated hex
       }) {
    EXPECT_THROW(Json::parse(bad), std::invalid_argument) << "input: " << bad;
  }
}

}  // namespace
}  // namespace wmcast::util
