file(REMOVE_RECURSE
  "libwmcast.a"
)
