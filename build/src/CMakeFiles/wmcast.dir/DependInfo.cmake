
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wmcast/assoc/centralized.cpp" "src/CMakeFiles/wmcast.dir/wmcast/assoc/centralized.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/assoc/centralized.cpp.o.d"
  "/root/repo/src/wmcast/assoc/distributed.cpp" "src/CMakeFiles/wmcast.dir/wmcast/assoc/distributed.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/assoc/distributed.cpp.o.d"
  "/root/repo/src/wmcast/assoc/dual.cpp" "src/CMakeFiles/wmcast.dir/wmcast/assoc/dual.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/assoc/dual.cpp.o.d"
  "/root/repo/src/wmcast/assoc/local_search.cpp" "src/CMakeFiles/wmcast.dir/wmcast/assoc/local_search.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/assoc/local_search.cpp.o.d"
  "/root/repo/src/wmcast/assoc/metrics.cpp" "src/CMakeFiles/wmcast.dir/wmcast/assoc/metrics.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/assoc/metrics.cpp.o.d"
  "/root/repo/src/wmcast/assoc/registry.cpp" "src/CMakeFiles/wmcast.dir/wmcast/assoc/registry.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/assoc/registry.cpp.o.d"
  "/root/repo/src/wmcast/assoc/revenue.cpp" "src/CMakeFiles/wmcast.dir/wmcast/assoc/revenue.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/assoc/revenue.cpp.o.d"
  "/root/repo/src/wmcast/assoc/single_session.cpp" "src/CMakeFiles/wmcast.dir/wmcast/assoc/single_session.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/assoc/single_session.cpp.o.d"
  "/root/repo/src/wmcast/assoc/ssa.cpp" "src/CMakeFiles/wmcast.dir/wmcast/assoc/ssa.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/assoc/ssa.cpp.o.d"
  "/root/repo/src/wmcast/exact/dual_bound.cpp" "src/CMakeFiles/wmcast.dir/wmcast/exact/dual_bound.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/exact/dual_bound.cpp.o.d"
  "/root/repo/src/wmcast/exact/exact_bla.cpp" "src/CMakeFiles/wmcast.dir/wmcast/exact/exact_bla.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/exact/exact_bla.cpp.o.d"
  "/root/repo/src/wmcast/exact/exact_mla.cpp" "src/CMakeFiles/wmcast.dir/wmcast/exact/exact_mla.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/exact/exact_mla.cpp.o.d"
  "/root/repo/src/wmcast/exact/exact_mnu.cpp" "src/CMakeFiles/wmcast.dir/wmcast/exact/exact_mnu.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/exact/exact_mnu.cpp.o.d"
  "/root/repo/src/wmcast/exact/lp_writer.cpp" "src/CMakeFiles/wmcast.dir/wmcast/exact/lp_writer.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/exact/lp_writer.cpp.o.d"
  "/root/repo/src/wmcast/ext/interference.cpp" "src/CMakeFiles/wmcast.dir/wmcast/ext/interference.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/ext/interference.cpp.o.d"
  "/root/repo/src/wmcast/ext/interference_aware.cpp" "src/CMakeFiles/wmcast.dir/wmcast/ext/interference_aware.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/ext/interference_aware.cpp.o.d"
  "/root/repo/src/wmcast/ext/locks.cpp" "src/CMakeFiles/wmcast.dir/wmcast/ext/locks.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/ext/locks.cpp.o.d"
  "/root/repo/src/wmcast/ext/period_schedule.cpp" "src/CMakeFiles/wmcast.dir/wmcast/ext/period_schedule.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/ext/period_schedule.cpp.o.d"
  "/root/repo/src/wmcast/ext/power_control.cpp" "src/CMakeFiles/wmcast.dir/wmcast/ext/power_control.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/ext/power_control.cpp.o.d"
  "/root/repo/src/wmcast/hardness/reductions.cpp" "src/CMakeFiles/wmcast.dir/wmcast/hardness/reductions.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/hardness/reductions.cpp.o.d"
  "/root/repo/src/wmcast/mac/airtime.cpp" "src/CMakeFiles/wmcast.dir/wmcast/mac/airtime.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/mac/airtime.cpp.o.d"
  "/root/repo/src/wmcast/mac/queueing.cpp" "src/CMakeFiles/wmcast.dir/wmcast/mac/queueing.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/mac/queueing.cpp.o.d"
  "/root/repo/src/wmcast/mac/reliable.cpp" "src/CMakeFiles/wmcast.dir/wmcast/mac/reliable.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/mac/reliable.cpp.o.d"
  "/root/repo/src/wmcast/setcover/greedy.cpp" "src/CMakeFiles/wmcast.dir/wmcast/setcover/greedy.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/setcover/greedy.cpp.o.d"
  "/root/repo/src/wmcast/setcover/layering.cpp" "src/CMakeFiles/wmcast.dir/wmcast/setcover/layering.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/setcover/layering.cpp.o.d"
  "/root/repo/src/wmcast/setcover/materialize.cpp" "src/CMakeFiles/wmcast.dir/wmcast/setcover/materialize.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/setcover/materialize.cpp.o.d"
  "/root/repo/src/wmcast/setcover/mcg.cpp" "src/CMakeFiles/wmcast.dir/wmcast/setcover/mcg.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/setcover/mcg.cpp.o.d"
  "/root/repo/src/wmcast/setcover/reduction.cpp" "src/CMakeFiles/wmcast.dir/wmcast/setcover/reduction.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/setcover/reduction.cpp.o.d"
  "/root/repo/src/wmcast/setcover/scg.cpp" "src/CMakeFiles/wmcast.dir/wmcast/setcover/scg.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/setcover/scg.cpp.o.d"
  "/root/repo/src/wmcast/setcover/set_system.cpp" "src/CMakeFiles/wmcast.dir/wmcast/setcover/set_system.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/setcover/set_system.cpp.o.d"
  "/root/repo/src/wmcast/sim/agents.cpp" "src/CMakeFiles/wmcast.dir/wmcast/sim/agents.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/sim/agents.cpp.o.d"
  "/root/repo/src/wmcast/sim/ap_channel.cpp" "src/CMakeFiles/wmcast.dir/wmcast/sim/ap_channel.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/sim/ap_channel.cpp.o.d"
  "/root/repo/src/wmcast/sim/csma.cpp" "src/CMakeFiles/wmcast.dir/wmcast/sim/csma.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/sim/csma.cpp.o.d"
  "/root/repo/src/wmcast/sim/event_queue.cpp" "src/CMakeFiles/wmcast.dir/wmcast/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/sim/event_queue.cpp.o.d"
  "/root/repo/src/wmcast/sim/handoff.cpp" "src/CMakeFiles/wmcast.dir/wmcast/sim/handoff.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/sim/handoff.cpp.o.d"
  "/root/repo/src/wmcast/sim/network.cpp" "src/CMakeFiles/wmcast.dir/wmcast/sim/network.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/sim/network.cpp.o.d"
  "/root/repo/src/wmcast/sim/unicast_impact.cpp" "src/CMakeFiles/wmcast.dir/wmcast/sim/unicast_impact.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/sim/unicast_impact.cpp.o.d"
  "/root/repo/src/wmcast/util/bitset.cpp" "src/CMakeFiles/wmcast.dir/wmcast/util/bitset.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/util/bitset.cpp.o.d"
  "/root/repo/src/wmcast/util/cli.cpp" "src/CMakeFiles/wmcast.dir/wmcast/util/cli.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/util/cli.cpp.o.d"
  "/root/repo/src/wmcast/util/histogram.cpp" "src/CMakeFiles/wmcast.dir/wmcast/util/histogram.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/util/histogram.cpp.o.d"
  "/root/repo/src/wmcast/util/rng.cpp" "src/CMakeFiles/wmcast.dir/wmcast/util/rng.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/util/rng.cpp.o.d"
  "/root/repo/src/wmcast/util/stats.cpp" "src/CMakeFiles/wmcast.dir/wmcast/util/stats.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/util/stats.cpp.o.d"
  "/root/repo/src/wmcast/util/table.cpp" "src/CMakeFiles/wmcast.dir/wmcast/util/table.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/util/table.cpp.o.d"
  "/root/repo/src/wmcast/wlan/association.cpp" "src/CMakeFiles/wmcast.dir/wmcast/wlan/association.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/wlan/association.cpp.o.d"
  "/root/repo/src/wmcast/wlan/coverage.cpp" "src/CMakeFiles/wmcast.dir/wmcast/wlan/coverage.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/wlan/coverage.cpp.o.d"
  "/root/repo/src/wmcast/wlan/mobility.cpp" "src/CMakeFiles/wmcast.dir/wmcast/wlan/mobility.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/wlan/mobility.cpp.o.d"
  "/root/repo/src/wmcast/wlan/rate_table.cpp" "src/CMakeFiles/wmcast.dir/wmcast/wlan/rate_table.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/wlan/rate_table.cpp.o.d"
  "/root/repo/src/wmcast/wlan/scenario.cpp" "src/CMakeFiles/wmcast.dir/wmcast/wlan/scenario.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/wlan/scenario.cpp.o.d"
  "/root/repo/src/wmcast/wlan/scenario_generator.cpp" "src/CMakeFiles/wmcast.dir/wmcast/wlan/scenario_generator.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/wlan/scenario_generator.cpp.o.d"
  "/root/repo/src/wmcast/wlan/serialization.cpp" "src/CMakeFiles/wmcast.dir/wmcast/wlan/serialization.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/wlan/serialization.cpp.o.d"
  "/root/repo/src/wmcast/wlan/svg_map.cpp" "src/CMakeFiles/wmcast.dir/wmcast/wlan/svg_map.cpp.o" "gcc" "src/CMakeFiles/wmcast.dir/wmcast/wlan/svg_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
