# Empty dependencies file for wmcast.
# This may be replaced when dependencies are built.
