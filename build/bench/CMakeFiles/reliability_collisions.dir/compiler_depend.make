# Empty compiler generated dependencies file for reliability_collisions.
# This may be replaced when dependencies are built.
