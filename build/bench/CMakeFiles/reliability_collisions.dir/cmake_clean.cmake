file(REMOVE_RECURSE
  "CMakeFiles/reliability_collisions.dir/reliability_collisions.cpp.o"
  "CMakeFiles/reliability_collisions.dir/reliability_collisions.cpp.o.d"
  "reliability_collisions"
  "reliability_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
