file(REMOVE_RECURSE
  "CMakeFiles/fig9_total_load.dir/fig9_total_load.cpp.o"
  "CMakeFiles/fig9_total_load.dir/fig9_total_load.cpp.o.d"
  "fig9_total_load"
  "fig9_total_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_total_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
