# Empty compiler generated dependencies file for fig9_total_load.
# This may be replaced when dependencies are built.
