file(REMOVE_RECURSE
  "CMakeFiles/motivation_unicast_impact.dir/motivation_unicast_impact.cpp.o"
  "CMakeFiles/motivation_unicast_impact.dir/motivation_unicast_impact.cpp.o.d"
  "motivation_unicast_impact"
  "motivation_unicast_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_unicast_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
