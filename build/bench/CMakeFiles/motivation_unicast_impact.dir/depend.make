# Empty dependencies file for motivation_unicast_impact.
# This may be replaced when dependencies are built.
