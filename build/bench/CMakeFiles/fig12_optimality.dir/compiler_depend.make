# Empty compiler generated dependencies file for fig12_optimality.
# This may be replaced when dependencies are built.
