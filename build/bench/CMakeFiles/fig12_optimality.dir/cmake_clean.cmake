file(REMOVE_RECURSE
  "CMakeFiles/fig12_optimality.dir/fig12_optimality.cpp.o"
  "CMakeFiles/fig12_optimality.dir/fig12_optimality.cpp.o.d"
  "fig12_optimality"
  "fig12_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
