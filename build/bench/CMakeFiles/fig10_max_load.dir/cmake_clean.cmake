file(REMOVE_RECURSE
  "CMakeFiles/fig10_max_load.dir/fig10_max_load.cpp.o"
  "CMakeFiles/fig10_max_load.dir/fig10_max_load.cpp.o.d"
  "fig10_max_load"
  "fig10_max_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_max_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
