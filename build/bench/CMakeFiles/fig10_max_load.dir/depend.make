# Empty dependencies file for fig10_max_load.
# This may be replaced when dependencies are built.
