file(REMOVE_RECURSE
  "CMakeFiles/dynamics_churn.dir/dynamics_churn.cpp.o"
  "CMakeFiles/dynamics_churn.dir/dynamics_churn.cpp.o.d"
  "dynamics_churn"
  "dynamics_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamics_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
