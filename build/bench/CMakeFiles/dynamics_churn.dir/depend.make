# Empty dependencies file for dynamics_churn.
# This may be replaced when dependencies are built.
