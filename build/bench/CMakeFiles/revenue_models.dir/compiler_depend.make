# Empty compiler generated dependencies file for revenue_models.
# This may be replaced when dependencies are built.
