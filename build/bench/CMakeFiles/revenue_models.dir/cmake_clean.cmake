file(REMOVE_RECURSE
  "CMakeFiles/revenue_models.dir/revenue_models.cpp.o"
  "CMakeFiles/revenue_models.dir/revenue_models.cpp.o.d"
  "revenue_models"
  "revenue_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revenue_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
