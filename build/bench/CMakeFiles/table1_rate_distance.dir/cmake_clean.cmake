file(REMOVE_RECURSE
  "CMakeFiles/table1_rate_distance.dir/table1_rate_distance.cpp.o"
  "CMakeFiles/table1_rate_distance.dir/table1_rate_distance.cpp.o.d"
  "table1_rate_distance"
  "table1_rate_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rate_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
