# Empty compiler generated dependencies file for table1_rate_distance.
# This may be replaced when dependencies are built.
