# Empty compiler generated dependencies file for fig11_satisfied_users.
# This may be replaced when dependencies are built.
