file(REMOVE_RECURSE
  "CMakeFiles/fig11_satisfied_users.dir/fig11_satisfied_users.cpp.o"
  "CMakeFiles/fig11_satisfied_users.dir/fig11_satisfied_users.cpp.o.d"
  "fig11_satisfied_users"
  "fig11_satisfied_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_satisfied_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
