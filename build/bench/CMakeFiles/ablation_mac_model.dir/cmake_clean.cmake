file(REMOVE_RECURSE
  "CMakeFiles/ablation_mac_model.dir/ablation_mac_model.cpp.o"
  "CMakeFiles/ablation_mac_model.dir/ablation_mac_model.cpp.o.d"
  "ablation_mac_model"
  "ablation_mac_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mac_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
