# Empty compiler generated dependencies file for ablation_mac_model.
# This may be replaced when dependencies are built.
