file(REMOVE_RECURSE
  "CMakeFiles/wmcast_cli.dir/wmcast_cli.cpp.o"
  "CMakeFiles/wmcast_cli.dir/wmcast_cli.cpp.o.d"
  "wmcast_cli"
  "wmcast_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmcast_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
