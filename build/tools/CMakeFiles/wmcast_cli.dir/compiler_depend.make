# Empty compiler generated dependencies file for wmcast_cli.
# This may be replaced when dependencies are built.
