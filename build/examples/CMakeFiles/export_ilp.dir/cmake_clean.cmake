file(REMOVE_RECURSE
  "CMakeFiles/export_ilp.dir/export_ilp.cpp.o"
  "CMakeFiles/export_ilp.dir/export_ilp.cpp.o.d"
  "export_ilp"
  "export_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
