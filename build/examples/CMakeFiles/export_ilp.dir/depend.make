# Empty dependencies file for export_ilp.
# This may be replaced when dependencies are built.
