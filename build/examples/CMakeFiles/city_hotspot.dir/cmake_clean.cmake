file(REMOVE_RECURSE
  "CMakeFiles/city_hotspot.dir/city_hotspot.cpp.o"
  "CMakeFiles/city_hotspot.dir/city_hotspot.cpp.o.d"
  "city_hotspot"
  "city_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
