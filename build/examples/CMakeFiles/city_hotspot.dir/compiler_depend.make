# Empty compiler generated dependencies file for city_hotspot.
# This may be replaced when dependencies are built.
