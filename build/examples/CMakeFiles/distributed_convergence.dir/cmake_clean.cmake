file(REMOVE_RECURSE
  "CMakeFiles/distributed_convergence.dir/distributed_convergence.cpp.o"
  "CMakeFiles/distributed_convergence.dir/distributed_convergence.cpp.o.d"
  "distributed_convergence"
  "distributed_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
