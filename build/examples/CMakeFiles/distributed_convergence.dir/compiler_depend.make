# Empty compiler generated dependencies file for distributed_convergence.
# This may be replaced when dependencies are built.
