# Empty compiler generated dependencies file for campus_tv.
# This may be replaced when dependencies are built.
