file(REMOVE_RECURSE
  "CMakeFiles/campus_tv.dir/campus_tv.cpp.o"
  "CMakeFiles/campus_tv.dir/campus_tv.cpp.o.d"
  "campus_tv"
  "campus_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
