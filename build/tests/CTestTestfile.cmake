# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/wmcast_unit_tests[1]_include.cmake")
include("/root/repo/build/tests/wmcast_algo_tests[1]_include.cmake")
include("/root/repo/build/tests/wmcast_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/wmcast_dynamics_tests[1]_include.cmake")
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;69;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example.campus_tv "/root/repo/build/examples/campus_tv")
set_tests_properties(example.campus_tv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;70;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example.distributed_convergence "/root/repo/build/examples/distributed_convergence")
set_tests_properties(example.distributed_convergence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;71;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example.city_hotspot_small "/root/repo/build/examples/city_hotspot" "--aps=200" "--users=400")
set_tests_properties(example.city_hotspot_small PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;72;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example.export_ilp "/root/repo/build/examples/export_ilp" "--out=/root/repo/build/tests/ilp_test" "--users=12")
set_tests_properties(example.export_ilp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli.pipeline "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/wmcast_cli" "-DWORK=/root/repo/build/tests/cli_work" "-P" "/root/repo/tests/cli_pipeline_test.cmake")
set_tests_properties(cli.pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;76;add_test;/root/repo/tests/CMakeLists.txt;0;")
