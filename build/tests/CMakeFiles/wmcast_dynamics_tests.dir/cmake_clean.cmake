file(REMOVE_RECURSE
  "CMakeFiles/wmcast_dynamics_tests.dir/assoc_dual_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/assoc_dual_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/assoc_local_search_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/assoc_local_search_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/assoc_revenue_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/assoc_revenue_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/assoc_single_session_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/assoc_single_session_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/fuzz_invariants_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/fuzz_invariants_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/mac_reliable_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/mac_reliable_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/setcover_layering_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/setcover_layering_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/sim_csma_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/sim_csma_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/sim_message_loss_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/sim_message_loss_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/wlan_generator_ext_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/wlan_generator_ext_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/wlan_mobility_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/wlan_mobility_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/wlan_serialization_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/wlan_serialization_test.cpp.o.d"
  "CMakeFiles/wmcast_dynamics_tests.dir/wlan_svg_map_test.cpp.o"
  "CMakeFiles/wmcast_dynamics_tests.dir/wlan_svg_map_test.cpp.o.d"
  "wmcast_dynamics_tests"
  "wmcast_dynamics_tests.pdb"
  "wmcast_dynamics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmcast_dynamics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
