
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assoc_dual_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/assoc_dual_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/assoc_dual_test.cpp.o.d"
  "/root/repo/tests/assoc_local_search_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/assoc_local_search_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/assoc_local_search_test.cpp.o.d"
  "/root/repo/tests/assoc_revenue_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/assoc_revenue_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/assoc_revenue_test.cpp.o.d"
  "/root/repo/tests/assoc_single_session_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/assoc_single_session_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/assoc_single_session_test.cpp.o.d"
  "/root/repo/tests/fuzz_invariants_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/fuzz_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/fuzz_invariants_test.cpp.o.d"
  "/root/repo/tests/mac_reliable_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/mac_reliable_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/mac_reliable_test.cpp.o.d"
  "/root/repo/tests/setcover_layering_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/setcover_layering_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/setcover_layering_test.cpp.o.d"
  "/root/repo/tests/sim_csma_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/sim_csma_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/sim_csma_test.cpp.o.d"
  "/root/repo/tests/sim_message_loss_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/sim_message_loss_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/sim_message_loss_test.cpp.o.d"
  "/root/repo/tests/wlan_generator_ext_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/wlan_generator_ext_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/wlan_generator_ext_test.cpp.o.d"
  "/root/repo/tests/wlan_mobility_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/wlan_mobility_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/wlan_mobility_test.cpp.o.d"
  "/root/repo/tests/wlan_serialization_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/wlan_serialization_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/wlan_serialization_test.cpp.o.d"
  "/root/repo/tests/wlan_svg_map_test.cpp" "tests/CMakeFiles/wmcast_dynamics_tests.dir/wlan_svg_map_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_dynamics_tests.dir/wlan_svg_map_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wmcast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
