# Empty compiler generated dependencies file for wmcast_dynamics_tests.
# This may be replaced when dependencies are built.
