
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ext_interference_aware_test.cpp" "tests/CMakeFiles/wmcast_sim_tests.dir/ext_interference_aware_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_sim_tests.dir/ext_interference_aware_test.cpp.o.d"
  "/root/repo/tests/ext_interference_test.cpp" "tests/CMakeFiles/wmcast_sim_tests.dir/ext_interference_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_sim_tests.dir/ext_interference_test.cpp.o.d"
  "/root/repo/tests/ext_locks_test.cpp" "tests/CMakeFiles/wmcast_sim_tests.dir/ext_locks_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_sim_tests.dir/ext_locks_test.cpp.o.d"
  "/root/repo/tests/ext_period_schedule_test.cpp" "tests/CMakeFiles/wmcast_sim_tests.dir/ext_period_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_sim_tests.dir/ext_period_schedule_test.cpp.o.d"
  "/root/repo/tests/ext_power_control_test.cpp" "tests/CMakeFiles/wmcast_sim_tests.dir/ext_power_control_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_sim_tests.dir/ext_power_control_test.cpp.o.d"
  "/root/repo/tests/sim_ap_channel_test.cpp" "tests/CMakeFiles/wmcast_sim_tests.dir/sim_ap_channel_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_sim_tests.dir/sim_ap_channel_test.cpp.o.d"
  "/root/repo/tests/sim_event_queue_test.cpp" "tests/CMakeFiles/wmcast_sim_tests.dir/sim_event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_sim_tests.dir/sim_event_queue_test.cpp.o.d"
  "/root/repo/tests/sim_protocol_test.cpp" "tests/CMakeFiles/wmcast_sim_tests.dir/sim_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_sim_tests.dir/sim_protocol_test.cpp.o.d"
  "/root/repo/tests/sim_unicast_impact_test.cpp" "tests/CMakeFiles/wmcast_sim_tests.dir/sim_unicast_impact_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_sim_tests.dir/sim_unicast_impact_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wmcast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
