# Empty compiler generated dependencies file for wmcast_sim_tests.
# This may be replaced when dependencies are built.
