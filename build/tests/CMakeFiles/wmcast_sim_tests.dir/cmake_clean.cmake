file(REMOVE_RECURSE
  "CMakeFiles/wmcast_sim_tests.dir/ext_interference_aware_test.cpp.o"
  "CMakeFiles/wmcast_sim_tests.dir/ext_interference_aware_test.cpp.o.d"
  "CMakeFiles/wmcast_sim_tests.dir/ext_interference_test.cpp.o"
  "CMakeFiles/wmcast_sim_tests.dir/ext_interference_test.cpp.o.d"
  "CMakeFiles/wmcast_sim_tests.dir/ext_locks_test.cpp.o"
  "CMakeFiles/wmcast_sim_tests.dir/ext_locks_test.cpp.o.d"
  "CMakeFiles/wmcast_sim_tests.dir/ext_period_schedule_test.cpp.o"
  "CMakeFiles/wmcast_sim_tests.dir/ext_period_schedule_test.cpp.o.d"
  "CMakeFiles/wmcast_sim_tests.dir/ext_power_control_test.cpp.o"
  "CMakeFiles/wmcast_sim_tests.dir/ext_power_control_test.cpp.o.d"
  "CMakeFiles/wmcast_sim_tests.dir/sim_ap_channel_test.cpp.o"
  "CMakeFiles/wmcast_sim_tests.dir/sim_ap_channel_test.cpp.o.d"
  "CMakeFiles/wmcast_sim_tests.dir/sim_event_queue_test.cpp.o"
  "CMakeFiles/wmcast_sim_tests.dir/sim_event_queue_test.cpp.o.d"
  "CMakeFiles/wmcast_sim_tests.dir/sim_protocol_test.cpp.o"
  "CMakeFiles/wmcast_sim_tests.dir/sim_protocol_test.cpp.o.d"
  "CMakeFiles/wmcast_sim_tests.dir/sim_unicast_impact_test.cpp.o"
  "CMakeFiles/wmcast_sim_tests.dir/sim_unicast_impact_test.cpp.o.d"
  "wmcast_sim_tests"
  "wmcast_sim_tests.pdb"
  "wmcast_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmcast_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
