file(REMOVE_RECURSE
  "CMakeFiles/wmcast_unit_tests.dir/mac_airtime_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/mac_airtime_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/setcover_greedy_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/setcover_greedy_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/setcover_materialize_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/setcover_materialize_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/setcover_mcg_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/setcover_mcg_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/setcover_reduction_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/setcover_reduction_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/setcover_scg_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/setcover_scg_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/util_bitset_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/util_bitset_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/util_cli_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/util_cli_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/util_rng_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/util_rng_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/util_stats_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/util_stats_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/util_table_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/util_table_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/wlan_association_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/wlan_association_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/wlan_rate_table_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/wlan_rate_table_test.cpp.o.d"
  "CMakeFiles/wmcast_unit_tests.dir/wlan_scenario_test.cpp.o"
  "CMakeFiles/wmcast_unit_tests.dir/wlan_scenario_test.cpp.o.d"
  "wmcast_unit_tests"
  "wmcast_unit_tests.pdb"
  "wmcast_unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmcast_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
