# Empty dependencies file for wmcast_unit_tests.
# This may be replaced when dependencies are built.
