
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mac_airtime_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/mac_airtime_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/mac_airtime_test.cpp.o.d"
  "/root/repo/tests/setcover_greedy_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/setcover_greedy_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/setcover_greedy_test.cpp.o.d"
  "/root/repo/tests/setcover_materialize_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/setcover_materialize_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/setcover_materialize_test.cpp.o.d"
  "/root/repo/tests/setcover_mcg_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/setcover_mcg_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/setcover_mcg_test.cpp.o.d"
  "/root/repo/tests/setcover_reduction_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/setcover_reduction_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/setcover_reduction_test.cpp.o.d"
  "/root/repo/tests/setcover_scg_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/setcover_scg_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/setcover_scg_test.cpp.o.d"
  "/root/repo/tests/util_bitset_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/util_bitset_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/util_bitset_test.cpp.o.d"
  "/root/repo/tests/util_cli_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/util_cli_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/util_cli_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_table_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/util_table_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/util_table_test.cpp.o.d"
  "/root/repo/tests/wlan_association_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/wlan_association_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/wlan_association_test.cpp.o.d"
  "/root/repo/tests/wlan_rate_table_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/wlan_rate_table_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/wlan_rate_table_test.cpp.o.d"
  "/root/repo/tests/wlan_scenario_test.cpp" "tests/CMakeFiles/wmcast_unit_tests.dir/wlan_scenario_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_unit_tests.dir/wlan_scenario_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wmcast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
