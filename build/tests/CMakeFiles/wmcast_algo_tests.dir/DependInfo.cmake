
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assoc_centralized_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_centralized_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_centralized_test.cpp.o.d"
  "/root/repo/tests/assoc_distributed_edge_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_distributed_edge_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_distributed_edge_test.cpp.o.d"
  "/root/repo/tests/assoc_distributed_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_distributed_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_distributed_test.cpp.o.d"
  "/root/repo/tests/assoc_policy_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_policy_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_policy_test.cpp.o.d"
  "/root/repo/tests/assoc_registry_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_registry_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_registry_test.cpp.o.d"
  "/root/repo/tests/assoc_ssa_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_ssa_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/assoc_ssa_test.cpp.o.d"
  "/root/repo/tests/exact_dual_bound_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/exact_dual_bound_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/exact_dual_bound_test.cpp.o.d"
  "/root/repo/tests/exact_lp_writer_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/exact_lp_writer_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/exact_lp_writer_test.cpp.o.d"
  "/root/repo/tests/exact_mnu_paths_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/exact_mnu_paths_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/exact_mnu_paths_test.cpp.o.d"
  "/root/repo/tests/exact_solvers_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/exact_solvers_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/exact_solvers_test.cpp.o.d"
  "/root/repo/tests/hardness_reductions_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/hardness_reductions_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/hardness_reductions_test.cpp.o.d"
  "/root/repo/tests/integration_optimum_equivalence_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/integration_optimum_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/integration_optimum_equivalence_test.cpp.o.d"
  "/root/repo/tests/mac_queueing_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/mac_queueing_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/mac_queueing_test.cpp.o.d"
  "/root/repo/tests/paper_examples_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/paper_examples_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/paper_examples_test.cpp.o.d"
  "/root/repo/tests/property_approx_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/property_approx_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/property_approx_test.cpp.o.d"
  "/root/repo/tests/property_distributed_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/property_distributed_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/property_distributed_test.cpp.o.d"
  "/root/repo/tests/setcover_augment_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/setcover_augment_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/setcover_augment_test.cpp.o.d"
  "/root/repo/tests/sim_counters_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/sim_counters_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/sim_counters_test.cpp.o.d"
  "/root/repo/tests/sim_departure_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/sim_departure_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/sim_departure_test.cpp.o.d"
  "/root/repo/tests/sim_handoff_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/sim_handoff_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/sim_handoff_test.cpp.o.d"
  "/root/repo/tests/util_assert_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/util_assert_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/util_assert_test.cpp.o.d"
  "/root/repo/tests/util_histogram_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/util_histogram_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/util_histogram_test.cpp.o.d"
  "/root/repo/tests/wlan_coverage_test.cpp" "tests/CMakeFiles/wmcast_algo_tests.dir/wlan_coverage_test.cpp.o" "gcc" "tests/CMakeFiles/wmcast_algo_tests.dir/wlan_coverage_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wmcast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
