# Empty compiler generated dependencies file for wmcast_algo_tests.
# This may be replaced when dependencies are built.
