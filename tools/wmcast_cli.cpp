// wmcast_cli — command-line driver for the library's full pipeline:
//
//   wmcast_cli generate  --out=sc.txt [--aps=200 --users=400 --sessions=5
//                        --rate=1.0 --budget=0.9 --area=1095.445 --seed=1
//                        --zipf=0 --hotspot=0]
//   wmcast_cli info      --scenario=sc.txt
//   wmcast_cli solve     --scenario=sc.txt --algorithm=mla-c
//                        [--seed=1 --assoc-out=a.txt --basic-rate --k=1]
//   wmcast_cli eval      --scenario=sc.txt --assoc=a.txt
//   wmcast_cli exact     --scenario=sc.txt --problem=mla [--budget=0.9
//                        --time-limit=10]
//   wmcast_cli export-lp --scenario=sc.txt --problem=mnu --out=m.lp
//                        [--budget=0.9]
//   wmcast_cli render    --scenario=sc.txt [--assoc=a.txt] --out=map.svg
//                        [--ranges]
//   wmcast_cli replay    [--scenario=sc.txt | --aps=100 --users=300
//                        --scenario-seed=1] [--trace=t.txt | --epochs=20
//                        --move=0.1 --walk=40 --zap=0.05 --leave=0.02
//                        --join=0.02 --rate-prob=0 --trace-seed=7]
//                        [--solver=mla-c --threshold=0.1 --refresh=10
//                        --max-reassoc=-1 --no-admission --seed=1 --threads=N
//                        --k=1 --telemetry=tele.json --trace-out=t.txt --quiet]
//   wmcast_cli serve     [--scenario=sc.txt | --aps=100 --users=300
//                        --area=1095.445 --scenario-seed=1]
//                        [--profile=mixed --duration=10
//                        --rate=1000 --workload-seed=1 | trace on stdin,
//                        streamed incrementally and paced at --rate]
//                        [--batch-max=256 --staleness-ms=50 --queue-cap=8192
//                        --policy=reject|shed --no-coalesce --modeled
//                        --pipeline --solver=mla-c --seed=1 --threads=N
//                        --k=1 --telemetry=tele.json --trace-out=t.txt --json
//                        --quiet]
//   wmcast_cli chaos     [--seed=1 --scenarios=20 --profile=mixed --threads=4
//                        --solver=mla-c --aps=16 --users=60 --sessions=4
//                        --area=400 --epochs=10 --out-dir=repros --no-shrink
//                        --json --quiet] | --repro=f.repro
//
// `chaos` runs the deterministic fault-injection campaign (chaos/campaign.hpp):
// same --seed and --profile always inject the same faults and report the same
// findings; failures are shrunk to standalone .repro files. `chaos
// --repro=f.repro` re-runs one repro through the differential oracles, and
// `replay --repro=f.repro` steps through its embedded scenario + trace with
// the normal per-epoch output. Profiles: none, light, heavy, reorder,
// malformed, mixed, or `all` to cycle.
//
// Algorithms: ssa, mla-c, bla-c, mnu-c, mla-d, bla-d, mnu-d, lock-d,
// local-search, mnu-1session, bla-1session.
//
// Every subcommand also accepts --simd=auto|scalar|avx2 (default auto) to
// pin the bitset/popcount kernel dispatch; scalar and avx2 outputs are
// bit-identical (docs/cli.md).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/chaos/campaign.hpp"
#include "wmcast/chaos/oracles.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/assoc/registry.hpp"
#include "wmcast/assoc/revenue.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/serve/loop.hpp"
#include "wmcast/serve/workload.hpp"
#include "wmcast/exact/exact_bla.hpp"
#include "wmcast/exact/exact_mla.hpp"
#include "wmcast/exact/exact_mnu.hpp"
#include "wmcast/exact/lp_writer.hpp"
#include "wmcast/setcover/materialize.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/util/cli.hpp"
#include "wmcast/util/stats.hpp"
#include "wmcast/util/table.hpp"
#include "wmcast/wlan/coverage.hpp"
#include "wmcast/wlan/scenario_generator.hpp"
#include "wmcast/wlan/serialization.hpp"
#include "wmcast/wlan/svg_map.hpp"

using namespace wmcast;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: wmcast_cli <generate|info|solve|eval|exact|export-lp|render|"
               "replay|serve|chaos> "
               "--key=value ...\n(see the header of tools/wmcast_cli.cpp for details)\n");
  return 2;
}

void print_solution(const wlan::Scenario& sc, const assoc::Solution& sol) {
  util::Table t({"metric", "value"});
  t.add_row({"algorithm", sol.algorithm});
  t.add_row({"served users", std::to_string(sol.loads.satisfied_users) + " / " +
                                 std::to_string(sc.n_users())});
  t.add_row({"total multicast load", util::fmt(sol.loads.total_load, 4)});
  t.add_row({"max AP load", util::fmt(sol.loads.max_load, 4)});
  t.add_row({"within budget", sol.loads.within_budget() ? "yes" : "NO"});
  t.add_row({"solve time (s)", util::fmt(sol.solve_seconds, 4)});
  if (sol.rounds > 0) {
    t.add_row({"rounds", std::to_string(sol.rounds)});
    t.add_row({"converged", sol.converged ? "yes" : "NO"});
  }
  const auto rev = assoc::compute_revenue(sc, sol.loads);
  t.add_row({"revenue: pay-per-view", util::fmt(rev.pay_per_view, 2)});
  t.add_row({"revenue: convex unicast", util::fmt(rev.convex_unicast, 3)});
  t.add_row({"revenue: per-byte", util::fmt(rev.per_byte, 3)});
  if (sol.k >= 2) {
    t.add_row({"k (max serving APs/user)", std::to_string(sol.k)});
    t.add_row({"multi-served users", std::to_string(sol.multi_loads.multi_served_users)});
    t.add_row({"mean effective rate (Mbps)",
               util::fmt(sol.multi_loads.mean_effective_rate, 2)});
    t.add_row({"total load (all streams)", util::fmt(sol.multi_loads.total_load, 4)});
  }
  t.print();
}

int cmd_generate(const util::Args& args) {
  wlan::GeneratorParams p;
  p.n_aps = args.get_int("aps", p.n_aps);
  p.n_users = args.get_int("users", p.n_users);
  p.n_sessions = args.get_int("sessions", p.n_sessions);
  p.session_rate_mbps = args.get_double("rate", p.session_rate_mbps);
  p.load_budget = args.get_double("budget", p.load_budget);
  p.area_side_m = args.get_double("area", p.area_side_m);
  p.zipf_exponent = args.get_double("zipf", 0.0);
  p.hotspot_fraction = args.get_double("hotspot", 0.0);
  util::Rng rng(args.get_u64("seed", 1));
  const auto sc = wlan::generate_scenario(p, rng);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out=path required\n");
    return 2;
  }
  if (!wlan::save_scenario(sc, out)) return 1;
  std::printf("wrote %s: %d APs, %d users (%d coverable), %d sessions\n", out.c_str(),
              sc.n_aps(), sc.n_users(), sc.n_coverable_users(), sc.n_sessions());
  return 0;
}

int cmd_info(const util::Args& args) {
  const auto sc = wlan::load_scenario(args.get("scenario", ""));
  util::Table t({"property", "value"});
  t.add_row({"APs", std::to_string(sc.n_aps())});
  t.add_row({"users", std::to_string(sc.n_users())});
  t.add_row({"coverable users", std::to_string(sc.n_coverable_users())});
  t.add_row({"sessions", std::to_string(sc.n_sessions())});
  t.add_row({"load budget", util::fmt(sc.load_budget(), 3)});
  t.add_row({"geometric", sc.has_geometry() ? "yes" : "no"});
  t.add_row({"basic rate (Mbps)", util::fmt(sc.basic_rate(), 1)});
  double demand = 0.0;
  for (int s = 0; s < sc.n_sessions(); ++s) demand += sc.session_rate(s);
  t.add_row({"total stream demand (Mbps)", util::fmt(demand, 2)});
  const auto sys = setcover::build_set_system(sc);
  t.add_row({"candidate sets", std::to_string(sys.n_sets())});
  const auto cov = wlan::analyze_coverage(sc);
  t.add_row({"mean APs per user", util::fmt(cov.mean_aps_per_user, 2)});
  t.add_row({"max APs per user (layering f)", std::to_string(cov.max_aps_per_user)});
  t.add_row({"mean users per AP", util::fmt(cov.mean_users_per_ap, 2)});
  t.add_row({"idle APs", std::to_string(cov.idle_aps)});
  t.print();
  return 0;
}

int cmd_solve(const util::Args& args) {
  auto sc = wlan::load_scenario(args.get("scenario", ""));
  if (args.has("budget")) sc = sc.with_budget(args.get_double("budget", 0.9));
  const std::string algorithm = args.get("algorithm", "mla-c");
  util::Rng rng(args.get_u64("seed", 1));

  if (!assoc::is_algorithm(algorithm)) {
    std::fprintf(stderr, "solve: unknown --algorithm=%s (known:", algorithm.c_str());
    for (const auto& n : assoc::algorithm_names()) std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, ")\n");
    return 2;
  }
  assoc::SolveOptions options;
  options.multi_rate = !args.get_bool("basic-rate", false);
  options.k = args.get_int("k", 1);
  const assoc::Solution sol = assoc::solve_by_name(algorithm, sc, rng, options);

  print_solution(sc, sol);
  const std::string out = args.get("assoc-out", "");
  if (!out.empty()) {
    if (!wlan::save_association(sol.assoc, out)) return 1;
    std::printf("association written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_eval(const util::Args& args) {
  const auto sc = wlan::load_scenario(args.get("scenario", ""));
  const auto assoc = wlan::load_association(args.get("assoc", ""));
  auto sol = assoc::make_solution("eval", sc, assoc,
                                  !args.get_bool("basic-rate", false));
  print_solution(sc, sol);
  return 0;
}

int cmd_exact(const util::Args& args) {
  auto sc = wlan::load_scenario(args.get("scenario", ""));
  if (args.has("budget")) sc = sc.with_budget(args.get_double("budget", 0.9));
  const std::string problem = args.get("problem", "mla");
  exact::BbLimits limits;
  limits.time_limit_s = args.get_double("time-limit", 10.0);
  const auto sys = setcover::build_set_system(sc);

  if (problem == "mla") {
    const auto res = exact::exact_min_cost_cover(sys, limits);
    std::printf("MLA optimum: total load %.6f (%s, %lld nodes)\n", res.cost,
                res.status == exact::BbStatus::kOptimal ? "proved" : "time-limited",
                static_cast<long long>(res.nodes));
  } else if (problem == "bla") {
    const auto res = exact::exact_min_max_cover(sys, limits);
    std::printf("BLA optimum: max AP load %.6f (%s, %lld nodes)\n", res.max_group_cost,
                res.status == exact::BbStatus::kOptimal ? "proved" : "time-limited",
                static_cast<long long>(res.nodes));
  } else if (problem == "mnu") {
    const auto res = exact::exact_max_coverage_uniform(sys, sc.load_budget(), limits);
    std::printf("MNU optimum: %d of %d users (%s, %lld nodes)\n", res.covered,
                sc.n_coverable_users(),
                res.status == exact::BbStatus::kOptimal ? "proved" : "time-limited",
                static_cast<long long>(res.nodes));
  } else {
    std::fprintf(stderr, "exact: unknown --problem=%s\n", problem.c_str());
    return 2;
  }
  return 0;
}

int cmd_export_lp(const util::Args& args) {
  auto sc = wlan::load_scenario(args.get("scenario", ""));
  if (args.has("budget")) sc = sc.with_budget(args.get_double("budget", 0.9));
  const std::string problem = args.get("problem", "mla");
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "export-lp: --out=path required\n");
    return 2;
  }
  const auto sys = setcover::build_set_system(sc);
  std::string lp;
  if (problem == "mla") {
    lp = exact::write_mla_lp(sys);
  } else if (problem == "bla") {
    lp = exact::write_bla_lp(sys);
  } else if (problem == "mnu") {
    const std::vector<double> budgets(static_cast<size_t>(sys.n_groups()),
                                      sc.load_budget());
    lp = exact::write_mnu_lp(sys, budgets);
  } else {
    std::fprintf(stderr, "export-lp: unknown --problem=%s\n", problem.c_str());
    return 2;
  }
  std::ofstream f(out);
  if (!f || !(f << lp)) return 1;
  std::printf("wrote %s (%zu bytes)\n", out.c_str(), lp.size());
  return 0;
}

int cmd_render(const util::Args& args) {
  const auto sc = wlan::load_scenario(args.get("scenario", ""));
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "render: --out=path required\n");
    return 2;
  }
  wlan::SvgOptions opt;
  opt.draw_ranges = args.get_bool("ranges", false);
  if (args.has("assoc")) {
    const auto assoc = wlan::load_association(args.get("assoc", ""));
    if (!wlan::save_svg(sc, &assoc, out, opt)) return 1;
  } else {
    if (!wlan::save_svg(sc, nullptr, out, opt)) return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

// `replay`: runs the online controller epoch by epoch over a trace (from
// file, a repro, or generated) and prints per-epoch rows plus a summary.
int cmd_replay(const util::Args& args) {
  // A chaos repro file embeds its own scenario + trace (+ solver + seed);
  // explicit flags still override the embedded defaults.
  std::optional<chaos::Repro> repro;
  if (args.has("repro")) repro = chaos::load_repro(args.get("repro", ""));

  // Without --scenario, generate one (same flags as `generate`) so
  // `wmcast_cli replay` works out of the box.
  wlan::Scenario sc = [&] {
    if (repro) return repro->scenario;
    if (args.has("scenario")) return wlan::load_scenario(args.get("scenario", ""));
    wlan::GeneratorParams p;
    p.n_aps = args.get_int("aps", 100);
    p.n_users = args.get_int("users", 300);
    p.n_sessions = args.get_int("sessions", p.n_sessions);
    p.session_rate_mbps = args.get_double("rate", p.session_rate_mbps);
    p.load_budget = args.get_double("budget", p.load_budget);
    util::Rng rng(args.get_u64("scenario-seed", 1));
    return wlan::generate_scenario(p, rng);
  }();
  if (!sc.has_geometry()) {
    std::fprintf(stderr, "replay: scenario must be geometric\n");
    return 2;
  }

  ctrl::ControllerConfig cfg;
  if (repro) {
    cfg.full_solver = repro->solver;
    cfg.seed = repro->seed;
  }
  cfg.full_solver = args.get("solver", cfg.full_solver);
  cfg.multi_rate = !args.get_bool("basic-rate", false);
  cfg.degradation_threshold = args.get_double("threshold", cfg.degradation_threshold);
  cfg.full_refresh_epochs = args.get_int("refresh", cfg.full_refresh_epochs);
  cfg.max_reassoc_per_epoch = args.get_int("max-reassoc", cfg.max_reassoc_per_epoch);
  cfg.polish_min_gain = args.get_double("min-gain", cfg.polish_min_gain);
  cfg.admission_control = !args.get_bool("no-admission", false);
  cfg.seed = args.get_u64("seed", cfg.seed);
  cfg.threads = util::resolve_threads(args);
  cfg.k = args.get_int("k", cfg.k);
  if (!assoc::is_algorithm(cfg.full_solver)) {
    std::fprintf(stderr, "replay: unknown --solver=%s\n", cfg.full_solver.c_str());
    return 2;
  }

  ctrl::AssociationController controller(sc, cfg);

  ctrl::EventTrace trace;
  if (repro) {
    trace = repro->trace;
  } else if (args.has("trace")) {
    trace = ctrl::load_trace(args.get("trace", ""));
  } else {
    ctrl::TraceParams tp;
    tp.epochs = args.get_int("epochs", tp.epochs);
    tp.move_fraction = args.get_double("move", tp.move_fraction);
    tp.walk_sigma_m = args.get_double("walk", tp.walk_sigma_m);
    tp.zap_fraction = args.get_double("zap", tp.zap_fraction);
    tp.leave_fraction = args.get_double("leave", tp.leave_fraction);
    tp.join_fraction = args.get_double("join", tp.join_fraction);
    tp.rate_change_prob = args.get_double("rate-prob", tp.rate_change_prob);
    util::Rng trng(args.get_u64("trace-seed", 7));
    trace = ctrl::generate_churn_trace(controller.state(), tp, trng);
  }
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty() && !ctrl::save_trace(trace, trace_out)) return 1;

  const bool quiet = args.get_bool("quiet", false);
  util::Table t({"epoch", "events", "dirty", "reassoc", "forced", "full", "load",
                 "vs base", "served"});
  long long reassoc = 0;
  long long forced = 0;
  int full_solves = 0;
  int rollbacks = 0;
  for (int e = 0; e < trace.n_epochs(); ++e) {
    controller.submit(trace.epochs[static_cast<size_t>(e)]);
    const auto rep = controller.drain();
    reassoc += rep.reassociations;
    forced += rep.forced_reassociations;
    full_solves += rep.used_full_solve ? 1 : 0;
    rollbacks += rep.rolled_back ? 1 : 0;
    if (!quiet) {
      const double vs = rep.baseline_load > 0.0
                            ? (rep.total_load / rep.baseline_load - 1.0) * 100.0
                            : 0.0;
      t.add_row({std::to_string(rep.epoch), std::to_string(rep.events),
                 std::to_string(rep.dirty_users), std::to_string(rep.reassociations),
                 std::to_string(rep.forced_reassociations),
                 std::string(rep.used_full_solve ? "yes" : "") +
                     (rep.rolled_back ? " rb" : ""),
                 util::fmt(rep.total_load, 3), util::fmt(vs, 1) + "%",
                 std::to_string(rep.users_served) + "/" +
                     std::to_string(rep.users_subscribed)});
    }
  }
  if (!quiet) t.print();

  const int n_epochs = std::max(1, trace.n_epochs());
  std::printf("replayed %d epochs (%zu events): %.1f reassoc/epoch "
              "(%.1f forced), %d full re-solves, %d rollbacks, final load %.3f "
              "(baseline %.3f)\n",
              trace.n_epochs(), trace.n_events(),
              static_cast<double>(reassoc) / n_epochs,
              static_cast<double>(forced) / n_epochs, full_solves, rollbacks,
              controller.loads().total_load, controller.baseline_load());
  if (cfg.k >= 2) {
    std::printf("k=%d overlay: %d multi-served users, mean effective rate %.2f Mbps\n",
                cfg.k, controller.multi_loads().multi_served_users,
                controller.multi_loads().mean_effective_rate);
  }

  const std::string tele_out = args.get("telemetry", "");
  if (!tele_out.empty()) {
    std::ofstream f(tele_out);
    if (!f || !(f << controller.telemetry().to_json().dump(2) << "\n")) {
      std::fprintf(stderr, "replay: cannot write %s\n", tele_out.c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", tele_out.c_str());
  }
  return 0;
}

// `serve`: the production streaming mode. Feeds the controller through the
// serve loop (bounded queue, adaptive batching, bounded-staleness coalescing,
// reject/shed backpressure) from either a synthetic workload (--profile) or a
// wmcast-trace on stdin, read incrementally so solving overlaps input and
// multi-GB traces never need buffering. On EOF the backlog drains and the
// final wmcast-serve-telemetry/v1 block is flushed.
int cmd_serve(const util::Args& args) {
  args.reject_unknown(
      {"scenario", "aps", "users", "sessions", "area", "budget", "scenario-seed",
       "solver", "basic-rate", "threshold", "refresh", "max-reassoc", "min-gain",
       "no-admission", "seed", "threads", "k", "profile", "duration", "rate",
       "workload-seed", "batch-max", "staleness-ms", "queue-cap", "policy",
       "no-coalesce", "modeled", "pipeline", "telemetry", "trace-out",
       "trace-epoch-s", "quiet", "json", "simd"});

  wlan::Scenario sc = [&] {
    if (args.has("scenario")) return wlan::load_scenario(args.get("scenario", ""));
    wlan::GeneratorParams p;
    p.n_aps = args.get_int("aps", 100);
    p.n_users = args.get_int("users", 300);
    p.n_sessions = args.get_int("sessions", p.n_sessions);
    p.area_side_m = args.get_double("area", p.area_side_m);
    p.load_budget = args.get_double("budget", p.load_budget);
    util::Rng rng(args.get_u64("scenario-seed", 1));
    return wlan::generate_scenario(p, rng);
  }();
  if (!sc.has_geometry()) {
    std::fprintf(stderr, "serve: scenario must be geometric\n");
    return 2;
  }

  ctrl::ControllerConfig cfg;
  cfg.full_solver = args.get("solver", cfg.full_solver);
  cfg.multi_rate = !args.get_bool("basic-rate", false);
  cfg.degradation_threshold = args.get_double("threshold", cfg.degradation_threshold);
  cfg.full_refresh_epochs = args.get_int("refresh", cfg.full_refresh_epochs);
  cfg.max_reassoc_per_epoch = args.get_int("max-reassoc", cfg.max_reassoc_per_epoch);
  cfg.polish_min_gain = args.get_double("min-gain", cfg.polish_min_gain);
  cfg.admission_control = !args.get_bool("no-admission", false);
  cfg.seed = args.get_u64("seed", cfg.seed);
  cfg.threads = util::resolve_threads(args);
  cfg.k = args.get_int("k", cfg.k);
  cfg.max_batch = 0;  // the serve loop owns batching; one batch = one epoch
  if (!assoc::is_algorithm(cfg.full_solver)) {
    std::fprintf(stderr, "serve: unknown --solver=%s\n", cfg.full_solver.c_str());
    return 2;
  }
  ctrl::AssociationController controller(sc, cfg);

  serve::ServeConfig scfg;
  scfg.batch_max = args.get_int("batch-max", scfg.batch_max);
  scfg.staleness_s = args.get_double("staleness-ms", scfg.staleness_s * 1000.0) / 1000.0;
  const int queue_cap = args.get_int("queue-cap", static_cast<int>(scfg.queue_cap));
  scfg.queue_cap = queue_cap <= 0 ? 0 : static_cast<size_t>(queue_cap);
  scfg.policy = serve::overflow_policy_from_name(args.get("policy", "reject"));
  scfg.coalesce = !args.get_bool("no-coalesce", false);
  scfg.modeled_service = args.get_bool("modeled", false);
  scfg.pipeline = args.get_bool("pipeline", false);
  serve::ServeLoop loop(&controller, scfg);

  const double rate = args.get_double("rate", 1000.0);
  const std::string trace_out = args.get("trace-out", "");
  double end_t = 0.0;
  uint64_t offered = 0;

  if (args.has("profile")) {
    // Synthetic workload, deterministic in (scenario, profile, seed).
    serve::WorkloadParams wp;
    wp.duration_s = args.get_double("duration", 10.0);
    wp.events_per_s = rate;
    wp.seed = args.get_u64("workload-seed", 1);
    const auto profile = serve::WorkloadProfile::named(args.get("profile", "mixed"));
    serve::WorkloadGenerator gen(controller.state(), profile, wp);
    std::vector<serve::TimedEvent> kept;  // only populated for --trace-out
    serve::TimedEvent te;
    while (gen.next(&te)) {
      loop.offer(te.t_s, te.ev);
      ++offered;
      if (!trace_out.empty()) kept.push_back(te);
    }
    end_t = wp.duration_s;
    if (!trace_out.empty()) {
      const auto exported = serve::workload_to_trace(
          kept, wp.duration_s, args.get_double("trace-epoch-s", 1.0));
      if (!ctrl::save_trace(exported, trace_out)) return 1;
      std::printf("workload trace written to %s\n", trace_out.c_str());
    }
  } else {
    // Streaming stdin: one epoch parsed and offered at a time; events are
    // paced onto the virtual timeline at --rate events/sec.
    const double dt = rate > 0.0 ? 1.0 / rate : 0.0;
    ctrl::TraceReader reader(std::cin);
    std::vector<ctrl::Event> epoch;
    double t = 0.0;
    while (reader.next_epoch(&epoch)) {
      for (const auto& ev : epoch) {
        loop.offer(t, ev);
        ++offered;
        t += dt;
      }
    }
    end_t = t;
  }

  const serve::ServeTelemetry& tele = loop.finish(end_t);

  const bool quiet = args.get_bool("quiet", false);
  std::printf("served %llu events in %llu batches: latency p50 %s p99 %s p999 %s s, "
              "%0.0f events/s virtual, %0.0f events/s wall "
              "(rejected %llu, shed %llu, coalesced %llu)\n",
              static_cast<unsigned long long>(tele.offered.value()),
              static_cast<unsigned long long>(tele.batches.value()),
              util::fmt(tele.latency_s.quantile(0.5), 4).c_str(),
              util::fmt(tele.latency_s.quantile(0.99), 4).c_str(),
              util::fmt(tele.latency_s.quantile(0.999), 4).c_str(),
              tele.virtual_events_per_s(), tele.wall_events_per_s(),
              static_cast<unsigned long long>(tele.rejected.value()),
              static_cast<unsigned long long>(tele.shed.value()),
              static_cast<unsigned long long>(tele.coalesced.value()));
  if (!quiet) std::fputs(tele.to_text().c_str(), stdout);

  // Wall-clock fields are nondeterministic; drop them from serialized
  // telemetry under --modeled so the block is a pure function of
  // (scenario, workload, config) — what the determinism tests diff.
  const bool include_wall = !scfg.modeled_service;
  if (args.get_bool("json", false)) {
    std::printf("%s\n", tele.to_json(include_wall).dump(2).c_str());
  }
  const std::string tele_out = args.get("telemetry", "");
  if (!tele_out.empty()) {
    std::ofstream f(tele_out);
    if (!f || !(f << tele.to_json(include_wall).dump(2) << "\n")) {
      std::fprintf(stderr, "serve: cannot write %s\n", tele_out.c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", tele_out.c_str());
  }
  return 0;
}

// Deterministic fault-injection campaign (or a single-repro re-check).
int cmd_chaos(const util::Args& args) {
  if (args.has("repro")) {
    args.reject_unknown({"repro", "quiet", "simd"});
    const auto repro = chaos::load_repro(args.get("repro", ""));
    const auto r = chaos::run_repro(repro);
    const std::string failures = chaos::failures_to_text(r.results);
    if (failures.empty()) {
      std::printf("repro %s: all %zu checks pass over %d epochs\n",
                  repro.check.c_str(), r.results.size(), r.epochs_run);
      return 0;
    }
    std::printf("repro %s: STILL FAILING after %d epochs%s\n%s", repro.check.c_str(),
                r.epochs_run,
                r.diverged ? (" (diverged at epoch " +
                              std::to_string(r.divergence_epoch) + ")")
                                 .c_str()
                           : "",
                failures.c_str());
    return 1;
  }

  chaos::CampaignConfig cfg;
  cfg.seed = args.get_u64("seed", cfg.seed);
  cfg.scenarios = args.get_int("scenarios", cfg.scenarios);
  cfg.profile = args.get("profile", cfg.profile);
  cfg.threads = args.get_int("threads", cfg.threads);
  cfg.solver = args.get("solver", cfg.solver);
  cfg.n_aps = args.get_int("aps", cfg.n_aps);
  cfg.n_users = args.get_int("users", cfg.n_users);
  cfg.n_sessions = args.get_int("sessions", cfg.n_sessions);
  cfg.area_side_m = args.get_double("area", cfg.area_side_m);
  cfg.trace_epochs = args.get_int("epochs", cfg.trace_epochs);
  cfg.shrink_failures = !args.get_bool("no-shrink", false);
  cfg.out_dir = args.get("out-dir", "");
  const bool quiet = args.get_bool("quiet", false);
  const bool as_json = args.get_bool("json", false);
  args.reject_unknown({"seed", "scenarios", "profile", "threads", "solver", "aps",
                       "users", "sessions", "area", "epochs", "no-shrink", "out-dir",
                       "quiet", "json", "simd"});
  if (!assoc::is_algorithm(cfg.solver)) {
    std::fprintf(stderr, "chaos: unknown --solver=%s\n", cfg.solver.c_str());
    return 2;
  }

  const auto res = chaos::run_campaign(cfg, quiet ? nullptr : &std::cerr);
  if (as_json) {
    std::cout << chaos::campaign_to_json(cfg, res).dump(2) << "\n";
  } else {
    std::printf("chaos: %d scenarios, %d checks, %d failed", res.scenarios_run,
                res.checks_run, res.checks_failed);
    if (res.parse_attempts > 0) {
      std::printf(", %d/%d corrupted parses cleanly rejected", res.parse_rejected,
                  res.parse_attempts);
    }
    std::printf("\n");
    for (const auto& f : res.findings) {
      std::printf("  scenario %d seed=%llu profile=%s: %s — %s%s%s\n",
                  f.scenario_index, static_cast<unsigned long long>(f.seed),
                  f.profile.c_str(), f.repro.check.c_str(), f.repro.detail.c_str(),
                  f.repro_path.empty() ? "" : " -> ",
                  f.repro_path.c_str());
    }
  }
  return res.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const util::Args args(argc - 1, argv + 1);
    // Global kernel-dispatch override, honored by every subcommand (the
    // scalar and SIMD paths are bit-identical; this exists for byte-diff
    // verification legs and for benchmarking the scalar floor).
    util::resolve_simd(args);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "exact") return cmd_exact(args);
    if (cmd == "export-lp") return cmd_export_lp(args);
    if (cmd == "render") return cmd_render(args);
    if (cmd == "replay") return cmd_replay(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "chaos") return cmd_chaos(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wmcast_cli %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
