// Benchmark regression guard: diffs a wmcast-microbench/v1 JSON produced by
// bench/micro_solvers --json=... against a committed baseline and fails when
// any benchmark regressed past the tolerance. CI runs this in Release after
// every build; refresh the baseline (bench/BENCH_micro_solvers.json) whenever
// a deliberate perf change lands.
//
// Run: ./bench_guard --baseline=bench/BENCH_micro_solvers.json
//                    --current=out.json [--tolerance=0.25] [--min-ns=50000]
//                    [--only=<name>] [--gate-prefix=<prefix>]
//                    [--require-speedup=K]
//
// Exit code: 0 = all within tolerance, 1 = regression (or malformed input).
// Benchmarks faster than --min-ns in the baseline are reported but never
// fail the run: at that scale timer noise dominates any real change.
//
//  --only=<name>        gate exactly the benchmark named <name> (e.g.
//                       --only=kconn.repair_epoch); everything else is
//                       ignored entirely. Exact match — a speedup gate aimed
//                       at one arm must not silently swallow siblings that
//                       later land under the same prefix.
//  --gate-prefix=<pfx>  gate every benchmark whose name starts with <pfx>
//                       (e.g. --gate-prefix=kernel. or
//                       --gate-prefix=scale_build/mla_solve/). Mutually
//                       exclusive with --only.
//  --require-speedup=K  in addition to the regression gate, fail any selected
//                       benchmark that is not >= K times FASTER than its
//                       baseline entry — CI points this at a pre-optimization
//                       baseline to pin a deliberate speedup

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "wmcast/util/cli.hpp"
#include "wmcast/util/json.hpp"

namespace {

using wmcast::util::Json;

struct Entry {
  double ns = 0.0;
  double bytes = -1.0;  // optional deterministic memory metric; -1 = absent
};

std::map<std::string, Entry> load_times(const std::string& path, int* threads) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  const Json j = Json::parse(buf.str());
  const auto* schema = j.find("schema");
  if (schema == nullptr || schema->as_string() != "wmcast-microbench/v1") {
    throw std::runtime_error(path + ": not a wmcast-microbench/v1 document");
  }
  // Optional hardware-thread count of the machine that produced the document;
  // informational only (a baseline from a wider machine is still comparable
  // for the serial benches, and the mismatch is worth flagging for the
  // parallel ones).
  const auto* t = j.find("threads");
  if (threads != nullptr) *threads = t != nullptr ? static_cast<int>(t->as_double()) : 0;
  const auto* benches = j.find("benchmarks");
  if (benches == nullptr || !benches->is_array()) {
    throw std::runtime_error(path + ": missing benchmarks array");
  }
  std::map<std::string, Entry> out;
  for (const auto& b : benches->items()) {
    const auto* name = b.find("name");
    const auto* ns = b.find("real_time_ns");
    if (name == nullptr || ns == nullptr) {
      throw std::runtime_error(path + ": benchmark entry missing name/real_time_ns");
    }
    Entry e;
    e.ns = ns->as_double();
    // Optional "bytes": a *deterministic* memory metric (e.g. the scale_build
    // bench's Scenario::memory_bytes()), guarded with the same tolerance as
    // time but with no noise floor — a byte regression is never timer noise.
    const auto* bytes = b.find("bytes");
    if (bytes != nullptr) e.bytes = bytes->as_double();
    out[name->as_string()] = e;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const wmcast::util::Args args(argc, argv);
    args.reject_unknown({"baseline", "current", "min-ns", "tolerance", "only",
                         "gate-prefix", "require-speedup"});
    const std::string baseline_path = args.get("baseline", "");
    const std::string current_path = args.get("current", "");
    const double tolerance = args.get_double("tolerance", 0.25);
    const double min_ns = args.get_double("min-ns", 50000.0);
    const std::string only = args.get("only", "");
    const std::string gate_prefix = args.get("gate-prefix", "");
    const double require_speedup = args.get_double("require-speedup", 0.0);
    if (baseline_path.empty() || current_path.empty()) {
      std::fprintf(stderr, "usage: bench_guard --baseline=A.json --current=B.json "
                           "[--tolerance=0.25] [--min-ns=50000] [--only=name] "
                           "[--gate-prefix=prefix] [--require-speedup=K]\n");
      return 1;
    }
    if (!only.empty() && !gate_prefix.empty()) {
      std::fprintf(stderr,
                   "bench_guard: --only and --gate-prefix are mutually exclusive\n");
      return 1;
    }
    const auto selected = [&](const std::string& name) {
      if (!only.empty()) return name == only;
      return gate_prefix.empty() || name.rfind(gate_prefix, 0) == 0;
    };

    int baseline_threads = 0;
    int current_threads = 0;
    const auto baseline = load_times(baseline_path, &baseline_threads);
    const auto current = load_times(current_path, &current_threads);
    if (baseline_threads > 0 || current_threads > 0) {
      std::printf("hardware threads: baseline %d, current %d%s\n\n", baseline_threads,
                  current_threads,
                  baseline_threads != current_threads
                      ? "  (differ: read parallel benches with care)"
                      : "");
    }

    int regressions = 0;
    int missing = 0;
    int matched = 0;
    if (!only.empty()) std::printf("gating only the benchmark named '%s'\n\n", only.c_str());
    if (!gate_prefix.empty()) {
      std::printf("gating only benchmarks matching '%s*'\n\n", gate_prefix.c_str());
    }
    std::printf("%-40s %14s %14s %8s\n", "benchmark", "baseline_ns", "current_ns",
                "delta");
    for (const auto& [name, base] : baseline) {
      if (!selected(name)) continue;
      ++matched;
      const auto it = current.find(name);
      if (it == current.end()) {
        std::printf("%-40s %14.0f %14s %8s\n", name.c_str(), base.ns, "MISSING", "");
        ++missing;
        continue;
      }
      const double cur_ns = it->second.ns;
      const double delta = base.ns > 0.0 ? (cur_ns / base.ns - 1.0) * 100.0 : 0.0;
      const bool noise_floor = base.ns < min_ns;
      const bool regressed = !noise_floor && cur_ns > base.ns * (1.0 + tolerance);
      const bool too_slow = require_speedup > 0.0 && !noise_floor &&
                            cur_ns * require_speedup > base.ns;
      std::printf("%-40s %14.0f %14.0f %+7.1f%%%s\n", name.c_str(), base.ns, cur_ns,
                  delta,
                  regressed     ? "  <-- REGRESSION"
                  : too_slow    ? "  <-- SPEEDUP NOT MET"
                  : noise_floor ? "  (noise floor)"
                                : "");
      if (too_slow) {
        std::printf("%-40s required >= %.2fx faster, got %.2fx\n", "",
                    require_speedup, cur_ns > 0.0 ? base.ns / cur_ns : 0.0);
      }
      if (regressed || too_slow) ++regressions;

      if (base.bytes >= 0.0) {
        const std::string label = name + " [bytes]";
        if (it->second.bytes < 0.0) {
          std::printf("%-40s %14.0f %14s %8s\n", label.c_str(), base.bytes, "MISSING",
                      "");
          ++missing;
          continue;
        }
        const double cur_b = it->second.bytes;
        const double bdelta = base.bytes > 0.0 ? (cur_b / base.bytes - 1.0) * 100.0 : 0.0;
        const bool bregressed = cur_b > base.bytes * (1.0 + tolerance);
        std::printf("%-40s %14.0f %14.0f %+7.1f%%%s\n", label.c_str(), base.bytes,
                    cur_b, bdelta, bregressed ? "  <-- REGRESSION" : "");
        if (bregressed) ++regressions;
      }
    }
    for (const auto& [name, cur] : current) {
      if (selected(name) && baseline.find(name) == baseline.end()) {
        std::printf("%-40s %14s %14.0f %8s\n", name.c_str(), "NEW", cur.ns, "");
      }
    }

    if ((!only.empty() || !gate_prefix.empty()) && matched == 0) {
      std::printf("\nno baseline benchmark matches %s=%s — nothing was gated; "
                  "treating as failure.\n", only.empty() ? "--gate-prefix" : "--only",
                  only.empty() ? gate_prefix.c_str() : only.c_str());
      return 1;
    }
    if (missing > 0) {
      std::printf("\n%d baseline benchmark(s) missing from the current run — "
                  "refresh the baseline if they were renamed.\n", missing);
      return 1;
    }
    if (regressions > 0) {
      if (require_speedup > 0.0) {
        std::printf("\n%d benchmark(s) regressed past %.0f%% or missed the "
                    "required %.2fx speedup (see table above).\n",
                    regressions, tolerance * 100.0, require_speedup);
      } else {
        std::printf("\n%d benchmark(s) regressed more than %.0f%% over baseline.\n",
                    regressions, tolerance * 100.0);
      }
      return 1;
    }
    if (require_speedup > 0.0) {
      std::printf("\nall gated benchmarks >= %.2fx faster than baseline.\n",
                  require_speedup);
    } else {
      std::printf("\nall benchmarks within %.0f%% of baseline.\n", tolerance * 100.0);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_guard: %s\n", e.what());
    return 1;
  }
}
