#include "wmcast/sim/ap_channel.hpp"

#include <algorithm>
#include <queue>

#include "wmcast/mac/airtime.hpp"

namespace wmcast::sim {

ApChannelResult simulate_ap_channel(const std::vector<MulticastFlow>& multicast,
                                    const std::vector<UnicastClient>& unicast,
                                    const ApChannelConfig& config) {
  util::require(config.payload_bytes > 0, "simulate_ap_channel: bad payload size");
  util::require(config.horizon_s > 0.0, "simulate_ap_channel: bad horizon");
  for (const auto& m : multicast) {
    util::require(m.stream_mbps > 0.0 && m.tx_rate_mbps > 0.0,
                  "simulate_ap_channel: bad multicast flow");
  }
  for (const auto& u : unicast) {
    util::require(u.link_rate_mbps > 0.0, "simulate_ap_channel: bad unicast client");
  }

  const double horizon_us = config.horizon_s * 1e6;
  const double payload_bits = 8.0 * config.payload_bytes;

  // Per-session frame period in us and per-frame airtime.
  struct McState {
    double period_us;
    double airtime_us;
    double next_arrival_us;
    int64_t queued = 0;
    int64_t sent = 0;
    int64_t arrived = 0;
  };
  std::vector<McState> mc;
  mc.reserve(multicast.size());
  for (const auto& m : multicast) {
    McState s;
    s.period_us = payload_bits / m.stream_mbps;  // bits / Mbps = us
    s.airtime_us = mac::broadcast_airtime_us(config.payload_bytes, m.tx_rate_mbps,
                                             config.mean_backoff_slots);
    s.next_arrival_us = s.period_us;  // first frame after one period
    mc.push_back(s);
  }

  std::vector<double> uc_airtime(unicast.size());
  for (size_t c = 0; c < unicast.size(); ++c) {
    // Unicast data frame + SIFS + ACK (ACK at the same rate, minimal frame).
    uc_airtime[c] = mac::broadcast_airtime_us(config.payload_bytes,
                                              unicast[c].link_rate_mbps,
                                              config.mean_backoff_slots) +
                    mac::Ofdm80211a::kSifsUs +
                    mac::frame_duration_us(14, unicast[c].link_rate_mbps);
  }

  ApChannelResult res;
  res.unicast_goodput_mbps.assign(unicast.size(), 0.0);

  double now_us = 0.0;
  double mc_busy_us = 0.0;
  size_t next_unicast = 0;
  std::vector<int64_t> uc_frames(unicast.size(), 0);

  auto pump_arrivals = [&](double until_us) {
    for (auto& s : mc) {
      while (s.next_arrival_us <= until_us) {
        ++s.queued;
        ++s.arrived;
        s.next_arrival_us += s.period_us;
      }
    }
  };

  while (now_us < horizon_us) {
    pump_arrivals(now_us);

    // Highest-priority pending multicast frame (lowest session index).
    int mc_idx = -1;
    for (size_t s = 0; s < mc.size(); ++s) {
      if (mc[s].queued > 0) {
        mc_idx = static_cast<int>(s);
        break;
      }
    }

    if (mc_idx >= 0) {
      auto& s = mc[static_cast<size_t>(mc_idx)];
      now_us += s.airtime_us;
      mc_busy_us += s.airtime_us;
      --s.queued;
      ++s.sent;
      ++res.multicast_frames_sent;
      continue;
    }

    if (!unicast.empty()) {
      // Round-robin saturated unicast. If a multicast frame arrives before
      // this transmission would finish, 802.11 still completes the ongoing
      // frame — so just charge the full frame.
      const size_t c = next_unicast;
      next_unicast = (next_unicast + 1) % unicast.size();
      now_us += uc_airtime[c];
      ++uc_frames[c];
      ++res.unicast_frames_sent;
      continue;
    }

    // Idle until the next multicast arrival (or the horizon).
    double next = horizon_us;
    for (const auto& s : mc) next = std::min(next, s.next_arrival_us);
    if (next <= now_us) next = now_us + 1.0;  // guard against FP stalls
    now_us = next;
  }

  for (size_t c = 0; c < unicast.size(); ++c) {
    res.unicast_goodput_mbps[c] = uc_frames[c] * payload_bits / horizon_us;  // Mbps
    res.total_unicast_goodput_mbps += res.unicast_goodput_mbps[c];
  }
  res.multicast_busy_fraction = mc_busy_us / horizon_us;

  int64_t arrived = 0;
  int64_t sent = 0;
  for (const auto& s : mc) {
    arrived += s.arrived;
    sent += s.sent;
  }
  res.multicast_backlog_fraction =
      arrived > 0 ? 1.0 - static_cast<double>(sent) / arrived : 0.0;
  return res;
}

}  // namespace wmcast::sim
