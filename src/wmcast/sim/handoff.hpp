// Handoff (re-association) cost accounting. The paper's §1 argues that in
// large networks "centralized solutions will lead to more frequent changes
// in associations causing increased signaling traffic"; its citation of
// SyncScan (Ramani & Savage) is about exactly this — each re-association
// interrupts the stream for the scan + (re)association exchange. This module
// converts a sequence of association snapshots (e.g. churn epochs) into a
// per-user service-disruption account under a configurable handoff model.
#pragma once

#include <vector>

#include "wmcast/wlan/association.hpp"

namespace wmcast::sim {

struct HandoffModel {
  /// Stream interruption per re-association between two APs, seconds.
  /// Classic active-scan handoffs cost hundreds of ms; SyncScan-style
  /// optimized handoffs single-digit ms.
  double handoff_interruption_s = 0.3;
  /// Interruption when a user loses service entirely and must (re)join.
  double rejoin_interruption_s = 1.0;
};

struct DisruptionReport {
  int64_t handoffs = 0;       // AP-to-AP re-associations
  int64_t drops = 0;          // served -> unserved transitions
  int64_t joins = 0;          // unserved -> served transitions
  double total_disruption_s = 0.0;
  double worst_user_disruption_s = 0.0;
  /// Per-user accumulated disruption, seconds.
  std::vector<double> per_user_s;
};

/// Accumulates disruptions across consecutive association snapshots.
/// All snapshots must have the same user count.
DisruptionReport account_disruptions(const std::vector<wlan::Association>& snapshots,
                                     const HandoffModel& model = {});

}  // namespace wmcast::sim
