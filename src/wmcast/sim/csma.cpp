#include "wmcast/sim/csma.hpp"

#include <algorithm>
#include <cmath>

#include "wmcast/mac/airtime.hpp"
#include "wmcast/util/assert.hpp"

namespace wmcast::sim {

namespace {

constexpr double kSlotUs = mac::Ofdm80211a::kSlotUs;

// Pending frame at an AP.
struct Frame {
  enum class Kind { kNone, kMulticast, kUnicast };
  Kind kind = Kind::kNone;
  int flow = -1;        // multicast session index or unicast client index
  int duration_slots = 0;
  int retries = 0;
};

struct ApState {
  // Multicast arrival bookkeeping (periodic).
  std::vector<double> next_arrival_slot;
  std::vector<double> period_slots;
  std::vector<int> mc_duration_slots;
  std::vector<int64_t> mc_queue;  // queued frames per session
  std::vector<int> uc_duration_slots;

  Frame current;
  int backoff = 0;  // remaining idle slots before transmitting
  int cw = 0;
  int tx_remaining = 0;  // slots left of the ongoing transmission
  bool colliding = false;

  size_t next_unicast = 0;
  int64_t tx_slots_total = 0;
  int64_t mc_sent = 0;
  int64_t mc_collided = 0;
  std::vector<int64_t> uc_delivered;  // frames per client
};

}  // namespace

std::vector<std::vector<int>> same_channel_conflicts(
    const std::vector<std::vector<int>>& conflict_graph,
    const std::vector<int>& channel_of_ap) {
  util::require(conflict_graph.size() == channel_of_ap.size(),
                "same_channel_conflicts: size mismatch");
  std::vector<std::vector<int>> out(conflict_graph.size());
  for (size_t a = 0; a < conflict_graph.size(); ++a) {
    for (const int b : conflict_graph[a]) {
      if (channel_of_ap[a] == channel_of_ap[static_cast<size_t>(b)]) {
        out[a].push_back(b);
      }
    }
  }
  return out;
}

CsmaResult simulate_csma(const std::vector<ApWorkload>& aps,
                         const std::vector<std::vector<int>>& conflicts,
                         const CsmaConfig& config) {
  const auto n = static_cast<int>(aps.size());
  util::require(static_cast<int>(conflicts.size()) == n,
                "simulate_csma: conflict list per AP required");
  util::require(config.horizon_s > 0.0, "simulate_csma: bad horizon");
  util::require(config.cw_min >= 1 && config.cw_max >= config.cw_min,
                "simulate_csma: bad contention window");

  util::Rng rng(config.seed);
  const double payload_bits = 8.0 * config.payload_bytes;

  auto slots_for = [&](double rate_mbps) {
    const double us = mac::broadcast_airtime_us(config.payload_bytes, rate_mbps, 0);
    return std::max(1, static_cast<int>(std::ceil(us / kSlotUs)));
  };

  std::vector<ApState> st(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) {
    auto& s = st[static_cast<size_t>(a)];
    const auto& w = aps[static_cast<size_t>(a)];
    for (const auto& m : w.multicast) {
      util::require(m.stream_mbps > 0.0 && m.tx_rate_mbps > 0.0,
                    "simulate_csma: bad multicast flow");
      const double period_us = payload_bits / m.stream_mbps;
      s.period_slots.push_back(period_us / kSlotUs);
      s.next_arrival_slot.push_back(period_us / kSlotUs);
      s.mc_duration_slots.push_back(slots_for(m.tx_rate_mbps));
      s.mc_queue.push_back(0);
    }
    for (const auto& c : w.unicast) {
      util::require(c.link_rate_mbps > 0.0, "simulate_csma: bad unicast client");
      s.uc_duration_slots.push_back(slots_for(c.link_rate_mbps));
    }
    s.uc_delivered.assign(w.unicast.size(), 0);
    s.cw = config.cw_min;
    s.backoff = rng.next_int(config.cw_min + 1);
  }

  const auto horizon_slots = static_cast<int64_t>(config.horizon_s * 1e6 / kSlotUs);

  auto medium_busy_for = [&](int a) {
    for (const int b : conflicts[static_cast<size_t>(a)]) {
      if (st[static_cast<size_t>(b)].tx_remaining > 0) return true;
    }
    return false;
  };

  auto load_next_frame = [&](int a) {
    auto& s = st[static_cast<size_t>(a)];
    if (s.current.kind != Frame::Kind::kNone) return;
    for (size_t m = 0; m < s.mc_queue.size(); ++m) {
      if (s.mc_queue[m] > 0) {
        --s.mc_queue[m];
        s.current = Frame{Frame::Kind::kMulticast, static_cast<int>(m),
                          s.mc_duration_slots[m], 0};
        s.backoff = rng.next_int(s.cw + 1);
        return;
      }
    }
    if (!s.uc_duration_slots.empty()) {
      const size_t c = s.next_unicast;
      s.next_unicast = (s.next_unicast + 1) % s.uc_duration_slots.size();
      s.current = Frame{Frame::Kind::kUnicast, static_cast<int>(c),
                        s.uc_duration_slots[c], 0};
      s.backoff = rng.next_int(s.cw + 1);
    }
  };

  CsmaResult res;
  std::vector<int> starters;

  for (int64_t slot = 0; slot < horizon_slots; ++slot) {
    // 1. Multicast arrivals.
    for (int a = 0; a < n; ++a) {
      auto& s = st[static_cast<size_t>(a)];
      for (size_t m = 0; m < s.next_arrival_slot.size(); ++m) {
        while (s.next_arrival_slot[m] <= static_cast<double>(slot)) {
          ++s.mc_queue[m];
          s.next_arrival_slot[m] += s.period_slots[m];
        }
      }
      load_next_frame(a);
    }

    // 2. Ongoing transmissions tick down; finished frames resolve.
    for (int a = 0; a < n; ++a) {
      auto& s = st[static_cast<size_t>(a)];
      if (s.tx_remaining <= 0) continue;
      ++s.tx_slots_total;
      if (--s.tx_remaining > 0) continue;

      // Frame completed.
      const bool collided = s.colliding;
      s.colliding = false;
      if (s.current.kind == Frame::Kind::kMulticast) {
        ++s.mc_sent;
        ++res.mc_frames_sent;
        if (collided) {
          ++s.mc_collided;
          ++res.mc_frames_collided;
        }
        // Broadcast: no retransmission either way (802.11 semantics).
        s.current = Frame{};
        s.cw = config.cw_min;
      } else {
        if (!collided) {
          ++s.uc_delivered[static_cast<size_t>(s.current.flow)];
          s.current = Frame{};
          s.cw = config.cw_min;
        } else if (s.current.retries < config.unicast_retry_limit) {
          ++s.current.retries;
          s.cw = std::min(2 * s.cw + 1, config.cw_max);
          s.backoff = rng.next_int(s.cw + 1);
        } else {
          ++res.unicast_drops;
          s.current = Frame{};
          s.cw = config.cw_min;
        }
      }
      load_next_frame(a);
    }

    // 3. Backoff countdown for idle APs with pending frames; collect the
    //    APs whose counters expire this slot.
    starters.clear();
    for (int a = 0; a < n; ++a) {
      auto& s = st[static_cast<size_t>(a)];
      if (s.tx_remaining > 0 || s.current.kind == Frame::Kind::kNone) continue;
      if (medium_busy_for(a)) continue;  // freeze backoff while medium busy
      if (s.backoff > 0) {
        --s.backoff;
        continue;
      }
      starters.push_back(a);
    }

    // 4. Starters begin transmitting; conflicting simultaneous starters (or
    //    a starter overlapping an already-active conflicting transmission,
    //    impossible here since the medium was sensed idle) collide.
    for (const int a : starters) {
      st[static_cast<size_t>(a)].tx_remaining = st[static_cast<size_t>(a)].current.duration_slots;
    }
    for (size_t i = 0; i < starters.size(); ++i) {
      for (size_t j = i + 1; j < starters.size(); ++j) {
        const int a = starters[i];
        const int b = starters[j];
        const auto& nb = conflicts[static_cast<size_t>(a)];
        if (std::find(nb.begin(), nb.end(), b) != nb.end()) {
          if (!st[static_cast<size_t>(a)].colliding || !st[static_cast<size_t>(b)].colliding) {
            ++res.collisions;
          }
          st[static_cast<size_t>(a)].colliding = true;
          st[static_cast<size_t>(b)].colliding = true;
        }
      }
    }
  }

  // Aggregate.
  res.mc_delivery_ratio.assign(static_cast<size_t>(n), 1.0);
  res.airtime_fraction.assign(static_cast<size_t>(n), 0.0);
  int64_t delivered = 0;
  for (int a = 0; a < n; ++a) {
    const auto& s = st[static_cast<size_t>(a)];
    if (s.mc_sent > 0) {
      res.mc_delivery_ratio[static_cast<size_t>(a)] =
          1.0 - static_cast<double>(s.mc_collided) / s.mc_sent;
    }
    res.airtime_fraction[static_cast<size_t>(a)] =
        static_cast<double>(s.tx_slots_total) / horizon_slots;
    delivered += s.mc_sent - s.mc_collided;
    for (const auto frames : s.uc_delivered) {
      res.total_unicast_goodput_mbps +=
          frames * payload_bits / (config.horizon_s * 1e6);
    }
  }
  res.overall_mc_delivery =
      res.mc_frames_sent > 0
          ? static_cast<double>(delivered) / res.mc_frames_sent
          : 1.0;
  return res;
}

}  // namespace wmcast::sim
