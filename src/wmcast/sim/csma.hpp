// Slotted CSMA/CA (DCF) network simulator. The per-AP channel simulator
// (ap_channel.hpp) assumes a private channel; this module drops that
// assumption: APs sharing a channel within interference range contend with
// binary-exponential-backoff DCF, and simultaneous transmissions by
// conflicting APs collide. Unicast frames are retransmitted (up to a retry
// limit, doubling the contention window); multicast/broadcast frames are
// not — exactly the 802.11 unreliability the paper's related-work section
// (§2) is about. This lets us measure multicast delivery ratio as a function
// of the association policy: policies that pile load onto few APs congest
// their channels and lose more broadcast frames.
#pragma once

#include <cstdint>
#include <vector>

#include "wmcast/sim/ap_channel.hpp"
#include "wmcast/util/rng.hpp"

namespace wmcast::sim {

struct CsmaConfig {
  int payload_bytes = 1500;
  double horizon_s = 2.0;
  int cw_min = 15;    // initial contention window, slots
  int cw_max = 1023;  // cap after doublings
  int unicast_retry_limit = 7;
  uint64_t seed = 1;  // backoff randomness
};

/// Per-AP offered traffic.
struct ApWorkload {
  std::vector<MulticastFlow> multicast;  // periodic broadcast streams
  std::vector<UnicastClient> unicast;    // saturated downlink clients
};

struct CsmaResult {
  /// Fraction of multicast frames transmitted without collision, per AP
  /// (1.0 for APs that sent none).
  std::vector<double> mc_delivery_ratio;
  /// Fraction of the horizon each AP spent transmitting (incl. collisions).
  std::vector<double> airtime_fraction;
  double overall_mc_delivery = 1.0;  // network-wide delivered/sent
  double total_unicast_goodput_mbps = 0.0;
  int64_t mc_frames_sent = 0;
  int64_t mc_frames_collided = 0;
  int64_t collisions = 0;          // collision events (any frame type)
  int64_t unicast_drops = 0;       // unicast frames beyond the retry limit
};

/// Simulates all APs for config.horizon_s. `conflicts[a]` lists the APs that
/// share a channel with `a` within interference range (e.g. from
/// ext::build_conflict_graph + ext::assign_channels, keeping only
/// same-channel edges). Deterministic per config.seed.
CsmaResult simulate_csma(const std::vector<ApWorkload>& aps,
                         const std::vector<std::vector<int>>& conflicts,
                         const CsmaConfig& config = {});

/// Convenience: reduces a full channel assignment to same-channel conflict
/// lists as simulate_csma expects.
std::vector<std::vector<int>> same_channel_conflicts(
    const std::vector<std::vector<int>>& conflict_graph,
    const std::vector<int>& channel_of_ap);

}  // namespace wmcast::sim
