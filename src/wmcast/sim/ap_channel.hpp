// Frame-level single-AP channel simulator. The paper's motivation is that
// multicast must "minimally impact the existing unicast services": this
// module quantifies that impact. For one AP it simulates, frame by frame,
// the downlink channel shared between
//   * the AP's multicast transmissions (periodic frame arrivals per session,
//     queued and sent at the session's transmission rate), and
//   * saturated unicast clients served round-robin in the residual airtime.
// Multicast frames get priority (they are broadcast, not backoff-contended
// per receiver), matching the airtime-fraction semantics of Definition 1.
//
// Outputs: per-client unicast goodput, measured multicast busy fraction
// (which must agree with mac::airtime_load — tested), and drop statistics
// when the offered multicast load exceeds the channel.
#pragma once

#include <vector>

#include "wmcast/util/assert.hpp"

namespace wmcast::sim {

struct MulticastFlow {
  double stream_mbps = 0.0;  // offered stream rate
  double tx_rate_mbps = 0.0; // PHY rate of the multicast frames
};

struct UnicastClient {
  double link_rate_mbps = 0.0;  // PHY rate of this client's frames
};

struct ApChannelConfig {
  int payload_bytes = 1500;
  double horizon_s = 5.0;
  /// Mean contention backoff charged per frame, in slots.
  int mean_backoff_slots = 7;
};

struct ApChannelResult {
  /// Delivered unicast goodput per client, Mbps (payload bits only).
  std::vector<double> unicast_goodput_mbps;
  double total_unicast_goodput_mbps = 0.0;
  /// Fraction of the horizon spent on multicast frames (incl. per-frame
  /// overheads) — the empirical counterpart of Definition 1's load.
  double multicast_busy_fraction = 0.0;
  /// Fraction of multicast frames that could not be sent by the end of the
  /// horizon (offered load exceeded the channel).
  double multicast_backlog_fraction = 0.0;
  int64_t multicast_frames_sent = 0;
  int64_t unicast_frames_sent = 0;
};

/// Runs the frame-level simulation. Deterministic: multicast arrivals are
/// periodic, unicast is saturated round-robin, backoff is charged at its
/// mean (the randomness of 802.11 backoff averages out over thousands of
/// frames and would only blur the comparison).
ApChannelResult simulate_ap_channel(const std::vector<MulticastFlow>& multicast,
                                    const std::vector<UnicastClient>& unicast,
                                    const ApChannelConfig& config = {});

}  // namespace wmcast::sim
