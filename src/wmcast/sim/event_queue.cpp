#include "wmcast/sim/event_queue.hpp"

#include "wmcast/util/assert.hpp"

namespace wmcast::sim {

void Simulator::schedule_in(double delay_s, Handler h) {
  WMCAST_ASSERT(delay_s >= 0.0, "schedule_in: negative delay");
  queue_.push(Event{now_ + delay_s, next_seq_++, std::move(h)});
}

void Simulator::schedule_at(double time_s, Handler h) {
  WMCAST_ASSERT(time_s >= now_, "schedule_at: time in the past");
  queue_.push(Event{time_s, next_seq_++, std::move(h)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the handler out before popping: the handler may schedule new events.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.handler();
  return true;
}

int64_t Simulator::run_until(double t_end) {
  int64_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    step();
    ++n;
  }
  if (now_ < t_end) now_ = t_end;
  return n;
}

}  // namespace wmcast::sim
