// Protocol-level entities for the discrete-event WLAN simulation: the user
// agent's scan/decide/apply cycle and the AP's membership state, plus the
// configuration and trace records shared with sim::ProtocolSim.
//
// The modeled message exchange follows §4.2 of the paper: a user periodically
// queries its neighboring APs; each AP answers with its multicast sessions,
// their transmission rates and its load; the user then (re)associates.
// Decisions are therefore based on information that is one network latency
// old — with synchronized scan phases, two users can decide on the same
// stale snapshot and oscillate (Fig. 4); with jittered phases decisions
// interleave and the protocol converges (Lemmas 1-2).
#pragma once

#include <vector>

#include "wmcast/assoc/policy.hpp"

namespace wmcast::sim {

struct SimConfig {
  /// One-way user<->AP message latency (query and response each take one).
  double latency_s = 0.002;
  /// Period between a user's association re-evaluations.
  double scan_period_s = 1.0;
  /// Each user's scan phase is drawn uniformly from [0, phase_jitter_s).
  /// 0 synchronizes every user (the paper's simultaneous-decision hazard).
  double phase_jitter_s = 1.0;
  /// Simulation stops early once no association changed for this long.
  double quiet_period_s = 4.0;
  /// Hard wall-clock limit of the simulated run.
  double max_time_s = 120.0;
  /// Failure injection: each protocol message (query, response, or
  /// (re)association request) is independently lost with this probability.
  /// A user that misses any neighbor's response defers its decision to the
  /// next scan period — the protocol stays safe, only slower.
  double message_loss_prob = 0.0;
  assoc::PolicyParams policy;
};

/// One association change, for traces and tests.
struct TraceEntry {
  double time_s = 0.0;
  int user = -1;
  int from_ap = -1;  // wlan::kNoAp when joining from unassociated
  int to_ap = -1;
};

/// Message/operation counters (the signaling-overhead numbers the paper's
/// discussion of centralized vs distributed control is about).
struct SimCounters {
  int64_t queries = 0;    // user->AP query messages
  int64_t responses = 0;  // AP->user responses
  int64_t joins = 0;      // (re)association messages
  int64_t leaves = 0;
  int64_t decisions = 0;   // completed decide steps
  int64_t rejections = 0;  // joins refused by the AP (budget exceeded since
                           // the user's snapshot was taken)
  int64_t lost_messages = 0;   // messages dropped by failure injection
  int64_t deferred_scans = 0;  // scans abandoned due to a lost query/response
};

/// Per-AP protocol state: the members currently associated for multicast.
struct ApAgent {
  std::vector<int> members;
};

/// Per-user protocol state.
struct UserAgent {
  int ap = -1;  // wlan::kNoAp
  double phase_s = 0.0;
};

/// The member-list snapshot one query round collects: only the neighboring
/// APs of `u` answer, so only their lists are populated.
std::vector<std::vector<int>> snapshot_neighbors(const wlan::Scenario& sc, int u,
                                                 const std::vector<ApAgent>& aps);

}  // namespace wmcast::sim
