#include "wmcast/sim/network.hpp"
#include "wmcast/util/fp.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/util/assert.hpp"

namespace wmcast::sim {

ProtocolSim::ProtocolSim(const wlan::Scenario& sc, const SimConfig& config, util::Rng rng)
    : sc_(sc),
      config_(config),
      rng_(rng),
      aps_(static_cast<size_t>(sc.n_aps())),
      users_(static_cast<size_t>(sc.n_users())),
      activation_time_(static_cast<size_t>(sc.n_users()), 0.0),
      deactivation_time_(static_cast<size_t>(sc.n_users()),
                         std::numeric_limits<double>::infinity()),
      active_(static_cast<size_t>(sc.n_users()), true) {
  util::require(config.latency_s >= 0.0, "ProtocolSim: negative latency");
  util::require(config.scan_period_s > 0.0, "ProtocolSim: scan period must be positive");
}

void ProtocolSim::set_initial(const wlan::Association& assoc) {
  util::require(!started_, "ProtocolSim: set_initial must precede run()");
  util::require(assoc.n_users() == sc_.n_users(), "ProtocolSim: association size mismatch");
  for (auto& ap : aps_) ap.members.clear();
  for (int u = 0; u < sc_.n_users(); ++u) {
    const int a = assoc.ap_of(u);
    users_[static_cast<size_t>(u)].ap = a;
    if (a != wlan::kNoAp) {
      util::require(sc_.in_range(a, u), "ProtocolSim: initial association out of range");
      aps_[static_cast<size_t>(a)].members.push_back(u);
    }
  }
}

void ProtocolSim::activate_user_at(int u, double time_s) {
  util::require(!started_, "ProtocolSim: activate_user_at must precede run()");
  util::require(u >= 0 && u < sc_.n_users(), "ProtocolSim: invalid user");
  util::require(time_s >= 0.0, "ProtocolSim: negative activation time");
  activation_time_[static_cast<size_t>(u)] = time_s;
}

void ProtocolSim::deactivate_user_at(int u, double time_s) {
  util::require(!started_, "ProtocolSim: deactivate_user_at must precede run()");
  util::require(u >= 0 && u < sc_.n_users(), "ProtocolSim: invalid user");
  util::require(time_s >= 0.0, "ProtocolSim: negative deactivation time");
  deactivation_time_[static_cast<size_t>(u)] = time_s;
}

void ProtocolSim::schedule_scan(int u, double at) {
  if (at > config_.max_time_s) return;  // stop generating work past the horizon
  simulator_.schedule_at(at, [this, u] { on_scan(u); });
}

void ProtocolSim::on_scan(int u) {
  if (!active_[static_cast<size_t>(u)]) return;
  if (simulator_.now() >= deactivation_time_[static_cast<size_t>(u)]) {
    // The viewer switched off: leave the current AP and stop scanning.
    active_[static_cast<size_t>(u)] = false;
    apply_move(u, wlan::kNoAp);
    return;
  }
  const auto n_neighbors =
      static_cast<int64_t>(sc_.aps_of_user(u).size());
  counters_.queries += n_neighbors;
  counters_.responses += n_neighbors;
  if (n_neighbors > 0) {
    // Failure injection: each query and each response can be lost
    // independently. The user decides among the APs it actually heard from;
    // if its own AP did not answer it defers entirely (it cannot score
    // "stay" against the alternatives on stale information).
    std::vector<int> heard;
    if (config_.message_loss_prob > 0.0) {
      for (const int a : sc_.aps_of_user(u)) {
        const bool query_lost = rng_.next_bool(config_.message_loss_prob);
        const bool response_lost =
            !query_lost && rng_.next_bool(config_.message_loss_prob);
        if (query_lost || response_lost) {
          ++counters_.lost_messages;
        } else {
          heard.push_back(a);
        }
      }
    } else {
      heard = sc_.aps_of_user(u);
    }

    const int current = users_[static_cast<size_t>(u)].ap;
    const bool current_heard =
        current == wlan::kNoAp ||
        std::find(heard.begin(), heard.end(), current) != heard.end();
    if (!heard.empty() && current_heard) {
      // Responses are all in after a query/response round trip; the user
      // then decides on that (by now possibly stale) information.
      simulator_.schedule_in(2.0 * config_.latency_s, [this, u, heard] {
        on_decide(u, snapshot_neighbors(sc_, u, aps_), heard);
      });
    } else {
      ++counters_.deferred_scans;
    }
  }
  schedule_scan(u, simulator_.now() + config_.scan_period_s);
}

void ProtocolSim::on_decide(int u, std::vector<std::vector<int>> snapshot,
                            const std::vector<int>& heard) {
  if (!active_[static_cast<size_t>(u)]) return;  // left between scan and decide
  ++counters_.decisions;
  const int current = users_[static_cast<size_t>(u)].ap;
  const int target =
      assoc::choose_best_ap_among(sc_, u, snapshot, current, config_.policy, heard);
  if (target == current) return;
  // The (re)association request can itself be lost; the user simply retries
  // on a later scan.
  if (config_.message_loss_prob > 0.0 && rng_.next_bool(config_.message_loss_prob)) {
    ++counters_.lost_messages;
    return;
  }
  // The (re)association message takes one more latency to reach the AP.
  simulator_.schedule_in(config_.latency_s, [this, u, target] { apply_move(u, target); });
}

void ProtocolSim::apply_move(int u, int target) {
  const int current = users_[static_cast<size_t>(u)].ap;
  if (target == current) return;

  if (target != wlan::kNoAp) {
    ++counters_.joins;
    // Admission control at the AP: state may have moved on since the user's
    // snapshot, so re-check the budget with live membership.
    if (config_.policy.enforce_budget) {
      auto& m = aps_[static_cast<size_t>(target)].members;
      m.push_back(u);
      const double load =
          wlan::ap_load_for_members(sc_, target, m, config_.policy.multi_rate);
      m.pop_back();
      if (util::exceeds_budget(load, sc_.load_budget())) {
        ++counters_.rejections;
        return;  // stay with the current AP
      }
    }
  }

  if (current != wlan::kNoAp) {
    ++counters_.leaves;
    auto& m = aps_[static_cast<size_t>(current)].members;
    const auto it = std::find(m.begin(), m.end(), u);
    WMCAST_ASSERT(it != m.end(), "ProtocolSim: member list out of sync");
    m.erase(it);
  }
  if (target != wlan::kNoAp) aps_[static_cast<size_t>(target)].members.push_back(u);
  users_[static_cast<size_t>(u)].ap = target;

  last_change_s_ = simulator_.now();
  trace_.push_back(TraceEntry{simulator_.now(), u, current, target});
}

SimOutcome ProtocolSim::run() {
  util::require(!started_, "ProtocolSim: run() may only be called once");
  started_ = true;

  for (int u = 0; u < sc_.n_users(); ++u) {
    const double jitter =
        config_.phase_jitter_s > 0.0 ? rng_.uniform(0.0, config_.phase_jitter_s) : 0.0;
    users_[static_cast<size_t>(u)].phase_s = jitter;
    const double first = activation_time_[static_cast<size_t>(u)] + jitter;
    last_first_scan_s_ = std::max(last_first_scan_s_, first);
    schedule_scan(u, first);
    // A pending departure is scheduled activity too: it fires at the first
    // scan after its time, so hold off quiescence until then.
    const double deact = deactivation_time_[static_cast<size_t>(u)];
    if (deact < config_.max_time_s) {
      last_first_scan_s_ =
          std::max(last_first_scan_s_, deact + config_.scan_period_s + jitter);
    }
  }

  while (!simulator_.empty()) {
    simulator_.step();
    // Quiescence only counts once every user has joined the protocol —
    // a late activation (activate_user_at) is pending activity, not quiet.
    const double idle_since = std::max(last_change_s_, last_first_scan_s_);
    if (simulator_.now() - idle_since > config_.quiet_period_s) break;
    if (simulator_.now() > config_.max_time_s) break;
  }

  SimOutcome out;
  out.assoc = wlan::Association::none(sc_.n_users());
  for (int u = 0; u < sc_.n_users(); ++u) {
    out.assoc.user_ap[static_cast<size_t>(u)] = users_[static_cast<size_t>(u)].ap;
  }
  out.converged = simulator_.now() - std::max(last_change_s_, last_first_scan_s_) >
                  config_.quiet_period_s;
  out.last_change_s = last_change_s_;
  out.end_time_s = simulator_.now();
  out.counters = counters_;
  out.trace = std::move(trace_);
  return out;
}

}  // namespace wmcast::sim
