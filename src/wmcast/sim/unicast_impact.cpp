#include "wmcast/sim/unicast_impact.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/util/assert.hpp"

namespace wmcast::sim {

UnicastImpactResult measure_unicast_impact(const wlan::Scenario& sc,
                                           const wlan::Association& assoc,
                                           const UnicastImpactConfig& config,
                                           util::Rng& rng) {
  util::require(sc.has_geometry(), "measure_unicast_impact: needs a geometric scenario");
  util::require(config.n_unicast_clients >= 0, "measure_unicast_impact: bad client count");

  const auto loads = wlan::compute_loads(sc, assoc);

  // Place unicast clients; each attaches to the nearest AP in range.
  // The area bounds are inferred from the existing node positions.
  double side = 0.0;
  for (const auto& p : sc.ap_positions()) side = std::max({side, p.x, p.y});
  for (const auto& p : sc.user_positions()) side = std::max({side, p.x, p.y});

  const auto table = wlan::RateTable::ieee80211a();
  std::vector<std::vector<UnicastClient>> clients(static_cast<size_t>(sc.n_aps()));
  int placed = 0;
  for (int c = 0; c < config.n_unicast_clients; ++c) {
    const wlan::Point pos{rng.uniform(0.0, side), rng.uniform(0.0, side)};
    int best_ap = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (int a = 0; a < sc.n_aps(); ++a) {
      const double d = wlan::distance(sc.ap_positions()[static_cast<size_t>(a)], pos);
      if (d < best_d) {
        best_d = d;
        best_ap = a;
      }
    }
    if (best_ap < 0) continue;
    const double rate = table.rate_for_distance(best_d);
    if (rate <= 0.0) continue;  // out of everyone's range
    clients[static_cast<size_t>(best_ap)].push_back(UnicastClient{rate});
    ++placed;
  }

  UnicastImpactResult res;
  res.clients_placed = placed;
  res.worst_client_goodput_mbps = std::numeric_limits<double>::infinity();
  double goodput_sum = 0.0;
  int goodput_count = 0;

  for (int a = 0; a < sc.n_aps(); ++a) {
    std::vector<MulticastFlow> flows;
    for (int s = 0; s < sc.n_sessions(); ++s) {
      const double tx = loads.tx_rate[static_cast<size_t>(a)][static_cast<size_t>(s)];
      if (tx > 0.0) flows.push_back(MulticastFlow{sc.session_rate(s), tx});
    }
    const auto& uc = clients[static_cast<size_t>(a)];
    if (flows.empty() && uc.empty()) continue;

    const auto r = simulate_ap_channel(flows, uc, config.channel);
    res.total_goodput_mbps += r.total_unicast_goodput_mbps;
    res.total_multicast_busy += r.multicast_busy_fraction;
    res.max_multicast_busy = std::max(res.max_multicast_busy, r.multicast_busy_fraction);
    if (!flows.empty()) {
      for (const double g : r.unicast_goodput_mbps) {
        res.worst_client_goodput_mbps = std::min(res.worst_client_goodput_mbps, g);
      }
    }
    for (const double g : r.unicast_goodput_mbps) {
      goodput_sum += g;
      ++goodput_count;
    }
  }
  if (res.worst_client_goodput_mbps == std::numeric_limits<double>::infinity()) {
    res.worst_client_goodput_mbps = 0.0;
  }
  res.mean_client_goodput_mbps = goodput_count > 0 ? goodput_sum / goodput_count : 0.0;
  return res;
}

}  // namespace wmcast::sim
