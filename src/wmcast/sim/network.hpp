// ProtocolSim: the discrete-event simulation of the distributed association
// protocols. This is the substrate standing in for the paper's ns-2 runs
// (see DESIGN.md's substitution table): it reproduces the protocol dynamics
// — message latencies, stale snapshots, convergence and oscillation — while
// the fast round engine (assoc::distributed_associate) reproduces the
// steady-state associations for parameter sweeps.
#pragma once

#include <vector>

#include "wmcast/sim/agents.hpp"
#include "wmcast/sim/event_queue.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/association.hpp"

namespace wmcast::sim {

struct SimOutcome {
  wlan::Association assoc;
  bool converged = false;
  double last_change_s = 0.0;  // time of the final association change
  double end_time_s = 0.0;
  SimCounters counters;
  std::vector<TraceEntry> trace;
};

class ProtocolSim {
 public:
  ProtocolSim(const wlan::Scenario& sc, const SimConfig& config, util::Rng rng);

  /// Starts from an existing association instead of all-unassociated
  /// (used to reproduce Fig. 4, which begins from a given configuration).
  void set_initial(const wlan::Association& assoc);

  /// Delays user `u`'s first scan to `time_s` (default 0): models late
  /// joiners. Call before run().
  void activate_user_at(int u, double time_s);

  /// Schedules user `u` to leave the network at `time_s`: it disassociates
  /// (one leave message) and stops scanning. Models viewers switching off
  /// (session churn in the DES). Call before run().
  void deactivate_user_at(int u, double time_s);

  /// Runs until quiescence (no association change for quiet_period_s) or
  /// until max_time_s. One run per ProtocolSim instance.
  SimOutcome run();

 private:
  void schedule_scan(int u, double at);
  void on_scan(int u);
  void on_decide(int u, std::vector<std::vector<int>> snapshot,
                 const std::vector<int>& heard);
  void apply_move(int u, int target);

  const wlan::Scenario& sc_;
  SimConfig config_;
  util::Rng rng_;
  Simulator simulator_;

  std::vector<ApAgent> aps_;
  std::vector<UserAgent> users_;
  std::vector<double> activation_time_;
  std::vector<double> deactivation_time_;  // infinity = never leaves
  std::vector<bool> active_;
  SimCounters counters_;
  std::vector<TraceEntry> trace_;
  double last_change_s_ = 0.0;
  double last_first_scan_s_ = 0.0;  // when the last user starts participating
  bool started_ = false;
};

}  // namespace wmcast::sim
