// Minimal deterministic discrete-event core. Events at equal timestamps fire
// in scheduling order (monotone sequence numbers), so runs are reproducible.
#pragma once

#include <functional>
#include <queue>
#include <vector>

namespace wmcast::sim {

class Simulator {
 public:
  using Handler = std::function<void()>;

  double now() const { return now_; }
  int64_t processed() const { return processed_; }

  /// Schedules `h` to run `delay_s` seconds from now (delay_s >= 0).
  void schedule_in(double delay_s, Handler h);
  /// Schedules `h` at absolute time `time_s` (>= now).
  void schedule_at(double time_s, Handler h);

  bool empty() const { return queue_.empty(); }
  /// Runs the next event; returns false when the queue is empty.
  bool step();
  /// Runs events with timestamp <= t_end; returns the number processed.
  int64_t run_until(double t_end);

 private:
  struct Event {
    double time;
    int64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  int64_t next_seq_ = 0;
  int64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace wmcast::sim
