#include "wmcast/sim/agents.hpp"

#include "wmcast/util/assert.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::sim {

// Builds the member-list snapshot a user's query round collects: only the
// neighboring APs answer, so only their member lists are populated (the
// decision policy never reads the others).
std::vector<std::vector<int>> snapshot_neighbors(const wlan::Scenario& sc, int u,
                                                 const std::vector<ApAgent>& aps) {
  std::vector<std::vector<int>> snapshot(static_cast<size_t>(sc.n_aps()));
  for (const int a : sc.aps_of_user(u)) {
    snapshot[static_cast<size_t>(a)] = aps[static_cast<size_t>(a)].members;
  }
  return snapshot;
}

}  // namespace wmcast::sim
