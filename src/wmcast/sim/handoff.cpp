#include "wmcast/sim/handoff.hpp"

#include <algorithm>

#include "wmcast/util/assert.hpp"

namespace wmcast::sim {

DisruptionReport account_disruptions(const std::vector<wlan::Association>& snapshots,
                                     const HandoffModel& model) {
  util::require(model.handoff_interruption_s >= 0.0 && model.rejoin_interruption_s >= 0.0,
                "account_disruptions: negative interruption times");
  DisruptionReport rep;
  if (snapshots.size() < 2) return rep;

  const int n_users = snapshots.front().n_users();
  rep.per_user_s.assign(static_cast<size_t>(n_users), 0.0);

  for (size_t k = 1; k < snapshots.size(); ++k) {
    util::require(snapshots[k].n_users() == n_users,
                  "account_disruptions: snapshot size mismatch");
    for (int u = 0; u < n_users; ++u) {
      const int before = snapshots[k - 1].ap_of(u);
      const int after = snapshots[k].ap_of(u);
      if (before == after) continue;
      double cost = 0.0;
      if (before == wlan::kNoAp) {
        ++rep.joins;
        cost = model.rejoin_interruption_s;  // initial join: scanning from scratch
      } else if (after == wlan::kNoAp) {
        ++rep.drops;
        cost = model.rejoin_interruption_s;
      } else {
        ++rep.handoffs;
        cost = model.handoff_interruption_s;
      }
      rep.per_user_s[static_cast<size_t>(u)] += cost;
      rep.total_disruption_s += cost;
    }
  }
  for (const double d : rep.per_user_s) {
    rep.worst_user_disruption_s = std::max(rep.worst_user_disruption_s, d);
  }
  return rep;
}

}  // namespace wmcast::sim
