// Network-wide unicast-impact study: drops saturated unicast clients into
// the WLAN, attaches them to their strongest-signal AP (unicast association
// is out of the paper's scope and left as-is), and runs the frame-level
// channel simulator on every AP under a given multicast association. This
// turns the paper's motivation — "multicast services must minimally impact
// existing unicast services" — into a measurable quantity.
#pragma once

#include "wmcast/sim/ap_channel.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/association.hpp"

namespace wmcast::sim {

struct UnicastImpactConfig {
  int n_unicast_clients = 100;
  ApChannelConfig channel;
};

struct UnicastImpactResult {
  /// Aggregate unicast goodput over all APs, Mbps.
  double total_goodput_mbps = 0.0;
  /// Lowest per-client goodput among clients on APs that carry multicast —
  /// the users the streams hurt most.
  double worst_client_goodput_mbps = 0.0;
  double mean_client_goodput_mbps = 0.0;
  /// Busiest AP's measured multicast fraction (empirical Definition 1).
  double max_multicast_busy = 0.0;
  double total_multicast_busy = 0.0;  // sum over APs
  int clients_placed = 0;
};

/// Places `config.n_unicast_clients` clients uniformly in the scenario's
/// area (geometric scenarios only) and simulates every AP's channel under
/// the multicast transmissions induced by `assoc`.
UnicastImpactResult measure_unicast_impact(const wlan::Scenario& sc,
                                           const wlan::Association& assoc,
                                           const UnicastImpactConfig& config,
                                           util::Rng& rng);

}  // namespace wmcast::sim
