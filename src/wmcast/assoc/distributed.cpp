#include "wmcast/assoc/distributed.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "wmcast/util/assert.hpp"

namespace wmcast::assoc {

namespace {

uint64_t fnv1a_hash(const std::vector<int>& v) {
  uint64_t h = 1469598103934665603ull;
  for (const int x : v) {
    for (int byte = 0; byte < 4; ++byte) {
      h ^= static_cast<uint64_t>((x >> (8 * byte)) & 0xff);
      h *= 1099511628211ull;
    }
  }
  return h;
}

void move_user(std::vector<std::vector<int>>& members, std::vector<int>& user_ap, int u,
               int to) {
  const int from = user_ap[static_cast<size_t>(u)];
  if (from == to) return;
  if (from != wlan::kNoAp) {
    auto& m = members[static_cast<size_t>(from)];
    const auto it = std::find(m.begin(), m.end(), u);
    WMCAST_ASSERT(it != m.end(), "distributed: member list out of sync");
    m.erase(it);
  }
  if (to != wlan::kNoAp) members[static_cast<size_t>(to)].push_back(u);
  user_ap[static_cast<size_t>(u)] = to;
}

std::string algorithm_name(const DistributedParams& p) {
  return p.objective == Objective::kLoadVector ? "BLA-D" : "MNU/MLA-D";
}

}  // namespace

Solution distributed_associate(const wlan::Scenario& sc, util::Rng& rng,
                               const DistributedParams& params,
                               core::AssocWorkspace* workspace) {
  const auto t0 = std::chrono::steady_clock::now();

  core::AssocWorkspace local_ws;
  core::AssocWorkspace& ws = workspace != nullptr ? *workspace : local_ws;
  ws.prepare(sc.n_aps(), sc.n_users());

  std::vector<int>& order = ws.scratch;
  order = params.order;
  if (order.empty()) {
    order = util::iota_permutation(sc.n_users());
    rng.shuffle(order);
  }
  util::require(static_cast<int>(order.size()) == sc.n_users(),
                "distributed_associate: order must list every user exactly once");

  PolicyParams policy;
  policy.objective = params.objective;
  policy.enforce_budget = params.enforce_budget;
  policy.multi_rate = params.multi_rate;

  std::vector<int>& user_ap = ws.user_ap;
  std::vector<std::vector<int>>& members = ws.members;
  if (!params.initial.user_ap.empty()) {
    util::require(params.initial.n_users() == sc.n_users(),
                  "distributed_associate: initial association size mismatch");
    for (int u = 0; u < sc.n_users(); ++u) {
      const int a = params.initial.ap_of(u);
      if (a == wlan::kNoAp) continue;
      util::require(a >= 0 && a < sc.n_aps() && sc.in_range(a, u),
                    "distributed_associate: invalid initial association");
      user_ap[static_cast<size_t>(u)] = a;
      members[static_cast<size_t>(a)].push_back(u);
    }
  }

  int rounds = 0;
  bool converged = false;
  std::unordered_set<uint64_t> seen_states;
  seen_states.insert(fnv1a_hash(user_ap));

  for (int round = 0; round < params.max_rounds; ++round) {
    ++rounds;
    bool changed = false;

    if (params.mode == UpdateMode::kSequential) {
      for (const int u : order) {
        const int target = choose_best_ap(sc, u, members, user_ap[static_cast<size_t>(u)],
                                          policy);
        if (target != user_ap[static_cast<size_t>(u)]) {
          move_user(members, user_ap, u, target);
          changed = true;
        }
      }
    } else {
      // Everyone decides against the same snapshot, then all moves apply.
      std::vector<int>& decision = ws.decision;
      decision.assign(static_cast<size_t>(sc.n_users()), wlan::kNoAp);
      for (const int u : order) {
        decision[static_cast<size_t>(u)] =
            choose_best_ap(sc, u, members, user_ap[static_cast<size_t>(u)], policy);
      }
      for (const int u : order) {
        if (decision[static_cast<size_t>(u)] != user_ap[static_cast<size_t>(u)]) {
          move_user(members, user_ap, u, decision[static_cast<size_t>(u)]);
          changed = true;
        }
      }
    }

    if (!changed) {
      converged = true;
      break;
    }
    if (params.mode == UpdateMode::kSimultaneous) {
      // Revisiting a state under deterministic simultaneous updates means a
      // cycle: the protocol will oscillate forever (paper Fig. 4).
      if (!seen_states.insert(fnv1a_hash(user_ap)).second) break;
    }
  }

  // Copy (not move) the assignment out so the workspace stays reusable.
  Solution sol = make_solution(algorithm_name(params), sc, wlan::Association{user_ap},
                               params.multi_rate);
  sol.rounds = rounds;
  sol.converged = converged;
  sol.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return sol;
}

Solution distributed_mnu(const wlan::Scenario& sc, util::Rng& rng) {
  DistributedParams p;
  p.objective = Objective::kTotalLoad;
  Solution sol = distributed_associate(sc, rng, p);
  sol.algorithm = "MNU-D";
  return sol;
}

Solution distributed_mla(const wlan::Scenario& sc, util::Rng& rng) {
  DistributedParams p;
  p.objective = Objective::kTotalLoad;
  Solution sol = distributed_associate(sc, rng, p);
  sol.algorithm = "MLA-D";
  return sol;
}

Solution distributed_bla(const wlan::Scenario& sc, util::Rng& rng) {
  DistributedParams p;
  p.objective = Objective::kLoadVector;
  Solution sol = distributed_associate(sc, rng, p);
  sol.algorithm = "BLA-D";
  return sol;
}

}  // namespace wmcast::assoc
