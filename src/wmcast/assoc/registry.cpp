#include "wmcast/assoc/registry.hpp"

#include <algorithm>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/kconn.hpp"
#include "wmcast/assoc/local_search.hpp"
#include "wmcast/assoc/single_session.hpp"
#include "wmcast/assoc/ssa.hpp"
#include "wmcast/ext/locks.hpp"
#include "wmcast/util/assert.hpp"

namespace wmcast::assoc {

const std::vector<std::string>& algorithm_names() {
  static const std::vector<std::string> kNames = {
      "ssa",   "mla-c", "bla-c",        "mnu-c",        "mla-d",       "bla-d",
      "mnu-d", "lock-d", "local-search", "mnu-1session", "bla-1session"};
  return kNames;
}

bool is_algorithm(const std::string& name) {
  const auto& names = algorithm_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

Solution solve_by_name(const std::string& name, const wlan::Scenario& sc,
                       util::Rng& rng, const SolveOptions& options) {
  util::require(options.k >= 1, "solve_by_name: k must be >= 1");
  CentralizedParams cp;
  cp.multi_rate = options.multi_rate;
  cp.k = options.k;
  DistributedParams dp;
  dp.multi_rate = options.multi_rate;
  // The distributed / lock / single-session protocols are inherently
  // single-AP: every user decision picks exactly one AP.
  const bool single_ap_only = name == "mla-d" || name == "bla-d" || name == "mnu-d" ||
                              name == "lock-d" || name == "mnu-1session" ||
                              name == "bla-1session";
  util::require(options.k == 1 || !single_ap_only,
                "solve_by_name: '" + name + "' does not support k >= 2");

  if (name == "ssa") {
    SsaParams sp;
    sp.multi_rate = options.multi_rate;
    sp.k = options.k;
    return ssa_associate(sc, rng, sp);
  }
  if (name == "mla-c") return centralized_mla(sc, cp);
  if (name == "bla-c") return centralized_bla(sc, cp);
  if (name == "mnu-c") return centralized_mnu(sc, cp);
  if (name == "mla-d") {
    dp.objective = Objective::kTotalLoad;
    Solution sol = distributed_associate(sc, rng, dp);
    sol.algorithm = "MLA-D";
    return sol;
  }
  if (name == "bla-d") {
    dp.objective = Objective::kLoadVector;
    Solution sol = distributed_associate(sc, rng, dp);
    sol.algorithm = "BLA-D";
    return sol;
  }
  if (name == "mnu-d") {
    dp.objective = Objective::kTotalLoad;
    Solution sol = distributed_associate(sc, rng, dp);
    sol.algorithm = "MNU-D";
    return sol;
  }
  if (name == "lock-d") return ext::lock_coordinated_associate(sc, rng, dp);
  if (name == "local-search") {
    const Solution start = ssa_associate(sc, rng);
    LocalSearchParams lp;
    lp.multi_rate = options.multi_rate;
    Solution sol = local_search(sc, start.assoc, lp);
    if (options.k >= 2) {
      KconnParams kp;
      kp.k = options.k;
      kp.multi_rate = options.multi_rate;
      finalize_kconn(sc, sol, kp);
    }
    return sol;
  }
  if (name == "mnu-1session") return single_session_mnu(sc);
  if (name == "bla-1session") return single_session_bla(sc);

  util::require(false, "solve_by_name: unknown algorithm '" + name + "'");
  return {};  // unreachable
}

}  // namespace wmcast::assoc
