#include "wmcast/assoc/ssa.hpp"
#include "wmcast/util/fp.hpp"

#include <chrono>

#include "wmcast/util/assert.hpp"

namespace wmcast::assoc {

Solution ssa_associate(const wlan::Scenario& sc, util::Rng& rng, const SsaParams& params) {
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<int> order = util::iota_permutation(sc.n_users());
  rng.shuffle(order);

  auto assoc = wlan::Association::none(sc.n_users());
  std::vector<std::vector<int>> members(static_cast<size_t>(sc.n_aps()));

  for (const int u : order) {
    const int a = sc.strongest_ap(u);
    if (a == wlan::kNoAp) continue;
    auto& m = members[static_cast<size_t>(a)];
    m.push_back(u);
    if (params.enforce_budget &&
        util::exceeds_budget(wlan::ap_load_for_members(sc, a, m, params.multi_rate),
                             sc.load_budget())) {
      m.pop_back();  // rejected: the strongest AP is the only one SSA tries
      continue;
    }
    assoc.user_ap[static_cast<size_t>(u)] = a;
  }

  Solution sol = make_solution("SSA", sc, std::move(assoc), params.multi_rate);
  sol.solve_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return sol;
}

}  // namespace wmcast::assoc
