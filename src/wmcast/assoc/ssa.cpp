#include "wmcast/assoc/ssa.hpp"
#include "wmcast/util/fp.hpp"

#include <algorithm>
#include <chrono>

#include "wmcast/util/assert.hpp"

namespace wmcast::assoc {

Solution ssa_associate(const wlan::Scenario& sc, util::Rng& rng, const SsaParams& params) {
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<int> order = util::iota_permutation(sc.n_users());
  rng.shuffle(order);

  auto assoc = wlan::Association::none(sc.n_users());
  std::vector<std::vector<int>> members(static_cast<size_t>(sc.n_aps()));

  for (const int u : order) {
    const int a = sc.strongest_ap(u);
    if (a == wlan::kNoAp) continue;
    auto& m = members[static_cast<size_t>(a)];
    m.push_back(u);
    if (params.enforce_budget &&
        util::exceeds_budget(wlan::ap_load_for_members(sc, a, m, params.multi_rate),
                             sc.load_budget())) {
      m.pop_back();  // rejected: the strongest AP is the only one SSA tries
      continue;
    }
    assoc.user_ap[static_cast<size_t>(u)] = a;
  }

  // k-connectivity pass (no-op at k == 1): in the same arrival order, each
  // served user adopts its next-strongest heard APs under the same budget
  // gate. Secondaries join the AP's shared member list, so later budget
  // probes see the load they add.
  wlan::MultiAssociation multi;
  if (params.k >= 2) {
    multi = wlan::MultiAssociation::from_single(assoc);
    for (const int u : order) {
      const int primary = assoc.ap_of(u);
      if (primary == wlan::kNoAp) continue;
      auto& sv = multi.user_aps[static_cast<size_t>(u)];
      const wlan::IndexSpan heard = sc.aps_of_user(u);
      const int cap = std::min(params.k, static_cast<int>(heard.size()));
      for (size_t i = 0; i < heard.size() && static_cast<int>(sv.size()) < cap; ++i) {
        const int a = heard[i];
        if (a == primary) continue;
        auto& m = members[static_cast<size_t>(a)];
        m.push_back(u);
        if (params.enforce_budget &&
            util::exceeds_budget(wlan::ap_load_for_members(sc, a, m, params.multi_rate),
                                 sc.load_budget())) {
          m.pop_back();
          continue;
        }
        sv.insert(std::upper_bound(sv.begin(), sv.end(), a), a);
      }
    }
  }

  Solution sol = make_solution("SSA", sc, std::move(assoc), params.multi_rate);
  if (params.k >= 2) {
    sol.k = params.k;
    sol.multi = std::move(multi);
    sol.multi_loads = wlan::compute_multi_loads(sc, sol.multi, params.multi_rate);
  }
  sol.solve_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return sol;
}

}  // namespace wmcast::assoc
