// Name-based solver dispatch: one place mapping algorithm names to runners,
// shared by the CLI, scripts, and user code that selects algorithms from
// configuration. Names match the CLI's --algorithm values.
#pragma once

#include <string>
#include <vector>

#include "wmcast/assoc/solution.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

struct SolveOptions {
  bool multi_rate = true;
  /// Maximum serving APs per user (DESIGN.md §15). k == 1 is the paper's
  /// single-AP model for every solver. k >= 2 is supported by ssa, the
  /// centralized family (mla-c/bla-c/mnu-c) and local-search; the distributed
  /// / lock / single-session solvers reject it (their decision protocols are
  /// inherently single-AP).
  int k = 1;
};

/// Names accepted by solve_by_name, in presentation order.
const std::vector<std::string>& algorithm_names();

/// True when `name` is a registered algorithm.
bool is_algorithm(const std::string& name);

/// Runs the named algorithm. Throws std::invalid_argument for unknown names
/// or when the algorithm's preconditions fail (e.g. the single-session
/// specializations on multi-session scenarios).
Solution solve_by_name(const std::string& name, const wlan::Scenario& sc,
                       util::Rng& rng, const SolveOptions& options = {});

}  // namespace wmcast::assoc
