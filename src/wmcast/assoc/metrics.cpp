#include <algorithm>

#include "wmcast/assoc/policy.hpp"
#include "wmcast/assoc/solution.hpp"
#include "wmcast/util/assert.hpp"
#include "wmcast/util/fp.hpp"
#include "wmcast/wlan/association.hpp"

namespace wmcast::assoc {

Solution make_solution(std::string algorithm, const wlan::Scenario& sc,
                       wlan::Association assoc, bool multi_rate) {
  Solution sol;
  sol.algorithm = std::move(algorithm);
  sol.loads = wlan::compute_loads(sc, assoc, multi_rate);
  sol.assoc = std::move(assoc);
  return sol;
}

namespace {

/// Lexicographic comparison of two load vectors sorted non-increasing, with
/// tolerance: a < b iff at the first position where they differ by more than
/// eps, a's entry is smaller (footnote 5 of the paper).
bool vector_less(const std::vector<double>& a, const std::vector<double>& b, double eps) {
  WMCAST_ASSERT(a.size() == b.size(), "vector_less: length mismatch");
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i] - eps) return true;
    if (a[i] > b[i] + eps) return false;
  }
  return false;
}

}  // namespace

int choose_best_ap(const wlan::Scenario& sc, int u,
                   const std::vector<std::vector<int>>& members, int current_ap,
                   const PolicyParams& params) {
  return choose_best_ap_among(sc, u, members, current_ap, params, sc.aps_of_user(u));
}

int choose_best_ap_among(const wlan::Scenario& sc, int u,
                         const std::vector<std::vector<int>>& members, int current_ap,
                         const PolicyParams& params, wlan::IndexSpan heard_aps) {
  const auto neighbors = heard_aps;  // strongest signal first; view, no copy
  if (neighbors.empty()) return current_ap;

  // Per-neighbor loads without u, and with u joined.
  std::vector<double> load_without(neighbors.size());
  std::vector<double> load_with(neighbors.size());
  std::vector<int> scratch;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    const int a = neighbors[i];
    scratch = members[static_cast<size_t>(a)];
    if (a == current_ap) {
      const auto it = std::find(scratch.begin(), scratch.end(), u);
      WMCAST_ASSERT(it != scratch.end(), "choose_best_ap: current AP lacks the user");
      scratch.erase(it);
    }
    load_without[i] = wlan::ap_load_for_members(sc, a, scratch, params.multi_rate);
    scratch.push_back(u);
    load_with[i] = wlan::ap_load_for_members(sc, a, scratch, params.multi_rate);
  }

  // Score of associating with neighbors[i]; kTotalLoad uses a scalar, and
  // kLoadVector the sorted non-increasing vector.
  auto scalar_score = [&](size_t i) {
    double total = 0.0;
    for (size_t k = 0; k < neighbors.size(); ++k) {
      total += (k == i) ? load_with[k] : load_without[k];
    }
    return total;
  };
  auto vector_score = [&](size_t i) {
    std::vector<double> v(neighbors.size());
    for (size_t k = 0; k < neighbors.size(); ++k) {
      v[k] = (k == i) ? load_with[k] : load_without[k];
    }
    std::sort(v.begin(), v.end(), std::greater<>());
    return v;
  };
  auto feasible = [&](size_t i) {
    return !params.enforce_budget || util::fits_budget(load_with[i], sc.load_budget());
  };

  // Best candidate among all feasible neighbors; the strongest-first iteration
  // order makes signal strength the tie-breaker.
  int best_ap = wlan::kNoAp;
  double best_scalar = 0.0;
  std::vector<double> best_vector;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (!feasible(i)) continue;
    if (params.objective == Objective::kTotalLoad) {
      const double s = scalar_score(i);
      if (best_ap == wlan::kNoAp || s < best_scalar - params.eps) {
        best_ap = neighbors[i];
        best_scalar = s;
      }
    } else {
      auto v = vector_score(i);
      if (best_ap == wlan::kNoAp || vector_less(v, best_vector, params.eps)) {
        best_ap = neighbors[i];
        best_vector = std::move(v);
      }
    }
  }

  if (best_ap == wlan::kNoAp) {
    // No feasible AP: an associated user keeps its AP (it was feasible when
    // it joined), an unassociated one stays out.
    return current_ap;
  }
  if (current_ap == wlan::kNoAp || best_ap == current_ap) return best_ap;

  // Move only on strict improvement over staying put.
  const auto cur = static_cast<size_t>(
      std::find(neighbors.begin(), neighbors.end(), current_ap) - neighbors.begin());
  WMCAST_ASSERT(cur < neighbors.size(), "choose_best_ap: current AP not a neighbor");
  if (params.objective == Objective::kTotalLoad) {
    return best_scalar < scalar_score(cur) - params.eps ? best_ap : current_ap;
  }
  return vector_less(best_vector, vector_score(cur), params.eps) ? best_ap : current_ap;
}

int choose_best_ap(const wlan::Scenario& sc, const wlan::LoadModel& model, int u,
                   int current_ap, const PolicyParams& params) {
  const auto neighbors = sc.aps_of_user(u);
  if (neighbors.empty()) return current_ap;
  const double* rates = sc.rates_of_user(u);
  const int s_u = sc.user_session(u);

  // Per-neighbor loads without u, and with u joined — the same values the
  // member-list rescans produce, via O(levels) model probes.
  std::vector<double> load_without(neighbors.size());
  std::vector<double> load_with(neighbors.size());
  for (size_t i = 0; i < neighbors.size(); ++i) {
    const int a = neighbors[i];
    if (a == current_ap) {
      load_without[i] = model.load_without(a, s_u, rates[i]);
      load_with[i] = model.load(a);
    } else {
      load_without[i] = model.load(a);
      load_with[i] = model.load_with(a, s_u, rates[i]);
    }
  }

  auto scalar_score = [&](size_t i) {
    double total = 0.0;
    for (size_t k = 0; k < neighbors.size(); ++k) {
      total += (k == i) ? load_with[k] : load_without[k];
    }
    return total;
  };
  auto vector_score = [&](size_t i) {
    std::vector<double> v(neighbors.size());
    for (size_t k = 0; k < neighbors.size(); ++k) {
      v[k] = (k == i) ? load_with[k] : load_without[k];
    }
    std::sort(v.begin(), v.end(), std::greater<>());
    return v;
  };
  auto feasible = [&](size_t i) {
    return !params.enforce_budget || util::fits_budget(load_with[i], sc.load_budget());
  };

  int best_ap = wlan::kNoAp;
  double best_scalar = 0.0;
  std::vector<double> best_vector;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (!feasible(i)) continue;
    if (params.objective == Objective::kTotalLoad) {
      const double s = scalar_score(i);
      if (best_ap == wlan::kNoAp || s < best_scalar - params.eps) {
        best_ap = neighbors[i];
        best_scalar = s;
      }
    } else {
      auto v = vector_score(i);
      if (best_ap == wlan::kNoAp || vector_less(v, best_vector, params.eps)) {
        best_ap = neighbors[i];
        best_vector = std::move(v);
      }
    }
  }

  if (best_ap == wlan::kNoAp) return current_ap;
  if (current_ap == wlan::kNoAp || best_ap == current_ap) return best_ap;

  const auto cur = static_cast<size_t>(
      std::find(neighbors.begin(), neighbors.end(), current_ap) - neighbors.begin());
  WMCAST_ASSERT(cur < neighbors.size(), "choose_best_ap: current AP not a neighbor");
  if (params.objective == Objective::kTotalLoad) {
    return best_scalar < scalar_score(cur) - params.eps ? best_ap : current_ap;
  }
  return vector_less(best_vector, vector_score(cur), params.eps) ? best_ap : current_ap;
}

}  // namespace wmcast::assoc
