#include "wmcast/assoc/kconn.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/util/assert.hpp"
#include "wmcast/util/fp.hpp"

namespace wmcast::assoc {

void kconn_scan_pmin(const wlan::Scenario& sc, const wlan::Association& base,
                     int a, KconnPlan& plan) {
  const int S = sc.n_sessions();
  double* pmin = plan.pmin.data() + plan.at(a, 0);
  int* pcount = plan.pcount.data() + plan.at(a, 0);
  for (int s = 0; s < S; ++s) {
    pmin[s] = std::numeric_limits<double>::infinity();
    pcount[s] = 0;
  }
  // Every base-served hearer contributes, including members of running
  // streams: the plan never reads pmin for a running session, but keeping the
  // row session-complete means a stream that later falls silent (its primary
  // members hand off or leave) already has the correct adopter min on hand —
  // no rescan is needed for the running→silent flip itself.
  const wlan::IndexSpan members = sc.users_of_ap(a);
  const double* rates = sc.rates_of_ap(a);
  for (size_t i = 0; i < members.size(); ++i) {
    const int u = members[i];
    if (base.ap_of(u) == wlan::kNoAp) continue;
    const int s = sc.user_session(u);
    if (rates[i] < pmin[s]) {
      pmin[s] = rates[i];
      pcount[s] = 1;
    } else if (rates[i] == pmin[s]) {
      ++pcount[s];
    }
  }
}

void kconn_plan_from_pmin(const wlan::Scenario& sc,
                          const wlan::LoadReport& base_loads,
                          const KconnParams& params, int a, KconnPlan& plan) {
  const int S = sc.n_sessions();
  double* advert = plan.advert.data() + plan.at(a, 0);
  char* startable = plan.startable.data() + plan.at(a, 0);
  const double* pmin = plan.pmin.data() + plan.at(a, 0);
  const std::vector<double>& base_tx = base_loads.tx_rate[static_cast<size_t>(a)];

  // Running streams advertise their base tx rate: a secondary whose link
  // sustains it joins without slowing the stream, so the member min — and
  // hence the AP's load — is untouched.
  for (int s = 0; s < S; ++s) {
    advert[s] = base_tx[static_cast<size_t>(s)];
    startable[s] = 0;
  }

  // Startable entries, budget-gated in session-ascending order with the
  // conservative estimate stream_rate / advert: the settled cost never
  // exceeds it (adopters are a subset of the potential adopters), so a gate
  // pass can never turn into a violation. For a silent session the pmin row
  // is exactly the potential-adopter min p (no hearer has a as primary, or
  // the stream would be running).
  double projected = base_loads.ap_load[static_cast<size_t>(a)];
  for (int s = 0; s < S; ++s) {
    if (advert[s] > 0.0) continue;  // running
    const double ps = pmin[s];
    if (ps == std::numeric_limits<double>::infinity()) continue;  // no adopters
    const double tx_est = params.multi_rate ? ps : sc.basic_rate();
    if (params.enforce_budget) {
      const double cost_est = sc.session_rate(s) / tx_est;
      if (util::exceeds_budget(projected + cost_est, sc.load_budget())) continue;
      projected += cost_est;
    }
    advert[s] = tx_est;
    startable[s] = 1;
  }
}

void kconn_plan_ap(const wlan::Scenario& sc, const wlan::Association& base,
                   const wlan::LoadReport& base_loads, const KconnParams& params,
                   int a, KconnPlan& plan) {
  kconn_scan_pmin(sc, base, a, plan);
  kconn_plan_from_pmin(sc, base_loads, params, a, plan);
}

void kconn_derive_user(const wlan::Scenario& sc, const wlan::Association& base,
                       const KconnPlan& plan, const KconnParams& params, int u,
                       std::vector<int>& served, KconnScratch& scratch) {
  served.clear();
  const int primary = base.ap_of(u);
  if (primary == wlan::kNoAp) return;  // base-unserved users stay unserved

  const wlan::IndexSpan heard = sc.aps_of_user(u);
  const double* rates = sc.rates_of_user(u);
  const int cap = std::min(params.k, static_cast<int>(heard.size()));
  const int need = cap - 1;
  if (need <= 0) {
    served.push_back(primary);
    return;
  }

  const int s = sc.user_session(u);
  auto& cands = scratch.cands;
  cands.clear();
  for (size_t i = 0; i < heard.size(); ++i) {
    const int a = heard[i];
    if (a == primary) continue;
    const double advert = plan.advert[plan.at(a, s)];
    // Decode filter: the user's link must sustain the advertised rate. For
    // startable streams this is automatic under multi-rate (advert is the min
    // over potential adopters, u among them); under the basic-rate model it
    // excludes links below the basic rate.
    if (advert <= 0.0 || rates[i] < advert) continue;
    cands.push_back({advert, plan.startable[plan.at(a, s)] != 0 ? 1 : 0, a});
  }
  const int take = std::min(need, static_cast<int>(cands.size()));
  if (take > 0) {
    // Strongest advertised rate first; free (running) adoptions beat stream
    // starts at equal rate; AP id breaks the remaining ties deterministically.
    std::partial_sort(cands.begin(), cands.begin() + take, cands.end(),
                      [](const KconnScratch::Candidate& x,
                         const KconnScratch::Candidate& y) {
                        if (x.advert != y.advert) return x.advert > y.advert;
                        if (x.tier != y.tier) return x.tier < y.tier;
                        return x.ap < y.ap;
                      });
  }
  served.push_back(primary);
  for (int i = 0; i < take; ++i) served.push_back(cands[static_cast<size_t>(i)].ap);
  std::sort(served.begin(), served.end());
}

void kconn_settle_ap(const wlan::Scenario& sc, const wlan::LoadReport& base_loads,
                     const KconnParams& params, const KconnPlan& plan,
                     const wlan::MultiAssociation& multi, int a, double* tx_row) {
  const int S = sc.n_sessions();
  const std::vector<double>& base_tx = base_loads.tx_rate[static_cast<size_t>(a)];
  thread_local std::vector<double> min_rate;
  min_rate.assign(static_cast<size_t>(S), std::numeric_limits<double>::infinity());

  // Adopter min per session over this AP's started streams. Running streams
  // never need the scan: every joiner decodes at >= the base tx rate, so the
  // member min stays the base min exactly.
  bool any_started = false;
  for (int s = 0; s < S; ++s) {
    if (base_tx[static_cast<size_t>(s)] <= 0.0 &&
        plan.startable[plan.at(a, s)] != 0) {
      any_started = true;
    }
  }
  if (any_started) {
    const wlan::IndexSpan members = sc.users_of_ap(a);
    const double* rates = sc.rates_of_ap(a);
    for (size_t i = 0; i < members.size(); ++i) {
      const int u = members[i];
      const int s = sc.user_session(u);
      if (base_tx[static_cast<size_t>(s)] > 0.0 ||
          plan.startable[plan.at(a, s)] == 0) {
        continue;
      }
      if (!multi.serves(u, a)) continue;
      auto& mr = min_rate[static_cast<size_t>(s)];
      mr = std::min(mr, rates[i]);
    }
  }

  for (int s = 0; s < S; ++s) {
    const double bt = base_tx[static_cast<size_t>(s)];
    if (bt > 0.0) {
      tx_row[s] = bt;
    } else if (min_rate[static_cast<size_t>(s)] !=
               std::numeric_limits<double>::infinity()) {
      tx_row[s] = params.multi_rate ? min_rate[static_cast<size_t>(s)]
                                    : sc.basic_rate();
    } else {
      tx_row[s] = 0.0;  // silent (startable but nobody adopted, or neither)
    }
  }
}

wlan::MultiLoadReport kconn_collect_loads(const wlan::Scenario& sc,
                                          const wlan::MultiAssociation& multi,
                                          const std::vector<std::vector<double>>& tx) {
  util::require(multi.n_users() == sc.n_users(),
                "kconn_collect_loads: association size mismatch");
  wlan::MultiLoadReport rep;
  rep.tx_rate = tx;
  rep.ap_load.assign(static_cast<size_t>(sc.n_aps()), 0.0);
  rep.effective_rate.assign(static_cast<size_t>(sc.n_users()), 0.0);

  for (int a = 0; a < sc.n_aps(); ++a) {
    double load = 0.0;
    for (int s = 0; s < sc.n_sessions(); ++s) {
      const double t = tx[static_cast<size_t>(a)][static_cast<size_t>(s)];
      if (t <= 0.0) continue;
      load += sc.session_rate(s) / t;
    }
    rep.ap_load[static_cast<size_t>(a)] = load;
    rep.total_load += load;
    rep.max_load = std::max(rep.max_load, load);
    if (util::exceeds_budget(load, sc.load_budget())) ++rep.budget_violations;
  }

  double sum_eff = 0.0;
  for (int u = 0; u < sc.n_users(); ++u) {
    const auto& aps = multi.aps_of(u);
    if (!aps.empty()) {
      ++rep.satisfied_users;
      if (aps.size() >= 2) ++rep.multi_served_users;
    }
    const int s = sc.user_session(u);
    double eff = 0.0;
    for (const int a : aps) {
      eff += tx[static_cast<size_t>(a)][static_cast<size_t>(s)];
    }
    rep.effective_rate[static_cast<size_t>(u)] = eff;
    sum_eff += eff;
  }
  rep.mean_effective_rate =
      rep.satisfied_users > 0 ? sum_eff / rep.satisfied_users : 0.0;
  return rep;
}

wlan::MultiAssociation augment_to_k(const wlan::Scenario& sc,
                                    const wlan::Association& base,
                                    const wlan::LoadReport& base_loads,
                                    const KconnParams& params) {
  util::require(base.n_users() == sc.n_users(),
                "augment_to_k: association size mismatch");
  util::require(base_loads.tx_rate.size() == static_cast<size_t>(sc.n_aps()),
                "augment_to_k: load report does not match scenario");

  wlan::MultiAssociation multi = wlan::MultiAssociation::none(sc.n_users());
  if (params.k < 2) {
    for (int u = 0; u < sc.n_users(); ++u) {
      if (base.ap_of(u) != wlan::kNoAp) {
        multi.user_aps[static_cast<size_t>(u)].push_back(base.ap_of(u));
      }
    }
    return multi;
  }

  KconnPlan plan;
  plan.resize(sc.n_aps(), sc.n_sessions());
  for (int a = 0; a < sc.n_aps(); ++a) {
    kconn_plan_ap(sc, base, base_loads, params, a, plan);
  }
  KconnScratch scratch;
  for (int u = 0; u < sc.n_users(); ++u) {
    kconn_derive_user(sc, base, plan, params, u,
                      multi.user_aps[static_cast<size_t>(u)], scratch);
  }
  return multi;
}

void finalize_kconn(const wlan::Scenario& sc, Solution& sol,
                    const KconnParams& params) {
  if (params.k <= 1) {
    sol.k = 1;
    return;
  }
  sol.k = params.k;
  sol.multi = augment_to_k(sc, sol.assoc, sol.loads, params);
  sol.multi_loads = wlan::compute_multi_loads(sc, sol.multi, params.multi_rate);
}

}  // namespace wmcast::assoc
