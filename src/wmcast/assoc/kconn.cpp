#include "wmcast/assoc/kconn.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "wmcast/core/solve.hpp"
#include "wmcast/util/assert.hpp"
#include "wmcast/util/fp.hpp"

namespace wmcast::assoc {

namespace {

// Heap entry for the lazy-greedy augmentation. Ordered by the exact
// better_pick ratio comparator (gain / cost, ties to lower set id); the
// std::push_heap convention wants "less than", i.e. the worse pick first.
struct HeapEntry {
  int32_t gain;
  double cost;
  int32_t set;
};

struct HeapWorse {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return core::better_pick(b.gain, b.cost, b.set, a.gain, a.cost, a.set);
  }
};

// Mutable augmentation state shared by the gain/cost probes.
struct AugState {
  std::vector<std::vector<int>> served;  // [user] sorted AP ids
  std::vector<int> need;                 // [user] remaining adoption slots
  std::vector<std::vector<double>> cur_tx;  // [ap][session], 0 = silent
  std::vector<double> ap_spend;             // [ap] current modeled load
};

bool is_served_by(const std::vector<int>& s, int a) {
  return std::binary_search(s.begin(), s.end(), a);
}

// Users the set would newly serve: needy members not already served by the
// set's AP. Members of an engine set all hear the AP at >= tx_rate(set).
int32_t adoption_gain(const core::CoverageEngine& engine, int j, const AugState& st) {
  const int a = engine.ap(j);
  int32_t gain = 0;
  for (const int32_t m : engine.members(j)) {
    if (st.need[static_cast<size_t>(m)] > 0 &&
        !is_served_by(st.served[static_cast<size_t>(m)], a)) {
      ++gain;
    }
  }
  return gain;
}

// Extra load the AP takes on if it adopts the set: its (AP, session) stream
// slows to min(current, set rate), so the delta is the spend difference.
// Zero when the AP already transmits the session at (or below) the set rate.
double adoption_cost(const wlan::Scenario& sc, const core::CoverageEngine& engine,
                     int j, const AugState& st) {
  const int a = engine.ap(j);
  const int s = engine.session(j);
  const double cur = st.cur_tx[static_cast<size_t>(a)][static_cast<size_t>(s)];
  const double rate = sc.session_rate(s);
  const double spent = cur > 0.0 ? rate / cur : 0.0;
  const double tx = cur > 0.0 ? std::min(cur, engine.tx_rate(j)) : engine.tx_rate(j);
  return rate / tx - spent;
}

}  // namespace

wlan::MultiAssociation augment_to_k(const wlan::Scenario& sc,
                                    const core::CoverageEngine& engine,
                                    const wlan::Association& base,
                                    const wlan::LoadReport& base_loads,
                                    const KconnParams& params) {
  util::require(base.n_users() == sc.n_users(), "augment_to_k: association size mismatch");
  util::require(engine.n_elements() >= sc.n_users() && engine.n_groups() == sc.n_aps(),
                "augment_to_k: engine does not match scenario");

  AugState st;
  st.served.resize(static_cast<size_t>(sc.n_users()));
  st.need.assign(static_cast<size_t>(sc.n_users()), 0);
  st.cur_tx = base_loads.tx_rate;
  st.ap_spend = base_loads.ap_load;

  for (int u = 0; u < sc.n_users(); ++u) {
    const int a = base.ap_of(u);
    if (a == wlan::kNoAp) continue;  // base-unserved users stay unserved
    st.served[static_cast<size_t>(u)].push_back(a);
    const int heard = static_cast<int>(sc.aps_of_user(u).size());
    st.need[static_cast<size_t>(u)] = std::max(0, std::min(params.k, heard) - 1);
  }

  if (params.k >= 2) {
    std::vector<HeapEntry> heap;
    std::vector<char> dropped(static_cast<size_t>(engine.n_set_slots()), 0);
    for (int j = 0; j < engine.n_set_slots(); ++j) {
      if (!engine.alive(j)) continue;
      const int32_t gain = adoption_gain(engine, j, st);
      if (gain == 0) continue;
      heap.push_back(HeapEntry{gain, adoption_cost(sc, engine, j, st),
                               static_cast<int32_t>(j)});
    }
    std::make_heap(heap.begin(), heap.end(), HeapWorse{});

    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), HeapWorse{});
      const HeapEntry top = heap.back();
      heap.pop_back();
      const int j = top.set;
      if (dropped[static_cast<size_t>(j)] != 0) continue;
      const int32_t gain = adoption_gain(engine, j, st);
      if (gain == 0) continue;
      const double cost = adoption_cost(sc, engine, j, st);
      if (gain != top.gain || cost != top.cost) {
        // Stale entry: reinsert with the refreshed key (lazy greedy).
        heap.push_back(HeapEntry{gain, cost, top.set});
        std::push_heap(heap.begin(), heap.end(), HeapWorse{});
        continue;
      }
      const int a = engine.ap(j);
      const int s = engine.session(j);
      if (params.enforce_budget &&
          util::exceeds_budget(st.ap_spend[static_cast<size_t>(a)] + cost,
                               sc.load_budget())) {
        // AP spend only grows and the total spend needed to ever adopt this
        // (AP, session, rate) stream is invariant, so infeasible is final.
        dropped[static_cast<size_t>(j)] = 1;
        continue;
      }

      // Commit: adopt every needy member, slow the stream to the set's rate.
      for (const int32_t m : engine.members(j)) {
        auto& sv = st.served[static_cast<size_t>(m)];
        if (st.need[static_cast<size_t>(m)] <= 0 || is_served_by(sv, a)) continue;
        sv.insert(std::upper_bound(sv.begin(), sv.end(), a), a);
        --st.need[static_cast<size_t>(m)];
      }
      auto& cur = st.cur_tx[static_cast<size_t>(a)][static_cast<size_t>(s)];
      cur = cur > 0.0 ? std::min(cur, engine.tx_rate(j)) : engine.tx_rate(j);
      st.ap_spend[static_cast<size_t>(a)] += cost;

      // Committing lowered this (AP, session) stream's rate, which can only
      // CHEAPEN sibling sets — stale heap keys would undervalue them, so push
      // refreshed entries now (duplicates are resolved by the recompute
      // above). Other sets' keys only get worse, the classic lazy direction.
      for (const int32_t j2 : engine.group_sets(a)) {
        if (j2 == j || !engine.alive(j2) || dropped[static_cast<size_t>(j2)] != 0 ||
            engine.session(j2) != s) {
          continue;
        }
        const int32_t g2 = adoption_gain(engine, j2, st);
        if (g2 == 0) continue;
        heap.push_back(HeapEntry{g2, adoption_cost(sc, engine, j2, st), j2});
        std::push_heap(heap.begin(), heap.end(), HeapWorse{});
      }
    }

    if (params.polish) {
      // Free-swap pass: replace a user's weakest non-primary stream with a
      // strictly faster stream some heard AP is ALREADY transmitting (and the
      // user can decode, link >= tx). Dropping a member never raises the old
      // AP's load (its stream keeps its rate — conservative), and the new AP
      // gains a member it already covers at its current rate, so swaps are
      // budget-neutral. Deterministic: users ascending, candidates
      // strongest-signal-first.
      for (int u = 0; u < sc.n_users(); ++u) {
        auto& sv = st.served[static_cast<size_t>(u)];
        if (sv.size() < 2) continue;
        const int primary = base.ap_of(u);
        const int s = sc.user_session(u);
        int worst = -1;
        double worst_tx = std::numeric_limits<double>::infinity();
        for (const int a : sv) {
          if (a == primary) continue;
          const double tx = st.cur_tx[static_cast<size_t>(a)][static_cast<size_t>(s)];
          if (tx < worst_tx) {
            worst_tx = tx;
            worst = a;
          }
        }
        if (worst < 0) continue;
        const wlan::IndexSpan heard = sc.aps_of_user(u);
        const double* rates = sc.rates_of_user(u);
        for (size_t i = 0; i < heard.size(); ++i) {
          const int b = heard[i];
          if (is_served_by(sv, b)) continue;
          const double tx = st.cur_tx[static_cast<size_t>(b)][static_cast<size_t>(s)];
          if (tx <= worst_tx || rates[i] < tx) continue;
          sv.erase(std::find(sv.begin(), sv.end(), worst));
          sv.insert(std::upper_bound(sv.begin(), sv.end(), b), b);
          break;
        }
      }
    }
  }

  wlan::MultiAssociation multi;
  multi.user_aps = std::move(st.served);
  return multi;
}

void finalize_kconn(const wlan::Scenario& sc, const core::CoverageEngine& engine,
                    Solution& sol, const KconnParams& params) {
  if (params.k <= 1) {
    sol.k = 1;
    return;
  }
  sol.k = params.k;
  sol.multi = augment_to_k(sc, engine, sol.assoc, sol.loads, params);
  sol.multi_loads = wlan::compute_multi_loads(sc, sol.multi, params.multi_rate);
}

}  // namespace wmcast::assoc
