// The local decision rule shared by the distributed algorithms (§4.2, §5.2,
// §6.2) and the discrete-event protocol agents: given the loads of the
// neighboring APs, pick the best AP for one user.
//
//  * kTotalLoad  — Distributed MNU and MLA: minimize the summed load of the
//                  user's neighboring APs (ties broken by signal strength).
//  * kLoadVector — Distributed BLA: minimize the vector of neighboring AP
//                  loads sorted in non-increasing order, lexicographically.
//
// An associated user only moves when the move is a strict improvement; an
// unassociated user joins the best feasible AP unconditionally. When budget
// enforcement is on, APs whose load would exceed the scenario budget are not
// candidates (the user may end up unassociated — the MNU setting).
#pragma once

#include <vector>

#include "wmcast/wlan/load_model.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

enum class Objective {
  kTotalLoad,   // distributed MNU / MLA
  kLoadVector,  // distributed BLA
};

struct PolicyParams {
  Objective objective = Objective::kTotalLoad;
  bool enforce_budget = true;
  bool multi_rate = true;
  /// Improvements smaller than this are treated as ties (keeps the
  /// convergence argument of Lemmas 1-2 robust to floating-point noise).
  double eps = 1e-12;
};

/// Returns the AP user `u` should be associated with, given the current
/// member lists of every AP (members[a] = users associated with a;
/// `current_ap` must be consistent with them). Returns the current AP when no
/// strict improvement exists, or wlan::kNoAp when the user cannot be served.
int choose_best_ap(const wlan::Scenario& sc, int u,
                   const std::vector<std::vector<int>>& members, int current_ap,
                   const PolicyParams& params);

/// Partial-information variant: the user only heard back from `heard_aps`
/// (a subset of its neighbors, strongest-first order preserved by the
/// caller). Scores and candidates are restricted to those APs; the user's
/// current AP must be among them (callers defer otherwise — without fresh
/// state for the current AP, "stay" cannot be scored). Used by the protocol
/// simulator under message loss.
int choose_best_ap_among(const wlan::Scenario& sc, int u,
                         const std::vector<std::vector<int>>& members, int current_ap,
                         const PolicyParams& params, wlan::IndexSpan heard_aps);

/// Incremental-model variant: loads come from `model` (which the caller keeps
/// consistent with the current association) instead of member-list rescans,
/// so one decision costs O(neighbors · rate levels) instead of
/// O(neighbors · members). Returns the same AP as choose_best_ap over the
/// matching member lists — the model's loads are bit-identical to the
/// rescans, and the scoring arithmetic is mirrored operation for operation.
int choose_best_ap(const wlan::Scenario& sc, const wlan::LoadModel& model, int u,
                   int current_ap, const PolicyParams& params);

}  // namespace wmcast::assoc
