// Dual association (paper §3.1, citing Lee/Chandrasekaran/Sinha's mesh
// framework): when a user is both a unicast and a multicast client, it keeps
// its strongest-signal AP for unicast and *independently* selects a
// (possibly different) AP for the multicast stream via one of this library's
// algorithms. The APs are assumed time-synchronized so the user can listen
// to its multicast AP during that AP's multicast period.
//
// This module evaluates the combined system: per-AP airtime is the multicast
// load (from the multicast association) plus the unicast demand of the users
// anchored there (from signal strength). The question the paper raises —
// does optimizing the multicast side leave enough room for everyone's
// unicast? — becomes a per-AP feasibility and fairness report.
#pragma once

#include "wmcast/assoc/solution.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

struct DualParams {
  /// Unicast airtime demanded per user (fraction of a second of airtime per
  /// second, e.g. 0.02 = a 2%-duty video call), charged to the strongest AP.
  double unicast_demand_per_user = 0.02;
  bool multi_rate = true;
};

struct DualReport {
  /// Multicast load per AP (from the multicast association).
  std::vector<double> multicast_load;
  /// Unicast demand anchored at each AP (strongest-signal anchoring).
  std::vector<double> unicast_demand;
  /// combined[a] = multicast_load[a] + unicast_demand[a].
  std::vector<double> combined;
  double max_combined = 0.0;
  int overloaded_aps = 0;  // combined > 1
  /// Users whose multicast AP differs from their unicast anchor — these are
  /// the users dual association actually helps (single-association would
  /// force both onto one AP).
  int split_users = 0;
};

/// Evaluates a multicast association in the dual-association regime.
DualReport evaluate_dual(const wlan::Scenario& sc, const wlan::Association& multicast,
                         const DualParams& params = {});

}  // namespace wmcast::assoc
