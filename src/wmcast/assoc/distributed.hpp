// The paper's distributed algorithms (§4.2, §5.2, §6.2) as a deterministic
// round engine: users repeatedly apply the local decision rule
// (assoc::choose_best_ap) until a fixed point.
//
//  * Sequential mode — users decide one at a time on fresh information; this
//    converges on static networks (Lemmas 1 and 2).
//  * Simultaneous mode — all users decide on the same snapshot and apply
//    together; this can oscillate forever (the paper's Fig. 4), which the
//    engine detects by hashing the association after every round.
//
// Distributed MNU and MLA share the kTotalLoad objective (the paper uses the
// same protocol for both); distributed BLA uses kLoadVector.
#pragma once

#include "wmcast/assoc/policy.hpp"
#include "wmcast/assoc/solution.hpp"
#include "wmcast/core/workspace.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

enum class UpdateMode { kSequential, kSimultaneous };

struct DistributedParams {
  Objective objective = Objective::kTotalLoad;
  UpdateMode mode = UpdateMode::kSequential;
  int max_rounds = 200;
  bool enforce_budget = true;
  bool multi_rate = true;
  /// Fixed decision order (user ids). Empty = shuffle once with the rng.
  /// The paper's worked examples use the natural order u1, u2, ...
  std::vector<int> order;
  /// Starting association (empty = everyone unassociated). The paper's
  /// Fig. 4 oscillation starts from a given configuration.
  wlan::Association initial;
};

/// Runs the round engine from an all-unassociated start. Solution::rounds is
/// the number of executed rounds and Solution::converged reports whether a
/// fixed point (or, in simultaneous mode, the absence of a cycle) was reached.
/// `workspace`, when given, supplies the per-AP member lists and per-user
/// decision scratch so repeated runs allocate nothing in steady state.
Solution distributed_associate(const wlan::Scenario& sc, util::Rng& rng,
                               const DistributedParams& params = {},
                               core::AssocWorkspace* workspace = nullptr);

/// Convenience wrappers matching the paper's three protocols (sequential).
Solution distributed_mnu(const wlan::Scenario& sc, util::Rng& rng);
Solution distributed_mla(const wlan::Scenario& sc, util::Rng& rng);
Solution distributed_bla(const wlan::Scenario& sc, util::Rng& rng);

}  // namespace wmcast::assoc
