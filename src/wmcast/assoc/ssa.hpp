// SSA — the strongest-signal association baseline the paper compares
// against: every user associates with the AP whose signal is strongest,
// regardless of load. Users arrive in random order; with budget enforcement
// a user whose strongest AP cannot absorb it goes unserved (the MNU setting).
#pragma once

#include "wmcast/assoc/solution.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

struct SsaParams {
  bool enforce_budget = true;
  bool multi_rate = true;
  /// Maximum serving APs per user (DESIGN.md §15). 1 = the paper's baseline,
  /// untouched. k >= 2 runs a second pass in the same arrival order: each
  /// served user greedily adopts its next-strongest heard APs (same budget
  /// gate) until it holds min(k, |heard|) streams. The primary association
  /// and load report are exactly the k == 1 result.
  int k = 1;
};

Solution ssa_associate(const wlan::Scenario& sc, util::Rng& rng,
                       const SsaParams& params = {});

}  // namespace wmcast::assoc
