// SSA — the strongest-signal association baseline the paper compares
// against: every user associates with the AP whose signal is strongest,
// regardless of load. Users arrive in random order; with budget enforcement
// a user whose strongest AP cannot absorb it goes unserved (the MNU setting).
#pragma once

#include "wmcast/assoc/solution.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

struct SsaParams {
  bool enforce_budget = true;
  bool multi_rate = true;
};

Solution ssa_associate(const wlan::Scenario& sc, util::Rng& rng,
                       const SsaParams& params = {});

}  // namespace wmcast::assoc
