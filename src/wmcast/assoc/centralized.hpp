// The paper's centralized approximation algorithms, packaged against the
// WLAN model: build the set system (Theorems 1/3/5), run the combinatorial
// machine, and materialize the chosen sets back into an association.
//
//   centralized_mla — CostSC greedy weighted set cover,   (ln n + 1)-approx.
//   centralized_bla — SCG via repeated MCG at guessed B*, (log_{8/7} n + 1).
//   centralized_mnu — MCG greedy + H1/H2 split,           8-approx.
#pragma once

#include "wmcast/assoc/solution.hpp"
#include "wmcast/setcover/scg.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

struct CentralizedParams {
  /// false = all multicast at the scenario's basic rate (802.11 standard).
  bool multi_rate = true;
  /// MNU only: after the H1/H2 split, greedily re-add sets that still fit
  /// their group budgets (coverage can only grow; preserves the 8-approx).
  /// Disable to run the paper's literal algorithm.
  bool mnu_augment = true;
};

Solution centralized_mla(const wlan::Scenario& sc, const CentralizedParams& params = {});

Solution centralized_bla(const wlan::Scenario& sc, const CentralizedParams& params = {},
                         const setcover::ScgParams& scg = {});

/// Uses the scenario's load budget as every group's budget B_i.
Solution centralized_mnu(const wlan::Scenario& sc, const CentralizedParams& params = {});

}  // namespace wmcast::assoc
