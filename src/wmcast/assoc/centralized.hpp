// The paper's centralized approximation algorithms, packaged against the
// WLAN model: build the coverage engine (Theorems 1/3/5 reduction), run the
// combinatorial machine, and materialize the chosen sets back into an
// association.
//
//   centralized_mla — CostSC greedy weighted set cover,   (ln n + 1)-approx.
//   centralized_bla — SCG via repeated MCG at guessed B*, (log_{8/7} n + 1).
//   centralized_mnu — MCG greedy + H1/H2 split,           8-approx.
//
// Every algorithm has a warm-path overload taking an EngineContext: the
// engine is built once (or patched incrementally with update_groups) and the
// solve reuses the context's workspace, so repeated solves on an evolving
// network skip the reduction entirely and allocate nothing in steady state.
#pragma once

#include <span>
#include <vector>

#include "wmcast/assoc/solution.hpp"
#include "wmcast/core/engine.hpp"
#include "wmcast/core/parallel.hpp"
#include "wmcast/core/workspace.hpp"
#include "wmcast/setcover/scg.hpp"
#include "wmcast/util/thread_pool.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

struct CentralizedParams {
  /// Maximum serving APs per user (DESIGN.md §15). 1 = the paper's single-AP
  /// model, bit-identical to pre-k builds. k >= 2 runs the serial kconn
  /// augmentation after the base solve and fills Solution::multi/multi_loads;
  /// the primary assoc/loads stay exactly the k == 1 result.
  int k = 1;
  /// false = all multicast at the scenario's basic rate (802.11 standard).
  bool multi_rate = true;
  /// MNU only: after the H1/H2 split, greedily re-add sets that still fit
  /// their group budgets (coverage can only grow; preserves the 8-approx).
  /// Disable to run the paper's literal algorithm.
  bool mnu_augment = true;
  /// Non-null switches the warm paths to the sharded per-session solves
  /// (core/parallel.hpp), distributing shards across the pool. The result is
  /// bitwise identical at any pool size (see DESIGN.md §9); for MNU/BLA the
  /// sharded path applies group budgets per channel shard, which differs from
  /// the joint serial algorithm — null (the default) keeps the paper's joint
  /// semantics.
  util::ThreadPool* pool = nullptr;
};

/// Warm solve state shared by repeated centralized solves: the built engine
/// plus reusable scratch. The caller owns keeping the engine in sync with the
/// scenario it passes to the solve (build() after wholesale changes,
/// update(dirty_aps) after local ones).
struct EngineContext {
  core::CoverageEngine engine;
  core::SolveWorkspace ws;
  std::vector<double> budgets;     // per-group budget scratch (MNU)
  std::vector<double> group_cost;  // per-group spend scratch (MNU augment)
  core::SessionShards shards;      // per-session partition (parallel path)
  core::ShardWorkspaces shard_ws;  // one workspace per pool lane

  /// Full rebuild from the scenario.
  void build(const wlan::Scenario& sc, bool multi_rate = true);
  /// Re-projects only the candidate sets of `dirty_aps` from `sc`.
  void update(const wlan::Scenario& sc, std::span<const int> dirty_aps,
              bool multi_rate = true);
};

Solution centralized_mla(const wlan::Scenario& sc, const CentralizedParams& params = {});
Solution centralized_bla(const wlan::Scenario& sc, const CentralizedParams& params = {},
                         const setcover::ScgParams& scg = {});
/// Uses the scenario's load budget as every group's budget B_i.
Solution centralized_mnu(const wlan::Scenario& sc, const CentralizedParams& params = {});

/// Warm-path overloads: `ctx.engine` must already reflect `sc` (same
/// multi_rate flag included); the reduction step is skipped.
Solution centralized_mla(const wlan::Scenario& sc, const CentralizedParams& params,
                         EngineContext& ctx);
Solution centralized_bla(const wlan::Scenario& sc, const CentralizedParams& params,
                         const setcover::ScgParams& scg, EngineContext& ctx);
Solution centralized_mnu(const wlan::Scenario& sc, const CentralizedParams& params,
                         EngineContext& ctx);

}  // namespace wmcast::assoc
