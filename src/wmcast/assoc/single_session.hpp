// The polynomial special cases the paper identifies for one multicast
// session:
//
//  * §4: "MNU is trivially in P, if there is only one multicast session...
//    all APs can choose to transmit at the lowest rate that does not violate
//    the maximum multicast period." Every AP independently transmits at the
//    slowest rate its budget allows, which maximizes its coverage; a user is
//    served iff some AP covers it.
//
//  * §5: "BLA is a P problem if there is only one multicast session... each
//    transmission rate can be checked in sequence for feasibility of being
//    the maximum; for a given value, all APs are assigned the same rate.
//    Among all the transmission rates the highest rate (when assigned to all
//    APs) that provides service to all users is the solution."
//
// Both are exact (tested against the B&B solvers on single-session
// instances).
#pragma once

#include "wmcast/assoc/solution.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

/// Exact MNU for single-session scenarios. Throws if sc.n_sessions() != 1.
Solution single_session_mnu(const wlan::Scenario& sc);

/// Exact BLA for single-session scenarios (the paper's same-rate-everywhere
/// argument). Throws if sc.n_sessions() != 1. When even the basic rate
/// cannot serve every coverable user within load 1, serves as many as the
/// best uniform rate allows (converged=false flags the infeasibility).
Solution single_session_bla(const wlan::Scenario& sc);

}  // namespace wmcast::assoc
