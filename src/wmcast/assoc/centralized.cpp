#include "wmcast/assoc/centralized.hpp"

#include <chrono>

#include "wmcast/assoc/kconn.hpp"
#include "wmcast/core/solve.hpp"
#include "wmcast/setcover/materialize.hpp"
#include "wmcast/setcover/reduction.hpp"

namespace wmcast::assoc {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Grows the k-connectivity overlay on top of the base solve (no-op at k == 1,
// keeping the legacy Solution bit-identical). The local augmentation rule
// reads the scenario CSR directly and is thread-invariant whenever the base
// solve is.
void apply_kconn(const wlan::Scenario& sc, const CentralizedParams& params,
                 Solution& sol, bool enforce_budget) {
  KconnParams kp;
  kp.k = params.k;
  kp.multi_rate = params.multi_rate;
  kp.enforce_budget = enforce_budget;
  finalize_kconn(sc, sol, kp);
}

}  // namespace

void EngineContext::build(const wlan::Scenario& sc, bool multi_rate) {
  engine.build_full(setcover::ScenarioSource(sc), multi_rate);
}

void EngineContext::update(const wlan::Scenario& sc, std::span<const int> dirty_aps,
                           bool multi_rate) {
  engine.update_groups(setcover::ScenarioSource(sc), dirty_aps, multi_rate);
}

Solution centralized_mla(const wlan::Scenario& sc, const CentralizedParams& params,
                         EngineContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  core::CoverResult greedy;
  if (params.pool != nullptr) {
    ctx.shards.build(ctx.engine);
    greedy = core::parallel_greedy_cover(ctx.engine, *params.pool, ctx.shard_ws,
                                         ctx.shards);
  } else {
    greedy = core::greedy_cover(ctx.engine, ctx.ws);
  }
  auto assoc = setcover::materialize(sc, ctx.engine, greedy.chosen);
  Solution sol = make_solution("MLA-C", sc, std::move(assoc), params.multi_rate);
  if (params.k >= 2) apply_kconn(sc, params, sol, /*enforce_budget=*/false);
  sol.solve_seconds = seconds_since(t0);
  return sol;
}

Solution centralized_bla(const wlan::Scenario& sc, const CentralizedParams& params,
                         const setcover::ScgParams& scg_params, EngineContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  core::ScgParams p;
  p.budget_cap = scg_params.budget_cap;
  p.grid_points = scg_params.grid_points;
  p.refine_steps = scg_params.refine_steps;
  p.carry_budgets = scg_params.carry_budgets;
  core::ScgResult scg;
  if (params.pool != nullptr) {
    ctx.shards.build(ctx.engine);
    scg = core::parallel_scg_cover(ctx.engine, *params.pool, ctx.shard_ws,
                                   ctx.shards, p);
  } else {
    scg = core::scg_cover(ctx.engine, ctx.ws, p);
  }
  auto assoc = setcover::materialize(sc, ctx.engine, scg.chosen);
  Solution sol = make_solution("BLA-C", sc, std::move(assoc), params.multi_rate);
  sol.converged = scg.feasible;
  if (params.k >= 2) apply_kconn(sc, params, sol, /*enforce_budget=*/false);
  sol.solve_seconds = seconds_since(t0);
  return sol;
}

Solution centralized_mnu(const wlan::Scenario& sc, const CentralizedParams& params,
                         EngineContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  ctx.budgets.assign(static_cast<size_t>(ctx.engine.n_groups()), sc.load_budget());
  std::vector<int> chosen;
  if (params.pool != nullptr) {
    ctx.shards.build(ctx.engine);
    const auto mcg =
        core::parallel_mcg_cover(ctx.engine, *params.pool, ctx.shard_ws, ctx.shards,
                                 ctx.budgets, params.mnu_augment);
    chosen = mcg.chosen;
  } else {
    const auto mcg = core::mcg_cover(ctx.engine, ctx.ws, ctx.budgets);
    chosen = mcg.chosen;
    if (params.mnu_augment) {
      ctx.group_cost.assign(static_cast<size_t>(ctx.engine.n_groups()), 0.0);
      for (const int j : chosen) {
        ctx.group_cost[static_cast<size_t>(ctx.engine.group(j))] += ctx.engine.cost(j);
      }
      util::DynBitset covered = mcg.covered;
      const auto added =
          core::mcg_augment(ctx.engine, ctx.ws, ctx.budgets, ctx.group_cost, covered);
      chosen.insert(chosen.end(), added.begin(), added.end());
    }
  }
  auto assoc = setcover::materialize(sc, ctx.engine, chosen);
  Solution sol = make_solution("MNU-C", sc, std::move(assoc), params.multi_rate);
  // MNU is the budgeted setting: secondary adoptions must respect AP budgets.
  if (params.k >= 2) apply_kconn(sc, params, sol, /*enforce_budget=*/true);
  sol.solve_seconds = seconds_since(t0);
  return sol;
}

Solution centralized_mla(const wlan::Scenario& sc, const CentralizedParams& params) {
  const auto t0 = std::chrono::steady_clock::now();
  EngineContext ctx;
  ctx.build(sc, params.multi_rate);
  Solution sol = centralized_mla(sc, params, ctx);
  sol.solve_seconds = seconds_since(t0);  // include the reduction
  return sol;
}

Solution centralized_bla(const wlan::Scenario& sc, const CentralizedParams& params,
                         const setcover::ScgParams& scg_params) {
  const auto t0 = std::chrono::steady_clock::now();
  EngineContext ctx;
  ctx.build(sc, params.multi_rate);
  Solution sol = centralized_bla(sc, params, scg_params, ctx);
  sol.solve_seconds = seconds_since(t0);
  return sol;
}

Solution centralized_mnu(const wlan::Scenario& sc, const CentralizedParams& params) {
  const auto t0 = std::chrono::steady_clock::now();
  EngineContext ctx;
  ctx.build(sc, params.multi_rate);
  Solution sol = centralized_mnu(sc, params, ctx);
  sol.solve_seconds = seconds_since(t0);
  return sol;
}

}  // namespace wmcast::assoc
