#include "wmcast/assoc/centralized.hpp"

#include <chrono>

#include "wmcast/setcover/greedy.hpp"
#include "wmcast/setcover/materialize.hpp"
#include "wmcast/setcover/mcg.hpp"
#include "wmcast/setcover/reduction.hpp"

namespace wmcast::assoc {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

Solution centralized_mla(const wlan::Scenario& sc, const CentralizedParams& params) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto sys = setcover::build_set_system(sc, params.multi_rate);
  const auto greedy = setcover::greedy_set_cover(sys);
  auto assoc = setcover::materialize(sc, sys, greedy.chosen);
  Solution sol = make_solution("MLA-C", sc, std::move(assoc), params.multi_rate);
  sol.solve_seconds = seconds_since(t0);
  return sol;
}

Solution centralized_bla(const wlan::Scenario& sc, const CentralizedParams& params,
                         const setcover::ScgParams& scg_params) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto sys = setcover::build_set_system(sc, params.multi_rate);
  const auto scg = setcover::scg_solve(sys, scg_params);
  auto assoc = setcover::materialize(sc, sys, scg.chosen);
  Solution sol = make_solution("BLA-C", sc, std::move(assoc), params.multi_rate);
  sol.converged = scg.feasible;
  sol.solve_seconds = seconds_since(t0);
  return sol;
}

Solution centralized_mnu(const wlan::Scenario& sc, const CentralizedParams& params) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto sys = setcover::build_set_system(sc, params.multi_rate);
  const auto mcg = setcover::mcg_greedy_uniform(sys, sc.load_budget());
  std::vector<int> chosen = mcg.chosen;
  if (params.mnu_augment) {
    const std::vector<double> budgets(static_cast<size_t>(sys.n_groups()),
                                      sc.load_budget());
    std::vector<double> group_cost(static_cast<size_t>(sys.n_groups()), 0.0);
    for (const int j : chosen) {
      group_cost[static_cast<size_t>(sys.set(j).group)] += sys.set(j).cost;
    }
    util::DynBitset covered = mcg.covered;
    const auto added = setcover::mcg_augment(sys, budgets, group_cost, covered);
    chosen.insert(chosen.end(), added.begin(), added.end());
  }
  auto assoc = setcover::materialize(sc, sys, chosen);
  Solution sol = make_solution("MNU-C", sc, std::move(assoc), params.multi_rate);
  sol.solve_seconds = seconds_since(t0);
  return sol;
}

}  // namespace wmcast::assoc
