// The result type every association algorithm returns: the association, the
// induced load report, and bookkeeping (name, rounds, convergence, runtime).
#pragma once

#include <string>

#include "wmcast/wlan/association.hpp"

namespace wmcast::assoc {

struct Solution {
  std::string algorithm;
  wlan::Association assoc;
  wlan::LoadReport loads;
  int rounds = 0;         // distributed algorithms: decision rounds executed
  bool converged = true;  // distributed algorithms: reached a fixed point
  double solve_seconds = 0.0;
  // k-connectivity overlay (DESIGN.md §15). assoc/loads above always hold the
  // primary single-AP view (at k == 1 they ARE the solution, bit-identical to
  // the legacy solvers); at k >= 2 `multi` holds the full served-sets (the
  // primary AP plus up to k-1 secondaries) and `multi_loads` the per-AP loads
  // and additive effective rates they induce. `multi` stays empty at k == 1.
  int k = 1;
  wlan::MultiAssociation multi;
  wlan::MultiLoadReport multi_loads;
};

/// Builds a Solution by evaluating `assoc` on `sc` (multi_rate selects the
/// transmission-rate model, see wlan::compute_loads).
Solution make_solution(std::string algorithm, const wlan::Scenario& sc,
                       wlan::Association assoc, bool multi_rate = true);

}  // namespace wmcast::assoc
