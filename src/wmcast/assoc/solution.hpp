// The result type every association algorithm returns: the association, the
// induced load report, and bookkeeping (name, rounds, convergence, runtime).
#pragma once

#include <string>

#include "wmcast/wlan/association.hpp"

namespace wmcast::assoc {

struct Solution {
  std::string algorithm;
  wlan::Association assoc;
  wlan::LoadReport loads;
  int rounds = 0;         // distributed algorithms: decision rounds executed
  bool converged = true;  // distributed algorithms: reached a fixed point
  double solve_seconds = 0.0;
};

/// Builds a Solution by evaluating `assoc` on `sc` (multi_rate selects the
/// transmission-rate model, see wlan::compute_loads).
Solution make_solution(std::string algorithm, const wlan::Scenario& sc,
                       wlan::Association assoc, bool multi_rate = true);

}  // namespace wmcast::assoc
