#include "wmcast/assoc/local_search.hpp"
#include "wmcast/util/fp.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/util/assert.hpp"
#include "wmcast/wlan/load_model.hpp"

namespace wmcast::assoc {

namespace {

constexpr double kImproveEps = 1e-12;

// Search state over the incremental load model (wlan/load_model.hpp). The
// model's loads are bit-identical to ap_load_for_members rescans, and every
// mutation below applies the same `total += new_load - old_load` arithmetic
// the rescanning implementation did — including the transient probe/rollback
// sequence, whose rounding drift is part of the observable tie-break
// behavior. Candidate probes therefore cost O(rate levels), not O(members),
// while leaving every accepted move unchanged.
struct State {
  const wlan::Scenario& sc;
  const LocalSearchParams& params;
  // All mutable search state lives in the (possibly caller-owned) workspace.
  std::vector<int>& user_ap;
  std::vector<std::vector<int>>& members;  // per AP
  std::vector<double>& ap_load;            // per AP
  wlan::LoadModel model;
  int served = 0;
  double total = 0.0;

  State(const wlan::Scenario& s, const LocalSearchParams& p, core::AssocWorkspace& w)
      : sc(s), params(p), user_ap(w.user_ap), members(w.members), ap_load(w.ap_load) {
    w.prepare(s.n_aps(), s.n_users());
    model.reset(s, p.multi_rate);
  }

  void place(int u, int a, double rate) {
    WMCAST_ASSERT(user_ap[static_cast<size_t>(u)] == wlan::kNoAp, "place: already placed");
    if (a == wlan::kNoAp) return;
    members[static_cast<size_t>(a)].push_back(u);
    const double nl = model.add(a, sc.user_session(u), rate);
    total += nl - ap_load[static_cast<size_t>(a)];
    ap_load[static_cast<size_t>(a)] = nl;
    user_ap[static_cast<size_t>(u)] = a;
    ++served;
  }
  void place(int u, int a) {
    if (a == wlan::kNoAp) return;
    place(u, a, sc.link_rate(a, u));
  }

  void unplace(int u) {
    const int a = user_ap[static_cast<size_t>(u)];
    if (a == wlan::kNoAp) return;
    auto& m = members[static_cast<size_t>(a)];
    m.erase(std::find(m.begin(), m.end(), u));
    const double nl = model.remove(a, sc.user_session(u), sc.link_rate(a, u));
    total += nl - ap_load[static_cast<size_t>(a)];
    ap_load[static_cast<size_t>(a)] = nl;
    user_ap[static_cast<size_t>(u)] = wlan::kNoAp;
    --served;
  }

  double max_load() const {
    double mx = 0.0;
    for (const double l : ap_load) mx = std::max(mx, l);
    return mx;
  }

  /// max_load() as it would read after moving `u` from `cur` (load lc_wo)
  /// onto `a` (load la_w) — the two substituted entries are exactly the
  /// values a physical move would have written.
  double probe_max_load(int cur, double lc_wo, int a, double la_w) const {
    double mx = 0.0;
    for (size_t k = 0; k < ap_load.size(); ++k) {
      double l = ap_load[k];
      if (static_cast<int>(k) == cur) l = lc_wo;
      if (static_cast<int>(k) == a) l = la_w;
      mx = std::max(mx, l);
    }
    return mx;
  }

  /// Lexicographic objective key; smaller is better for every objective.
  struct Key {
    double k1, k2, k3;
    bool better_than(const Key& o) const {
      if (k1 < o.k1 - kImproveEps) return true;
      if (k1 > o.k1 + kImproveEps) return false;
      if (k2 < o.k2 - kImproveEps) return true;
      if (k2 > o.k2 + kImproveEps) return false;
      return k3 < o.k3 - kImproveEps;
    }
  };

  Key key() const {
    switch (params.objective) {
      case SearchObjective::kTotalLoad:
        return {static_cast<double>(-served), total, 0.0};
      case SearchObjective::kMaxLoad:
        return {static_cast<double>(-served), max_load(), total};
      case SearchObjective::kServedUsers:
        return {static_cast<double>(-served), total, 0.0};
    }
    return {0.0, 0.0, 0.0};
  }

  Key probe_key(double probe_total, int probe_served, int cur, double lc_wo, int a,
                double la_w) const {
    switch (params.objective) {
      case SearchObjective::kTotalLoad:
        return {static_cast<double>(-probe_served), probe_total, 0.0};
      case SearchObjective::kMaxLoad:
        return {static_cast<double>(-probe_served), probe_max_load(cur, lc_wo, a, la_w),
                probe_total};
      case SearchObjective::kServedUsers:
        return {static_cast<double>(-probe_served), probe_total, 0.0};
    }
    return {0.0, 0.0, 0.0};
  }
};

}  // namespace

Solution local_search(const wlan::Scenario& sc, const wlan::Association& start,
                      const LocalSearchParams& params, LocalSearchStats* stats,
                      core::AssocWorkspace* workspace) {
  util::require(start.n_users() == sc.n_users(), "local_search: association size mismatch");

  core::AssocWorkspace local_ws;
  core::AssocWorkspace& ws = workspace != nullptr ? *workspace : local_ws;
  State st(sc, params, ws);
  for (int u = 0; u < sc.n_users(); ++u) {
    const int a = start.ap_of(u);
    if (a == wlan::kNoAp) continue;
    util::require(a >= 0 && a < sc.n_aps() && sc.in_range(a, u),
                  "local_search: invalid start association");
    st.place(u, a);
  }

  // Repair an infeasible start: peel members off over-budget APs, dropping
  // whoever frees the most load per removal.
  if (params.enforce_budget) {
    for (int a = 0; a < sc.n_aps(); ++a) {
      while (util::exceeds_budget(st.ap_load[static_cast<size_t>(a)], sc.load_budget())) {
        const auto m = st.members[static_cast<size_t>(a)];  // copy: we mutate inside
        WMCAST_ASSERT(!m.empty(), "local_search: over budget with no members");
        int best_u = m.front();
        double best_drop = -1.0;
        for (const int u : m) {
          const double drop =
              st.ap_load[static_cast<size_t>(a)] -
              st.model.load_without(a, sc.user_session(u), sc.link_rate(a, u));
          if (drop > best_drop) {
            best_drop = drop;
            best_u = u;
          }
        }
        st.unplace(best_u);
      }
    }
  }

  // Candidate movers: everyone, or the caller's restriction set.
  std::vector<int>& movers = ws.scratch;
  movers.clear();
  if (params.restrict_users.empty()) {
    movers.resize(static_cast<size_t>(sc.n_users()));
    for (int u = 0; u < sc.n_users(); ++u) movers[static_cast<size_t>(u)] = u;
  } else {
    movers = params.restrict_users;
    for (const int u : movers) {
      util::require(u >= 0 && u < sc.n_users(), "local_search: restrict user out of range");
    }
  }

  const int start_served = st.served;
  const auto target_reached = [&] {
    return params.target_total >= 0.0 && st.served >= start_served &&
           st.total <= params.target_total;
  };

  LocalSearchStats local;
  bool improved = true;
  while (improved && local.moves < params.max_moves && !target_reached()) {
    improved = false;
    for (size_t mi = 0; mi < movers.size() && local.moves < params.max_moves &&
                        !target_reached();
         ++mi) {
      const int u = movers[mi];
      const int cur = st.user_ap[static_cast<size_t>(u)];
      const State::Key before = st.key();
      const int s_u = sc.user_session(u);

      // The unplace half of every probe is the same: u leaves cur.
      double lc_wo = 0.0;
      double d_un = 0.0;
      if (cur != wlan::kNoAp) {
        lc_wo = st.model.load_without(cur, s_u, sc.link_rate(cur, u));
        d_un = lc_wo - st.ap_load[static_cast<size_t>(cur)];
      }
      const int probe_served = cur != wlan::kNoAp ? st.served : st.served + 1;

      int best_target = cur;
      double best_rate = 0.0;
      State::Key best_key = before;
      const auto neighbors = sc.aps_of_user(u);
      const double* rates = sc.rates_of_user(u);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        const int a = neighbors[i];
        if (a == cur) continue;
        const double la_w = st.model.load_with(a, s_u, rates[i]);
        const double d_pl = la_w - st.ap_load[static_cast<size_t>(a)];
        // Try the move: the same two load deltas a physical unplace/place
        // pair adds to the running total.
        double t = st.total;
        if (cur != wlan::kNoAp) t += d_un;
        t += d_pl;
        const bool feasible =
            !params.enforce_budget || util::fits_budget(la_w, sc.load_budget());
        const State::Key k = st.probe_key(t, probe_served, cur, lc_wo, a, la_w);
        // Roll back: subtracting the same deltas reproduces the rescanning
        // implementation's exact rounding (fp negation is exact).
        t -= d_pl;
        if (cur != wlan::kNoAp) t -= d_un;
        st.total = t;
        if (feasible && k.better_than(best_key)) {
          best_key = k;
          best_target = a;
          best_rate = rates[i];
        }
      }
      // A move must either serve an extra user or beat the gain floor.
      const bool serves_more = best_key.k1 < before.k1 - kImproveEps;
      const bool enough_gain =
          params.min_gain <= 0.0 || serves_more ||
          before.k2 - best_key.k2 >= params.min_gain - kImproveEps;
      if (best_target != cur && enough_gain) {
        st.unplace(u);
        st.place(u, best_target, best_rate);
        ++local.moves;
        improved = true;
      }
    }
  }
  local.reached_local_optimum = !improved;

  // Copy (not move) the assignment out so the workspace stays reusable.
  Solution sol = make_solution("local-search", sc, wlan::Association{st.user_ap},
                               params.multi_rate);
  sol.converged = local.reached_local_optimum;
  if (stats != nullptr) *stats = local;
  return sol;
}

}  // namespace wmcast::assoc
