#include "wmcast/assoc/revenue.hpp"

#include <algorithm>
#include <cmath>

#include "wmcast/util/assert.hpp"

namespace wmcast::assoc {

RevenueReport compute_revenue(const wlan::Scenario& sc, const wlan::LoadReport& loads,
                              const RevenueModel& model) {
  util::require(static_cast<int>(loads.ap_load.size()) == sc.n_aps(),
                "compute_revenue: load report does not match scenario");
  util::require(model.unicast_concavity > 0.0, "compute_revenue: concavity must be positive");

  RevenueReport rep;
  rep.pay_per_view = model.ppv_fee * loads.satisfied_users;

  const double k = model.unicast_concavity;
  const double norm = std::log1p(k);
  for (const double load : loads.ap_load) {
    const double residual = std::clamp(1.0 - load, 0.0, 1.0);
    rep.convex_unicast += std::log1p(k * residual) / norm;
    rep.per_byte += model.per_byte_price * residual;
  }
  return rep;
}

}  // namespace wmcast::assoc
