#include "wmcast/assoc/single_session.hpp"

#include <algorithm>
#include <chrono>

#include "wmcast/util/assert.hpp"

namespace wmcast::assoc {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

Solution single_session_mnu(const wlan::Scenario& sc) {
  util::require(sc.n_sessions() == 1, "single_session_mnu: exactly one session required");
  const auto t0 = std::chrono::steady_clock::now();

  // An AP can serve user u within budget B iff link_rate >= rho/B: the AP's
  // transmission rate is the minimum member rate, so every member needs at
  // least rho/B. Serving *all* such users at once is feasible (min >= rho/B
  // keeps the cost within B), so the served set is exactly the users with
  // some AP at rate >= rho/B — assign each to its strongest such AP.
  const double min_rate = sc.session_rate(0) / sc.load_budget();

  auto assoc = wlan::Association::none(sc.n_users());
  for (int u = 0; u < sc.n_users(); ++u) {
    const auto aps = sc.aps_of_user(u);  // strongest first
    const double* rates = sc.rates_of_user(u);
    for (size_t i = 0; i < aps.size(); ++i) {
      if (rates[i] >= min_rate) {
        assoc.user_ap[static_cast<size_t>(u)] = aps[i];
        break;
      }
    }
  }

  Solution sol = make_solution("MNU-1session", sc, std::move(assoc));
  sol.solve_seconds = seconds_since(t0);
  return sol;
}

Solution single_session_bla(const wlan::Scenario& sc) {
  util::require(sc.n_sessions() == 1, "single_session_bla: exactly one session required");
  const auto t0 = std::chrono::steady_clock::now();

  // Lower bound: the bottleneck user's best AP rate b_u = max_a rate(a, u)
  // caps every solution at max load >= rho / min_u b_u. Assigning every user
  // to its best-rate AP achieves it: each AP's minimum member rate is then
  // at least r* = min_u b_u.
  auto assoc = wlan::Association::none(sc.n_users());
  for (int u = 0; u < sc.n_users(); ++u) {
    int best_ap = wlan::kNoAp;
    double best_rate = 0.0;
    const auto aps = sc.aps_of_user(u);  // strongest first breaks ties
    const double* rates = sc.rates_of_user(u);
    for (size_t i = 0; i < aps.size(); ++i) {
      if (rates[i] > best_rate) {
        best_rate = rates[i];
        best_ap = aps[i];
      }
    }
    assoc.user_ap[static_cast<size_t>(u)] = best_ap;  // kNoAp if uncoverable
  }

  Solution sol = make_solution("BLA-1session", sc, std::move(assoc));
  // Feasibility in the paper's sense: the uniform-rate argument needs the
  // resulting maximum load to fit in one multicast period.
  sol.converged = sol.loads.max_load <= 1.0 + 1e-9;
  sol.solve_seconds = seconds_since(t0);
  return sol;
}

}  // namespace wmcast::assoc
