// k-connectivity multicast association (DESIGN.md §15-16): a user may be
// served by up to k APs simultaneously, combining one multicast stream per
// serving AP (additive combine rule — the multi-connectivity model of Zuhra
// et al., "Multi-Connectivity for Multicast Video Streaming", see PAPERS.md).
//
// The augmentation is a *decomposable local rule* over the base single-AP
// association, evaluated in three phases whose inputs are strictly local:
//
//   1. plan   (per AP)      — each (AP, session) stream is RUNNING (the base
//      association already transmits it; secondaries may join free if their
//      link sustains the advertised base tx rate) or STARTABLE (silent, but
//      at least one base-served session hearer could adopt it; advertised at
//      the min link over those potential adopters, optionally gated by the
//      AP's load budget with a conservative cost estimate).
//   2. derive (per user)    — each base-served user ranks its heard APs'
//      plan entries by (advertised rate desc, running-before-startable,
//      AP id asc) and takes the best min(k, |heard|) - 1 secondaries.
//   3. settle (per AP)      — running streams keep their base tx rate
//      (joiners decode at or above it, so the member min is unchanged);
//      started streams settle to the min link over their actual adopters.
//
// Because every phase reads only the base association, the scenario CSR and
// the previous phase's output, the rule needs no shared mutable state: it is
// trivially deterministic, bitwise identical at any thread count, and — the
// point of PR 10 — repairable per dirty region with exact equality to a cold
// re-derivation (ctrl/controller.cpp maintains the plan/overlay/tx tables
// incrementally and the chaos kconn-incremental oracle byte-checks them
// against this cold path every epoch). k == 1 stays bit-identical to every
// legacy solver by construction: the overlay is never materialized.
#pragma once

#include <vector>

#include "wmcast/assoc/solution.hpp"
#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

struct KconnParams {
  /// Maximum serving APs per user; effective cap is min(k, |heard-set|).
  int k = 1;
  bool multi_rate = true;
  /// Gate stream *starts* on the contributing AP's load budget (the MNU
  /// setting), using the conservative planning estimate stream_rate / p:
  /// actual adopters are a subset of the potential adopters p was minimized
  /// over, so the settled cost never exceeds the estimate and the gate can
  /// never admit a new budget violation. Joining a running stream is free and
  /// is never gated.
  bool enforce_budget = false;
};

/// The per-(AP, session) stream plan (phase 1 output), flattened row-major
/// [ap * n_sessions + session]. advert == 0 means the stream is unavailable
/// to secondaries; startable distinguishes silent-but-startable entries from
/// running ones.
struct KconnPlan {
  int n_aps = 0;
  int n_sessions = 0;
  std::vector<double> advert;
  std::vector<char> startable;
  /// Potential-adopter min: pmin[at(a, s)] = min link rate over base-served
  /// session-s hearers of a (+inf when there are none), and pcount = how many
  /// of them sit exactly at that min. For a silent stream pmin is exactly the
  /// planning rate p; for a running stream it is unused by the plan but kept
  /// valid so the controller can maintain it with O(1) arrival/departure
  /// deltas across epochs and re-plan a dirty AP in O(S) instead of
  /// O(members). The count makes departures cheap under the coarse 802.11
  /// rate quantization: a departing hearer often TIES the pool min, and only
  /// the departure of the last min-rate member forces a rescan.
  std::vector<double> pmin;
  std::vector<int> pcount;

  void resize(int aps, int sessions) {
    n_aps = aps;
    n_sessions = sessions;
    advert.assign(static_cast<size_t>(aps) * static_cast<size_t>(sessions), 0.0);
    startable.assign(static_cast<size_t>(aps) * static_cast<size_t>(sessions), 0);
    pmin.assign(static_cast<size_t>(aps) * static_cast<size_t>(sessions), 0.0);
    pcount.assign(static_cast<size_t>(aps) * static_cast<size_t>(sessions), 0);
  }
  size_t at(int a, int s) const {
    return static_cast<size_t>(a) * static_cast<size_t>(n_sessions) +
           static_cast<size_t>(s);
  }
};

/// Phase-2 candidate scratch, reusable across calls (and per pool lane on the
/// controller's parallel repair path).
struct KconnScratch {
  struct Candidate {
    double advert;
    int tier;  // 0 = running, 1 = startable
    int ap;
  };
  std::vector<Candidate> cands;
};

/// Phase 1a for one AP: rewrites the pmin row [a][*] by scanning AP a's
/// member CSR row — the exact full-rescan path. The controller's persistent
/// engine calls this only when a departure delta may have removed the min.
void kconn_scan_pmin(const wlan::Scenario& sc, const wlan::Association& base,
                     int a, KconnPlan& plan);

/// Phase 1b for one AP: rewrites the advert/startable rows [a][*] in O(S)
/// from base_loads and an already-valid pmin row. Running streams advertise
/// their base tx rate; silent streams with a finite pmin are budget-gated in
/// session-ascending order exactly as the one-shot plan.
void kconn_plan_from_pmin(const wlan::Scenario& sc,
                          const wlan::LoadReport& base_loads,
                          const KconnParams& params, int a, KconnPlan& plan);

/// Phase 1 for one AP: rewrites plan rows [a][*] (pmin included) from the
/// base association. Reads only AP a's member CSR row and base_loads' AP-a
/// entries. Equivalent to kconn_scan_pmin + kconn_plan_from_pmin.
void kconn_plan_ap(const wlan::Scenario& sc, const wlan::Association& base,
                   const wlan::LoadReport& base_loads, const KconnParams& params,
                   int a, KconnPlan& plan);

/// Phase 2 for one user: derives u's served-set (sorted ascending) into
/// `served`. Base-unserved users get an empty set; the base primary is always
/// a member. Reads only u's heard CSR row and the plan rows of heard APs.
void kconn_derive_user(const wlan::Scenario& sc, const wlan::Association& base,
                       const KconnPlan& plan, const KconnParams& params, int u,
                       std::vector<int>& served, KconnScratch& scratch);

/// Phase 3 for one AP: writes the settled per-session tx row for AP a
/// (tx_row[s], length n_sessions) given the full derived overlay. Running
/// streams keep base_loads.tx_rate; started streams take the min link over
/// their adopters (basic rate when !multi_rate); everything else is 0.
void kconn_settle_ap(const wlan::Scenario& sc, const wlan::LoadReport& base_loads,
                     const KconnParams& params, const KconnPlan& plan,
                     const wlan::MultiAssociation& multi, int a, double* tx_row);

/// Phase 4: folds a settled tx table into a MultiLoadReport in exactly
/// compute_multi_loads' accumulation order (APs ascending, sessions
/// ascending, users ascending), so the result is bitwise identical to
/// compute_multi_loads(sc, multi, ...) whenever `tx` matches the reference
/// min-rate fold — which the settle phase guarantees by construction.
wlan::MultiLoadReport kconn_collect_loads(const wlan::Scenario& sc,
                                          const wlan::MultiAssociation& multi,
                                          const std::vector<std::vector<double>>& tx);

/// Cold path: grows `base` (a legacy single-AP association) into per-user
/// served-sets of up to params.k APs by running phases 1-2 over the whole
/// scenario. `base_loads` must be compute_loads(sc, base, multi_rate). Users
/// unserved in `base` stay unserved (the primary view is preserved verbatim).
/// Deterministic: a pure function of (sc, base, base_loads, params).
wlan::MultiAssociation augment_to_k(const wlan::Scenario& sc,
                                    const wlan::Association& base,
                                    const wlan::LoadReport& base_loads,
                                    const KconnParams& params);

/// Fills sol.k / sol.multi / sol.multi_loads from sol.assoc / sol.loads.
/// At k <= 1 the overlay stays empty (sol.k = 1) — the legacy Solution is
/// untouched, preserving bit-identity with pre-k builds.
void finalize_kconn(const wlan::Scenario& sc, Solution& sol,
                    const KconnParams& params);

}  // namespace wmcast::assoc
