// k-connectivity multicast association (DESIGN.md §15): a user may be served
// by up to k APs simultaneously, combining one multicast stream per serving
// AP (additive combine rule — the multi-connectivity model of Zuhra et al.,
// "Multi-Connectivity for Multicast Video Streaming", see PAPERS.md).
//
// The solvers here are thin policies over the PR 2 coverage engine: the base
// single-AP association stays exactly what the legacy solver produced (so
// k == 1 is bit-identical to MNU/BLA/MLA/SSA by construction), and a serial
// lazy-greedy *augmentation* then grows per-user served-sets from the
// engine's (AP, session, rate-level) candidate sets, ranked by
// (new-users-gained / added-load) with the exact better_pick comparator.
// Adoptions that cost no extra load (the AP already transmits the session at
// a rate the new members can hear) naturally dominate. An optional
// local-search polish pass upgrades each user's weakest secondary stream to
// a stronger free one. Because the augmentation is serial and runs after a
// thread-invariant base solve, the full k-connectivity solution is bitwise
// identical at any thread count.
#pragma once

#include "wmcast/assoc/solution.hpp"
#include "wmcast/core/engine.hpp"
#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

struct KconnParams {
  /// Maximum serving APs per user; effective cap is min(k, |heard-set|).
  int k = 1;
  bool multi_rate = true;
  /// Gate every adoption on the contributing AP's load budget (the MNU
  /// setting). A rejected (AP, session, rate) candidate is dropped for good:
  /// AP spend only grows during augmentation, so infeasible stays infeasible.
  bool enforce_budget = false;
  /// Local-search pass after the greedy: per user (ascending id), replace the
  /// weakest non-primary stream with a strictly stronger already-transmitting
  /// one the user can hear. Swaps never add load, so they are always
  /// budget-safe.
  bool polish = false;
};

/// Grows `base` (a legacy single-AP association) into per-user served-sets of
/// up to params.k APs. `engine` must be built over `sc` with the same
/// multi_rate flag; `base_loads` must be compute_loads(sc, base, multi_rate).
/// Users unserved in `base` stay unserved (the primary view is preserved
/// verbatim: aps_of(u) always contains base.ap_of(u) for served users).
/// Deterministic: pure function of (sc, engine, base).
wlan::MultiAssociation augment_to_k(const wlan::Scenario& sc,
                                    const core::CoverageEngine& engine,
                                    const wlan::Association& base,
                                    const wlan::LoadReport& base_loads,
                                    const KconnParams& params);

/// Fills sol.k / sol.multi / sol.multi_loads from sol.assoc / sol.loads.
/// At k <= 1 the overlay stays empty (sol.k = 1) — the legacy Solution is
/// untouched, preserving bit-identity with pre-k builds.
void finalize_kconn(const wlan::Scenario& sc, const core::CoverageEngine& engine,
                    Solution& sol, const KconnParams& params);

}  // namespace wmcast::assoc
