// Local-search post-optimizer: hill climbing over single-user reassignments
// (including serving an unserved user or parking a served one) against one
// of the paper's three objectives. Useful
//   * as a polish pass after any algorithm (never worsens the objective),
//   * as a strong heuristic reference on instances too big for exact B&B.
//
// This is not from the paper; DESIGN.md lists it as an ablation tool. The
// MNU objective is lexicographic (served users, then total load) so polishing
// never sacrifices a served user for airtime.
#pragma once

#include <vector>

#include "wmcast/assoc/solution.hpp"
#include "wmcast/core/workspace.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::assoc {

enum class SearchObjective {
  kTotalLoad,      // MLA: minimize sum of AP loads
  kMaxLoad,        // BLA: minimize the maximum AP load (ties: total load)
  kServedUsers,    // MNU: maximize served users (ties: minimize total load)
};

struct LocalSearchParams {
  SearchObjective objective = SearchObjective::kTotalLoad;
  /// Enforce the scenario's per-AP budget on every accepted move.
  bool enforce_budget = true;
  bool multi_rate = true;
  int max_moves = 100000;
  /// When non-empty, only these users may be moved (dirty-region repair for
  /// the online controller); everyone else keeps their start assignment.
  /// The infeasible-start budget peel still considers all users.
  std::vector<int> restrict_users;
  /// Minimum load improvement (in load units) a move must buy to be
  /// accepted; moves that serve a previously unserved user are always
  /// accepted. 0 accepts any improvement. The online controller uses this to
  /// stop paying a re-association (a real handoff) for an epsilon gain.
  double min_gain = 0.0;
  /// Early stop: quit as soon as every coverable user is served and the total
  /// load is at or below this value (< 0 disables). The online controller's
  /// degradation escalation stops here instead of polishing to a local
  /// optimum, since every further move is a billable handoff.
  double target_total = -1.0;
};

struct LocalSearchStats {
  int moves = 0;
  bool reached_local_optimum = false;
};

/// Improves `start` by steepest single-user moves until a local optimum.
/// The returned solution is feasible whenever `start` is (moves that would
/// violate a budget are never accepted; an infeasible start is repaired by
/// unserving users on over-budget APs first).
///
/// `workspace`, when given, supplies all per-AP/per-user scratch; callers
/// running the search every epoch (the online controller) pass one so
/// steady-state invocations allocate nothing.
Solution local_search(const wlan::Scenario& sc, const wlan::Association& start,
                      const LocalSearchParams& params = {},
                      LocalSearchStats* stats = nullptr,
                      core::AssocWorkspace* workspace = nullptr);

}  // namespace wmcast::assoc
