#include "wmcast/assoc/dual.hpp"

#include <algorithm>

#include "wmcast/util/assert.hpp"

namespace wmcast::assoc {

DualReport evaluate_dual(const wlan::Scenario& sc, const wlan::Association& multicast,
                         const DualParams& params) {
  util::require(multicast.n_users() == sc.n_users(), "evaluate_dual: size mismatch");
  util::require(params.unicast_demand_per_user >= 0.0,
                "evaluate_dual: negative unicast demand");

  const auto loads = wlan::compute_loads(sc, multicast, params.multi_rate);

  DualReport rep;
  rep.multicast_load = loads.ap_load;
  rep.unicast_demand.assign(static_cast<size_t>(sc.n_aps()), 0.0);
  for (int u = 0; u < sc.n_users(); ++u) {
    const int anchor = sc.strongest_ap(u);
    if (anchor == wlan::kNoAp) continue;
    rep.unicast_demand[static_cast<size_t>(anchor)] += params.unicast_demand_per_user;
    const int mc = multicast.ap_of(u);
    if (mc != wlan::kNoAp && mc != anchor) ++rep.split_users;
  }

  rep.combined.resize(static_cast<size_t>(sc.n_aps()));
  for (int a = 0; a < sc.n_aps(); ++a) {
    const double c = rep.multicast_load[static_cast<size_t>(a)] +
                     rep.unicast_demand[static_cast<size_t>(a)];
    rep.combined[static_cast<size_t>(a)] = c;
    rep.max_combined = std::max(rep.max_combined, c);
    if (c > 1.0 + 1e-9) ++rep.overloaded_aps;
  }
  return rep;
}

}  // namespace wmcast::assoc
