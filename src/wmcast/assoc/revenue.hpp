// The paper's three revenue models (§1, §3.2), made computable. Each of the
// three objectives is motivated by one model:
//
//   * MNU <-> pay-per-view: multicast is charged by viewing time, so revenue
//     is proportional to the number of served multicast users.
//   * BLA <-> convex unicast revenue: unicast revenue has diminishing
//     returns in bandwidth ("convex" in the paper's phrasing, i.e. concave
//     increasing); with users spread uniformly across APs, total revenue
//     sum_a g(residual airtime of a) is maximized by balanced loads (the
//     Kelly-style argument the paper cites).
//   * MLA <-> flat per-byte unicast pricing: revenue is linear in total
//     residual airtime, i.e. maximized by minimizing total multicast load.
//
// compute_revenue evaluates all three models for any association, so the
// revenue_models bench can show each algorithm winning under "its" model.
#pragma once

#include "wmcast/wlan/association.hpp"

namespace wmcast::assoc {

struct RevenueModel {
  /// Pay-per-view fee per served multicast user (per unit time).
  double ppv_fee = 1.0;
  /// Concavity of the unicast revenue curve g(x) = log(1 + k*x) / log(1 + k),
  /// where x is an AP's residual airtime fraction; higher k = stronger
  /// diminishing returns. g(0) = 0, g(1) = 1.
  double unicast_concavity = 8.0;
  /// Price per unit of residual airtime under flat per-byte pricing.
  double per_byte_price = 1.0;
};

struct RevenueReport {
  double pay_per_view = 0.0;    // ppv_fee * served users
  double convex_unicast = 0.0;  // sum_a g(1 - load_a)
  double per_byte = 0.0;        // price * sum_a (1 - load_a)
};

RevenueReport compute_revenue(const wlan::Scenario& sc, const wlan::LoadReport& loads,
                              const RevenueModel& model = {});

}  // namespace wmcast::assoc
