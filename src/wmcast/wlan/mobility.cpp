#include "wmcast/wlan/mobility.hpp"

#include <algorithm>
#include <numeric>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

Scenario churn_epoch(const Scenario& sc, const ChurnParams& params, util::Rng& rng,
                     std::vector<int>* dirty_aps) {
  util::require(sc.has_geometry(), "churn_epoch: needs a geometric scenario");
  util::require(params.move_fraction >= 0.0 && params.move_fraction <= 1.0,
                "churn_epoch: bad move fraction");
  util::require(params.zap_fraction >= 0.0 && params.zap_fraction <= 1.0,
                "churn_epoch: bad zap fraction");

  double side = params.area_side_m;
  if (side <= 0.0) {
    for (const auto& p : sc.ap_positions()) side = std::max({side, p.x, p.y});
    for (const auto& p : sc.user_positions()) side = std::max({side, p.x, p.y});
  }

  // Draw the epoch's changes first (the RNG stream consumption is identical
  // whether the rebuild below is incremental or full).
  ScenarioDelta delta;
  for (int u = 0; u < sc.n_users(); ++u) {
    if (rng.next_bool(params.move_fraction)) {
      delta.moved.emplace_back(u, Point{rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    if (sc.n_sessions() > 1 && rng.next_bool(params.zap_fraction)) {
      // Switch to a different session, uniformly among the others.
      const int old = sc.user_session(u);
      int next = rng.next_int(sc.n_sessions() - 1);
      if (next >= old) ++next;
      delta.rezapped.emplace_back(u, next);
    }
  }

  // Fast path: the scenario was built with the same rate table, so only the
  // moved users' candidate rows change — re-query just those from the AP grid
  // instead of re-deriving every link. apply_delta yields a scenario
  // identical to the full rebuild, plus the exact dirty AP set.
  if (const RateTable* built_with = sc.rate_table();
      built_with != nullptr && *built_with == params.rate_table) {
    return sc.apply_delta(delta, dirty_aps);
  }

  // Table changed (e.g. power control rescaled the ranges): full rebuild;
  // every AP's candidate set may have changed.
  std::vector<Point> user_pos = sc.user_positions();
  std::vector<int> user_session(static_cast<size_t>(sc.n_users()));
  std::vector<double> session_rates(static_cast<size_t>(sc.n_sessions()));
  for (int u = 0; u < sc.n_users(); ++u) user_session[static_cast<size_t>(u)] = sc.user_session(u);
  for (int s = 0; s < sc.n_sessions(); ++s) session_rates[static_cast<size_t>(s)] = sc.session_rate(s);
  for (const auto& [u, p] : delta.moved) user_pos[static_cast<size_t>(u)] = p;
  for (const auto& [u, s] : delta.rezapped) user_session[static_cast<size_t>(u)] = s;
  if (dirty_aps != nullptr) {
    dirty_aps->resize(static_cast<size_t>(sc.n_aps()));
    std::iota(dirty_aps->begin(), dirty_aps->end(), 0);
  }
  return Scenario::from_geometry(sc.ap_positions(), std::move(user_pos),
                                 std::move(user_session), std::move(session_rates),
                                 params.rate_table, sc.load_budget());
}

Association carry_over(const Scenario& new_sc, const Scenario& old_sc,
                       const Association& assoc) {
  util::require(assoc.n_users() == new_sc.n_users() && assoc.n_users() == old_sc.n_users(),
                "carry_over: size mismatch");
  Association out = Association::none(new_sc.n_users());
  for (int u = 0; u < new_sc.n_users(); ++u) {
    const int a = assoc.ap_of(u);
    if (a == kNoAp) continue;
    const bool still_in_range = new_sc.in_range(a, u);
    const bool same_session = new_sc.user_session(u) == old_sc.user_session(u);
    if (still_in_range && same_session) out.user_ap[static_cast<size_t>(u)] = a;
  }
  return out;
}

int surviving_members(const Association& carried) {
  int n = 0;
  for (const int a : carried.user_ap) {
    if (a != kNoAp) ++n;
  }
  return n;
}

}  // namespace wmcast::wlan
