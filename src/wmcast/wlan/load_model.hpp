// Incremental multicast load model (DESIGN.md §14).
//
// ap_load_for_members() rescans an AP's whole member list to find each
// session's bottleneck rate — O(|members|) per evaluation. The controller's
// repair path evaluates thousands of candidate placements per epoch, each of
// which changes one membership, so those rescans dominate the serve path at
// scale. This model maintains, per (AP, session), the member count at every
// distinct link-rate *level* of the instance (Scenario::rate_levels() — 8 for
// 802.11a). Membership updates and what-if probes then cost O(levels), not
// O(members): the bottleneck is the lowest level with a nonzero count.
//
// Exactness contract: load(a) and every probe return doubles bit-identical
// to wlan::ap_load_for_members over the same member multiset. Rate levels
// hold the exact link-rate doubles, the per-session contribution is the same
// single division, and the summation visits sessions in the same ascending
// order — so replacing the rescan with the model changes no comparison
// anywhere, including 1e-12-epsilon tie-breaks.
//
// Scoped reuse: begin_scope() invalidates every AP in O(1) (per-AP epoch
// stamps, lazily cleared on first touch). The sharded repair gives each pool
// lane one model and re-scopes it per shard, so lane reuse can never leak
// membership across shards and per-shard setup costs O(shard members) only.
#pragma once

#include <cstdint>
#include <vector>

#include "wmcast/wlan/scenario.hpp"

namespace wmcast::wlan {

class LoadModel {
 public:
  /// Binds the model to `sc` with empty membership everywhere. Keeps
  /// container capacity across calls (steady-state epochs allocate nothing
  /// once cell capacity has warmed up).
  void reset(const Scenario& sc, bool multi_rate);

  /// O(1) re-scope: every AP becomes empty again; its cells are lazily
  /// cleared on first touch. Membership added before the call is forgotten.
  void begin_scope() { ++epoch_; }

  /// Adds/removes one member of AP `a`. `rate` must equal sc.link_rate(a, u)
  /// for the member being changed (callers on the CSR rows already hold it).
  /// Returns the AP's new load.
  double add(int a, int session, double rate);
  double remove(int a, int session, double rate);

  /// Current load of AP `a` (0 for an untouched AP).
  double load(int a) const {
    return ap_epoch_[static_cast<size_t>(a)] == epoch_
               ? ap_load_[static_cast<size_t>(a)]
               : 0.0;
  }

  /// What-if probes, pure: the load of `a` if a member of `session` at
  /// `rate` joined / left. load_without requires such a member to exist.
  double load_with(int a, int session, double rate) const;
  double load_without(int a, int session, double rate) const;

  /// Index of `rate` in the instance's ascending rate_levels().
  int level_of(double rate) const;

 private:
  // One (AP, session) aggregate: member count per rate level plus the cached
  // bottleneck (lowest occupied level). Cells of an AP stay sorted by
  // session id so summation order matches ap_load_for_members exactly.
  struct Cell {
    int session = 0;
    int32_t total = 0;
    int32_t min_lv = 0;
    std::vector<int32_t> count;
  };

  void touch(int a);
  double recompute(int a) const;
  double contrib(int session, int min_lv) const {
    return session_rate_[static_cast<size_t>(session)] /
           (multi_rate_ ? levels_[static_cast<size_t>(min_lv)] : basic_rate_);
  }

  const Scenario* sc_ = nullptr;
  bool multi_rate_ = true;
  double basic_rate_ = 0.0;
  std::vector<double> levels_;        // ascending distinct link rates
  std::vector<double> session_rate_;  // per-session stream rates
  std::vector<std::vector<Cell>> cells_;  // per AP, ascending session
  std::vector<double> ap_load_;
  std::vector<uint32_t> ap_epoch_;
  uint32_t epoch_ = 0;
};

}  // namespace wmcast::wlan
