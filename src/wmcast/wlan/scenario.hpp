// The WLAN instance the association algorithms operate on (§3.1 of the
// paper): a set of APs, a set of multicast users, per-link maximum PHY rates,
// multicast sessions with stream data rates, and a per-AP multicast load
// budget.
//
// Two construction paths:
//  * from_geometry   — node positions + a RateTable (the paper's evaluation);
//  * from_link_rates — an explicit AP×user rate matrix (the paper's worked
//                      examples, e.g. Fig. 1, use arbitrary rates).
//
// Storage is sparse (DESIGN.md §11): only positive link rates are kept, in
// CSR form — one strongest-first (ap, rate) row per user plus the
// users_of_ap transpose. Geometric instances are built by querying a
// uniform-grid index over the AP positions, so construction costs
// O(n_users · k̄) for average candidate degree k̄, not O(n_users · n_aps),
// and memory likewise. The dense-input constructor is retained for
// non-geometric/test instances and projected to CSR at build time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wmcast/wlan/geometry.hpp"
#include "wmcast/wlan/grid_index.hpp"
#include "wmcast/wlan/rate_table.hpp"

namespace wmcast::util {
class ThreadPool;
}

namespace wmcast::wlan {

/// Identifier conventions: APs, users and sessions are dense ints
/// [0, n_aps), [0, n_users), [0, n_sessions). kNoAp marks "unassociated".
inline constexpr int kNoAp = -1;

/// Non-owning view of a contiguous id list (a CSR row). Converts implicitly
/// from and to std::vector<int> so pre-sparse call sites — range-for loops,
/// `heard = sc.aps_of_user(u)` copies, EXPECT_EQ against vectors — keep
/// working unchanged. Valid as long as the owning Scenario is alive.
class IndexSpan {
 public:
  using value_type = int;
  using const_iterator = const int*;

  IndexSpan() = default;
  IndexSpan(const int* data, size_t size) : data_(data), size_(size) {}
  IndexSpan(const std::vector<int>& v) : data_(v.data()), size_(v.size()) {}

  const int* begin() const { return data_; }
  const int* end() const { return data_ + size_; }
  const int* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int operator[](size_t i) const { return data_[i]; }
  int front() const { return data_[0]; }

  operator std::vector<int>() const { return std::vector<int>(begin(), end()); }

  friend bool operator==(IndexSpan a, IndexSpan b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }

 private:
  const int* data_ = nullptr;
  size_t size_ = 0;
};

/// A batch of user-level changes for incremental rebuilds (mobility.cpp):
/// moved users get fresh candidate rows from the grid, rezapped users keep
/// their rows but change session. Duplicate user entries apply in order
/// (last wins for positions).
struct ScenarioDelta {
  std::vector<std::pair<int, Point>> moved;   // user -> new position
  std::vector<std::pair<int, int>> rezapped;  // user -> new session
};

/// Immutable problem instance. Invariants established at construction:
/// rates non-negative (0 = out of range), each user requests a valid session,
/// session stream rates positive, budget in (0, 1].
class Scenario {
 public:
  /// Geometric construction: link rate = table.rate_for_distance(|ap-user|).
  /// Signal strength ordering is by distance (closer = stronger). Candidate
  /// APs per user come from a uniform-grid index with cell size equal to the
  /// table's coverage radius. With a pool of size > 1 the per-user rows are
  /// built in parallel over static chunks — the result is bit-identical at
  /// any thread count (each row is a pure function of the inputs).
  static Scenario from_geometry(std::vector<Point> ap_pos, std::vector<Point> user_pos,
                                std::vector<int> user_session,
                                std::vector<double> session_rate_mbps,
                                const RateTable& table, double load_budget = 0.9,
                                util::ThreadPool* pool = nullptr);

  /// Reference construction: materializes the dense AP×user matrix with the
  /// pre-sparse O(n_aps · n_users) pairwise scan, then projects it to CSR.
  /// Produces a Scenario identical to from_geometry — kept as the
  /// differential-test oracle and the dense arm of bench/scale_build.
  static Scenario from_geometry_dense(std::vector<Point> ap_pos,
                                      std::vector<Point> user_pos,
                                      std::vector<int> user_session,
                                      std::vector<double> session_rate_mbps,
                                      const RateTable& table, double load_budget = 0.9);

  /// Explicit construction: link_rate[a][u] in Mbps, 0 = out of range.
  /// Signal strength ordering is by link rate (higher = stronger).
  static Scenario from_link_rates(std::vector<std::vector<double>> link_rate,
                                  std::vector<int> user_session,
                                  std::vector<double> session_rate_mbps,
                                  double load_budget = 0.9);

  int n_aps() const { return n_aps_; }
  int n_users() const { return n_users_; }
  int n_sessions() const { return static_cast<int>(session_rate_.size()); }

  /// Maximum PHY rate from AP `a` to user `u`; 0 when out of range. Binary
  /// search over the user's ap-sorted row (O(log k), k = candidate APs).
  double link_rate(int a, int u) const {
    const int64_t b = user_row_[static_cast<size_t>(u)];
    const int64_t e = user_row_[static_cast<size_t>(u) + 1];
    int64_t lo = b;
    int64_t hi = e;
    while (lo < hi) {
      const int64_t mid = lo + (hi - lo) / 2;
      const auto pos = static_cast<size_t>(b + nbr_by_ap_[static_cast<size_t>(mid)]);
      if (nbr_ap_[pos] < a) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == e) return 0.0;
    const auto pos = static_cast<size_t>(b + nbr_by_ap_[static_cast<size_t>(lo)]);
    return nbr_ap_[pos] == a ? nbr_rate_[pos] : 0.0;
  }
  bool in_range(int a, int u) const { return link_rate(a, u) > 0.0; }

  /// Session requested by user `u`.
  int user_session(int u) const { return user_session_[static_cast<size_t>(u)]; }
  /// Stream data rate of session `s` in Mbps.
  double session_rate(int s) const { return session_rate_[static_cast<size_t>(s)]; }

  /// Fraction of airtime each AP may spend on multicast (paper: 0.9).
  double load_budget() const { return load_budget_; }

  /// APs within range of user `u`, strongest signal first.
  IndexSpan aps_of_user(int u) const {
    const int64_t b = user_row_[static_cast<size_t>(u)];
    return {nbr_ap_.data() + b,
            static_cast<size_t>(user_row_[static_cast<size_t>(u) + 1] - b)};
  }
  /// Link rates parallel to aps_of_user(u): rates_of_user(u)[i] is the rate
  /// to aps_of_user(u)[i]. All entries are positive.
  const double* rates_of_user(int u) const {
    return nbr_rate_.data() + user_row_[static_cast<size_t>(u)];
  }

  /// Users within range of AP `a`, ascending id.
  IndexSpan users_of_ap(int a) const {
    const int64_t b = ap_row_[static_cast<size_t>(a)];
    return {ap_user_.data() + b,
            static_cast<size_t>(ap_row_[static_cast<size_t>(a) + 1] - b)};
  }
  /// Link rates parallel to users_of_ap(a).
  const double* rates_of_ap(int a) const {
    return ap_user_rate_.data() + ap_row_[static_cast<size_t>(a)];
  }

  /// Strongest-signal AP of user `u` (kNoAp when no AP is in range).
  int strongest_ap(int u) const { return strongest_ap_[static_cast<size_t>(u)]; }

  /// Lowest positive link rate in the instance — the "basic rate" used when
  /// multi-rate multicast is disabled (802.11 standard behaviour).
  double basic_rate() const { return basic_rate_; }

  /// Distinct link-rate values that can occur in this instance, ascending.
  /// Geometric instances list every rate of the build table (some may have
  /// zero occurrences); explicit instances list the rates actually present.
  const std::vector<double>& rate_levels() const { return rate_levels_; }
  /// Number of (ap, user) links carrying rate_levels()[i].
  const std::vector<int64_t>& rate_level_counts() const { return rate_level_count_; }

  /// True when built by from_geometry (positions available).
  bool has_geometry() const { return !ap_pos_.empty() || n_aps_ == 0; }
  const std::vector<Point>& ap_positions() const { return ap_pos_; }
  const std::vector<Point>& user_positions() const { return user_pos_; }
  /// The rate table a geometric instance was built with; nullptr for
  /// explicit (from_link_rates) instances.
  const RateTable* rate_table() const { return table_ ? &*table_ : nullptr; }
  /// The AP grid of a geometric instance (empty for explicit instances).
  const GridIndex& ap_grid() const { return grid_; }

  /// Users that at least one AP can reach; only these can ever be satisfied.
  int n_coverable_users() const { return n_coverable_; }

  /// Total stored positive links (CSR edges).
  int64_t n_links() const { return static_cast<int64_t>(nbr_ap_.size()); }
  /// Bytes held by this instance's containers (deterministic accounting of
  /// sizes, not allocator slack) — the scale bench's memory metric.
  size_t memory_bytes() const;

  /// A copy of this scenario with a different per-AP load budget.
  Scenario with_budget(double load_budget) const;
  /// A copy with different session stream rates (size must match).
  Scenario with_session_rates(std::vector<double> session_rate_mbps) const;

  /// Incremental rebuild (geometric instances only): returns a copy with the
  /// delta applied. Moved users' candidate rows are re-queried from the grid;
  /// everyone else's rows are copied verbatim, so the result is identical to
  /// a full from_geometry at the new positions. `dirty_aps` (optional out)
  /// receives the ascending ids of every AP whose candidate set, member
  /// rates, or (ap, session) membership may have changed — exactly the
  /// groups a ctrl-style dirty-region repair must re-project.
  Scenario apply_delta(const ScenarioDelta& delta, std::vector<int>* dirty_aps) const;

 private:
  Scenario() = default;

  void validate_core() const;
  void build_geometric_rows(util::ThreadPool* pool);
  void build_transpose();
  void finalize_stats();

  int n_aps_ = 0;
  int n_users_ = 0;
  std::vector<int> user_session_;
  std::vector<double> session_rate_;
  double load_budget_ = 0.9;
  double basic_rate_ = 0.0;
  int n_coverable_ = 0;

  // Primary CSR: per-user candidate rows, strongest-first (by distance for
  // geometric instances, by rate for explicit ones; AP id breaks ties).
  std::vector<int64_t> user_row_;  // n_users + 1 offsets
  std::vector<int> nbr_ap_;        // candidate AP ids
  std::vector<double> nbr_rate_;   // positive rates, parallel to nbr_ap_
  // Row-local positions sorted by AP id — the link_rate(a, u) search index.
  std::vector<int> nbr_by_ap_;

  // Transpose CSR: per-AP member rows, ascending user id, rates paired.
  std::vector<int64_t> ap_row_;  // n_aps + 1 offsets
  std::vector<int> ap_user_;
  std::vector<double> ap_user_rate_;

  std::vector<int> strongest_ap_;
  std::vector<double> rate_levels_;        // ascending distinct rates
  std::vector<int64_t> rate_level_count_;  // links per level

  std::vector<Point> ap_pos_;    // empty for explicit instances
  std::vector<Point> user_pos_;  // empty for explicit instances
  std::optional<RateTable> table_;  // set for geometric instances
  GridIndex grid_;                  // AP grid of geometric instances
};

}  // namespace wmcast::wlan
