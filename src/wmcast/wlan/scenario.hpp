// The WLAN instance the association algorithms operate on (§3.1 of the
// paper): a set of APs, a set of multicast users, per-link maximum PHY rates,
// multicast sessions with stream data rates, and a per-AP multicast load
// budget.
//
// Two construction paths:
//  * from_geometry   — node positions + a RateTable (the paper's evaluation);
//  * from_link_rates — an explicit AP×user rate matrix (the paper's worked
//                      examples, e.g. Fig. 1, use arbitrary rates).
#pragma once

#include <string>
#include <vector>

#include "wmcast/wlan/geometry.hpp"
#include "wmcast/wlan/rate_table.hpp"

namespace wmcast::wlan {

/// Identifier conventions: APs, users and sessions are dense ints
/// [0, n_aps), [0, n_users), [0, n_sessions). kNoAp marks "unassociated".
inline constexpr int kNoAp = -1;

/// Immutable problem instance. Invariants established at construction:
/// rates non-negative (0 = out of range), each user requests a valid session,
/// session stream rates positive, budget in (0, 1].
class Scenario {
 public:
  /// Geometric construction: link rate = table.rate_for_distance(|ap-user|).
  /// Signal strength ordering is by distance (closer = stronger).
  static Scenario from_geometry(std::vector<Point> ap_pos, std::vector<Point> user_pos,
                                std::vector<int> user_session,
                                std::vector<double> session_rate_mbps,
                                const RateTable& table, double load_budget = 0.9);

  /// Explicit construction: link_rate[a][u] in Mbps, 0 = out of range.
  /// Signal strength ordering is by link rate (higher = stronger).
  static Scenario from_link_rates(std::vector<std::vector<double>> link_rate,
                                  std::vector<int> user_session,
                                  std::vector<double> session_rate_mbps,
                                  double load_budget = 0.9);

  int n_aps() const { return n_aps_; }
  int n_users() const { return n_users_; }
  int n_sessions() const { return static_cast<int>(session_rate_.size()); }

  /// Maximum PHY rate from AP `a` to user `u`; 0 when out of range.
  double link_rate(int a, int u) const { return link_rate_[idx(a, u)]; }
  bool in_range(int a, int u) const { return link_rate(a, u) > 0.0; }

  /// Session requested by user `u`.
  int user_session(int u) const { return user_session_[static_cast<size_t>(u)]; }
  /// Stream data rate of session `s` in Mbps.
  double session_rate(int s) const { return session_rate_[static_cast<size_t>(s)]; }

  /// Fraction of airtime each AP may spend on multicast (paper: 0.9).
  double load_budget() const { return load_budget_; }

  /// APs within range of user `u`, strongest signal first.
  const std::vector<int>& aps_of_user(int u) const {
    return aps_of_user_[static_cast<size_t>(u)];
  }
  /// Users within range of AP `a`, ascending id.
  const std::vector<int>& users_of_ap(int a) const {
    return users_of_ap_[static_cast<size_t>(a)];
  }
  /// Strongest-signal AP of user `u` (kNoAp when no AP is in range).
  int strongest_ap(int u) const { return strongest_ap_[static_cast<size_t>(u)]; }

  /// Lowest positive link rate in the instance — the "basic rate" used when
  /// multi-rate multicast is disabled (802.11 standard behaviour).
  double basic_rate() const { return basic_rate_; }

  /// True when built by from_geometry (positions available).
  bool has_geometry() const { return !ap_pos_.empty() || n_aps_ == 0; }
  const std::vector<Point>& ap_positions() const { return ap_pos_; }
  const std::vector<Point>& user_positions() const { return user_pos_; }

  /// Users that at least one AP can reach; only these can ever be satisfied.
  int n_coverable_users() const { return n_coverable_; }

  /// A copy of this scenario with a different per-AP load budget.
  Scenario with_budget(double load_budget) const;
  /// A copy with different session stream rates (size must match).
  Scenario with_session_rates(std::vector<double> session_rate_mbps) const;

 private:
  Scenario() = default;
  void finalize();  // builds caches, validates, computes basic_rate_
  size_t idx(int a, int u) const {
    return static_cast<size_t>(a) * static_cast<size_t>(n_users_) +
           static_cast<size_t>(u);
  }

  int n_aps_ = 0;
  int n_users_ = 0;
  std::vector<double> link_rate_;   // row-major [ap][user]
  std::vector<int> user_session_;
  std::vector<double> session_rate_;
  double load_budget_ = 0.9;
  double basic_rate_ = 0.0;
  int n_coverable_ = 0;

  std::vector<Point> ap_pos_;    // empty for explicit instances
  std::vector<Point> user_pos_;  // empty for explicit instances

  std::vector<std::vector<int>> aps_of_user_;
  std::vector<std::vector<int>> users_of_ap_;
  std::vector<int> strongest_ap_;
};

}  // namespace wmcast::wlan
