// 2-D geometry for node placement.
#pragma once

#include <cmath>

namespace wmcast::wlan {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

inline double distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace wmcast::wlan
