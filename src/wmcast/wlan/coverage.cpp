#include "wmcast/wlan/coverage.hpp"

#include <algorithm>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

CoverageReport analyze_coverage(const Scenario& sc, int histogram_buckets) {
  util::require(histogram_buckets >= 2, "analyze_coverage: need at least two buckets");

  CoverageReport rep;
  rep.aps_per_user_histogram.assign(static_cast<size_t>(histogram_buckets), 0);

  // Best-rate histogram keyed by the scenario's rate-level index: every rate a
  // user can see is one of the (few) values in rate_levels(), so a flat count
  // array replaces the old std::map<double, int> — no tree allocations in the
  // per-user loop, identical ascending output order.
  const std::vector<double>& levels = sc.rate_levels();
  std::vector<int> best_rate_count(levels.size(), 0);
  int64_t ap_count_sum = 0;
  for (int u = 0; u < sc.n_users(); ++u) {
    const int k = static_cast<int>(sc.aps_of_user(u).size());
    if (k == 0) {
      ++rep.uncoverable_users;
    } else {
      ++rep.coverable_users;
      // Rows are strongest-first, so the best rate is entry 0.
      const double best = sc.rates_of_user(u)[0];
      const auto it = std::lower_bound(levels.begin(), levels.end(), best);
      WMCAST_ASSERT(it != levels.end() && *it == best,
                    "coverage: best rate missing from rate_levels()");
      ++best_rate_count[static_cast<size_t>(it - levels.begin())];
    }
    ap_count_sum += k;
    rep.max_aps_per_user = std::max(rep.max_aps_per_user, k);
    const int bucket = std::min(k, histogram_buckets - 1);
    ++rep.aps_per_user_histogram[static_cast<size_t>(bucket)];
  }
  rep.mean_aps_per_user =
      sc.n_users() > 0 ? static_cast<double>(ap_count_sum) / sc.n_users() : 0.0;

  for (size_t i = 0; i < levels.size(); ++i) {
    if (best_rate_count[i] == 0) continue;  // keep only-present-rates output
    rep.best_rate_values.push_back(levels[i]);
    rep.best_rate_counts.push_back(best_rate_count[i]);
  }

  int64_t user_count_sum = 0;
  for (int a = 0; a < sc.n_aps(); ++a) {
    const int k = static_cast<int>(sc.users_of_ap(a).size());
    user_count_sum += k;
    rep.max_users_per_ap = std::max(rep.max_users_per_ap, k);
    if (k == 0) ++rep.idle_aps;
  }
  rep.mean_users_per_ap =
      sc.n_aps() > 0 ? static_cast<double>(user_count_sum) / sc.n_aps() : 0.0;
  return rep;
}

}  // namespace wmcast::wlan
