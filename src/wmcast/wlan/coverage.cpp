#include "wmcast/wlan/coverage.hpp"

#include <algorithm>
#include <map>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

CoverageReport analyze_coverage(const Scenario& sc, int histogram_buckets) {
  util::require(histogram_buckets >= 2, "analyze_coverage: need at least two buckets");

  CoverageReport rep;
  rep.aps_per_user_histogram.assign(static_cast<size_t>(histogram_buckets), 0);

  std::map<double, int> best_rate_hist;
  int64_t ap_count_sum = 0;
  for (int u = 0; u < sc.n_users(); ++u) {
    const int k = static_cast<int>(sc.aps_of_user(u).size());
    if (k == 0) {
      ++rep.uncoverable_users;
    } else {
      ++rep.coverable_users;
      ++best_rate_hist[sc.link_rate(sc.strongest_ap(u), u)];
    }
    ap_count_sum += k;
    rep.max_aps_per_user = std::max(rep.max_aps_per_user, k);
    const int bucket = std::min(k, histogram_buckets - 1);
    ++rep.aps_per_user_histogram[static_cast<size_t>(bucket)];
  }
  rep.mean_aps_per_user =
      sc.n_users() > 0 ? static_cast<double>(ap_count_sum) / sc.n_users() : 0.0;

  for (const auto& [rate, count] : best_rate_hist) {
    rep.best_rate_values.push_back(rate);
    rep.best_rate_counts.push_back(count);
  }

  int64_t user_count_sum = 0;
  for (int a = 0; a < sc.n_aps(); ++a) {
    const int k = static_cast<int>(sc.users_of_ap(a).size());
    user_count_sum += k;
    rep.max_users_per_ap = std::max(rep.max_users_per_ap, k);
    if (k == 0) ++rep.idle_aps;
  }
  rep.mean_users_per_ap =
      sc.n_aps() > 0 ? static_cast<double>(user_count_sum) / sc.n_aps() : 0.0;
  return rep;
}

}  // namespace wmcast::wlan
