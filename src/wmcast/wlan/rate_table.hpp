// Discrete PHY-rate model: transmission rate as a step function of distance.
// The default table is Table 1 of the paper (802.11a, Manshaei & Turletti):
//
//   Rate (Mbps)        6    12   18   24   36   48   54
//   Max distance (m)   200  145  105  85   60   40   35
#pragma once

#include <vector>

namespace wmcast::wlan {

/// One step of the rate/distance staircase.
struct RateStep {
  double rate_mbps = 0.0;
  double max_distance_m = 0.0;

  friend bool operator==(const RateStep&, const RateStep&) = default;
};

/// Monotone rate staircase: higher rates reach shorter distances. Immutable
/// after construction; validates monotonicity.
class RateTable {
 public:
  /// Steps may be given in any order; stored sorted by descending rate.
  /// Requires: all rates/distances positive, strictly monotone (higher rate =>
  /// strictly smaller max distance), no duplicate rates.
  explicit RateTable(std::vector<RateStep> steps);

  /// The paper's Table 1 (IEEE 802.11a).
  static RateTable ieee80211a();

  /// Highest rate usable at `distance_m`; 0 when out of range.
  double rate_for_distance(double distance_m) const;

  /// Index into steps() of the rate usable at `distance_m`; -1 out of range.
  int step_index_for_distance(double distance_m) const;

  /// Steps sorted by descending rate (ascending distance threshold).
  const std::vector<RateStep>& steps() const { return steps_; }

  /// Lowest (basic) rate — what the 802.11 standard mandates for broadcast.
  double basic_rate() const { return steps_.back().rate_mbps; }
  /// Radio range: the basic rate's distance threshold.
  double range_m() const { return steps_.back().max_distance_m; }

  /// A copy of this table with every distance threshold scaled by `factor`
  /// (used by the adaptive-power-control extension; factor in (0, inf)).
  RateTable scaled_range(double factor) const;

  /// Equal iff the step staircases match exactly (the incremental-churn fast
  /// path requires the rebuild table to be the build table).
  friend bool operator==(const RateTable& a, const RateTable& b) {
    return a.steps_ == b.steps_;
  }

 private:
  std::vector<RateStep> steps_;  // descending rate
};

}  // namespace wmcast::wlan
