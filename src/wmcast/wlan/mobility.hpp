// Quasi-static dynamics (paper §3.1: users "tend to stay at one place for a
// relatively long time period before changing their location", citing the
// SIGMETRICS/MobiCom WLAN measurement studies). The model is epoch-based:
// between epochs a fraction of users relocates (mobility) and a fraction
// re-picks its multicast session (channel zapping). The distributed
// algorithms then resume from the carried-over association — exactly the
// incremental regime the paper argues favors distributed control.
#pragma once

#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::wlan {

struct ChurnParams {
  /// Fraction of users that jump to a fresh uniform location per epoch.
  double move_fraction = 0.1;
  /// Fraction of users that switch to a different random session per epoch.
  double zap_fraction = 0.05;
  /// Rate table used to re-derive link rates after moves.
  RateTable rate_table = RateTable::ieee80211a();
  /// Area side for re-placement; 0 = infer from current positions.
  double area_side_m = 0.0;
};

/// One epoch of churn: returns a new scenario (same APs, sessions, budget)
/// with some users relocated and/or re-zapped. Requires a geometric scenario.
///
/// When `sc` was built with the same rate table as `params`, the rebuild is
/// incremental: only the moved users' candidate rows are re-queried from the
/// AP grid (Scenario::apply_delta) — the result is identical to a full
/// rebuild. `dirty_aps` (optional out) receives the ascending ids of every AP
/// whose candidate/member structure may have changed — exactly the groups a
/// ctrl-style dirty-region repair must re-project (all APs on the full-
/// rebuild path, i.e. when the table changed).
Scenario churn_epoch(const Scenario& sc, const ChurnParams& params, util::Rng& rng,
                     std::vector<int>* dirty_aps = nullptr);

/// Carries an association onto a (churned) scenario: users keep their AP if
/// it is still in range AND they still request the same session they can get
/// there; otherwise they become unassociated (they must re-associate).
/// `old_sc` supplies the previous session requests for the zap check.
Association carry_over(const Scenario& new_sc, const Scenario& old_sc,
                       const Association& assoc);

/// Number of users whose association survived the carry-over.
int surviving_members(const Association& carried);

}  // namespace wmcast::wlan
