// Uniform-grid spatial index over AP positions. With cell size equal to the
// rate table's maximum coverage radius, every point's in-range APs lie in the
// 3x3 cell neighborhood of its own cell, so candidate generation is O(k)
// in the local AP density instead of O(n_aps) — the geometric model's link
// matrix is sparse by construction (DESIGN.md §11).
//
// Queries are robust at cell boundaries: the candidate cell rectangle is
// computed from floor((coord ± radius - origin) / cell), which by floor's
// monotonicity always covers the closed disk of the query radius, including
// points outside the indexed bounding box and APs at exactly the maximum
// range (rate_for_distance uses <=).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "wmcast/wlan/geometry.hpp"

namespace wmcast::wlan {

class GridIndex {
 public:
  GridIndex() = default;

  /// Indexes `points` with square cells of side `cell_size` (> 0). The grid
  /// origin/extent is the bounding box of the points; queries may lie
  /// anywhere in the plane.
  GridIndex(const std::vector<Point>& points, double cell_size);

  bool empty() const { return n_points_ == 0; }
  int n_points() const { return n_points_; }
  double cell_size() const { return cell_; }

  /// Equal iff built from the same points and cell size (the construction is
  /// deterministic, so field-wise comparison is exact).
  friend bool operator==(const GridIndex&, const GridIndex&) = default;

  /// Row-major key of the cell containing `p`, clamped to the indexed extent.
  /// Sorting by (cell_key, id) groups spatially adjacent points while keeping
  /// a deterministic total order — consumers use it to walk per-point work in
  /// cache-friendly cell order (points in one cell share most of their
  /// in-range neighborhood).
  int64_t cell_key(const Point& p) const {
    if (n_points_ == 0) return 0;
    const int cx = std::clamp(
        static_cast<int>(std::floor((p.x - min_x_) / cell_)), 0, nx_ - 1);
    const int cy = std::clamp(
        static_cast<int>(std::floor((p.y - min_y_) / cell_)), 0, ny_ - 1);
    return static_cast<int64_t>(cy) * nx_ + cx;
  }

  /// Calls fn(i) for every indexed point i whose cell intersects the closed
  /// disk (center `p`, radius `radius`). Candidates are a superset of the
  /// points within `radius`; callers filter by exact distance. Within one
  /// cell, indices come out ascending; cells are visited row-major, so the
  /// overall candidate order is deterministic (but not globally sorted).
  template <typename Fn>
  void for_each_candidate(const Point& p, double radius, Fn&& fn) const {
    if (n_points_ == 0) return;
    int cx_lo, cx_hi, cy_lo, cy_hi;
    cell_range(p, radius, cx_lo, cx_hi, cy_lo, cy_hi);
    for (int cy = cy_lo; cy <= cy_hi; ++cy) {
      for (int cx = cx_lo; cx <= cx_hi; ++cx) {
        const size_t c = static_cast<size_t>(cy) * static_cast<size_t>(nx_) +
                         static_cast<size_t>(cx);
        for (int32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
          fn(static_cast<int>(bucket_[static_cast<size_t>(k)]));
        }
      }
    }
  }

 private:
  /// Clamped cell rectangle covering the disk (center p, radius r).
  void cell_range(const Point& p, double radius, int& cx_lo, int& cx_hi, int& cy_lo,
                  int& cy_hi) const;

  int n_points_ = 0;
  double cell_ = 1.0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  int nx_ = 0;  // cells per row
  int ny_ = 0;  // rows
  std::vector<int32_t> cell_start_;  // CSR offsets, nx_*ny_ + 1
  std::vector<int32_t> bucket_;      // point ids, ascending within each cell
};

}  // namespace wmcast::wlan
