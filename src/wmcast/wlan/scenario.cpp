#include "wmcast/wlan/scenario.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

Scenario Scenario::from_geometry(std::vector<Point> ap_pos, std::vector<Point> user_pos,
                                 std::vector<int> user_session,
                                 std::vector<double> session_rate_mbps,
                                 const RateTable& table, double load_budget) {
  Scenario sc;
  sc.n_aps_ = static_cast<int>(ap_pos.size());
  sc.n_users_ = static_cast<int>(user_pos.size());
  sc.ap_pos_ = std::move(ap_pos);
  sc.user_pos_ = std::move(user_pos);
  sc.user_session_ = std::move(user_session);
  sc.session_rate_ = std::move(session_rate_mbps);
  sc.load_budget_ = load_budget;

  sc.link_rate_.resize(static_cast<size_t>(sc.n_aps_) * sc.n_users_);
  for (int a = 0; a < sc.n_aps_; ++a) {
    for (int u = 0; u < sc.n_users_; ++u) {
      const double d = distance(sc.ap_pos_[static_cast<size_t>(a)],
                                sc.user_pos_[static_cast<size_t>(u)]);
      sc.link_rate_[sc.idx(a, u)] = table.rate_for_distance(d);
    }
  }
  sc.finalize();
  return sc;
}

Scenario Scenario::from_link_rates(std::vector<std::vector<double>> link_rate,
                                   std::vector<int> user_session,
                                   std::vector<double> session_rate_mbps,
                                   double load_budget) {
  Scenario sc;
  sc.n_aps_ = static_cast<int>(link_rate.size());
  sc.n_users_ = sc.n_aps_ > 0 ? static_cast<int>(link_rate[0].size())
                              : static_cast<int>(user_session.size());
  sc.user_session_ = std::move(user_session);
  sc.session_rate_ = std::move(session_rate_mbps);
  sc.load_budget_ = load_budget;

  sc.link_rate_.resize(static_cast<size_t>(sc.n_aps_) * sc.n_users_);
  for (int a = 0; a < sc.n_aps_; ++a) {
    util::require(static_cast<int>(link_rate[static_cast<size_t>(a)].size()) == sc.n_users_,
                  "Scenario: ragged link-rate matrix");
    for (int u = 0; u < sc.n_users_; ++u) {
      sc.link_rate_[sc.idx(a, u)] = link_rate[static_cast<size_t>(a)][static_cast<size_t>(u)];
    }
  }
  sc.finalize();
  return sc;
}

void Scenario::finalize() {
  util::require(static_cast<int>(user_session_.size()) == n_users_,
                "Scenario: user_session size mismatch");
  util::require(!session_rate_.empty() || n_users_ == 0,
                "Scenario: need at least one session");
  util::require(load_budget_ > 0.0 && load_budget_ <= 1.0,
                "Scenario: load budget must be in (0, 1]");
  for (const double r : session_rate_) {
    util::require(r > 0.0, "Scenario: session rates must be positive");
  }
  for (int u = 0; u < n_users_; ++u) {
    const int s = user_session_[static_cast<size_t>(u)];
    util::require(s >= 0 && s < n_sessions(), "Scenario: user requests invalid session");
  }
  for (const double r : link_rate_) {
    util::require(r >= 0.0, "Scenario: link rates must be non-negative");
  }

  aps_of_user_.assign(static_cast<size_t>(n_users_), {});
  users_of_ap_.assign(static_cast<size_t>(n_aps_), {});
  strongest_ap_.assign(static_cast<size_t>(n_users_), kNoAp);
  basic_rate_ = std::numeric_limits<double>::infinity();
  n_coverable_ = 0;

  for (int u = 0; u < n_users_; ++u) {
    auto& aps = aps_of_user_[static_cast<size_t>(u)];
    for (int a = 0; a < n_aps_; ++a) {
      const double r = link_rate(a, u);
      if (r > 0.0) {
        aps.push_back(a);
        users_of_ap_[static_cast<size_t>(a)].push_back(u);
        basic_rate_ = std::min(basic_rate_, r);
      }
    }
    if (aps.empty()) continue;
    ++n_coverable_;
    // Strongest-signal order: by distance for geometric instances, by link
    // rate otherwise; AP id breaks ties deterministically.
    if (!ap_pos_.empty()) {
      const Point up = user_pos_[static_cast<size_t>(u)];
      std::sort(aps.begin(), aps.end(), [&](int a, int b) {
        const double da = distance(ap_pos_[static_cast<size_t>(a)], up);
        const double db = distance(ap_pos_[static_cast<size_t>(b)], up);
        return da != db ? da < db : a < b;
      });
    } else {
      std::sort(aps.begin(), aps.end(), [&](int a, int b) {
        const double ra = link_rate(a, u);
        const double rb = link_rate(b, u);
        return ra != rb ? ra > rb : a < b;
      });
    }
    strongest_ap_[static_cast<size_t>(u)] = aps.front();
  }
  if (n_coverable_ == 0) basic_rate_ = 0.0;
}

Scenario Scenario::with_budget(double load_budget) const {
  Scenario sc = *this;
  sc.load_budget_ = load_budget;
  util::require(load_budget > 0.0 && load_budget <= 1.0,
                "Scenario: load budget must be in (0, 1]");
  return sc;
}

Scenario Scenario::with_session_rates(std::vector<double> session_rate_mbps) const {
  util::require(session_rate_mbps.size() == session_rate_.size(),
                "Scenario: session rate count mismatch");
  Scenario sc = *this;
  sc.session_rate_ = std::move(session_rate_mbps);
  for (const double r : sc.session_rate_) {
    util::require(r > 0.0, "Scenario: session rates must be positive");
  }
  return sc;
}

}  // namespace wmcast::wlan
