#include "wmcast/wlan/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "wmcast/util/assert.hpp"
#include "wmcast/util/thread_pool.hpp"

namespace wmcast::wlan {

namespace {

/// One candidate AP of one user, as found by the grid query.
struct Cand {
  double dist;
  int ap;
  int step;  // index into table.steps()
};

/// Strongest-first order of a geometric row: closer = stronger, AP id ties.
bool closer(const Cand& a, const Cand& b) {
  return a.dist != b.dist ? a.dist < b.dist : a.ap < b.ap;
}

/// Gathers the in-range candidates of a point from the AP grid. The grid
/// over-approximates by cell, so each candidate is distance-filtered exactly;
/// rate_for_distance is inclusive at each threshold, hence `d <= radius`
/// keeps an AP at exactly the maximum range.
void query_row(const GridIndex& grid, const std::vector<Point>& ap_pos,
               const RateTable& table, double radius, const Point& up,
               std::vector<Cand>& out) {
  out.clear();
  grid.for_each_candidate(up, radius, [&](int a) {
    const double d = distance(ap_pos[static_cast<size_t>(a)], up);
    const int step = table.step_index_for_distance(d);
    if (step >= 0) out.push_back({d, a, step});
  });
  std::sort(out.begin(), out.end(), closer);
}

}  // namespace

Scenario Scenario::from_geometry(std::vector<Point> ap_pos, std::vector<Point> user_pos,
                                 std::vector<int> user_session,
                                 std::vector<double> session_rate_mbps,
                                 const RateTable& table, double load_budget,
                                 util::ThreadPool* pool) {
  Scenario sc;
  sc.n_aps_ = static_cast<int>(ap_pos.size());
  sc.n_users_ = static_cast<int>(user_pos.size());
  sc.ap_pos_ = std::move(ap_pos);
  sc.user_pos_ = std::move(user_pos);
  sc.user_session_ = std::move(user_session);
  sc.session_rate_ = std::move(session_rate_mbps);
  sc.load_budget_ = load_budget;
  sc.table_ = table;
  sc.validate_core();
  sc.grid_ = GridIndex(sc.ap_pos_, table.range_m());
  sc.build_geometric_rows(pool);
  sc.build_transpose();
  sc.finalize_stats();
  return sc;
}

Scenario Scenario::from_geometry_dense(std::vector<Point> ap_pos,
                                       std::vector<Point> user_pos,
                                       std::vector<int> user_session,
                                       std::vector<double> session_rate_mbps,
                                       const RateTable& table, double load_budget) {
  Scenario sc;
  sc.n_aps_ = static_cast<int>(ap_pos.size());
  sc.n_users_ = static_cast<int>(user_pos.size());
  sc.ap_pos_ = std::move(ap_pos);
  sc.user_pos_ = std::move(user_pos);
  sc.user_session_ = std::move(user_session);
  sc.session_rate_ = std::move(session_rate_mbps);
  sc.load_budget_ = load_budget;
  sc.table_ = table;
  sc.validate_core();
  sc.grid_ = GridIndex(sc.ap_pos_, table.range_m());

  // The pre-sparse build: materialize the full AP×user matrix with the
  // O(n_aps · n_users) pairwise scan, then project its positive entries.
  std::vector<double> dense(static_cast<size_t>(sc.n_aps_) *
                            static_cast<size_t>(sc.n_users_));
  for (int a = 0; a < sc.n_aps_; ++a) {
    for (int u = 0; u < sc.n_users_; ++u) {
      const double d = distance(sc.ap_pos_[static_cast<size_t>(a)],
                                sc.user_pos_[static_cast<size_t>(u)]);
      dense[static_cast<size_t>(a) * static_cast<size_t>(sc.n_users_) +
            static_cast<size_t>(u)] = table.rate_for_distance(d);
    }
  }

  const int n_steps = static_cast<int>(table.steps().size());
  sc.rate_levels_.resize(static_cast<size_t>(n_steps));
  for (int i = 0; i < n_steps; ++i) {
    sc.rate_levels_[static_cast<size_t>(n_steps - 1 - i)] =
        table.steps()[static_cast<size_t>(i)].rate_mbps;
  }
  sc.rate_level_count_.assign(static_cast<size_t>(n_steps), 0);

  sc.user_row_.assign(static_cast<size_t>(sc.n_users_) + 1, 0);
  sc.strongest_ap_.assign(static_cast<size_t>(sc.n_users_), kNoAp);
  std::vector<Cand> cand;
  for (int u = 0; u < sc.n_users_; ++u) {
    cand.clear();
    const Point up = sc.user_pos_[static_cast<size_t>(u)];
    for (int a = 0; a < sc.n_aps_; ++a) {
      if (dense[static_cast<size_t>(a) * static_cast<size_t>(sc.n_users_) +
                static_cast<size_t>(u)] <= 0.0) {
        continue;
      }
      const double d = distance(sc.ap_pos_[static_cast<size_t>(a)], up);
      cand.push_back({d, a, table.step_index_for_distance(d)});
    }
    std::sort(cand.begin(), cand.end(), closer);
    const auto base = static_cast<int64_t>(sc.nbr_ap_.size());
    for (const Cand& c : cand) {
      sc.nbr_ap_.push_back(c.ap);
      sc.nbr_rate_.push_back(table.steps()[static_cast<size_t>(c.step)].rate_mbps);
      ++sc.rate_level_count_[static_cast<size_t>(n_steps - 1 - c.step)];
    }
    sc.nbr_by_ap_.resize(sc.nbr_ap_.size());
    int* by = sc.nbr_by_ap_.data() + base;
    std::iota(by, by + cand.size(), 0);
    std::sort(by, by + cand.size(), [&](int x, int y) {
      return sc.nbr_ap_[static_cast<size_t>(base + x)] <
             sc.nbr_ap_[static_cast<size_t>(base + y)];
    });
    if (!cand.empty()) {
      sc.strongest_ap_[static_cast<size_t>(u)] = sc.nbr_ap_[static_cast<size_t>(base)];
    }
    sc.user_row_[static_cast<size_t>(u) + 1] = static_cast<int64_t>(sc.nbr_ap_.size());
  }
  sc.build_transpose();
  sc.finalize_stats();
  return sc;
}

Scenario Scenario::from_link_rates(std::vector<std::vector<double>> link_rate,
                                   std::vector<int> user_session,
                                   std::vector<double> session_rate_mbps,
                                   double load_budget) {
  Scenario sc;
  sc.n_aps_ = static_cast<int>(link_rate.size());
  sc.n_users_ = sc.n_aps_ > 0 ? static_cast<int>(link_rate[0].size())
                              : static_cast<int>(user_session.size());
  sc.user_session_ = std::move(user_session);
  sc.session_rate_ = std::move(session_rate_mbps);
  sc.load_budget_ = load_budget;
  sc.validate_core();
  for (int a = 0; a < sc.n_aps_; ++a) {
    util::require(static_cast<int>(link_rate[static_cast<size_t>(a)].size()) == sc.n_users_,
                  "Scenario: ragged link-rate matrix");
    for (const double r : link_rate[static_cast<size_t>(a)]) {
      util::require(r >= 0.0, "Scenario: link rates must be non-negative");
    }
  }

  // Project the dense input to CSR, keeping only positive rates. Strongest
  // order for explicit instances is by rate (higher = stronger), AP id ties.
  sc.user_row_.assign(static_cast<size_t>(sc.n_users_) + 1, 0);
  sc.strongest_ap_.assign(static_cast<size_t>(sc.n_users_), kNoAp);
  std::vector<std::pair<double, int>> cand;  // (rate, ap)
  for (int u = 0; u < sc.n_users_; ++u) {
    cand.clear();
    for (int a = 0; a < sc.n_aps_; ++a) {
      const double r = link_rate[static_cast<size_t>(a)][static_cast<size_t>(u)];
      if (r > 0.0) cand.emplace_back(r, a);
    }
    std::sort(cand.begin(), cand.end(), [](const auto& x, const auto& y) {
      return x.first != y.first ? x.first > y.first : x.second < y.second;
    });
    const auto base = static_cast<int64_t>(sc.nbr_ap_.size());
    for (const auto& [r, a] : cand) {
      sc.nbr_ap_.push_back(a);
      sc.nbr_rate_.push_back(r);
    }
    sc.nbr_by_ap_.resize(sc.nbr_ap_.size());
    int* by = sc.nbr_by_ap_.data() + base;
    std::iota(by, by + cand.size(), 0);
    std::sort(by, by + cand.size(), [&](int x, int y) {
      return sc.nbr_ap_[static_cast<size_t>(base + x)] <
             sc.nbr_ap_[static_cast<size_t>(base + y)];
    });
    if (!cand.empty()) {
      sc.strongest_ap_[static_cast<size_t>(u)] = sc.nbr_ap_[static_cast<size_t>(base)];
    }
    sc.user_row_[static_cast<size_t>(u) + 1] = static_cast<int64_t>(sc.nbr_ap_.size());
  }

  // Explicit instances have no rate table: the levels are whatever rates
  // actually occur.
  sc.rate_levels_.assign(sc.nbr_rate_.begin(), sc.nbr_rate_.end());
  std::sort(sc.rate_levels_.begin(), sc.rate_levels_.end());
  sc.rate_levels_.erase(std::unique(sc.rate_levels_.begin(), sc.rate_levels_.end()),
                        sc.rate_levels_.end());
  sc.rate_level_count_.assign(sc.rate_levels_.size(), 0);
  for (const double r : sc.nbr_rate_) {
    const auto i = static_cast<size_t>(
        std::lower_bound(sc.rate_levels_.begin(), sc.rate_levels_.end(), r) -
        sc.rate_levels_.begin());
    ++sc.rate_level_count_[i];
  }

  sc.build_transpose();
  sc.finalize_stats();
  return sc;
}

void Scenario::validate_core() const {
  util::require(static_cast<int>(user_session_.size()) == n_users_,
                "Scenario: user_session size mismatch");
  util::require(!session_rate_.empty() || n_users_ == 0,
                "Scenario: need at least one session");
  util::require(load_budget_ > 0.0 && load_budget_ <= 1.0,
                "Scenario: load budget must be in (0, 1]");
  for (const double r : session_rate_) {
    util::require(r > 0.0, "Scenario: session rates must be positive");
  }
  for (int u = 0; u < n_users_; ++u) {
    const int s = user_session_[static_cast<size_t>(u)];
    util::require(s >= 0 && s < n_sessions(), "Scenario: user requests invalid session");
  }
}

void Scenario::build_geometric_rows(util::ThreadPool* pool) {
  const RateTable& table = *table_;
  const double radius = table.range_m();
  const int n_steps = static_cast<int>(table.steps().size());

  rate_levels_.resize(static_cast<size_t>(n_steps));
  for (int i = 0; i < n_steps; ++i) {
    rate_levels_[static_cast<size_t>(n_steps - 1 - i)] =
        table.steps()[static_cast<size_t>(i)].rate_mbps;
  }
  rate_level_count_.assign(static_cast<size_t>(n_steps), 0);

  const bool parallel = pool != nullptr && pool->size() > 1 && n_users_ > 1;
  const int lanes = parallel ? pool->size() : 1;

  // Pass 1: exact per-user candidate counts. The candidate predicate
  // (distance within the basic-rate radius) is the same one pass 2 filters
  // by, so the counts are the row lengths.
  user_row_.assign(static_cast<size_t>(n_users_) + 1, 0);
  const auto count_user = [&](int u) {
    const Point up = user_pos_[static_cast<size_t>(u)];
    int64_t k = 0;
    grid_.for_each_candidate(up, radius, [&](int a) {
      if (distance(ap_pos_[static_cast<size_t>(a)], up) <= radius) ++k;
    });
    user_row_[static_cast<size_t>(u) + 1] = k;
  };
  if (parallel) {
    pool->parallel_for(0, n_users_, [&](int64_t b, int64_t e, int) {
      for (int64_t u = b; u < e; ++u) count_user(static_cast<int>(u));
    });
  } else {
    for (int u = 0; u < n_users_; ++u) count_user(u);
  }

  // Serial exclusive scan -> CSR offsets.
  for (int u = 0; u < n_users_; ++u) {
    user_row_[static_cast<size_t>(u) + 1] += user_row_[static_cast<size_t>(u)];
  }
  const int64_t n_links = user_row_[static_cast<size_t>(n_users_)];
  nbr_ap_.resize(static_cast<size_t>(n_links));
  nbr_rate_.resize(static_cast<size_t>(n_links));
  nbr_by_ap_.resize(static_cast<size_t>(n_links));
  strongest_ap_.assign(static_cast<size_t>(n_users_), kNoAp);

  // Pass 2: fill the rows. Each user's row is a pure function of the inputs
  // and lands in its own pre-sized slice, so static chunking makes the build
  // bit-identical at any lane count; per-lane scratch and per-lane level
  // counters (summed afterwards — integer addition commutes) avoid sharing.
  std::vector<std::vector<Cand>> scratch(static_cast<size_t>(lanes));
  std::vector<std::vector<int64_t>> lane_level(
      static_cast<size_t>(lanes), std::vector<int64_t>(static_cast<size_t>(n_steps), 0));
  const auto fill_user = [&](int u, int lane) {
    auto& cand = scratch[static_cast<size_t>(lane)];
    query_row(grid_, ap_pos_, table, radius, user_pos_[static_cast<size_t>(u)], cand);
    const int64_t base = user_row_[static_cast<size_t>(u)];
    WMCAST_ASSERT(static_cast<int64_t>(cand.size()) ==
                      user_row_[static_cast<size_t>(u) + 1] - base,
                  "Scenario: candidate count drifted between passes");
    auto& levels = lane_level[static_cast<size_t>(lane)];
    for (size_t i = 0; i < cand.size(); ++i) {
      nbr_ap_[static_cast<size_t>(base) + i] = cand[i].ap;
      nbr_rate_[static_cast<size_t>(base) + i] =
          table.steps()[static_cast<size_t>(cand[i].step)].rate_mbps;
      ++levels[static_cast<size_t>(n_steps - 1 - cand[i].step)];
    }
    int* by = nbr_by_ap_.data() + base;
    std::iota(by, by + cand.size(), 0);
    std::sort(by, by + cand.size(), [&](int x, int y) {
      return nbr_ap_[static_cast<size_t>(base + x)] <
             nbr_ap_[static_cast<size_t>(base + y)];
    });
    if (!cand.empty()) {
      strongest_ap_[static_cast<size_t>(u)] = nbr_ap_[static_cast<size_t>(base)];
    }
  };
  if (parallel) {
    pool->parallel_for(0, n_users_, [&](int64_t b, int64_t e, int lane) {
      for (int64_t u = b; u < e; ++u) fill_user(static_cast<int>(u), lane);
    });
  } else {
    for (int u = 0; u < n_users_; ++u) fill_user(u, 0);
  }
  for (const auto& levels : lane_level) {
    for (int i = 0; i < n_steps; ++i) {
      rate_level_count_[static_cast<size_t>(i)] += levels[static_cast<size_t>(i)];
    }
  }
}

void Scenario::build_transpose() {
  // Counting sort of the links by AP; visiting users ascending keeps each
  // AP's member list ascending by user id (the users_of_ap contract).
  ap_row_.assign(static_cast<size_t>(n_aps_) + 1, 0);
  for (const int a : nbr_ap_) ++ap_row_[static_cast<size_t>(a) + 1];
  for (int a = 0; a < n_aps_; ++a) {
    ap_row_[static_cast<size_t>(a) + 1] += ap_row_[static_cast<size_t>(a)];
  }
  ap_user_.resize(nbr_ap_.size());
  ap_user_rate_.resize(nbr_ap_.size());
  std::vector<int64_t> fill(ap_row_.begin(), ap_row_.end() - 1);
  for (int u = 0; u < n_users_; ++u) {
    for (int64_t pos = user_row_[static_cast<size_t>(u)];
         pos < user_row_[static_cast<size_t>(u) + 1]; ++pos) {
      const auto a = static_cast<size_t>(nbr_ap_[static_cast<size_t>(pos)]);
      const auto at = static_cast<size_t>(fill[a]++);
      ap_user_[at] = u;
      ap_user_rate_[at] = nbr_rate_[static_cast<size_t>(pos)];
    }
  }
}

void Scenario::finalize_stats() {
  n_coverable_ = 0;
  for (int u = 0; u < n_users_; ++u) {
    if (user_row_[static_cast<size_t>(u) + 1] > user_row_[static_cast<size_t>(u)]) {
      ++n_coverable_;
    }
  }
  basic_rate_ = 0.0;
  for (size_t i = 0; i < rate_levels_.size(); ++i) {
    if (rate_level_count_[i] > 0) {
      basic_rate_ = rate_levels_[i];
      break;
    }
  }
}

size_t Scenario::memory_bytes() const {
  const auto vb = [](const auto& v) { return v.size() * sizeof(*v.data()); };
  return vb(user_session_) + vb(session_rate_) + vb(user_row_) + vb(nbr_ap_) +
         vb(nbr_rate_) + vb(nbr_by_ap_) + vb(ap_row_) + vb(ap_user_) +
         vb(ap_user_rate_) + vb(strongest_ap_) + vb(rate_levels_) +
         vb(rate_level_count_) + vb(ap_pos_) + vb(user_pos_);
}

Scenario Scenario::with_budget(double load_budget) const {
  Scenario sc = *this;
  sc.load_budget_ = load_budget;
  util::require(load_budget > 0.0 && load_budget <= 1.0,
                "Scenario: load budget must be in (0, 1]");
  return sc;
}

Scenario Scenario::with_session_rates(std::vector<double> session_rate_mbps) const {
  util::require(session_rate_mbps.size() == session_rate_.size(),
                "Scenario: session rate count mismatch");
  Scenario sc = *this;
  sc.session_rate_ = std::move(session_rate_mbps);
  for (const double r : sc.session_rate_) {
    util::require(r > 0.0, "Scenario: session rates must be positive");
  }
  return sc;
}

Scenario Scenario::apply_delta(const ScenarioDelta& delta,
                               std::vector<int>* dirty_aps) const {
  util::require(has_geometry() && table_.has_value(),
                "apply_delta: needs a geometric scenario");

  // Metadata and untouched caches carry over; the CSR arrays are rebuilt
  // below (copied row-by-row, so the big copy happens exactly once).
  Scenario out;
  out.n_aps_ = n_aps_;
  out.n_users_ = n_users_;
  out.user_session_ = user_session_;
  out.session_rate_ = session_rate_;
  out.load_budget_ = load_budget_;
  out.rate_levels_ = rate_levels_;
  out.rate_level_count_ = rate_level_count_;
  out.ap_pos_ = ap_pos_;
  out.user_pos_ = user_pos_;
  out.table_ = table_;
  out.grid_ = grid_;
  out.strongest_ap_ = strongest_ap_;

  std::vector<char> ap_mark(static_cast<size_t>(n_aps_), 0);
  std::vector<int> dirty;
  const auto mark = [&](int a) {
    if (!ap_mark[static_cast<size_t>(a)]) {
      ap_mark[static_cast<size_t>(a)] = 1;
      dirty.push_back(a);
    }
  };

  // Session switches keep the row but change every (ap, session) group the
  // user belongs to on both sides of the switch.
  for (const auto& [u, s] : delta.rezapped) {
    util::require(u >= 0 && u < n_users_, "apply_delta: rezap of unknown user");
    util::require(s >= 0 && s < n_sessions(), "apply_delta: rezap to unknown session");
    if (out.user_session_[static_cast<size_t>(u)] == s) continue;
    out.user_session_[static_cast<size_t>(u)] = s;
    for (const int a : aps_of_user(u)) mark(a);
  }

  // Moves: last position wins per user.
  std::vector<char> moved(static_cast<size_t>(n_users_), 0);
  std::vector<int> moved_users;
  for (const auto& [u, p] : delta.moved) {
    util::require(u >= 0 && u < n_users_, "apply_delta: move of unknown user");
    util::require(std::isfinite(p.x) && std::isfinite(p.y),
                  "apply_delta: non-finite position");
    out.user_pos_[static_cast<size_t>(u)] = p;
    if (!moved[static_cast<size_t>(u)]) {
      moved[static_cast<size_t>(u)] = 1;
      moved_users.push_back(u);
    }
  }
  std::sort(moved_users.begin(), moved_users.end());

  if (moved_users.empty()) {
    out.user_row_ = user_row_;
    out.nbr_ap_ = nbr_ap_;
    out.nbr_rate_ = nbr_rate_;
    out.nbr_by_ap_ = nbr_by_ap_;
  } else {
    const RateTable& table = *table_;
    const double radius = table.range_m();
    const int n_steps = static_cast<int>(table.steps().size());
    const auto level_of = [&](int step) { return static_cast<size_t>(n_steps - 1 - step); };

    // Fresh rows for the movers (grid re-query at the new position); old and
    // new candidate APs alike see their member set change.
    std::vector<int64_t> new_start(moved_users.size() + 1, 0);
    std::vector<Cand> new_rows;
    std::vector<Cand> cand;
    for (size_t m = 0; m < moved_users.size(); ++m) {
      const int u = moved_users[m];
      for (int64_t pos = user_row_[static_cast<size_t>(u)];
           pos < user_row_[static_cast<size_t>(u) + 1]; ++pos) {
        mark(nbr_ap_[static_cast<size_t>(pos)]);
        const int step = table.step_index_for_distance(
            distance(ap_pos_[static_cast<size_t>(nbr_ap_[static_cast<size_t>(pos)])],
                     user_pos_[static_cast<size_t>(u)]));
        WMCAST_ASSERT(step >= 0, "apply_delta: stored link out of range");
        --out.rate_level_count_[level_of(step)];
      }
      query_row(grid_, ap_pos_, table, radius, out.user_pos_[static_cast<size_t>(u)],
                cand);
      for (const Cand& c : cand) {
        mark(c.ap);
        ++out.rate_level_count_[level_of(c.step)];
        new_rows.push_back(c);
      }
      new_start[m + 1] = static_cast<int64_t>(new_rows.size());
    }

    // Stitch the new CSR: movers get their fresh rows, everyone else's row
    // (including its row-local search index) is copied verbatim.
    std::vector<int32_t> moved_idx(static_cast<size_t>(n_users_), -1);
    for (size_t m = 0; m < moved_users.size(); ++m) {
      moved_idx[static_cast<size_t>(moved_users[m])] = static_cast<int32_t>(m);
    }
    out.user_row_.assign(static_cast<size_t>(n_users_) + 1, 0);
    for (int u = 0; u < n_users_; ++u) {
      const int32_t m = moved_idx[static_cast<size_t>(u)];
      const int64_t len = m >= 0 ? new_start[static_cast<size_t>(m) + 1] -
                                       new_start[static_cast<size_t>(m)]
                                 : user_row_[static_cast<size_t>(u) + 1] -
                                       user_row_[static_cast<size_t>(u)];
      out.user_row_[static_cast<size_t>(u) + 1] =
          out.user_row_[static_cast<size_t>(u)] + len;
    }
    const auto n_links = static_cast<size_t>(out.user_row_[static_cast<size_t>(n_users_)]);
    out.nbr_ap_.resize(n_links);
    out.nbr_rate_.resize(n_links);
    out.nbr_by_ap_.resize(n_links);
    for (int u = 0; u < n_users_; ++u) {
      const int64_t base = out.user_row_[static_cast<size_t>(u)];
      const int32_t m = moved_idx[static_cast<size_t>(u)];
      if (m < 0) {
        const int64_t old_base = user_row_[static_cast<size_t>(u)];
        const int64_t len = user_row_[static_cast<size_t>(u) + 1] - old_base;
        std::copy_n(nbr_ap_.begin() + old_base, len, out.nbr_ap_.begin() + base);
        std::copy_n(nbr_rate_.begin() + old_base, len, out.nbr_rate_.begin() + base);
        std::copy_n(nbr_by_ap_.begin() + old_base, len, out.nbr_by_ap_.begin() + base);
        continue;
      }
      const int64_t lo = new_start[static_cast<size_t>(m)];
      const int64_t len = new_start[static_cast<size_t>(m) + 1] - lo;
      for (int64_t i = 0; i < len; ++i) {
        const Cand& c = new_rows[static_cast<size_t>(lo + i)];
        out.nbr_ap_[static_cast<size_t>(base + i)] = c.ap;
        out.nbr_rate_[static_cast<size_t>(base + i)] =
            table.steps()[static_cast<size_t>(c.step)].rate_mbps;
      }
      int* by = out.nbr_by_ap_.data() + base;
      std::iota(by, by + len, 0);
      std::sort(by, by + len, [&](int x, int y) {
        return out.nbr_ap_[static_cast<size_t>(base + x)] <
               out.nbr_ap_[static_cast<size_t>(base + y)];
      });
      out.strongest_ap_[static_cast<size_t>(u)] =
          len > 0 ? out.nbr_ap_[static_cast<size_t>(base)] : kNoAp;
    }
  }

  out.build_transpose();
  out.finalize_stats();
  if (dirty_aps != nullptr) {
    std::sort(dirty.begin(), dirty.end());
    *dirty_aps = std::move(dirty);
  }
  return out;
}

}  // namespace wmcast::wlan
