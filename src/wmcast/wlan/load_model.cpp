#include "wmcast/wlan/load_model.hpp"

#include <algorithm>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

void LoadModel::reset(const Scenario& sc, bool multi_rate) {
  sc_ = &sc;
  multi_rate_ = multi_rate;
  basic_rate_ = sc.basic_rate();
  levels_ = sc.rate_levels();
  session_rate_.resize(static_cast<size_t>(sc.n_sessions()));
  for (int s = 0; s < sc.n_sessions(); ++s) {
    session_rate_[static_cast<size_t>(s)] = sc.session_rate(s);
  }
  cells_.resize(static_cast<size_t>(sc.n_aps()));
  ap_load_.resize(static_cast<size_t>(sc.n_aps()));
  ap_epoch_.assign(static_cast<size_t>(sc.n_aps()), 0);
  epoch_ = 1;
}

int LoadModel::level_of(double rate) const {
  const auto it = std::lower_bound(levels_.begin(), levels_.end(), rate);
  WMCAST_ASSERT(it != levels_.end() && *it == rate,
                "LoadModel: rate is not an instance rate level");
  return static_cast<int>(it - levels_.begin());
}

void LoadModel::touch(int a) {
  if (ap_epoch_[static_cast<size_t>(a)] == epoch_) return;
  ap_epoch_[static_cast<size_t>(a)] = epoch_;
  ap_load_[static_cast<size_t>(a)] = 0.0;
  // Keep the cells (and their count arrays) for capacity reuse; zero them.
  for (Cell& c : cells_[static_cast<size_t>(a)]) {
    c.total = 0;
    c.min_lv = 0;
    std::fill(c.count.begin(), c.count.end(), 0);
  }
}

double LoadModel::recompute(int a) const {
  // Mirrors ap_load_for_members exactly: sessions visited ascending, one
  // division per occupied session, left-to-right summation.
  double load = 0.0;
  for (const Cell& c : cells_[static_cast<size_t>(a)]) {
    if (c.total > 0) load += contrib(c.session, c.min_lv);
  }
  return load;
}

double LoadModel::add(int a, int session, double rate) {
  touch(a);
  const int lv = level_of(rate);
  auto& row = cells_[static_cast<size_t>(a)];
  auto it = std::lower_bound(row.begin(), row.end(), session,
                             [](const Cell& c, int s) { return c.session < s; });
  if (it == row.end() || it->session != session) {
    it = row.insert(it, Cell{});
    it->session = session;
  }
  if (it->count.size() < levels_.size()) it->count.resize(levels_.size(), 0);
  it->min_lv = it->total == 0 ? lv : std::min(it->min_lv, lv);
  ++it->count[static_cast<size_t>(lv)];
  ++it->total;
  const double load = recompute(a);
  ap_load_[static_cast<size_t>(a)] = load;
  return load;
}

double LoadModel::remove(int a, int session, double rate) {
  WMCAST_ASSERT(ap_epoch_[static_cast<size_t>(a)] == epoch_,
                "LoadModel::remove: AP has no members this scope");
  const int lv = level_of(rate);
  auto& row = cells_[static_cast<size_t>(a)];
  auto it = std::lower_bound(row.begin(), row.end(), session,
                             [](const Cell& c, int s) { return c.session < s; });
  WMCAST_ASSERT(it != row.end() && it->session == session && it->total > 0 &&
                    it->count[static_cast<size_t>(lv)] > 0,
                "LoadModel::remove: no such member");
  --it->count[static_cast<size_t>(lv)];
  --it->total;
  if (it->total > 0 && lv == it->min_lv && it->count[static_cast<size_t>(lv)] == 0) {
    int nl = lv + 1;
    while (it->count[static_cast<size_t>(nl)] == 0) ++nl;
    it->min_lv = nl;
  }
  const double load = recompute(a);
  ap_load_[static_cast<size_t>(a)] = load;
  return load;
}

double LoadModel::load_with(int a, int session, double rate) const {
  const int lv = level_of(rate);
  double load = 0.0;
  bool merged = false;
  if (ap_epoch_[static_cast<size_t>(a)] == epoch_) {
    for (const Cell& c : cells_[static_cast<size_t>(a)]) {
      if (!merged && c.session >= session) {
        merged = true;
        if (c.session == session) {
          load += contrib(session, c.total > 0 ? std::min(c.min_lv, lv) : lv);
          continue;
        }
        load += contrib(session, lv);  // joins ahead of c in session order
      }
      if (c.total > 0) load += contrib(c.session, c.min_lv);
    }
  }
  if (!merged) load += contrib(session, lv);
  return load;
}

double LoadModel::load_without(int a, int session, double rate) const {
  WMCAST_ASSERT(ap_epoch_[static_cast<size_t>(a)] == epoch_,
                "LoadModel::load_without: AP has no members this scope");
  const int lv = level_of(rate);
  double load = 0.0;
  bool found = false;
  for (const Cell& c : cells_[static_cast<size_t>(a)]) {
    if (c.session == session) {
      found = true;
      WMCAST_ASSERT(c.total > 0 && c.count[static_cast<size_t>(lv)] > 0,
                    "LoadModel::load_without: no such member");
      if (c.total == 1) continue;  // session empties out
      int mlv = c.min_lv;
      if (lv == c.min_lv && c.count[static_cast<size_t>(lv)] == 1) {
        mlv = lv + 1;
        while (c.count[static_cast<size_t>(mlv)] == 0) ++mlv;
      }
      load += contrib(session, mlv);
      continue;
    }
    if (c.total > 0) load += contrib(c.session, c.min_lv);
  }
  WMCAST_ASSERT(found, "LoadModel::load_without: session not present");
  return load;
}

}  // namespace wmcast::wlan
