#include "wmcast/wlan/svg_map.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

namespace {

// Session colors cycle through a qualitative palette.
const char* kSessionColors[] = {"#4269d0", "#efb118", "#ff725c", "#6cc5b0",
                                "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
                                "#9c6b4e", "#9498a0"};

std::string load_color(double load) {
  // White (idle) to dark red (load 1).
  const double x = std::clamp(load, 0.0, 1.0);
  const int r = 255;
  const int gb = static_cast<int>(255 * (1.0 - 0.85 * x));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, gb, gb);
  return buf;
}

}  // namespace

std::string render_svg(const Scenario& sc, const Association* assoc,
                       const SvgOptions& options) {
  util::require(sc.has_geometry(), "render_svg: needs a geometric scenario");
  util::require(options.canvas_px > 0.0, "render_svg: bad canvas size");
  if (assoc != nullptr) {
    util::require(assoc->n_users() == sc.n_users(), "render_svg: association mismatch");
  }

  double side = 1.0;
  for (const auto& p : sc.ap_positions()) side = std::max({side, p.x, p.y});
  for (const auto& p : sc.user_positions()) side = std::max({side, p.x, p.y});
  const double scale = options.canvas_px / side;
  auto px = [&](double v) { return v * scale; };

  std::vector<double> ap_load(static_cast<size_t>(sc.n_aps()), 0.0);
  if (assoc != nullptr) {
    const auto rep = compute_loads(sc, *assoc);
    ap_load = rep.ap_load;
  }

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.canvas_px
      << "\" height=\"" << options.canvas_px << "\" viewBox=\"0 0 " << options.canvas_px
      << " " << options.canvas_px << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"#fbfaf8\"/>\n";

  if (options.draw_ranges) {
    for (const auto& p : sc.ap_positions()) {
      out << "<circle cx=\"" << px(p.x) << "\" cy=\"" << px(p.y) << "\" r=\"" << px(200.0)
          << "\" fill=\"none\" stroke=\"#d8d4cc\" stroke-width=\"0.5\"/>\n";
    }
  }

  if (assoc != nullptr && options.draw_edges) {
    for (int u = 0; u < sc.n_users(); ++u) {
      const int a = assoc->ap_of(u);
      if (a == kNoAp) continue;
      const auto& ap = sc.ap_positions()[static_cast<size_t>(a)];
      const auto& up = sc.user_positions()[static_cast<size_t>(u)];
      out << "<line x1=\"" << px(up.x) << "\" y1=\"" << px(up.y) << "\" x2=\"" << px(ap.x)
          << "\" y2=\"" << px(ap.y) << "\" stroke=\"#b5b1a8\" stroke-width=\"0.6\"/>\n";
    }
  }

  for (int u = 0; u < sc.n_users(); ++u) {
    const auto& p = sc.user_positions()[static_cast<size_t>(u)];
    const char* color =
        kSessionColors[static_cast<size_t>(sc.user_session(u)) % std::size(kSessionColors)];
    const bool unserved = assoc != nullptr && assoc->ap_of(u) == kNoAp;
    out << "<circle class=\"user\" cx=\"" << px(p.x) << "\" cy=\"" << px(p.y)
        << "\" r=\"3\" fill=\"" << color << "\"";
    if (unserved) out << " fill-opacity=\"0.25\" stroke=\"#888\" stroke-width=\"0.8\"";
    out << "/>\n";
  }

  for (int a = 0; a < sc.n_aps(); ++a) {
    const auto& p = sc.ap_positions()[static_cast<size_t>(a)];
    out << "<rect class=\"ap\" x=\"" << px(p.x) - 5 << "\" y=\"" << px(p.y) - 5
        << "\" width=\"10\" height=\"10\" fill=\"" << load_color(ap_load[static_cast<size_t>(a)])
        << "\" stroke=\"#444\" stroke-width=\"1\"/>\n";
  }

  out << "</svg>\n";
  return out.str();
}

bool save_svg(const Scenario& sc, const Association* assoc, const std::string& path,
              const SvgOptions& options) {
  std::ofstream f(path);
  if (!f) return false;
  f << render_svg(sc, assoc, options);
  return static_cast<bool>(f);
}

}  // namespace wmcast::wlan
