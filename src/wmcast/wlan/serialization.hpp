// Plain-text scenario serialization, so experiments can be archived and
// replayed exactly (the paper published its ns-2 scripts for the same
// reason). The format is a line-oriented text file:
//
//   wmcast-scenario v1
//   budget <double>
//   sessions <n>
//   session_rates <r0> <r1> ...
//   users <n>
//   user_sessions <s0> <s1> ...
//   geometry <0|1>
//   -- geometric scenarios --
//   area_hint <side>            (informational)
//   ap_positions <n> then n lines "x y"
//   user_positions then n lines "x y"
//   rate_table <k> then k lines "rate max_distance"
//   -- explicit scenarios --
//   aps <n>
//   link_rates then n lines of n_users doubles
#pragma once

#include <iosfwd>
#include <string>

#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::wlan {

/// Serializes `sc` (round-trips exactly for explicit scenarios; geometric
/// scenarios additionally need the rate table, passed here).
std::string to_text(const Scenario& sc, const RateTable& table = RateTable::ieee80211a());

/// Parses a scenario written by to_text. Throws std::invalid_argument on any
/// malformed input (never asserts: files are untrusted).
Scenario from_text(const std::string& text);

/// File helpers; save returns false on I/O error, load throws on bad content.
bool save_scenario(const Scenario& sc, const std::string& path,
                   const RateTable& table = RateTable::ieee80211a());
Scenario load_scenario(const std::string& path);

/// Association serialization: "wmcast-association v1", then the user count
/// and one AP id (or -1) per user.
std::string association_to_text(const Association& assoc);
Association association_from_text(const std::string& text);
bool save_association(const Association& assoc, const std::string& path);
Association load_association(const std::string& path);

}  // namespace wmcast::wlan
