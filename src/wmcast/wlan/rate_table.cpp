#include "wmcast/wlan/rate_table.hpp"

#include <algorithm>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

RateTable::RateTable(std::vector<RateStep> steps) : steps_(std::move(steps)) {
  util::require(!steps_.empty(), "RateTable: need at least one step");
  std::sort(steps_.begin(), steps_.end(),
            [](const RateStep& a, const RateStep& b) { return a.rate_mbps > b.rate_mbps; });
  for (size_t i = 0; i < steps_.size(); ++i) {
    util::require(steps_[i].rate_mbps > 0.0, "RateTable: rates must be positive");
    util::require(steps_[i].max_distance_m > 0.0, "RateTable: distances must be positive");
    if (i > 0) {
      util::require(steps_[i].rate_mbps < steps_[i - 1].rate_mbps,
                    "RateTable: duplicate rate");
      util::require(steps_[i].max_distance_m > steps_[i - 1].max_distance_m,
                    "RateTable: lower rate must reach strictly farther");
    }
  }
}

RateTable RateTable::ieee80211a() {
  return RateTable({{6, 200}, {12, 145}, {18, 105}, {24, 85}, {36, 60}, {48, 40}, {54, 35}});
}

double RateTable::rate_for_distance(double distance_m) const {
  for (const auto& s : steps_) {
    if (distance_m <= s.max_distance_m) return s.rate_mbps;
  }
  return 0.0;
}

int RateTable::step_index_for_distance(double distance_m) const {
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (distance_m <= steps_[i].max_distance_m) return static_cast<int>(i);
  }
  return -1;
}

RateTable RateTable::scaled_range(double factor) const {
  util::require(factor > 0.0, "RateTable: scale factor must be positive");
  std::vector<RateStep> scaled = steps_;
  for (auto& s : scaled) s.max_distance_m *= factor;
  return RateTable(std::move(scaled));
}

}  // namespace wmcast::wlan
