// Random-scenario generation matching §7 of the paper: APs and users placed
// uniformly at random in a square area, every user requesting one multicast
// session chosen uniformly at random.
#pragma once

#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::wlan {

/// Parameters with the paper's defaults: 1.2 km^2 area, 802.11a rates
/// (Table 1, 200 m range), load budget 0.9, 5 sessions. The paper does not
/// state the multicast stream rate; 1.0 Mbps is our default (EXPERIMENTS.md
/// records the sensitivity of the results to this choice).
struct GeneratorParams {
  double area_side_m = 1095.445;  // sqrt(1.2 km^2)
  int n_aps = 200;
  int n_users = 400;
  int n_sessions = 5;
  double session_rate_mbps = 1.0;
  double load_budget = 0.9;
  RateTable rate_table = RateTable::ieee80211a();

  // --- evaluation extensions beyond the paper's uniform setting ---
  /// Session popularity: 0 = uniform (the paper); s > 0 = Zipf with this
  /// exponent (session k drawn proportional to 1/(k+1)^s) — models a few hot
  /// TV channels and a long tail.
  double zipf_exponent = 0.0;
  /// Fraction of users placed in Gaussian clusters instead of uniformly
  /// (0 = the paper's uniform placement).
  double hotspot_fraction = 0.0;
  int n_hotspots = 4;
  double hotspot_sigma_m = 60.0;
  /// Stream-rate heterogeneity: session k's rate is drawn log-uniformly in
  /// [session_rate_mbps / spread, session_rate_mbps * spread]. 1 = the
  /// paper's homogeneous streams. Models mixing audio and video channels.
  double session_rate_spread = 1.0;
};

/// Draws one random scenario. Consumes randomness only from `rng`.
Scenario generate_scenario(const GeneratorParams& params, util::Rng& rng);

/// The small-network setting of Fig. 12: 30 APs in a 600 m x 600 m area.
GeneratorParams fig12_params(int n_users);

}  // namespace wmcast::wlan
