#include "wmcast/wlan/association.hpp"
#include "wmcast/util/fp.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

LoadReport compute_loads(const Scenario& sc, const Association& assoc, bool multi_rate) {
  util::require(assoc.n_users() == sc.n_users(), "compute_loads: association size mismatch");

  LoadReport rep;
  rep.ap_load.assign(static_cast<size_t>(sc.n_aps()), 0.0);
  rep.tx_rate.assign(static_cast<size_t>(sc.n_aps()),
                     std::vector<double>(static_cast<size_t>(sc.n_sessions()), 0.0));

  // Minimum member link rate per (AP, session).
  std::vector<std::vector<double>> min_rate(
      static_cast<size_t>(sc.n_aps()),
      std::vector<double>(static_cast<size_t>(sc.n_sessions()),
                          std::numeric_limits<double>::infinity()));

  for (int u = 0; u < sc.n_users(); ++u) {
    const int a = assoc.ap_of(u);
    if (a == kNoAp) continue;
    util::require(a >= 0 && a < sc.n_aps(), "compute_loads: invalid AP id");
    const double r = sc.link_rate(a, u);
    util::require(r > 0.0, "compute_loads: user assigned to AP out of its range");
    ++rep.satisfied_users;
    const int s = sc.user_session(u);
    auto& mr = min_rate[static_cast<size_t>(a)][static_cast<size_t>(s)];
    mr = std::min(mr, r);
  }

  for (int a = 0; a < sc.n_aps(); ++a) {
    double load = 0.0;
    for (int s = 0; s < sc.n_sessions(); ++s) {
      const double mr = min_rate[static_cast<size_t>(a)][static_cast<size_t>(s)];
      if (mr == std::numeric_limits<double>::infinity()) continue;
      const double tx = multi_rate ? mr : sc.basic_rate();
      rep.tx_rate[static_cast<size_t>(a)][static_cast<size_t>(s)] = tx;
      load += sc.session_rate(s) / tx;
    }
    rep.ap_load[static_cast<size_t>(a)] = load;
    rep.total_load += load;
    rep.max_load = std::max(rep.max_load, load);
    if (util::exceeds_budget(load, sc.load_budget())) ++rep.budget_violations;
  }
  return rep;
}

MultiLoadReport compute_multi_loads(const Scenario& sc, const MultiAssociation& multi,
                                    bool multi_rate) {
  util::require(multi.n_users() == sc.n_users(),
                "compute_multi_loads: association size mismatch");

  MultiLoadReport rep;
  rep.ap_load.assign(static_cast<size_t>(sc.n_aps()), 0.0);
  rep.tx_rate.assign(static_cast<size_t>(sc.n_aps()),
                     std::vector<double>(static_cast<size_t>(sc.n_sessions()), 0.0));
  rep.effective_rate.assign(static_cast<size_t>(sc.n_users()), 0.0);

  // Minimum member link rate per (AP, session) over ALL users the AP serves,
  // multi-served or not — each contributing AP carries the full stream.
  std::vector<std::vector<double>> min_rate(
      static_cast<size_t>(sc.n_aps()),
      std::vector<double>(static_cast<size_t>(sc.n_sessions()),
                          std::numeric_limits<double>::infinity()));

  for (int u = 0; u < sc.n_users(); ++u) {
    const auto& aps = multi.aps_of(u);
    if (aps.empty()) continue;
    ++rep.satisfied_users;
    if (aps.size() >= 2) ++rep.multi_served_users;
    const int s = sc.user_session(u);
    int prev = -1;
    for (const int a : aps) {
      util::require(a >= 0 && a < sc.n_aps(), "compute_multi_loads: invalid AP id");
      util::require(a > prev,
                    "compute_multi_loads: served-set must be sorted and duplicate-free");
      prev = a;
      const double r = sc.link_rate(a, u);
      util::require(r > 0.0, "compute_multi_loads: user served by AP out of its range");
      auto& mr = min_rate[static_cast<size_t>(a)][static_cast<size_t>(s)];
      mr = std::min(mr, r);
    }
  }

  for (int a = 0; a < sc.n_aps(); ++a) {
    double load = 0.0;
    for (int s = 0; s < sc.n_sessions(); ++s) {
      const double mr = min_rate[static_cast<size_t>(a)][static_cast<size_t>(s)];
      if (mr == std::numeric_limits<double>::infinity()) continue;
      const double tx = multi_rate ? mr : sc.basic_rate();
      rep.tx_rate[static_cast<size_t>(a)][static_cast<size_t>(s)] = tx;
      load += sc.session_rate(s) / tx;
    }
    rep.ap_load[static_cast<size_t>(a)] = load;
    rep.total_load += load;
    rep.max_load = std::max(rep.max_load, load);
    if (util::exceeds_budget(load, sc.load_budget())) ++rep.budget_violations;
  }

  // Additive combine rule: one stream per serving AP, each at that AP's
  // session tx rate.
  double sum_eff = 0.0;
  for (int u = 0; u < sc.n_users(); ++u) {
    const int s = sc.user_session(u);
    double eff = 0.0;
    for (const int a : multi.aps_of(u)) {
      eff += rep.tx_rate[static_cast<size_t>(a)][static_cast<size_t>(s)];
    }
    rep.effective_rate[static_cast<size_t>(u)] = eff;
    sum_eff += eff;
  }
  rep.mean_effective_rate =
      rep.satisfied_users > 0 ? sum_eff / rep.satisfied_users : 0.0;
  return rep;
}

double ap_load_for_members(const Scenario& sc, int ap, const std::vector<int>& members,
                           bool multi_rate) {
  std::vector<double> min_rate(static_cast<size_t>(sc.n_sessions()),
                               std::numeric_limits<double>::infinity());
  for (const int u : members) {
    const double r = sc.link_rate(ap, u);
    WMCAST_ASSERT(r > 0.0, "ap_load_for_members: member out of AP range");
    const int s = sc.user_session(u);
    min_rate[static_cast<size_t>(s)] = std::min(min_rate[static_cast<size_t>(s)], r);
  }
  double load = 0.0;
  for (int s = 0; s < sc.n_sessions(); ++s) {
    const double mr = min_rate[static_cast<size_t>(s)];
    if (mr == std::numeric_limits<double>::infinity()) continue;
    load += sc.session_rate(s) / (multi_rate ? mr : sc.basic_rate());
  }
  return load;
}

}  // namespace wmcast::wlan
