// SVG rendering of a scenario and (optionally) an association: APs as
// squares shaded by multicast load, users as dots colored by session, and
// association edges. Pure-string output — easy to test, easy to embed in
// reports, no graphics dependencies. Produced by the CLI's `render`
// subcommand and usable from any example.
#pragma once

#include <string>

#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::wlan {

struct SvgOptions {
  double canvas_px = 800.0;  // square canvas, scenario area scaled to fit
  bool draw_edges = true;    // user -> AP association lines
  bool draw_ranges = false;  // 200 m coverage circles around APs
};

/// Renders a geometric scenario. `assoc` may be null (topology only).
/// Throws std::invalid_argument for non-geometric scenarios or mismatched
/// associations.
std::string render_svg(const Scenario& sc, const Association* assoc = nullptr,
                       const SvgOptions& options = {});

/// Writes render_svg output to `path`; false on I/O failure.
bool save_svg(const Scenario& sc, const Association* assoc, const std::string& path,
              const SvgOptions& options = {});

}  // namespace wmcast::wlan
