// User-to-AP association and the induced multicast load model (Definition 1
// of the paper): an AP transmitting session s to a set of members uses the
// lowest member link rate, and its load is the sum over transmitted sessions
// of stream_rate / tx_rate.
#pragma once

#include <vector>

#include "wmcast/wlan/scenario.hpp"

namespace wmcast::wlan {

/// A (possibly partial) association of users to APs. user_ap[u] == kNoAp
/// means user u is not served (relevant for MNU, where budgets may force
/// rejections).
struct Association {
  std::vector<int> user_ap;

  static Association none(int n_users) {
    return Association{std::vector<int>(static_cast<size_t>(n_users), kNoAp)};
  }

  int n_users() const { return static_cast<int>(user_ap.size()); }
  int ap_of(int u) const { return user_ap[static_cast<size_t>(u)]; }

  friend bool operator==(const Association&, const Association&) = default;
};

/// Loads and transmission rates induced by an association.
struct LoadReport {
  std::vector<double> ap_load;               // [ap]
  std::vector<std::vector<double>> tx_rate;  // [ap][session], 0 = silent
  double total_load = 0.0;
  double max_load = 0.0;
  int satisfied_users = 0;
  int budget_violations = 0;  // APs whose load exceeds the scenario budget

  bool within_budget() const { return budget_violations == 0; }
};

/// Computes the load report for `assoc` on `sc`.
/// Throws std::invalid_argument if any user is assigned to an AP that cannot
/// reach it (link rate 0) or to an out-of-range AP id.
/// `multi_rate` selects the transmission-rate model: true (default) = the AP
/// multicasts each session at the lowest member link rate (the paper's
/// multi-rate assumption); false = every multicast goes at the scenario's
/// basic rate (the plain 802.11 standard behaviour).
LoadReport compute_loads(const Scenario& sc, const Association& assoc,
                         bool multi_rate = true);

/// Incremental load helper used by the distributed algorithms and SSA: the
/// load of a single AP given an explicit member list (user ids), without
/// building a full Association. Members must all be in range of `ap`.
double ap_load_for_members(const Scenario& sc, int ap, const std::vector<int>& members,
                           bool multi_rate = true);

}  // namespace wmcast::wlan
