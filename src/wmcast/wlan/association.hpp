// User-to-AP association and the induced multicast load model (Definition 1
// of the paper): an AP transmitting session s to a set of members uses the
// lowest member link rate, and its load is the sum over transmitted sessions
// of stream_rate / tx_rate.
#pragma once

#include <algorithm>
#include <vector>

#include "wmcast/wlan/scenario.hpp"

namespace wmcast::wlan {

/// A (possibly partial) association of users to APs. user_ap[u] == kNoAp
/// means user u is not served (relevant for MNU, where budgets may force
/// rejections).
struct Association {
  std::vector<int> user_ap;

  static Association none(int n_users) {
    return Association{std::vector<int>(static_cast<size_t>(n_users), kNoAp)};
  }

  int n_users() const { return static_cast<int>(user_ap.size()); }
  int ap_of(int u) const { return user_ap[static_cast<size_t>(u)]; }

  friend bool operator==(const Association&, const Association&) = default;
};

/// Loads and transmission rates induced by an association.
struct LoadReport {
  std::vector<double> ap_load;               // [ap]
  std::vector<std::vector<double>> tx_rate;  // [ap][session], 0 = silent
  double total_load = 0.0;
  double max_load = 0.0;
  int satisfied_users = 0;
  int budget_violations = 0;  // APs whose load exceeds the scenario budget

  bool within_budget() const { return budget_violations == 0; }
};

/// Computes the load report for `assoc` on `sc`.
/// Throws std::invalid_argument if any user is assigned to an AP that cannot
/// reach it (link rate 0) or to an out-of-range AP id.
/// `multi_rate` selects the transmission-rate model: true (default) = the AP
/// multicasts each session at the lowest member link rate (the paper's
/// multi-rate assumption); false = every multicast goes at the scenario's
/// basic rate (the plain 802.11 standard behaviour).
LoadReport compute_loads(const Scenario& sc, const Association& assoc,
                         bool multi_rate = true);

/// Incremental load helper used by the distributed algorithms and SSA: the
/// load of a single AP given an explicit member list (user ids), without
/// building a full Association. Members must all be in range of `ap`.
double ap_load_for_members(const Scenario& sc, int ap, const std::vector<int>& members,
                           bool multi_rate = true);

/// A k-connectivity association: each user is served by a set of APs (up to k
/// of them; empty = unserved). Served-sets are kept sorted ascending so that
/// equality is structural and iteration order is deterministic.
struct MultiAssociation {
  std::vector<std::vector<int>> user_aps;

  static MultiAssociation none(int n_users) {
    return MultiAssociation{
        std::vector<std::vector<int>>(static_cast<size_t>(n_users))};
  }

  /// Lifts a single-AP association: every served user gets a singleton set.
  static MultiAssociation from_single(const Association& assoc) {
    MultiAssociation m = none(assoc.n_users());
    for (int u = 0; u < assoc.n_users(); ++u) {
      if (assoc.ap_of(u) != kNoAp) {
        m.user_aps[static_cast<size_t>(u)].push_back(assoc.ap_of(u));
      }
    }
    return m;
  }

  int n_users() const { return static_cast<int>(user_aps.size()); }
  const std::vector<int>& aps_of(int u) const {
    return user_aps[static_cast<size_t>(u)];
  }
  bool serves(int u, int a) const {
    const auto& s = user_aps[static_cast<size_t>(u)];
    return std::find(s.begin(), s.end(), a) != s.end();
  }

  friend bool operator==(const MultiAssociation&, const MultiAssociation&) = default;
};

/// Loads and per-user effective rates induced by a multi-association. The
/// combine rule is additive (DESIGN.md §15): a user's effective rate is the
/// sum of the multicast tx rates of the session streams it receives, one per
/// serving AP — the multi-connectivity model of Zuhra et al., where each AP's
/// stream carries an independent description.
struct MultiLoadReport {
  std::vector<double> ap_load;               // [ap]
  std::vector<std::vector<double>> tx_rate;  // [ap][session], 0 = silent
  std::vector<double> effective_rate;        // [user], 0 = unserved
  double total_load = 0.0;
  double max_load = 0.0;
  double mean_effective_rate = 0.0;  // over served users; 0 if none served
  int satisfied_users = 0;           // users with a non-empty served-set
  int multi_served_users = 0;        // users with >= 2 serving APs
  int budget_violations = 0;         // APs whose load exceeds the budget

  bool within_budget() const { return budget_violations == 0; }
};

/// Computes the load report for a multi-association: every serving AP counts
/// the user as a member for the min-rate of its (AP, session) stream, and
/// carries the induced load (Definition 1 applied per contributing AP).
/// Throws std::invalid_argument on out-of-range AP ids, zero-rate links, or
/// duplicate APs within one user's served-set.
MultiLoadReport compute_multi_loads(const Scenario& sc, const MultiAssociation& multi,
                                    bool multi_rate = true);

}  // namespace wmcast::wlan
