#include "wmcast/wlan/scenario_generator.hpp"

#include <algorithm>
#include <cmath>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

namespace {

/// Box-Muller standard normal from two uniforms.
double gaussian(util::Rng& rng) {
  const double u1 = std::max(rng.next_double(), 1e-300);
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

Scenario generate_scenario(const GeneratorParams& params, util::Rng& rng) {
  util::require(params.n_aps > 0, "generator: need at least one AP");
  util::require(params.n_users > 0, "generator: need at least one user");
  util::require(params.n_sessions > 0, "generator: need at least one session");
  util::require(params.area_side_m > 0.0, "generator: area side must be positive");
  util::require(params.zipf_exponent >= 0.0, "generator: bad zipf exponent");
  util::require(params.hotspot_fraction >= 0.0 && params.hotspot_fraction <= 1.0,
                "generator: bad hotspot fraction");
  util::require(params.n_hotspots > 0, "generator: need at least one hotspot");
  util::require(params.session_rate_spread >= 1.0,
                "generator: session rate spread must be >= 1");

  const double side = params.area_side_m;
  std::vector<Point> ap_pos(static_cast<size_t>(params.n_aps));
  for (auto& p : ap_pos) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};

  // Hotspot centers (drawn even when unused, to keep streams aligned across
  // hotspot_fraction settings at the same seed).
  std::vector<Point> hotspots(static_cast<size_t>(params.n_hotspots));
  for (auto& h : hotspots) h = {rng.uniform(0.0, side), rng.uniform(0.0, side)};

  std::vector<Point> user_pos(static_cast<size_t>(params.n_users));
  for (auto& p : user_pos) {
    if (rng.next_bool(params.hotspot_fraction)) {
      const auto& h = hotspots[static_cast<size_t>(rng.next_int(params.n_hotspots))];
      p = {std::clamp(h.x + params.hotspot_sigma_m * gaussian(rng), 0.0, side),
           std::clamp(h.y + params.hotspot_sigma_m * gaussian(rng), 0.0, side)};
    } else {
      p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
    }
  }

  // Session choice: uniform, or Zipf over session ids.
  std::vector<int> user_session(static_cast<size_t>(params.n_users));
  if (params.zipf_exponent == 0.0) {
    for (auto& s : user_session) s = rng.next_int(params.n_sessions);
  } else {
    std::vector<double> cdf(static_cast<size_t>(params.n_sessions));
    double sum = 0.0;
    for (int k = 0; k < params.n_sessions; ++k) {
      sum += 1.0 / std::pow(k + 1, params.zipf_exponent);
      cdf[static_cast<size_t>(k)] = sum;
    }
    for (auto& s : user_session) {
      const double x = rng.next_double() * sum;
      s = static_cast<int>(std::lower_bound(cdf.begin(), cdf.end(), x) - cdf.begin());
      s = std::min(s, params.n_sessions - 1);
    }
  }

  std::vector<double> session_rates(static_cast<size_t>(params.n_sessions),
                                    params.session_rate_mbps);
  if (params.session_rate_spread != 1.0) {
    const double log_spread = std::log(params.session_rate_spread);
    for (auto& r : session_rates) {
      r = params.session_rate_mbps * std::exp(rng.uniform(-log_spread, log_spread));
    }
  }
  return Scenario::from_geometry(std::move(ap_pos), std::move(user_pos),
                                 std::move(user_session), std::move(session_rates),
                                 params.rate_table, params.load_budget);
}

GeneratorParams fig12_params(int n_users) {
  GeneratorParams p;
  p.area_side_m = 600.0;
  p.n_aps = 30;
  p.n_users = n_users;
  return p;
}

}  // namespace wmcast::wlan
