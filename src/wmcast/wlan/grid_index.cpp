#include "wmcast/wlan/grid_index.hpp"

#include <algorithm>
#include <cmath>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

GridIndex::GridIndex(const std::vector<Point>& points, double cell_size) {
  util::require(cell_size > 0.0 && std::isfinite(cell_size),
                "GridIndex: cell size must be positive and finite");
  n_points_ = static_cast<int>(points.size());
  cell_ = cell_size;
  if (n_points_ == 0) return;

  double max_x = points[0].x, max_y = points[0].y;
  min_x_ = points[0].x;
  min_y_ = points[0].y;
  for (const auto& p : points) {
    util::require(std::isfinite(p.x) && std::isfinite(p.y),
                  "GridIndex: non-finite point");
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  nx_ = static_cast<int>(std::floor((max_x - min_x_) / cell_)) + 1;
  ny_ = static_cast<int>(std::floor((max_y - min_y_) / cell_)) + 1;

  const size_t n_cells = static_cast<size_t>(nx_) * static_cast<size_t>(ny_);
  cell_start_.assign(n_cells + 1, 0);
  // Counting sort by cell id keeps point ids ascending within each bucket.
  std::vector<int32_t> cell_of(static_cast<size_t>(n_points_));
  for (int i = 0; i < n_points_; ++i) {
    const auto& p = points[static_cast<size_t>(i)];
    const int cx = std::min(nx_ - 1, static_cast<int>(std::floor((p.x - min_x_) / cell_)));
    const int cy = std::min(ny_ - 1, static_cast<int>(std::floor((p.y - min_y_) / cell_)));
    const auto c = static_cast<int32_t>(cy * nx_ + cx);
    cell_of[static_cast<size_t>(i)] = c;
    ++cell_start_[static_cast<size_t>(c) + 1];
  }
  for (size_t c = 0; c < n_cells; ++c) cell_start_[c + 1] += cell_start_[c];
  bucket_.resize(static_cast<size_t>(n_points_));
  std::vector<int32_t> fill(cell_start_.begin(), cell_start_.end() - 1);
  for (int i = 0; i < n_points_; ++i) {
    const auto c = static_cast<size_t>(cell_of[static_cast<size_t>(i)]);
    bucket_[static_cast<size_t>(fill[c]++)] = i;
  }
}

void GridIndex::cell_range(const Point& p, double radius, int& cx_lo, int& cx_hi,
                           int& cy_lo, int& cy_hi) const {
  // floor is monotone, so any AP with |ap - p| <= radius has its cell index
  // inside [floor((p-r-min)/cell), floor((p+r-min)/cell)]; clamping to the
  // grid extent cannot exclude it (cells outside hold no APs).
  const auto lo = [&](double v, double mn, int n) {
    return std::clamp(static_cast<int>(std::floor((v - radius - mn) / cell_)), 0, n - 1);
  };
  const auto hi = [&](double v, double mn, int n) {
    return std::clamp(static_cast<int>(std::floor((v + radius - mn) / cell_)), 0, n - 1);
  };
  cx_lo = lo(p.x, min_x_, nx_);
  cx_hi = hi(p.x, min_x_, nx_);
  cy_lo = lo(p.y, min_y_, ny_);
  cy_hi = hi(p.y, min_y_, ny_);
}

}  // namespace wmcast::wlan
