#include "wmcast/wlan/serialization.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "wmcast/util/assert.hpp"

namespace wmcast::wlan {

namespace {

void expect_token(std::istream& in, const std::string& expected) {
  std::string tok;
  in >> tok;
  util::require(static_cast<bool>(in) && tok == expected,
                "scenario parse: expected '" + expected + "', got '" + tok + "'");
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  T v;
  in >> v;
  util::require(static_cast<bool>(in), std::string("scenario parse: bad ") + what);
  return v;
}

}  // namespace

std::string to_text(const Scenario& sc, const RateTable& table) {
  std::ostringstream out;
  out.precision(17);
  out << "wmcast-scenario v2\n";
  out << "budget " << sc.load_budget() << "\n";
  out << "sessions " << sc.n_sessions() << "\n";
  out << "session_rates";
  for (int s = 0; s < sc.n_sessions(); ++s) out << ' ' << sc.session_rate(s);
  out << "\nusers " << sc.n_users() << "\n";
  out << "user_sessions";
  for (int u = 0; u < sc.n_users(); ++u) out << ' ' << sc.user_session(u);
  out << "\ngeometry " << (sc.has_geometry() ? 1 : 0) << "\n";

  if (sc.has_geometry()) {
    out << "ap_positions " << sc.n_aps() << "\n";
    for (const auto& p : sc.ap_positions()) out << p.x << ' ' << p.y << "\n";
    out << "user_positions\n";
    for (const auto& p : sc.user_positions()) out << p.x << ' ' << p.y << "\n";
    out << "rate_table " << table.steps().size() << "\n";
    for (const auto& st : table.steps()) {
      out << st.rate_mbps << ' ' << st.max_distance_m << "\n";
    }
  } else {
    // v2: per-user sparse rows instead of the v1 dense [ap][user] matrix —
    // explicit instances write O(links), matching the CSR in-memory layout.
    // Each row is `k ap rate ap rate ...` in the stored strongest-first order.
    out << "aps " << sc.n_aps() << "\n";
    out << "sparse_links\n";
    for (int u = 0; u < sc.n_users(); ++u) {
      const IndexSpan aps = sc.aps_of_user(u);
      const double* rates = sc.rates_of_user(u);
      out << aps.size();
      for (size_t i = 0; i < aps.size(); ++i) out << ' ' << aps[i] << ' ' << rates[i];
      out << "\n";
    }
  }
  return out.str();
}

Scenario from_text(const std::string& text) {
  std::istringstream in(text);
  expect_token(in, "wmcast-scenario");
  std::string version;
  in >> version;
  util::require(static_cast<bool>(in) && (version == "v1" || version == "v2"),
                "scenario parse: expected 'v1' or 'v2', got '" + version + "'");

  expect_token(in, "budget");
  const auto budget = read_value<double>(in, "budget");
  expect_token(in, "sessions");
  const auto n_sessions = read_value<int>(in, "session count");
  util::require(n_sessions > 0 && n_sessions < 1000000, "scenario parse: session count");
  expect_token(in, "session_rates");
  std::vector<double> session_rates(static_cast<size_t>(n_sessions));
  for (auto& r : session_rates) r = read_value<double>(in, "session rate");

  expect_token(in, "users");
  const auto n_users = read_value<int>(in, "user count");
  util::require(n_users >= 0 && n_users < 10000000, "scenario parse: user count");
  expect_token(in, "user_sessions");
  std::vector<int> user_sessions(static_cast<size_t>(n_users));
  for (auto& s : user_sessions) s = read_value<int>(in, "user session");

  expect_token(in, "geometry");
  const auto geometric = read_value<int>(in, "geometry flag");

  if (geometric != 0) {
    expect_token(in, "ap_positions");
    const auto n_aps = read_value<int>(in, "AP count");
    util::require(n_aps >= 0 && n_aps < 10000000, "scenario parse: AP count");
    std::vector<Point> ap_pos(static_cast<size_t>(n_aps));
    for (auto& p : ap_pos) {
      p.x = read_value<double>(in, "AP x");
      p.y = read_value<double>(in, "AP y");
    }
    expect_token(in, "user_positions");
    std::vector<Point> user_pos(static_cast<size_t>(n_users));
    for (auto& p : user_pos) {
      p.x = read_value<double>(in, "user x");
      p.y = read_value<double>(in, "user y");
    }
    expect_token(in, "rate_table");
    const auto n_steps = read_value<int>(in, "rate table size");
    util::require(n_steps > 0 && n_steps < 1000, "scenario parse: rate table size");
    std::vector<RateStep> steps(static_cast<size_t>(n_steps));
    for (auto& st : steps) {
      st.rate_mbps = read_value<double>(in, "rate");
      st.max_distance_m = read_value<double>(in, "distance");
    }
    return Scenario::from_geometry(std::move(ap_pos), std::move(user_pos),
                                   std::move(user_sessions), std::move(session_rates),
                                   RateTable(std::move(steps)), budget);
  }

  expect_token(in, "aps");
  const auto n_aps = read_value<int>(in, "AP count");
  util::require(n_aps >= 0 && n_aps < 10000000, "scenario parse: AP count");

  // Explicit instances are hand-sized (tests, traces); the loader goes
  // through a dense intermediate, so bound it. Million-user instances travel
  // as geometry, never as explicit matrices.
  util::require(static_cast<int64_t>(n_aps) * static_cast<int64_t>(n_users) <= 10000000,
                "scenario parse: explicit instance too large");
  std::vector<std::vector<double>> link(
      static_cast<size_t>(n_aps), std::vector<double>(static_cast<size_t>(n_users)));

  if (version == "v1") {
    expect_token(in, "link_rates");
    for (auto& row : link) {
      for (auto& r : row) r = read_value<double>(in, "link rate");
    }
  } else {
    expect_token(in, "sparse_links");
    for (int u = 0; u < n_users; ++u) {
      const auto k = read_value<int>(in, "sparse row size");
      util::require(k >= 0 && k <= n_aps, "scenario parse: sparse row size");
      for (int i = 0; i < k; ++i) {
        const auto a = read_value<int>(in, "sparse link AP");
        util::require(a >= 0 && a < n_aps, "scenario parse: sparse link AP out of range");
        const auto r = read_value<double>(in, "sparse link rate");
        util::require(r > 0.0, "scenario parse: sparse link rate must be positive");
        util::require(link[static_cast<size_t>(a)][static_cast<size_t>(u)] == 0.0,
                      "scenario parse: duplicate sparse link");
        link[static_cast<size_t>(a)][static_cast<size_t>(u)] = r;
      }
    }
  }
  return Scenario::from_link_rates(std::move(link), std::move(user_sessions),
                                   std::move(session_rates), budget);
}

bool save_scenario(const Scenario& sc, const std::string& path, const RateTable& table) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_text(sc, table);
  return static_cast<bool>(f);
}

Scenario load_scenario(const std::string& path) {
  std::ifstream f(path);
  util::require(static_cast<bool>(f), "load_scenario: cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return from_text(buf.str());
}

std::string association_to_text(const Association& assoc) {
  std::ostringstream out;
  out << "wmcast-association v1\n";
  out << "users " << assoc.n_users() << "\n";
  for (const int a : assoc.user_ap) out << a << "\n";
  return out.str();
}

Association association_from_text(const std::string& text) {
  std::istringstream in(text);
  expect_token(in, "wmcast-association");
  expect_token(in, "v1");
  expect_token(in, "users");
  const auto n = read_value<int>(in, "user count");
  util::require(n >= 0 && n < 10000000, "association parse: user count");
  Association assoc = Association::none(n);
  for (int u = 0; u < n; ++u) {
    const auto a = read_value<int>(in, "AP id");
    util::require(a >= kNoAp, "association parse: AP id below -1");
    assoc.user_ap[static_cast<size_t>(u)] = a;
  }
  return assoc;
}

bool save_association(const Association& assoc, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << association_to_text(assoc);
  return static_cast<bool>(f);
}

Association load_association(const std::string& path) {
  std::ifstream f(path);
  util::require(static_cast<bool>(f), "load_association: cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return association_from_text(buf.str());
}

}  // namespace wmcast::wlan
