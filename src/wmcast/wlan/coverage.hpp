// Coverage and connectivity analytics for a scenario: how many APs each
// user can hear (the `f` that bounds the §6.1 layering algorithm), the rate
// mix, AP neighborhood sizes. Used by the CLI's `info` subcommand and by
// experiment write-ups to characterize generated topologies.
#pragma once

#include <vector>

#include "wmcast/wlan/scenario.hpp"

namespace wmcast::wlan {

struct CoverageReport {
  int coverable_users = 0;
  int uncoverable_users = 0;
  /// Histogram over users of |APs in range|; index = count (clamped to the
  /// histogram size, last bucket = ">=").
  std::vector<int> aps_per_user_histogram;
  double mean_aps_per_user = 0.0;
  int max_aps_per_user = 0;  // the layering algorithm's f upper bound
  /// Histogram over users of their best (strongest-AP) link rate, one bucket
  /// per distinct rate in ascending order; parallel to best_rate_values.
  std::vector<double> best_rate_values;
  std::vector<int> best_rate_counts;
  double mean_users_per_ap = 0.0;
  int max_users_per_ap = 0;
  int idle_aps = 0;  // APs with no user in range
};

CoverageReport analyze_coverage(const Scenario& sc, int histogram_buckets = 16);

}  // namespace wmcast::wlan
