#include "wmcast/core/parallel.hpp"

#include <algorithm>
#include <map>

#include "wmcast/util/assert.hpp"

namespace wmcast::core {

void SessionShards::build_impl(const CoverageEngine& eng,
                               const std::vector<int>& shard_of_session) {
  const int n_shards =
      shard_of_session.empty()
          ? 0
          : 1 + *std::max_element(shard_of_session.begin(), shard_of_session.end());
  // Controllers rebuild shards every sharded solve; reuse the target bitsets'
  // word storage and the per-shard vectors instead of reallocating them.
  targets_.resize(static_cast<size_t>(n_shards));
  for (auto& t : targets_) {
    t.resize(eng.n_elements());
    t.reset_all();
  }
  weights_.assign(static_cast<size_t>(n_shards), 0);
  sessions_.resize(static_cast<size_t>(n_shards));
  for (auto& s : sessions_) s.clear();
  for (size_t s = 0; s < shard_of_session.size(); ++s) {
    sessions_[static_cast<size_t>(shard_of_session[s])].push_back(static_cast<int>(s));
  }
  for (int j = 0; j < eng.n_set_slots(); ++j) {
    if (!eng.alive(j)) continue;
    auto& target = targets_[static_cast<size_t>(
        shard_of_session[static_cast<size_t>(eng.session(j))])];
    for (const int32_t e : eng.members(j)) target.set(e);
  }
  for (int k = 0; k < n_shards; ++k) {
    weights_[static_cast<size_t>(k)] = targets_[static_cast<size_t>(k)].count();
  }
}

void SessionShards::build(const CoverageEngine& eng) {
  int max_session = -1;
  for (int j = 0; j < eng.n_set_slots(); ++j) {
    if (eng.alive(j)) max_session = std::max(max_session, eng.session(j));
  }
  std::vector<int> identity(static_cast<size_t>(max_session + 1));
  for (size_t s = 0; s < identity.size(); ++s) identity[s] = static_cast<int>(s);
  build_impl(eng, identity);
}

void SessionShards::build(const CoverageEngine& eng,
                          std::span<const int> session_component) {
  int max_session = -1;
  for (int j = 0; j < eng.n_set_slots(); ++j) {
    if (eng.alive(j)) max_session = std::max(max_session, eng.session(j));
  }
  // Dense shard ids ordered by ascending component label; sessions past the
  // span get fresh labels above every provided one so they shard alone.
  std::map<int, std::vector<int>> by_label;
  int next_extra = session_component.empty()
                       ? 0
                       : 1 + *std::max_element(session_component.begin(),
                                               session_component.end());
  std::vector<int> shard_of_session(static_cast<size_t>(max_session + 1), 0);
  for (int s = 0; s <= max_session; ++s) {
    const int label = s < static_cast<int>(session_component.size())
                          ? session_component[static_cast<size_t>(s)]
                          : next_extra++;
    by_label[label].push_back(s);
  }
  int shard = 0;
  for (const auto& [label, sessions] : by_label) {
    for (const int s : sessions) shard_of_session[static_cast<size_t>(s)] = shard;
    ++shard;
  }
  build_impl(eng, shard_of_session);
}

void fill_parallel_stats(const SessionShards& shards, const util::ThreadPool& pool,
                         ParallelStats& stats) {
  stats.tasks = shards.n_shards();
  stats.workers = std::max(1, std::min(pool.size(), shards.n_shards()));
  int64_t total = 0;
  int max_w = 0;
  for (int k = 0; k < shards.n_shards(); ++k) {
    total += shards.weight(k);
    max_w = std::max(max_w, shards.weight(k));
  }
  stats.imbalance =
      total > 0 ? static_cast<double>(max_w) * shards.n_shards() /
                      static_cast<double>(total)
                : 0.0;
}

CoverResult parallel_greedy_cover(const CoverageEngine& eng, util::ThreadPool& pool,
                                  ShardWorkspaces& wss, const SessionShards& shards,
                                  ParallelStats* stats) {
  auto parts = parallel_solve_sessions<CoverResult>(
      shards, pool, wss,
      [&eng](int, SolveWorkspace& ws, const util::DynBitset& target) {
        return greedy_cover(eng, ws, &target);
      },
      stats);

  CoverResult merged;
  merged.covered = util::DynBitset(eng.n_elements());
  merged.complete = true;
  for (const auto& part : parts) {
    merged.chosen.insert(merged.chosen.end(), part.chosen.begin(), part.chosen.end());
    merged.covered.or_assign(part.covered);
    merged.total_cost += part.total_cost;
    merged.complete = merged.complete && part.complete;
  }
  return merged;
}

McgResult parallel_mcg_cover(const CoverageEngine& eng, util::ThreadPool& pool,
                             ShardWorkspaces& wss, const SessionShards& shards,
                             std::span<const double> group_budgets, bool augment,
                             ParallelStats* stats) {
  util::require(static_cast<int>(group_budgets.size()) == eng.n_groups(),
                "parallel_mcg_cover: one budget per group required");

  auto parts = parallel_solve_sessions<McgResult>(
      shards, pool, wss,
      [&eng, group_budgets, augment](int, SolveWorkspace& ws,
                                     const util::DynBitset& target) {
        McgResult res = mcg_cover(eng, ws, group_budgets, &target);
        if (augment) {
          // MNU's post-split augmentation, shard-local: re-add sets that
          // still fit this shard's (per-channel) group budgets.
          auto& spent = ws.shard_group_cost;
          spent.assign(static_cast<size_t>(eng.n_groups()), 0.0);
          for (const int j : res.chosen) {
            spent[static_cast<size_t>(eng.group(j))] += eng.cost(j);
          }
          const auto added =
              mcg_augment(eng, ws, group_budgets, spent, res.covered, &target);
          res.chosen.insert(res.chosen.end(), added.begin(), added.end());
        }
        return res;
      },
      stats);

  McgResult merged;
  merged.covered = util::DynBitset(eng.n_elements());
  merged.covered_h = util::DynBitset(eng.n_elements());
  for (const auto& part : parts) {
    merged.h.insert(merged.h.end(), part.h.begin(), part.h.end());
    merged.violator.insert(merged.violator.end(), part.violator.begin(),
                           part.violator.end());
    merged.h1.insert(merged.h1.end(), part.h1.begin(), part.h1.end());
    merged.h2.insert(merged.h2.end(), part.h2.begin(), part.h2.end());
    merged.chosen.insert(merged.chosen.end(), part.chosen.begin(), part.chosen.end());
    merged.covered.or_assign(part.covered);
    merged.covered_h.or_assign(part.covered_h);
  }
  return merged;
}

ScgResult parallel_scg_cover(const CoverageEngine& eng, util::ThreadPool& pool,
                             ShardWorkspaces& wss, const SessionShards& shards,
                             const ScgParams& params, ParallelStats* stats) {
  auto parts = parallel_solve_sessions<ScgResult>(
      shards, pool, wss,
      [&eng, &params](int, SolveWorkspace& ws, const util::DynBitset& target) {
        return scg_cover(eng, ws, params, &target);
      },
      stats);

  ScgResult merged;
  merged.covered = util::DynBitset(eng.n_elements());
  merged.feasible = true;
  merged.group_cost.assign(static_cast<size_t>(eng.n_groups()), 0.0);
  for (const auto& part : parts) {
    merged.chosen.insert(merged.chosen.end(), part.chosen.begin(), part.chosen.end());
    merged.covered.or_assign(part.covered);
    merged.feasible = merged.feasible && part.feasible;
    merged.bstar = std::max(merged.bstar, part.bstar);
    // Per-channel airtime: the binding max is within a shard, while the
    // per-AP totals sum across shards for reporting.
    merged.max_group_cost = std::max(merged.max_group_cost, part.max_group_cost);
    for (size_t g = 0; g < part.group_cost.size(); ++g) {
      merged.group_cost[g] += part.group_cost[g];
    }
    merged.passes += part.passes;
  }
  return merged;
}

}  // namespace wmcast::core
