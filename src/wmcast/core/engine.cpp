#include "wmcast/core/engine.hpp"

#include <limits>

namespace wmcast::core {

void CoverageEngine::reset(int n_elements, int n_groups) {
  util::require(n_elements >= 0, "CoverageEngine: negative universe");
  util::require(n_groups >= 0, "CoverageEngine: negative group count");
  n_elements_ = n_elements;
  n_groups_ = n_groups;
  live_sets_ = 0;
  mem_off_.clear();
  mem_len_.clear();
  cost_.clear();
  cost_mant_.clear();
  cost_exp_.clear();
  tx_rate_.clear();
  group_.clear();
  session_.clear();
  alive_.clear();
  mem_.clear();
  dead_members_ = 0;
  inv_off_.assign(static_cast<size_t>(n_elements) + 1, 0);
  inv_sets_.clear();
  inv_head_.assign(static_cast<size_t>(n_elements), -1);
  inv_node_set_.clear();
  inv_next_.clear();
  group_sets_.assign(static_cast<size_t>(n_groups), {});
  for (auto& g : group_sets_) g.clear();
  coverable_ = util::DynBitset(n_elements);
  cost_caches_dirty_ = true;
  touched_stamp_.assign(static_cast<size_t>(n_elements), 0);
  stamp_ = 0;
}

int CoverageEngine::add_set(int group, int session, double tx_rate, double cost,
                            std::span<const int32_t> members) {
  util::require(group >= 0 && group < n_groups_, "CoverageEngine: invalid group");
  util::require(cost > 0.0, "CoverageEngine: set costs must be positive");
  const int j = n_set_slots();
  mem_off_.push_back(static_cast<int32_t>(mem_.size()));
  mem_len_.push_back(static_cast<int32_t>(members.size()));
  cost_.push_back(cost);
  int64_t mant = 0;
  int32_t exp = 0;
  decompose_cost(cost, mant, exp);
  cost_mant_.push_back(mant);
  cost_exp_.push_back(exp);
  tx_rate_.push_back(tx_rate);
  group_.push_back(group);
  session_.push_back(session);
  alive_.push_back(1);
  for (const int32_t e : members) {
    util::require(e >= 0 && e < n_elements_, "CoverageEngine: member out of range");
    mem_.push_back(e);
    coverable_.set(e);
    if (!bulk_building_) {
      // Newly created sets index through the overflow chain until compaction;
      // full builds skip the chains and counting-sort the CSR once at the end.
      inv_node_set_.push_back(static_cast<int32_t>(j));
      inv_next_.push_back(inv_head_[static_cast<size_t>(e)]);
      inv_head_[static_cast<size_t>(e)] =
          static_cast<int32_t>(inv_node_set_.size()) - 1;
    }
  }
  group_sets_[static_cast<size_t>(group)].push_back(static_cast<int32_t>(j));
  ++live_sets_;
  cost_caches_dirty_ = true;
  return j;
}

void CoverageEngine::grow_universe(int n_elements) {
  util::require(n_elements >= n_elements_,
                "CoverageEngine::grow_universe: cannot shrink");
  n_elements_ = n_elements;
  // Existing CSR offsets stay valid: elements beyond the snapshot have no
  // slice (for_each_set_of bounds-checks) and index via overflow only.
  inv_head_.resize(static_cast<size_t>(n_elements), -1);
  coverable_.resize(n_elements);
  touched_stamp_.resize(static_cast<size_t>(n_elements), 0);
}

void CoverageEngine::retire_set(int32_t j) {
  WMCAST_ASSERT(alive_[static_cast<size_t>(j)], "retire_set: already dead");
  alive_[static_cast<size_t>(j)] = 0;
  --live_sets_;
  ++stats_.sets_retired;
  dead_members_ += mem_len_[static_cast<size_t>(j)];
  cost_caches_dirty_ = true;
  for (const int32_t e : members(j)) {
    if (touched_stamp_[static_cast<size_t>(e)] != stamp_) {
      touched_stamp_[static_cast<size_t>(e)] = stamp_;
      touched_scratch_.push_back(e);
    }
  }
}

void CoverageEngine::refresh_coverable(std::span<const int32_t> elements) {
  for (const int32_t e : elements) {
    bool covered = false;
    for_each_set_of(e, [&](int32_t) { covered = true; });
    if (covered) {
      coverable_.set(e);
    } else {
      coverable_.reset(e);
    }
  }
}

void CoverageEngine::maybe_compact() {
  const auto dead_sets = static_cast<int64_t>(n_set_slots()) - live_sets_;
  const bool sets_stale = dead_sets > live_sets_;
  const bool arena_stale =
      dead_members_ * 2 > static_cast<int64_t>(mem_.size()) && dead_members_ > 4096;
  if (sets_stale || arena_stale) compact();
}

void CoverageEngine::compact() {
  ++stats_.compactions;
  const int old_slots = n_set_slots();
  std::vector<int32_t> new_off, new_len, new_group, new_session;
  std::vector<double> new_cost, new_tx;
  std::vector<int64_t> new_mant;
  std::vector<int32_t> new_exp;
  std::vector<int32_t> new_mem;
  new_mem.reserve(mem_.size() - static_cast<size_t>(dead_members_));
  new_off.reserve(static_cast<size_t>(live_sets_));

  std::vector<int32_t> remap(static_cast<size_t>(old_slots), -1);
  for (int j = 0; j < old_slots; ++j) {
    if (!alive_[static_cast<size_t>(j)]) continue;
    remap[static_cast<size_t>(j)] = static_cast<int32_t>(new_off.size());
    new_off.push_back(static_cast<int32_t>(new_mem.size()));
    new_len.push_back(mem_len_[static_cast<size_t>(j)]);
    new_cost.push_back(cost_[static_cast<size_t>(j)]);
    new_mant.push_back(cost_mant_[static_cast<size_t>(j)]);
    new_exp.push_back(cost_exp_[static_cast<size_t>(j)]);
    new_tx.push_back(tx_rate_[static_cast<size_t>(j)]);
    new_group.push_back(group_[static_cast<size_t>(j)]);
    new_session.push_back(session_[static_cast<size_t>(j)]);
    const auto m = members(j);
    new_mem.insert(new_mem.end(), m.begin(), m.end());
  }

  mem_off_ = std::move(new_off);
  mem_len_ = std::move(new_len);
  cost_ = std::move(new_cost);
  cost_mant_ = std::move(new_mant);
  cost_exp_ = std::move(new_exp);
  tx_rate_ = std::move(new_tx);
  group_ = std::move(new_group);
  session_ = std::move(new_session);
  mem_ = std::move(new_mem);
  alive_.assign(mem_off_.size(), 1);
  dead_members_ = 0;

  for (auto& sets : group_sets_) {
    for (auto& j : sets) j = remap[static_cast<size_t>(j)];
  }

  rebuild_inverted_csr();
}

void CoverageEngine::rebuild_inverted_csr() {
  // Counting sort mem_ into the inverted CSR; overflow chains drain.
  inv_off_.assign(static_cast<size_t>(n_elements_) + 1, 0);
  for (const int32_t e : mem_) ++inv_off_[static_cast<size_t>(e) + 1];
  for (size_t e = 1; e < inv_off_.size(); ++e) inv_off_[e] += inv_off_[e - 1];
  inv_sets_.assign(mem_.size(), 0);
  inv_cursor_scratch_.assign(inv_off_.begin(), inv_off_.end() - 1);
  for (int j = 0; j < n_set_slots(); ++j) {
    for (const int32_t e : members(j)) {
      inv_sets_[static_cast<size_t>(
          inv_cursor_scratch_[static_cast<size_t>(e)]++)] =
          static_cast<int32_t>(j);
    }
  }
  inv_head_.assign(static_cast<size_t>(n_elements_), -1);
  inv_node_set_.clear();
  inv_next_.clear();
}

double CoverageEngine::max_set_cost() const {
  if (cost_caches_dirty_) {
    max_cost_ = 0.0;
    std::vector<double> min_cost(static_cast<size_t>(n_elements_),
                                 std::numeric_limits<double>::infinity());
    for (int j = 0; j < n_set_slots(); ++j) {
      if (!alive_[static_cast<size_t>(j)]) continue;
      const double c = cost_[static_cast<size_t>(j)];
      max_cost_ = std::max(max_cost_, c);
      for (const int32_t e : members(j)) {
        min_cost[static_cast<size_t>(e)] = std::min(min_cost[static_cast<size_t>(e)], c);
      }
    }
    min_feasible_budget_ = 0.0;
    coverable_.for_each([&](int e) {
      min_feasible_budget_ =
          std::max(min_feasible_budget_, min_cost[static_cast<size_t>(e)]);
    });
    cost_caches_dirty_ = false;
  }
  return max_cost_;
}

double CoverageEngine::min_feasible_budget() const {
  max_set_cost();  // refreshes both caches
  return min_feasible_budget_;
}

}  // namespace wmcast::core
