// Sharded per-session solves over the shared coverage engine (DESIGN.md §9).
//
// The paper's network model puts neighboring APs on non-interfering channels,
// and a multicast session's candidate sets cover only that session's users —
// so the per-session coverage subproblems are independent: covering one
// session's elements never changes another session's marginal gains. This
// module partitions the engine's element universe into such shards (one per
// session, or one per channel component when the interference extension
// groups sessions sharing spectrum), solves every shard independently across
// a util::ThreadPool, and merges the per-shard results in shard-index order.
//
// Determinism contract: the merged output is a pure function of the engine
// and the shard order — bitwise identical at any thread count, because
//  * shards are solved against disjoint targets with per-lane workspaces,
//  * every shard's result lands in a pre-sized slot indexed by shard id,
//  * the merge walks those slots in ascending shard order.
// threads = 1 (an inline pool) is the reference semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "wmcast/core/engine.hpp"
#include "wmcast/util/arena.hpp"
#include "wmcast/core/solve.hpp"
#include "wmcast/core/workspace.hpp"
#include "wmcast/util/bitset.hpp"
#include "wmcast/util/thread_pool.hpp"

namespace wmcast::core {

/// Deterministic partition of the engine's coverable elements into
/// independent shards. Rebuild whenever the engine's sets change.
class SessionShards {
 public:
  /// One shard per session id the engine's live sets mention (ascending).
  void build(const CoverageEngine& eng);

  /// One shard per distinct component label: sessions with equal
  /// `session_component[s]` share a shard (the interference extension's
  /// same-channel coupling). Labels may be arbitrary ints; shards are ordered
  /// by ascending label. Sessions beyond the span's size get their own shard.
  void build(const CoverageEngine& eng, std::span<const int> session_component);

  int n_shards() const { return static_cast<int>(targets_.size()); }
  /// Coverable elements of shard k (disjoint across shards).
  const util::DynBitset& target(int k) const {
    return targets_[static_cast<size_t>(k)];
  }
  /// Number of elements in shard k — the static load-balance weight.
  int weight(int k) const { return weights_[static_cast<size_t>(k)]; }
  /// Ascending session ids belonging to shard k.
  const std::vector<int>& sessions(int k) const {
    return sessions_[static_cast<size_t>(k)];
  }

 private:
  void build_impl(const CoverageEngine& eng, const std::vector<int>& shard_of_session);

  std::vector<util::DynBitset> targets_;
  std::vector<int> weights_;
  std::vector<std::vector<int>> sessions_;
};

/// One SolveWorkspace per pool lane, each seated on its own monotonic
/// util::Arena, reused across sharded solves so the steady state allocates
/// nothing — and never from the shared heap even while warming up. prepare()
/// must run before dispatch (it grows the vectors on the calling thread;
/// lanes only index afterwards). Arenas are declared before the workspaces
/// and heap-pinned via unique_ptr, so they outlive every container seated on
/// them and survive vector reallocation.
struct ShardWorkspaces {
  std::vector<std::unique_ptr<util::Arena>> arenas;
  std::vector<SolveWorkspace> ws;

  void prepare(int lanes) {
    while (arenas.size() < static_cast<size_t>(lanes)) {
      arenas.push_back(std::make_unique<util::Arena>());
    }
    while (ws.size() < static_cast<size_t>(lanes)) {
      ws.emplace_back(arenas[ws.size()].get());
    }
  }
  SolveWorkspace& lane(int k) { return ws[static_cast<size_t>(k)]; }

  /// Sum of the lanes' arena high-water marks (peak live scratch bytes).
  size_t arena_high_water_bytes() const {
    size_t total = 0;
    for (const auto& a : arenas) total += a->high_water_bytes();
    return total;
  }
  /// Sum of the lanes' reserved arena block capacity.
  size_t arena_reserved_bytes() const {
    size_t total = 0;
    for (const auto& a : arenas) total += a->reserved_bytes();
    return total;
  }
};

/// Per-solve accounting, surfaced as counters.engine.parallel.* telemetry.
struct ParallelStats {
  int tasks = 0;         // shards dispatched
  int workers = 0;       // pool lanes that received work
  double imbalance = 0.0;  // max shard weight / mean shard weight (1 = balanced)
  uint64_t arena_high_water_bytes = 0;  // peak live per-shard arena scratch
  uint64_t arena_reserved_bytes = 0;    // arena block capacity reserved
};

/// Fills `stats` from a partition + pool (helper for the entry points below).
void fill_parallel_stats(const SessionShards& shards, const util::ThreadPool& pool,
                         ParallelStats& stats);

/// The generic sharded entry point: runs
///   solve_shard(shard_index, workspace, shards.target(shard_index))
/// for every shard across the pool — static chunking, one workspace per lane
/// — and returns the per-shard results in shard-index order. `Result` must be
/// default-constructible and movable.
template <typename Result, typename Fn>
std::vector<Result> parallel_solve_sessions(const SessionShards& shards,
                                            util::ThreadPool& pool,
                                            ShardWorkspaces& wss, Fn&& solve_shard,
                                            ParallelStats* stats = nullptr) {
  const int n = shards.n_shards();
  std::vector<Result> out(static_cast<size_t>(n));
  wss.prepare(pool.size());
  pool.parallel_for(0, n, [&](int64_t b, int64_t e, int lane) {
    SolveWorkspace& ws = wss.lane(lane);
    for (int64_t k = b; k < e; ++k) {
      out[static_cast<size_t>(k)] =
          solve_shard(static_cast<int>(k), ws, shards.target(static_cast<int>(k)));
    }
  });
  if (stats != nullptr) {
    fill_parallel_stats(shards, pool, *stats);
    stats->arena_high_water_bytes = wss.arena_high_water_bytes();
    stats->arena_reserved_bytes = wss.arena_reserved_bytes();
  }
  return out;
}

// --- Merged per-solver entry points ----------------------------------------
//
// Each runs its core/solve.hpp counterpart restricted to every shard's target
// and merges in shard order: chosen lists concatenate, covered bitsets OR,
// costs sum. For greedy cover the merged chosen *set* and the materialized
// association are identical to the joint (unsharded) solve — covering one
// session never changes another session's gains, so the joint greedy's
// per-session subsequence IS the shard's greedy trajectory; only the
// interleaving of the chosen order differs. For MCG/SCG the shards also
// decouple the per-AP budgets (each session rides its own channel's airtime),
// which is the model the sharding assumes — see DESIGN.md §9.

CoverResult parallel_greedy_cover(const CoverageEngine& eng, util::ThreadPool& pool,
                                  ShardWorkspaces& wss, const SessionShards& shards,
                                  ParallelStats* stats = nullptr);

/// Per-shard MCG with the H1/H2 split applied shard-locally; group budgets
/// apply per shard. With `augment`, each shard greedily re-adds sets that
/// still fit its budgets (MNU's post-split augmentation).
McgResult parallel_mcg_cover(const CoverageEngine& eng, util::ThreadPool& pool,
                             ShardWorkspaces& wss, const SessionShards& shards,
                             std::span<const double> group_budgets,
                             bool augment = false, ParallelStats* stats = nullptr);

/// Per-shard SCG; feasible = every shard feasible, bstar = max over shards,
/// group_cost sums, passes sum.
ScgResult parallel_scg_cover(const CoverageEngine& eng, util::ThreadPool& pool,
                             ShardWorkspaces& wss, const SessionShards& shards,
                             const ScgParams& params = {},
                             ParallelStats* stats = nullptr);

}  // namespace wmcast::core
