#include "wmcast/core/solve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "wmcast/util/assert.hpp"
#include "wmcast/util/fp.hpp"

namespace wmcast::core {

namespace {

constexpr double kTol = 1e-12;  // same residual tolerance as setcover/layering.cpp

/// Fast-path margin for the double cross-product comparison below. Each
/// product carries one rounding (relative error <= u = 2^-53); a computed
/// gap beyond (1+u)/(1-u)^2 - 1 ~ 3u guarantees the exact comparison
/// agrees. 1e-15 ~ 9u leaves slack — anything closer takes the exact path.
constexpr double kRatioMargin = 1.0 + 1e-15;
/// Below this, a product may be subnormal and the relative-error argument
/// breaks down; such freak costs take the exact path too.
constexpr double kRatioTiny = 1e-290;

/// Heap "less" for std::push_heap/pop_heap: a sorts below b iff b is the
/// strictly better pick, so the heap top is the best entry. The double
/// cross products decide almost every comparison outright (the margin above
/// makes the verdict provably equal to the exact one); near-tied ratios
/// fall back to better_pick's exact integer arithmetic over the engine's
/// cached cost decomposition, so the order is bit-identical to better_pick.
struct HeapLess {
  const CoverageEngine& eng;

  /// True iff x is the strictly better pick than y.
  bool better(const HeapEntry& x, const HeapEntry& y) const {
    if (x.gain > 0 || y.gain > 0) {
      if (x.gain <= 0) return false;
      if (y.gain <= 0) return true;
      const double lhs = static_cast<double>(x.gain) * y.cost;
      const double rhs = static_cast<double>(y.gain) * x.cost;
      if (lhs > kRatioTiny && rhs > kRatioTiny) {
        if (lhs > rhs * kRatioMargin) return true;
        if (rhs > lhs * kRatioMargin) return false;
      }
      // Equal costs (ubiquitous: sets sharing a rate level share a cost, and
      // ratio ties land here) reduce g_x/c vs g_y/c to an integer gain
      // compare — exact, and no engine lookups.
      if (x.cost == y.cost) {
        if (x.gain != y.gain) return x.gain > y.gain;
        return x.set < y.set;
      }
      return better_pick_decomposed(
          x.gain, eng.cost_mant(x.set), eng.cost_exp(x.set), x.set, y.gain,
          eng.cost_mant(y.set), eng.cost_exp(y.set), y.set);
    }
    return x.set < y.set;
  }

  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return better(b, a);
  }
};

/// Heap entry for set j with gain g.
inline HeapEntry entry_for(const CoverageEngine& eng, int32_t g, int32_t j) {
  return {g, j, eng.cost(j)};
}

/// ws.remaining = coverable ∩ restrict_to (or just coverable).
void init_remaining(const CoverageEngine& eng, SolveWorkspace& ws,
                    const util::DynBitset* restrict_to) {
  ws.remaining = eng.coverable();
  if (restrict_to != nullptr) ws.remaining.and_assign(*restrict_to);
}

/// ws.gain[j] = |members(j) ∩ ws.remaining| for every live slot. When the
/// target is the full coverable universe every member of a live set counts,
/// so the gain is just the degree — O(slots). Otherwise scatter through the
/// inverted index — O(Σ_{e ∈ remaining} freq(e)).
void init_gains(const CoverageEngine& eng, SolveWorkspace& ws, bool full_target) {
  const auto slots = static_cast<size_t>(eng.n_set_slots());
  if (full_target) {
    ws.gain.resize(slots);
    for (int j = 0; j < eng.n_set_slots(); ++j) {
      ws.gain[static_cast<size_t>(j)] = eng.alive(j) ? eng.degree(j) : 0;
    }
    return;
  }
  ws.gain.assign(slots, 0);
  ws.remaining.for_each([&](int e) {
    eng.for_each_set_of(e, [&](int32_t k) { ++ws.gain[static_cast<size_t>(k)]; });
  });
}

void heap_make(util::ArenaVector<HeapEntry>& heap, const HeapLess& less) {
  std::make_heap(heap.begin(), heap.end(), less);
}

/// Seat `e` starting from the root of a binary max-heap whose slot 0 is a
/// hole (same layout std::make_heap/push_heap maintain). Early-exits as
/// soon as `e` dominates both children, so re-seating a slightly-demoted
/// front entry touches only the cache-hot top levels — the key cost
/// difference vs a full pop (which sifts a random *leaf* through every
/// level) followed by a push.
void heap_replace_front(util::ArenaVector<HeapEntry>& heap, const HeapLess& less,
                        HeapEntry e) {
  const size_t n = heap.size();
  size_t i = 0;
  for (;;) {
    size_t c = 2 * i + 1;
    if (c >= n) break;
    if (c + 1 < n && less(heap[c], heap[c + 1])) ++c;
    if (!less(e, heap[c])) break;
    heap[i] = heap[c];
    i = c;
  }
  heap[i] = e;
}

/// Removes the front (max) entry.
void heap_drop_front(util::ArenaVector<HeapEntry>& heap, const HeapLess& less) {
  const HeapEntry last = heap.back();
  heap.pop_back();
  if (!heap.empty()) heap_replace_front(heap, less, last);
}

/// Wholesale refresh: drop every entry whose set's maintained gain hit zero,
/// overwrite each survivor's stored gain with the exact value, re-heapify.
/// O(n) total — the escape hatch the solver loops take when front-of-heap
/// churn (stale refreshes + dead drops since the last rebuild) says most of
/// the heap is stale, instead of funneling ~n dead entries one by one
/// through full-depth sifts. Selection is unchanged: afterwards the heap
/// holds exactly the entries a freshly seeded heap would, with exact gains,
/// and the comparator's strict total order picks the same unique argmax.
void heap_compact_rebuild(const util::ArenaVector<int32_t>& gain,
                          util::ArenaVector<HeapEntry>& heap, const HeapLess& less) {
  size_t w = 0;
  for (const HeapEntry& e : heap) {
    const int32_t g = gain[static_cast<size_t>(e.set)];
    if (g > 0) heap[w++] = HeapEntry{g, e.set, e.cost};
  }
  heap.resize(w);
  heap_make(heap, less);
}

/// Commits set j: marks its full member list in `covered_full` (when given),
/// clears its still-remaining members and decrements the maintained gain of
/// every set containing each newly covered element. Returns how many target
/// elements the set newly covered.
///
/// Two batched phases instead of one interleaved loop: first the member walk
/// (bitset reads/writes) gathers the newly covered elements into ws.newly,
/// then the gain maintenance streams their inverted-index rows back to back.
/// Members are ascending within a set, so the rows land in ascending CSR
/// order — sequential slices of inv_sets_ — and the decrement loop runs
/// without the member bitsets competing for cache. Decrements are
/// commutative, so the split changes nothing observable.
int commit_set(const CoverageEngine& eng, SolveWorkspace& ws, int j,
               util::DynBitset* covered_full) {
  ws.newly.clear();
  for (const int32_t e : eng.members(j)) {
    if (covered_full != nullptr) covered_full->set(e);
    if (ws.remaining.test_and_reset(e)) ws.newly.push_back(e);
  }
  for (const int32_t e : ws.newly) {
    eng.for_each_set_of(e, [&](int32_t k) { --ws.gain[static_cast<size_t>(k)]; });
  }
  return static_cast<int>(ws.newly.size());
}

}  // namespace

CoverResult greedy_cover(const CoverageEngine& eng, SolveWorkspace& ws,
                         const util::DynBitset* restrict_to) {
  init_remaining(eng, ws, restrict_to);
  init_gains(eng, ws, restrict_to == nullptr);

  CoverResult res;
  res.covered = util::DynBitset(eng.n_elements());

  const HeapLess less{eng};
  auto& heap = ws.heap;
  heap.clear();
  for (int j = 0; j < eng.n_set_slots(); ++j) {
    const int32_t g = ws.gain[static_cast<size_t>(j)];
    if (g > 0) heap.push_back(entry_for(eng, g, j));
  }
  heap_make(heap, less);

  int left = ws.remaining.count();
  size_t churn = 0;  // stale-front events since the last wholesale rebuild
  while (left > 0 && !heap.empty()) {
    if (churn * 32 > heap.size() + 64) {
      heap_compact_rebuild(ws.gain, heap, less);
      churn = 0;
      continue;
    }
    HeapEntry top = heap.front();  // peek — don't pay for a pop yet
    const int32_t g = ws.gain[static_cast<size_t>(top.set)];
    if (top.gain != g) {  // stale: refresh with the exact maintained gain
      ++churn;
      if (g <= 0) {
        heap_drop_front(heap, less);
      } else {
        // Re-seat the refreshed entry in place. Gains fall by small steps,
        // so it usually stops within the top (cache-hot) levels — far
        // cheaper than the classic pop + re-push round trip, and the heap
        // invariant is identical, so the pick order doesn't change.
        top.gain = g;
        heap_replace_front(heap, less, top);
      }
      continue;
    }
    heap_drop_front(heap, less);
    res.chosen.push_back(top.set);
    res.total_cost += eng.cost(top.set);
    left -= commit_set(eng, ws, top.set, &res.covered);
  }
  res.complete = left == 0;
  return res;
}

void mcg_cover_into(const CoverageEngine& eng, SolveWorkspace& ws,
                    std::span<const double> group_budgets,
                    const util::DynBitset* restrict_to, McgResult& res) {
  util::require(static_cast<int>(group_budgets.size()) == eng.n_groups(),
                "mcg_cover: one budget per group required");

  init_remaining(eng, ws, restrict_to);
  ws.target = ws.remaining;
  init_gains(eng, ws, restrict_to == nullptr);
  ws.group_cost.assign(static_cast<size_t>(eng.n_groups()), 0.0);

  res.h.clear();
  res.violator.clear();
  res.h1.clear();
  res.h2.clear();
  res.chosen.clear();
  res.covered_h.resize(eng.n_elements());
  res.covered_h.reset_all();

  const HeapLess less{eng};
  auto& heap = ws.heap;
  heap.clear();
  for (int j = 0; j < eng.n_set_slots(); ++j) {
    const int32_t g = ws.gain[static_cast<size_t>(j)];
    if (g <= 0) continue;
    if (!util::fits_budget(eng.cost(j), group_budgets[static_cast<size_t>(eng.group(j))])) {
      continue;
    }
    heap.push_back(entry_for(eng, g, j));
  }
  heap_make(heap, less);

  int left = ws.remaining.count();
  size_t churn = 0;  // stale-front events since the last wholesale rebuild
  while (left > 0 && !heap.empty()) {
    if (churn * 32 > heap.size() + 64) {
      heap_compact_rebuild(ws.gain, heap, less);
      churn = 0;
      continue;
    }
    HeapEntry top = heap.front();  // peek, as in greedy_cover
    const auto grp = static_cast<size_t>(eng.group(top.set));
    if (util::budget_exhausted(ws.group_cost[grp], group_budgets[grp])) {
      heap_drop_front(heap, less);
      continue;
    }
    const int32_t g = ws.gain[static_cast<size_t>(top.set)];
    if (top.gain != g) {
      ++churn;
      if (g <= 0) {
        heap_drop_front(heap, less);
      } else {
        top.gain = g;
        heap_replace_front(heap, less, top);
      }
      continue;
    }
    heap_drop_front(heap, less);
    ws.group_cost[grp] += eng.cost(top.set);
    res.h.push_back(top.set);
    res.violator.push_back(
        util::exceeds_budget(ws.group_cost[grp], group_budgets[grp]) ? char{1} : char{0});
    left -= commit_set(eng, ws, top.set, &res.covered_h);
  }
  res.covered_h.and_assign(ws.target);

  // H1/H2 split; output whichever covers more of the target.
  ws.cov_a.resize(eng.n_elements());
  ws.cov_b.resize(eng.n_elements());
  ws.cov_a.reset_all();
  ws.cov_b.reset_all();
  for (size_t k = 0; k < res.h.size(); ++k) {
    auto& cov = res.violator[k] ? ws.cov_b : ws.cov_a;
    (res.violator[k] ? res.h2 : res.h1).push_back(res.h[k]);
    for (const int32_t e : eng.members(res.h[k])) cov.set(e);
  }
  ws.cov_a.and_assign(ws.target);
  ws.cov_b.and_assign(ws.target);
  if (ws.cov_b.count() > ws.cov_a.count()) {
    res.chosen = res.h2;
    res.covered = ws.cov_b;
  } else {
    res.chosen = res.h1;
    res.covered = ws.cov_a;
  }
}

McgResult mcg_cover(const CoverageEngine& eng, SolveWorkspace& ws,
                    std::span<const double> group_budgets,
                    const util::DynBitset* restrict_to) {
  McgResult res;
  mcg_cover_into(eng, ws, group_budgets, restrict_to, res);
  return res;
}

std::vector<int> mcg_augment(const CoverageEngine& eng, SolveWorkspace& ws,
                             std::span<const double> group_budgets,
                             std::span<double> group_cost, util::DynBitset& covered,
                             const util::DynBitset* restrict_to) {
  util::require(static_cast<int>(group_budgets.size()) == eng.n_groups(),
                "mcg_augment: one budget per group required");
  util::require(static_cast<int>(group_cost.size()) == eng.n_groups(),
                "mcg_augment: one cost entry per group required");

  init_remaining(eng, ws, restrict_to);
  ws.remaining.andnot_assign(covered);
  init_gains(eng, ws, /*full_target=*/false);

  const HeapLess less{eng};
  auto& heap = ws.heap;
  heap.clear();
  for (int j = 0; j < eng.n_set_slots(); ++j) {
    const int32_t g = ws.gain[static_cast<size_t>(j)];
    if (g <= 0) continue;
    const auto grp = static_cast<size_t>(eng.group(j));
    if (!util::fits_budget(group_cost[grp] + eng.cost(j), group_budgets[grp])) continue;
    heap.push_back(entry_for(eng, g, j));
  }
  heap_make(heap, less);

  std::vector<int> added;
  int left = ws.remaining.count();
  size_t churn = 0;  // stale-front events since the last wholesale rebuild
  while (left > 0 && !heap.empty()) {
    if (churn * 32 > heap.size() + 64) {
      heap_compact_rebuild(ws.gain, heap, less);
      churn = 0;
      continue;
    }
    HeapEntry top = heap.front();  // peek, as in greedy_cover
    const auto grp = static_cast<size_t>(eng.group(top.set));
    if (!util::fits_budget(group_cost[grp] + eng.cost(top.set), group_budgets[grp])) {
      heap_drop_front(heap, less);  // no longer fits
      continue;
    }
    const int32_t g = ws.gain[static_cast<size_t>(top.set)];
    if (top.gain != g) {
      ++churn;
      if (g <= 0) {
        heap_drop_front(heap, less);
      } else {
        top.gain = g;
        heap_replace_front(heap, less, top);
      }
      continue;
    }
    heap_drop_front(heap, less);
    group_cost[grp] += eng.cost(top.set);
    added.push_back(top.set);
    left -= commit_set(eng, ws, top.set, &covered);
  }
  return added;
}

namespace {

/// One full SCG attempt at a fixed B*: iterate the MCG greedy on the
/// shrinking remainder until coverage stalls or completes. `mcg_scratch` is
/// the one McgResult reused across every pass of every attempt, so the
/// budget search allocates nothing per pass once warm.
ScgResult run_at_budget(const CoverageEngine& eng, SolveWorkspace& ws, double bstar,
                        int max_passes, bool carry_budgets,
                        const util::DynBitset* restrict_to, McgResult& mcg_scratch) {
  ScgResult res;
  res.bstar = bstar;
  res.covered = util::DynBitset(eng.n_elements());
  res.group_cost.assign(static_cast<size_t>(eng.n_groups()), 0.0);

  ws.pass_budget.assign(static_cast<size_t>(eng.n_groups()), bstar);
  ws.scg_remaining = eng.coverable();
  if (restrict_to != nullptr) ws.scg_remaining.and_assign(*restrict_to);
  for (int pass = 0; pass < max_passes && ws.scg_remaining.any(); ++pass) {
    if (carry_budgets) {
      for (int g = 0; g < eng.n_groups(); ++g) {
        ws.pass_budget[static_cast<size_t>(g)] =
            std::max(0.0, bstar - res.group_cost[static_cast<size_t>(g)]);
      }
    }
    mcg_cover_into(eng, ws, ws.pass_budget, &ws.scg_remaining, mcg_scratch);
    const McgResult& mcg = mcg_scratch;
    if (mcg.covered.none()) break;  // no progress possible at this B*
    ++res.passes;
    for (const int j : mcg.chosen) {
      res.chosen.push_back(j);
      res.group_cost[static_cast<size_t>(eng.group(j))] += eng.cost(j);
    }
    res.covered.or_assign(mcg.covered);
    ws.scg_remaining.andnot_assign(mcg.covered);
  }
  res.feasible = ws.scg_remaining.none();
  res.max_group_cost =
      res.group_cost.empty()
          ? 0.0
          : *std::max_element(res.group_cost.begin(), res.group_cost.end());
  return res;
}

bool scg_better(const ScgResult& a, const ScgResult& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (!a.feasible) return a.covered.count() > b.covered.count();
  return a.max_group_cost < b.max_group_cost;
}

}  // namespace

ScgResult scg_cover(const CoverageEngine& eng, SolveWorkspace& ws,
                    const ScgParams& params, const util::DynBitset* restrict_to) {
  util::require(params.budget_cap > 0.0, "scg_cover: budget cap must be positive");
  util::require(params.grid_points >= 2, "scg_cover: need at least two grid points");

  const int n_target = restrict_to != nullptr
                           ? eng.coverable().and_count(*restrict_to)
                           : eng.coverable().count();
  const int n = std::max(1, n_target);
  // Theorem 4's pass bound, with the same slack as setcover/scg.cpp.
  const int max_passes =
      static_cast<int>(std::ceil(std::log(n) / std::log(8.0 / 7.0))) + 8;

  const double min_budget = restrict_to != nullptr
                                ? min_feasible_budget_for(eng, *restrict_to)
                                : eng.min_feasible_budget();
  const double lo = std::max(min_budget, 1e-9);
  const double hi = std::max(params.budget_cap, lo);

  McgResult mcg_scratch;  // reused across every pass of every budget attempt
  ScgResult best = run_at_budget(eng, ws, lo, max_passes, params.carry_budgets,
                                 restrict_to, mcg_scratch);
  double largest_infeasible = best.feasible ? 0.0 : lo;

  const double ratio = hi / lo;
  for (int k = 1; k < params.grid_points; ++k) {
    const double b =
        lo * std::pow(ratio, static_cast<double>(k) / (params.grid_points - 1));
    ScgResult r = run_at_budget(eng, ws, b, max_passes, params.carry_budgets,
                                restrict_to, mcg_scratch);
    if (!r.feasible) largest_infeasible = std::max(largest_infeasible, b);
    if (scg_better(r, best)) best = std::move(r);
  }

  if (best.feasible) {
    double infeasible_lo = largest_infeasible;
    double feasible_hi = best.bstar;
    for (int step = 0; step < params.refine_steps; ++step) {
      if (feasible_hi - infeasible_lo < 1e-6) break;
      const double mid = infeasible_lo <= 0.0 ? feasible_hi / 2
                                              : 0.5 * (infeasible_lo + feasible_hi);
      ScgResult r = run_at_budget(eng, ws, mid, max_passes, params.carry_budgets,
                                  restrict_to, mcg_scratch);
      if (r.feasible) {
        feasible_hi = mid;
        if (scg_better(r, best)) best = std::move(r);
      } else {
        infeasible_lo = mid;
      }
    }
  }
  return best;
}

LayeringResult layered_cover(const CoverageEngine& eng, SolveWorkspace& ws) {
  LayeringResult res;
  res.covered = util::DynBitset(eng.n_elements());

  init_remaining(eng, ws, nullptr);
  init_gains(eng, ws, /*full_target=*/true);
  const auto slots = static_cast<size_t>(eng.n_set_slots());
  ws.residual.assign(slots, 0.0);
  ws.taken.assign(slots, 0);
  for (int j = 0; j < eng.n_set_slots(); ++j) {
    if (eng.alive(j)) ws.residual[static_cast<size_t>(j)] = eng.cost(j);
  }

  int left = ws.remaining.count();
  while (left > 0) {
    // epsilon = min over live sets of residual cost per uncovered element.
    // The maintained gains ARE the uncovered degrees: they only change
    // between layers (commit_set below), so both sweeps of one layer see a
    // consistent snapshot, exactly like the SetSystem implementation.
    double eps = std::numeric_limits<double>::infinity();
    bool any_live = false;
    for (int j = 0; j < eng.n_set_slots(); ++j) {
      if (ws.taken[static_cast<size_t>(j)]) continue;
      const int32_t deg = ws.gain[static_cast<size_t>(j)];
      if (deg <= 0) continue;
      any_live = true;
      eps = std::min(eps, ws.residual[static_cast<size_t>(j)] / deg);
    }
    if (!any_live) break;
    ++res.layers;

    bool picked_any = false;
    const size_t layer_start = res.chosen.size();
    for (int j = 0; j < eng.n_set_slots(); ++j) {
      if (ws.taken[static_cast<size_t>(j)]) continue;
      const int32_t deg = ws.gain[static_cast<size_t>(j)];
      if (deg <= 0) continue;
      ws.residual[static_cast<size_t>(j)] -= eps * deg;
      if (ws.residual[static_cast<size_t>(j)] <= kTol) {
        ws.taken[static_cast<size_t>(j)] = 1;
        picked_any = true;
        res.chosen.push_back(j);
        res.total_cost += eng.cost(j);
      }
    }
    WMCAST_ASSERT(picked_any, "layering: a layer must exhaust at least one set");
    for (size_t k = layer_start; k < res.chosen.size(); ++k) {
      left -= commit_set(eng, ws, res.chosen[k], &res.covered);
    }
  }

  res.covered.and_assign(eng.coverable());
  res.complete = left == 0;
  return res;
}

double min_feasible_budget_for(const CoverageEngine& eng,
                               const util::DynBitset& target) {
  double budget = 0.0;
  target.for_each([&](int e) {
    if (!eng.coverable().test(e)) return;
    double min_cost = std::numeric_limits<double>::infinity();
    eng.for_each_set_of(e, [&](int32_t j) {
      min_cost = std::min(min_cost, eng.cost(j));
    });
    budget = std::max(budget, min_cost);
  });
  return budget;
}

int max_element_frequency(const CoverageEngine& eng) {
  std::vector<int> freq(static_cast<size_t>(eng.n_elements()), 0);
  for (int j = 0; j < eng.n_set_slots(); ++j) {
    if (!eng.alive(j)) continue;
    for (const int32_t e : eng.members(j)) ++freq[static_cast<size_t>(e)];
  }
  int f = 0;
  eng.coverable().for_each(
      [&](int e) { f = std::max(f, freq[static_cast<size_t>(e)]); });
  return f;
}

}  // namespace wmcast::core
