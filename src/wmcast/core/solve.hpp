// Engine-backed set-cover solver policies. Each algorithm here is the same
// algorithm as its setcover/ counterpart (CostSC greedy, the MCG greedy with
// H1/H2 split, SCG's budget search, Vazirani layering) re-expressed over a
// CoverageEngine + SolveWorkspace:
//
//  * marginal gains are *maintained*, not recomputed — covering an element
//    decrements the exact gain of every set containing it through the
//    engine's inverted index, so the total maintenance work over a whole
//    solve is O(arena size);
//  * the lazy heap stores exact gains; an entry is stale iff its gain no
//    longer matches the maintained value (an O(1) check), and a fresh pop is
//    provably the argmax under the comparator below;
//  * ratios are compared by integer×cost cross products, never by divided
//    doubles, with ties broken toward the lower set id — so every solver is
//    exactly equal to an eager argmax reference (see setcover/reference.hpp)
//    and deterministic across platforms;
//  * all scratch lives in the caller's SolveWorkspace: repeated solves on a
//    warm engine perform no steady-state allocations beyond their results.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "wmcast/core/engine.hpp"
#include "wmcast/core/workspace.hpp"
#include "wmcast/util/bitset.hpp"

namespace wmcast::core {

/// True iff set a (gain_a, cost_a, id set_a) is a strictly better greedy pick
/// than set b: higher gain/cost ratio, ties to the lower set id. The ratios
/// are compared as cross products — gain_a * cost_b vs gain_b * cost_a — so
/// two sets with the exact same rational ratio always compare equal, which
/// divided doubles cannot promise.
///
/// The cross products are evaluated EXACTLY, in 128-bit integers over the
/// costs' (mantissa, exponent) decomposition. Rounded double products are
/// not transitive: with c = cost of a 1-member set, the trio (9, 9c), (3,
/// 3c), (1, c) can compare 9c-set < 3c-set < c-set < 9c-set, because each
/// product rounds at a different magnitude. A comparator that is not a
/// strict weak order makes std::make_heap/pop_heap behavior undefined — the
/// lazy-greedy heap then pops a context-dependent element at ties, so the
/// joint solve and the sharded per-session solves (core/parallel.hpp) could
/// commit different associations for the same instance. Found by the chaos
/// differential replayer (chaos/oracles.hpp); see tests/chaos tests.
/// better_pick over pre-decomposed costs (cost = mant * 2^(exp-53), the
/// frexp/ldexp decomposition below). The engine caches each set's (mant, exp)
/// at add_set time so the heap comparator never re-runs frexp in the hot
/// loop; the arithmetic is identical, so picks are bit-identical.
inline bool better_pick_decomposed(int32_t gain_a, int64_t ma, int32_t ea,
                                   int set_a, int32_t gain_b, int64_t mb,
                                   int32_t eb, int set_b) {
  if (gain_a > 0 || gain_b > 0) {
    if (gain_a <= 0) return false;  // b's ratio is positive, a's is not
    if (gain_b <= 0) return true;
    // gain * m fits in 31+53 bits, and the shift below stays under 127 bits,
    // so every comparison is exact.
    const __int128 lhs = static_cast<__int128>(gain_a) * mb;  // * 2^(eb-53)
    const __int128 rhs = static_cast<__int128>(gain_b) * ma;  // * 2^(ea-53)
    const int diff = eb - ea;
    if (diff > 43) return lhs != 0;    // lhs scale dominates any 84-bit rhs
    if (diff < -43) return rhs == 0;
    const __int128 l = diff > 0 ? lhs << diff : lhs;
    const __int128 r = diff < 0 ? rhs << -diff : rhs;
    if (l != r) return l > r;
  }
  return set_a < set_b;
}

inline bool better_pick(int32_t gain_a, double cost_a, int set_a,
                        int32_t gain_b, double cost_b, int set_b) {
  int64_t ma = 0;
  int64_t mb = 0;
  int32_t ea = 0;
  int32_t eb = 0;
  decompose_cost(cost_a, ma, ea);
  decompose_cost(cost_b, mb, eb);
  return better_pick_decomposed(gain_a, ma, ea, set_a, gain_b, mb, eb, set_b);
}

struct CoverResult {
  std::vector<int> chosen;  // set ids, selection order
  util::DynBitset covered;  // union of chosen sets' members
  double total_cost = 0.0;
  bool complete = false;  // every coverable target element covered
};

struct McgResult {
  std::vector<int> h;          // every set the greedy added, selection order
  std::vector<char> violator;  // h[k] pushed its group past the budget
  std::vector<int> h1;         // budget-respecting sets
  std::vector<int> h2;         // at most one violator per group
  std::vector<int> chosen;     // whichever of h1/h2 covers more of the target
  util::DynBitset covered;     // target elements covered by `chosen`
  util::DynBitset covered_h;   // target elements covered by the full h
};

struct ScgParams {
  double budget_cap = 1.0;
  int grid_points = 8;
  int refine_steps = 6;
  bool carry_budgets = true;
};

struct ScgResult {
  std::vector<int> chosen;
  util::DynBitset covered;
  bool feasible = false;
  double bstar = 0.0;
  double max_group_cost = 0.0;
  std::vector<double> group_cost;
  int passes = 0;
};

struct LayeringResult {
  std::vector<int> chosen;
  util::DynBitset covered;
  double total_cost = 0.0;
  int layers = 0;
  bool complete = false;
};

/// CostSC greedy. Targets all coverable elements, or coverable ∩ restrict_to.
CoverResult greedy_cover(const CoverageEngine& eng, SolveWorkspace& ws,
                         const util::DynBitset* restrict_to = nullptr);

/// The MCG greedy with the H1/H2 split (one budget per group).
McgResult mcg_cover(const CoverageEngine& eng, SolveWorkspace& ws,
                    std::span<const double> group_budgets,
                    const util::DynBitset* restrict_to = nullptr);

/// Allocation-reusing form: clears `res` and solves into it, keeping the
/// capacity of its vectors and bitsets. SCG's budget search calls this once
/// per pass — dozens of times per solve — with one reused result.
void mcg_cover_into(const CoverageEngine& eng, SolveWorkspace& ws,
                    std::span<const double> group_budgets,
                    const util::DynBitset* restrict_to, McgResult& res);

/// Budget-respecting augmentation after the split; extends `covered` and
/// `group_cost` in place and returns the sets it added.
std::vector<int> mcg_augment(const CoverageEngine& eng, SolveWorkspace& ws,
                             std::span<const double> group_budgets,
                             std::span<double> group_cost, util::DynBitset& covered,
                             const util::DynBitset* restrict_to = nullptr);

/// SCG: geometric grid + bisection search for B*, repeated MCG passes.
/// Targets all coverable elements, or coverable ∩ restrict_to (the sharded
/// per-session path restricts each solve to one shard's elements).
ScgResult scg_cover(const CoverageEngine& eng, SolveWorkspace& ws,
                    const ScgParams& params = {},
                    const util::DynBitset* restrict_to = nullptr);

/// Vazirani layering over the whole coverable ground set.
LayeringResult layered_cover(const CoverageEngine& eng, SolveWorkspace& ws);

/// Max number of live sets any coverable element appears in (the layering
/// algorithm's approximation factor f).
int max_element_frequency(const CoverageEngine& eng);

/// max over coverable e in `target` of the min cost of a live set containing
/// e — the smallest per-group budget at which every target element has some
/// affordable set (SCG's search floor, restricted to one shard).
double min_feasible_budget_for(const CoverageEngine& eng,
                               const util::DynBitset& target);

}  // namespace wmcast::core
