// Reusable per-solve scratch. Allocate one workspace, pass it to every solve
// on the same engine: after warm-up each solve runs with zero steady-state
// allocations (bitsets and vectors keep their capacity between calls).
#pragma once

#include <cstdint>
#include <vector>

#include "wmcast/util/bitset.hpp"

namespace wmcast::core {

/// One stale-tolerant heap entry of the lazy greedy: `gain` is the marginal
/// gain at push time; the entry is stale iff gain != ws.gain[set].
struct HeapEntry {
  int32_t gain;
  int32_t set;
};

/// Scratch for the set-cover solvers (core/solve.hpp). Results are written
/// into the caller-provided result structs; everything here is internal
/// state, reusable across solves and engines of any size.
struct SolveWorkspace {
  util::DynBitset remaining;        // uncovered target elements
  util::DynBitset target;           // the solve's initial remaining (MCG split)
  std::vector<int32_t> gain;        // exact |members ∩ remaining| per set slot
  std::vector<HeapEntry> heap;      // lazy max-heap storage
  std::vector<double> group_cost;   // per-group spend (MCG)
  std::vector<double> pass_budget;  // per-pass budgets (SCG)
  util::DynBitset scg_remaining;    // SCG's cross-pass remainder
  util::DynBitset cov_a, cov_b;     // MCG's H1/H2 split accumulators
  std::vector<double> residual;     // layering's residual costs
  std::vector<char> taken;          // layering's chosen mask
  std::vector<double> shard_group_cost;  // per-group spend of one shard's picks
};

/// Scratch for the association-side algorithms (local search, distributed
/// rounds, controller repair): per-AP member lists and loads. prepare() keeps
/// inner-vector capacity so steady-state epochs allocate nothing.
struct AssocWorkspace {
  std::vector<std::vector<int>> members;  // per AP
  std::vector<double> ap_load;            // per AP
  std::vector<int> user_ap;               // per user
  std::vector<int> decision;              // per user (simultaneous rounds)
  std::vector<int> scratch;               // movers / pending lists

  void prepare(int n_aps, int n_users) {
    if (members.size() < static_cast<size_t>(n_aps)) {
      members.resize(static_cast<size_t>(n_aps));
    }
    for (int a = 0; a < n_aps; ++a) members[static_cast<size_t>(a)].clear();
    ap_load.assign(static_cast<size_t>(n_aps), 0.0);
    user_ap.assign(static_cast<size_t>(n_users), -1);
    decision.clear();
    scratch.clear();
  }
};

}  // namespace wmcast::core
