// Reusable per-solve scratch. Allocate one workspace, pass it to every solve
// on the same engine: after warm-up each solve runs with zero steady-state
// allocations (bitsets and vectors keep their capacity between calls).
//
// A workspace can be seated on a util::Arena (one per SessionShards lane —
// see core/parallel.hpp): every bitset word block and scratch vector then
// allocates from that arena instead of the shared heap, so parallel solves
// never contend on the global allocator. The arena must outlive the
// workspace; ShardWorkspaces owns both and orders them accordingly.
#pragma once

#include <cstdint>
#include <vector>

#include "wmcast/util/arena.hpp"
#include "wmcast/util/bitset.hpp"

namespace wmcast::core {

/// One stale-tolerant heap entry of the lazy greedy: `gain` is the marginal
/// gain at push time; the entry is stale iff gain != ws.gain[set].
struct HeapEntry {
  int32_t gain;
  int32_t set;
  // The set's cost, copied in so the comparator's double fast path reads
  // only the two 16-byte entries at hand; the exact fallback for near-tied
  // ratios reads the engine's cached (mantissa, exponent) decomposition.
  double cost;
};

/// Scratch for the set-cover solvers (core/solve.hpp). Results are written
/// into the caller-provided result structs; everything here is internal
/// state, reusable across solves and engines of any size.
struct SolveWorkspace {
  SolveWorkspace() = default;
  /// Arena-backed workspace: all scratch allocates from `arena` (which must
  /// outlive this workspace). Results returned by the solvers stay heap-backed
  /// — copies out of arena bitsets fall back to the heap by construction.
  explicit SolveWorkspace(util::Arena* arena)
      : remaining(0, util::ArenaAllocator<uint64_t>(arena)),
        target(0, util::ArenaAllocator<uint64_t>(arena)),
        gain(util::ArenaAllocator<int32_t>(arena)),
        heap(util::ArenaAllocator<HeapEntry>(arena)),
        group_cost(util::ArenaAllocator<double>(arena)),
        pass_budget(util::ArenaAllocator<double>(arena)),
        scg_remaining(0, util::ArenaAllocator<uint64_t>(arena)),
        cov_a(0, util::ArenaAllocator<uint64_t>(arena)),
        cov_b(0, util::ArenaAllocator<uint64_t>(arena)),
        residual(util::ArenaAllocator<double>(arena)),
        taken(util::ArenaAllocator<char>(arena)),
        shard_group_cost(util::ArenaAllocator<double>(arena)),
        newly(util::ArenaAllocator<int32_t>(arena)) {}

  util::DynBitset remaining;             // uncovered target elements
  util::DynBitset target;                // the solve's initial remaining (MCG split)
  util::ArenaVector<int32_t> gain;       // exact |members ∩ remaining| per set slot
  util::ArenaVector<HeapEntry> heap;     // lazy max-heap storage
  util::ArenaVector<double> group_cost;  // per-group spend (MCG)
  util::ArenaVector<double> pass_budget; // per-pass budgets (SCG)
  util::DynBitset scg_remaining;         // SCG's cross-pass remainder
  util::DynBitset cov_a, cov_b;          // MCG's H1/H2 split accumulators
  util::ArenaVector<double> residual;    // layering's residual costs
  util::ArenaVector<char> taken;         // layering's chosen mask
  util::ArenaVector<double> shard_group_cost;  // per-group spend of one shard's picks
  util::ArenaVector<int32_t> newly;      // commit batch: elements covered this pick
};

/// Scratch for the association-side algorithms (local search, distributed
/// rounds, controller repair): per-AP member lists and loads. prepare() keeps
/// inner-vector capacity so steady-state epochs allocate nothing.
struct AssocWorkspace {
  std::vector<std::vector<int>> members;  // per AP
  std::vector<double> ap_load;            // per AP
  std::vector<int> user_ap;               // per user
  std::vector<int> decision;              // per user (simultaneous rounds)
  std::vector<int> scratch;               // movers / pending lists

  void prepare(int n_aps, int n_users) {
    if (members.size() < static_cast<size_t>(n_aps)) {
      members.resize(static_cast<size_t>(n_aps));
    }
    for (int a = 0; a < n_aps; ++a) members[static_cast<size_t>(a)].clear();
    ap_load.assign(static_cast<size_t>(n_aps), 0.0);
    user_ap.assign(static_cast<size_t>(n_users), -1);
    decision.clear();
    scratch.clear();
  }
};

}  // namespace wmcast::core
